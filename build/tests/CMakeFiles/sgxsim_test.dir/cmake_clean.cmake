file(REMOVE_RECURSE
  "CMakeFiles/sgxsim_test.dir/sgxsim_test.cc.o"
  "CMakeFiles/sgxsim_test.dir/sgxsim_test.cc.o.d"
  "sgxsim_test"
  "sgxsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
