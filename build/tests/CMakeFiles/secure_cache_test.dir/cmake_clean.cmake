file(REMOVE_RECURSE
  "CMakeFiles/secure_cache_test.dir/secure_cache_test.cc.o"
  "CMakeFiles/secure_cache_test.dir/secure_cache_test.cc.o.d"
  "secure_cache_test"
  "secure_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
