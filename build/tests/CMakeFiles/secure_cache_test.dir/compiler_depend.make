# Empty compiler generated dependencies file for secure_cache_test.
# This may be replaced when dependencies are built.
