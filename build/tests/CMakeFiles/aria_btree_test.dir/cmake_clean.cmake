file(REMOVE_RECURSE
  "CMakeFiles/aria_btree_test.dir/aria_btree_test.cc.o"
  "CMakeFiles/aria_btree_test.dir/aria_btree_test.cc.o.d"
  "aria_btree_test"
  "aria_btree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aria_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
