# Empty compiler generated dependencies file for aria_btree_test.
# This may be replaced when dependencies are built.
