file(REMOVE_RECURSE
  "CMakeFiles/counter_manager_test.dir/counter_manager_test.cc.o"
  "CMakeFiles/counter_manager_test.dir/counter_manager_test.cc.o.d"
  "counter_manager_test"
  "counter_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
