# Empty dependencies file for counter_manager_test.
# This may be replaced when dependencies are built.
