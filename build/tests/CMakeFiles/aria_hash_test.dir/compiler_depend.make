# Empty compiler generated dependencies file for aria_hash_test.
# This may be replaced when dependencies are built.
