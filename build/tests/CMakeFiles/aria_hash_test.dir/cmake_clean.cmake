file(REMOVE_RECURSE
  "CMakeFiles/aria_hash_test.dir/aria_hash_test.cc.o"
  "CMakeFiles/aria_hash_test.dir/aria_hash_test.cc.o.d"
  "aria_hash_test"
  "aria_hash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aria_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
