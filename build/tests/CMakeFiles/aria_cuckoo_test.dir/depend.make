# Empty dependencies file for aria_cuckoo_test.
# This may be replaced when dependencies are built.
