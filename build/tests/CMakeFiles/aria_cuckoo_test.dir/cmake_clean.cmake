file(REMOVE_RECURSE
  "CMakeFiles/aria_cuckoo_test.dir/aria_cuckoo_test.cc.o"
  "CMakeFiles/aria_cuckoo_test.dir/aria_cuckoo_test.cc.o.d"
  "aria_cuckoo_test"
  "aria_cuckoo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aria_cuckoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
