# Empty compiler generated dependencies file for aria_bplus_test.
# This may be replaced when dependencies are built.
