file(REMOVE_RECURSE
  "CMakeFiles/aria_bplus_test.dir/aria_bplus_test.cc.o"
  "CMakeFiles/aria_bplus_test.dir/aria_bplus_test.cc.o.d"
  "aria_bplus_test"
  "aria_bplus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aria_bplus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
