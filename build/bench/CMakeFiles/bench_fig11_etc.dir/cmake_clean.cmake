file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_etc.dir/bench_fig11_etc.cc.o"
  "CMakeFiles/bench_fig11_etc.dir/bench_fig11_etc.cc.o.d"
  "bench_fig11_etc"
  "bench_fig11_etc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_etc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
