# Empty dependencies file for bench_fig09_ycsb_hash.
# This may be replaced when dependencies are built.
