file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_ycsb_hash.dir/bench_fig09_ycsb_hash.cc.o"
  "CMakeFiles/bench_fig09_ycsb_hash.dir/bench_fig09_ycsb_hash.cc.o.d"
  "bench_fig09_ycsb_hash"
  "bench_fig09_ycsb_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_ycsb_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
