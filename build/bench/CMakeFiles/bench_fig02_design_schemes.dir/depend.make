# Empty dependencies file for bench_fig02_design_schemes.
# This may be replaced when dependencies are built.
