# Empty compiler generated dependencies file for bench_fig10_ycsb_btree.
# This may be replaced when dependencies are built.
