file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ycsb_btree.dir/bench_fig10_ycsb_btree.cc.o"
  "CMakeFiles/bench_fig10_ycsb_btree.dir/bench_fig10_ycsb_btree.cc.o.d"
  "bench_fig10_ycsb_btree"
  "bench_fig10_ycsb_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ycsb_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
