file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_keyspace.dir/bench_fig13_keyspace.cc.o"
  "CMakeFiles/bench_fig13_keyspace.dir/bench_fig13_keyspace.cc.o.d"
  "bench_fig13_keyspace"
  "bench_fig13_keyspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_keyspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
