# Empty compiler generated dependencies file for bench_fig13_keyspace.
# This may be replaced when dependencies are built.
