file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_nary.dir/bench_fig15_nary.cc.o"
  "CMakeFiles/bench_fig15_nary.dir/bench_fig15_nary.cc.o.d"
  "bench_fig15_nary"
  "bench_fig15_nary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_nary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
