# Empty compiler generated dependencies file for bench_fig16_tenants_skew.
# This may be replaced when dependencies are built.
