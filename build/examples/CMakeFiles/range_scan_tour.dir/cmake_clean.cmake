file(REMOVE_RECURSE
  "CMakeFiles/range_scan_tour.dir/range_scan_tour.cpp.o"
  "CMakeFiles/range_scan_tour.dir/range_scan_tour.cpp.o.d"
  "range_scan_tour"
  "range_scan_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_scan_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
