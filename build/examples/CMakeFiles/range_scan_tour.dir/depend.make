# Empty dependencies file for range_scan_tour.
# This may be replaced when dependencies are built.
