file(REMOVE_RECURSE
  "CMakeFiles/aria_cli.dir/aria_cli.cpp.o"
  "CMakeFiles/aria_cli.dir/aria_cli.cpp.o.d"
  "aria_cli"
  "aria_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aria_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
