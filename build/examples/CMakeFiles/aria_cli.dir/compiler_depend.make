# Empty compiler generated dependencies file for aria_cli.
# This may be replaced when dependencies are built.
