# Empty compiler generated dependencies file for aria.
# This may be replaced when dependencies are built.
