file(REMOVE_RECURSE
  "libaria.a"
)
