
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/heap_allocator.cc" "src/CMakeFiles/aria.dir/alloc/heap_allocator.cc.o" "gcc" "src/CMakeFiles/aria.dir/alloc/heap_allocator.cc.o.d"
  "/root/repo/src/baseline/enclave_btree.cc" "src/CMakeFiles/aria.dir/baseline/enclave_btree.cc.o" "gcc" "src/CMakeFiles/aria.dir/baseline/enclave_btree.cc.o.d"
  "/root/repo/src/baseline/enclave_kv.cc" "src/CMakeFiles/aria.dir/baseline/enclave_kv.cc.o" "gcc" "src/CMakeFiles/aria.dir/baseline/enclave_kv.cc.o.d"
  "/root/repo/src/baseline/shieldstore.cc" "src/CMakeFiles/aria.dir/baseline/shieldstore.cc.o" "gcc" "src/CMakeFiles/aria.dir/baseline/shieldstore.cc.o.d"
  "/root/repo/src/cache/secure_cache.cc" "src/CMakeFiles/aria.dir/cache/secure_cache.cc.o" "gcc" "src/CMakeFiles/aria.dir/cache/secure_cache.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/aria.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/aria.dir/common/hash.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/aria.dir/common/random.cc.o" "gcc" "src/CMakeFiles/aria.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/aria.dir/common/status.cc.o" "gcc" "src/CMakeFiles/aria.dir/common/status.cc.o.d"
  "/root/repo/src/core/aria_bplus.cc" "src/CMakeFiles/aria.dir/core/aria_bplus.cc.o" "gcc" "src/CMakeFiles/aria.dir/core/aria_bplus.cc.o.d"
  "/root/repo/src/core/aria_btree.cc" "src/CMakeFiles/aria.dir/core/aria_btree.cc.o" "gcc" "src/CMakeFiles/aria.dir/core/aria_btree.cc.o.d"
  "/root/repo/src/core/aria_cuckoo.cc" "src/CMakeFiles/aria.dir/core/aria_cuckoo.cc.o" "gcc" "src/CMakeFiles/aria.dir/core/aria_cuckoo.cc.o.d"
  "/root/repo/src/core/aria_hash.cc" "src/CMakeFiles/aria.dir/core/aria_hash.cc.o" "gcc" "src/CMakeFiles/aria.dir/core/aria_hash.cc.o.d"
  "/root/repo/src/core/counter_store.cc" "src/CMakeFiles/aria.dir/core/counter_store.cc.o" "gcc" "src/CMakeFiles/aria.dir/core/counter_store.cc.o.d"
  "/root/repo/src/core/record.cc" "src/CMakeFiles/aria.dir/core/record.cc.o" "gcc" "src/CMakeFiles/aria.dir/core/record.cc.o.d"
  "/root/repo/src/core/store_factory.cc" "src/CMakeFiles/aria.dir/core/store_factory.cc.o" "gcc" "src/CMakeFiles/aria.dir/core/store_factory.cc.o.d"
  "/root/repo/src/core/trusted_counter_store.cc" "src/CMakeFiles/aria.dir/core/trusted_counter_store.cc.o" "gcc" "src/CMakeFiles/aria.dir/core/trusted_counter_store.cc.o.d"
  "/root/repo/src/crypto/aes.cc" "src/CMakeFiles/aria.dir/crypto/aes.cc.o" "gcc" "src/CMakeFiles/aria.dir/crypto/aes.cc.o.d"
  "/root/repo/src/crypto/aes_portable.cc" "src/CMakeFiles/aria.dir/crypto/aes_portable.cc.o" "gcc" "src/CMakeFiles/aria.dir/crypto/aes_portable.cc.o.d"
  "/root/repo/src/crypto/cmac.cc" "src/CMakeFiles/aria.dir/crypto/cmac.cc.o" "gcc" "src/CMakeFiles/aria.dir/crypto/cmac.cc.o.d"
  "/root/repo/src/crypto/ctr.cc" "src/CMakeFiles/aria.dir/crypto/ctr.cc.o" "gcc" "src/CMakeFiles/aria.dir/crypto/ctr.cc.o.d"
  "/root/repo/src/crypto/secure_random.cc" "src/CMakeFiles/aria.dir/crypto/secure_random.cc.o" "gcc" "src/CMakeFiles/aria.dir/crypto/secure_random.cc.o.d"
  "/root/repo/src/metadata/counter_manager.cc" "src/CMakeFiles/aria.dir/metadata/counter_manager.cc.o" "gcc" "src/CMakeFiles/aria.dir/metadata/counter_manager.cc.o.d"
  "/root/repo/src/mt/flat_merkle_tree.cc" "src/CMakeFiles/aria.dir/mt/flat_merkle_tree.cc.o" "gcc" "src/CMakeFiles/aria.dir/mt/flat_merkle_tree.cc.o.d"
  "/root/repo/src/sgxsim/cost_model.cc" "src/CMakeFiles/aria.dir/sgxsim/cost_model.cc.o" "gcc" "src/CMakeFiles/aria.dir/sgxsim/cost_model.cc.o.d"
  "/root/repo/src/sgxsim/edge_calls.cc" "src/CMakeFiles/aria.dir/sgxsim/edge_calls.cc.o" "gcc" "src/CMakeFiles/aria.dir/sgxsim/edge_calls.cc.o.d"
  "/root/repo/src/sgxsim/enclave_runtime.cc" "src/CMakeFiles/aria.dir/sgxsim/enclave_runtime.cc.o" "gcc" "src/CMakeFiles/aria.dir/sgxsim/enclave_runtime.cc.o.d"
  "/root/repo/src/workload/driver.cc" "src/CMakeFiles/aria.dir/workload/driver.cc.o" "gcc" "src/CMakeFiles/aria.dir/workload/driver.cc.o.d"
  "/root/repo/src/workload/etc.cc" "src/CMakeFiles/aria.dir/workload/etc.cc.o" "gcc" "src/CMakeFiles/aria.dir/workload/etc.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/aria.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/aria.dir/workload/ycsb.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/CMakeFiles/aria.dir/workload/zipf.cc.o" "gcc" "src/CMakeFiles/aria.dir/workload/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aria_crypto_ni.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
