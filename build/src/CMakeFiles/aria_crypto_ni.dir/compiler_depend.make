# Empty compiler generated dependencies file for aria_crypto_ni.
# This may be replaced when dependencies are built.
