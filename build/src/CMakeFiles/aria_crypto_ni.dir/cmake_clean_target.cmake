file(REMOVE_RECURSE
  "libaria_crypto_ni.a"
)
