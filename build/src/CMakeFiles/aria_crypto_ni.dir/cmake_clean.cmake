file(REMOVE_RECURSE
  "CMakeFiles/aria_crypto_ni.dir/crypto/aes_ni.cc.o"
  "CMakeFiles/aria_crypto_ni.dir/crypto/aes_ni.cc.o.d"
  "libaria_crypto_ni.a"
  "libaria_crypto_ni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aria_crypto_ni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
