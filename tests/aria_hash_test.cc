// Tests for Aria-H: CRUD semantics, chain handling, overwrites across size
// classes, deletes with AdField reseals, and a randomized reference test.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/store_factory.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

class AriaHashTest : public ::testing::Test {
 protected:
  void Build(uint64_t keyspace = 4096, uint64_t buckets = 64) {
    StoreOptions opts;
    opts.scheme = Scheme::kAria;
    opts.index = IndexKind::kHash;
    opts.keyspace = keyspace;
    opts.num_buckets = buckets;  // small: forces real chains
    opts.cache_bytes = 1 << 20;
    ASSERT_TRUE(CreateStore(opts, &bundle_).ok());
    store_ = bundle_.store.get();
  }

  StoreBundle bundle_;
  KVStore* store_ = nullptr;
};

TEST_F(AriaHashTest, PutGetSingle) {
  Build();
  ASSERT_TRUE(store_->Put("hello", "world").ok());
  std::string v;
  ASSERT_TRUE(store_->Get("hello", &v).ok());
  EXPECT_EQ(v, "world");
  EXPECT_EQ(store_->size(), 1u);
}

TEST_F(AriaHashTest, GetMissingIsNotFound) {
  Build();
  std::string v;
  EXPECT_TRUE(store_->Get("absent", &v).IsNotFound());
}

TEST_F(AriaHashTest, OverwriteSameSize) {
  Build();
  ASSERT_TRUE(store_->Put("k", "v1").ok());
  ASSERT_TRUE(store_->Put("k", "v2").ok());
  std::string v;
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, "v2");
  EXPECT_EQ(store_->size(), 1u);
}

TEST_F(AriaHashTest, OverwriteGrowingValueRelocates) {
  Build();
  ASSERT_TRUE(store_->Put("k", "small").ok());
  std::string big(512, 'B');
  ASSERT_TRUE(store_->Put("k", big).ok());
  std::string v;
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, big);
  // And shrink back.
  ASSERT_TRUE(store_->Put("k", "tiny").ok());
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, "tiny");
}

TEST_F(AriaHashTest, ManyKeysInOneBucket) {
  Build(4096, /*buckets=*/1);  // everything collides
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), MakeValue(i, 32)).ok());
  }
  std::string v;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store_->Get(MakeKey(i), &v).ok()) << i;
    EXPECT_EQ(v, MakeValue(i, 32));
  }
  EXPECT_TRUE(store_->Get(MakeKey(99), &v).IsNotFound());
}

TEST_F(AriaHashTest, DeleteHeadMiddleTail) {
  Build(4096, /*buckets=*/1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), "v").ok());
  }
  // Chain order is insertion-reversed: 4 (head) .. 0 (tail).
  ASSERT_TRUE(store_->Delete(MakeKey(4)).ok());  // head
  ASSERT_TRUE(store_->Delete(MakeKey(2)).ok());  // middle
  ASSERT_TRUE(store_->Delete(MakeKey(0)).ok());  // tail
  std::string v;
  EXPECT_TRUE(store_->Get(MakeKey(4), &v).IsNotFound());
  EXPECT_TRUE(store_->Get(MakeKey(2), &v).IsNotFound());
  EXPECT_TRUE(store_->Get(MakeKey(0), &v).IsNotFound());
  EXPECT_TRUE(store_->Get(MakeKey(1), &v).ok());
  EXPECT_TRUE(store_->Get(MakeKey(3), &v).ok());
  EXPECT_EQ(store_->size(), 2u);
}

TEST_F(AriaHashTest, DeleteMissingIsNotFound) {
  Build();
  EXPECT_TRUE(store_->Delete("nothing").IsNotFound());
  ASSERT_TRUE(store_->Put("a", "b").ok());
  EXPECT_TRUE(store_->Delete("c").IsNotFound());
}

TEST_F(AriaHashTest, ReinsertAfterDelete) {
  Build();
  ASSERT_TRUE(store_->Put("k", "v1").ok());
  ASSERT_TRUE(store_->Delete("k").ok());
  ASSERT_TRUE(store_->Put("k", "v2").ok());
  std::string v;
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, "v2");
}

TEST_F(AriaHashTest, EmptyValue) {
  Build();
  ASSERT_TRUE(store_->Put("k", "").ok());
  std::string v = "sentinel";
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_TRUE(v.empty());
}

TEST_F(AriaHashTest, OversizedInputsRejected) {
  Build();
  std::string huge(70000, 'x');
  EXPECT_TRUE(store_->Put(huge, "v").IsInvalidArgument());
  EXPECT_TRUE(store_->Put("k", huge).IsInvalidArgument());
}

TEST_F(AriaHashTest, BinaryKeysAndValues) {
  Build();
  std::string key("\x00\x01\x02\xff\xfe", 5);
  std::string value("\x00\x00\x00", 3);
  ASSERT_TRUE(store_->Put(key, value).ok());
  std::string v;
  ASSERT_TRUE(store_->Get(key, &v).ok());
  EXPECT_EQ(v, value);
}

TEST_F(AriaHashTest, RandomizedAgainstStdMap) {
  Build(1 << 16, /*buckets=*/256);
  Random rng(2024);
  std::map<std::string, std::string> model;
  std::string v;
  for (int step = 0; step < 20000; ++step) {
    uint64_t id = rng.Uniform(500);
    std::string key = MakeKey(id);
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      std::string value = MakeValue(id, 1 + rng.Uniform(200),
                                    static_cast<uint32_t>(step));
      ASSERT_TRUE(store_->Put(key, value).ok()) << step;
      model[key] = value;
    } else if (dice < 0.8) {
      Status st = store_->Get(key, &v);
      auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_TRUE(st.ok()) << step << " " << st.ToString();
        ASSERT_EQ(v, it->second) << step;
      } else {
        ASSERT_TRUE(st.IsNotFound()) << step;
      }
    } else {
      Status st = store_->Delete(key);
      if (model.erase(key) > 0) {
        ASSERT_TRUE(st.ok()) << step << " " << st.ToString();
      } else {
        ASSERT_TRUE(st.IsNotFound()) << step;
      }
    }
    ASSERT_EQ(store_->size(), model.size());
  }
}

TEST_F(AriaHashTest, CounterReuseAcrossDeleteCycles) {
  // Deleting frees the counter slot; the recycled slot must still protect
  // fresh records correctly.
  Build(128, 16);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(store_->Put(MakeKey(i), MakeValue(i, 24, round)).ok());
    }
    std::string v;
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(store_->Get(MakeKey(i), &v).ok());
      ASSERT_EQ(v, MakeValue(i, 24, round));
    }
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(store_->Delete(MakeKey(i)).ok());
    }
  }
  EXPECT_EQ(store_->size(), 0u);
}

TEST_F(AriaHashTest, OutOfPlaceUpdateMode) {
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.keyspace = 2048;
  opts.num_buckets = 64;
  opts.out_of_place_updates = true;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  auto* store = bundle.store.get();
  std::string v;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(store->Put(MakeKey(i), MakeValue(i, 24, round)).ok());
    }
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Get(MakeKey(i), &v).ok()) << i;
    ASSERT_EQ(v, MakeValue(i, 24, 4));
  }
  EXPECT_EQ(store->size(), 100u);
}

TEST_F(AriaHashTest, WorksWithTrustedCounterStore) {
  // Aria w/o Cache uses the same index code over trusted counters.
  StoreOptions opts;
  opts.scheme = Scheme::kAriaNoCache;
  opts.keyspace = 1024;
  opts.num_buckets = 64;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  ASSERT_TRUE(bundle.store->Put("a", "1").ok());
  ASSERT_TRUE(bundle.store->Put("b", "2").ok());
  std::string v;
  ASSERT_TRUE(bundle.store->Get("a", &v).ok());
  EXPECT_EQ(v, "1");
  ASSERT_TRUE(bundle.store->Delete("a").ok());
  EXPECT_TRUE(bundle.store->Get("a", &v).IsNotFound());
}

}  // namespace
}  // namespace aria
