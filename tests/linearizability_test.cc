// Linearizability battery for the optimistic (lock-free) sharded GET path
// (DESIGN.md §14): N reader threads race one writer over a single hot
// shard while a history recorder timestamps every operation with a logical
// clock; the history is then checked against a single-writer-register
// model (reads must fall inside their [completed-before, started-before]
// version window, be monotone per reader, and never be torn). The battery
// includes its own negative controls:
//  * a checker self-test on crafted bad histories, and
//  * a deterministic torn-read choreography (writer parked mid-publish by
//    the fault latch while a reader probes) that MUST surface a torn value
//    when the seqlock revalidation is deliberately broken
//    (TEST_SetBrokenValidation) and MUST NOT when it is intact —
//    proving the second version read is load-bearing.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/sharded_store.h"
#include "core/store_factory.h"
#include "obs/invariants.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

// --- versioned register values ----------------------------------------------

constexpr size_t kValueSize = 64;

// Fixed-size value: 16-digit version header + version-derived fill. Every
// byte is a function of the version, so any torn mix of two versions fails
// re-derivation. Fixed size keeps Baseline overwrites in place (the torn
// window under test) and Aria overwrites CoW (the retire churn under test).
std::string VersionValue(uint64_t version) {
  std::string s(kValueSize, static_cast<char>('a' + version % 26));
  char hdr[17];
  std::snprintf(hdr, sizeof(hdr), "%016llu",
                static_cast<unsigned long long>(version));
  s.replace(0, 16, hdr, 16);
  return s;
}

// Version encoded in `s`, or UINT64_MAX when `s` is not a value any writer
// ever produced (torn or otherwise corrupt).
uint64_t ParseVersionValue(const std::string& s) {
  if (s.size() != kValueSize) return UINT64_MAX;
  uint64_t v = 0;
  for (size_t i = 0; i < 16; ++i) {
    if (s[i] < '0' || s[i] > '9') return UINT64_MAX;
    v = v * 10 + static_cast<uint64_t>(s[i] - '0');
  }
  const char fill = static_cast<char>('a' + v % 26);
  for (size_t i = 16; i < s.size(); ++i) {
    if (s[i] != fill) return UINT64_MAX;
  }
  return v;
}

// --- history model ----------------------------------------------------------

// Write of version == its index into the history (version 0 is the
// prepopulated value). inv/resp are logical-clock ticks around the Put.
struct WriteRec {
  uint64_t inv = 0;
  uint64_t resp = 0;
};

struct ReadRec {
  uint64_t inv = 0;
  uint64_t resp = 0;
  uint64_t version = 0;  // UINT64_MAX encodes a torn/corrupt read
  bool not_found = false;
};

// Single-writer-register check. Writes are issued sequentially by one
// writer, so writes[v].inv and writes[v].resp are both nondecreasing in v —
// which makes the per-read window a pair of binary searches. Returns the
// first violation's description, or "" when the history linearizes.
std::string CheckSingleWriterRegister(
    const std::vector<WriteRec>& writes,
    const std::vector<std::vector<ReadRec>>& readers) {
  char buf[256];
  for (size_t t = 0; t < readers.size(); ++t) {
    uint64_t prev = 0;
    for (size_t i = 0; i < readers[t].size(); ++i) {
      const ReadRec& r = readers[t][i];
      if (r.version == UINT64_MAX) {
        std::snprintf(buf, sizeof(buf),
                      "reader %zu read %zu: torn/corrupt value", t, i);
        return buf;
      }
      if (r.not_found) {
        std::snprintf(buf, sizeof(buf),
                      "reader %zu read %zu: NotFound on an initialized "
                      "register",
                      t, i);
        return buf;
      }
      // Lower bound: the newest write that completed before this read was
      // invoked must already be visible.
      size_t lo = 0;
      {
        size_t a = 0, b = writes.size();  // first index with resp >= inv
        while (a < b) {
          size_t m = (a + b) / 2;
          if (writes[m].resp < r.inv) {
            a = m + 1;
          } else {
            b = m;
          }
        }
        lo = a == 0 ? 0 : a - 1;
      }
      // Upper bound: a write that had not been invoked when this read
      // responded cannot be visible.
      size_t hi = 0;
      {
        size_t a = 0, b = writes.size();  // first index with inv >= resp
        while (a < b) {
          size_t m = (a + b) / 2;
          if (writes[m].inv < r.resp) {
            a = m + 1;
          } else {
            b = m;
          }
        }
        hi = a == 0 ? 0 : a - 1;
      }
      if (r.version < lo) {
        std::snprintf(buf, sizeof(buf),
                      "reader %zu read %zu: stale version %llu < completed "
                      "version %zu",
                      t, i, static_cast<unsigned long long>(r.version), lo);
        return buf;
      }
      if (r.version > hi) {
        std::snprintf(buf, sizeof(buf),
                      "reader %zu read %zu: future version %llu > last "
                      "invoked version %zu",
                      t, i, static_cast<unsigned long long>(r.version), hi);
        return buf;
      }
      if (r.version < prev) {
        std::snprintf(buf, sizeof(buf),
                      "reader %zu read %zu: non-monotonic %llu after %llu",
                      t, i, static_cast<unsigned long long>(r.version),
                      static_cast<unsigned long long>(prev));
        return buf;
      }
      prev = r.version;
    }
  }
  return "";
}

// --- checker self-test on crafted histories ---------------------------------

TEST(HistoryChecker, AcceptsALinearizableHistory) {
  std::vector<WriteRec> writes = {{0, 0}, {10, 20}, {30, 40}};
  std::vector<std::vector<ReadRec>> readers(1);
  readers[0] = {{1, 2, 0, false},    // before any overwrite
                {11, 21, 1, false},  // concurrent with write 1: 0 or 1 ok
                {25, 26, 1, false},  // after write 1 completed
                {31, 45, 2, false}};  // concurrent with write 2
  EXPECT_EQ(CheckSingleWriterRegister(writes, readers), "");
}

TEST(HistoryChecker, FlagsAStaleRead) {
  std::vector<WriteRec> writes = {{0, 0}, {10, 20}, {30, 40}};
  std::vector<std::vector<ReadRec>> readers(1);
  // Invoked at 50, after write 2 completed at 40 — version 1 is stale.
  readers[0] = {{50, 60, 1, false}};
  EXPECT_NE(CheckSingleWriterRegister(writes, readers).find("stale"),
            std::string::npos);
}

TEST(HistoryChecker, FlagsAFutureRead) {
  std::vector<WriteRec> writes = {{0, 0}, {10, 20}, {30, 40}};
  std::vector<std::vector<ReadRec>> readers(1);
  // Responded at 5, before write 1 was even invoked — version 1 is
  // impossible.
  readers[0] = {{4, 5, 1, false}};
  EXPECT_NE(CheckSingleWriterRegister(writes, readers).find("future"),
            std::string::npos);
}

TEST(HistoryChecker, FlagsANonMonotonicReaderAndTornValue) {
  std::vector<WriteRec> writes = {{0, 0}, {10, 20}};
  std::vector<std::vector<ReadRec>> readers(1);
  // Both reads overlap write 1, so each alone may return 0 or 1 — but the
  // same reader going 1 then 0 cannot linearize.
  readers[0] = {{11, 12, 1, false}, {13, 14, 0, false}};
  EXPECT_NE(CheckSingleWriterRegister(writes, readers).find("non-monotonic"),
            std::string::npos);

  readers[0] = {{11, 12, UINT64_MAX, false}};
  EXPECT_NE(CheckSingleWriterRegister(writes, readers).find("torn"),
            std::string::npos);

  // The value codec itself must expose torn mixes: first half of v2 glued
  // to the second half of v1 re-derives to neither.
  std::string torn = VersionValue(2).substr(0, kValueSize / 2) +
                     VersionValue(1).substr(kValueSize / 2);
  EXPECT_EQ(ParseVersionValue(torn), UINT64_MAX);
  EXPECT_EQ(ParseVersionValue(VersionValue(7)), 7u);
}

// --- live N-reader / 1-writer histories over a single hot shard -------------

StoreOptions OptimisticOptions(Scheme scheme) {
  StoreOptions opts;
  opts.scheme = scheme;
  opts.index = IndexKind::kHash;
  opts.keyspace = 4096;
  opts.num_shards = 1;  // a single hot shard: every op contends
  opts.read_mode = ReadMode::kOptimistic;
  opts.seed = 42;
  return opts;
}

uint64_t CoreMetric(ShardedStore* store, const char* name) {
  obs::Snapshot total;
  for (uint32_t i = 0; i < store->num_shards(); ++i) {
    total.Accumulate(store->ShardSnapshot(i));
  }
  return total.Get(std::string("core.") + name);
}

void RunRegisterHistory(Scheme scheme, const char* label) {
  std::unique_ptr<ShardedStore> store;
  ASSERT_TRUE(ShardedStore::Create(OptimisticOptions(scheme), &store).ok())
      << label;

  const std::string key = MakeKey(7);
  constexpr uint64_t kWrites = 1200;
  constexpr int kReaders = 3;

  std::atomic<uint64_t> clock{1};
  auto tick = [&clock]() { return clock.fetch_add(1); };

  std::vector<WriteRec> writes(kWrites + 1);
  writes[0].inv = tick();
  ASSERT_TRUE(store->Put(key, VersionValue(0)).ok()) << label;
  writes[0].resp = tick();

  std::atomic<bool> done{false};
  std::vector<std::vector<ReadRec>> reads(kReaders);
  Status writer_status = Status::OK();

  std::thread writer([&]() {
    for (uint64_t v = 1; v <= kWrites; ++v) {
      writes[v].inv = tick();
      Status st = store->Put(key, VersionValue(v));
      writes[v].resp = tick();
      if (!st.ok()) {
        writer_status = st;
        return;
      }
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      std::string value;
      // do-while: on a one-core host the writer may finish before this
      // thread first runs; every reader still contributes >= 1 read.
      do {
        ReadRec r;
        r.inv = tick();
        Status st = store->Get(key, &value);
        r.resp = tick();
        if (st.IsNotFound()) {
          r.not_found = true;
        } else if (!st.ok()) {
          r.version = UINT64_MAX;  // integrity violation etc. — flagged
        } else {
          r.version = ParseVersionValue(value);
        }
        reads[t].push_back(r);
      } while (!done.load(std::memory_order_acquire));
    });
  }
  writer.join();
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  ASSERT_TRUE(writer_status.ok()) << label << ": " << writer_status.ToString();

  EXPECT_EQ(CheckSingleWriterRegister(writes, reads), "") << label;
  size_t total_reads = 0;
  for (const auto& r : reads) total_reads += r.size();
  EXPECT_GT(total_reads, 0u) << label;

  // With no writer left, the lock-free path must serve — proving the
  // battery exercised it (scheduler-dependent hits during the run alone
  // would be a flaky assertion).
  std::string value;
  for (int i = 0; i < 16; ++i) {
    bool lock_free = false;
    ASSERT_TRUE(store->Get(key, &value, &lock_free).ok()) << label;
    EXPECT_TRUE(lock_free) << label << ": quiescent GET " << i;
    EXPECT_EQ(ParseVersionValue(value), kWrites) << label;
  }
  EXPECT_GT(CoreMetric(store.get(), "optimistic_hits"), 0u) << label;
  EXPECT_EQ(CoreMetric(store.get(), "optimistic_hits") +
                CoreMetric(store.get(), "optimistic_fallbacks"),
            CoreMetric(store.get(), "optimistic_gets"))
      << label;

  obs::InvariantReport inv = store->CheckInvariants();
  EXPECT_TRUE(inv.ok()) << label << ": " << inv.ToString();
}

TEST(Linearizability, BaselineHashRegisterHistoryLinearizes) {
  // Plaintext in-place overwrites: the seqlock revalidation is the ONLY
  // torn-read defense (no per-record MAC), so this scheme leans on the
  // shard version check hardest.
  RunRegisterHistory(Scheme::kBaseline, "Baseline-H optimistic");
}

TEST(Linearizability, AriaNoCacheRegisterHistoryLinearizes) {
  // MAC-verified CoW overwrites: every Put retires a block through the
  // epoch manager while readers hold pins — the reclamation path under
  // real concurrent load (ASan cross-checks in the sanitizer run).
  RunRegisterHistory(Scheme::kAriaNoCache, "AriaNoCache-H optimistic");
}

// --- multi-register atomic-batch histories (DESIGN.md §15) ------------------

// K registers written together by ATOMIC_RMW batches collapse into ONE
// logical register: every batch writes the same version to all K, so a
// MULTIGET snapshot either returns K copies of one version (that version is
// the read) or has observed a half-applied batch (torn, UINT64_MAX). The
// single-writer-register checker then applies unchanged — window, torn and
// monotonicity violations all mean batch atomicity broke somewhere.
void RunMultiRegisterHistory(ReadMode mode, const char* label) {
  StoreOptions opts;
  opts.scheme = Scheme::kBaseline;
  opts.index = IndexKind::kHash;
  opts.keyspace = 4096;
  opts.num_shards = 2;  // registers span shards: cross-shard atomicity
  opts.read_mode = mode;
  opts.seed = 42;
  std::unique_ptr<ShardedStore> store;
  ASSERT_TRUE(ShardedStore::Create(opts, &store).ok()) << label;

  constexpr int kRegisters = 6;
  constexpr uint64_t kWrites = 800;
  constexpr int kReaders = 3;
  std::vector<std::string> keys;
  for (uint64_t id = 0; id < kRegisters; ++id) keys.push_back(MakeKey(id));

  std::atomic<uint64_t> clock{1};
  auto tick = [&clock]() { return clock.fetch_add(1); };

  auto write_all = [&](uint64_t v) {
    std::string value = VersionValue(v);
    std::vector<AtomicOp> ops(kRegisters);
    for (int k = 0; k < kRegisters; ++k) {
      ops[k].kind = AtomicOp::Kind::kRmw;
      ops[k].key = Slice(keys[k]);
      ops[k].value = Slice(value);
    }
    return store->ExecuteAtomicBatch(ops.data(), ops.size());
  };

  std::vector<WriteRec> writes(kWrites + 1);
  writes[0].inv = tick();
  ASSERT_TRUE(write_all(0).ok()) << label;
  writes[0].resp = tick();

  std::atomic<bool> done{false};
  std::vector<std::vector<ReadRec>> reads(kReaders);
  Status writer_status = Status::OK();

  std::thread writer([&]() {
    for (uint64_t v = 1; v <= kWrites; ++v) {
      writes[v].inv = tick();
      Status st = write_all(v);
      writes[v].resp = tick();
      if (!st.ok()) {
        writer_status = st;
        return;
      }
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      do {
        ReadRec r;
        std::vector<AtomicOp> ops(kRegisters);
        for (int k = 0; k < kRegisters; ++k) {
          ops[k].kind = AtomicOp::Kind::kGet;
          ops[k].key = Slice(keys[k]);
        }
        r.inv = tick();
        Status st = store->ExecuteAtomicBatch(ops.data(), ops.size());
        r.resp = tick();
        if (!st.ok()) {
          r.version = UINT64_MAX;
        } else {
          // Collapse the K records into one read: all registers must carry
          // the SAME intact version, else the snapshot is torn.
          for (int k = 0; k < kRegisters; ++k) {
            if (ops[k].status.IsNotFound()) {
              r.not_found = true;
              break;
            }
            const uint64_t v = ops[k].status.ok()
                                   ? ParseVersionValue(ops[k].result)
                                   : UINT64_MAX;
            if (k == 0) {
              r.version = v;
            } else if (v != r.version) {
              r.version = UINT64_MAX;
              break;
            }
          }
        }
        reads[t].push_back(r);
      } while (!done.load(std::memory_order_acquire));
    });
  }
  writer.join();
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  ASSERT_TRUE(writer_status.ok()) << label << ": " << writer_status.ToString();

  EXPECT_EQ(CheckSingleWriterRegister(writes, reads), "") << label;
  size_t total_reads = 0;
  for (const auto& r : reads) total_reads += r.size();
  EXPECT_GT(total_reads, 0u) << label;

  // Batch books: nothing failed, so every admitted op applied, with one MT
  // pass per written shard per batch at most.
  EXPECT_EQ(CoreMetric(store.get(), "batch_ops_admitted"),
            CoreMetric(store.get(), "batch_ops_applied"))
      << label;
  EXPECT_EQ(CoreMetric(store.get(), "batch_ops_rolled_back"), 0u) << label;
  EXPECT_LE(CoreMetric(store.get(), "batch_mt_update_passes"),
            CoreMetric(store.get(), "batch_shard_touches"))
      << label;
  obs::InvariantReport inv = store->CheckInvariants();
  EXPECT_TRUE(inv.ok()) << label << ": " << inv.ToString();
}

TEST(Linearizability, MultiRegisterAtomicBatchesLinearizeLocked) {
  RunMultiRegisterHistory(ReadMode::kLocked, "Baseline-H locked batches");
}

TEST(Linearizability, MultiRegisterAtomicBatchesLinearizeOptimistic) {
  // Optimistic mode: concurrent single-key lock-free GETs race the batch
  // seqlock windows elsewhere in this battery; here the MULTIGET batches
  // themselves take the locks, and the seqlock brackets around each batch
  // keep any lock-free reader from trusting a mid-batch probe.
  RunMultiRegisterHistory(ReadMode::kOptimistic,
                          "Baseline-H optimistic batches");
}

// --- deterministic torn-read choreography -----------------------------------

// Test-side stall latch: parks a thread at an armed stall point until the
// test releases it, so the writer can be held mid-publish while a reader
// probes the half-written state.
class StallLatch : public fault::StallHook {
 public:
  void Arm(fault::StallPoint p) {
    std::lock_guard<std::mutex> l(mu_);
    armed_[Idx(p)] = true;
  }
  void OnStall(fault::StallPoint p) override {
    std::unique_lock<std::mutex> l(mu_);
    if (!armed_[Idx(p)]) return;  // one-shot: retries pass through freely
    armed_[Idx(p)] = false;
    parked_[Idx(p)] = true;
    cv_.notify_all();
    cv_.wait(l, [&] { return released_[Idx(p)]; });
    released_[Idx(p)] = false;
    parked_[Idx(p)] = false;
  }
  void WaitUntilParked(fault::StallPoint p) {
    std::unique_lock<std::mutex> l(mu_);
    cv_.wait(l, [&] { return parked_[Idx(p)]; });
  }
  void Release(fault::StallPoint p) {
    std::lock_guard<std::mutex> l(mu_);
    released_[Idx(p)] = true;
    cv_.notify_all();
  }

 private:
  static size_t Idx(fault::StallPoint p) { return static_cast<size_t>(p); }
  static constexpr size_t kN =
      static_cast<size_t>(fault::StallPoint::kNumStallPoints);

  std::mutex mu_;
  std::condition_variable cv_;
  bool armed_[kN] = {};
  bool parked_[kN] = {};
  bool released_[kN] = {};
};

class StallScope {
 public:
  explicit StallScope(StallLatch* latch) { fault::SetStall(latch); }
  ~StallScope() { fault::SetStall(nullptr); }
};

// Drives the deterministic interleaving: reader parked between its first
// seq read and the probe → writer parked inside its publish window →
// reader released into the half-written state → writer released. Returns
// the reader's result and whether it was served lock-free.
struct TornProbeResult {
  Status status;
  std::string value;
  bool lock_free = false;
};

TornProbeResult RunTornChoreography(ShardedStore* store,
                                    const std::string& key,
                                    const std::string& new_value,
                                    fault::StallPoint writer_point,
                                    bool reader_finishes_before_writer) {
  StallLatch latch;
  StallScope scope(&latch);

  latch.Arm(fault::StallPoint::kOptimisticReadBody);
  TornProbeResult out;
  std::thread reader([&]() {
    out.status = store->Get(key, &out.value, &out.lock_free);
  });
  latch.WaitUntilParked(fault::StallPoint::kOptimisticReadBody);

  // The reader has read an even shard version and stands before the probe.
  // Start the overwrite and park it inside its publish window (the shard
  // version is odd from here until the writer completes).
  latch.Arm(writer_point);
  Status writer_status;
  std::thread writer([&]() { writer_status = store->Put(key, new_value); });
  latch.WaitUntilParked(writer_point);

  // Reader probes the half-written state.
  latch.Release(fault::StallPoint::kOptimisticReadBody);
  if (reader_finishes_before_writer) {
    // Broken validation: the probe returns the torn mix directly, with no
    // need for the lock — join the reader while the writer is STILL parked
    // mid-publish, so the probe provably raced the half-written state.
    reader.join();
    latch.Release(writer_point);
    writer.join();
  } else {
    // Intact validation: while the writer stays parked the shard version
    // stays odd, so every retry races and the reader must fall back. Hold
    // the writer until the fallback counter proves the reader gave up
    // (it increments before the reader blocks on the shard lock the
    // parked writer holds), then let the writer finish so the locked read
    // can proceed.
    while (store->TEST_OptimisticFallbacks(0) == 0) {
      std::this_thread::yield();
    }
    latch.Release(writer_point);
    reader.join();
    writer.join();
  }
  EXPECT_TRUE(writer_status.ok()) << writer_status.ToString();
  return out;
}

TEST(TornRead, BrokenValidationObservesTheTornValue) {
  // NEGATIVE CONTROL. Skip the second seqlock read and the torn plaintext
  // mix becomes an observable read result — the battery's proof that the
  // revalidation (not luck) is what makes the Baseline scheme safe.
  std::unique_ptr<ShardedStore> store;
  ASSERT_TRUE(
      ShardedStore::Create(OptimisticOptions(Scheme::kBaseline), &store)
          .ok());
  const std::string key = MakeKey(7);
  ASSERT_TRUE(store->Put(key, VersionValue(1)).ok());

  store->TEST_SetBrokenValidation(true);
  TornProbeResult r = RunTornChoreography(
      store.get(), key, VersionValue(2),
      fault::StallPoint::kBaselineValuePublish,
      /*reader_finishes_before_writer=*/true);
  store->TEST_SetBrokenValidation(false);

  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.lock_free);
  // The observed value is provably torn: it parses as neither version.
  EXPECT_EQ(ParseVersionValue(r.value), UINT64_MAX)
      << "expected a torn mix, got: " << r.value;
  EXPECT_NE(r.value, VersionValue(1));
  EXPECT_NE(r.value, VersionValue(2));

  // And the history checker catches exactly this: a broken validation
  // surfaces as a torn-value violation, never silently.
  std::vector<WriteRec> writes = {{0, 0}, {1, 2}, {3, 8}};
  std::vector<std::vector<ReadRec>> reads(1);
  reads[0] = {{4, 5, ParseVersionValue(r.value), false}};
  EXPECT_NE(CheckSingleWriterRegister(writes, reads).find("torn"),
            std::string::npos);
}

TEST(TornRead, IntactValidationNeverReturnsTheTornValue) {
  // Same choreography, validation ON: the probe lands in the same torn
  // window, but the odd shard version forces retry → fallback, and the
  // reader comes back with the complete new value.
  std::unique_ptr<ShardedStore> store;
  ASSERT_TRUE(
      ShardedStore::Create(OptimisticOptions(Scheme::kBaseline), &store)
          .ok());
  const std::string key = MakeKey(7);
  ASSERT_TRUE(store->Put(key, VersionValue(1)).ok());

  TornProbeResult r = RunTornChoreography(
      store.get(), key, VersionValue(2),
      fault::StallPoint::kBaselineValuePublish,
      /*reader_finishes_before_writer=*/false);

  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_FALSE(r.lock_free) << "a raced probe must not count as lock-free";
  EXPECT_EQ(r.value, VersionValue(2));
  // The shard version stays odd while the writer is parked, so the reader
  // deterministically exhausts its retries and falls back.
  EXPECT_GE(CoreMetric(store.get(), "optimistic_fallbacks"), 1u);
  EXPECT_GE(CoreMetric(store.get(), "optimistic_retries"), 1u);
}

TEST(TornRead, AriaMacMismatchDemotesToFallbackNotViolation) {
  // Aria's CoW overwrite bumps the trusted counter before publishing the
  // new block: a reader probing inside that window sees the OLD block
  // against the NEW counter and fails MAC verification. On the lock-free
  // path that is indistinguishable from this exact benign race, so it must
  // demote to a locked fallback — never surface IntegrityViolation.
  std::unique_ptr<ShardedStore> store;
  ASSERT_TRUE(
      ShardedStore::Create(OptimisticOptions(Scheme::kAriaNoCache), &store)
          .ok());
  const std::string key = MakeKey(7);
  ASSERT_TRUE(store->Put(key, VersionValue(1)).ok());

  TornProbeResult r = RunTornChoreography(
      store.get(), key, VersionValue(2),
      fault::StallPoint::kAriaCounterPublish,
      /*reader_finishes_before_writer=*/false);

  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_FALSE(r.lock_free);
  EXPECT_EQ(r.value, VersionValue(2));
  EXPECT_GE(CoreMetric(store.get(), "optimistic_fallbacks"), 1u);

  obs::InvariantReport inv = store->CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

}  // namespace
}  // namespace aria
