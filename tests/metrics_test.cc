// Unit tests for the observability primitives: Snapshot arithmetic
// (Get/SumSuffix/PrefixesOf/Delta/Accumulate), sink prefixing, registry
// collection and the JSON emitter.
#include <gtest/gtest.h>

#include <string>

#include "obs/invariants.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace aria::obs {
namespace {

/// Minimal Observable emitting a fixed pair of metrics.
class FakeLayer : public Observable {
 public:
  FakeLayer(uint64_t events, uint64_t level)
      : events_(events), level_(level) {}

  void CollectMetrics(MetricSink* sink) const override {
    sink->Counter("events", events_);
    sink->Gauge("level", level_);
  }

 private:
  uint64_t events_;
  uint64_t level_;
};

TEST(SnapshotTest, GetReturnsZeroWhenAbsent) {
  Snapshot s;
  EXPECT_EQ(s.Get("nope"), 0u);
  EXPECT_FALSE(s.Has("nope"));
  s.Set("a.hits", 3, MetricKind::kCounter);
  EXPECT_EQ(s.Get("a.hits"), 3u);
  EXPECT_TRUE(s.Has("a.hits"));
}

TEST(SnapshotTest, SumSuffixAddsAllMatches) {
  Snapshot s;
  s.Set("cm.tree0.cache.hits", 5, MetricKind::kCounter);
  s.Set("cm.tree1.cache.hits", 7, MetricKind::kCounter);
  s.Set("index.hits", 100, MetricKind::kCounter);
  s.Set("cm.tree0.cache.misses", 2, MetricKind::kCounter);
  EXPECT_EQ(s.SumSuffix(".cache.hits"), 12u);
  EXPECT_EQ(s.SumSuffix("hits"), 112u);
  EXPECT_EQ(s.SumSuffix(".nothing"), 0u);
}

TEST(SnapshotTest, PrefixesOfEnumeratesInstances) {
  Snapshot s;
  s.Set("cm.tree0.cache.accesses", 1, MetricKind::kCounter);
  s.Set("cm.tree1.cache.accesses", 1, MetricKind::kCounter);
  s.Set("cm.tree1.cache.hits", 1, MetricKind::kCounter);
  auto prefixes = s.PrefixesOf(".cache.accesses");
  ASSERT_EQ(prefixes.size(), 2u);
  EXPECT_EQ(prefixes[0], "cm.tree0");
  EXPECT_EQ(prefixes[1], "cm.tree1");
}

TEST(SnapshotTest, DeltaSubtractsCountersKeepsGauges) {
  Snapshot before;
  before.Set("ops", 10, MetricKind::kCounter);
  before.Set("bytes", 500, MetricKind::kGauge);
  Snapshot after;
  after.Set("ops", 25, MetricKind::kCounter);
  after.Set("bytes", 300, MetricKind::kGauge);
  after.Set("fresh", 4, MetricKind::kCounter);
  Snapshot d = after.Delta(before);
  EXPECT_EQ(d.Get("ops"), 15u);
  EXPECT_EQ(d.Get("bytes"), 300u);  // gauge: later value, not a difference
  EXPECT_EQ(d.Get("fresh"), 4u);
}

TEST(SnapshotTest, AccumulateAddsBothKinds) {
  Snapshot a;
  a.Set("ops", 10, MetricKind::kCounter);
  a.Set("bytes", 100, MetricKind::kGauge);
  Snapshot b;
  b.Set("ops", 5, MetricKind::kCounter);
  b.Set("bytes", 50, MetricKind::kGauge);
  b.Set("only_b", 1, MetricKind::kCounter);
  a.Accumulate(b);
  EXPECT_EQ(a.Get("ops"), 15u);
  EXPECT_EQ(a.Get("bytes"), 150u);
  EXPECT_EQ(a.Get("only_b"), 1u);
}

TEST(RegistryTest, CollectPrefixesEachLayer) {
  FakeLayer sgx(10, 1), alloc(20, 2);
  MetricsRegistry registry;
  registry.Register("sgx", &sgx);
  registry.Register("alloc", &alloc);
  Snapshot s = registry.Collect();
  EXPECT_EQ(s.Get("sgx.events"), 10u);
  EXPECT_EQ(s.Get("sgx.level"), 1u);
  EXPECT_EQ(s.Get("alloc.events"), 20u);
  EXPECT_EQ(s.Get("alloc.level"), 2u);
  EXPECT_EQ(s.size(), 4u);
}

TEST(RegistryTest, RegistriesNest) {
  FakeLayer inner_layer(7, 3);
  MetricsRegistry inner;
  inner.Register("cache", &inner_layer);
  MetricsRegistry outer;
  outer.Register("shard0", &inner);
  Snapshot s = outer.Collect();
  EXPECT_EQ(s.Get("shard0.cache.events"), 7u);
  EXPECT_EQ(s.Get("shard0.cache.level"), 3u);
}

TEST(PrefixedSinkTest, NestedPrefixesCompose) {
  Snapshot s;
  struct Collector : MetricSink {
    Snapshot* out;
    void Counter(std::string_view name, uint64_t v) override {
      out->Set(std::string(name), v, MetricKind::kCounter);
    }
    void Gauge(std::string_view name, uint64_t v) override {
      out->Set(std::string(name), v, MetricKind::kGauge);
    }
  } collector;
  collector.out = &s;
  PrefixedSink outer(&collector, "cm");
  PrefixedSink inner(&outer, "tree0.cache");
  inner.Counter("hits", 9);
  EXPECT_EQ(s.Get("cm.tree0.cache.hits"), 9u);
}

TEST(JsonTest, SnapshotSerializesSortedFlat) {
  Snapshot s;
  s.Set("b.two", 2, MetricKind::kCounter);
  s.Set("a.one", 1, MetricKind::kGauge);
  std::string json = ToJson(s, /*indent=*/0);
  // Sorted map: "a.one" must appear before "b.two".
  size_t a = json.find("\"a.one\": 1");
  size_t b = json.find("\"b.two\": 2");
  ASSERT_NE(a, std::string::npos) << json;
  ASSERT_NE(b, std::string::npos) << json;
  EXPECT_LT(a, b);
  EXPECT_EQ(json.front(), '{');
  ASSERT_GE(json.size(), 2u);
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline after the brace
}

TEST(JsonTest, BenchArtifactEnvelope) {
  Snapshot s;
  s.Set("sgx.ocalls", 12, MetricKind::kCounter);
  std::string json = BenchArtifactJson(
      "metrics_smoke", "Aria-H", {{"ops", 1000.0}, {"throughput", 5.5}}, s);
  EXPECT_NE(json.find("\"bench\": \"metrics_smoke\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"label\": \"Aria-H\""), std::string::npos);
  EXPECT_NE(json.find("\"ops\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"sgx.ocalls\": 12"), std::string::npos);
}

TEST(InvariantReportTest, ToStringListsViolations) {
  InvariantReport report;
  report.laws_checked.push_back("cache-access-conservation");
  EXPECT_NE(report.ToString().find("1 invariant laws hold"),
            std::string::npos);
  report.violations.push_back({"cache-access-conservation", "3 != 4"});
  EXPECT_FALSE(report.ok());
  std::string s = report.ToString();
  EXPECT_NE(s.find("cache-access-conservation"), std::string::npos);
  EXPECT_NE(s.find("3 != 4"), std::string::npos);
}

TEST(InvariantCheckerTest, ShardSumsCatchMismatch) {
  Snapshot s0, s1;
  s0.Set("index.ops", 10, MetricKind::kCounter);
  s1.Set("index.ops", 5, MetricKind::kCounter);
  Snapshot aggregate;
  aggregate.Set("index.ops", 15, MetricKind::kCounter);

  InvariantReport ok_report;
  InvariantChecker::CheckShardSums({s0, s1}, aggregate, &ok_report);
  EXPECT_TRUE(ok_report.ok()) << ok_report.ToString();

  aggregate.Set("index.ops", 14, MetricKind::kCounter);
  InvariantReport bad_report;
  InvariantChecker::CheckShardSums({s0, s1}, aggregate, &bad_report);
  EXPECT_FALSE(bad_report.ok());
}

TEST(InvariantCheckerTest, SyntheticSnapshotViolationDetected) {
  // A hand-built snapshot where the cache books don't balance: 3 hits +
  // 1 miss but 5 accesses recorded.
  Snapshot snap;
  snap.Set("cm.tree0.cache.accesses", 5, MetricKind::kCounter);
  snap.Set("cm.tree0.cache.hits", 3, MetricKind::kCounter);
  snap.Set("cm.tree0.cache.misses", 1, MetricKind::kCounter);
  snap.Set("cm.reads", 5, MetricKind::kCounter);
  InvariantContext ctx;
  ctx.has_secure_cache = true;
  ctx.has_counter_store = true;
  InvariantReport report = InvariantChecker(ctx).Check(snap);
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.law == "cache-access-conservation") found = true;
  }
  EXPECT_TRUE(found) << report.ToString();
}

}  // namespace
}  // namespace aria::obs
