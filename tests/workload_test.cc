// Tests for workload generators: zipf skew statistics, determinism, the
// ETC size mix, and the replay driver.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/store_factory.h"
#include "workload/driver.h"
#include "workload/etc.h"
#include "workload/ycsb.h"
#include "workload/zipf.h"

namespace aria {
namespace {

TEST(Zipf, RanksWithinRange) {
  ZipfGenerator z(1000, 0.99, 5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(z.NextRank(), 1000u);
    EXPECT_LT(z.NextKey(), 1000u);
  }
}

TEST(Zipf, DeterministicForSeed) {
  ZipfGenerator a(1000, 0.99, 5), b(1000, 0.99, 5), c(1000, 0.99, 6);
  bool same = true, differs = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t ka = a.NextKey();
    if (ka != b.NextKey()) same = false;
    if (ka != c.NextKey()) differs = true;
  }
  EXPECT_TRUE(same);
  EXPECT_TRUE(differs);
}

TEST(Zipf, SkewConcentratesMass) {
  // At theta=0.99 the most popular rank should draw ~10%+ of 0-rank hits
  // over n=10000 and the top-64 ranks well over a third of all traffic.
  ZipfGenerator z(10000, 0.99, 9);
  std::map<uint64_t, int> counts;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) counts[z.NextRank()]++;
  EXPECT_GT(counts[0], kDraws / 20);
  int top64 = 0;
  for (uint64_t r = 0; r < 64; ++r) top64 += counts[r];
  EXPECT_GT(top64, kDraws / 3);
}

// Chi-square goodness of fit against the analytic Zipf PMF
// p(rank) = (rank+1)^-theta / zeta_n(theta), with ranks 0 and 1 bucketed
// individually and the tail in log-spaced ranges so every expected count is
// comfortably >= 5. The bound is loose (the Gray et al. sampler inverts the
// CDF approximately for middle ranks), but a wrong theta overshoots it by
// orders of magnitude — which the cross-fit below demonstrates.
double ZipfChiSquare(uint64_t n, double sample_theta, double pmf_theta,
                     uint64_t seed, int draws) {
  std::vector<double> pmf(n);
  double zeta = 0.0;
  for (uint64_t r = 0; r < n; ++r) {
    pmf[r] = 1.0 / std::pow(static_cast<double>(r + 1), pmf_theta);
    zeta += pmf[r];
  }
  for (uint64_t r = 0; r < n; ++r) pmf[r] /= zeta;

  ZipfGenerator z(n, sample_theta, seed);
  std::vector<int> counts(n, 0);
  for (int i = 0; i < draws; ++i) counts[z.NextRank()]++;

  // Buckets: {0}, {1}, [2,4), [4,8), ... last one clipped at n.
  double stat = 0.0;
  uint64_t lo = 0, hi = 1;
  while (lo < n) {
    double expected = 0.0;
    long observed = 0;
    for (uint64_t r = lo; r < hi && r < n; ++r) {
      expected += pmf[r] * draws;
      observed += counts[r];
    }
    double d = observed - expected;
    stat += d * d / expected;
    lo = hi;
    hi = (hi < 2) ? hi + 1 : hi * 2;
  }
  return stat;
}

TEST(Zipf, ChiSquareMatchesAnalyticPmf) {
  const int kDraws = 100000;
  for (double theta : {0.5, 0.99}) {
    double stat = ZipfChiSquare(1000, theta, theta, /*seed=*/17, kDraws);
    // 11 buckets -> 10 degrees of freedom; chi2_{0.999,10} ~= 29.6. The
    // sampler's inverse-CDF approximation overdraws ranks just past its
    // two special-cased top ranks, which costs ~215 at theta=0.99 with
    // these draws; 500 absorbs that while a mis-parameterized sampler
    // (below) scores ~180000.
    EXPECT_LT(stat, 500.0) << "theta " << theta;
    // Power check: the same draws scored against the other theta's PMF
    // must be rejected overwhelmingly.
    double wrong = ZipfChiSquare(1000, theta, theta == 0.5 ? 0.99 : 0.5,
                                 /*seed=*/17, kDraws);
    EXPECT_GT(wrong, 10000.0) << "theta " << theta;
  }
}

TEST(Zipf, ThetaOneIsWellBehaved) {
  // theta == 1.0 exactly must not degenerate to a single-rank distribution
  // (the raw Gray formula divides by 1-theta).
  ZipfGenerator z(10000, 1.0, 7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.NextRank()]++;
  EXPECT_GT(counts.size(), 100u);           // many distinct ranks drawn
  EXPECT_LT(counts[0], 50000 * 3 / 10);     // rank 0 is hot but not all
}

TEST(Zipf, HigherSkewMoreConcentrated) {
  auto mass_top1 = [](double theta) {
    ZipfGenerator z(10000, theta, 3);
    int zero = 0;
    for (int i = 0; i < 100000; ++i) zero += z.NextRank() == 0;
    return zero;
  };
  EXPECT_LT(mass_top1(0.8), mass_top1(1.2));
}

TEST(Zipf, ScrambleSpreadsHotKeys) {
  ZipfGenerator z(1 << 20, 0.99, 4);
  // The hottest scrambled keys should not all be tiny ids.
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.NextKey()]++;
  uint64_t hottest = 0;
  int best = 0;
  for (auto& [k, c] : counts) {
    if (c > best) {
      best = c;
      hottest = k;
    }
  }
  EXPECT_GT(hottest, 1000u);  // scrambled away from rank position
}

TEST(Zipf, UnscrambledClustersHotKeysAtLowIds) {
  // Default workload mode: hot keys are the low ranks themselves, so their
  // counters (assigned in insertion order) cluster into few Merkle leaves —
  // the locality assumption DESIGN.md documents.
  YcsbSpec spec;
  spec.keyspace = 1 << 20;
  spec.scrambled = false;
  YcsbWorkload wl(spec);
  uint64_t low = 0;
  const int kOps = 50000;
  for (int i = 0; i < kOps; ++i) {
    low += wl.Next().key_id < 1024;
  }
  // Zipf 0.99: the top-1024 ranks carry roughly half the traffic.
  EXPECT_GT(low, kOps / 4u);
}

TEST(Zipf, ScrambledOptionSpreadsThem) {
  YcsbSpec spec;
  spec.keyspace = 1 << 20;
  spec.scrambled = true;
  YcsbWorkload wl(spec);
  uint64_t low = 0;
  const int kOps = 50000;
  for (int i = 0; i < kOps; ++i) {
    low += wl.Next().key_id < 1024;
  }
  EXPECT_LT(low, kOps / 20u);
}

TEST(Etc, ScrambledFlagRespected) {
  EtcSpec spec;
  spec.keyspace = 1 << 20;
  spec.scrambled = false;
  EtcWorkload wl(spec);
  uint64_t low = 0;
  for (int i = 0; i < 20000; ++i) low += wl.Next().key_id < 1024;
  EXPECT_GT(low, 4000u);
}

TEST(Uniform, CoversKeyspaceEvenly) {
  UniformGenerator u(100, 8);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) counts[u.NextKey()]++;
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(counts[i], 1000, 250) << i;
  }
}

TEST(MakeKey, Fixed16Bytes) {
  EXPECT_EQ(MakeKey(0).size(), 16u);
  EXPECT_EQ(MakeKey(99999999).size(), 16u);
  EXPECT_NE(MakeKey(1), MakeKey(2));
  EXPECT_EQ(MakeKey(42), MakeKey(42));
}

TEST(MakeValue, DeterministicPerVersion) {
  EXPECT_EQ(MakeValue(7, 32, 1), MakeValue(7, 32, 1));
  EXPECT_NE(MakeValue(7, 32, 1), MakeValue(7, 32, 2));
  EXPECT_NE(MakeValue(7, 32, 1), MakeValue(8, 32, 1));
  EXPECT_EQ(MakeValue(7, 100).size(), 100u);
}

TEST(Ycsb, ReadRatioRespected) {
  YcsbSpec spec;
  spec.keyspace = 1000;
  spec.read_ratio = 0.95;
  YcsbWorkload wl(spec);
  int gets = 0;
  const int kOps = 100000;
  for (int i = 0; i < kOps; ++i) {
    Op op = wl.Next();
    gets += op.type == OpType::kGet;
    EXPECT_LT(op.key_id, 1000u);
    EXPECT_EQ(op.value_size, spec.value_size);
  }
  EXPECT_NEAR(gets / static_cast<double>(kOps), 0.95, 0.01);
}

TEST(Ycsb, UniformModeUsesUniformGenerator) {
  YcsbSpec spec;
  spec.keyspace = 64;
  spec.distribution = KeyDistribution::kUniform;
  YcsbWorkload wl(spec);
  std::vector<int> counts(64, 0);
  for (int i = 0; i < 64000; ++i) counts[wl.Next().key_id]++;
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(counts[i], 1000, 300);
}

TEST(Etc, SizeMixMatchesPopulations) {
  EtcSpec spec;
  spec.keyspace = 10000;
  EtcWorkload wl(spec);
  // Per-key sizes: ids < 40% tiny, < 95% small, rest large.
  EXPECT_LE(wl.ValueSizeFor(0), 13u);
  EXPECT_GE(wl.ValueSizeFor(5000), 14u);
  EXPECT_LE(wl.ValueSizeFor(5000), 300u);
  EXPECT_GT(wl.ValueSizeFor(9999), 300u);
  // Sizes are deterministic per key.
  EXPECT_EQ(wl.ValueSizeFor(1234), wl.ValueSizeFor(1234));
}

TEST(Etc, RequestMixAndRanges) {
  EtcSpec spec;
  spec.keyspace = 10000;
  spec.read_ratio = 0.5;
  EtcWorkload wl(spec);
  int large = 0, gets = 0;
  const int kOps = 100000;
  for (int i = 0; i < kOps; ++i) {
    Op op = wl.Next();
    EXPECT_LT(op.key_id, 10000u);
    large += op.key_id >= wl.tiny_small_keys();
    gets += op.type == OpType::kGet;
  }
  EXPECT_NEAR(large / static_cast<double>(kOps), 0.05, 0.01);
  EXPECT_NEAR(gets / static_cast<double>(kOps), 0.5, 0.01);
}

TEST(Driver, PrepopulateAndReplay) {
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.keyspace = 2000;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  Driver driver;
  ASSERT_TRUE(driver.Prepopulate(bundle.store.get(), 2000, 16).ok());
  EXPECT_EQ(bundle.store->size(), 2000u);

  YcsbSpec spec;
  spec.keyspace = 2000;
  spec.read_ratio = 0.5;
  auto result =
      driver.RunYcsb(bundle.store.get(), bundle.enclave.get(), spec, 5000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ops, 5000u);
  EXPECT_EQ(result->not_found, 0u);  // all keys prepopulated
  EXPECT_GT(result->Throughput(), 0.0);
  EXPECT_GT(result->TotalSeconds(), 0.0);
  EXPECT_NEAR(result->gets / 5000.0, 0.5, 0.05);
}

TEST(Driver, SimulatedTimeIncludedForSgxHeavySchemes) {
  StoreOptions opts;
  opts.scheme = Scheme::kBaseline;
  opts.keyspace = 3000;
  opts.epc_budget_bytes = 256 * 1024;  // tiny EPC: heavy paging
  opts.num_buckets = 512;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  Driver driver;
  ASSERT_TRUE(driver.Prepopulate(bundle.store.get(), 3000, 64).ok());
  YcsbSpec spec;
  spec.keyspace = 3000;
  spec.distribution = KeyDistribution::kUniform;
  auto result =
      driver.RunYcsb(bundle.store.get(), bundle.enclave.get(), spec, 2000);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->sim_seconds, 0.0);
  EXPECT_GT(bundle.enclave->stats().page_swaps, 0u);
}

TEST(Driver, EtcReplayEndToEnd) {
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.keyspace = 2000;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  EtcSpec spec;
  spec.keyspace = 2000;
  EtcWorkload wl(spec);
  Driver driver;
  ASSERT_TRUE(driver
                  .Prepopulate(bundle.store.get(), 2000,
                               [&wl](uint64_t id) { return wl.ValueSizeFor(id); })
                  .ok());
  auto result =
      driver.RunEtc(bundle.store.get(), bundle.enclave.get(), spec, 3000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->not_found, 0u);
}

}  // namespace
}  // namespace aria
