// Tests for Aria-B+ (the paper's §VII future-work index): ordered
// semantics, leaf-chain range scans, splits, deletes, integrity audits and
// a randomized reference test.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/aria_bplus.h"
#include "core/store_factory.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

class AriaBPlusTest : public ::testing::Test {
 protected:
  void Build(uint64_t keyspace = 1 << 16) {
    StoreOptions opts;
    opts.scheme = Scheme::kAria;
    opts.index = IndexKind::kBPlusTree;
    opts.keyspace = keyspace;
    opts.cache_bytes = 1 << 20;
    ASSERT_TRUE(CreateStore(opts, &bundle_).ok());
    EXPECT_EQ(bundle_.label, "Aria-B+");
    store_ = bundle_.store.get();
    tree_ = static_cast<AriaBPlusTree*>(store_);
  }

  StoreBundle bundle_;
  KVStore* store_ = nullptr;
  AriaBPlusTree* tree_ = nullptr;
};

TEST_F(AriaBPlusTest, PutGetSingle) {
  Build();
  ASSERT_TRUE(store_->Put("k", "v").ok());
  std::string v;
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, "v");
  EXPECT_EQ(tree_->height(), 1);
  ASSERT_TRUE(tree_->VerifyFullIntegrity().ok());
}

TEST_F(AriaBPlusTest, MissingIsNotFound) {
  Build();
  std::string v;
  EXPECT_TRUE(store_->Get("missing", &v).IsNotFound());
  ASSERT_TRUE(store_->Put("a", "1").ok());
  EXPECT_TRUE(store_->Get("b", &v).IsNotFound());
  EXPECT_TRUE(store_->Delete("b").IsNotFound());
}

TEST_F(AriaBPlusTest, LeafSplitCreatesSeparatorCopy) {
  Build();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), "v").ok());
  }
  EXPECT_EQ(tree_->height(), 2);
  EXPECT_GE(tree_->stats().splits, 1u);
  // Every key is still reachable — including the one that was copied up as
  // a separator (B+ semantics keep the record itself in the leaf).
  std::string v;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(store_->Get(MakeKey(i), &v).ok()) << i;
  }
  ASSERT_TRUE(tree_->VerifyFullIntegrity().ok());
}

TEST_F(AriaBPlusTest, AscendingAndDescendingInserts) {
  Build();
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), MakeValue(i, 20)).ok());
  }
  for (int i = 999; i >= 600; --i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), MakeValue(i, 20)).ok());
  }
  std::string v;
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(store_->Get(MakeKey(i), &v).ok()) << i;
    ASSERT_EQ(v, MakeValue(i, 20));
  }
  for (int i = 600; i < 1000; ++i) {
    ASSERT_TRUE(store_->Get(MakeKey(i), &v).ok()) << i;
  }
  EXPECT_EQ(store_->size(), 800u);
  ASSERT_TRUE(tree_->VerifyFullIntegrity().ok());
}

TEST_F(AriaBPlusTest, OverwriteDoesNotGrowTree) {
  Build();
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(store_->Put(MakeKey(i), "a").ok());
  uint64_t splits = tree_->stats().splits;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(store_->Put(MakeKey(i), "b").ok());
  EXPECT_EQ(tree_->stats().splits, splits);
  EXPECT_EQ(store_->size(), 100u);
  std::string v;
  ASSERT_TRUE(store_->Get(MakeKey(42), &v).ok());
  EXPECT_EQ(v, "b");
}

TEST_F(AriaBPlusTest, RangeScanWalksLeafChain) {
  Build();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i * 3), MakeValue(i * 3, 8)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  // Start between keys; collect across multiple leaves.
  ASSERT_TRUE(tree_->RangeScan(MakeKey(100), 40, &out).ok());
  ASSERT_EQ(out.size(), 40u);
  EXPECT_EQ(out[0].first, MakeKey(102));
  for (size_t i = 0; i + 1 < out.size(); ++i) {
    EXPECT_LT(out[i].first, out[i + 1].first);
  }
  // Scan everything.
  ASSERT_TRUE(tree_->RangeScan("", 10000, &out).ok());
  EXPECT_EQ(out.size(), 200u);
}

TEST_F(AriaBPlusTest, ScanCheaperThanSubtreeWalk) {
  Build();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), "v").ok());
  }
  uint64_t descents_before = tree_->stats().descent_decrypts;
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->RangeScan(MakeKey(500), 20, &out).ok());
  ASSERT_EQ(out.size(), 20u);
  // One descent (few separator decrypts) plus ~20 record decrypts — far
  // less than visiting the whole subtree.
  EXPECT_LT(tree_->stats().descent_decrypts - descents_before, 30u);
  EXPECT_GE(tree_->stats().scan_decrypts, 20u);
}

TEST_F(AriaBPlusTest, DeleteFromLeaves) {
  Build();
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(store_->Put(MakeKey(i), "v").ok());
  for (int i = 0; i < 300; i += 2) {
    ASSERT_TRUE(store_->Delete(MakeKey(i)).ok()) << i;
  }
  std::string v;
  for (int i = 0; i < 300; ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(store_->Get(MakeKey(i), &v).IsNotFound()) << i;
    } else {
      ASSERT_TRUE(store_->Get(MakeKey(i), &v).ok()) << i;
    }
  }
  EXPECT_EQ(store_->size(), 150u);
  ASSERT_TRUE(tree_->VerifyFullIntegrity().ok());
  // Scans skip deleted keys.
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->RangeScan("", 1000, &out).ok());
  EXPECT_EQ(out.size(), 150u);
}

TEST_F(AriaBPlusTest, ReinsertAfterDelete) {
  Build();
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(store_->Put(MakeKey(i), "1").ok());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(store_->Delete(MakeKey(i)).ok());
  EXPECT_EQ(store_->size(), 0u);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(store_->Put(MakeKey(i), "2").ok());
  std::string v;
  ASSERT_TRUE(store_->Get(MakeKey(25), &v).ok());
  EXPECT_EQ(v, "2");
  ASSERT_TRUE(tree_->VerifyFullIntegrity().ok());
}

TEST_F(AriaBPlusTest, RandomizedAgainstStdMap) {
  Build();
  Random rng(777);
  std::map<std::string, std::string> model;
  std::string v;
  for (int step = 0; step < 8000; ++step) {
    uint64_t id = rng.Uniform(500);
    std::string key = MakeKey(id);
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      std::string value =
          MakeValue(id, 1 + rng.Uniform(100), static_cast<uint32_t>(step));
      ASSERT_TRUE(store_->Put(key, value).ok()) << step;
      model[key] = value;
    } else if (dice < 0.8) {
      Status st = store_->Get(key, &v);
      auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_TRUE(st.ok()) << step << " " << st.ToString();
        ASSERT_EQ(v, it->second) << step;
      } else {
        ASSERT_TRUE(st.IsNotFound()) << step;
      }
    } else {
      Status st = store_->Delete(key);
      ASSERT_EQ(model.erase(key) > 0, st.ok()) << step;
    }
    ASSERT_EQ(store_->size(), model.size()) << step;
  }
  ASSERT_TRUE(tree_->VerifyFullIntegrity().ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->RangeScan("", model.size() + 1, &out).ok());
  ASSERT_EQ(out.size(), model.size());
  auto it = model.begin();
  for (size_t i = 0; i < out.size(); ++i, ++it) {
    EXPECT_EQ(out[i].first, it->first);
    EXPECT_EQ(out[i].second, it->second);
  }
}

TEST_F(AriaBPlusTest, RecordTamperAndSwapDetected) {
  Build();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), MakeValue(i, 32)).ok());
  }
  // Flip a ciphertext bit of one leaf record.
  uint8_t** slot = tree_->DebugRecordSlot(MakeKey(30));
  ASSERT_NE(slot, nullptr);
  (*slot)[RecordCodec::kHeaderSize] ^= 1;
  std::string v;
  EXPECT_TRUE(tree_->Get(MakeKey(30), &v).IsIntegrityViolation());
  (*slot)[RecordCodec::kHeaderSize] ^= 1;  // restore
  ASSERT_TRUE(tree_->Get(MakeKey(30), &v).ok());

  // Exchange two record pointers (AdField binding must catch it).
  uint8_t** s1 = tree_->DebugRecordSlot(MakeKey(10));
  uint8_t** s2 = tree_->DebugRecordSlot(MakeKey(90));
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  std::swap(*s1, *s2);
  Status st1 = tree_->Get(MakeKey(10), &v);
  Status st2 = tree_->Get(MakeKey(90), &v);
  EXPECT_TRUE(st1.IsIntegrityViolation() || st2.IsIntegrityViolation());
  EXPECT_TRUE(tree_->VerifyFullIntegrity().IsIntegrityViolation());
}

TEST_F(AriaBPlusTest, WorksWithTrustedCounterStore) {
  StoreOptions opts;
  opts.scheme = Scheme::kAriaNoCache;
  opts.index = IndexKind::kBPlusTree;
  opts.keyspace = 2048;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  EXPECT_EQ(bundle.label, "Aria-B+ w/o Cache");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(bundle.store->Put(MakeKey(i), "x").ok());
  }
  std::string v;
  ASSERT_TRUE(bundle.store->Get(MakeKey(77), &v).ok());
}

}  // namespace
}  // namespace aria
