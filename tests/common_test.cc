#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"

namespace aria {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::CapacityExceeded().IsCapacityExceeded());
  EXPECT_TRUE(Status::IntegrityViolation("MAC").IsIntegrityViolation());
  EXPECT_TRUE(Status::Internal().IsInternal());
  EXPECT_EQ(Status::IntegrityViolation("MAC mismatch").ToString(),
            "IntegrityViolation: MAC mismatch");
  EXPECT_FALSE(Status::NotFound().ok());
}

TEST(Status, ReturnIfErrorMacro) {
  auto inner = []() { return Status::NotFound("gone"); };
  auto outer = [&]() -> Status {
    ARIA_RETURN_IF_ERROR(inner());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(Result, ValueAndStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> bad(Status::NotFound());
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
}

TEST(Slice, CompareAndEquality) {
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("abd"));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("b").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("").compare(Slice("")), 0);
  EXPECT_TRUE(Slice("").empty());
}

TEST(Slice, FromStringAndBack) {
  std::string s = "hello\0world";
  Slice sl(s);
  EXPECT_EQ(sl.ToString(), s);
  EXPECT_EQ(sl.size(), s.size());
}

TEST(Random, DeterministicPerSeed) {
  Random a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Random a2(1);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Random, UniformInRange) {
  Random r(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.Uniform(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Random, UniformCoversAllValues) {
  Random r(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, DoubleInUnitInterval) {
  Random r(5);
  for (int i = 0; i < 10000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, BernoulliRoughlyCalibrated) {
  Random r(6);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Hash64, StableAndSpread) {
  EXPECT_EQ(Hash64("abc", 3), Hash64("abc", 3));
  EXPECT_NE(Hash64("abc", 3), Hash64("abd", 3));
  EXPECT_NE(Hash64("abc", 3, 0), Hash64("abc", 3, 1));
  // Distribution sanity: bucket 64k values into 16 bins.
  std::map<uint64_t, int> bins;
  for (uint64_t i = 0; i < 65536; ++i) {
    bins[Hash64(&i, sizeof(i)) % 16]++;
  }
  for (auto& [bin, count] : bins) {
    EXPECT_NEAR(count, 4096, 400) << "bin " << bin;
  }
}

TEST(Hash64, EmptyAndShortInputs) {
  EXPECT_EQ(Hash64(nullptr, 0), Hash64(nullptr, 0));
  uint8_t b = 7;
  EXPECT_NE(Hash64(&b, 1), Hash64(nullptr, 0));
}

TEST(KeyHint, DiffersFromBucketHash) {
  Slice k("somekey12345");
  EXPECT_NE(static_cast<uint64_t>(KeyHint(k)), Hash64(k) & 0xFFFFFFFFu);
}

}  // namespace
}  // namespace aria
