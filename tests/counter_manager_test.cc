// Tests for the redirection layer / counter area: fetch/free cycles,
// circular-buffer recycling, attack detection on the free ring, and MT
// expansion.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "alloc/heap_allocator.h"
#include "crypto/aes.h"
#include "crypto/cmac.h"
#include "crypto/secure_random.h"
#include "metadata/counter_manager.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {
namespace {

class CounterManagerTest : public ::testing::Test {
 protected:
  CounterManagerTest()
      : enclave_(64ull * 1024 * 1024),
        alloc_(&enclave_),
        rng_(55),
        aes_(Key()),
        cmac_(aes_) {}

  static const uint8_t* Key() {
    static uint8_t key[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
    return key;
  }

  void Build(uint64_t per_tree = 1024) {
    CounterManagerConfig cfg;
    cfg.counters_per_tree = per_tree;
    cfg.arity = 8;
    cfg.cache.capacity_bytes = 64 * 1024;
    cfg.cache.pinned_levels = 2;
    cfg.cache.stop_swap_enabled = false;
    cfg.growth_cache = cfg.cache;
    mgr_ = std::make_unique<CounterManager>(&enclave_, &alloc_, &cmac_,
                                            &rng_, cfg);
    ASSERT_TRUE(mgr_->Init().ok());
  }

  sgx::EnclaveRuntime enclave_;
  HeapAllocator alloc_;
  crypto::SecureRandom rng_;
  crypto::Aes128 aes_;
  crypto::Cmac128 cmac_;
  std::unique_ptr<CounterManager> mgr_;
};

TEST_F(CounterManagerTest, FetchReturnsDistinctSlots) {
  Build();
  std::set<RedPtr> ids;
  for (int i = 0; i < 100; ++i) {
    auto r = mgr_->FetchCounter();
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(ids.insert(r.value()).second);
  }
  EXPECT_EQ(mgr_->used_counters(), 100u);
}

TEST_F(CounterManagerTest, FreeAndRecycle) {
  Build();
  auto a = mgr_->FetchCounter();
  ASSERT_TRUE(a.ok());
  auto b = mgr_->FetchCounter();
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(mgr_->FreeCounter(a.value()).ok());
  EXPECT_EQ(mgr_->used_counters(), 1u);
  auto c = mgr_->FetchCounter();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value(), a.value());  // circular buffer recycles
  EXPECT_GE(mgr_->stats().recycled, 1u);
}

TEST_F(CounterManagerTest, DoubleFreeDetected) {
  Build();
  auto a = mgr_->FetchCounter();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(mgr_->FreeCounter(a.value()).ok());
  EXPECT_TRUE(mgr_->FreeCounter(a.value()).IsIntegrityViolation());
}

TEST_F(CounterManagerTest, FreeOfNeverFetchedDetected) {
  Build();
  EXPECT_TRUE(mgr_->FreeCounter(500).IsIntegrityViolation());
}

TEST_F(CounterManagerTest, BogusRedPtrRejected) {
  Build();
  uint8_t ctr[16];
  EXPECT_TRUE(mgr_->ReadCounter(1ull << 48, ctr).IsIntegrityViolation());
  EXPECT_TRUE(mgr_->ReadCounter(99999999, ctr).IsIntegrityViolation());
}

TEST_F(CounterManagerTest, RingReplayAttackDetected) {
  // The circular free buffer lives in untrusted memory; an attacker
  // rewrites a freed slot number to an in-use slot, hoping to get the
  // allocator to hand out a counter twice (enabling counter reuse).
  Build();
  auto a = mgr_->FetchCounter();
  auto b = mgr_->FetchCounter();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(mgr_->FreeCounter(a.value()).ok());
  // The ring is the only untrusted uint64 buffer holding slot a; overwrite
  // its entry with slot b's index. We don't have direct access to the ring
  // pointer here, so emulate the attack through its observable effect:
  // fetch must validate against the bitmap. Freeing b then corrupting is
  // equivalent; instead we free b and fetch twice - first fetch recycles a,
  // second recycles b, third bumps. All must be distinct.
  ASSERT_TRUE(mgr_->FreeCounter(b.value()).ok());
  auto c1 = mgr_->FetchCounter();
  auto c2 = mgr_->FetchCounter();
  auto c3 = mgr_->FetchCounter();
  ASSERT_TRUE(c1.ok() && c2.ok() && c3.ok());
  EXPECT_NE(c1.value(), c2.value());
  EXPECT_NE(c2.value(), c3.value());
}

TEST_F(CounterManagerTest, ReadAndBumpThroughCache) {
  Build();
  auto a = mgr_->FetchCounter();
  ASSERT_TRUE(a.ok());
  uint8_t v1[16], v2[16], v3[16];
  ASSERT_TRUE(mgr_->ReadCounter(a.value(), v1).ok());
  ASSERT_TRUE(mgr_->BumpCounter(a.value(), v2).ok());
  EXPECT_NE(0, std::memcmp(v1, v2, 16));
  ASSERT_TRUE(mgr_->ReadCounter(a.value(), v3).ok());
  EXPECT_EQ(0, std::memcmp(v2, v3, 16));
}

TEST_F(CounterManagerTest, ExpansionCreatesNewTree) {
  Build(/*per_tree=*/64);
  std::set<RedPtr> ids;
  for (int i = 0; i < 200; ++i) {
    auto r = mgr_->FetchCounter();
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_TRUE(ids.insert(r.value()).second);
  }
  EXPECT_GE(mgr_->num_trees(), 2u);
  EXPECT_EQ(mgr_->used_counters(), 200u);
  // Counters in expansion trees work end to end.
  uint8_t ctr[16];
  for (RedPtr id : ids) {
    ASSERT_TRUE(mgr_->BumpCounter(id, ctr).ok());
  }
}

TEST_F(CounterManagerTest, ExhaustAndRecycleAcrossWrap) {
  Build(/*per_tree=*/64);
  std::vector<RedPtr> ids;
  for (int i = 0; i < 64; ++i) {
    auto r = mgr_->FetchCounter();
    ASSERT_TRUE(r.ok());
    ids.push_back(r.value());
  }
  // Free all, re-fetch all, several times: exercises ring wraparound.
  for (int round = 0; round < 5; ++round) {
    for (RedPtr id : ids) ASSERT_TRUE(mgr_->FreeCounter(id).ok());
    ids.clear();
    for (int i = 0; i < 64; ++i) {
      auto r = mgr_->FetchCounter();
      ASSERT_TRUE(r.ok());
      ids.push_back(r.value());
    }
    // All from tree 0, no expansion needed.
    EXPECT_EQ(mgr_->num_trees(), 1u);
  }
}

TEST_F(CounterManagerTest, BackgroundReservationAdoptsPreparedTree) {
  Build(/*per_tree=*/256);
  std::set<RedPtr> ids;
  // Crossing 90% of tree 0 starts the background build; exhausting it must
  // adopt the prepared tree rather than building synchronously.
  for (int i = 0; i < 600; ++i) {
    auto r = mgr_->FetchCounter();
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_TRUE(ids.insert(r.value()).second);
  }
  EXPECT_GE(mgr_->num_trees(), 3u);
  EXPECT_GE(mgr_->stats().background_reservations, 1u);
  // Counters from adopted trees are fully functional and verified.
  uint8_t ctr[16];
  for (RedPtr id : ids) {
    ASSERT_TRUE(mgr_->BumpCounter(id, ctr).ok());
    ASSERT_TRUE(mgr_->ReadCounter(id, ctr).ok());
  }
}

TEST_F(CounterManagerTest, ReservationDisabledBuildsSynchronously) {
  CounterManagerConfig cfg;
  cfg.counters_per_tree = 128;
  cfg.arity = 8;
  cfg.cache.capacity_bytes = 64 * 1024;
  cfg.cache.pinned_levels = 2;
  cfg.cache.stop_swap_enabled = false;
  cfg.growth_cache = cfg.cache;
  cfg.reserve_threshold = 0;  // disabled
  mgr_ = std::make_unique<CounterManager>(&enclave_, &alloc_, &cmac_, &rng_,
                                          cfg);
  ASSERT_TRUE(mgr_->Init().ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(mgr_->FetchCounter().ok()) << i;
  }
  EXPECT_GE(mgr_->num_trees(), 3u);
  EXPECT_EQ(mgr_->stats().background_reservations, 0u);
  EXPECT_GE(mgr_->stats().synchronous_expansions, 2u);
}

TEST_F(CounterManagerTest, PendingReservationCleanedUpOnDestruction) {
  Build(/*per_tree=*/1024);
  // Start a reservation but never exhaust the tree: the destructor must
  // join the worker without leaking or hanging.
  for (int i = 0; i < 950; ++i) {
    ASSERT_TRUE(mgr_->FetchCounter().ok());
  }
  mgr_.reset();  // joins the pending worker
}

TEST_F(CounterManagerTest, CacheStatsAggregate) {
  Build();
  auto a = mgr_->FetchCounter();
  ASSERT_TRUE(a.ok());
  uint8_t ctr[16];
  ASSERT_TRUE(mgr_->ReadCounter(a.value(), ctr).ok());
  ASSERT_TRUE(mgr_->ReadCounter(a.value(), ctr).ok());
  SecureCacheStats s = mgr_->CacheStats();
  EXPECT_GE(s.hits + s.misses, 2u);
}

}  // namespace
}  // namespace aria
