// Network serving layer battery (DESIGN.md §11), labeled `net` in CTest:
//
//  * protocol round trips and a table of crafted malformed frames
//  * a seeded, replayable fuzz battery (>= 12k malformed/mutated frames)
//    against both decoders — run under ASan/UBSan via check_sanitizers.sh
//  * loopback end-to-end differential: 4 pipelined client connections vs
//    per-thread std::map oracles over a 4-shard Aria hash store, with the
//    end-of-serving conservation-law audit after graceful shutdown
//  * socket-level garbage (the server must answer ProtocolError or close,
//    never crash, and keep serving fresh connections)
//  * slow-client backpressure (bounded output buffer drops the peer)
//  * max-connection admission, torn-write and connection-drop fault
//    injection through the aria::fault::NetInjector latch
//  * multi-loop serving (DESIGN.md §12): 4 epoll loops x 8 pipelined
//    connections vs the oracle, per-loop counter reconciliation
//    (net-loop-conservation), and loop-targeted conn-drop injection that
//    must leave the other loops serving
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/fault_injection.h"
#include "common/random.h"
#include "core/sharded_store.h"
#include "core/store_factory.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/invariants.h"
#include "obs/metrics.h"
#include "testing/replay.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

using net::Client;
using net::DecodeResult;
using net::OpCode;
using net::Request;
using net::Response;
using net::Server;
using net::ServerOptions;
using net::WireStatus;

// --- helpers ---------------------------------------------------------------

std::string EncodedRequest(const Request& req) {
  std::string out;
  net::EncodeRequest(req, &out);
  return out;
}

Request GetReq(std::string key) {
  Request r;
  r.op = OpCode::kGet;
  r.key = std::move(key);
  return r;
}

Request PutReq(std::string key, std::string value) {
  Request r;
  r.op = OpCode::kPut;
  r.key = std::move(key);
  r.value = std::move(value);
  return r;
}

/// A small sharded Aria hash store + server on an ephemeral loopback port.
struct ServerFixture {
  StoreBundle bundle;
  std::unique_ptr<Server> server;

  Status Init(uint32_t shards, uint64_t keyspace, ServerOptions options = {},
              Scheme scheme = Scheme::kAria,
              IndexKind index = IndexKind::kHash) {
    StoreOptions o;
    o.scheme = scheme;
    o.index = index;
    o.keyspace = keyspace;
    o.num_shards = shards;
    ARIA_RETURN_IF_ERROR(CreateStore(o, &bundle));
    server = std::make_unique<Server>(bundle.store.get(), options);
    bundle.registry.Register("net", server.get());
    return server->Start();
  }

  uint16_t port() const { return server->port(); }
};

// --- protocol round trips --------------------------------------------------

TEST(NetProtocol, RequestRoundTripsEveryOpcode) {
  std::vector<Request> reqs;
  reqs.push_back(GetReq("alpha"));
  reqs.push_back(PutReq("beta", std::string(300, 'v')));
  Request del;
  del.op = OpCode::kDelete;
  del.key = "gamma";
  reqs.push_back(del);
  Request scan;
  scan.op = OpCode::kScan;
  scan.key = "";  // scans may start at the beginning of the keyspace
  scan.scan_limit = 17;
  reqs.push_back(scan);
  Request ping;
  ping.op = OpCode::kPing;
  reqs.push_back(ping);

  // Concatenate all frames, then decode them back incrementally.
  std::string wire;
  for (const Request& r : reqs) net::EncodeRequest(r, &wire);
  size_t off = 0;
  for (const Request& want : reqs) {
    Request got;
    std::string error;
    size_t consumed = 0;
    ASSERT_EQ(net::DecodeRequest(wire.data() + off, wire.size() - off,
                                 &consumed, &got, &error),
              DecodeResult::kFrame)
        << error;
    EXPECT_EQ(got.op, want.op);
    EXPECT_EQ(got.key, want.key);
    EXPECT_EQ(got.value, want.value);
    EXPECT_EQ(got.scan_limit, want.scan_limit);
    off += consumed;
  }
  EXPECT_EQ(off, wire.size());

  // A partial prefix of any frame is kNeedMore, never an error.
  std::string one = EncodedRequest(PutReq("key", "value"));
  for (size_t cut = 0; cut < one.size(); ++cut) {
    Request got;
    std::string error;
    size_t consumed = 0;
    EXPECT_EQ(net::DecodeRequest(one.data(), cut, &consumed, &got, &error),
              DecodeResult::kNeedMore)
        << "cut at " << cut;
  }
}

TEST(NetProtocol, ResponseAndScanPayloadRoundTrip) {
  std::vector<std::pair<std::string, std::string>> rows = {
      {"a", "1"}, {"bb", std::string(100, 'x')}, {"ccc", ""}};
  std::string payload;
  EXPECT_EQ(net::EncodeScanPayload(rows, 1 << 20, &payload), 3u);

  std::string wire;
  net::EncodeResponse(WireStatus::kOk, payload, &wire);
  Response resp;
  std::string error;
  size_t consumed = 0;
  ASSERT_EQ(net::DecodeResponse(wire.data(), wire.size(), &consumed, &resp,
                                &error),
            DecodeResult::kFrame)
      << error;
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(resp.status, WireStatus::kOk);

  std::vector<std::pair<std::string, std::string>> back;
  ASSERT_TRUE(net::DecodeScanPayload(resp.payload, &back).ok());
  EXPECT_EQ(back, rows);

  // Truncation: a tiny budget keeps the payload parseable with fewer rows.
  std::string small;
  size_t encoded = net::EncodeScanPayload(rows, 4 + 6 + 2, &small);
  EXPECT_EQ(encoded, 1u);
  ASSERT_TRUE(net::DecodeScanPayload(small, &back).ok());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].first, "a");
}

TEST(NetProtocol, StatusMappingIsLossless) {
  const Status statuses[] = {
      Status::OK(),           Status::NotFound("x"),
      Status::InvalidArgument("x"), Status::CapacityExceeded("x"),
      Status::IntegrityViolation("x"), Status::Internal("x")};
  for (const Status& st : statuses) {
    EXPECT_EQ(net::FromWire(net::ToWire(st), st.message()).code(), st.code());
  }
}

// --- crafted malformed frames ----------------------------------------------

void ExpectRequestError(std::string frame, const char* what) {
  Request req;
  std::string error;
  size_t consumed = 0;
  EXPECT_EQ(net::DecodeRequest(frame.data(), frame.size(), &consumed, &req,
                               &error),
            DecodeResult::kError)
      << what << " (error: " << error << ")";
}

std::string U32(uint32_t v) {
  std::string s(4, '\0');
  std::memcpy(s.data(), &v, 4);  // little-endian host
  return s;
}

TEST(NetProtocol, RejectsCraftedMalformedFrames) {
  // Declared body length below the fixed header.
  ExpectRequestError(U32(3) + std::string(3, '\0'), "undersized body");
  // Declared body length beyond the hard multi-op bound: rejected from the
  // 4-byte prefix alone, BEFORE any buffering of the claimed payload.
  {
    std::string huge = U32(net::kMaxMultiRequestBodyBytes + 1);
    Request req;
    std::string error;
    size_t consumed = 0;
    EXPECT_EQ(net::DecodeRequest(huge.data(), huge.size(), &consumed, &req,
                                 &error),
              DecodeResult::kError);
  }
  // Unknown opcode.
  {
    std::string f = U32(7);
    f += '\x09';
    f += std::string(2, '\0');  // key_len = 0
    f += U32(0);
    ExpectRequestError(f, "unknown opcode");
  }
  // key_len does not tile the body (declared pieces vs. body mismatch).
  {
    std::string f = U32(7 + 4);
    f += '\x01';  // GET
    uint16_t kl = 100;  // within kMaxKeyBytes, but only 4 key bytes present
    f.append(reinterpret_cast<char*>(&kl), 2);
    f += U32(0);
    f += "abcd";
    ExpectRequestError(f, "key_len does not tile body");
  }
  // key_len beyond the absolute key bound.
  {
    std::string f = U32(7 + 2000);
    f += '\x01';
    uint16_t kl = 2000;
    f.append(reinterpret_cast<char*>(&kl), 2);
    f += U32(0);
    f += std::string(2000, 'k');
    ExpectRequestError(f, "key too long");
  }
  // Zero-length key on a point op.
  {
    std::string f = U32(7);
    f += '\x01';
    f += std::string(2, '\0');
    f += U32(0);
    ExpectRequestError(f, "zero-length GET key");
  }
  // PUT whose declared value length exceeds the bound (full body present:
  // the aux check runs once the declared frame is buffered, and the frame
  // itself stays under kMaxRequestBodyBytes).
  {
    std::string f = U32(7 + 1 + (net::kMaxValueBytes + 1));
    f += '\x02';
    uint16_t kl = 1;
    f.append(reinterpret_cast<char*>(&kl), 2);
    f += U32(net::kMaxValueBytes + 1);
    f += "k";
    f += std::string(net::kMaxValueBytes + 1, 'v');
    ExpectRequestError(f, "oversized PUT value");
  }
  // Scan limit beyond the bound.
  {
    std::string f = U32(7 + 1);
    f += '\x04';
    uint16_t kl = 1;
    f.append(reinterpret_cast<char*>(&kl), 2);
    f += U32(net::kMaxScanLimit + 1);
    f += "a";
    ExpectRequestError(f, "oversized scan limit");
  }
  // Non-zero aux on GET (slack bytes the decoder must not ignore).
  {
    std::string f = U32(7 + 1);
    f += '\x01';
    uint16_t kl = 1;
    f.append(reinterpret_cast<char*>(&kl), 2);
    f += U32(5);
    f += "a";
    ExpectRequestError(f, "aux slack on GET");
  }
  // Body length with trailing slack after the declared pieces.
  {
    std::string f = U32(7 + 1 + 3);
    f += '\x01';
    uint16_t kl = 1;
    f.append(reinterpret_cast<char*>(&kl), 2);
    f += U32(0);
    f += "a";
    f += "xyz";
    ExpectRequestError(f, "trailing slack");
  }
}

// --- seeded fuzz battery ---------------------------------------------------

// Every iteration builds a frame in one of four shapes (random bytes, a
// truncated valid frame, a byte-mutated valid frame, a valid header with
// hostile lengths) and feeds it to the decoder. The decoder must return a
// verdict without crashing or over-reading (ASan would catch both); kFrame
// results must satisfy every documented bound.
TEST(NetProtocol, FuzzRequestDecoder12k) {
  const uint64_t seed = testing::EffectiveSeed(0xF322);
  SCOPED_TRACE(testing::ReplayRecipe(seed, "net_test"));
  Random rng(seed);
  constexpr int kIters = 12'000;
  int frames = 0, errors = 0, need_more = 0;
  for (int i = 0; i < kIters; ++i) {
    std::string buf;
    switch (rng.Uniform(4)) {
      case 0: {  // random bytes
        size_t len = rng.Uniform(96);
        buf.resize(len);
        for (auto& c : buf) c = static_cast<char>(rng.Uniform(256));
        break;
      }
      case 1: {  // truncated valid frame
        Request r = rng.Bernoulli(0.5)
                        ? PutReq(std::string(1 + rng.Uniform(32), 'k'),
                                 std::string(rng.Uniform(256), 'v'))
                        : GetReq(std::string(1 + rng.Uniform(32), 'k'));
        buf = EncodedRequest(r);
        buf.resize(rng.Uniform(buf.size() + 1));
        break;
      }
      case 2: {  // mutated valid frame
        Request r = PutReq(std::string(1 + rng.Uniform(16), 'k'),
                           std::string(rng.Uniform(64), 'v'));
        buf = EncodedRequest(r);
        size_t flips = 1 + rng.Uniform(4);
        for (size_t f = 0; f < flips; ++f) {
          buf[rng.Uniform(buf.size())] ^= static_cast<char>(
              1 + rng.Uniform(255));
        }
        break;
      }
      default: {  // valid-looking header, hostile lengths
        uint32_t body_len = static_cast<uint32_t>(rng.Uniform(1 << 21));
        buf = U32(body_len);
        buf += static_cast<char>(rng.Uniform(8));
        uint16_t kl = static_cast<uint16_t>(rng.Uniform(1 << 16));
        buf.append(reinterpret_cast<char*>(&kl), 2);
        buf += U32(static_cast<uint32_t>(rng.Uniform(1u << 20)));
        buf += std::string(rng.Uniform(128), 'x');
        break;
      }
    }
    Request req;
    std::string error;
    size_t consumed = 0;
    DecodeResult r = net::DecodeRequest(buf.data(), buf.size(), &consumed,
                                        &req, &error);
    switch (r) {
      case DecodeResult::kFrame:
        frames++;
        ASSERT_LE(consumed, buf.size());
        ASSERT_LE(req.key.size(), net::kMaxKeyBytes);
        ASSERT_LE(req.value.size(), net::kMaxValueBytes);
        ASSERT_LE(req.scan_limit, net::kMaxScanLimit);
        break;
      case DecodeResult::kError:
        errors++;
        ASSERT_FALSE(error.empty());
        break;
      case DecodeResult::kNeedMore:
        need_more++;
        break;
    }
  }
  // The mix must actually exercise all three verdicts.
  EXPECT_GT(frames, 0);
  EXPECT_GT(errors, kIters / 4);
  EXPECT_GT(need_more, 0);
}

TEST(NetProtocol, FuzzResponseDecoderAndScanPayload) {
  const uint64_t seed = testing::EffectiveSeed(0xF323);
  SCOPED_TRACE(testing::ReplayRecipe(seed, "net_test"));
  Random rng(seed);
  for (int i = 0; i < 6'000; ++i) {
    std::string buf;
    if (rng.Bernoulli(0.5)) {
      size_t len = rng.Uniform(64);
      buf.resize(len);
      for (auto& c : buf) c = static_cast<char>(rng.Uniform(256));
    } else {
      net::EncodeResponse(static_cast<WireStatus>(rng.Uniform(8)),
                          std::string(rng.Uniform(128), 'p'), &buf);
      if (rng.Bernoulli(0.7)) {
        buf[rng.Uniform(buf.size())] ^= static_cast<char>(
            1 + rng.Uniform(255));
      }
    }
    Response resp;
    std::string error;
    size_t consumed = 0;
    net::DecodeResponse(buf.data(), buf.size(), &consumed, &resp, &error);

    // Random bytes through the scan-payload parser as well.
    std::string payload(rng.Uniform(96), '\0');
    for (auto& c : payload) c = static_cast<char>(rng.Uniform(256));
    std::vector<std::pair<std::string, std::string>> rows;
    net::DecodeScanPayload(payload, &rows);
  }
}

// --- ShardedStore batch execution ------------------------------------------

TEST(NetBatch, ExecuteBatchGroupsByShardAndPreservesPerKeyOrder) {
  StoreOptions o;
  o.scheme = Scheme::kAria;
  o.keyspace = 4096;
  o.num_shards = 4;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(o, &bundle).ok());
  auto* sharded = dynamic_cast<ShardedStore*>(bundle.store.get());
  ASSERT_NE(sharded, nullptr);

  // PUT then GET of the same key inside one batch must see the PUT; a GET
  // of a never-written key must come back NotFound.
  std::vector<std::string> keys, values;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(MakeKey(static_cast<uint64_t>(i)));
    values.push_back(MakeValue(static_cast<uint64_t>(i), 32));
  }
  std::vector<BatchOp> ops;
  for (int i = 0; i < 64; ++i) {
    BatchOp put;
    put.kind = BatchOp::Kind::kPut;
    put.key = Slice(keys[i]);
    put.value = Slice(values[i]);
    ops.push_back(put);
    BatchOp get;
    get.kind = BatchOp::Kind::kGet;
    get.key = Slice(keys[i]);
    ops.push_back(get);
  }
  std::string missing = MakeKey(9999);
  BatchOp miss;
  miss.kind = BatchOp::Kind::kGet;
  miss.key = Slice(missing);
  ops.push_back(miss);

  sharded->ExecuteBatch(ops.data(), ops.size());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(ops[2 * i].status.ok()) << ops[2 * i].status.ToString();
    ASSERT_TRUE(ops[2 * i + 1].status.ok());
    EXPECT_EQ(ops[2 * i + 1].result, values[i]);
  }
  EXPECT_TRUE(ops.back().status.IsNotFound());

  // The audit must hold right after a batch (same laws as op-by-op).
  obs::InvariantReport report = sharded->CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- multi-key atomic frames (DESIGN.md §15) --------------------------------

Request MultiReq(OpCode op, std::vector<net::MultiOp> ops) {
  Request r;
  r.op = op;
  r.ops = std::move(ops);
  return r;
}

TEST(NetProtocol, MultiOpRequestRoundTripsAllThreeOpcodesAndZeroOpBatches) {
  std::vector<Request> reqs;
  reqs.push_back(MultiReq(OpCode::kMultiGet,
                          {{"alpha", ""}, {"beta", ""}, {"gamma", ""}}));
  reqs.push_back(MultiReq(OpCode::kMultiPut,
                          {{"k1", std::string(200, 'v')}, {"k2", ""}}));
  reqs.push_back(MultiReq(OpCode::kAtomicRmw, {{"counter", "new-value"}}));
  // A zero-op batch is VALID on the wire (a degenerate atomic unit the
  // server answers with an empty result list), not a protocol error.
  reqs.push_back(MultiReq(OpCode::kMultiGet, {}));
  reqs.push_back(MultiReq(OpCode::kAtomicRmw, {}));

  std::string wire;
  for (const Request& r : reqs) net::EncodeRequest(r, &wire);
  size_t off = 0;
  for (const Request& want : reqs) {
    Request got;
    std::string error;
    size_t consumed = 0;
    ASSERT_EQ(net::DecodeRequest(wire.data() + off, wire.size() - off,
                                 &consumed, &got, &error),
              DecodeResult::kFrame)
        << error;
    EXPECT_EQ(got.op, want.op);
    ASSERT_EQ(got.ops.size(), want.ops.size());
    for (size_t i = 0; i < want.ops.size(); ++i) {
      EXPECT_EQ(got.ops[i].key, want.ops[i].key);
      if (want.op != OpCode::kMultiGet) {
        EXPECT_EQ(got.ops[i].value, want.ops[i].value);
      }
    }
    off += consumed;
  }
  EXPECT_EQ(off, wire.size());

  // Any partial prefix of a multi frame is kNeedMore, never an error.
  std::string one = EncodedRequest(
      MultiReq(OpCode::kMultiPut, {{"key-a", "val-a"}, {"key-b", "val-b"}}));
  for (size_t cut = 0; cut < one.size(); ++cut) {
    Request got;
    std::string error;
    size_t consumed = 0;
    EXPECT_EQ(net::DecodeRequest(one.data(), cut, &consumed, &got, &error),
              DecodeResult::kNeedMore)
        << "cut at " << cut;
  }
}

TEST(NetProtocol, RejectsCraftedMalformedMultiFrames) {
  auto u16 = [](uint16_t v) {
    std::string s(2, '\0');
    std::memcpy(s.data(), &v, 2);
    return s;
  };
  // Frame skeleton: header with key_len = 0, aux = declared count.
  auto multi_header = [&](OpCode op, uint32_t count, uint32_t body_len) {
    std::string f = U32(body_len);
    f += static_cast<char>(op);
    f += u16(0);
    f += U32(count);
    return f;
  };

  // Batch op count beyond the hard bound, body otherwise minimal.
  ExpectRequestError(
      multi_header(OpCode::kMultiGet, net::kMaxBatchOps + 1,
                   net::kRequestFixedBytes),
      "batch op count beyond kMaxBatchOps");

  // count x entry-size overflow bait: a count that claims more entry
  // headers than the body could ever hold. The u64 offset math must reject
  // at the first truncated header instead of wrapping.
  ExpectRequestError(
      multi_header(OpCode::kMultiPut, 255, net::kRequestFixedBytes + 6) +
          u16(1) + U32(0) + "k",
      "count claims entries the body cannot hold");

  // Truncated LAST entry: two declared ops, the second's bytes cut short.
  {
    std::string f;
    f += static_cast<char>(OpCode::kMultiPut);
    f += u16(0);
    f += U32(2);
    f += u16(2) + U32(3) + "ab" + "xyz";  // entry 0, complete
    f += u16(2) + U32(3) + "cd";          // entry 1: 3 value bytes missing
    ExpectRequestError(U32(static_cast<uint32_t>(f.size())) + f,
                       "last entry bytes truncated");
  }

  // A multi-op header carrying a key (key_len != 0) is malformed.
  {
    std::string f;
    f += static_cast<char>(OpCode::kMultiGet);
    f += u16(3);
    f += U32(1);
    f += "abc";
    f += u16(1) + "k";
    ExpectRequestError(U32(static_cast<uint32_t>(f.size())) + f,
                       "multi-op frame with header key");
  }

  // Zero-length entry key (empty keys are meaningless for point ops).
  {
    std::string f;
    f += static_cast<char>(OpCode::kMultiGet);
    f += u16(0);
    f += U32(1);
    f += u16(0);
    ExpectRequestError(U32(static_cast<uint32_t>(f.size())) + f,
                       "zero-length entry key");
  }

  // Entry key / value lengths beyond the absolute bounds.
  {
    std::string f;
    f += static_cast<char>(OpCode::kMultiGet);
    f += u16(0);
    f += U32(1);
    f += u16(static_cast<uint16_t>(net::kMaxKeyBytes + 1));
    f += std::string(net::kMaxKeyBytes + 1, 'k');
    ExpectRequestError(U32(static_cast<uint32_t>(f.size())) + f,
                       "entry key beyond kMaxKeyBytes");
  }
  {
    std::string f;
    f += static_cast<char>(OpCode::kMultiPut);
    f += u16(0);
    f += U32(1);
    f += u16(1) + U32(net::kMaxValueBytes + 1) + "k";
    // Declared value bound is checked before the bytes are demanded, so the
    // frame need not actually carry 64K+1 value bytes — pad to the declared
    // body length with a shorter run to keep the decoder past kNeedMore.
    ExpectRequestError(U32(static_cast<uint32_t>(f.size())) + f,
                       "entry value beyond kMaxValueBytes");
  }

  // Trailing slack after the last entry: entries must tile the body.
  {
    std::string f;
    f += static_cast<char>(OpCode::kMultiGet);
    f += u16(0);
    f += U32(1);
    f += u16(1) + "k";
    f += "slack";
    ExpectRequestError(U32(static_cast<uint32_t>(f.size())) + f,
                       "entries do not tile the body");
  }

  // Single-op early rejection: a body length beyond the single-op bound is
  // an error the moment the opcode byte shows it is NOT a multi frame —
  // before the peer makes the server buffer the claimed body.
  {
    std::string partial = U32(net::kMaxRequestBodyBytes + 1);
    partial += '\x01';  // GET
    Request req;
    std::string error;
    size_t consumed = 0;
    EXPECT_EQ(net::DecodeRequest(partial.data(), partial.size(), &consumed,
                                 &req, &error),
              DecodeResult::kError)
        << "oversized single-op body must be rejected from the opcode byte";
    // The same declared length with no opcode visible yet is kNeedMore: it
    // is still within the multi-op ceiling, so the verdict must wait.
    std::string prefix_only = U32(net::kMaxRequestBodyBytes + 1);
    EXPECT_EQ(net::DecodeRequest(prefix_only.data(), prefix_only.size(),
                                 &consumed, &req, &error),
              DecodeResult::kNeedMore);
  }
}

TEST(NetProtocol, MultiResultPayloadRoundTripBoundsAndFuzz) {
  std::vector<net::MultiResult> results;
  results.push_back({WireStatus::kOk, std::string(300, 'v')});
  results.push_back({WireStatus::kNotFound, ""});
  results.push_back({WireStatus::kOk, ""});
  results.push_back({WireStatus::kInternal, "batch aborted"});

  std::string payload;
  ASSERT_TRUE(net::EncodeMultiResultPayload(results, 1 << 20, &payload));
  std::vector<net::MultiResult> back;
  ASSERT_TRUE(net::DecodeMultiResultPayload(payload, &back).ok());
  ASSERT_EQ(back.size(), results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(back[i].status, results[i].status);
    EXPECT_EQ(back[i].value, results[i].value);
  }

  // Zero records round trip too (the zero-op batch's answer).
  std::string empty_payload;
  ASSERT_TRUE(net::EncodeMultiResultPayload({}, 1 << 20, &empty_payload));
  ASSERT_TRUE(net::DecodeMultiResultPayload(empty_payload, &back).ok());
  EXPECT_TRUE(back.empty());

  // All-or-nothing encoding: a budget too small for every record refuses
  // outright and leaves `out` untouched — multi responses are never
  // truncated (unlike scan payloads), the server answers CapacityExceeded.
  std::string refused = "sentinel";
  EXPECT_FALSE(net::EncodeMultiResultPayload(results, 64, &refused));
  EXPECT_EQ(refused, "sentinel");

  // Seeded fuzz: random bytes and bit-flipped valid payloads through the
  // decoder; it must never crash and never accept slack or bad lengths.
  const uint64_t seed = testing::EffectiveSeed(0xBA7C4);
  SCOPED_TRACE(testing::ReplayRecipe(seed, "net_test"));
  Random rng(seed);
  for (int i = 0; i < 6'000; ++i) {
    std::string buf;
    if (rng.Bernoulli(0.5)) {
      buf.resize(rng.Uniform(96));
      for (auto& c : buf) c = static_cast<char>(rng.Uniform(256));
    } else {
      std::vector<net::MultiResult> rs(rng.Uniform(5));
      for (auto& r : rs) {
        r.status = static_cast<WireStatus>(rng.Uniform(7));
        r.value = std::string(rng.Uniform(64), 'x');
      }
      ASSERT_TRUE(net::EncodeMultiResultPayload(rs, 1 << 20, &buf));
      if (!buf.empty() && rng.Bernoulli(0.7)) {
        buf[rng.Uniform(buf.size())] ^=
            static_cast<char>(1 + rng.Uniform(255));
      }
    }
    std::vector<net::MultiResult> rows;
    net::DecodeMultiResultPayload(buf, &rows);
  }
}

TEST(NetServer, MultiOpsOverTheWireMatchOracleWithMixedPipelinedTraffic) {
  ServerFixture fx;
  ASSERT_TRUE(fx.Init(/*shards=*/4, /*keyspace=*/8192).ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  // One connection mixing pipelined single-key traffic with multi-key
  // atomic frames IN THE SAME PIPELINE, against a local std::map oracle.
  // Per-connection FIFO makes the oracle exact: each frame executes against
  // the state every earlier frame left behind, and a multi frame is a batch
  // barrier ordered after every point op decoded before it.
  const uint64_t seed = testing::EffectiveSeed(0xBA7C5);
  SCOPED_TRACE(testing::ReplayRecipe(seed, "net_test"));
  Random rng(seed);
  std::map<std::string, std::string> oracle;

  struct Expected {
    bool is_multi = false;
    OpCode op = OpCode::kPing;
    // Single-op expectation.
    bool found = false;
    std::string value;
    // Multi-op expectation: one record per entry, in op order.
    std::vector<net::MultiResult> records;
  };
  std::vector<Expected> window;
  uint64_t sent_multigets = 0, sent_multiputs = 0, sent_rmws = 0;
  uint64_t sent_multi_entries = 0, sent_singles = 0;

  auto drain = [&]() {
    for (const Expected& e : window) {
      Response resp;
      ASSERT_TRUE(client.ReadResponse(&resp).ok());
      if (e.is_multi) {
        ASSERT_EQ(resp.status, WireStatus::kOk);
        std::vector<net::MultiResult> got;
        ASSERT_TRUE(net::DecodeMultiResultPayload(resp.payload, &got).ok());
        ASSERT_EQ(got.size(), e.records.size());
        for (size_t j = 0; j < got.size(); ++j) {
          EXPECT_EQ(got[j].status, e.records[j].status)
              << OpCodeName(e.op) << " entry " << j;
          EXPECT_EQ(got[j].value, e.records[j].value)
              << OpCodeName(e.op) << " entry " << j;
        }
      } else if (e.op == OpCode::kGet) {
        if (e.found) {
          ASSERT_EQ(resp.status, WireStatus::kOk);
          EXPECT_EQ(resp.payload, e.value);
        } else {
          EXPECT_EQ(resp.status, WireStatus::kNotFound);
        }
      } else {
        EXPECT_EQ(resp.status, WireStatus::kOk);
      }
    }
    window.clear();
  };

  constexpr uint64_t kKeyspace = 512;
  constexpr int kRounds = 1'500;
  for (int i = 0; i < kRounds; ++i) {
    Expected exp;
    Request req;
    if (i % 8 == 7) {
      // One multi frame, 1..6 entries, duplicates allowed (sequential
      // within-batch semantics are part of the contract under test).
      exp.is_multi = true;
      const uint32_t kind = rng.Uniform(3);
      const size_t n = 1 + rng.Uniform(6);
      std::vector<net::MultiOp> mops(n);
      for (size_t j = 0; j < n; ++j) {
        const uint64_t id = rng.Uniform(kKeyspace);
        mops[j].key = MakeKey(id);
        if (kind != 0) {
          mops[j].value =
              MakeValue(id, 16 + rng.Uniform(64), static_cast<uint32_t>(i));
        }
      }
      exp.records.resize(n);
      for (size_t j = 0; j < n; ++j) {
        auto it = oracle.find(mops[j].key);
        switch (kind) {
          case 0:  // MULTIGET: snapshot read
            exp.op = OpCode::kMultiGet;
            exp.records[j].status =
                it != oracle.end() ? WireStatus::kOk : WireStatus::kNotFound;
            if (it != oracle.end()) exp.records[j].value = it->second;
            break;
          case 1:  // MULTIPUT: all-or-nothing write, empty records
            exp.op = OpCode::kMultiPut;
            exp.records[j].status = WireStatus::kOk;
            oracle[mops[j].key] = mops[j].value;
            break;
          default:  // ATOMIC_RMW: pre-image out, new value in (upsert)
            exp.op = OpCode::kAtomicRmw;
            exp.records[j].status =
                it != oracle.end() ? WireStatus::kOk : WireStatus::kNotFound;
            if (it != oracle.end()) exp.records[j].value = it->second;
            oracle[mops[j].key] = mops[j].value;
            break;
        }
      }
      req = MultiReq(exp.op, std::move(mops));
      sent_multi_entries += n;
      if (kind == 0) sent_multigets++;
      if (kind == 1) sent_multiputs++;
      if (kind == 2) sent_rmws++;
    } else {
      const uint64_t id = rng.Uniform(kKeyspace);
      const std::string key = MakeKey(id);
      if (rng.Bernoulli(0.5)) {
        req = GetReq(key);
        exp.op = OpCode::kGet;
        auto it = oracle.find(key);
        exp.found = it != oracle.end();
        if (exp.found) exp.value = it->second;
      } else {
        const std::string value =
            MakeValue(id, 16 + rng.Uniform(64), static_cast<uint32_t>(i));
        req = PutReq(key, value);
        exp.op = OpCode::kPut;
        oracle[key] = value;
      }
      sent_singles++;
    }
    ASSERT_TRUE(client.Send(req).ok());
    window.push_back(std::move(exp));
    if (window.size() >= 16) drain();
  }
  drain();

  // The synchronous multi helpers share the same wire path: a zero-op
  // MULTIGET is a valid degenerate atomic unit answered with zero records.
  std::vector<net::MultiResult> results;
  ASSERT_TRUE(client.MultiGet({}, &results).ok());
  EXPECT_TRUE(results.empty());
  sent_multigets++;

  // And a final synchronous ATOMIC_RMW whose pre-images must equal the
  // oracle's view after all the pipelined traffic above.
  std::vector<net::MultiOp> final_ops(3);
  for (size_t j = 0; j < final_ops.size(); ++j) {
    final_ops[j].key = MakeKey(j);
    final_ops[j].value = MakeValue(j, 24, 0xFFFF);
  }
  ASSERT_TRUE(client.AtomicRmw(final_ops, &results).ok());
  ASSERT_EQ(results.size(), final_ops.size());
  for (size_t j = 0; j < final_ops.size(); ++j) {
    auto it = oracle.find(final_ops[j].key);
    if (it != oracle.end()) {
      EXPECT_EQ(results[j].status, WireStatus::kOk);
      EXPECT_EQ(results[j].value, it->second);
    } else {
      EXPECT_EQ(results[j].status, WireStatus::kNotFound);
    }
    oracle[final_ops[j].key] = final_ops[j].value;
  }
  sent_rmws++;
  sent_multi_entries += final_ops.size();

  // net.multiop_* accounting: frames, per-kind split, and ops carried. No
  // scans or pings were sent, so decoded frames split exactly between the
  // point-op batches and the multi-op barriers.
  obs::Snapshot snap = fx.bundle.Metrics();
  const uint64_t frames = sent_multigets + sent_multiputs + sent_rmws;
  EXPECT_EQ(snap.Get("net.multiop_frames"), frames);
  EXPECT_EQ(snap.Get("net.multigets"), sent_multigets);
  EXPECT_EQ(snap.Get("net.multiputs"), sent_multiputs);
  EXPECT_EQ(snap.Get("net.atomic_rmws"), sent_rmws);
  EXPECT_EQ(snap.Get("net.multiop_ops"), sent_multi_entries);
  EXPECT_EQ(snap.Get("net.requests_decoded"), sent_singles + frames);
  EXPECT_EQ(snap.Get("net.batched_requests") + snap.Get("net.multiop_frames"),
            snap.Get("net.requests_decoded"));
  EXPECT_EQ(snap.Get("net.protocol_errors"), 0u);
  // The store-side batch books agree with the wire-side op count.
  EXPECT_EQ(snap.Get("core.batch_ops_admitted"), sent_multi_entries);
  EXPECT_EQ(snap.Get("core.batch_ops_applied"), sent_multi_entries);

  client.Close();
  ASSERT_TRUE(fx.server->Stop().ok());
  obs::InvariantReport report = fx.bundle.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- loopback end-to-end ---------------------------------------------------

/// One pipelined client connection driving a mixed GET/PUT/DELETE stream
/// over a disjoint per-thread key range, checked against a local std::map
/// oracle. Shared by the single- and multi-loop differentials.
void DifferentialWorker(uint16_t port, int t, uint64_t seed, int ops,
                        uint64_t keys_per_thread, size_t depth,
                        std::atomic<int>* failures) {
  Client client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    (*failures)++;
    return;
  }
  Random rng(seed + static_cast<uint64_t>(t) * 7919);
  std::map<std::string, std::string> oracle;
  // Disjoint per-thread key ranges, so each thread's local oracle is
  // authoritative for its keys.
  const uint64_t base = static_cast<uint64_t>(t) * keys_per_thread;

  struct Expected {
    OpCode op;
    bool found;          // GET/DELETE expectation
    std::string value;   // GET expectation when found
  };
  std::vector<Expected> window;
  auto drain = [&]() {
    for (const Expected& e : window) {
      Response resp;
      if (!client.ReadResponse(&resp).ok()) {
        (*failures)++;
        return false;
      }
      switch (e.op) {
        case OpCode::kPut:
          if (resp.status != WireStatus::kOk) (*failures)++;
          break;
        case OpCode::kGet:
          if (e.found) {
            if (resp.status != WireStatus::kOk || resp.payload != e.value) {
              (*failures)++;
            }
          } else if (resp.status != WireStatus::kNotFound) {
            (*failures)++;
          }
          break;
        case OpCode::kDelete:
          if (e.found ? resp.status != WireStatus::kOk
                      : resp.status != WireStatus::kNotFound) {
            (*failures)++;
          }
          break;
        default:
          break;
      }
    }
    window.clear();
    return true;
  };

  for (int i = 0; i < ops; ++i) {
    const uint64_t id = base + rng.Uniform(keys_per_thread);
    const std::string key = MakeKey(id);
    const uint64_t pick = rng.Uniform(10);
    Request req;
    Expected exp{};
    if (pick < 5) {  // 50% GET
      req = GetReq(key);
      exp.op = OpCode::kGet;
      auto it = oracle.find(key);
      exp.found = it != oracle.end();
      if (exp.found) exp.value = it->second;
    } else if (pick < 9) {  // 40% PUT
      const std::string value =
          MakeValue(id, 16 + rng.Uniform(200), static_cast<uint32_t>(i));
      req = PutReq(key, value);
      exp.op = OpCode::kPut;
      oracle[key] = value;
    } else {  // 10% DELETE
      req.op = OpCode::kDelete;
      req.key = key;
      exp.op = OpCode::kDelete;
      exp.found = oracle.erase(key) > 0;
    }
    if (!client.Send(req).ok()) {
      (*failures)++;
      return;
    }
    window.push_back(std::move(exp));
    if (window.size() >= depth) {
      if (!drain()) return;
    }
  }
  drain();

  // Final sweep: every oracle key must read back exactly.
  for (const auto& [key, value] : oracle) {
    std::string got;
    Status st = client.Get(key, &got);
    if (!st.ok() || got != value) (*failures)++;
  }
}

TEST(NetServer, PipelinedDifferentialAgainstOracleFourConnections) {
  ServerFixture fx;
  ASSERT_TRUE(fx.Init(/*shards=*/4, /*keyspace=*/8192).ok());

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2'000;
  const uint64_t seed = testing::EffectiveSeed(0xE2E);
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(DifferentialWorker, fx.port(), t, seed, kOpsPerThread,
                         /*keys_per_thread=*/uint64_t{512}, /*depth=*/size_t{16},
                         &failures);
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Metrics flow into the per-store registry snapshot.
  obs::Snapshot snap = fx.bundle.Metrics();
  EXPECT_TRUE(snap.Has("net.requests_decoded"));
  EXPECT_EQ(snap.Get("net.protocol_errors"), 0u);
  EXPECT_GE(snap.Get("net.connections_accepted"), 4u);
  EXPECT_GT(snap.Get("net.requests_decoded"),
            static_cast<uint64_t>(kThreads) * kOpsPerThread - 1);
  EXPECT_GT(snap.Get("net.batches"), 0u);
  EXPECT_EQ(snap.Get("net.batched_requests") + snap.Get("net.scans"),
            snap.Get("net.requests_decoded"));
  EXPECT_GT(snap.Get("net.bytes_in"), 0u);
  EXPECT_GT(snap.Get("net.bytes_out"), 0u);

  // Graceful shutdown: drain in-flight batches, flush dirty Secure Cache
  // state, and re-run every conservation law — the end-of-serving audit.
  ASSERT_TRUE(fx.server->Stop().ok());
  obs::InvariantReport report = fx.bundle.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_FALSE(report.laws_checked.empty());
}

TEST(NetServer, RangeScanOverTheWireMatchesInProcess) {
  ServerFixture fx;
  ServerOptions so;
  ASSERT_TRUE(fx.Init(/*shards=*/2, /*keyspace=*/4096, so, Scheme::kAria,
                      IndexKind::kBTree)
                  .ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  // Pipelined PUTs followed by a SCAN in the same burst: the scan is a
  // batch barrier, so it must observe every preceding PUT.
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.Send(PutReq(MakeKey(i), MakeValue(i, 24))).ok());
  }
  Request scan;
  scan.op = OpCode::kScan;
  scan.scan_limit = 50;
  ASSERT_TRUE(client.Send(scan).ok());
  for (int i = 0; i < 100; ++i) {
    Response resp;
    ASSERT_TRUE(client.ReadResponse(&resp).ok());
    ASSERT_EQ(resp.status, WireStatus::kOk);
  }
  Response scan_resp;
  ASSERT_TRUE(client.ReadResponse(&scan_resp).ok());
  ASSERT_EQ(scan_resp.status, WireStatus::kOk);
  std::vector<std::pair<std::string, std::string>> over_wire;
  ASSERT_TRUE(net::DecodeScanPayload(scan_resp.payload, &over_wire).ok());

  auto* ordered = dynamic_cast<OrderedKVStore*>(fx.bundle.store.get());
  ASSERT_NE(ordered, nullptr);
  std::vector<std::pair<std::string, std::string>> in_process;
  ASSERT_TRUE(ordered->RangeScan("", 50, &in_process).ok());
  EXPECT_EQ(over_wire, in_process);

  client.Close();
  ASSERT_TRUE(fx.server->Stop().ok());
}

// --- multi-loop serving (DESIGN.md §12) -------------------------------------

TEST(NetServer, MultiLoopDifferentialEightConnectionsFourLoops) {
  ServerFixture fx;
  ServerOptions so;
  so.num_loops = 4;
  ASSERT_TRUE(fx.Init(/*shards=*/4, /*keyspace=*/16384, so).ok());
  EXPECT_EQ(fx.server->num_loops(), 4u);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 1'500;
  const uint64_t seed = testing::EffectiveSeed(0x41D);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(DifferentialWorker, fx.port(), t, seed, kOpsPerThread,
                         /*keys_per_thread=*/uint64_t{512},
                         /*depth=*/size_t{16}, &failures);
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Per-loop counters: round-robin handoff spreads 8 connections exactly
  // 2 per loop, every loop decoded traffic, and the loop sums reproduce
  // the aggregates the server emits alongside them.
  obs::Snapshot snap = fx.bundle.Metrics();
  EXPECT_EQ(snap.Get("net.num_loops"), 4u);
  uint64_t decoded_sum = 0, accepted_sum = 0, batched_sum = 0;
  for (uint32_t l = 0; l < 4; ++l) {
    const std::string p = "net.loop" + std::to_string(l) + ".";
    EXPECT_EQ(snap.Get(p + "connections_accepted"), 2u) << p;
    EXPECT_GT(snap.Get(p + "requests_decoded"), 0u) << p;
    decoded_sum += snap.Get(p + "requests_decoded");
    accepted_sum += snap.Get(p + "connections_accepted");
    batched_sum += snap.Get(p + "batched_requests");
  }
  EXPECT_EQ(decoded_sum, snap.Get("net.requests_decoded"));
  EXPECT_EQ(accepted_sum, snap.Get("net.connections_accepted"));
  EXPECT_EQ(batched_sum, snap.Get("net.batched_requests"));
  EXPECT_GT(snap.Get("net.requests_decoded"),
            static_cast<uint64_t>(kThreads) * kOpsPerThread - 1);

  // End-of-serving audit: graceful Stop drains every loop, then flushes
  // dirty Secure Cache state; every law must hold, and the new
  // net-loop-conservation law must have actually been evaluated.
  ASSERT_TRUE(fx.server->Stop().ok());
  obs::InvariantReport report = fx.bundle.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_NE(std::find(report.laws_checked.begin(), report.laws_checked.end(),
                      "net-loop-conservation"),
            report.laws_checked.end());
}

TEST(NetServer, SingleLoopOptionReproducesOriginalServer) {
  // num_loops=1 must behave exactly like the pre-multi-loop server, with
  // the per-loop namespace collapsing to loop0 == aggregate.
  ServerFixture fx;
  ServerOptions so;
  so.num_loops = 1;
  ASSERT_TRUE(fx.Init(/*shards=*/2, /*keyspace=*/4096, so).ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(client.Put(MakeKey(i), MakeValue(i, 32)).ok());
  }
  client.Close();

  obs::Snapshot snap = fx.bundle.Metrics();
  EXPECT_EQ(snap.Get("net.num_loops"), 1u);
  EXPECT_EQ(snap.Get("net.loop0.requests_decoded"),
            snap.Get("net.requests_decoded"));
  ASSERT_TRUE(fx.server->Stop().ok());
  obs::InvariantReport report = fx.bundle.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(NetServer, RejectsZeroEventLoops) {
  ServerFixture fx;
  ServerOptions so;
  so.num_loops = 0;
  EXPECT_FALSE(fx.Init(/*shards=*/2, /*keyspace=*/1024, so).ok());
}

TEST(NetInvariants, LoopSumChecksCatchMismatchAndMissingAggregate) {
  // Consistent loop sums pass.
  {
    obs::Snapshot snap;
    snap.Set("net.loop0.requests_decoded", 5, obs::MetricKind::kCounter);
    snap.Set("net.loop1.requests_decoded", 6, obs::MetricKind::kCounter);
    snap.Set("net.requests_decoded", 11, obs::MetricKind::kCounter);
    obs::InvariantReport report;
    obs::InvariantChecker::CheckLoopSums(snap, &report);
    EXPECT_TRUE(report.ok()) << report.ToString();
    ASSERT_EQ(report.laws_checked.size(), 1u);
    EXPECT_EQ(report.laws_checked[0], "net-loop-conservation");
  }
  // A loop sum that disagrees with the aggregate is a violation.
  {
    obs::Snapshot snap;
    snap.Set("net.loop0.requests_decoded", 5, obs::MetricKind::kCounter);
    snap.Set("net.loop1.requests_decoded", 5, obs::MetricKind::kCounter);
    snap.Set("net.requests_decoded", 11, obs::MetricKind::kCounter);
    obs::InvariantReport report;
    obs::InvariantChecker::CheckLoopSums(snap, &report);
    EXPECT_FALSE(report.ok());
  }
  // A per-loop metric with no aggregate counterpart is a violation too.
  {
    obs::Snapshot snap;
    snap.Set("net.loop0.orphan", 1, obs::MetricKind::kCounter);
    obs::InvariantReport report;
    obs::InvariantChecker::CheckLoopSums(snap, &report);
    EXPECT_FALSE(report.ok());
  }
  // No per-loop metrics at all: the law is vacuous and not recorded.
  {
    obs::Snapshot snap;
    snap.Set("net.requests_decoded", 3, obs::MetricKind::kCounter);
    obs::InvariantReport report;
    obs::InvariantChecker::CheckLoopSums(snap, &report);
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report.laws_checked.empty());
  }
}

// --- robustness over the socket --------------------------------------------

TEST(NetServer, SurvivesGarbageConnectionsAndKeepsServing) {
  ServerFixture fx;
  ASSERT_TRUE(fx.Init(/*shards=*/2, /*keyspace=*/4096).ok());
  const uint64_t seed = testing::EffectiveSeed(0x6A);
  SCOPED_TRACE(testing::ReplayRecipe(seed, "net_test"));
  Random rng(seed);

  for (int round = 0; round < 40; ++round) {
    // A well-behaved exchange first, proving the server was healthy going
    // into this round.
    Client good;
    ASSERT_TRUE(good.Connect("127.0.0.1", fx.port()).ok());
    ASSERT_TRUE(good.Send(GetReq(MakeKey(rng.Uniform(4096)))).ok());
    Response resp;
    ASSERT_TRUE(good.ReadResponse(&resp).ok());
    good.Close();

    // Then wire-level garbage through a raw socket. shutdown(SHUT_WR)
    // guarantees the server sees EOF even when the junk parses as an
    // incomplete frame (kNeedMore), so reading to EOF cannot hang.
    std::string junk(4 + rng.Uniform(256), '\0');
    for (auto& c : junk) c = static_cast<char>(rng.Uniform(256));
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fx.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    (void)send(fd, junk.data(), junk.size(), MSG_NOSIGNAL);
    shutdown(fd, SHUT_WR);
    // The server answers at most one ProtocolError frame and closes; a cap
    // on the bytes read makes a babbling server fail instead of hang.
    char buf[4096];
    ssize_t n;
    size_t total = 0;
    while ((n = read(fd, buf, sizeof(buf))) > 0) {
      total += static_cast<size_t>(n);
      ASSERT_LT(total, size_t{1} << 20);
    }
    close(fd);
  }

  // After 40 garbage rounds the server still serves a clean connection.
  Client clean;
  ASSERT_TRUE(clean.Connect("127.0.0.1", fx.port()).ok());
  ASSERT_TRUE(clean.Put("survivor", "ok").ok());
  std::string got;
  ASSERT_TRUE(clean.Get("survivor", &got).ok());
  EXPECT_EQ(got, "ok");
  clean.Close();

  obs::Snapshot snap = fx.bundle.Metrics();
  EXPECT_GT(snap.Get("net.protocol_errors"), 0u);
  ASSERT_TRUE(fx.server->Stop().ok());
  obs::InvariantReport report = fx.bundle.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(NetServer, TenThousandMalformedFramesOverSockets) {
  ServerFixture fx;
  ASSERT_TRUE(fx.Init(/*shards=*/2, /*keyspace=*/4096).ok());
  const uint64_t seed = testing::EffectiveSeed(0x10F);
  SCOPED_TRACE(testing::ReplayRecipe(seed, "net_test"));
  Random rng(seed);

  // Each connection ships a blast of malformed frames. The first frame of
  // every blast is a guaranteed decode error (oversized declared length),
  // so each connection deterministically earns one ProtocolError + close;
  // shutdown(SHUT_WR) covers the remote case where retained junk parses as
  // an incomplete frame, so reading to EOF cannot hang. The >= 10k-frame
  // requirement is carried by the in-process decoder fuzz above; this test
  // pushes malformed bytes through the real socket/epoll/close path.
  constexpr int kConns = 100;
  constexpr int kFramesPerConn = 100;
  for (int c = 0; c < kConns; ++c) {
    std::string blast = U32(net::kMaxMultiRequestBodyBytes + 1 +
                            static_cast<uint32_t>(rng.Uniform(1 << 16)));
    for (int f = 1; f < kFramesPerConn; ++f) {
      switch (rng.Uniform(3)) {
        case 0: {  // oversized declared length
          blast += U32(net::kMaxMultiRequestBodyBytes + 1 +
                       static_cast<uint32_t>(rng.Uniform(1 << 16)));
          break;
        }
        case 1: {  // truncated header
          std::string h = U32(static_cast<uint32_t>(rng.Uniform(64)));
          blast += h.substr(0, 1 + rng.Uniform(3));
          break;
        }
        default: {  // structurally broken body
          std::string f2 = U32(7);
          f2 += static_cast<char>(rng.Uniform(256));
          f2 += static_cast<char>(rng.Uniform(256));
          f2 += static_cast<char>(rng.Uniform(256));
          f2 += U32(static_cast<uint32_t>(rng.Uniform(1u << 30)));
          blast += f2;
          break;
        }
      }
    }
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fx.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    (void)send(fd, blast.data(), blast.size(), MSG_NOSIGNAL);
    shutdown(fd, SHUT_WR);
    char buf[4096];
    while (read(fd, buf, sizeof(buf)) > 0) {
    }
    close(fd);
  }

  Client clean;
  ASSERT_TRUE(clean.Connect("127.0.0.1", fx.port()).ok());
  ASSERT_TRUE(clean.Ping().ok());
  clean.Close();
  obs::Snapshot snap = fx.bundle.Metrics();
  EXPECT_GE(snap.Get("net.protocol_errors"), static_cast<uint64_t>(kConns));
  ASSERT_TRUE(fx.server->Stop().ok());
}

// --- backpressure and admission --------------------------------------------

TEST(NetServer, SlowClientHitsOutputCapAndIsDropped) {
  ServerFixture fx;
  ServerOptions so;
  so.max_output_buffer_bytes = 64 * 1024;  // small cap to trip quickly
  ASSERT_TRUE(fx.Init(/*shards=*/2, /*keyspace=*/4096, so).ok());

  // Seed one fat value, then pipeline GETs for it without ever reading:
  // the server's output buffer for this connection grows past the cap and
  // the connection must be dropped rather than buffered without bound.
  {
    Client seeder;
    ASSERT_TRUE(seeder.Connect("127.0.0.1", fx.port()).ok());
    ASSERT_TRUE(seeder.Put("fat", std::string(32 * 1024, 'F')).ok());
    seeder.Close();
  }

  Client slow;
  ASSERT_TRUE(slow.Connect("127.0.0.1", fx.port()).ok());
  // 1024 x 32 KB of responses (~32 MB) dwarfs both the 64 KB cap and
  // anything loopback kernel buffering can absorb, so the cap must trip.
  // The requests themselves are tiny (~14 bytes each).
  constexpr int kPipelined = 1024;
  bool send_failed = false;
  for (int i = 0; i < kPipelined && !send_failed; ++i) {
    send_failed = !slow.Send(GetReq("fat")).ok();
  }
  // The drop is observable as EOF on the response stream (some prefix of
  // responses may arrive first — the kernel buffers what it can).
  Response resp;
  Status st;
  for (int i = 0; i < kPipelined; ++i) {
    st = slow.ReadResponse(&resp);
    if (!st.ok()) break;
  }
  EXPECT_FALSE(st.ok());
  slow.Close();

  obs::Snapshot snap = fx.bundle.Metrics();
  EXPECT_GE(snap.Get("net.connections_dropped"), 1u);
  ASSERT_TRUE(fx.server->Stop().ok());
  obs::InvariantReport report = fx.bundle.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(NetServer, RejectsConnectionsBeyondTheLimit) {
  ServerFixture fx;
  ServerOptions so;
  so.max_connections = 2;
  ASSERT_TRUE(fx.Init(/*shards=*/2, /*keyspace=*/4096, so).ok());

  Client a, b;
  ASSERT_TRUE(a.Connect("127.0.0.1", fx.port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", fx.port()).ok());
  ASSERT_TRUE(a.Ping().ok());
  ASSERT_TRUE(b.Ping().ok());

  // The third connection is accepted by the kernel but closed by the
  // server before any request is answered.
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", fx.port()).ok());
  EXPECT_FALSE(c.Ping().ok());
  c.Close();

  // Metrics scrapes race with serving by design; give the loop thread a
  // bounded window to publish the rejection counter.
  uint64_t rejected = 0;
  for (int i = 0; i < 200 && rejected == 0; ++i) {
    rejected = fx.bundle.Metrics().Get("net.connections_rejected");
    if (rejected == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(rejected, 1u);
  a.Close();
  b.Close();
  ASSERT_TRUE(fx.server->Stop().ok());
}

// --- fault injection -------------------------------------------------------

class TornWriteInjector : public fault::NetInjector {
 public:
  explicit TornWriteInjector(uint64_t after_bytes)
      : after_bytes_(after_bytes) {}

  size_t OnServerWrite(uint64_t, uint64_t, size_t len) override {
    uint64_t budget = after_bytes_.load();
    if (budget == 0) return 0;  // tear at a frame boundary offset 0
    if (len <= budget) {
      after_bytes_ -= len;
      return len;
    }
    uint64_t allowed = budget;
    after_bytes_ = 0;
    torn_.fetch_add(1);
    return static_cast<size_t>(allowed);
  }
  bool DropBeforeExecute(uint64_t, uint64_t) override { return false; }

  int torn() const { return torn_.load(); }

 private:
  std::atomic<uint64_t> after_bytes_;
  std::atomic<int> torn_{0};
};

TEST(NetServer, TornWriteFaultTearsStreamWithoutCrashing) {
  ServerFixture fx;
  ASSERT_TRUE(fx.Init(/*shards=*/2, /*keyspace=*/4096).ok());

  // Let a healthy client seed data first.
  Client seeder;
  ASSERT_TRUE(seeder.Connect("127.0.0.1", fx.port()).ok());
  for (uint64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(seeder.Put(MakeKey(i), MakeValue(i, 64)).ok());
  }
  seeder.Close();

  TornWriteInjector injector(/*after_bytes=*/37);  // mid-frame by design
  fault::SetNet(&injector);
  Client victim;
  ASSERT_TRUE(victim.Connect("127.0.0.1", fx.port()).ok());
  Status st;
  for (uint64_t i = 0; i < 32 && st.ok(); ++i) {
    std::string got;
    st = victim.Get(MakeKey(i), &got);
  }
  fault::SetNet(nullptr);
  // The victim observed the tear as a short/garbled stream or EOF.
  EXPECT_FALSE(st.ok());
  EXPECT_GE(injector.torn(), 1);
  victim.Close();

  // The server keeps serving fresh connections afterwards.
  Client after;
  ASSERT_TRUE(after.Connect("127.0.0.1", fx.port()).ok());
  std::string got;
  ASSERT_TRUE(after.Get(MakeKey(0), &got).ok());
  EXPECT_EQ(got, MakeValue(0, 64));
  after.Close();

  obs::Snapshot snap = fx.bundle.Metrics();
  EXPECT_GE(snap.Get("net.connections_dropped"), 1u);
  ASSERT_TRUE(fx.server->Stop().ok());
  obs::InvariantReport report = fx.bundle.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

class ConnDropInjector : public fault::NetInjector {
 public:
  size_t OnServerWrite(uint64_t, uint64_t, size_t len) override { return len; }
  bool DropBeforeExecute(uint64_t, uint64_t) override {
    return armed_.exchange(false);
  }
  void Arm() { armed_.store(true); }

 private:
  std::atomic<bool> armed_{false};
};

TEST(NetServer, ConnectionDropFaultKillsInFlightPipeline) {
  ServerFixture fx;
  ASSERT_TRUE(fx.Init(/*shards=*/2, /*keyspace=*/4096).ok());

  ConnDropInjector injector;
  fault::SetNet(&injector);
  Client victim;
  ASSERT_TRUE(victim.Connect("127.0.0.1", fx.port()).ok());
  injector.Arm();
  // A pipelined burst: the server reads it, then the latch drops the
  // connection before anything executes — every response is lost.
  for (int i = 0; i < 8; ++i) {
    if (!victim.Send(PutReq(MakeKey(1000 + i), "doomed")).ok()) break;
  }
  Response resp;
  EXPECT_FALSE(victim.ReadResponse(&resp).ok());
  victim.Close();
  fault::SetNet(nullptr);

  // None of the doomed PUTs may have executed (the drop precedes the
  // batch), and the store still serves.
  Client after;
  ASSERT_TRUE(after.Connect("127.0.0.1", fx.port()).ok());
  std::string got;
  EXPECT_TRUE(after.Get(MakeKey(1000), &got).IsNotFound());
  after.Close();

  obs::Snapshot snap = fx.bundle.Metrics();
  EXPECT_GE(snap.Get("net.connections_dropped"), 1u);
  ASSERT_TRUE(fx.server->Stop().ok());
  obs::InvariantReport report = fx.bundle.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

/// Fires DropBeforeExecute only on one target event loop; other loops are
/// untouched, proving fault points are per-loop as documented.
class LoopTargetedDropInjector : public fault::NetInjector {
 public:
  explicit LoopTargetedDropInjector(uint64_t target_loop)
      : target_loop_(target_loop) {}

  size_t OnServerWrite(uint64_t, uint64_t, size_t len) override { return len; }
  bool DropBeforeExecute(uint64_t loop, uint64_t) override {
    if (loop != target_loop_) return false;
    fired_.fetch_add(1);
    return true;
  }
  int fired() const { return fired_.load(); }

 private:
  uint64_t target_loop_;
  std::atomic<int> fired_{0};
};

TEST(NetServer, ConnDropFaultOnSingleLoopLeavesOtherLoopsServing) {
  ServerFixture fx;
  ServerOptions so;
  so.num_loops = 4;
  ASSERT_TRUE(fx.Init(/*shards=*/2, /*keyspace=*/4096, so).ok());

  // Sequential connect + ping: each round trip proves the connection was
  // adopted by its loop before the next connect, so round-robin handoff
  // deterministically puts client i on loop i % 4.
  Client clients[4];
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(clients[i].Connect("127.0.0.1", fx.port()).ok());
    ASSERT_TRUE(clients[i].Ping().ok());
  }

  LoopTargetedDropInjector injector(/*target_loop=*/2);
  fault::SetNet(&injector);
  // Pipelined bursts on every client. The victim's later sends may
  // themselves fail (EPIPE) when the server drops it mid-burst, so no
  // assertion may fire before the injector is uninstalled — an early test
  // return would leave a dangling injector in the process-wide latch.
  bool alive[4];
  for (int i = 0; i < 4; ++i) {
    alive[i] = true;
    for (int j = 0; j < 4 && alive[i]; ++j) {
      alive[i] = clients[i].Send(PutReq(MakeKey(100 * i + j), "v")).ok();
    }
  }
  // Only the client on loop 2 loses its pipeline; the others complete.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4 && alive[i]; ++j) {
      Response resp;
      alive[i] = clients[i].ReadResponse(&resp).ok() &&
                 resp.status == WireStatus::kOk;
    }
  }
  fault::SetNet(nullptr);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(alive[i], i != 2) << "client " << i;
  }
  EXPECT_GE(injector.fired(), 1);

  // The drop precedes execution: none of loop 2's PUTs may have landed,
  // while the other loops' all did.
  Client check;
  ASSERT_TRUE(check.Connect("127.0.0.1", fx.port()).ok());
  std::string got;
  EXPECT_TRUE(check.Get(MakeKey(200), &got).IsNotFound());
  EXPECT_TRUE(check.Get(MakeKey(100), &got).ok());
  EXPECT_TRUE(check.Get(MakeKey(300), &got).ok());
  check.Close();

  obs::Snapshot snap = fx.bundle.Metrics();
  EXPECT_GE(snap.Get("net.loop2.connections_dropped"), 1u);
  EXPECT_EQ(snap.Get("net.loop1.connections_dropped"), 0u);
  ASSERT_TRUE(fx.server->Stop().ok());
  obs::InvariantReport report = fx.bundle.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- graceful shutdown -----------------------------------------------------

TEST(NetServer, StopIsGracefulAndIdempotent) {
  ServerFixture fx;
  ASSERT_TRUE(fx.Init(/*shards=*/4, /*keyspace=*/8192).ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(client.Put(MakeKey(i), MakeValue(i, 48)).ok());
  }
  client.Close();

  // Stop drains: dirty Secure Cache state is flushed under each shard's
  // lock, so the post-shutdown audit checks a quiescent, consistent image.
  ASSERT_TRUE(fx.server->Stop().ok());
  obs::InvariantReport report = fx.bundle.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();

  // Idempotent: a second stop (and a direct Drain) are no-ops.
  ASSERT_TRUE(fx.server->Stop().ok());
  auto* sharded = dynamic_cast<ShardedStore*>(fx.bundle.store.get());
  ASSERT_NE(sharded, nullptr);
  ASSERT_TRUE(sharded->Drain().ok());

  // A drained store still serves in-process (drain is not teardown).
  std::string got;
  ASSERT_TRUE(sharded->Get(MakeKey(7), &got).ok());
  EXPECT_EQ(got, MakeValue(7, 48));
}

}  // namespace
}  // namespace aria
