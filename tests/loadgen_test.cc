// Open-loop load-generator battery (labeled `loadgen` in CTest):
//
//  * latency histogram: bucket-mapping guarantees and percentile accuracy
//    against exact quantiles
//  * arrival statistics: chi-square and Kolmogorov-Smirnov goodness-of-fit
//    for the Poisson schedule, with a power check (a 25%-wrong rate must
//    fail both tests decisively), and zero cumulative drift for the
//    deterministic-uniform schedule
//  * goal-QPS controller: unit tests on synthetic windows (trim feedback,
//    clamps, sticky saturation latch), then end-to-end convergence against
//    an in-process server — within 5% of a feasible goal, explicit
//    saturation verdict on an infeasible one
//  * dynamic hotspot migration: single-connection differential run against
//    a std::map oracle with mid-run Zipf hot-set shifts, the full
//    conservation-law audit, and Secure Cache swap counters showing the
//    post-shift turnover a static hot set does not pay
//  * coordinated omission: a server stall injected through the NetInjector
//    latch must surface in the open-loop p99 (scheduled-time stamping) and
//    be invisible to a closed-loop driver measuring from op start
//  * loadgen-request-conservation: exercised positively by every audit
//    above and negatively by tampering with a real run's snapshot (a
//    dropped completion must break the audit)
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/store_factory.h"
#include "loadgen/arrival.h"
#include "loadgen/histogram.h"
#include "loadgen/loadgen.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/invariants.h"
#include "obs/metrics.h"
#include "testing/replay.h"
#include "workload/ycsb.h"
#include "workload/zipf.h"

namespace aria {
namespace {

using loadgen::ArrivalProcess;
using loadgen::ArrivalSchedule;
using loadgen::GoalQpsController;
using loadgen::GoalQpsControllerOptions;
using loadgen::LatencyHistogram;
using loadgen::OpenLoopLoadGen;
using loadgen::OpenLoopOptions;
using net::Server;
using net::ServerOptions;
using net::WireStatus;

// --- histogram -------------------------------------------------------------

TEST(LatencyHistogram, BucketMappingIsMonotoneAndBounds) {
  Random rng(testing::EffectiveSeed(11));
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < 128; ++v) values.push_back(v);
  for (int shift = 7; shift < 64; ++shift) {
    const uint64_t p = 1ull << shift;
    values.push_back(p - 1);
    values.push_back(p);
    values.push_back(p + 1);
    values.push_back(p + rng.Uniform(p));
  }
  std::sort(values.begin(), values.end());
  int prev_index = -1;
  for (uint64_t v : values) {
    const int index = LatencyHistogram::BucketIndex(v);
    ASSERT_GE(index, 0);
    ASSERT_LT(index, LatencyHistogram::kNumBuckets);
    EXPECT_GE(index, prev_index) << "BucketIndex not monotone at " << v;
    prev_index = std::max(prev_index, index);
    const uint64_t upper = LatencyHistogram::BucketUpperBound(index);
    EXPECT_GE(upper, v);
    // The bucket's upper bound over-reports v by at most one sub-bucket.
    if (v >= LatencyHistogram::kSubBuckets && upper != UINT64_MAX) {
      EXPECT_LE(static_cast<double>(upper),
                static_cast<double>(v) *
                    (1.0 + 2.0 / LatencyHistogram::kSubBuckets))
          << "bucket upper bound too loose at " << v;
    }
  }
}

TEST(LatencyHistogram, PercentilesTrackExactQuantiles) {
  Random rng(testing::EffectiveSeed(12));
  LatencyHistogram hist;
  std::vector<uint64_t> values;
  // Log-uniform values spanning ~6 decades, the shape of a latency tail.
  for (int i = 0; i < 20000; ++i) {
    const double log_v = rng.NextDouble() * 6.0 + 2.0;  // 1e2 .. 1e8 ns
    const uint64_t v = static_cast<uint64_t>(std::pow(10.0, log_v));
    values.push_back(v);
    hist.Record(v);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(hist.count(), values.size());
  EXPECT_EQ(hist.max(), values.back());
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    const size_t rank = std::min(
        values.size() - 1,
        static_cast<size_t>(std::ceil(p / 100.0 * values.size())) - 1);
    const uint64_t exact = values[rank];
    const uint64_t approx = hist.ValueAtPercentile(p);
    EXPECT_GE(approx, exact) << "p" << p;
    EXPECT_LE(static_cast<double>(approx), static_cast<double>(exact) * 1.07)
        << "p" << p;
  }
  EXPECT_LE(hist.ValueAtPercentile(100.0), hist.max());
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  Random rng(testing::EffectiveSeed(13));
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Uniform(10'000'000);
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {50.0, 99.0, 99.9}) {
    EXPECT_EQ(a.ValueAtPercentile(p), combined.ValueAtPercentile(p));
  }
}

// --- arrival statistics ----------------------------------------------------

/// Chi-square statistic of `gaps` against Exp(mean = 1/rate) using
/// `buckets` equal-probability bins (edges at exponential quantiles).
double ExponentialChiSquare(const std::vector<uint64_t>& gaps, double rate_qps,
                            int buckets) {
  const double mean_nanos = 1e9 / rate_qps;
  std::vector<double> edges(buckets);  // upper edge of each bin but the last
  for (int i = 1; i < buckets; ++i) {
    edges[i - 1] =
        -mean_nanos * std::log(1.0 - static_cast<double>(i) / buckets);
  }
  edges[buckets - 1] = 1e300;
  std::vector<uint64_t> observed(buckets, 0);
  for (uint64_t gap : gaps) {
    const auto it =
        std::upper_bound(edges.begin(), edges.end(), static_cast<double>(gap));
    observed[it - edges.begin()]++;
  }
  const double expected = static_cast<double>(gaps.size()) / buckets;
  double chi2 = 0;
  for (uint64_t obs : observed) {
    const double d = static_cast<double>(obs) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

/// Kolmogorov-Smirnov statistic of `gaps` against Exp(mean = 1/rate).
double ExponentialKs(std::vector<uint64_t> gaps, double rate_qps) {
  std::sort(gaps.begin(), gaps.end());
  const double mean_nanos = 1e9 / rate_qps;
  const double n = static_cast<double>(gaps.size());
  double d = 0;
  for (size_t i = 0; i < gaps.size(); ++i) {
    const double cdf = 1.0 - std::exp(-static_cast<double>(gaps[i]) / mean_nanos);
    d = std::max(d, std::abs(cdf - static_cast<double>(i) / n));
    d = std::max(d, std::abs(static_cast<double>(i + 1) / n - cdf));
  }
  return d;
}

std::vector<uint64_t> DrawGaps(ArrivalProcess process, double rate_qps,
                               uint64_t seed, size_t n) {
  ArrivalSchedule schedule(process, rate_qps, seed);
  std::vector<uint64_t> gaps(n);
  for (size_t i = 0; i < n; ++i) gaps[i] = schedule.NextGapNanos();
  return gaps;
}

TEST(ArrivalSchedule, PoissonGapsPassGoodnessOfFit) {
  const uint64_t seed = testing::EffectiveSeed(21);
  const double rate = 10'000;
  const size_t n = 50'000;
  std::vector<uint64_t> gaps = DrawGaps(ArrivalProcess::kPoisson, rate, seed, n);

  // Sample mean within 2% of 1/rate.
  double sum = 0;
  for (uint64_t g : gaps) sum += static_cast<double>(g);
  EXPECT_NEAR(sum / static_cast<double>(n), 1e9 / rate, 0.02 * 1e9 / rate)
      << testing::ReplayRecipe(seed, "loadgen_test");

  // 32 equal-probability bins, 31 degrees of freedom: the 99.9th percentile
  // of chi2(31) is ~61; 90 only fails on a genuinely wrong distribution.
  const double chi2 = ExponentialChiSquare(gaps, rate, 32);
  EXPECT_LT(chi2, 90.0) << testing::ReplayRecipe(seed, "loadgen_test");

  // KS critical value at alpha = 0.001 is 1.95 / sqrt(n) ~= 0.0087.
  const double ks = ExponentialKs(gaps, rate);
  EXPECT_LT(ks, 0.012) << testing::ReplayRecipe(seed, "loadgen_test");
}

TEST(ArrivalSchedule, GoodnessOfFitRejectsWrongRate) {
  // Power check: a schedule running 25% fast must fail both tests against
  // the nominal rate by a wide margin (expected chi2 ~2100, KS ~0.08 —
  // anything near the pass thresholds would mean the tests are toothless).
  const uint64_t seed = testing::EffectiveSeed(22);
  const double rate = 10'000;
  std::vector<uint64_t> gaps =
      DrawGaps(ArrivalProcess::kPoisson, rate * 1.25, seed, 50'000);
  EXPECT_GT(ExponentialChiSquare(gaps, rate, 32), 500.0)
      << testing::ReplayRecipe(seed, "loadgen_test");
  EXPECT_GT(ExponentialKs(gaps, rate), 0.04)
      << testing::ReplayRecipe(seed, "loadgen_test");
}

TEST(ArrivalSchedule, UniformGapsNeverDrift) {
  // 3333 qps has a non-integer nanosecond gap (300030.003...); the carry
  // must keep the cumulative schedule exact to within 1 ns.
  const double rate = 3'333;
  const size_t n = 10'000;
  ArrivalSchedule schedule(ArrivalProcess::kUniform, rate, 1);
  const uint64_t base = static_cast<uint64_t>(1e9 / rate);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t gap = schedule.NextGapNanos();
    EXPECT_GE(gap, base);
    EXPECT_LE(gap, base + 1);
    total += static_cast<double>(gap);
  }
  EXPECT_NEAR(total, static_cast<double>(n) * (1e9 / rate), 1.0);
}

// --- goal-QPS controller (synthetic windows) -------------------------------

TEST(GoalQpsController, OnTargetWindowsKeepTrimAtOneAndTrackAchieved) {
  GoalQpsController c(1000);
  for (int i = 0; i < 8; ++i) {
    const double trim = c.OnWindow(0.25, 250, 250);
    EXPECT_DOUBLE_EQ(trim, 1.0);
  }
  EXPECT_FALSE(c.saturated());
  EXPECT_NEAR(c.achieved_qps(), 1000.0, 1e-9);
  EXPECT_EQ(c.windows(), 8u);
}

TEST(GoalQpsController, UnderOfferingRaisesTrimWithinClamps) {
  GoalQpsController c(1000);
  // Offering 20% low: correction wants 1.25 but is clamped to +15%/window
  // and max_trim overall.
  EXPECT_NEAR(c.OnWindow(0.25, 200, 200), 1.15, 1e-9);
  EXPECT_NEAR(c.OnWindow(0.25, 200, 200), 1.3225, 1e-9);
  EXPECT_NEAR(c.OnWindow(0.25, 200, 200), 1.5, 1e-9);  // max_trim
  EXPECT_NEAR(c.OnWindow(0.25, 200, 200), 1.5, 1e-9);
  // The transient is gone, so the 1.5x trim now makes the schedule
  // over-offer; the controller unwinds it — at most 15% per window, never
  // below 1.
  double trim = 1.5;
  for (int i = 0; i < 6; ++i) {
    const double next = c.OnWindow(0.25, 375, 375);  // 1500 qps offered
    EXPECT_LE(next, trim + 1e-12);
    EXPECT_GE(next, 1.0);
    trim = next;
  }
  EXPECT_NEAR(trim, 1.0, 1e-9);
}

TEST(GoalQpsController, SaturationLatchesAfterConsecutiveLaggingWindows) {
  GoalQpsController c(1000);
  EXPECT_FALSE(c.saturated());
  c.OnWindow(0.25, 250, 100);
  c.OnWindow(0.25, 250, 100);
  EXPECT_FALSE(c.saturated());  // two lagging windows, threshold is three
  c.OnWindow(0.25, 250, 100);
  EXPECT_TRUE(c.saturated());
  // Sticky: recovering throughput does not clear the verdict.
  for (int i = 0; i < 5; ++i) c.OnWindow(0.25, 250, 250);
  EXPECT_TRUE(c.saturated());
}

TEST(GoalQpsController, InterruptedLagDoesNotLatch) {
  GoalQpsController c(1000);
  c.OnWindow(0.25, 250, 100);
  c.OnWindow(0.25, 250, 100);
  c.OnWindow(0.25, 250, 240);  // healthy window resets the streak
  c.OnWindow(0.25, 250, 100);
  c.OnWindow(0.25, 250, 100);
  EXPECT_FALSE(c.saturated());
  EXPECT_EQ(c.OnWindow(0.0, 0, 0), c.trim());  // degenerate window: no-op
  EXPECT_EQ(c.windows(), 5u);
}

// --- shiftable zipf --------------------------------------------------------

TEST(ShiftableZipf, EpochZeroScrambledMatchesPlainGenerator) {
  const uint64_t seed = testing::EffectiveSeed(31);
  ZipfGenerator plain(100'000, 0.99, seed);
  ShiftableZipfGenerator shiftable(100'000, 0.99, seed, /*scrambled=*/true);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(shiftable.NextKey(), plain.NextKey()) << "draw " << i;
  }
}

size_t TopRankOverlap(ShiftableZipfGenerator* gen, uint64_t epoch_a,
                      uint64_t epoch_b, uint64_t top_k) {
  std::set<uint64_t> a, b;
  gen->Shift(epoch_a);
  for (uint64_t r = 0; r < top_k; ++r) a.insert(gen->KeyForRank(r));
  gen->Shift(epoch_b);
  for (uint64_t r = 0; r < top_k; ++r) b.insert(gen->KeyForRank(r));
  size_t overlap = 0;
  for (uint64_t k : a) overlap += b.count(k);
  return overlap;
}

TEST(ShiftableZipf, ShiftRelocatesTheHotSet) {
  for (bool scrambled : {true, false}) {
    ShiftableZipfGenerator gen(100'000, 0.99, 7, scrambled);
    // Expected scrambled overlap is k^2/n ~= 0.04 keys; clustered epochs are
    // golden-ratio strides apart. Either way the hot sets must be nearly
    // disjoint — that is what forces downstream caches to re-learn.
    EXPECT_LE(TopRankOverlap(&gen, 0, 1, 64), 8u) << "scrambled=" << scrambled;
    EXPECT_LE(TopRankOverlap(&gen, 1, 2, 64), 8u) << "scrambled=" << scrambled;
    EXPECT_LE(TopRankOverlap(&gen, 0, 5, 64), 8u) << "scrambled=" << scrambled;
    // Re-entering an epoch restores its exact mapping.
    gen.Shift(1);
    const uint64_t k0 = gen.KeyForRank(0), k9 = gen.KeyForRank(9);
    gen.Shift(4);
    gen.Shift(1);
    EXPECT_EQ(gen.KeyForRank(0), k0);
    EXPECT_EQ(gen.KeyForRank(9), k9);
  }
}

TEST(ShiftableZipf, ClusteredModeKeepsHotKeysAdjacentInEveryEpoch) {
  ShiftableZipfGenerator gen(4096, 0.99, 7, /*scrambled=*/false);
  for (uint64_t epoch : {0ull, 1ull, 3ull}) {
    gen.Shift(epoch);
    for (uint64_t r = 0; r < 32; ++r) {
      EXPECT_EQ(gen.KeyForRank(r + 1), (gen.KeyForRank(r) + 1) % gen.n());
    }
  }
}

// --- in-process server fixture ---------------------------------------------

/// A sharded Aria store + epoll server on an ephemeral loopback port, with
/// the load generator registered so CheckInvariants() sees loadgen.*.
struct LoadgenFixture {
  StoreBundle bundle;
  std::unique_ptr<Server> server;

  Status Init(uint32_t shards, uint64_t keyspace, ServerOptions options = {}) {
    StoreOptions o;
    o.scheme = Scheme::kAria;
    o.index = IndexKind::kHash;
    o.keyspace = keyspace;
    o.num_shards = shards;
    ARIA_RETURN_IF_ERROR(CreateStore(o, &bundle));
    server = std::make_unique<Server>(bundle.store.get(), options);
    bundle.registry.Register("net", server.get());
    return server->Start();
  }

  uint16_t port() const { return server->port(); }
};

void ExpectLawChecked(const obs::InvariantReport& report, const char* law) {
  EXPECT_NE(std::find(report.laws_checked.begin(), report.laws_checked.end(),
                      law),
            report.laws_checked.end())
      << law << " was not evaluated";
}

// --- goal-QPS convergence against a live server ----------------------------

TEST(OpenLoopLoadGen, ConvergesToFeasibleGoalWithSkewedFractions) {
  LoadgenFixture fx;
  ASSERT_TRUE(fx.Init(2, 8192).ok());

  OpenLoopOptions opt;
  opt.port = fx.port();
  opt.connections = 2;
  opt.goal_qps = 1600;
  opt.load_fractions = {3.0, 1.0};  // conn0 carries 75% of the offered load
  opt.arrival = ArrivalProcess::kUniform;
  opt.duration_seconds = 2.0;
  opt.seed = testing::EffectiveSeed(41);

  OpenLoopLoadGen lg(opt);
  fx.bundle.registry.Register("loadgen", &lg);
  loadgen::YcsbStreamOptions stream;
  stream.keyspace = 8192;
  stream.read_ratio = 0.5;
  stream.seed = opt.seed;
  ASSERT_TRUE(lg.Run(loadgen::MakeYcsbRequestFn(opt.connections, stream)).ok());

  const loadgen::OpenLoopReport& report = lg.report();
  EXPECT_TRUE(report.ok()) << report.errors << " errors, "
                           << report.failed_connections << " failed conns";
  EXPECT_FALSE(report.saturated);
  // The acceptance bar: achieved within 5% of a feasible goal.
  EXPECT_NEAR(report.achieved_qps, opt.goal_qps, 0.05 * opt.goal_qps);
  EXPECT_NEAR(report.offered_qps, opt.goal_qps, 0.05 * opt.goal_qps);

  // Skewed load fractions: conn0 must offer ~3x conn1.
  obs::Snapshot snap = fx.bundle.Metrics();
  const double conn0 =
      static_cast<double>(snap.Get("loadgen.conn0.requests_offered"));
  const double conn1 =
      static_cast<double>(snap.Get("loadgen.conn1.requests_offered"));
  ASSERT_GT(conn1, 0);
  EXPECT_NEAR(conn0 / conn1, 3.0, 0.45);

  fx.server->Stop();
  obs::InvariantReport audit = fx.bundle.CheckInvariants();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
  ExpectLawChecked(audit, "loadgen-request-conservation");
}

TEST(OpenLoopLoadGen, ReportsSaturationOnInfeasibleGoal) {
  LoadgenFixture fx;
  ASSERT_TRUE(fx.Init(2, 8192).ok());

  OpenLoopOptions opt;
  opt.port = fx.port();
  opt.connections = 2;
  opt.goal_qps = 1'000'000;  // far beyond this store on any host
  opt.duration_seconds = 1.2;
  opt.drain_seconds = 0.5;
  opt.seed = testing::EffectiveSeed(42);

  OpenLoopLoadGen lg(opt);
  fx.bundle.registry.Register("loadgen", &lg);
  loadgen::YcsbStreamOptions stream;
  stream.keyspace = 8192;
  stream.seed = opt.seed;
  ASSERT_TRUE(lg.Run(loadgen::MakeYcsbRequestFn(opt.connections, stream)).ok());

  const loadgen::OpenLoopReport& report = lg.report();
  EXPECT_TRUE(report.saturated);
  EXPECT_LT(report.achieved_qps, 0.9 * opt.goal_qps);
  EXPECT_LE(lg.controller().trim(), opt.controller.max_trim);
  EXPECT_EQ(report.offered,
            report.completed + report.timed_out + report.in_flight_at_stop);

  fx.server->Stop();
  obs::InvariantReport audit = fx.bundle.CheckInvariants();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
  ExpectLawChecked(audit, "loadgen-request-conservation");
}

// --- dynamic hotspot migration, differential -------------------------------

/// Test-side oracle shared between the request and response callbacks: the
/// sender records each operation it issued, the receiver (FIFO responses)
/// replays it against a std::map and diffs the wire result.
struct OracleState {
  struct Issued {
    net::OpCode op;
    std::string key;
    std::string value;
  };
  std::mutex mu;
  std::deque<Issued> issued;
  std::map<std::string, std::string> map;
  uint64_t mismatches = 0;
  uint64_t checked = 0;
};

TEST(OpenLoopLoadGen, HotspotMigrationMatchesOracleAndTurnsOverTheCache) {
  // Two runs with identical request-count bounds and seeds; only the second
  // shifts the hot set mid-run. Swap-in traffic is deterministic in the set
  // of keys touched, so the shifted run must fetch strictly more Merkle
  // nodes — the re-learning cost the migration exists to measure.
  const uint64_t seed = testing::EffectiveSeed(43);
  uint64_t swapped_in[2] = {0, 0};
  uint64_t shifts[2] = {0, 0};

  for (int run = 0; run < 2; ++run) {
    LoadgenFixture fx;
    ASSERT_TRUE(fx.Init(1, 4096).ok());

    OpenLoopOptions opt;
    opt.port = fx.port();
    opt.connections = 1;
    opt.goal_qps = 4000;
    opt.max_requests_per_connection = 4000;
    opt.duration_seconds = 20.0;  // bound by request count, not time
    opt.timeout_nanos = 10'000'000'000ull;
    opt.hotspot_shift_seconds = run == 0 ? 0.0 : 0.35;
    opt.seed = seed;

    OpenLoopLoadGen lg(opt);
    fx.bundle.registry.Register("loadgen", &lg);

    auto state = std::make_shared<OracleState>();
    auto zipf = std::make_shared<ShiftableZipfGenerator>(
        4096, 0.99, seed, /*scrambled=*/false);
    auto op_rng = std::make_shared<Random>(seed ^ 0x0C0FFEEull);
    loadgen::RequestFn request_fn = [state, zipf, op_rng](
                                        uint64_t, uint64_t index,
                                        uint64_t epoch) {
      if (zipf->epoch() != epoch) zipf->Shift(epoch);
      const uint64_t key_id = zipf->NextKey();
      net::Request req;
      req.key = MakeKey(key_id);
      if (op_rng->Bernoulli(0.7)) {
        req.op = net::OpCode::kGet;
      } else {
        req.op = net::OpCode::kPut;
        req.value = MakeValue(key_id, 64,
                              static_cast<uint32_t>(index & 0xFFFFFFFFu));
      }
      std::lock_guard<std::mutex> lock(state->mu);
      state->issued.push_back({req.op, req.key, req.value});
      return req;
    };
    loadgen::ResponseFn response_fn = [state](uint64_t, uint64_t,
                                              const net::Response& resp,
                                              uint64_t, bool) {
      std::lock_guard<std::mutex> lock(state->mu);
      OracleState::Issued op = state->issued.front();
      state->issued.pop_front();
      state->checked++;
      if (op.op == net::OpCode::kPut) {
        if (resp.status != WireStatus::kOk) state->mismatches++;
        state->map[op.key] = op.value;
        return;
      }
      const auto it = state->map.find(op.key);
      if (it == state->map.end()) {
        if (resp.status != WireStatus::kNotFound) state->mismatches++;
      } else if (resp.status != WireStatus::kOk || resp.payload != it->second) {
        state->mismatches++;
      }
    };

    ASSERT_TRUE(lg.Run(request_fn, response_fn).ok());
    const loadgen::OpenLoopReport& report = lg.report();
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.completed, 4000u);
    EXPECT_EQ(report.in_flight_at_stop, 0u);
    EXPECT_EQ(state->checked, 4000u);
    EXPECT_EQ(state->mismatches, 0u) << "oracle divergence in run " << run;
    shifts[run] = report.hotset_shifts;

    fx.server->Stop();
    obs::InvariantReport audit = fx.bundle.CheckInvariants();
    EXPECT_TRUE(audit.ok()) << audit.ToString();
    ExpectLawChecked(audit, "loadgen-request-conservation");
    swapped_in[run] =
        fx.bundle.Metrics().SumSuffix(".cache.bytes_swapped_in");
  }

  EXPECT_EQ(shifts[0], 0u);
  EXPECT_GE(shifts[1], 1u);
  // The migrated hot set touches Merkle leaves the static run never pays
  // for: strictly more swap-in traffic.
  EXPECT_GT(swapped_in[1], swapped_in[0]);
}

// --- coordinated omission --------------------------------------------------

/// Stalls the server's write path once, for `stall_ms`, on the `n`-th
/// response flush: the epoll loop sleeps inside the write, so every queued
/// and subsequently arriving request waits behind it.
class StallOnWriteInjector : public fault::NetInjector {
 public:
  StallOnWriteInjector(uint64_t stall_at_write, int stall_ms)
      : stall_at_write_(stall_at_write), stall_ms_(stall_ms) {}

  size_t OnServerWrite(uint64_t, uint64_t, size_t len) override {
    if (writes_.fetch_add(1) + 1 == stall_at_write_ &&
        !stalled_.exchange(true)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms_));
    }
    return len;
  }
  bool DropBeforeExecute(uint64_t, uint64_t) override { return false; }

 private:
  const uint64_t stall_at_write_;
  const int stall_ms_;
  std::atomic<uint64_t> writes_{0};
  std::atomic<bool> stalled_{false};
};

TEST(OpenLoopLoadGen, OpenLoopSeesServerStallClosedLoopHidesIt) {
  // Regression test for coordinated omission. Both drivers face the same
  // 300ms server stall; the open-loop p99 (stamped from scheduled send
  // time) must absorb it, while a closed-loop driver that measures from op
  // start sees one slow op and a clean p99 — exactly the lie open-loop
  // measurement exists to prevent.
  constexpr int kStallMs = 300;

  LoadgenFixture fx;
  ASSERT_TRUE(fx.Init(1, 4096).ok());
  StallOnWriteInjector open_inj(/*stall_at_write=*/200, kStallMs);
  fault::SetNet(&open_inj);

  OpenLoopOptions opt;
  opt.port = fx.port();
  opt.connections = 1;
  opt.goal_qps = 2000;
  opt.arrival = ArrivalProcess::kUniform;
  opt.duration_seconds = 1.0;
  opt.timeout_nanos = 10'000'000'000ull;
  opt.drain_seconds = 2.0;
  opt.seed = testing::EffectiveSeed(44);

  OpenLoopLoadGen lg(opt);
  fx.bundle.registry.Register("loadgen", &lg);
  loadgen::YcsbStreamOptions stream;
  stream.keyspace = 4096;
  stream.seed = opt.seed;
  ASSERT_TRUE(lg.Run(loadgen::MakeYcsbRequestFn(1, stream)).ok());
  fault::SetNet(nullptr);

  const uint64_t open_p99 = lg.report().latency.P99();
  EXPECT_TRUE(lg.report().ok());

  // Closed-loop control: same store, same stall, synchronous ops timed from
  // their own start.
  LoadgenFixture fx2;
  ASSERT_TRUE(fx2.Init(1, 4096).ok());
  StallOnWriteInjector closed_inj(/*stall_at_write=*/200, kStallMs);
  fault::SetNet(&closed_inj);
  LatencyHistogram closed;
  {
    net::Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", fx2.port()).ok());
    const auto start = std::chrono::steady_clock::now();
    uint64_t i = 0;
    while (std::chrono::steady_clock::now() - start <
           std::chrono::milliseconds(1000)) {
      const auto op_start = std::chrono::steady_clock::now();
      std::string value;
      Status st = client.Get(MakeKey(i++ % 4096), &value);
      ASSERT_TRUE(st.ok() || st.IsNotFound());
      closed.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - op_start)
              .count()));
    }
  }
  fault::SetNet(nullptr);
  const uint64_t closed_p99 = closed.P99();

  // The stall parks ~600 of 2000 scheduled requests: open-loop p99 lands in
  // the hundreds of milliseconds. Closed-loop pays it in exactly one op out
  // of thousands, far past its p99.
  EXPECT_GE(open_p99, 100'000'000ull) << "open-loop p99 missed the stall";
  EXPECT_LE(closed_p99, 50'000'000ull) << "closed-loop run was not clean";
  EXPECT_GT(open_p99, 4 * closed_p99);

  fx.server->Stop();
  obs::InvariantReport audit = fx.bundle.CheckInvariants();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

// --- conservation law: negative controls -----------------------------------

TEST(LoadgenConservation, DroppedCompletionBreaksTheAudit) {
  LoadgenFixture fx;
  ASSERT_TRUE(fx.Init(1, 2048).ok());

  OpenLoopOptions opt;
  opt.port = fx.port();
  opt.connections = 2;
  opt.goal_qps = 3000;
  opt.max_requests_per_connection = 150;
  opt.duration_seconds = 20.0;
  opt.timeout_nanos = 10'000'000'000ull;
  opt.seed = testing::EffectiveSeed(45);

  OpenLoopLoadGen lg(opt);
  fx.bundle.registry.Register("loadgen", &lg);
  loadgen::YcsbStreamOptions stream;
  stream.keyspace = 2048;
  stream.seed = opt.seed;
  ASSERT_TRUE(lg.Run(loadgen::MakeYcsbRequestFn(2, stream)).ok());
  fx.server->Stop();

  // The genuine snapshot passes.
  obs::Snapshot snap = fx.bundle.Metrics();
  {
    obs::InvariantReport report;
    obs::InvariantChecker::CheckLoadgen(snap, &report);
    EXPECT_TRUE(report.ok()) << report.ToString();
    ExpectLawChecked(report, "loadgen-request-conservation");
  }
  // Dropping one completion breaks the aggregate equation AND the
  // conn-sum reconciliation.
  {
    obs::Snapshot tampered = snap;
    tampered.Set("loadgen.requests_completed",
                 snap.Get("loadgen.requests_completed") - 1,
                 obs::MetricKind::kCounter);
    obs::InvariantReport report;
    obs::InvariantChecker::CheckLoadgen(tampered, &report);
    EXPECT_FALSE(report.ok()) << "dropped completion went unnoticed";
    EXPECT_GE(report.violations.size(), 2u);
  }
  // Inflating one connection's offered count breaks its per-conn equation.
  {
    obs::Snapshot tampered = snap;
    tampered.Set("loadgen.conn0.requests_offered",
                 snap.Get("loadgen.conn0.requests_offered") + 1,
                 obs::MetricKind::kCounter);
    obs::InvariantReport report;
    obs::InvariantChecker::CheckLoadgen(tampered, &report);
    EXPECT_FALSE(report.ok()) << "inflated per-conn offered went unnoticed";
  }
}

TEST(LoadgenConservation, HandBuiltSnapshots) {
  // No loadgen metrics: the law is vacuous, not checked, not violated.
  {
    obs::Snapshot snap;
    snap.Set("net.requests", 5, obs::MetricKind::kCounter);
    obs::InvariantReport report;
    obs::InvariantChecker::CheckLoadgen(snap, &report);
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report.laws_checked.empty());
  }
  // Consistent aggregate + per-conn snapshot passes.
  {
    obs::Snapshot snap;
    snap.Set("loadgen.requests_offered", 10, obs::MetricKind::kCounter);
    snap.Set("loadgen.requests_completed", 7, obs::MetricKind::kCounter);
    snap.Set("loadgen.requests_timed_out", 2, obs::MetricKind::kCounter);
    snap.Set("loadgen.requests_in_flight", 1, obs::MetricKind::kGauge);
    snap.Set("loadgen.conn0.requests_offered", 10, obs::MetricKind::kCounter);
    snap.Set("loadgen.conn0.requests_completed", 7, obs::MetricKind::kCounter);
    snap.Set("loadgen.conn0.requests_timed_out", 2, obs::MetricKind::kCounter);
    snap.Set("loadgen.conn0.requests_in_flight", 1, obs::MetricKind::kGauge);
    obs::InvariantReport report;
    obs::InvariantChecker::CheckLoadgen(snap, &report);
    EXPECT_TRUE(report.ok()) << report.ToString();
    // A leaked in-flight request (gauge up without a matching offer) fails.
    snap.Set("loadgen.requests_in_flight", 2, obs::MetricKind::kGauge);
    snap.Set("loadgen.conn0.requests_in_flight", 2, obs::MetricKind::kGauge);
    obs::InvariantReport report2;
    obs::InvariantChecker::CheckLoadgen(snap, &report2);
    EXPECT_FALSE(report2.ok());
  }
  // "loadgen.connections" must not be mistaken for a per-conn namespace.
  {
    obs::Snapshot snap;
    snap.Set("loadgen.requests_offered", 0, obs::MetricKind::kCounter);
    snap.Set("loadgen.connections", 4, obs::MetricKind::kGauge);
    obs::InvariantReport report;
    obs::InvariantChecker::CheckLoadgen(snap, &report);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

}  // namespace
}  // namespace aria
