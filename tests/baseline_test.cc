// Tests for the EPC baselines: the in-enclave hash table and B-tree, plus
// the paging behavior that defines their performance cliff.
#include <gtest/gtest.h>

#include <map>

#include "baseline/enclave_btree.h"
#include "baseline/enclave_kv.h"
#include "common/random.h"
#include "core/store_factory.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

TEST(EnclaveKV, BasicCrud) {
  sgx::EnclaveRuntime rt(64ull * 1024 * 1024);
  EnclaveKV kv(&rt, EnclaveKVConfig{256});
  ASSERT_TRUE(kv.Init().ok());
  ASSERT_TRUE(kv.Put("a", "1").ok());
  ASSERT_TRUE(kv.Put("b", "2").ok());
  std::string v;
  ASSERT_TRUE(kv.Get("a", &v).ok());
  EXPECT_EQ(v, "1");
  ASSERT_TRUE(kv.Put("a", "3").ok());
  ASSERT_TRUE(kv.Get("a", &v).ok());
  EXPECT_EQ(v, "3");
  ASSERT_TRUE(kv.Delete("a").ok());
  EXPECT_TRUE(kv.Get("a", &v).IsNotFound());
  EXPECT_TRUE(kv.Delete("a").IsNotFound());
  EXPECT_EQ(kv.size(), 1u);
}

TEST(EnclaveKV, GrowingValueRelocation) {
  sgx::EnclaveRuntime rt(64ull * 1024 * 1024);
  EnclaveKV kv(&rt, EnclaveKVConfig{16});
  ASSERT_TRUE(kv.Init().ok());
  ASSERT_TRUE(kv.Put("k", "small").ok());
  std::string big(1000, 'z');
  ASSERT_TRUE(kv.Put("k", big).ok());
  std::string v;
  ASSERT_TRUE(kv.Get("k", &v).ok());
  EXPECT_EQ(v, big);
}

TEST(EnclaveKV, RandomizedAgainstStdMap) {
  sgx::EnclaveRuntime rt(64ull * 1024 * 1024);
  EnclaveKV kv(&rt, EnclaveKVConfig{64});
  ASSERT_TRUE(kv.Init().ok());
  Random rng(9);
  std::map<std::string, std::string> model;
  std::string v;
  for (int step = 0; step < 10000; ++step) {
    std::string key = MakeKey(rng.Uniform(300));
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      std::string value = MakeValue(step, 1 + rng.Uniform(64));
      ASSERT_TRUE(kv.Put(key, value).ok());
      model[key] = value;
    } else if (dice < 0.8) {
      Status st = kv.Get(key, &v);
      auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_TRUE(st.ok());
        ASSERT_EQ(v, it->second);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    } else {
      Status st = kv.Delete(key);
      ASSERT_EQ(model.erase(key) > 0, st.ok());
    }
  }
}

TEST(EnclaveKV, PagesOnceBeyondEpcBudget) {
  // Working set ~4 MB against a 1 MB EPC: the paging counter must move.
  sgx::EnclaveRuntime rt(1ull * 1024 * 1024);
  EnclaveKV kv(&rt, EnclaveKVConfig{4096});
  ASSERT_TRUE(kv.Init().ok());
  for (int i = 0; i < 8000; ++i) {
    ASSERT_TRUE(kv.Put(MakeKey(i), MakeValue(i, 400)).ok());
  }
  std::string v;
  Random rng(1);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(kv.Get(MakeKey(rng.Uniform(8000)), &v).ok());
  }
  EXPECT_GT(rt.stats().page_swaps, 100u);
}

TEST(EnclaveKV, NoPagingWithinBudget) {
  sgx::EnclaveRuntime rt(64ull * 1024 * 1024);
  EnclaveKV kv(&rt, EnclaveKVConfig{1024});
  ASSERT_TRUE(kv.Init().ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(kv.Put(MakeKey(i), MakeValue(i, 64)).ok());
  }
  std::string v;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(kv.Get(MakeKey(i), &v).ok());
  }
  EXPECT_EQ(rt.stats().page_swaps, 0u);
}

TEST(EnclaveBTree, BasicCrudAndTombstones) {
  sgx::EnclaveRuntime rt(64ull * 1024 * 1024);
  EnclaveBTree t(&rt);
  ASSERT_TRUE(t.Put("b", "2").ok());
  ASSERT_TRUE(t.Put("a", "1").ok());
  ASSERT_TRUE(t.Put("c", "3").ok());
  std::string v;
  ASSERT_TRUE(t.Get("b", &v).ok());
  EXPECT_EQ(v, "2");
  ASSERT_TRUE(t.Delete("b").ok());
  EXPECT_TRUE(t.Get("b", &v).IsNotFound());
  EXPECT_TRUE(t.Delete("b").IsNotFound());
  // Re-insert over the tombstone.
  ASSERT_TRUE(t.Put("b", "9").ok());
  ASSERT_TRUE(t.Get("b", &v).ok());
  EXPECT_EQ(v, "9");
  EXPECT_EQ(t.size(), 3u);
}

TEST(EnclaveBTree, ManyKeysOrderedScan) {
  sgx::EnclaveRuntime rt(64ull * 1024 * 1024);
  EnclaveBTree t(&rt);
  for (int i = 299; i >= 0; --i) {
    ASSERT_TRUE(t.Put(MakeKey(i), MakeValue(i, 10)).ok());
  }
  std::string v;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(t.Get(MakeKey(i), &v).ok()) << i;
    ASSERT_EQ(v, MakeValue(i, 10));
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(t.RangeScan(MakeKey(100), 50, &out).ok());
  ASSERT_EQ(out.size(), 50u);
  EXPECT_EQ(out[0].first, MakeKey(100));
  for (size_t i = 0; i + 1 < out.size(); ++i) {
    EXPECT_LT(out[i].first, out[i + 1].first);
  }
}

TEST(EnclaveBTree, ScanSkipsTombstones) {
  sgx::EnclaveRuntime rt(64ull * 1024 * 1024);
  EnclaveBTree t(&rt);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(t.Put(MakeKey(i), "v").ok());
  ASSERT_TRUE(t.Delete(MakeKey(5)).ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(t.RangeScan(MakeKey(0), 100, &out).ok());
  EXPECT_EQ(out.size(), 19u);
  for (auto& [k, val] : out) {
    (void)val;
    EXPECT_NE(k, MakeKey(5));
  }
}

TEST(TrustedCounterStore, FetchFreeReadBump) {
  sgx::EnclaveRuntime rt(64ull * 1024 * 1024);
  crypto::SecureRandom rng(7);
  TrustedCounterStore cs(&rt, &rng, 128);
  ASSERT_TRUE(cs.Init().ok());
  auto a = cs.FetchCounter();
  ASSERT_TRUE(a.ok());
  uint8_t v1[16], v2[16];
  ASSERT_TRUE(cs.ReadCounter(a.value(), v1).ok());
  ASSERT_TRUE(cs.BumpCounter(a.value(), v2).ok());
  EXPECT_NE(0, memcmp(v1, v2, 16));
  ASSERT_TRUE(cs.FreeCounter(a.value()).ok());
  EXPECT_TRUE(cs.FreeCounter(a.value()).IsIntegrityViolation());
  // Recycled.
  auto b = cs.FetchCounter();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), a.value());
}

TEST(TrustedCounterStore, CapacityExceeded) {
  sgx::EnclaveRuntime rt(64ull * 1024 * 1024);
  crypto::SecureRandom rng(8);
  TrustedCounterStore cs(&rt, &rng, 4);
  ASSERT_TRUE(cs.Init().ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(cs.FetchCounter().ok());
  EXPECT_TRUE(cs.FetchCounter().status().IsCapacityExceeded());
}

TEST(StoreFactory, AllSchemesConstructAndServe) {
  for (Scheme scheme : {Scheme::kAria, Scheme::kAriaNoCache,
                        Scheme::kShieldStore, Scheme::kBaseline}) {
    StoreOptions opts;
    opts.scheme = scheme;
    opts.keyspace = 512;
    opts.num_buckets = 64;
    opts.shieldstore_buckets = 64;
    StoreBundle bundle;
    ASSERT_TRUE(CreateStore(opts, &bundle).ok()) << bundle.label;
    ASSERT_TRUE(bundle.store->Put("key", "value").ok()) << bundle.label;
    std::string v;
    ASSERT_TRUE(bundle.store->Get("key", &v).ok()) << bundle.label;
    EXPECT_EQ(v, "value") << bundle.label;
  }
}

TEST(StoreFactory, ShieldStoreRejectsBTree) {
  StoreOptions opts;
  opts.scheme = Scheme::kShieldStore;
  opts.index = IndexKind::kBTree;
  StoreBundle bundle;
  EXPECT_TRUE(CreateStore(opts, &bundle).IsInvalidArgument());
}

}  // namespace
}  // namespace aria
