// Parameterized property sweeps across modules: each suite checks one
// invariant over a grid of configurations (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <tuple>
#include <vector>

#include "alloc/heap_allocator.h"
#include "cache/secure_cache.h"
#include "common/random.h"
#include "core/record.h"
#include "core/store_factory.h"
#include "crypto/secure_random.h"
#include "mt/flat_merkle_tree.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

// ---------------------------------------------------------------------------
// Record codec: seal/verify/open roundtrip over a (key length, value length)
// grid, plus MAC sensitivity to a bit flip at every byte position.
// ---------------------------------------------------------------------------

class RecordSizeSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {
 protected:
  RecordSizeSweep()
      : enclave_(8 << 20),
        rng_(99),
        aes_(Key(1)),
        mac_aes_(Key(2)),
        cmac_(mac_aes_),
        codec_(&enclave_, &aes_, &cmac_) {}

  static const uint8_t* Key(uint8_t tag) {
    static uint8_t k1[16] = {1};
    static uint8_t k2[16] = {2};
    return tag == 1 ? k1 : k2;
  }

  sgx::EnclaveRuntime enclave_;
  crypto::SecureRandom rng_;
  crypto::Aes128 aes_;
  crypto::Aes128 mac_aes_;
  crypto::Cmac128 cmac_;
  RecordCodec codec_;
};

TEST_P(RecordSizeSweep, RoundTripAndTamperDetection) {
  auto [k_len, v_len] = GetParam();
  std::string key(k_len, '\0');
  std::string value(v_len, '\0');
  rng_.Fill(key.data(), k_len);
  rng_.Fill(value.data(), v_len);
  uint8_t counter[16];
  rng_.Fill(counter, 16);

  // The sealed record, padded with the worst-case slack a tampered header
  // can address: a flipped k_len/v_len moves the stored-MAC offset by up to
  // 2 * 65535 bytes, and Verify reads 16 bytes there before the mismatch is
  // detected. Production records sit inside 4 MB allocator chunks, so that
  // read hits mapped (garbage) memory; the test buffer must model the same
  // invariant or the sweep is undefined behavior under ASan.
  const size_t sealed = RecordCodec::SealedSize(k_len, v_len);
  std::vector<uint8_t> rec(RecordCodec::SealedSize(65535, 65535), 0);
  codec_.Seal(7, counter, key, value, 0xAD, rec.data());
  ASSERT_TRUE(codec_.Verify(rec.data(), counter, 0xAD).ok());
  std::string k_out, v_out;
  codec_.Open(rec.data(), counter, &k_out, &v_out);
  EXPECT_EQ(k_out, key);
  EXPECT_EQ(v_out, value);

  // Value-only decryption agrees with the full open.
  std::string v_only;
  codec_.OpenValue(rec.data(), counter, &v_only);
  EXPECT_EQ(v_only, value);

  // Any single-byte flip anywhere in the sealed record breaks the MAC.
  Random positions(k_len * 1315423911u + v_len);
  for (int trial = 0; trial < 16; ++trial) {
    size_t pos = positions.Uniform(sealed);
    rec[pos] ^= 0x01;
    EXPECT_TRUE(codec_.Verify(rec.data(), counter, 0xAD).IsIntegrityViolation())
        << "flip at " << pos;
    rec[pos] ^= 0x01;
  }
  ASSERT_TRUE(codec_.Verify(rec.data(), counter, 0xAD).ok());
}

INSTANTIATE_TEST_SUITE_P(
    SizeGrid, RecordSizeSweep,
    ::testing::Combine(::testing::Values(1, 15, 16, 17, 64, 255),
                       ::testing::Values(0, 1, 13, 16, 100, 300, 1024)));

// ---------------------------------------------------------------------------
// Secure Cache: the shadow-model invariant (reads return the last written
// counter value, everything verifies) must hold across arity × policy ×
// capacity, including through stop-swap transitions.
// ---------------------------------------------------------------------------

class CacheConfigSweep
    : public ::testing::TestWithParam<std::tuple<size_t, CachePolicy, int>> {
};

TEST_P(CacheConfigSweep, ShadowModelHolds) {
  auto [arity, policy, slots] = GetParam();
  sgx::EnclaveRuntime enclave(64 << 20);
  HeapAllocator alloc(&enclave);
  crypto::SecureRandom rng(static_cast<uint64_t>(arity) * 131 + slots);
  uint8_t key[16] = {42};
  crypto::Aes128 aes(key);
  crypto::Cmac128 cmac(aes);

  const uint64_t kCounters = 2048;
  FlatMerkleTree tree(&enclave, &alloc, &cmac, kCounters, arity);
  ASSERT_TRUE(tree.Init(&rng).ok());
  SecureCacheConfig cfg;
  cfg.capacity_bytes = slots * (tree.node_size() + 24);
  cfg.policy = policy;
  cfg.pinned_levels = 0;
  cfg.stop_swap_enabled = true;
  cfg.stop_swap_window = 512;
  SecureCache cache(&enclave, &tree, &cmac, cfg);
  ASSERT_TRUE(cache.Attach().ok());

  Random ops(slots * 7 + arity);
  std::map<uint64_t, std::vector<uint8_t>> shadow;
  for (int step = 0; step < 8000; ++step) {
    uint64_t c = ops.Uniform(kCounters);
    uint8_t got[16];
    if (ops.Bernoulli(0.35)) {
      ASSERT_TRUE(cache.BumpCounter(c, got).ok()) << step;
      shadow[c].assign(got, got + 16);
    } else {
      ASSERT_TRUE(cache.ReadCounter(c, got).ok()) << step;
      auto it = shadow.find(c);
      if (it != shadow.end()) {
        ASSERT_EQ(0, std::memcmp(got, it->second.data(), 16))
            << "step " << step << " counter " << c << " arity " << arity;
      } else {
        shadow[c].assign(got, got + 16);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CacheConfigSweep,
    ::testing::Combine(::testing::Values(2, 4, 8, 16),
                       ::testing::Values(CachePolicy::kFifo,
                                         CachePolicy::kLru),
                       ::testing::Values(6, 32, 200)));

// ---------------------------------------------------------------------------
// Merkle tree: tampering any single node at any level must be detected by a
// verification chain through that node, across arities.
// ---------------------------------------------------------------------------

class MtTamperSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MtTamperSweep, EveryLevelTamperDetected) {
  size_t arity = GetParam();
  sgx::EnclaveRuntime enclave(64 << 20);
  HeapAllocator alloc(&enclave);
  crypto::SecureRandom rng(4);
  uint8_t key[16] = {7};
  crypto::Aes128 aes(key);
  crypto::Cmac128 cmac(aes);
  FlatMerkleTree tree(&enclave, &alloc, &cmac, 4096, arity);
  ASSERT_TRUE(tree.Init(&rng).ok());

  for (int level = 0; level < tree.num_levels() - 1; ++level) {
    // Fresh tiny cache per tamper so nothing is cached from earlier rounds.
    SecureCacheConfig cfg;
    cfg.capacity_bytes = 8 * (tree.node_size() + 24);
    cfg.pinned_levels = 0;
    cfg.stop_swap_enabled = false;
    SecureCache cache(&enclave, &tree, &cmac, cfg);
    ASSERT_TRUE(cache.Attach().ok());

    uint64_t node = tree.NodesAt(level) / 2;
    uint8_t* p = tree.NodePtr(level, node);
    p[3] ^= 0x10;
    // A counter beneath the tampered node must fail verification.
    uint64_t counters_per_node = 1;
    for (int l = 0; l < level; ++l) counters_per_node *= arity;
    counters_per_node *= arity;  // level-0 node holds `arity` counters
    uint64_t victim_counter = node * counters_per_node;
    if (victim_counter >= 4096) victim_counter = 4095;
    uint8_t out[16];
    EXPECT_TRUE(cache.ReadCounter(victim_counter, out).IsIntegrityViolation())
        << "arity " << arity << " level " << level;
    p[3] ^= 0x10;  // restore
  }
}

INSTANTIATE_TEST_SUITE_P(Arities, MtTamperSweep,
                         ::testing::Values(2, 4, 8, 12, 16));

// ---------------------------------------------------------------------------
// Allocator: alloc/free roundtrip across every size class boundary.
// ---------------------------------------------------------------------------

class AllocSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(AllocSizeSweep, BoundarySizesRoundTrip) {
  size_t base = GetParam();
  sgx::EnclaveRuntime enclave(64 << 20);
  HeapAllocator alloc(&enclave);
  for (long delta : {-1L, 0L, 1L}) {
    if (delta < 0 && base == 1) continue;
    size_t size = base + delta;
    auto r = alloc.Alloc(size);
    ASSERT_TRUE(r.ok()) << size;
    std::memset(r.value(), 0x5A, size);
    ASSERT_TRUE(alloc.Free(r.value()).ok()) << size;
    // The class must be at least the requested size.
    EXPECT_GE(HeapAllocator::RoundUpToClass(size), size);
  }
}

INSTANTIATE_TEST_SUITE_P(Boundaries, AllocSizeSweep,
                         ::testing::Values(1, 16, 24, 32, 48, 64, 96, 128,
                                           192, 256, 1024, 4096, 65536,
                                           1 << 20, 4 << 20));

// ---------------------------------------------------------------------------
// Store equivalence: every Aria index variant must behave identically on
// the same operation sequence (the decoupled-design claim as a property).
// ---------------------------------------------------------------------------

class IndexEquivalence : public ::testing::TestWithParam<IndexKind> {};

TEST_P(IndexEquivalence, MatchesChainedHashBehavior) {
  IndexKind kind = GetParam();
  StoreOptions ref_opts;
  ref_opts.scheme = Scheme::kAria;
  ref_opts.index = IndexKind::kHash;
  ref_opts.keyspace = 4096;
  StoreOptions alt_opts = ref_opts;
  alt_opts.index = kind;

  StoreBundle ref, alt;
  ASSERT_TRUE(CreateStore(ref_opts, &ref).ok());
  ASSERT_TRUE(CreateStore(alt_opts, &alt).ok());

  Random rng(31);
  std::string v1, v2;
  for (int step = 0; step < 4000; ++step) {
    uint64_t id = rng.Uniform(300);
    std::string key = MakeKey(id);
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      std::string value =
          MakeValue(id, 1 + rng.Uniform(80), static_cast<uint32_t>(step));
      Status s1 = ref.store->Put(key, value);
      Status s2 = alt.store->Put(key, value);
      ASSERT_EQ(s1.ok(), s2.ok()) << step;
    } else if (dice < 0.8) {
      Status s1 = ref.store->Get(key, &v1);
      Status s2 = alt.store->Get(key, &v2);
      ASSERT_EQ(s1.code(), s2.code()) << step;
      if (s1.ok()) ASSERT_EQ(v1, v2) << step;
    } else {
      Status s1 = ref.store->Delete(key);
      Status s2 = alt.store->Delete(key);
      ASSERT_EQ(s1.code(), s2.code()) << step;
    }
    ASSERT_EQ(ref.store->size(), alt.store->size()) << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Indexes, IndexEquivalence,
                         ::testing::Values(IndexKind::kBTree,
                                           IndexKind::kBPlusTree,
                                           IndexKind::kCuckoo));

}  // namespace
}  // namespace aria
