// End-to-end attack tests (§V-C "Index Protection", §IV-B proof sketch):
// every attack the paper claims to defeat is mounted against a live store
// through direct writes to untrusted memory, and must surface as an
// IntegrityViolation — never as silent wrong data.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/aria_btree.h"
#include "core/aria_hash.h"
#include "core/store_factory.h"
#include "metadata/counter_manager.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

class HashAttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StoreOptions opts;
    opts.scheme = Scheme::kAria;
    opts.keyspace = 4096;
    opts.num_buckets = 16;  // collisions guaranteed
    ASSERT_TRUE(CreateStore(opts, &bundle_).ok());
    hash_ = static_cast<AriaHash*>(bundle_.store.get());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(hash_->Put(MakeKey(i), MakeValue(i, 32)).ok());
    }
  }

  StoreBundle bundle_;
  AriaHash* hash_ = nullptr;
};

TEST_F(HashAttackTest, TamperCiphertextDetected) {
  uint8_t* entry = hash_->DebugEntry(MakeKey(7));
  ASSERT_NE(entry, nullptr);
  // Entry layout: [next 8][hint 4][pad 4][record]; flip a ciphertext byte.
  entry[16 + RecordCodec::kHeaderSize] ^= 0x01;
  std::string v;
  EXPECT_TRUE(hash_->Get(MakeKey(7), &v).IsIntegrityViolation());
}

TEST_F(HashAttackTest, TamperStoredMacDetected) {
  uint8_t* entry = hash_->DebugEntry(MakeKey(8));
  ASSERT_NE(entry, nullptr);
  RecordHeader h = RecordCodec::Peek(entry + 16);
  uint8_t* mac = entry + 16 + RecordCodec::kHeaderSize + h.k_len + h.v_len;
  mac[0] ^= 0xFF;
  std::string v;
  EXPECT_TRUE(hash_->Get(MakeKey(8), &v).IsIntegrityViolation());
}

TEST_F(HashAttackTest, RecordReplayDetected) {
  // Snapshot the sealed record, overwrite the key with a new value (which
  // bumps the counter), then roll the record bytes back.
  uint8_t* entry = hash_->DebugEntry(MakeKey(9));
  ASSERT_NE(entry, nullptr);
  RecordHeader h = RecordCodec::Peek(entry + 16);
  size_t rec_size = RecordCodec::SealedSize(h.k_len, h.v_len);
  std::vector<uint8_t> old_record(entry + 16, entry + 16 + rec_size);
  ASSERT_TRUE(hash_->Put(MakeKey(9), MakeValue(9, 32, /*version=*/2)).ok());
  std::memcpy(entry + 16, old_record.data(), rec_size);  // replay
  std::string v;
  EXPECT_TRUE(hash_->Get(MakeKey(9), &v).IsIntegrityViolation());
}

TEST_F(HashAttackTest, PointerExchangeAcrossBucketsDetected) {
  // Fig. 7: exchange two bucket head pointers. Both lookups must fail
  // verification because each record's MAC binds the pointer-cell address.
  std::string k1, k2;
  uint8_t** c1 = nullptr;
  uint8_t** c2 = nullptr;
  for (int i = 0; i < 200 && c2 == nullptr; ++i) {
    uint8_t** c = hash_->DebugBucketCell(MakeKey(i));
    if (c1 == nullptr) {
      c1 = c;
      k1 = MakeKey(i);
    } else if (c != c1) {
      c2 = c;
      k2 = MakeKey(i);
    }
  }
  ASSERT_NE(c2, nullptr);
  std::swap(*c1, *c2);
  std::string v;
  Status s1 = hash_->Get(k1, &v);
  Status s2 = hash_->Get(k2, &v);
  EXPECT_TRUE(s1.IsIntegrityViolation()) << s1.ToString();
  EXPECT_TRUE(s2.IsIntegrityViolation()) << s2.ToString();
}

TEST_F(HashAttackTest, UnauthorizedDeletionDetected) {
  // Attacker clears a bucket head: the enclave's per-bucket entry count
  // catches the shortened chain on the next miss.
  uint8_t** cell = hash_->DebugBucketCell(MakeKey(3));
  ASSERT_NE(*cell, nullptr);
  *cell = nullptr;
  std::string v;
  EXPECT_TRUE(hash_->Get(MakeKey(3), &v).IsIntegrityViolation());
}

TEST_F(HashAttackTest, ChainTruncationDetected) {
  // Splice out the head entry of a chain (keep the rest) — subtler than
  // clearing the whole bucket.
  uint8_t** cell = hash_->DebugBucketCell(MakeKey(3));
  uint8_t* head = *cell;
  ASSERT_NE(head, nullptr);
  uint8_t* second;
  std::memcpy(&second, head, 8);
  if (second == nullptr) GTEST_SKIP() << "chain too short for this seed";
  *cell = second;
  // A lookup that misses in the SAME bucket walks the chain and compares
  // the trusted count (or trips over `second`'s AdFIeld, which was bound to
  // &head->next and is now reached from the bucket cell).
  uint64_t absent = 100000;
  while (hash_->DebugBucketCell(MakeKey(absent)) != cell) ++absent;
  std::string v;
  Status st = hash_->Get(MakeKey(absent), &v);
  EXPECT_TRUE(st.IsIntegrityViolation()) << st.ToString();
}

TEST(CounterAreaAttack, TamperedCountersDetectedOnCacheMiss) {
  // Attack the Merkle-tree-protected counter area underneath the store:
  // flip a bit in every (untrusted) counter. A tiny Secure Cache guarantees
  // that lookups miss and must re-verify — which has to fail.
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.keyspace = 4096;
  opts.num_buckets = 64;
  opts.cache_bytes = 4096;  // tiny: ~32 slots, no pinned leaf level
  opts.pinned_levels = 0;
  opts.stop_swap_enabled = false;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  auto* hash = static_cast<AriaHash*>(bundle.store.get());
  // Enough keys that their counter leaves far exceed the ~32 cache slots.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(hash->Put(MakeKey(i), MakeValue(i, 32)).ok());
  }
  FlatMerkleTree* tree = bundle.counter_manager()->tree();
  for (uint64_t c = 0; c < tree->num_counters(); ++c) {
    tree->CounterPtr(c)[0] ^= 0xA5;
  }
  std::string v;
  bool violation = false;
  for (int i = 0; i < 2000 && !violation; ++i) {
    violation = hash->Get(MakeKey(i), &v).IsIntegrityViolation();
  }
  EXPECT_TRUE(violation);
}

class BTreeAttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StoreOptions opts;
    opts.scheme = Scheme::kAria;
    opts.index = IndexKind::kBTree;
    opts.keyspace = 4096;
    ASSERT_TRUE(CreateStore(opts, &bundle_).ok());
    tree_ = static_cast<AriaBTree*>(bundle_.store.get());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(tree_->Put(MakeKey(i), MakeValue(i, 32)).ok());
    }
  }

  StoreBundle bundle_;
  AriaBTree* tree_ = nullptr;
};

TEST_F(BTreeAttackTest, RecordSwapDetected) {
  // Exchange two records' pointer slots: each MAC binds its slot address.
  uint8_t** s1 = tree_->DebugRecordSlot(MakeKey(10));
  uint8_t** s2 = tree_->DebugRecordSlot(MakeKey(150));
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  std::swap(*s1, *s2);
  std::string v;
  Status st1 = tree_->Get(MakeKey(10), &v);
  Status st2 = tree_->Get(MakeKey(150), &v);
  EXPECT_TRUE(st1.IsIntegrityViolation() || st2.IsIntegrityViolation());
  EXPECT_TRUE(tree_->VerifyFullIntegrity().IsIntegrityViolation());
}

TEST_F(BTreeAttackTest, RecordTamperDetected) {
  uint8_t** slot = tree_->DebugRecordSlot(MakeKey(77));
  ASSERT_NE(slot, nullptr);
  (*slot)[RecordCodec::kHeaderSize] ^= 1;
  std::string v;
  EXPECT_TRUE(tree_->Get(MakeKey(77), &v).IsIntegrityViolation());
}

TEST_F(BTreeAttackTest, FullAuditCountsDeletion) {
  // VerifyFullIntegrity compares the trusted total key count; test the
  // trusted-metadata path by checking it passes when untampered.
  EXPECT_TRUE(tree_->VerifyFullIntegrity().ok());
}

TEST(NoCacheAttack, TamperedRecordDetectedWithTrustedCounters) {
  // Aria w/o Cache keeps counters in the EPC: record tamper must still be
  // caught by the per-record MAC.
  StoreOptions opts;
  opts.scheme = Scheme::kAriaNoCache;
  opts.keyspace = 512;
  opts.num_buckets = 8;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  auto* hash = static_cast<AriaHash*>(bundle.store.get());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(hash->Put(MakeKey(i), "value").ok());
  }
  uint8_t* entry = hash->DebugEntry(MakeKey(5));
  ASSERT_NE(entry, nullptr);
  entry[16 + RecordCodec::kHeaderSize] ^= 0x80;
  std::string v;
  EXPECT_TRUE(hash->Get(MakeKey(5), &v).IsIntegrityViolation());
}

TEST(ShieldStoreAttack, BucketTamperDetected) {
  StoreOptions opts;
  opts.scheme = Scheme::kShieldStore;
  opts.keyspace = 512;
  opts.shieldstore_buckets = 8;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  auto* ss = bundle.store.get();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(ss->Put(MakeKey(i), MakeValue(i, 16)).ok());
  }
  // ShieldStore's own state is private; attack through the counter-free
  // surface we do control: replay an old value by Put-then-Get mismatch is
  // impossible without memory access, so validate the root mechanism via
  // its statistics instead: every Get verified the bucket root.
  auto* shield = static_cast<ShieldStore*>(ss);
  uint64_t verifications = shield->stats().bucket_verifications;
  std::string v;
  ASSERT_TRUE(ss->Get(MakeKey(1), &v).ok());
  EXPECT_EQ(shield->stats().bucket_verifications, verifications + 1);
}

}  // namespace
}  // namespace aria
