// Tests for Aria-C (cuckoo index over the shared security-metadata layer):
// CRUD, kick relocations with AdField reseals, kick-budget unwinding,
// attack detection, and a randomized reference test.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/aria_cuckoo.h"
#include "core/store_factory.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

class AriaCuckooTest : public ::testing::Test {
 protected:
  void Build(uint64_t keyspace = 4096, uint64_t buckets = 0) {
    StoreOptions opts;
    opts.scheme = Scheme::kAria;
    opts.index = IndexKind::kCuckoo;
    opts.keyspace = keyspace;
    opts.num_buckets = buckets;
    opts.cache_bytes = 1 << 20;
    ASSERT_TRUE(CreateStore(opts, &bundle_).ok());
    EXPECT_EQ(bundle_.label, "Aria-C");
    store_ = static_cast<AriaCuckoo*>(bundle_.store.get());
  }

  StoreBundle bundle_;
  AriaCuckoo* store_ = nullptr;
};

TEST_F(AriaCuckooTest, PutGetDelete) {
  Build();
  ASSERT_TRUE(store_->Put("alpha", "1").ok());
  ASSERT_TRUE(store_->Put("beta", "2").ok());
  std::string v;
  ASSERT_TRUE(store_->Get("alpha", &v).ok());
  EXPECT_EQ(v, "1");
  ASSERT_TRUE(store_->Delete("alpha").ok());
  EXPECT_TRUE(store_->Get("alpha", &v).IsNotFound());
  EXPECT_TRUE(store_->Delete("alpha").IsNotFound());
  EXPECT_EQ(store_->size(), 1u);
}

TEST_F(AriaCuckooTest, OverwriteInPlaceAndGrow) {
  Build();
  ASSERT_TRUE(store_->Put("k", "aa").ok());
  ASSERT_TRUE(store_->Put("k", "bb").ok());
  std::string v;
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, "bb");
  std::string big(400, 'x');
  ASSERT_TRUE(store_->Put("k", big).ok());
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, big);
  EXPECT_EQ(store_->size(), 1u);
}

TEST_F(AriaCuckooTest, KicksRelocateAndStayReadable) {
  // Small table at high load: kicks are guaranteed.
  Build(4096, /*buckets=*/64);  // 256 slots
  std::string v;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), MakeValue(i, 24)).ok()) << i;
  }
  EXPECT_GT(store_->stats().kicks, 0u);
  EXPECT_GT(store_->stats().reseals, 0u);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store_->Get(MakeKey(i), &v).ok()) << i;
    ASSERT_EQ(v, MakeValue(i, 24));
  }
}

TEST_F(AriaCuckooTest, KickBudgetFailsCleanlyWithoutGrowth) {
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.index = IndexKind::kCuckoo;
  opts.keyspace = 4096;
  opts.num_buckets = 4;  // 16 slots: fill to the brim
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  auto* store = static_cast<AriaCuckoo*>(bundle.store.get());
  // This test targets the unwind path, so disable growth via the internal
  // config by filling a store built without it.
  // (CreateStore enables growth; rebuild the index directly instead.)
  AriaCuckooConfig cfg;
  cfg.num_buckets = 4;
  cfg.grow_on_full = false;
  AriaCuckoo fixed(bundle.enclave.get(), bundle.allocator.get(),
                   bundle.codec.get(), bundle.counters.get(), cfg);
  ASSERT_TRUE(fixed.Init().ok());
  (void)store;

  int inserted = 0;
  Status last;
  for (int i = 0; i < 64; ++i) {
    last = fixed.Put(MakeKey(i), "v");
    if (last.ok()) {
      inserted++;
    } else {
      EXPECT_TRUE(last.IsCapacityExceeded());
      break;
    }
  }
  EXPECT_GT(inserted, 8);          // decent fill before failure
  EXPECT_TRUE(last.IsCapacityExceeded());
  EXPECT_EQ(fixed.size(), static_cast<uint64_t>(inserted));
  // The failed insert must not have lost or corrupted anything.
  std::string v;
  for (int i = 0; i < inserted; ++i) {
    ASSERT_TRUE(fixed.Get(MakeKey(i), &v).ok()) << i;
  }
}

TEST_F(AriaCuckooTest, GrowsWhenFull) {
  Build(1 << 14, /*buckets=*/8);  // 32 slots, growth enabled by default
  std::string v;
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), MakeValue(i, 16)).ok()) << i;
  }
  EXPECT_GE(store_->stats().grows, 1u);
  EXPECT_EQ(store_->size(), 400u);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(store_->Get(MakeKey(i), &v).ok()) << i;
    ASSERT_EQ(v, MakeValue(i, 16));
  }
  // Deletion detection still consistent after rehash.
  EXPECT_TRUE(store_->Get(MakeKey(9999), &v).IsNotFound());
}

TEST_F(AriaCuckooTest, SlotTamperDetected) {
  Build();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), MakeValue(i, 16)).ok());
  }
  uint8_t** cell = store_->DebugSlotCell(MakeKey(7));
  ASSERT_NE(cell, nullptr);
  (*cell)[RecordCodec::kHeaderSize] ^= 1;
  std::string v;
  EXPECT_TRUE(store_->Get(MakeKey(7), &v).IsIntegrityViolation());
}

TEST_F(AriaCuckooTest, SlotExchangeDetected) {
  Build();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), MakeValue(i, 16)).ok());
  }
  uint8_t** c1 = store_->DebugSlotCell(MakeKey(11));
  uint8_t** c2 = store_->DebugSlotCell(MakeKey(55));
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  std::swap(*c1, *c2);
  std::string v;
  Status s1 = store_->Get(MakeKey(11), &v);
  Status s2 = store_->Get(MakeKey(55), &v);
  // Hints no longer match the swapped records, so lookups either trip the
  // AdField MAC (hint collision) or miss and fail the occupancy check... a
  // swap within matching hints always violates the MAC binding.
  EXPECT_TRUE(s1.IsIntegrityViolation() || s2.IsIntegrityViolation() ||
              s1.IsNotFound() || s2.IsNotFound());
  EXPECT_FALSE(s1.ok() && s2.ok());
}

TEST_F(AriaCuckooTest, UnauthorizedDeletionDetected) {
  Build();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), "v").ok());
  }
  uint8_t** cell = store_->DebugSlotCell(MakeKey(42));
  ASSERT_NE(cell, nullptr);
  *cell = nullptr;  // attacker clears the slot
  std::string v;
  EXPECT_TRUE(store_->Get(MakeKey(42), &v).IsIntegrityViolation());
}

TEST_F(AriaCuckooTest, RandomizedAgainstStdMap) {
  Build(1 << 16, /*buckets=*/512);  // 2048 slots, heavy kicking
  Random rng(20202);
  std::map<std::string, std::string> model;
  std::string v;
  for (int step = 0; step < 12000; ++step) {
    uint64_t id = rng.Uniform(1000);
    std::string key = MakeKey(id);
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      std::string value =
          MakeValue(id, 1 + rng.Uniform(64), static_cast<uint32_t>(step));
      Status st = store_->Put(key, value);
      if (st.IsCapacityExceeded()) continue;  // table full is legal here
      ASSERT_TRUE(st.ok()) << step << " " << st.ToString();
      model[key] = value;
    } else if (dice < 0.8) {
      Status st = store_->Get(key, &v);
      auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_TRUE(st.ok()) << step << " " << st.ToString();
        ASSERT_EQ(v, it->second) << step;
      } else {
        ASSERT_TRUE(st.IsNotFound()) << step;
      }
    } else {
      Status st = store_->Delete(key);
      ASSERT_EQ(model.erase(key) > 0, st.ok()) << step;
    }
    ASSERT_EQ(store_->size(), model.size()) << step;
  }
}

TEST_F(AriaCuckooTest, WorksWithTrustedCounterStore) {
  StoreOptions opts;
  opts.scheme = Scheme::kAriaNoCache;
  opts.index = IndexKind::kCuckoo;
  opts.keyspace = 2048;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  EXPECT_EQ(bundle.label, "Aria-C w/o Cache");
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(bundle.store->Put(MakeKey(i), "q").ok());
  }
  std::string v;
  ASSERT_TRUE(bundle.store->Get(MakeKey(123), &v).ok());
  EXPECT_EQ(v, "q");
}

}  // namespace
}  // namespace aria
