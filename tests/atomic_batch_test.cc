// Atomicity + deadlock-freedom battery for multi-key atomic batches
// (DESIGN.md §15), labeled `batch` in CTest and swept per-sanitizer by
// check_sanitizers.sh:
//
//  * semantics unit tests: op-order visibility inside a batch, RMW
//    pre-images with upsert, per-op kNotFound as a non-failure, empty
//    batches, per-shard counter bookkeeping and the
//    batch-atomicity-conservation law
//  * rollback: a fault injected mid-batch (alloc outage on a fresh-key
//    insert) must unwind the applied prefix — plus the NEGATIVE control
//    (TEST_SetBrokenAtomicity) where the torn prefix commits and the
//    atomicity oracle MUST flag it, proving the rollback is load-bearing
//  * deterministic mid-batch choreography: a writer parked between two ops
//    of a batch (kAtomicBatchApply latch) while a MULTIGET waits; the read
//    must block until the batch completes and then see all of it
//  * atomicity torture: N writer threads racing overlapping ATOMIC_RMW
//    batches over one hot keyset against concurrent MULTIGET readers; every
//    read AND every batch's pre-image set must be tag-coherent (all K
//    values from the same batch), in both read modes
//  * deadlock regression: threads submitting batches over the same shard
//    sets in opposite key orders — single-shard fast path, two-shard, and
//    all-shards — under a watchdog; the canonical ascending shard-lock
//    order must make every schedule terminate (TSan covers the lock
//    discipline in the sanitizer run)
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/sharded_store.h"
#include "core/store_factory.h"
#include "obs/invariants.h"
#include "obs/metrics.h"
#include "testing/fault_injector.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

// --- tagged values -----------------------------------------------------------

constexpr size_t kTagValueSize = 32;

// Fixed-size value: 16-digit tag header + tag-derived fill. Any torn mix of
// two tags fails re-derivation, and fixed size keeps Baseline overwrites in
// place (the torn window under test).
std::string TagValue(uint64_t tag) {
  std::string s(kTagValueSize, static_cast<char>('a' + tag % 26));
  char hdr[17];
  std::snprintf(hdr, sizeof(hdr), "%016llu",
                static_cast<unsigned long long>(tag));
  s.replace(0, 16, hdr, 16);
  return s;
}

// Tag encoded in `s`, or UINT64_MAX when `s` is not a value any writer ever
// produced.
uint64_t ParseTagValue(const std::string& s) {
  if (s.size() != kTagValueSize) return UINT64_MAX;
  uint64_t v = 0;
  for (size_t i = 0; i < 16; ++i) {
    if (s[i] < '0' || s[i] > '9') return UINT64_MAX;
    v = v * 10 + static_cast<uint64_t>(s[i] - '0');
  }
  const char fill = static_cast<char>('a' + v % 26);
  for (size_t i = 16; i < s.size(); ++i) {
    if (s[i] != fill) return UINT64_MAX;
  }
  return v;
}

// The atomicity oracle: a snapshot of the hot keyset is coherent iff every
// value parses to the SAME tag. Returns that tag, or UINT64_MAX for a torn
// (mixed or corrupt) snapshot.
uint64_t CoherentTag(const std::vector<std::string>& values) {
  if (values.empty()) return UINT64_MAX;
  uint64_t tag = ParseTagValue(values[0]);
  for (const std::string& v : values) {
    if (ParseTagValue(v) != tag) return UINT64_MAX;
  }
  return tag;
}

TEST(AtomicBatchOracle, FlagsMixedTagSnapshots) {
  // Oracle self-test: coherent sets pass, any mix or torn byte fails.
  EXPECT_EQ(CoherentTag({TagValue(7), TagValue(7), TagValue(7)}), 7u);
  EXPECT_EQ(CoherentTag({TagValue(7), TagValue(8)}), UINT64_MAX);
  std::string torn = TagValue(3).substr(0, kTagValueSize / 2) +
                     TagValue(4).substr(kTagValueSize / 2);
  EXPECT_EQ(CoherentTag({torn}), UINT64_MAX);
}

// --- helpers -----------------------------------------------------------------

StoreOptions ShardedOptions(Scheme scheme, uint32_t shards,
                            ReadMode mode = ReadMode::kLocked) {
  StoreOptions o;
  o.scheme = scheme;
  o.index = IndexKind::kHash;
  o.keyspace = 4096;
  o.num_shards = shards;
  o.read_mode = mode;
  o.seed = 42;
  return o;
}

uint64_t CoreMetric(ShardedStore* store, const char* name) {
  obs::Snapshot total;
  for (uint32_t i = 0; i < store->num_shards(); ++i) {
    total.Accumulate(store->ShardSnapshot(i));
  }
  return total.Get(std::string("core.") + name);
}

// `key` and `value` back the op's slices: both must outlive the
// ExecuteAtomicBatch call (never pass a temporary).
AtomicOp MakeOp(AtomicOp::Kind kind, const std::string& key,
                const std::string& value) {
  AtomicOp op;
  op.kind = kind;
  op.key = Slice(key);
  op.value = Slice(value);
  return op;
}

AtomicOp MakeOp(AtomicOp::Kind kind, const std::string& key) {
  AtomicOp op;
  op.kind = kind;
  op.key = Slice(key);
  return op;
}

// Atomic MULTIGET of `keys`; every status must be OK and the values are
// returned in key order.
std::vector<std::string> AtomicSnapshot(ShardedStore* store,
                                        const std::vector<std::string>& keys) {
  std::vector<AtomicOp> ops;
  ops.reserve(keys.size());
  for (const std::string& k : keys) {
    ops.push_back(MakeOp(AtomicOp::Kind::kGet, k));
  }
  Status st = store->ExecuteAtomicBatch(ops.data(), ops.size());
  std::vector<std::string> values;
  if (!st.ok()) return values;
  for (AtomicOp& op : ops) {
    if (!op.status.ok()) return {};
    values.push_back(std::move(op.result));
  }
  return values;
}

// --- semantics ---------------------------------------------------------------

TEST(AtomicBatch, EmptyBatchIsANoOp) {
  std::unique_ptr<ShardedStore> store;
  ASSERT_TRUE(
      ShardedStore::Create(ShardedOptions(Scheme::kAria, 4), &store).ok());
  EXPECT_TRUE(store->ExecuteAtomicBatch(nullptr, 0).ok());
  EXPECT_EQ(CoreMetric(store.get(), "batch_ops_admitted"), 0u);
  EXPECT_EQ(CoreMetric(store.get(), "batch_shard_touches"), 0u);
}

TEST(AtomicBatch, OpOrderVisibilityAndRmwUpsertSemantics) {
  std::unique_ptr<ShardedStore> store;
  ASSERT_TRUE(
      ShardedStore::Create(ShardedOptions(Scheme::kAria, 4), &store).ok());

  const std::string k1 = MakeKey(1), k2 = MakeKey(2), k3 = MakeKey(3);
  const std::string v1 = TagValue(1), v2 = TagValue(2), v3 = TagValue(3);

  // Put → Get → Rmw → Get → Delete → Get, all on one key inside ONE batch:
  // each op must see its predecessors.
  std::vector<AtomicOp> ops;
  ops.push_back(MakeOp(AtomicOp::Kind::kPut, k1, v1));
  ops.push_back(MakeOp(AtomicOp::Kind::kGet, k1));
  ops.push_back(MakeOp(AtomicOp::Kind::kRmw, k1, v2));
  ops.push_back(MakeOp(AtomicOp::Kind::kGet, k1));
  ops.push_back(MakeOp(AtomicOp::Kind::kDelete, k1));
  ops.push_back(MakeOp(AtomicOp::Kind::kGet, k1));
  // Rmw on a never-written key: kNotFound pre-image, write still applies.
  ops.push_back(MakeOp(AtomicOp::Kind::kRmw, k2, v3));
  ops.push_back(MakeOp(AtomicOp::Kind::kGet, k2));
  // Delete of an absent key: per-op kNotFound, NOT a batch failure.
  ops.push_back(MakeOp(AtomicOp::Kind::kDelete, k3));

  ASSERT_TRUE(store->ExecuteAtomicBatch(ops.data(), ops.size()).ok());
  EXPECT_TRUE(ops[0].status.ok());
  ASSERT_TRUE(ops[1].status.ok());
  EXPECT_EQ(ops[1].result, v1);
  ASSERT_TRUE(ops[2].status.ok());
  EXPECT_EQ(ops[2].result, v1);  // Rmw pre-image
  ASSERT_TRUE(ops[3].status.ok());
  EXPECT_EQ(ops[3].result, v2);
  EXPECT_TRUE(ops[4].status.ok());
  EXPECT_TRUE(ops[5].status.IsNotFound());
  EXPECT_TRUE(ops[6].status.IsNotFound());  // upsert pre-image of absent key
  ASSERT_TRUE(ops[7].status.ok());
  EXPECT_EQ(ops[7].result, v3);  // ...but the write applied
  EXPECT_TRUE(ops[8].status.IsNotFound());

  // Post-batch state matches: k1 deleted, k2 written.
  std::string value;
  EXPECT_TRUE(store->Get(k1, &value).IsNotFound());
  ASSERT_TRUE(store->Get(k2, &value).ok());
  EXPECT_EQ(value, v3);

  // Bookkeeping: every op admitted and applied, one MT pass per mutated
  // shard, and the conservation law balances.
  EXPECT_EQ(CoreMetric(store.get(), "batch_ops_admitted"), ops.size());
  EXPECT_EQ(CoreMetric(store.get(), "batch_ops_applied"), ops.size());
  EXPECT_EQ(CoreMetric(store.get(), "batch_ops_rolled_back"), 0u);
  EXPECT_LE(CoreMetric(store.get(), "batch_mt_update_passes"),
            CoreMetric(store.get(), "batch_shard_touches"));
  obs::InvariantReport inv = store->CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

TEST(AtomicBatch, ReadOnlyBatchCostsNoMtUpdatePass) {
  std::unique_ptr<ShardedStore> store;
  ASSERT_TRUE(
      ShardedStore::Create(ShardedOptions(Scheme::kAria, 4), &store).ok());
  std::vector<std::string> keys;
  for (uint64_t id = 0; id < 16; ++id) {
    keys.push_back(MakeKey(id));
    ASSERT_TRUE(store->Put(keys.back(), TagValue(id)).ok());
  }
  std::vector<std::string> values = AtomicSnapshot(store.get(), keys);
  ASSERT_EQ(values.size(), keys.size());
  for (uint64_t id = 0; id < 16; ++id) EXPECT_EQ(values[id], TagValue(id));

  EXPECT_EQ(CoreMetric(store.get(), "batch_ops_admitted"), 16u);
  EXPECT_EQ(CoreMetric(store.get(), "batch_mt_update_passes"), 0u);
  EXPECT_GT(CoreMetric(store.get(), "batch_shard_touches"), 0u);
  obs::InvariantReport inv = store->CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

TEST(AtomicBatch, SharedReadsServesPureReadBatchesUnderSharedLocks) {
  // The one config with genuinely const reads: a pure-read batch takes
  // shared locks (no seqlock bracket, no MT pass) and must still return a
  // coherent snapshot.
  StoreOptions o = ShardedOptions(Scheme::kBaseline, 2);
  o.cost_model.enabled = false;
  o.shard_shared_reads = true;
  std::unique_ptr<ShardedStore> store;
  ASSERT_TRUE(ShardedStore::Create(o, &store).ok());

  std::vector<std::string> keys;
  for (uint64_t id = 0; id < 8; ++id) {
    keys.push_back(MakeKey(id));
    ASSERT_TRUE(store->Put(keys.back(), TagValue(5)).ok());
  }
  std::vector<std::string> values = AtomicSnapshot(store.get(), keys);
  ASSERT_EQ(values.size(), keys.size());
  EXPECT_EQ(CoherentTag(values), 5u);
  EXPECT_EQ(CoreMetric(store.get(), "batch_mt_update_passes"), 0u);

  // A writing batch on the same store takes the exclusive path as usual.
  std::string six = TagValue(6);  // named: must outlive the batch call
  std::vector<AtomicOp> w;
  for (const std::string& k : keys) {
    w.push_back(MakeOp(AtomicOp::Kind::kRmw, k, six));
  }
  ASSERT_TRUE(store->ExecuteAtomicBatch(w.data(), w.size()).ok());
  for (AtomicOp& op : w) {
    ASSERT_TRUE(op.status.ok());
    EXPECT_EQ(ParseTagValue(op.result), 5u);
  }
  obs::InvariantReport inv = store->CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

// --- rollback + negative control ---------------------------------------------

// Shared setup: key A exists (32B value), key C is fresh. The batch is
// [Rmw A → new, Put C (fresh insert)] with every untrusted allocation
// failing, so the batch deterministically dies on C's insert AFTER A's
// overwrite applied.
struct RollbackRig {
  std::unique_ptr<ShardedStore> store;
  std::string key_a, key_c;
  std::string old_a = TagValue(10), new_a = TagValue(11), val_c = TagValue(12);

  void Init() {
    ASSERT_TRUE(
        ShardedStore::Create(ShardedOptions(Scheme::kAria, 4), &store).ok());
    key_a = MakeKey(1);
    key_c = MakeKey(100001);
    ASSERT_TRUE(store->Put(key_a, old_a).ok());
  }

  Status RunFaultedBatch(std::vector<AtomicOp>* ops) {
    ops->clear();
    ops->push_back(MakeOp(AtomicOp::Kind::kRmw, key_a, new_a));
    ops->push_back(MakeOp(AtomicOp::Kind::kPut, key_c, val_c));
    aria::testing::ScheduledInjector injector(/*seed=*/7);
    aria::testing::InjectorScope scope(&injector);
    injector.Arm({.site = fault::Site::kUntrustedAlloc,
                  .kind = aria::testing::FaultKind::kFailAlloc,
                  .repeat = true});
    return store->ExecuteAtomicBatch(ops->data(), ops->size());
  }
};

TEST(AtomicBatch, MidBatchFaultRollsBackTheAppliedPrefix) {
  RollbackRig rig;
  rig.Init();
  std::vector<AtomicOp> ops;
  Status st = rig.RunFaultedBatch(&ops);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCapacityExceeded()) << st.ToString();

  // All-or-nothing: A's applied overwrite was unwound, C never became
  // visible, and the ops that did not cause the failure say "aborted".
  std::string value;
  ASSERT_TRUE(rig.store->Get(rig.key_a, &value).ok());
  EXPECT_EQ(value, rig.old_a);
  EXPECT_TRUE(rig.store->Get(rig.key_c, &value).IsNotFound());
  EXPECT_TRUE(ops[0].status.IsInternal()) << ops[0].status.ToString();
  EXPECT_TRUE(ops[1].status.IsCapacityExceeded()) << ops[1].status.ToString();

  // Conservation: both ops admitted and rolled back, none applied.
  EXPECT_EQ(CoreMetric(rig.store.get(), "batch_ops_admitted"), 2u);
  EXPECT_EQ(CoreMetric(rig.store.get(), "batch_ops_rolled_back"), 2u);
  EXPECT_EQ(CoreMetric(rig.store.get(), "batch_ops_applied"), 0u);
  obs::InvariantReport inv = rig.store->CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();

  // The store still serves: the same batch succeeds once the outage ends.
  std::vector<AtomicOp> retry;
  retry.push_back(MakeOp(AtomicOp::Kind::kRmw, rig.key_a, rig.new_a));
  retry.push_back(MakeOp(AtomicOp::Kind::kPut, rig.key_c, rig.val_c));
  ASSERT_TRUE(
      rig.store->ExecuteAtomicBatch(retry.data(), retry.size()).ok());
  EXPECT_EQ(retry[0].result, rig.old_a);
  ASSERT_TRUE(rig.store->Get(rig.key_c, &value).ok());
  EXPECT_EQ(value, rig.val_c);
}

TEST(AtomicBatch, BrokenRollbackCommitsATornPrefixTheOracleFlags) {
  // NEGATIVE CONTROL. Same fault, rollback disabled: the applied prefix
  // stays committed, so A carries the new tag while C is absent — exactly
  // the half-batch state the atomicity oracle must flag. This is the proof
  // that the rollback (not luck) is what makes the positive tests pass.
  RollbackRig rig;
  rig.Init();
  rig.store->TEST_SetBrokenAtomicity(true);
  std::vector<AtomicOp> ops;
  Status st = rig.RunFaultedBatch(&ops);
  rig.store->TEST_SetBrokenAtomicity(false);
  ASSERT_FALSE(st.ok());

  std::string value;
  ASSERT_TRUE(rig.store->Get(rig.key_a, &value).ok());
  EXPECT_EQ(value, rig.new_a) << "broken rollback must leave the torn prefix";
  EXPECT_TRUE(rig.store->Get(rig.key_c, &value).IsNotFound());

  // The torn state is observable through the oracle: A moved to tag 11
  // without the batch committing — a snapshot mixing pre- and post-batch
  // keys no coherent history can produce.
  std::vector<std::string> snapshot(2);
  ASSERT_TRUE(rig.store->Get(rig.key_a, &snapshot[0]).ok());
  snapshot[1] = rig.old_a;  // what C's cohort still answers pre-batch
  EXPECT_EQ(CoherentTag(snapshot), UINT64_MAX)
      << "the oracle failed to flag a half-committed batch";

  // Even the broken control keeps its books: admitted == applied +
  // rolled_back stays balanced (the accounting is not what was broken).
  EXPECT_EQ(CoreMetric(rig.store.get(), "batch_ops_admitted"),
            CoreMetric(rig.store.get(), "batch_ops_applied") +
                CoreMetric(rig.store.get(), "batch_ops_rolled_back"));
}

// --- deterministic mid-batch choreography ------------------------------------

// Test-side stall latch (same shape as the torn-read battery's): parks a
// thread at an armed stall point until released.
class StallLatch : public fault::StallHook {
 public:
  void Arm(fault::StallPoint p) {
    std::lock_guard<std::mutex> l(mu_);
    armed_[Idx(p)] = true;
  }
  void OnStall(fault::StallPoint p) override {
    std::unique_lock<std::mutex> l(mu_);
    if (!armed_[Idx(p)]) return;  // one-shot
    armed_[Idx(p)] = false;
    parked_[Idx(p)] = true;
    cv_.notify_all();
    cv_.wait(l, [&] { return released_[Idx(p)]; });
    released_[Idx(p)] = false;
    parked_[Idx(p)] = false;
  }
  void WaitUntilParked(fault::StallPoint p) {
    std::unique_lock<std::mutex> l(mu_);
    cv_.wait(l, [&] { return parked_[Idx(p)]; });
  }
  void Release(fault::StallPoint p) {
    std::lock_guard<std::mutex> l(mu_);
    released_[Idx(p)] = true;
    cv_.notify_all();
  }

 private:
  static size_t Idx(fault::StallPoint p) { return static_cast<size_t>(p); }
  static constexpr size_t kN =
      static_cast<size_t>(fault::StallPoint::kNumStallPoints);

  std::mutex mu_;
  std::condition_variable cv_;
  bool armed_[kN] = {};
  bool parked_[kN] = {};
  bool released_[kN] = {};
};

class StallScope {
 public:
  explicit StallScope(StallLatch* latch) { fault::SetStall(latch); }
  ~StallScope() { fault::SetStall(nullptr); }
};

TEST(AtomicBatch, ReaderBlocksAcrossAParkedBatchAndSeesAllOfIt) {
  // Writer parked BETWEEN the two ops of its batch — the exact window a
  // torn MULTIGET would observe if the locks were per-op instead of
  // per-batch. The concurrent MULTIGET must instead block until the batch
  // completes and then see both writes.
  std::unique_ptr<ShardedStore> store;
  ASSERT_TRUE(
      ShardedStore::Create(ShardedOptions(Scheme::kBaseline, 4), &store).ok());
  std::vector<std::string> keys = {MakeKey(1), MakeKey(2)};
  for (const std::string& k : keys) ASSERT_TRUE(store->Put(k, TagValue(1)).ok());

  StallLatch latch;
  StallScope scope(&latch);
  latch.Arm(fault::StallPoint::kAtomicBatchApply);

  Status writer_status;
  std::thread writer([&]() {
    std::string value = TagValue(2);
    std::vector<AtomicOp> ops;
    for (const std::string& k : keys) {
      ops.push_back(MakeOp(AtomicOp::Kind::kRmw, k, value));
    }
    writer_status = store->ExecuteAtomicBatch(ops.data(), ops.size());
  });
  latch.WaitUntilParked(fault::StallPoint::kAtomicBatchApply);

  // The writer holds every involved shard lock with op 0 applied and op 1
  // pending. A MULTIGET of the same keys must not complete in this window.
  std::atomic<bool> reader_done{false};
  std::vector<std::string> snapshot;
  std::thread reader([&]() {
    snapshot = AtomicSnapshot(store.get(), keys);
    reader_done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(reader_done.load(std::memory_order_acquire))
      << "MULTIGET completed against a half-applied batch";

  latch.Release(fault::StallPoint::kAtomicBatchApply);
  writer.join();
  reader.join();
  ASSERT_TRUE(writer_status.ok()) << writer_status.ToString();
  ASSERT_EQ(snapshot.size(), keys.size());
  EXPECT_EQ(CoherentTag(snapshot), 2u)
      << "reader released after the batch must see all of it";
}

// --- atomicity torture -------------------------------------------------------

void RunAtomicityTorture(const StoreOptions& opts, const char* label) {
  std::unique_ptr<ShardedStore> store;
  ASSERT_TRUE(ShardedStore::Create(opts, &store).ok()) << label;

  constexpr int kHotKeys = 8;
  constexpr int kWriters = 4;
  constexpr int kRounds = 200;
  constexpr int kReaders = 2;

  std::vector<std::string> keys;
  for (uint64_t id = 0; id < kHotKeys; ++id) keys.push_back(MakeKey(id));
  {
    // Tag 0 everywhere: the initial state is itself a coherent snapshot.
    std::string zero = TagValue(0);
    std::vector<AtomicOp> init;
    for (const std::string& k : keys) {
      init.push_back(MakeOp(AtomicOp::Kind::kPut, k, zero));
    }
    ASSERT_TRUE(store->ExecuteAtomicBatch(init.data(), init.size()).ok())
        << label;
  }

  // Writers: each round ATOMIC_RMWs a unique tag onto ALL hot keys. The
  // returned pre-images are an atomic snapshot of the displaced state, so
  // they must be tag-coherent — every batch doubles as a reader.
  std::atomic<bool> done{false};
  std::atomic<int> torn_batches{0};
  std::vector<Status> writer_status(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w]() {
      for (int round = 0; round < kRounds; ++round) {
        const uint64_t tag = 1 + static_cast<uint64_t>(w) * kRounds + round;
        std::string value = TagValue(tag);
        std::vector<AtomicOp> ops;
        for (const std::string& k : keys) {
          ops.push_back(MakeOp(AtomicOp::Kind::kRmw, k, value));
        }
        Status st = store->ExecuteAtomicBatch(ops.data(), ops.size());
        if (!st.ok()) {
          writer_status[w] = st;
          return;
        }
        std::vector<std::string> pre;
        for (AtomicOp& op : ops) {
          if (!op.status.ok()) {
            writer_status[w] = op.status;
            return;
          }
          pre.push_back(std::move(op.result));
        }
        if (CoherentTag(pre) == UINT64_MAX) torn_batches.fetch_add(1);
      }
    });
  }

  // Readers: MULTIGET snapshots of the full keyset until the writers stop.
  std::vector<uint64_t> reads_done(kReaders, 0);
  std::atomic<int> torn_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      do {
        std::vector<std::string> snapshot = AtomicSnapshot(store.get(), keys);
        if (snapshot.size() != keys.size() ||
            CoherentTag(snapshot) == UINT64_MAX) {
          torn_reads.fetch_add(1);
        }
        reads_done[t]++;
      } while (!done.load(std::memory_order_acquire));
    });
  }
  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  for (int w = 0; w < kWriters; ++w) {
    ASSERT_TRUE(writer_status[w].ok())
        << label << " writer " << w << ": " << writer_status[w].ToString();
  }
  EXPECT_EQ(torn_batches.load(), 0)
      << label << ": ATOMIC_RMW returned a mixed pre-image snapshot";
  EXPECT_EQ(torn_reads.load(), 0)
      << label << ": MULTIGET observed a half-applied batch";
  for (int t = 0; t < kReaders; ++t) EXPECT_GT(reads_done[t], 0u) << label;

  // Books: every admitted op applied (no faults were injected), MT passes
  // bounded by shard touches, and the full cross-layer audit balances.
  EXPECT_EQ(CoreMetric(store.get(), "batch_ops_admitted"),
            CoreMetric(store.get(), "batch_ops_applied"));
  EXPECT_EQ(CoreMetric(store.get(), "batch_ops_rolled_back"), 0u);
  EXPECT_LE(CoreMetric(store.get(), "batch_mt_update_passes"),
            CoreMetric(store.get(), "batch_shard_touches"));
  obs::InvariantReport inv = store->CheckInvariants();
  EXPECT_TRUE(inv.ok()) << label << ": " << inv.ToString();
}

TEST(AtomicBatchTorture, LockedReadsNeverObserveAHalfBatch) {
  RunAtomicityTorture(ShardedOptions(Scheme::kBaseline, 4), "Baseline locked");
}

TEST(AtomicBatchTorture, OptimisticReadsNeverObserveAHalfBatch) {
  // Optimistic mode adds the seqlock/epoch machinery to the same schedule:
  // lock-free point GETs race the batch windows (odd seq → fallback), and
  // rollbackless reclamation churn runs under ASan in the sanitizer sweep.
  RunAtomicityTorture(
      ShardedOptions(Scheme::kBaseline, 4, ReadMode::kOptimistic),
      "Baseline optimistic");
}

TEST(AtomicBatchTorture, AriaSecureCacheSurvivesTheSameSchedule) {
  // Aria proper: every batch's single flush pass drives the Secure Cache /
  // Merkle path under contention.
  StoreOptions o = ShardedOptions(Scheme::kAria, 4);
  o.cache_bytes = 32768;
  o.pinned_levels = 0;
  o.stop_swap_enabled = false;
  RunAtomicityTorture(o, "Aria locked");
}

// --- deadlock regression -----------------------------------------------------

// Threads hammer atomic batches over IDENTICAL key sets in OPPOSITE key
// orders — the classic deadlock schedule if locks were taken in client key
// order. The canonical ascending shard-index acquisition must make every
// schedule terminate; a watchdog turns a deadlock into a loud failure
// instead of a hung test (and TSan checks the lock discipline itself in the
// sanitizer run).
TEST(AtomicBatchDeadlock, OppositeKeyOrdersTerminate) {
  constexpr uint32_t kShards = 4;
  std::unique_ptr<ShardedStore> store;
  ASSERT_TRUE(
      ShardedStore::Create(ShardedOptions(Scheme::kBaseline, kShards), &store)
          .ok());

  // One key per shard (all-shards batches), two keys in one shard (the
  // single-shard fast path), and a two-shard pair.
  std::vector<std::string> shard_key(kShards);
  std::string second_in_shard0;
  for (uint64_t id = 0; id < 4096; ++id) {
    std::string key = MakeKey(id);
    uint32_t s = store->ShardOf(key);
    if (shard_key[s].empty()) {
      shard_key[s] = key;
    } else if (s == store->ShardOf(shard_key[0]) && second_in_shard0.empty() &&
               key != shard_key[s]) {
      second_in_shard0 = key;
    }
  }
  for (uint32_t s = 0; s < kShards; ++s) ASSERT_FALSE(shard_key[s].empty());
  ASSERT_FALSE(second_in_shard0.empty());

  std::vector<std::vector<std::string>> keysets = {
      shard_key,                                      // all shards
      {shard_key[0], second_in_shard0},               // single shard
      {shard_key[1], shard_key[2]},                   // two shards
  };
  for (auto& ks : keysets) {
    for (const std::string& k : ks) ASSERT_TRUE(store->Put(k, TagValue(0)).ok());
  }

  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::atomic<int> finished{0};
  std::vector<Status> status(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      for (int i = 0; i < kIters; ++i) {
        std::vector<std::string> keys = keysets[i % keysets.size()];
        // Odd threads submit every keyset reversed: the same shard sets in
        // opposite client orders, every iteration.
        if (t % 2 == 1) std::reverse(keys.begin(), keys.end());
        std::vector<AtomicOp> ops;
        std::string value = TagValue(static_cast<uint64_t>(t) * kIters + i);
        for (const std::string& k : keys) {
          ops.push_back(MakeOp(AtomicOp::Kind::kRmw, k, value));
        }
        Status st = store->ExecuteAtomicBatch(ops.data(), ops.size());
        if (!st.ok()) {
          status[t] = st;
          break;
        }
      }
      finished.fetch_add(1);
    });
  }

  // Watchdog: a deadlock shows up as threads never finishing. 120s is two
  // orders of magnitude beyond the contended runtime of this schedule.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (finished.load() < kThreads &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (finished.load() < kThreads) {
    // Joining deadlocked threads would hang the harness forever; abort
    // loudly instead so CI reports the failure.
    fprintf(stderr, "FATAL: atomic-batch deadlock watchdog expired\n");
    fflush(stderr);
    abort();
  }
  for (auto& th : pool) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(status[t].ok()) << t << ": " << status[t].ToString();
  }

  // Every key ends on SOME writer's intact tag. (Whole-keyset coherence is
  // not expected here — the keysets deliberately share keys, so the final
  // state legally mixes tags across keysets; never within one value.)
  for (auto& ks : keysets) {
    std::vector<std::string> snapshot = AtomicSnapshot(store.get(), ks);
    ASSERT_EQ(snapshot.size(), ks.size());
    for (const std::string& v : snapshot) {
      EXPECT_NE(ParseTagValue(v), UINT64_MAX) << "torn value bytes";
    }
  }
  obs::InvariantReport inv = store->CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

}  // namespace
}  // namespace aria
