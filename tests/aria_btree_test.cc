// Tests for Aria-T: ordered semantics, splits/merges/borrows, range scans,
// full-integrity audit, and a randomized reference test against std::map.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/aria_btree.h"
#include "core/store_factory.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

class AriaBTreeTest : public ::testing::Test {
 protected:
  void Build(uint64_t keyspace = 4096) {
    StoreOptions opts;
    opts.scheme = Scheme::kAria;
    opts.index = IndexKind::kBTree;
    opts.keyspace = keyspace;
    opts.cache_bytes = 1 << 20;
    ASSERT_TRUE(CreateStore(opts, &bundle_).ok());
    store_ = bundle_.store.get();
    tree_ = static_cast<AriaBTree*>(store_);
  }

  StoreBundle bundle_;
  KVStore* store_ = nullptr;
  AriaBTree* tree_ = nullptr;
};

TEST_F(AriaBTreeTest, PutGetSingle) {
  Build();
  ASSERT_TRUE(store_->Put("k", "v").ok());
  std::string v;
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, "v");
  EXPECT_EQ(tree_->height(), 1);
}

TEST_F(AriaBTreeTest, MissingIsNotFound) {
  Build();
  std::string v;
  EXPECT_TRUE(store_->Get("nope", &v).IsNotFound());
  ASSERT_TRUE(store_->Put("a", "1").ok());
  EXPECT_TRUE(store_->Get("b", &v).IsNotFound());
}

TEST_F(AriaBTreeTest, SplitsGrowHeight) {
  Build();
  // 15 keys fill the root; the 16th forces a split.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), "v").ok());
  }
  EXPECT_EQ(tree_->height(), 2);
  EXPECT_GE(tree_->stats().splits, 1u);
  std::string v;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(store_->Get(MakeKey(i), &v).ok()) << i;
  }
  ASSERT_TRUE(tree_->VerifyFullIntegrity().ok());
}

TEST_F(AriaBTreeTest, SequentialInsertAscending) {
  Build();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), MakeValue(i, 20)).ok()) << i;
  }
  std::string v;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store_->Get(MakeKey(i), &v).ok()) << i;
    ASSERT_EQ(v, MakeValue(i, 20));
  }
  ASSERT_TRUE(tree_->VerifyFullIntegrity().ok());
  EXPECT_GE(tree_->height(), 3);
}

TEST_F(AriaBTreeTest, SequentialInsertDescending) {
  Build();
  for (int i = 499; i >= 0; --i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), "d").ok()) << i;
  }
  std::string v;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store_->Get(MakeKey(i), &v).ok()) << i;
  }
  ASSERT_TRUE(tree_->VerifyFullIntegrity().ok());
}

TEST_F(AriaBTreeTest, OverwriteKeepsSize) {
  Build();
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(store_->Put(MakeKey(i), "1").ok());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(store_->Put(MakeKey(i), "22").ok());
  EXPECT_EQ(store_->size(), 100u);
  std::string v;
  ASSERT_TRUE(store_->Get(MakeKey(50), &v).ok());
  EXPECT_EQ(v, "22");
}

TEST_F(AriaBTreeTest, OverwriteGrowingValue) {
  Build();
  ASSERT_TRUE(store_->Put("k", "s").ok());
  std::string big(700, 'Q');
  ASSERT_TRUE(store_->Put("k", big).ok());
  std::string v;
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, big);
}

TEST_F(AriaBTreeTest, DeleteFromLeaf) {
  Build();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(store_->Put(MakeKey(i), "v").ok());
  ASSERT_TRUE(store_->Delete(MakeKey(5)).ok());
  std::string v;
  EXPECT_TRUE(store_->Get(MakeKey(5), &v).IsNotFound());
  EXPECT_EQ(store_->size(), 9u);
  ASSERT_TRUE(tree_->VerifyFullIntegrity().ok());
}

TEST_F(AriaBTreeTest, DeleteInnerKeysWithRebalancing) {
  Build();
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), MakeValue(i, 16)).ok());
  }
  // Delete every third key — exercises predecessor/successor replacement,
  // borrows and merges.
  for (int i = 0; i < n; i += 3) {
    ASSERT_TRUE(store_->Delete(MakeKey(i)).ok()) << i;
  }
  std::string v;
  for (int i = 0; i < n; ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(store_->Get(MakeKey(i), &v).IsNotFound()) << i;
    } else {
      ASSERT_TRUE(store_->Get(MakeKey(i), &v).ok()) << i;
    }
  }
  ASSERT_TRUE(tree_->VerifyFullIntegrity().ok());
}

TEST_F(AriaBTreeTest, DeleteEverythingShrinksTree) {
  Build();
  const int n = 200;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(store_->Put(MakeKey(i), "v").ok());
  Random rng(3);
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  for (int i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.Uniform(i + 1)]);
  }
  for (int i : order) {
    ASSERT_TRUE(store_->Delete(MakeKey(i)).ok()) << i;
  }
  EXPECT_EQ(store_->size(), 0u);
  ASSERT_TRUE(tree_->VerifyFullIntegrity().ok());
  std::string v;
  EXPECT_TRUE(store_->Get(MakeKey(0), &v).IsNotFound());
}

TEST_F(AriaBTreeTest, RangeScanOrdered) {
  Build();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i * 2), MakeValue(i * 2, 8)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->RangeScan(MakeKey(50), 10, &out).ok());
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out[0].first, MakeKey(50));
  for (size_t i = 0; i + 1 < out.size(); ++i) {
    EXPECT_LT(out[i].first, out[i + 1].first);
  }
  EXPECT_EQ(out[9].first, MakeKey(68));
}

TEST_F(AriaBTreeTest, RangeScanFromNonExistentStart) {
  Build();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i * 10), "v").ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->RangeScan(MakeKey(25), 3, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, MakeKey(30));
}

TEST_F(AriaBTreeTest, RangeScanPastEnd) {
  Build();
  ASSERT_TRUE(store_->Put(MakeKey(1), "v").ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->RangeScan(MakeKey(500), 10, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(AriaBTreeTest, RandomizedAgainstStdMap) {
  Build(1 << 16);
  Random rng(4242);
  std::map<std::string, std::string> model;
  std::string v;
  for (int step = 0; step < 8000; ++step) {
    uint64_t id = rng.Uniform(400);
    std::string key = MakeKey(id);
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      std::string value =
          MakeValue(id, 1 + rng.Uniform(100), static_cast<uint32_t>(step));
      ASSERT_TRUE(store_->Put(key, value).ok()) << step;
      model[key] = value;
    } else if (dice < 0.8) {
      Status st = store_->Get(key, &v);
      auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_TRUE(st.ok()) << step << " " << st.ToString();
        ASSERT_EQ(v, it->second) << step;
      } else {
        ASSERT_TRUE(st.IsNotFound()) << step;
      }
    } else {
      Status st = store_->Delete(key);
      if (model.erase(key) > 0) {
        ASSERT_TRUE(st.ok()) << step << " " << st.ToString();
      } else {
        ASSERT_TRUE(st.IsNotFound()) << step;
      }
    }
    ASSERT_EQ(store_->size(), model.size()) << step;
  }
  ASSERT_TRUE(tree_->VerifyFullIntegrity().ok());
  // Final sweep: every model entry still matches.
  for (auto& [k, val] : model) {
    ASSERT_TRUE(store_->Get(k, &v).ok());
    ASSERT_EQ(v, val);
  }
  // Full ordered scan matches the model.
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->RangeScan("", model.size() + 10, &out).ok());
  ASSERT_EQ(out.size(), model.size());
  auto it = model.begin();
  for (size_t i = 0; i < out.size(); ++i, ++it) {
    EXPECT_EQ(out[i].first, it->first);
    EXPECT_EQ(out[i].second, it->second);
  }
}

TEST_F(AriaBTreeTest, WorksWithTrustedCounterStore) {
  StoreOptions opts;
  opts.scheme = Scheme::kAriaNoCache;
  opts.index = IndexKind::kBTree;
  opts.keyspace = 1024;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(bundle.store->Put(MakeKey(i), "x").ok());
  }
  std::string v;
  ASSERT_TRUE(bundle.store->Get(MakeKey(33), &v).ok());
  EXPECT_EQ(v, "x");
}

}  // namespace
}  // namespace aria
