// Tests for Secure Cache: hit/miss behavior, FIFO vs LRU eviction, dirty
// propagation through evictions, level pinning, stop-swap, tamper
// detection, and a randomized shadow-model property test.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "alloc/heap_allocator.h"
#include "cache/secure_cache.h"
#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/cmac.h"
#include "crypto/secure_random.h"
#include "mt/flat_merkle_tree.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {
namespace {

class SecureCacheTest : public ::testing::Test {
 protected:
  SecureCacheTest()
      : enclave_(64ull * 1024 * 1024),
        alloc_(&enclave_),
        rng_(321),
        aes_(Key()),
        cmac_(aes_) {}

  static const uint8_t* Key() {
    static uint8_t key[16] = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
    return key;
  }

  // Tree: 4096 counters, arity 8 -> L0=512, L1=64, L2=8, L3=1 (node 128 B).
  void Build(SecureCacheConfig config, uint64_t counters = 4096,
             size_t arity = 8) {
    tree_ = std::make_unique<FlatMerkleTree>(&enclave_, &alloc_, &cmac_,
                                             counters, arity);
    ASSERT_TRUE(tree_->Init(&rng_).ok());
    cache_ = std::make_unique<SecureCache>(&enclave_, tree_.get(), &cmac_,
                                           config);
    ASSERT_TRUE(cache_->Attach().ok());
  }

  // Counter value as a little-endian low-64 view (suffices for equality).
  uint64_t Low64(const uint8_t ctr[16]) {
    uint64_t v;
    std::memcpy(&v, ctr, 8);
    return v;
  }

  sgx::EnclaveRuntime enclave_;
  HeapAllocator alloc_;
  crypto::SecureRandom rng_;
  crypto::Aes128 aes_;
  crypto::Cmac128 cmac_;
  std::unique_ptr<FlatMerkleTree> tree_;
  std::unique_ptr<SecureCache> cache_;
};

SecureCacheConfig SmallConfig(uint64_t slots = 16) {
  SecureCacheConfig cfg;
  // node_size = 128 for arity 8, plus 24 B of per-slot metadata.
  cfg.capacity_bytes = slots * (128 + 24);
  cfg.pinned_levels = 0;
  cfg.stop_swap_enabled = false;
  return cfg;
}

TEST_F(SecureCacheTest, ReadMatchesUntrustedCounter) {
  Build(SmallConfig());
  for (uint64_t c : {0ull, 1ull, 7ull, 8ull, 4095ull}) {
    uint8_t got[16];
    ASSERT_TRUE(cache_->ReadCounter(c, got).ok());
    EXPECT_EQ(0, std::memcmp(got, tree_->CounterPtr(c), 16)) << c;
  }
}

TEST_F(SecureCacheTest, SecondReadIsAHit) {
  Build(SmallConfig());
  uint8_t ctr[16];
  ASSERT_TRUE(cache_->ReadCounter(100, ctr).ok());
  EXPECT_EQ(cache_->stats().misses, 1u);
  EXPECT_EQ(cache_->stats().hits, 0u);
  ASSERT_TRUE(cache_->ReadCounter(100, ctr).ok());
  EXPECT_EQ(cache_->stats().hits, 1u);
  // Counters in the same leaf also hit.
  ASSERT_TRUE(cache_->ReadCounter(101, ctr).ok());
  EXPECT_EQ(cache_->stats().hits, 2u);
}

TEST_F(SecureCacheTest, BumpIncrementsAndPersists) {
  Build(SmallConfig());
  uint8_t before[16], after[16], read_back[16];
  ASSERT_TRUE(cache_->ReadCounter(5, before).ok());
  ASSERT_TRUE(cache_->BumpCounter(5, after).ok());
  EXPECT_NE(0, std::memcmp(before, after, 16));
  ASSERT_TRUE(cache_->ReadCounter(5, read_back).ok());
  EXPECT_EQ(0, std::memcmp(after, read_back, 16));
}

TEST_F(SecureCacheTest, BumpIs128BitIncrement) {
  Build(SmallConfig());
  uint8_t a[16], b[16];
  ASSERT_TRUE(cache_->ReadCounter(9, a).ok());
  ASSERT_TRUE(cache_->BumpCounter(9, b).ok());
  // b = a + 1 (128-bit little-endian).
  unsigned carry = 1;
  for (int i = 0; i < 16; ++i) {
    unsigned v = static_cast<unsigned>(a[i]) + carry;
    a[i] = static_cast<uint8_t>(v);
    carry = v >> 8;
  }
  EXPECT_EQ(0, std::memcmp(a, b, 16));
}

TEST_F(SecureCacheTest, FifoEvictsInsertionOrder) {
  auto cfg = SmallConfig(4);
  cfg.policy = CachePolicy::kFifo;
  Build(cfg);
  ASSERT_EQ(cache_->num_slots(), 4u);
  uint8_t ctr[16];
  // Fill 4 slots with leaves 0..3 (counters 0, 8, 16, 24).
  for (uint64_t leaf = 0; leaf < 4; ++leaf) {
    ASSERT_TRUE(cache_->ReadCounter(leaf * 8, ctr).ok());
  }
  // Hit leaf 0 — FIFO ignores hits.
  ASSERT_TRUE(cache_->ReadCounter(0, ctr).ok());
  // Insert a 5th leaf: FIFO must evict leaf 0 (oldest insertion).
  ASSERT_TRUE(cache_->ReadCounter(4 * 8, ctr).ok());
  EXPECT_FALSE(cache_->IsCached(MtNodeId{0, 0}));
  EXPECT_TRUE(cache_->IsCached(MtNodeId{0, 1}));
}

TEST_F(SecureCacheTest, LruKeepsRecentlyUsed) {
  auto cfg = SmallConfig(4);
  cfg.policy = CachePolicy::kLru;
  Build(cfg);
  uint8_t ctr[16];
  for (uint64_t leaf = 0; leaf < 4; ++leaf) {
    ASSERT_TRUE(cache_->ReadCounter(leaf * 8, ctr).ok());
  }
  ASSERT_TRUE(cache_->ReadCounter(0, ctr).ok());  // leaf 0 now MRU
  ASSERT_TRUE(cache_->ReadCounter(4 * 8, ctr).ok());
  EXPECT_TRUE(cache_->IsCached(MtNodeId{0, 0}));   // protected by the hit
  EXPECT_FALSE(cache_->IsCached(MtNodeId{0, 1}));  // LRU victim
}

TEST_F(SecureCacheTest, CleanEvictionAvoidsWriteback) {
  auto cfg = SmallConfig(4);
  Build(cfg);
  uint8_t ctr[16];
  for (uint64_t leaf = 0; leaf < 5; ++leaf) {
    ASSERT_TRUE(cache_->ReadCounter(leaf * 8, ctr).ok());
  }
  EXPECT_GE(cache_->stats().clean_discards, 1u);
  EXPECT_EQ(cache_->stats().dirty_writebacks, 0u);
}

TEST_F(SecureCacheTest, DirtyEvictionPropagatesAndSurvives) {
  auto cfg = SmallConfig(4);
  Build(cfg);
  uint8_t bumped[16], ctr[16];
  ASSERT_TRUE(cache_->BumpCounter(0, bumped).ok());
  // Churn the cache until leaf 0 is evicted (dirty).
  for (uint64_t leaf = 1; leaf <= 8; ++leaf) {
    ASSERT_TRUE(cache_->ReadCounter(leaf * 8, ctr).ok());
  }
  EXPECT_FALSE(cache_->IsCached(MtNodeId{0, 0}));
  EXPECT_GE(cache_->stats().dirty_writebacks, 1u);
  // Reading it back re-verifies the whole chain: the propagated MACs must
  // be consistent and the bumped value visible.
  ASSERT_TRUE(cache_->ReadCounter(0, ctr).ok());
  EXPECT_EQ(0, std::memcmp(bumped, ctr, 16));
}

TEST_F(SecureCacheTest, PlaintextSwapOutAccounted) {
  auto cfg = SmallConfig(4);
  Build(cfg);
  uint8_t ctr[16];
  ASSERT_TRUE(cache_->BumpCounter(0, ctr).ok());
  for (uint64_t leaf = 1; leaf <= 8; ++leaf) {
    ASSERT_TRUE(cache_->ReadCounter(leaf * 8, ctr).ok());
  }
  EXPECT_GE(cache_->stats().encryption_bytes_avoided, tree_->node_size());
}

TEST_F(SecureCacheTest, PinnedLevelsReduceVerification) {
  // Pin everything above L0: each miss costs exactly one MAC verification.
  SecureCacheConfig cfg;
  cfg.capacity_bytes = 1024 * 128;
  cfg.pinned_levels = 3;  // L1..L3 for the 4-level tree
  cfg.stop_swap_enabled = false;
  Build(cfg);
  EXPECT_TRUE(cache_->IsPinned(1));
  EXPECT_TRUE(cache_->IsPinned(2));
  EXPECT_TRUE(cache_->IsPinned(3));
  EXPECT_FALSE(cache_->IsPinned(0));
  uint64_t before = cache_->stats().mac_verifications;
  uint8_t ctr[16];
  ASSERT_TRUE(cache_->ReadCounter(4000, ctr).ok());
  EXPECT_EQ(cache_->stats().mac_verifications - before, 1u);
}

TEST_F(SecureCacheTest, TamperedLeafDetected) {
  Build(SmallConfig(4));
  uint8_t ctr[16];
  ASSERT_TRUE(cache_->ReadCounter(0, ctr).ok());
  // Attacker modifies an uncached leaf in untrusted memory.
  tree_->CounterPtr(999)[0] ^= 0xFF;
  EXPECT_TRUE(cache_->ReadCounter(999, ctr).IsIntegrityViolation());
}

TEST_F(SecureCacheTest, TamperedInnerNodeDetected) {
  Build(SmallConfig(4));
  uint8_t ctr[16];
  // Corrupt an L1 node; any verification chain passing through it fails.
  tree_->NodePtr(1, 3)[5] ^= 0x01;
  // Counter 3*8*8 = 192 lives under L1 node 3.
  EXPECT_TRUE(cache_->ReadCounter(192, ctr).IsIntegrityViolation());
}

TEST_F(SecureCacheTest, ReplayedLeafDetected) {
  Build(SmallConfig(4));
  uint8_t ctr[16];
  // Snapshot the leaf containing counter 0 plus its stored MAC.
  std::vector<uint8_t> old_leaf(tree_->node_size());
  std::memcpy(old_leaf.data(), tree_->NodePtr(0, 0), tree_->node_size());
  // Bump the counter and force the dirty leaf out to untrusted memory.
  ASSERT_TRUE(cache_->BumpCounter(0, ctr).ok());
  for (uint64_t leaf = 1; leaf <= 8; ++leaf) {
    ASSERT_TRUE(cache_->ReadCounter(leaf * 8, ctr).ok());
  }
  ASSERT_FALSE(cache_->IsCached(MtNodeId{0, 0}));
  // Replay the old leaf content (a classic rollback attack).
  std::memcpy(tree_->NodePtr(0, 0), old_leaf.data(), tree_->node_size());
  EXPECT_TRUE(cache_->ReadCounter(0, ctr).IsIntegrityViolation());
}

TEST_F(SecureCacheTest, StopSwapStillReadsAndWrites) {
  auto cfg = SmallConfig(16);
  cfg.capacity_bytes = 16 * 1024;  // room to pin L1..L3 (64+8+1 nodes)
  Build(cfg);
  uint8_t a[16], b[16];
  ASSERT_TRUE(cache_->BumpCounter(77, a).ok());
  ASSERT_TRUE(cache_->StopSwap().ok());
  EXPECT_TRUE(cache_->swap_stopped());
  ASSERT_TRUE(cache_->ReadCounter(77, b).ok());
  EXPECT_EQ(0, std::memcmp(a, b, 16));
  // Writes keep working and persist.
  ASSERT_TRUE(cache_->BumpCounter(77, a).ok());
  ASSERT_TRUE(cache_->ReadCounter(77, b).ok());
  EXPECT_EQ(0, std::memcmp(a, b, 16));
}

TEST_F(SecureCacheTest, StopSwapDetectsTampering) {
  auto cfg = SmallConfig(16);
  cfg.capacity_bytes = 16 * 1024;
  Build(cfg);
  ASSERT_TRUE(cache_->StopSwap().ok());
  tree_->CounterPtr(500)[0] ^= 1;
  uint8_t ctr[16];
  EXPECT_TRUE(cache_->ReadCounter(500, ctr).IsIntegrityViolation());
}

TEST_F(SecureCacheTest, StopSwapTriggeredByLowHitRatio) {
  SecureCacheConfig cfg;
  cfg.capacity_bytes = 16 * 152;  // 16 slots: uniform traffic will thrash
  cfg.pinned_levels = 0;
  cfg.stop_swap_enabled = true;
  cfg.stop_swap_window = 256;
  Build(cfg);
  Random rng(5);
  uint8_t ctr[16];
  for (int i = 0; i < 4096 && !cache_->swap_stopped(); ++i) {
    ASSERT_TRUE(cache_->ReadCounter(rng.Uniform(4096), ctr).ok());
  }
  EXPECT_TRUE(cache_->swap_stopped());
}

TEST_F(SecureCacheTest, SkewedTrafficKeepsSwapOn) {
  SecureCacheConfig cfg;
  cfg.capacity_bytes = 64 * 152;
  cfg.pinned_levels = 0;
  cfg.stop_swap_enabled = true;
  cfg.stop_swap_window = 256;
  Build(cfg);
  Random rng(6);
  uint8_t ctr[16];
  // 8 hot leaves: hit ratio ~ 1.
  for (int i = 0; i < 4096; ++i) {
    ASSERT_TRUE(cache_->ReadCounter(rng.Uniform(64), ctr).ok());
  }
  EXPECT_FALSE(cache_->swap_stopped());
  EXPECT_GT(cache_->stats().HitRatio(), 0.9);
}

TEST_F(SecureCacheTest, TinyCapacityFallsBackToStopSwap) {
  SecureCacheConfig cfg;
  cfg.capacity_bytes = 256;  // fewer than kMinSlots slots
  cfg.pinned_levels = 0;
  Build(cfg);
  EXPECT_TRUE(cache_->swap_stopped());
  uint8_t ctr[16];
  EXPECT_TRUE(cache_->ReadCounter(1234, ctr).ok());
}

TEST_F(SecureCacheTest, RandomizedShadowModel) {
  auto cfg = SmallConfig(8);
  Build(cfg, /*counters=*/2048, /*arity=*/8);
  Random rng(99);
  std::map<uint64_t, std::vector<uint8_t>> shadow;
  for (int step = 0; step < 30000; ++step) {
    uint64_t c = rng.Uniform(2048);
    uint8_t got[16];
    if (rng.Bernoulli(0.4)) {
      ASSERT_TRUE(cache_->BumpCounter(c, got).ok());
      shadow[c].assign(got, got + 16);
    } else {
      ASSERT_TRUE(cache_->ReadCounter(c, got).ok());
      auto it = shadow.find(c);
      if (it != shadow.end()) {
        ASSERT_EQ(0, std::memcmp(got, it->second.data(), 16))
            << "step " << step << " counter " << c;
      } else {
        shadow[c].assign(got, got + 16);  // initial random value
      }
    }
  }
  EXPECT_GT(cache_->stats().evictions, 100u);
}

TEST_F(SecureCacheTest, CleanWritebackModeStillCorrect) {
  // With the §IV-C optimization disabled, clean victims are written back
  // instead of discarded; reads after eviction must still verify.
  auto cfg = SmallConfig(4);
  cfg.avoid_clean_writeback = false;
  Build(cfg);
  uint8_t a[16], b[16];
  ASSERT_TRUE(cache_->ReadCounter(0, a).ok());
  for (uint64_t leaf = 1; leaf <= 8; ++leaf) {
    ASSERT_TRUE(cache_->ReadCounter(leaf * 8, b).ok());
  }
  EXPECT_EQ(cache_->stats().clean_discards, 0u);
  EXPECT_GT(cache_->stats().bytes_swapped_out, 0u);
  ASSERT_TRUE(cache_->ReadCounter(0, b).ok());
  EXPECT_EQ(0, std::memcmp(a, b, 16));
}

TEST_F(SecureCacheTest, DirtyEvictionCostIsLinearInHeight) {
  // With nothing pinned and nothing cached above L0, evicting a dirty leaf
  // must verify + recompute each ancestor exactly once: at most 2*(h-1)+1
  // MAC computations (one verify and one recompute per ancestor, plus the
  // victim's own MAC). The O(h^2) regression this guards against re-verified
  // the whole upper chain per level.
  SecureCacheConfig cfg;
  cfg.capacity_bytes = 4 * (128 + 24);  // 4 slots, constant churn
  cfg.pinned_levels = 0;
  cfg.stop_swap_enabled = false;
  Build(cfg);  // 4 levels: h-1 = 3 ancestors above a leaf
  uint8_t ctr[16];
  // Fill the 4 slots: dirty leaf 0, then leaves 1..3 (clean).
  ASSERT_TRUE(cache_->BumpCounter(0, ctr).ok());
  for (uint64_t leaf = 1; leaf <= 3; ++leaf) {
    ASSERT_TRUE(cache_->ReadCounter(leaf * 8, ctr).ok());
  }
  uint64_t before = cache_->stats().mac_verifications;
  // One more distinct leaf: 4 MACs for its own chain (leaf+3 ancestors),
  // plus the dirty eviction of leaf 0 = 1 victim MAC + 3 ancestor verifies
  // + 3 recomputes = 11 total. The O(h^2) regression needed several more.
  ASSERT_TRUE(cache_->ReadCounter(4 * 8, ctr).ok());
  ASSERT_FALSE(cache_->IsCached(MtNodeId{0, 0}));
  EXPECT_LE(cache_->stats().mac_verifications - before, 11u);
}

TEST_F(SecureCacheTest, DirtyEvictionWithUncachedParentRepairsParentMac) {
  // §IV-B edge case: the dirty victim's parent is NOT cached at eviction
  // time, so the write-back must swap the parent in through a scratch
  // buffer (without consuming a cache slot), verify it, refresh the
  // victim's stored MAC inside it, and propagate upward.
  Build(SmallConfig(4));
  uint8_t bumped[16], ctr[16];
  ASSERT_TRUE(cache_->BumpCounter(0, bumped).ok());
  ASSERT_TRUE(cache_->IsCached(MtNodeId{0, 0}));
  ASSERT_FALSE(cache_->IsCached(MtNodeId{1, 0}));  // parent stays uncached
  uint8_t stored_before[16];
  std::memcpy(stored_before, tree_->StoredMacPtr(MtNodeId{0, 0}), 16);

  // Churn distinct leaves until the dirty leaf 0 is evicted.
  for (uint64_t leaf = 1; leaf <= 8; ++leaf) {
    ASSERT_TRUE(cache_->ReadCounter(leaf * 8, ctr).ok());
  }
  ASSERT_FALSE(cache_->IsCached(MtNodeId{0, 0}));
  ASSERT_FALSE(cache_->IsCached(MtNodeId{1, 0}));
  EXPECT_GE(cache_->stats().dirty_writebacks, 1u);

  // The parent's stored MAC for leaf 0 must have been replaced with one
  // matching the bumped leaf content, and be verifiable from untrusted
  // memory alone.
  const uint8_t* stored_after = tree_->StoredMacPtr(MtNodeId{0, 0});
  EXPECT_FALSE(crypto::MacEqual(stored_before, stored_after));
  uint8_t recomputed[16];
  tree_->ComputeNodeMac(MtNodeId{0, 0}, recomputed);
  EXPECT_TRUE(crypto::MacEqual(recomputed, stored_after));

  // The full chain re-verifies and the bumped value survived the round
  // trip through untrusted memory.
  ASSERT_TRUE(cache_->ReadCounter(0, ctr).ok());
  EXPECT_EQ(0, std::memcmp(bumped, ctr, 16));
}

TEST_F(SecureCacheTest, ManualStopSwapAfterHeavyDirtyState) {
  auto cfg = SmallConfig(8);
  cfg.capacity_bytes = 32 * 152;
  Build(cfg);
  Random rng(1);
  uint8_t ctr[16];
  std::map<uint64_t, std::vector<uint8_t>> shadow;
  for (int i = 0; i < 2000; ++i) {
    uint64_t c = rng.Uniform(4096);
    ASSERT_TRUE(cache_->BumpCounter(c, ctr).ok());
    shadow[c].assign(ctr, ctr + 16);
  }
  ASSERT_TRUE(cache_->StopSwap().ok());
  for (auto& [c, expect] : shadow) {
    ASSERT_TRUE(cache_->ReadCounter(c, ctr).ok());
    ASSERT_EQ(0, std::memcmp(ctr, expect.data(), 16)) << "counter " << c;
  }
}

}  // namespace
}  // namespace aria
