// Tests for the user-space untrusted heap allocator (§V-B): size classes,
// free-list recycling, bitmap-backed attack detection, huge allocations,
// and a randomized property test against a reference model.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "alloc/heap_allocator.h"
#include "common/random.h"

namespace aria {
namespace {

class HeapAllocatorTest : public ::testing::Test {
 protected:
  HeapAllocatorTest() : enclave_(64ull * 1024 * 1024), alloc_(&enclave_) {}
  sgx::EnclaveRuntime enclave_;
  HeapAllocator alloc_;
};

TEST(SizeClasses, RoundUpPattern) {
  EXPECT_EQ(HeapAllocator::RoundUpToClass(1), 16u);
  EXPECT_EQ(HeapAllocator::RoundUpToClass(16), 16u);
  EXPECT_EQ(HeapAllocator::RoundUpToClass(17), 24u);
  EXPECT_EQ(HeapAllocator::RoundUpToClass(24), 24u);
  EXPECT_EQ(HeapAllocator::RoundUpToClass(25), 32u);
  EXPECT_EQ(HeapAllocator::RoundUpToClass(33), 48u);
  EXPECT_EQ(HeapAllocator::RoundUpToClass(100), 128u);
  EXPECT_EQ(HeapAllocator::RoundUpToClass(200), 256u);
  EXPECT_EQ(HeapAllocator::RoundUpToClass(5000), 6144u);
}

TEST_F(HeapAllocatorTest, BasicAllocFree) {
  auto r = alloc_.Alloc(100);
  ASSERT_TRUE(r.ok());
  std::memset(r.value(), 0xAB, 100);
  EXPECT_TRUE(alloc_.Free(r.value()).ok());
}

TEST_F(HeapAllocatorTest, ZeroSizeRejected) {
  EXPECT_TRUE(alloc_.Alloc(0).status().IsInvalidArgument());
}

TEST_F(HeapAllocatorTest, DistinctPointers) {
  std::vector<void*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    auto r = alloc_.Alloc(64);
    ASSERT_TRUE(r.ok());
    ptrs.push_back(r.value());
  }
  std::sort(ptrs.begin(), ptrs.end());
  EXPECT_EQ(std::unique(ptrs.begin(), ptrs.end()), ptrs.end());
  for (void* p : ptrs) EXPECT_TRUE(alloc_.Free(p).ok());
}

TEST_F(HeapAllocatorTest, FreeListRecyclesBlocks) {
  auto a = alloc_.Alloc(64);
  ASSERT_TRUE(a.ok());
  void* p = a.value();
  ASSERT_TRUE(alloc_.Free(p).ok());
  auto b = alloc_.Alloc(64);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), p);
  EXPECT_GE(alloc_.stats().freelist_hits, 1u);
  alloc_.Free(b.value()).ok();
}

TEST_F(HeapAllocatorTest, DoubleFreeDetected) {
  auto a = alloc_.Alloc(64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(alloc_.Free(a.value()).ok());
  EXPECT_TRUE(alloc_.Free(a.value()).IsIntegrityViolation());
}

TEST_F(HeapAllocatorTest, ForeignPointerDetected) {
  int x;
  EXPECT_TRUE(alloc_.Free(&x).IsIntegrityViolation());
}

TEST_F(HeapAllocatorTest, MisalignedPointerDetected) {
  auto a = alloc_.Alloc(64);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(
      alloc_.Free(static_cast<uint8_t*>(a.value()) + 1).IsIntegrityViolation());
  EXPECT_TRUE(alloc_.Free(a.value()).ok());
}

TEST_F(HeapAllocatorTest, CorruptedFreeListDetected) {
  // Attacker rewrites the intrusive next pointer of a freed block to point
  // at an in-use block.
  auto a = alloc_.Alloc(64);
  auto b = alloc_.Alloc(64);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(alloc_.Free(a.value()).ok());
  // a.value() is the free head; its first 8 bytes are the next pointer.
  void* evil = b.value();  // in-use block
  std::memcpy(a.value(), &evil, sizeof(void*));
  auto c = alloc_.Alloc(64);  // pops a; next alloc pops the poisoned next
  ASSERT_TRUE(c.ok());
  auto d = alloc_.Alloc(64);
  EXPECT_TRUE(d.status().IsIntegrityViolation());
}

TEST_F(HeapAllocatorTest, HugeAllocation) {
  size_t size = HeapAllocator::kChunkSize * 2 + 123;
  auto r = alloc_.Alloc(size);
  ASSERT_TRUE(r.ok());
  std::memset(r.value(), 1, size);
  EXPECT_TRUE(alloc_.Free(r.value()).ok());
  // Reserved bytes return to zero growth after the huge chunk is released.
  EXPECT_EQ(alloc_.stats().bytes_in_use, 0u);
}

TEST_F(HeapAllocatorTest, ChunkBoundaryAllocation) {
  auto r = alloc_.Alloc(HeapAllocator::kChunkSize);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(alloc_.Free(r.value()).ok());
}

TEST_F(HeapAllocatorTest, StatsTrackUsage) {
  auto a = alloc_.Alloc(100);  // class 128
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(alloc_.stats().bytes_in_use, 128u);
  EXPECT_EQ(alloc_.stats().allocs, 1u);
  alloc_.Free(a.value()).ok();
  EXPECT_EQ(alloc_.stats().bytes_in_use, 0u);
  EXPECT_EQ(alloc_.stats().frees, 1u);
  EXPECT_GT(alloc_.stats().trusted_metadata_bytes, 0u);
}

TEST_F(HeapAllocatorTest, ChunkAcquisitionUsesOcall) {
  uint64_t before = enclave_.stats().ocalls;
  auto a = alloc_.Alloc(64);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(enclave_.stats().ocalls, before + 1);  // first chunk of class
  auto b = alloc_.Alloc(64);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(enclave_.stats().ocalls, before + 1);  // amortized: no new OCALL
  alloc_.Free(a.value()).ok();
  alloc_.Free(b.value()).ok();
}

TEST_F(HeapAllocatorTest, RandomizedAgainstReferenceModel) {
  Random rng(77);
  std::map<void*, std::pair<size_t, uint8_t>> live;  // ptr -> (size, fill)
  for (int step = 0; step < 20000; ++step) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      size_t size = 1 + rng.Uniform(700);
      auto r = alloc_.Alloc(size);
      ASSERT_TRUE(r.ok());
      uint8_t fill = static_cast<uint8_t>(rng.Uniform(256));
      std::memset(r.value(), fill, size);
      ASSERT_EQ(live.count(r.value()), 0u) << "allocator returned live block";
      live[r.value()] = {size, fill};
    } else {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      auto [size, fill] = it->second;
      // Contents must be untouched by unrelated alloc/free traffic.
      auto* p = static_cast<uint8_t*>(it->first);
      for (size_t i = 0; i < size; i += 13) ASSERT_EQ(p[i], fill);
      ASSERT_TRUE(alloc_.Free(it->first).ok());
      live.erase(it);
    }
  }
  for (auto& [p, meta] : live) {
    (void)meta;
    ASSERT_TRUE(alloc_.Free(p).ok());
  }
  EXPECT_EQ(alloc_.stats().bytes_in_use, 0u);
}

TEST(OcallAllocator, EveryCallCrossesBoundary) {
  sgx::EnclaveRuntime rt(64ull * 1024 * 1024);
  OcallAllocator alloc(&rt);
  auto a = alloc.Alloc(100);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(rt.stats().ocalls, 1u);
  EXPECT_TRUE(alloc.Free(a.value()).ok());
  EXPECT_EQ(rt.stats().ocalls, 2u);
}

// --- UsableBytes: the trusted bound RecordCodec::Verify builds on -----------

TEST_F(HeapAllocatorTest, UsableBytesReportsBlockRemainder) {
  auto a = alloc_.Alloc(50);  // lands in the 64-byte class
  ASSERT_TRUE(a.ok());
  uint8_t* p = static_cast<uint8_t*>(a.value());
  EXPECT_EQ(alloc_.UsableBytes(p), HeapAllocator::RoundUpToClass(50));
  // Interior pointers (Aria-H records sit 16 bytes into their entry block)
  // get the remainder to the end of the block.
  EXPECT_EQ(alloc_.UsableBytes(p + 16),
            HeapAllocator::RoundUpToClass(50) - 16);
  EXPECT_EQ(alloc_.UsableBytes(p + HeapAllocator::RoundUpToClass(50) - 1), 1u);
  // A pointer the allocator never handed out resolves to no allocation.
  uint8_t stack_byte = 0;
  EXPECT_EQ(alloc_.UsableBytes(&stack_byte), 0u);
  ASSERT_TRUE(alloc_.Free(p).ok());
}

TEST_F(HeapAllocatorTest, UsableBytesOnHugeAllocation) {
  constexpr size_t kHuge = HeapAllocator::kChunkSize + 512;
  auto a = alloc_.Alloc(kHuge);
  ASSERT_TRUE(a.ok());
  uint8_t* p = static_cast<uint8_t*>(a.value());
  EXPECT_EQ(alloc_.UsableBytes(p), kHuge);
  EXPECT_EQ(alloc_.UsableBytes(p + 100), kHuge - 100);
  ASSERT_TRUE(alloc_.Free(p).ok());
}

TEST(OcallAllocator, UsableBytesTracksLiveAllocations) {
  sgx::EnclaveRuntime rt(64ull * 1024 * 1024);
  OcallAllocator alloc(&rt);
  auto a = alloc.Alloc(100);
  ASSERT_TRUE(a.ok());
  uint8_t* p = static_cast<uint8_t*>(a.value());
  EXPECT_EQ(alloc.UsableBytes(p), 100u);
  EXPECT_EQ(alloc.UsableBytes(p + 40), 60u);
  EXPECT_EQ(alloc.UsableBytes(p + 100), 0u);  // one past the end
  ASSERT_TRUE(alloc.Free(p).ok());
  uint8_t stack_byte = 0;
  EXPECT_EQ(alloc.UsableBytes(&stack_byte), 0u);
}

}  // namespace
}  // namespace aria
