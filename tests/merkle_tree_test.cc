// Tests for the flat Merkle tree: geometry/address arithmetic across
// arities, initialization consistency, and MAC relationships.
#include <gtest/gtest.h>

#include <cstring>

#include "alloc/heap_allocator.h"
#include "crypto/aes.h"
#include "crypto/cmac.h"
#include "crypto/secure_random.h"
#include "mt/flat_merkle_tree.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {
namespace {

class MerkleTreeTest : public ::testing::Test {
 protected:
  MerkleTreeTest()
      : enclave_(64ull * 1024 * 1024),
        alloc_(&enclave_),
        rng_(123),
        aes_(MakeKey()),
        cmac_(aes_) {}

  static const uint8_t* MakeKey() {
    static uint8_t key[16] = {1, 2, 3, 4, 5, 6, 7, 8,
                              9, 10, 11, 12, 13, 14, 15, 16};
    return key;
  }

  sgx::EnclaveRuntime enclave_;
  HeapAllocator alloc_;
  crypto::SecureRandom rng_;
  crypto::Aes128 aes_;
  crypto::Cmac128 cmac_;
};

TEST_F(MerkleTreeTest, GeometrySmallTree) {
  // 64 counters, arity 8: L0 = 8 nodes, L1 = 1 node.
  FlatMerkleTree tree(&enclave_, &alloc_, &cmac_, 64, 8);
  EXPECT_EQ(tree.num_levels(), 2);
  EXPECT_EQ(tree.NodesAt(0), 8u);
  EXPECT_EQ(tree.NodesAt(1), 1u);
  EXPECT_EQ(tree.node_size(), 128u);
  EXPECT_EQ(tree.total_bytes(), 9u * 128);
}

TEST_F(MerkleTreeTest, GeometryPartialLevels) {
  // 100 counters, arity 8: L0 = 13 nodes, L1 = 2, L2 = 1.
  FlatMerkleTree tree(&enclave_, &alloc_, &cmac_, 100, 8);
  EXPECT_EQ(tree.num_levels(), 3);
  EXPECT_EQ(tree.NodesAt(0), 13u);
  EXPECT_EQ(tree.NodesAt(1), 2u);
  EXPECT_EQ(tree.NodesAt(2), 1u);
}

TEST_F(MerkleTreeTest, SingleNodeTree) {
  FlatMerkleTree tree(&enclave_, &alloc_, &cmac_, 4, 8);
  EXPECT_EQ(tree.num_levels(), 1);
  EXPECT_EQ(tree.NodesAt(0), 1u);
  EXPECT_TRUE(tree.Init(&rng_).ok());
  // Root must equal the MAC of the single node.
  uint8_t mac[16];
  tree.ComputeNodeMac(MtNodeId{0, 0}, mac);
  EXPECT_TRUE(crypto::MacEqual(mac, tree.root()));
}

TEST_F(MerkleTreeTest, ParentChildArithmetic) {
  FlatMerkleTree tree(&enclave_, &alloc_, &cmac_, 1000, 4);
  MtNodeId leaf = tree.LeafOf(37);
  EXPECT_EQ(leaf.level, 0);
  EXPECT_EQ(leaf.index, 37u / 4);
  EXPECT_EQ(tree.CounterOffsetInLeaf(37), (37u % 4) * 16);
  MtNodeId parent = tree.ParentOf(leaf);
  EXPECT_EQ(parent.level, 1);
  EXPECT_EQ(parent.index, leaf.index / 4);
  EXPECT_EQ(tree.SlotInParent(leaf), leaf.index % 4);
}

TEST_F(MerkleTreeTest, CounterPtrMatchesLeafLayout) {
  FlatMerkleTree tree(&enclave_, &alloc_, &cmac_, 256, 8);
  ASSERT_TRUE(tree.Init(&rng_).ok());
  for (uint64_t c : {0ull, 7ull, 8ull, 100ull, 255ull}) {
    MtNodeId leaf = tree.LeafOf(c);
    uint8_t* via_node =
        tree.NodePtr(leaf.level, leaf.index) + tree.CounterOffsetInLeaf(c);
    EXPECT_EQ(tree.CounterPtr(c), via_node) << "counter " << c;
  }
}

class MerkleTreeArityTest : public MerkleTreeTest,
                            public ::testing::WithParamInterface<size_t> {};

TEST_P(MerkleTreeArityTest, InitProducesConsistentTree) {
  size_t arity = GetParam();
  FlatMerkleTree tree(&enclave_, &alloc_, &cmac_, 500, arity);
  ASSERT_TRUE(tree.Init(&rng_).ok());
  // Every node's computed MAC must equal the stored MAC in its parent.
  for (int level = 0; level < tree.num_levels(); ++level) {
    for (uint64_t i = 0; i < tree.NodesAt(level); ++i) {
      MtNodeId id{level, i};
      uint8_t mac[16];
      tree.ComputeNodeMac(id, mac);
      EXPECT_TRUE(crypto::MacEqual(mac, tree.StoredMacPtr(id)))
          << "arity " << arity << " node (" << level << "," << i << ")";
    }
  }
}

TEST_P(MerkleTreeArityTest, StoredMacOfTopIsRoot) {
  size_t arity = GetParam();
  FlatMerkleTree tree(&enclave_, &alloc_, &cmac_, 500, arity);
  ASSERT_TRUE(tree.Init(&rng_).ok());
  MtNodeId top{tree.num_levels() - 1, 0};
  EXPECT_TRUE(tree.IsTop(top));
  EXPECT_EQ(tree.StoredMacPtr(top), tree.root());
}

INSTANTIATE_TEST_SUITE_P(Arities, MerkleTreeArityTest,
                         ::testing::Values(2, 4, 8, 10, 12, 16));

TEST_F(MerkleTreeTest, TamperedCounterBreaksLeafMac) {
  FlatMerkleTree tree(&enclave_, &alloc_, &cmac_, 128, 8);
  ASSERT_TRUE(tree.Init(&rng_).ok());
  MtNodeId leaf = tree.LeafOf(42);
  uint8_t before[16];
  tree.ComputeNodeMac(leaf, before);
  tree.CounterPtr(42)[3] ^= 0x40;  // attacker flips a bit in the counter
  uint8_t after[16];
  tree.ComputeNodeMac(leaf, after);
  EXPECT_FALSE(crypto::MacEqual(before, after));
  EXPECT_FALSE(crypto::MacEqual(after, tree.StoredMacPtr(leaf)));
}

TEST_F(MerkleTreeTest, RandomInitialCounters) {
  FlatMerkleTree t1(&enclave_, &alloc_, &cmac_, 64, 8);
  ASSERT_TRUE(t1.Init(&rng_).ok());
  // Counters should not be all-zero (probability ~2^-8192).
  bool nonzero = false;
  for (uint64_t c = 0; c < 64; ++c) {
    for (int i = 0; i < 16; ++i) {
      if (t1.CounterPtr(c)[i] != 0) nonzero = true;
    }
  }
  EXPECT_TRUE(nonzero);
}

TEST_F(MerkleTreeTest, LargeTreeGeometry) {
  FlatMerkleTree tree(&enclave_, &alloc_, &cmac_, 1 << 20, 8);
  // 2^20 counters, arity 8: levels 2^17, 2^14, 2^11, 2^8, 2^5, 4, 1.
  EXPECT_EQ(tree.num_levels(), 7);
  EXPECT_EQ(tree.NodesAt(0), 1u << 17);
  EXPECT_EQ(tree.NodesAt(6), 1u);
  // Total untrusted = sum of levels * node_size ≈ 1.14x counters.
  EXPECT_GT(tree.total_bytes(), (1ull << 20) * 16);
  EXPECT_LT(tree.total_bytes(), (1ull << 20) * 16 * 5 / 4);
}

}  // namespace
}  // namespace aria
