// Fault-injection tests: deterministic, seeded fault schedules mounted
// through the aria::fault hook sites plus direct attacks on untrusted
// memory. Every injected data-integrity fault must surface as an
// IntegrityViolation — never as silent wrong data or a crash — and every
// injected allocation failure must surface as a clean Status error that
// leaves the store usable (§IV-B: "an attack always leads to a MAC
// mismatch somewhere on the path to the root").
//
// Fault classes covered (ISSUE acceptance: >= 6 across >= 3 schemes):
//   1. bit flips in untrusted buffers (Merkle node loads, record
//      ciphertext) — Aria-H, Aria-T, Aria-B+, Aria-C
//   2. MAC corruption (stored Merkle node MACs, record MACs)
//   3. counter rollback (leaf replay after dirty eviction) + free-ring
//      recycle of an in-use counter
//   4. record-pointer swaps (hash bucket cells, B-tree record slots)
//   5. allocation failure (untrusted heap and trusted EPC) — clean errors
//   6. dropped / misdirected eviction write-backs
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "alloc/heap_allocator.h"
#include "core/aria_bplus.h"
#include "core/aria_btree.h"
#include "core/aria_cuckoo.h"
#include "core/aria_hash.h"
#include "core/sharded_store.h"
#include "core/store_factory.h"
#include "metadata/counter_manager.h"
#include "obs/invariants.h"
#include "sgxsim/enclave_runtime.h"
#include "testing/fault_injector.h"
#include "testing/model_checker.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

using testing::DifferentialChecker;
using testing::FaultKind;
using testing::FaultSpec;
using testing::InjectorScope;
using testing::ScheduledInjector;

// Tiny Secure Cache (~26 slots, nothing pinned) so counter reads miss and
// the verify / evict paths with their hook sites run constantly.
StoreOptions TinyCacheOptions(IndexKind index) {
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.index = index;
  opts.keyspace = 4096;
  opts.cache_bytes = 4096;
  opts.pinned_levels = 0;
  opts.stop_swap_enabled = false;
  if (index == IndexKind::kHash) opts.num_buckets = 64;
  return opts;
}

std::vector<uint8_t> PointerBytes(const void* p) {
  std::vector<uint8_t> bytes(sizeof(void*));
  std::memcpy(bytes.data(), &p, sizeof(void*));
  return bytes;
}

std::vector<uint8_t> U64Bytes(uint64_t v) {
  std::vector<uint8_t> bytes(sizeof(uint64_t));
  std::memcpy(bytes.data(), &v, sizeof(uint64_t));
  return bytes;
}

// Sweep Gets over [0, n): every answer must be either the correct value or
// an IntegrityViolation. Returns the number of violations seen.
int SweepExpectNoWrongData(KVStore* store, int n, size_t value_size) {
  int violations = 0;
  for (int i = 0; i < n; ++i) {
    std::string v;
    Status st = store->Get(MakeKey(i), &v);
    if (st.ok()) {
      EXPECT_EQ(v, MakeValue(i, value_size)) << "silent wrong data, key " << i;
    } else {
      EXPECT_TRUE(st.IsIntegrityViolation()) << st.ToString();
      violations++;
    }
  }
  return violations;
}

// --- Fault class 1: bit flips in untrusted buffers --------------------------

TEST(UntrustedBitFlip, MerkleNodeLoadFlipDetected) {
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(TinyCacheOptions(IndexKind::kHash), &bundle).ok());
  KVStore* store = bundle.store.get();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Put(MakeKey(i), MakeValue(i, 32)).ok());
  }

  ScheduledInjector injector(/*seed=*/7);
  InjectorScope scope(&injector);
  injector.Arm({.site = fault::Site::kMerkleNodeLoad,
                .kind = FaultKind::kFlipBit,
                .bit = 37});

  // The flip fires on the first counter-leaf swap-in; the chain verification
  // of that very load must reject it.
  int violations = SweepExpectNoWrongData(store, 2000, 32);
  EXPECT_GE(injector.fired(), 1u);
  EXPECT_GE(violations, 1);
}

TEST(UntrustedBitFlip, RecordCiphertextFlipDetectedAcrossSchemes) {
  {  // Aria-H
    StoreBundle bundle;
    StoreOptions opts = TinyCacheOptions(IndexKind::kHash);
    ASSERT_TRUE(CreateStore(opts, &bundle).ok());
    auto* hash = static_cast<AriaHash*>(bundle.store.get());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(hash->Put(MakeKey(i), MakeValue(i, 32)).ok());
    }
    uint8_t* entry = hash->DebugEntry(MakeKey(11));
    ASSERT_NE(entry, nullptr);
    entry[16 + RecordCodec::kHeaderSize] ^= 0x04;
    std::string v;
    EXPECT_TRUE(hash->Get(MakeKey(11), &v).IsIntegrityViolation());
  }
  {  // Aria-T
    StoreBundle bundle;
    ASSERT_TRUE(CreateStore(TinyCacheOptions(IndexKind::kBTree), &bundle).ok());
    auto* btree = static_cast<AriaBTree*>(bundle.store.get());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(btree->Put(MakeKey(i), MakeValue(i, 32)).ok());
    }
    uint8_t** slot = btree->DebugRecordSlot(MakeKey(11));
    ASSERT_NE(slot, nullptr);
    (*slot)[RecordCodec::kHeaderSize] ^= 0x04;
    std::string v;
    EXPECT_TRUE(btree->Get(MakeKey(11), &v).IsIntegrityViolation());
  }
  {  // Aria-B+
    StoreBundle bundle;
    ASSERT_TRUE(
        CreateStore(TinyCacheOptions(IndexKind::kBPlusTree), &bundle).ok());
    auto* bplus = static_cast<AriaBPlusTree*>(bundle.store.get());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(bplus->Put(MakeKey(i), MakeValue(i, 32)).ok());
    }
    uint8_t** slot = bplus->DebugRecordSlot(MakeKey(11));
    ASSERT_NE(slot, nullptr);
    (*slot)[RecordCodec::kHeaderSize] ^= 0x04;
    std::string v;
    EXPECT_TRUE(bplus->Get(MakeKey(11), &v).IsIntegrityViolation());
  }
  {  // Aria-C
    StoreBundle bundle;
    ASSERT_TRUE(
        CreateStore(TinyCacheOptions(IndexKind::kCuckoo), &bundle).ok());
    auto* cuckoo = static_cast<AriaCuckoo*>(bundle.store.get());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(cuckoo->Put(MakeKey(i), MakeValue(i, 32)).ok());
    }
    uint8_t** cell = cuckoo->DebugSlotCell(MakeKey(11));
    ASSERT_NE(cell, nullptr);
    (*cell)[RecordCodec::kHeaderSize] ^= 0x04;
    std::string v;
    EXPECT_TRUE(cuckoo->Get(MakeKey(11), &v).IsIntegrityViolation());
  }
}

// --- Fault class 2: MAC corruption ------------------------------------------

TEST(MacCorruption, StoredMerkleNodeMacFlipDetected) {
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(TinyCacheOptions(IndexKind::kHash), &bundle).ok());
  KVStore* store = bundle.store.get();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Put(MakeKey(i), MakeValue(i, 32)).ok());
  }
  // Counters are bump-allocated in Put order, so leaf 0 guards the counters
  // of the first `arity` keys — long evicted from the ~26-slot cache.
  FlatMerkleTree* tree = bundle.counter_manager()->tree();
  testing::FlipStoredMacBit(tree, MtNodeId{0, 0}, /*bit=*/3);
  int violations = SweepExpectNoWrongData(store, 64, 32);
  EXPECT_GE(violations, 1);
}

TEST(MacCorruption, RecordMacFlipDetected) {
  StoreBundle bundle;
  ASSERT_TRUE(
      CreateStore(TinyCacheOptions(IndexKind::kBPlusTree), &bundle).ok());
  auto* bplus = static_cast<AriaBPlusTree*>(bundle.store.get());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(bplus->Put(MakeKey(i), MakeValue(i, 32)).ok());
  }
  uint8_t** slot = bplus->DebugRecordSlot(MakeKey(42));
  ASSERT_NE(slot, nullptr);
  RecordHeader h = RecordCodec::Peek(*slot);
  (*slot)[RecordCodec::kHeaderSize + h.k_len + h.v_len] ^= 0xFF;
  std::string v;
  EXPECT_TRUE(bplus->Get(MakeKey(42), &v).IsIntegrityViolation());
}

// --- Fault class 3: counter rollback / malicious recycling ------------------

TEST(CounterRollback, LeafReplayAfterEvictionDetected) {
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(TinyCacheOptions(IndexKind::kHash), &bundle).ok());
  KVStore* store = bundle.store.get();
  auto* cm = bundle.counter_manager();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Put(MakeKey(i), MakeValue(i, 32)).ok());
  }
  // Flush: churn reads over ~100 distinct leaves so every dirty slot from
  // the prepopulation has been written back.
  std::string v;
  for (int i = 1000; i < 1800; i += 8) {
    ASSERT_TRUE(store->Get(MakeKey(i), &v).ok());
  }

  std::vector<uint8_t> old_leaf = testing::SnapshotNode(cm->tree(), {0, 0});
  // Overwrite key 3: bumps its counter (in leaf 0) and re-seals the record.
  ASSERT_TRUE(store->Put(MakeKey(3), MakeValue(3, 32, /*version=*/2)).ok());
  uint64_t writebacks = cm->CacheStats().dirty_writebacks;
  for (int i = 1000; i < 1800; i += 8) {  // force the dirty leaf out
    ASSERT_TRUE(store->Get(MakeKey(i), &v).ok());
  }
  ASSERT_GT(cm->CacheStats().dirty_writebacks, writebacks);

  // Roll the counter leaf back to its pre-bump bytes. The parent MAC was
  // refreshed at eviction, so the replayed leaf must fail verification.
  testing::RestoreNode(cm->tree(), {0, 0}, old_leaf);
  Status st = store->Get(MakeKey(3), &v);
  EXPECT_TRUE(st.IsIntegrityViolation()) << st.ToString();
}

TEST(CounterRollback, FreeRingRecyclesInUseCounterDetected) {
  StoreOptions opts = TinyCacheOptions(IndexKind::kHash);
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  KVStore* store = bundle.store.get();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->Put(MakeKey(i), MakeValue(i, 32)).ok());
  }
  ASSERT_TRUE(store->Delete(MakeKey(3)).ok());  // counter 3 -> free ring

  ScheduledInjector injector(/*seed=*/7);
  InjectorScope scope(&injector);
  // Malicious host rewrites the recycled slot to counter 5, which is still
  // in use by key 5. The trusted occupation bitmap must reject it.
  injector.Arm({.site = fault::Site::kFreeRingPop,
                .kind = FaultKind::kSetValue,
                .bytes = U64Bytes(5)});
  Status st = store->Put(MakeKey(1000), MakeValue(1000, 32));
  EXPECT_EQ(injector.fired(), 1u);
  EXPECT_TRUE(st.IsIntegrityViolation()) << st.ToString();
}

TEST(CounterRollback, FreeRingOutOfRangeSlotDetected) {
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(TinyCacheOptions(IndexKind::kHash), &bundle).ok());
  KVStore* store = bundle.store.get();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->Put(MakeKey(i), MakeValue(i, 32)).ok());
  }
  ASSERT_TRUE(store->Delete(MakeKey(7)).ok());

  ScheduledInjector injector(/*seed=*/7);
  InjectorScope scope(&injector);
  injector.Arm({.site = fault::Site::kFreeRingPop,
                .kind = FaultKind::kSetValue,
                .bytes = U64Bytes(1ull << 40)});
  Status st = store->Put(MakeKey(1000), MakeValue(1000, 32));
  EXPECT_EQ(injector.fired(), 1u);
  EXPECT_TRUE(st.IsIntegrityViolation()) << st.ToString();
}

// --- Fault class 4: record-pointer swaps ------------------------------------

TEST(PointerSwap, RecordPointerSwapDetectedAcrossSchemes) {
  {  // Aria-H: swap two bucket head pointers (Fig. 7).
    StoreBundle bundle;
    StoreOptions opts = TinyCacheOptions(IndexKind::kHash);
    opts.num_buckets = 16;
    ASSERT_TRUE(CreateStore(opts, &bundle).ok());
    auto* hash = static_cast<AriaHash*>(bundle.store.get());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(hash->Put(MakeKey(i), MakeValue(i, 32)).ok());
    }
    uint8_t** c1 = hash->DebugBucketCell(MakeKey(0));
    uint8_t** c2 = nullptr;
    std::string k2;
    for (int i = 1; i < 100 && c2 == nullptr; ++i) {
      uint8_t** c = hash->DebugBucketCell(MakeKey(i));
      if (c != c1) {
        c2 = c;
        k2 = MakeKey(i);
      }
    }
    ASSERT_NE(c2, nullptr);
    std::swap(*c1, *c2);
    std::string v;
    EXPECT_TRUE(hash->Get(MakeKey(0), &v).IsIntegrityViolation());
    EXPECT_TRUE(hash->Get(k2, &v).IsIntegrityViolation());
  }
  {  // Aria-T: swap two record slots.
    StoreBundle bundle;
    ASSERT_TRUE(CreateStore(TinyCacheOptions(IndexKind::kBTree), &bundle).ok());
    auto* btree = static_cast<AriaBTree*>(bundle.store.get());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(btree->Put(MakeKey(i), MakeValue(i, 32)).ok());
    }
    uint8_t** s1 = btree->DebugRecordSlot(MakeKey(5));
    uint8_t** s2 = btree->DebugRecordSlot(MakeKey(80));
    ASSERT_NE(s1, nullptr);
    ASSERT_NE(s2, nullptr);
    std::swap(*s1, *s2);
    std::string v;
    Status st1 = btree->Get(MakeKey(5), &v);
    Status st2 = btree->Get(MakeKey(80), &v);
    EXPECT_TRUE(st1.IsIntegrityViolation() || st2.IsIntegrityViolation());
    EXPECT_FALSE(st1.ok() && v == MakeValue(5, 32));
  }
  {  // Aria-B+: same attack on the leaf-linked variant.
    StoreBundle bundle;
    ASSERT_TRUE(
        CreateStore(TinyCacheOptions(IndexKind::kBPlusTree), &bundle).ok());
    auto* bplus = static_cast<AriaBPlusTree*>(bundle.store.get());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(bplus->Put(MakeKey(i), MakeValue(i, 32)).ok());
    }
    uint8_t** s1 = bplus->DebugRecordSlot(MakeKey(5));
    uint8_t** s2 = bplus->DebugRecordSlot(MakeKey(80));
    ASSERT_NE(s1, nullptr);
    ASSERT_NE(s2, nullptr);
    std::swap(*s1, *s2);
    std::string v;
    Status st1 = bplus->Get(MakeKey(5), &v);
    Status st2 = bplus->Get(MakeKey(80), &v);
    EXPECT_TRUE(st1.IsIntegrityViolation() || st2.IsIntegrityViolation());
  }
}

// --- Fault class 5: allocation failures are clean, never corrupting ---------

TEST(AllocFailure, UntrustedAllocFailureIsCleanAcrossSchemes) {
  const IndexKind kinds[] = {IndexKind::kHash, IndexKind::kBTree,
                             IndexKind::kCuckoo};
  for (IndexKind kind : kinds) {
    StoreBundle bundle;
    StoreOptions opts;
    opts.scheme = Scheme::kAria;
    opts.index = kind;
    opts.keyspace = 4096;
    ASSERT_TRUE(CreateStore(opts, &bundle).ok());
    KVStore* store = bundle.store.get();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(store->Put(MakeKey(i), MakeValue(i, 32)).ok());
    }

    ScheduledInjector injector(/*seed=*/7);
    InjectorScope scope(&injector);
    injector.Arm({.site = fault::Site::kUntrustedAlloc,
                  .kind = FaultKind::kFailAlloc,
                  .repeat = true});
    Status st = store->Put(MakeKey(500), MakeValue(500, 48));
    EXPECT_FALSE(st.ok()) << store->name();
    EXPECT_FALSE(st.IsIntegrityViolation()) << store->name() << ": "
                                            << st.ToString();
    EXPECT_GE(injector.fired(), 1u);
    injector.DisarmAll();

    // The failed Put must not have corrupted anything: all old keys still
    // read back, and the store accepts new writes again.
    std::string v;
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(store->Get(MakeKey(i), &v).ok()) << store->name();
      ASSERT_EQ(v, MakeValue(i, 32)) << store->name();
    }
    EXPECT_TRUE(store->Put(MakeKey(500), MakeValue(500, 48)).ok())
        << store->name();
    EXPECT_TRUE(store->Get(MakeKey(500), &v).ok());
    EXPECT_EQ(v, MakeValue(500, 48));

    // A failed insert rolls its fetched counter back, so the fetch/free/used
    // books — and every other conservation law — still balance.
    obs::InvariantReport inv = bundle.CheckInvariants();
    EXPECT_TRUE(inv.ok()) << store->name() << ": " << inv.ToString();
  }
}

TEST(AllocFailure, TrustedAllocFailureFailsCreationCleanly) {
  ScheduledInjector injector(/*seed=*/7);
  InjectorScope scope(&injector);
  injector.Arm({.site = fault::Site::kTrustedAlloc,
                .kind = FaultKind::kFailAlloc,
                .repeat = true});
  StoreBundle bundle;
  Status st = CreateStore(TinyCacheOptions(IndexKind::kHash), &bundle);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(st.IsIntegrityViolation()) << st.ToString();
  EXPECT_GE(injector.fired(), 1u);
}

// --- Fault class 6: dropped / misdirected eviction write-backs --------------

TEST(EvictionWriteback, DroppedWritebackDetected) {
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(TinyCacheOptions(IndexKind::kHash), &bundle).ok());
  KVStore* store = bundle.store.get();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Put(MakeKey(i), MakeValue(i, 32)).ok());
  }
  std::string v;
  for (int i = 1000; i < 1800; i += 8) {  // flush pre-existing dirty slots
    ASSERT_TRUE(store->Get(MakeKey(i), &v).ok());
  }

  ScheduledInjector injector(/*seed=*/7);
  InjectorScope scope(&injector);
  injector.Arm({.site = fault::Site::kEvictionWriteback,
                .kind = FaultKind::kDropWriteback});

  // The overwrite dirties exactly one counter leaf; the churn evicts it and
  // the injector swallows the write-back. The ancestors' MACs were already
  // refreshed, so the stale untrusted leaf must fail re-verification.
  ASSERT_TRUE(store->Put(MakeKey(5), MakeValue(5, 32, /*version=*/2)).ok());
  for (int i = 1000; i < 1800 && injector.fired() == 0; i += 8) {
    ASSERT_TRUE(store->Get(MakeKey(i), &v).ok());
  }
  ASSERT_EQ(injector.fired(), 1u);
  Status st = store->Get(MakeKey(5), &v);
  EXPECT_TRUE(st.IsIntegrityViolation()) << st.ToString();
}

// Deliberately broken counter caught by the InvariantChecker: a dropped
// write-back increments dirty_writebacks without moving bytes_swapped_out
// (the bytes never crossed the boundary), so swap-byte conservation — which
// insists bytes_swapped_out == node_size * (dirty + clean write-backs) —
// must flag the snapshot even though the data-path detector (MAC mismatch)
// would fire only on the next access to the stale node.
TEST(EvictionWriteback, DroppedWritebackBreaksSwapByteConservation) {
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(TinyCacheOptions(IndexKind::kHash), &bundle).ok());
  KVStore* store = bundle.store.get();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Put(MakeKey(i), MakeValue(i, 32)).ok());
  }
  // Before the fault the full law suite holds over the eviction churn.
  ASSERT_TRUE(bundle.CheckInvariants().ok())
      << bundle.CheckInvariants().ToString();

  ScheduledInjector injector(/*seed=*/7);
  InjectorScope scope(&injector);
  injector.Arm({.site = fault::Site::kEvictionWriteback,
                .kind = FaultKind::kDropWriteback});
  ASSERT_TRUE(store->Put(MakeKey(5), MakeValue(5, 32, /*version=*/2)).ok());
  std::string v;
  for (int i = 1000; i < 1800 && injector.fired() == 0; i += 8) {
    ASSERT_TRUE(store->Get(MakeKey(i), &v).ok());
  }
  ASSERT_EQ(injector.fired(), 1u);

  obs::InvariantReport inv = bundle.CheckInvariants();
  EXPECT_FALSE(inv.ok());
  bool flagged = false;
  for (const auto& violation : inv.violations) {
    if (violation.law == "swap-byte-conservation") flagged = true;
  }
  EXPECT_TRUE(flagged) << inv.ToString();
}

TEST(EvictionWriteback, MisdirectedDuplicateWritebackDetected) {
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(TinyCacheOptions(IndexKind::kHash), &bundle).ok());
  KVStore* store = bundle.store.get();
  auto* cm = bundle.counter_manager();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Put(MakeKey(i), MakeValue(i, 32)).ok());
  }
  std::string v;
  for (int i = 1000; i < 1800; i += 8) {
    ASSERT_TRUE(store->Get(MakeKey(i), &v).ok());
  }

  ScheduledInjector injector(/*seed=*/7);
  InjectorScope scope(&injector);
  // The write-back additionally lands on leaf 1 — home of the counters of
  // keys arity..2*arity-1 — clobbering them with another leaf's content.
  injector.Arm({.site = fault::Site::kEvictionWriteback,
                .kind = FaultKind::kDuplicateWriteback,
                .target = cm->tree()->NodePtr(0, 1)});

  ASSERT_TRUE(store->Put(MakeKey(5), MakeValue(5, 32, /*version=*/2)).ok());
  for (int i = 1000; i < 1800 && injector.fired() == 0; i += 8) {
    ASSERT_TRUE(store->Get(MakeKey(i), &v).ok());
  }
  ASSERT_EQ(injector.fired(), 1u);

  size_t arity = 8;
  int violations = 0;
  for (uint64_t k = arity; k < 2 * arity; ++k) {
    Status st = store->Get(MakeKey(k), &v);
    if (st.ok()) {
      EXPECT_EQ(v, MakeValue(k, 32)) << "silent wrong data, key " << k;
    } else {
      EXPECT_TRUE(st.IsIntegrityViolation()) << st.ToString();
      violations++;
    }
  }
  EXPECT_GE(violations, 1);
}

// Torn write under concurrency: shard i of a sharded store loses a dirty
// eviction write-back while shard j concurrently serves reads. The MT
// carve-out is per shard, so the violation must surface on shard i's keys
// only — shard j must stay fully readable with correct data throughout.
TEST(EvictionWriteback, ConcurrentDropIsolatedToOneShard) {
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.index = IndexKind::kHash;
  opts.keyspace = 8192;
  opts.num_shards = 2;
  opts.cache_bytes = 8192;  // 4 KB per shard: ~26 slots, constant eviction
  opts.pinned_levels = 0;
  opts.stop_swap_enabled = false;
  opts.num_buckets = 128;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  auto* sharded = dynamic_cast<ShardedStore*>(bundle.store.get());
  ASSERT_NE(sharded, nullptr);

  // Bucket key ids by shard, then populate 1200 keys per shard.
  std::vector<std::vector<uint64_t>> ids(2);
  for (uint64_t id = 0; id < 8192 && (ids[0].size() < 1200 ||
                                      ids[1].size() < 1200); ++id) {
    ids[sharded->ShardOf(MakeKey(id))].push_back(id);
  }
  ASSERT_GE(ids[0].size(), 1200u);
  ASSERT_GE(ids[1].size(), 1200u);
  for (int s = 0; s < 2; ++s) {
    for (size_t i = 0; i < 1200; ++i) {
      uint64_t id = ids[s][i];
      ASSERT_TRUE(sharded->Put(MakeKey(id), MakeValue(id, 32)).ok());
    }
  }
  // Flush pre-existing dirty slots in both shards so the armed drop can
  // only ever hit the one leaf the attacked Put dirties.
  std::string v;
  for (int s = 0; s < 2; ++s) {
    for (size_t i = 600; i < 1100; i += 4) {
      ASSERT_TRUE(sharded->Get(MakeKey(ids[s][i]), &v).ok());
    }
  }

  ScheduledInjector injector(/*seed=*/7);
  InjectorScope scope(&injector);
  injector.Arm({.site = fault::Site::kEvictionWriteback,
                .kind = FaultKind::kDropWriteback});

  const uint64_t attacked = ids[0][5];
  std::atomic<uint64_t> reader_errors{0};
  std::atomic<bool> attack_fired{false};

  // Shard 1: a reader hammering its own keys. Clean evictions skip the
  // write-back hook entirely, so the armed drop cannot land here.
  std::thread reader([&]() {
    std::string value;
    size_t i = 0;
    // Keep reading at least until the attack landed, then one more sweep.
    for (int round = 0; round < 50 && (round < 2 || !attack_fired.load());
         ++round) {
      for (size_t n = 0; n < 400; ++n, ++i) {
        uint64_t id = ids[1][i % 1200];
        Status st = sharded->Get(MakeKey(id), &value);
        if (!st.ok() || value != MakeValue(id, 32)) reader_errors++;
      }
    }
  });

  // Shard 0: overwrite one key (dirties exactly one counter leaf), then
  // churn reads over distant leaves until the dirty victim is evicted and
  // the injector swallows its write-back.
  std::thread attacker([&]() {
    std::string value;
    if (!sharded->Put(MakeKey(attacked), MakeValue(attacked, 32, 2)).ok()) {
      return;
    }
    for (size_t i = 600; i < 1100 && injector.fired() == 0; i += 4) {
      (void)sharded->Get(MakeKey(ids[0][i]), &value);
    }
    attack_fired.store(true);
  });
  attacker.join();
  reader.join();

  ASSERT_EQ(injector.fired(), 1u);
  EXPECT_EQ(reader_errors.load(), 0u) << "shard 1 was affected by shard 0's "
                                         "torn write";
  // Shard 0: the stale leaf fails re-verification on the attacked key...
  Status st = sharded->Get(MakeKey(attacked), &v);
  EXPECT_TRUE(st.IsIntegrityViolation()) << st.ToString();
  // ...while shard 1 remains fully intact after the dust settles.
  for (size_t i = 0; i < 1200; ++i) {
    uint64_t id = ids[1][i];
    Status rs = sharded->Get(MakeKey(id), &v);
    ASSERT_TRUE(rs.ok()) << "key " << id << ": " << rs.ToString();
    ASSERT_EQ(v, MakeValue(id, 32)) << "key " << id;
  }
}

// --- Allocator free-list corruption (hook-driven) ---------------------------

TEST(AllocatorFault, CorruptedFreeListPointerDetected) {
  sgx::EnclaveRuntime enclave(64ull << 20);
  HeapAllocator alloc(&enclave);
  auto a = alloc.Alloc(64);
  auto b = alloc.Alloc(64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(alloc.Free(a.value()).ok());
  ASSERT_TRUE(alloc.Free(b.value()).ok());  // free list: b -> a

  ScheduledInjector injector(/*seed=*/7);
  InjectorScope scope(&injector);
  // Corrupt the successor pointer stored inside b as it is popped: the next
  // pop must reject the misaligned block instead of handing it out.
  uint8_t* misaligned = static_cast<uint8_t*>(b.value()) + 1;
  injector.Arm({.site = fault::Site::kFreeListPop,
                .kind = FaultKind::kSetValue,
                .bytes = PointerBytes(misaligned)});

  auto pop1 = alloc.Alloc(64);
  ASSERT_TRUE(pop1.ok());
  EXPECT_EQ(pop1.value(), b.value());
  EXPECT_EQ(injector.fired(), 1u);

  auto pop2 = alloc.Alloc(64);
  ASSERT_FALSE(pop2.ok());
  EXPECT_TRUE(pop2.status().IsIntegrityViolation())
      << pop2.status().ToString();
}

// --- Randomized fault sweep under the differential checker ------------------

// Seeded random bit flips on Merkle node loads while the differential
// checker replays a mixed workload: the run must end either untouched or in
// a detected violation — silent divergence from the oracle fails the test.
TEST(RandomFaultSweep, NeverSilentWrongDataAcrossSchemes) {
  const IndexKind kinds[] = {IndexKind::kHash, IndexKind::kBTree,
                             IndexKind::kCuckoo};
  for (IndexKind kind : kinds) {
    StoreBundle bundle;
    ASSERT_TRUE(CreateStore(TinyCacheOptions(kind), &bundle).ok());

    ScheduledInjector injector(/*seed=*/1234);
    InjectorScope scope(&injector);
    injector.Arm({.site = fault::Site::kMerkleNodeLoad,
                  .kind = FaultKind::kFlipRandomBit,
                  .trigger_after = 500});

    testing::CheckerConfig config;
    config.gen.seed = 77;
    config.gen.keyspace = 1024;
    config.num_ops = 4000;
    config.prepopulate = 512;
    config.allow_integrity_violation = true;
    config.harness = "fault_injection_test";
    DifferentialChecker checker(config);
    testing::CheckerReport report;
    Status st = checker.Run(bundle.store.get(), &report);
    ASSERT_TRUE(st.ok()) << bundle.store->name() << ": "
                         << report.description;
    // The tiny cache guarantees far more than 500 node loads, so the fault
    // fired and the scheme must have caught it (never silently absorbed).
    ASSERT_EQ(injector.fired(), 1u) << bundle.store->name();
    EXPECT_NE(report.integrity_violation_op, UINT64_MAX)
        << bundle.store->name() << " absorbed an injected flip silently";
  }
}

}  // namespace
}  // namespace aria
