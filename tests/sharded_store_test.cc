// Thread-safety battery for the sharded front-end: concurrent seeded
// stress per scheme with a single-threaded full-state audit against
// per-thread oracles, cross-shard RangeScan edge cases against the
// reference oracle, reader-parallel (shared-lock) Gets on the one config
// whose read path is const, and the multi-threaded driver. The whole file
// is meant to run under ARIA_SANITIZE=thread, where any hole in the
// locking discipline shows up as a data race.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/sharded_store.h"
#include "core/store_factory.h"
#include "obs/invariants.h"
#include "obs/metrics.h"
#include "testing/oracle.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

using testing::ReferenceOracle;

ShardedStore* AsSharded(StoreBundle* bundle) {
  return dynamic_cast<ShardedStore*>(bundle->store.get());
}

// --- Construction and partitioning -----------------------------------------

TEST(ShardedStore, FactoryBuildsShardedVariants) {
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.index = IndexKind::kHash;
  opts.keyspace = 8192;
  opts.num_shards = 4;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  ShardedStore* store = AsSharded(&bundle);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->num_shards(), 4u);
  EXPECT_STREQ(store->name(), "Sharded[4] Aria-H");
  EXPECT_EQ(bundle.label, "Sharded[4] Aria-H");
  EXPECT_FALSE(store->ordered());
  // Each shard is a fully independent instance with its own enclave,
  // allocator and counter area.
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_NE(store->shard_bundle(i).enclave, nullptr);
    ASSERT_NE(store->shard_bundle(i).allocator, nullptr);
    ASSERT_NE(store->shard_bundle(i).counters, nullptr);
  }

  // num_shards == 1 stays a plain store.
  StoreOptions plain = opts;
  plain.num_shards = 1;
  StoreBundle plain_bundle;
  ASSERT_TRUE(CreateStore(plain, &plain_bundle).ok());
  EXPECT_EQ(plain_bundle.label, "Aria-H");
  EXPECT_EQ(AsSharded(&plain_bundle), nullptr);
}

TEST(ShardedStore, ShardHashCoversEveryShard) {
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.index = IndexKind::kHash;
  opts.keyspace = 8192;
  opts.num_shards = 8;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  ShardedStore* store = AsSharded(&bundle);
  ASSERT_NE(store, nullptr);

  std::vector<uint64_t> per_shard(8, 0);
  for (uint64_t id = 0; id < 4096; ++id) {
    uint32_t s = store->ShardOf(MakeKey(id));
    ASSERT_LT(s, 8u);
    // Deterministic.
    ASSERT_EQ(s, store->ShardOf(MakeKey(id)));
    per_shard[s]++;
  }
  for (uint32_t s = 0; s < 8; ++s) {
    // A uniform split would be 512 per shard; just require no starvation.
    EXPECT_GT(per_shard[s], 100u) << "shard " << s;
  }
}

TEST(ShardedStore, SharedReadsRejectedOnMutatingReadPaths) {
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.index = IndexKind::kHash;
  opts.num_shards = 2;
  opts.shard_shared_reads = true;
  StoreBundle bundle;
  Status st = CreateStore(opts, &bundle);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();

  // Baseline hash with the cost model still enabled also mutates paging
  // state on reads — equally rejected.
  opts.scheme = Scheme::kBaseline;
  opts.cost_model.enabled = true;
  StoreBundle bundle2;
  EXPECT_TRUE(CreateStore(opts, &bundle2).IsInvalidArgument());
}

TEST(ShardedStore, RangeScanOnUnorderedSchemeIsInvalid) {
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.index = IndexKind::kHash;
  opts.num_shards = 2;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  ShardedStore* store = AsSharded(&bundle);
  ASSERT_NE(store, nullptr);
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_TRUE(store->RangeScan(MakeKey(0), 10, &out).IsInvalidArgument());
}

// --- Concurrent stress + single-threaded audit ------------------------------

struct StressCase {
  const char* label;
  StoreOptions opts;
  bool ordered;
};

std::vector<StressCase> StressCases() {
  std::vector<StressCase> cases;
  auto base = [] {
    StoreOptions o;
    o.keyspace = 8192;
    o.seed = 42;
    o.num_shards = 4;
    return o;
  };

  StressCase h{"Sharded[4] Aria-H", base(), false};
  h.opts.scheme = Scheme::kAria;
  h.opts.index = IndexKind::kHash;
  // Small per-shard Secure Cache so the stress exercises eviction and
  // re-verification, not just cache hits.
  h.opts.cache_bytes = 32768;
  h.opts.pinned_levels = 0;
  h.opts.stop_swap_enabled = false;
  cases.push_back(h);

  StressCase t{"Sharded[4] Aria-T", base(), true};
  t.opts.scheme = Scheme::kAria;
  t.opts.index = IndexKind::kBTree;
  cases.push_back(t);

  StressCase bp{"Sharded[4] Aria-B+", base(), true};
  bp.opts.scheme = Scheme::kAria;
  bp.opts.index = IndexKind::kBPlusTree;
  cases.push_back(bp);

  StressCase c{"Sharded[4] Aria-C", base(), false};
  c.opts.scheme = Scheme::kAria;
  c.opts.index = IndexKind::kCuckoo;
  cases.push_back(c);

  return cases;
}

// Each worker owns the key ids with id % kThreads == t, so its private
// std::map oracle is authoritative for them; cross-thread interleavings
// still contend on the shard locks because the shard hash ignores the
// id-mod-thread partition.
TEST(ShardedStressTest, ConcurrentOpsThenFullAudit) {
  constexpr uint64_t kThreads = 4;
  constexpr uint64_t kOpsPerThread = 10000;
  constexpr uint64_t kIdsPerThread = 512;
  constexpr size_t kValueSize = 32;

  for (const StressCase& sc : StressCases()) {
    StoreBundle bundle;
    ASSERT_TRUE(CreateStore(sc.opts, &bundle).ok()) << sc.label;
    ShardedStore* store = AsSharded(&bundle);
    ASSERT_NE(store, nullptr) << sc.label;

    std::vector<std::map<uint64_t, uint32_t>> oracles(kThreads);
    std::atomic<uint64_t> errors{0};

    std::vector<std::thread> workers;
    for (uint64_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t]() {
        Random rng(0xC0FFEE + 31 * t);
        std::map<uint64_t, uint32_t>& mine = oracles[t];
        uint32_t version = 0;
        std::string value;
        for (uint64_t i = 0; i < kOpsPerThread; ++i) {
          uint64_t id = t + kThreads * rng.Uniform(kIdsPerThread);
          std::string key = MakeKey(id);
          uint64_t dice = rng.Uniform(100);
          if (dice < 45) {  // Put
            uint32_t v = ++version;
            if (!store->Put(key, MakeValue(id, kValueSize, v)).ok()) {
              errors++;
              return;
            }
            mine[id] = v;
          } else if (dice < 80) {  // Get
            Status st = store->Get(key, &value);
            auto it = mine.find(id);
            if (it == mine.end()) {
              if (!st.IsNotFound()) errors++;
            } else if (!st.ok() ||
                       value != MakeValue(id, kValueSize, it->second)) {
              errors++;
            }
          } else {  // Delete
            Status st = store->Delete(key);
            bool present = mine.erase(id) != 0;
            if (present ? !st.ok() : !st.IsNotFound()) errors++;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    ASSERT_EQ(errors.load(), 0u) << sc.label;

    // Single-threaded audit: the union of the per-thread oracles is the
    // exact expected state.
    uint64_t expected_size = 0;
    std::map<std::string, std::string> merged;
    std::string value;
    for (uint64_t t = 0; t < kThreads; ++t) {
      for (const auto& [id, version] : oracles[t]) {
        expected_size++;
        std::string key = MakeKey(id);
        std::string want = MakeValue(id, kValueSize, version);
        Status st = store->Get(key, &value);
        ASSERT_TRUE(st.ok()) << sc.label << " key " << id << ": "
                             << st.ToString();
        ASSERT_EQ(value, want) << sc.label << " key " << id;
        merged.emplace(std::move(key), std::move(want));
      }
    }
    EXPECT_EQ(store->size(), expected_size) << sc.label;

    // A sample of never-written ids must be absent.
    for (uint64_t id = kThreads * kIdsPerThread + 1;
         id < kThreads * kIdsPerThread + 64; ++id) {
      EXPECT_TRUE(store->Get(MakeKey(id), &value).IsNotFound())
          << sc.label << " key " << id;
    }

    if (sc.ordered) {
      // Full cross-shard scan must equal the merged oracle, in key order.
      std::vector<std::pair<std::string, std::string>> got;
      ASSERT_TRUE(
          store->RangeScan(MakeKey(0), expected_size + 16, &got).ok())
          << sc.label;
      ASSERT_EQ(got.size(), merged.size()) << sc.label;
      auto it = merged.begin();
      for (size_t i = 0; i < got.size(); ++i, ++it) {
        ASSERT_EQ(got[i].first, it->first) << sc.label << " pos " << i;
        ASSERT_EQ(got[i].second, it->second) << sc.label << " pos " << i;
      }
    }

    // After 40k concurrent ops, every per-shard conservation law still
    // balances and the summed shard snapshots reconcile with the aggregate
    // (including live_entries == the oracle-audited size).
    obs::InvariantReport inv = store->CheckInvariants();
    EXPECT_TRUE(inv.ok()) << sc.label << ": " << inv.ToString();
    obs::Snapshot aggregate = bundle.Metrics();
    EXPECT_EQ(aggregate.Get("index.live_entries"), expected_size) << sc.label;
  }
}

// --- Cross-shard RangeScan edge cases ---------------------------------------

TEST(ShardedRangeScan, CrossShardEdgeCasesMatchOracle) {
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.index = IndexKind::kBTree;
  opts.keyspace = 4096;
  opts.num_shards = 8;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  ShardedStore* store = AsSharded(&bundle);
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->ordered());
  ReferenceOracle oracle;

  auto agree = [&](const std::string& start, size_t limit, const char* what) {
    std::vector<std::pair<std::string, std::string>> got, want;
    Status ss = store->RangeScan(start, limit, &got);
    Status os = oracle.RangeScan(start, limit, &want);
    ASSERT_EQ(ss.code(), os.code()) << what;
    EXPECT_EQ(got, want) << what;
  };

  // Every shard empty.
  agree(MakeKey(0), 10, "empty store");

  // Three keys: at least five of the eight shards stay empty, and the merge
  // must skip them cleanly.
  for (uint64_t k : {10u, 20u, 30u}) {
    std::string key = MakeKey(k), value = MakeValue(k, 24);
    ASSERT_TRUE(store->Put(key, value).ok());
    ASSERT_TRUE(oracle.Put(key, value).ok());
  }
  agree(MakeKey(0), 10, "mostly-empty shards");
  agree(MakeKey(100), 10, "start beyond max");
  agree(MakeKey(20), 1, "single key");
  agree(MakeKey(0), 2, "limit truncation across shards");
  agree(MakeKey(0), 0, "zero limit");
  agree(MakeKey(15), 10, "start between keys");

  // Enough keys that every shard holds several: the k-way merge has to
  // interleave runs from all shards, and limits cut across shard
  // boundaries at many positions.
  for (uint64_t k = 100; k < 300; ++k) {
    std::string key = MakeKey(k), value = MakeValue(k, 16);
    ASSERT_TRUE(store->Put(key, value).ok());
    ASSERT_TRUE(oracle.Put(key, value).ok());
  }
  agree(MakeKey(0), 500, "full interleaved scan");
  for (size_t limit : {1u, 7u, 50u, 199u, 203u}) {
    agree(MakeKey(100), limit, "shard-boundary limits");
  }
  agree(MakeKey(150), 500, "mid-range start");

  // Deletions must vanish from the merge.
  for (uint64_t k = 120; k < 140; ++k) {
    ASSERT_TRUE(store->Delete(MakeKey(k)).ok());
    ASSERT_TRUE(oracle.Delete(MakeKey(k)).ok());
  }
  agree(MakeKey(100), 500, "post delete");
}

// --- Shared-lock reader parallelism on the const-read config ----------------

TEST(ShardedSharedReads, ConcurrentReadersSeeConsistentValues) {
  StoreOptions opts;
  opts.scheme = Scheme::kBaseline;
  opts.index = IndexKind::kHash;
  opts.keyspace = 4096;
  opts.num_shards = 4;
  opts.cost_model.enabled = false;  // reads charge nothing => truly const
  opts.shard_shared_reads = true;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  ShardedStore* store = AsSharded(&bundle);
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->shared_reads());

  constexpr uint64_t kKeys = 2000;
  constexpr uint64_t kWriterKeys = 100;  // ids [0, 100) get overwritten
  for (uint64_t id = 0; id < kKeys; ++id) {
    ASSERT_TRUE(store->Put(MakeKey(id), MakeValue(id, 32, 1)).ok());
  }

  // 4 readers share the shard locks on ids the writer never touches, while
  // one writer takes exclusive locks on its own ids. Under TSan this
  // certifies that shared-mode Gets on this config are race-free.
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t]() {
      Random rng(77 + t);
      std::string value;
      for (int i = 0; i < 20000; ++i) {
        uint64_t id = kWriterKeys + rng.Uniform(kKeys - kWriterKeys);
        Status st = store->Get(MakeKey(id), &value);
        if (!st.ok() || value != MakeValue(id, 32, 1)) errors++;
      }
    });
  }
  std::thread writer([&]() {
    Random rng(999);
    for (int i = 0; i < 5000; ++i) {
      uint64_t id = rng.Uniform(kWriterKeys);
      if (!store->Put(MakeKey(id), MakeValue(id, 32, 2)).ok()) {
        errors++;
        return;
      }
    }
  });
  for (auto& r : readers) r.join();
  writer.join();
  ASSERT_EQ(errors.load(), 0u);

  // Post-join: writer ids hold either version 1 or 2 — version 2 once
  // written at least once; everything else is untouched.
  std::string value;
  for (uint64_t id = kWriterKeys; id < kKeys; ++id) {
    ASSERT_TRUE(store->Get(MakeKey(id), &value).ok());
    ASSERT_EQ(value, MakeValue(id, 32, 1)) << id;
  }
  EXPECT_EQ(store->size(), kKeys);
}

// --- Multi-threaded driver ---------------------------------------------------

TEST(ShardedDriver, RunThreadsAggregatesAndModelsMakespan) {
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.index = IndexKind::kHash;
  opts.keyspace = 4096;
  opts.num_shards = 4;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  ShardedStore* store = AsSharded(&bundle);
  ASSERT_NE(store, nullptr);

  Driver driver(/*seed=*/7);
  ASSERT_TRUE(driver.Prepopulate(store, 2048, 32).ok());

  constexpr uint64_t kThreads = 4;
  constexpr uint64_t kOps = 2000;
  YcsbSpec spec;
  spec.keyspace = 2048;
  spec.read_ratio = 0.5;
  spec.value_size = 32;
  spec.distribution = KeyDistribution::kUniform;

  auto gen_for_thread = [&spec](uint64_t t) -> std::function<Op()> {
    auto wl = std::make_shared<YcsbWorkload>([&spec, t] {
      YcsbSpec s = spec;
      s.seed = spec.seed + 7919 * (t + 1);  // private RNG stream per thread
      return s;
    }());
    return [wl]() { return wl->Next(); };
  };

  auto result = driver.RunThreads(store, gen_for_thread, kThreads, kOps);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ThreadRunResult& r = result.value();
  EXPECT_EQ(r.totals.ops, kThreads * kOps);
  EXPECT_EQ(r.totals.gets + r.totals.puts, kThreads * kOps);
  EXPECT_GT(r.totals.gets, 0u);
  EXPECT_GT(r.totals.puts, 0u);
  EXPECT_EQ(r.num_threads, kThreads);
  EXPECT_EQ(r.latency.total(), kThreads * kOps);
  EXPECT_GT(r.latency.PercentileNanos(0.5), 0u);
  EXPECT_LE(r.latency.PercentileNanos(0.5), r.latency.PercentileNanos(0.99));

  // Makespan model invariants: the effective time is bounded below by the
  // busiest shard and above by the serial busy total; SGX charges landed.
  EXPECT_GT(r.totals.sim_seconds, 0.0);
  EXPECT_GT(r.effective_seconds, 0.0);
  EXPECT_GE(r.effective_seconds, r.max_shard_busy_seconds - 1e-12);
  EXPECT_LE(r.effective_seconds, r.total_busy_seconds + 1e-12);
  EXPECT_GE(r.Throughput(),
            static_cast<double>(r.totals.ops) / (r.total_busy_seconds + 1e-9));

  // RunThreads audits the conservation laws after the workers join, so a
  // threaded run doubles as an invariant regression.
  EXPECT_TRUE(r.invariants.ok()) << r.invariants.ToString();
  EXPECT_GE(r.invariants.laws_checked.size(), 6u);
}

TEST(ShardedDriver, LatencyHistogramPercentiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.PercentileNanos(0.5), 0u);
  for (uint64_t i = 0; i < 90; ++i) h.Record(100);     // bucket [64, 127]
  for (uint64_t i = 0; i < 10; ++i) h.Record(100000);  // ~2^17
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.PercentileNanos(0.5), 127u);
  EXPECT_GT(h.PercentileNanos(0.95), 65000u);

  LatencyHistogram other;
  other.Record(100);
  other.Merge(h);
  EXPECT_EQ(other.total(), 101u);
}

}  // namespace
}  // namespace aria
