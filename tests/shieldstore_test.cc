// Tests for the ShieldStore baseline: CRUD, bucket-root maintenance,
// bucket-granularity verification amplification, and tamper detection.
#include <gtest/gtest.h>

#include <map>

#include "baseline/shieldstore.h"
#include "common/random.h"
#include "core/store_factory.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

class ShieldStoreTest : public ::testing::Test {
 protected:
  void Build(uint64_t buckets = 64) {
    StoreOptions opts;
    opts.scheme = Scheme::kShieldStore;
    opts.keyspace = 4096;
    opts.shieldstore_buckets = buckets;
    ASSERT_TRUE(CreateStore(opts, &bundle_).ok());
    store_ = static_cast<ShieldStore*>(bundle_.store.get());
  }

  StoreBundle bundle_;
  ShieldStore* store_ = nullptr;
};

TEST_F(ShieldStoreTest, PutGetDelete) {
  Build();
  ASSERT_TRUE(store_->Put("k1", "v1").ok());
  ASSERT_TRUE(store_->Put("k2", "v2").ok());
  std::string v;
  ASSERT_TRUE(store_->Get("k1", &v).ok());
  EXPECT_EQ(v, "v1");
  ASSERT_TRUE(store_->Delete("k1").ok());
  EXPECT_TRUE(store_->Get("k1", &v).IsNotFound());
  EXPECT_EQ(store_->size(), 1u);
}

TEST_F(ShieldStoreTest, OverwriteInPlaceAndRelocated) {
  Build();
  ASSERT_TRUE(store_->Put("k", "aa").ok());
  ASSERT_TRUE(store_->Put("k", "bb").ok());  // same size: in place
  std::string v;
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, "bb");
  std::string big(300, 'c');
  ASSERT_TRUE(store_->Put("k", big).ok());  // bigger: relocated
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, big);
}

TEST_F(ShieldStoreTest, LongChainsStillCorrect) {
  Build(/*buckets=*/1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), MakeValue(i, 16)).ok());
  }
  std::string v;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store_->Get(MakeKey(i), &v).ok()) << i;
    ASSERT_EQ(v, MakeValue(i, 16));
  }
}

TEST_F(ShieldStoreTest, VerificationAmplificationGrowsWithChain) {
  Build(/*buckets=*/1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store_->Put(MakeKey(i), "v").ok());
  }
  uint64_t scanned_before = store_->stats().entries_scanned;
  std::string v;
  ASSERT_TRUE(store_->Get(MakeKey(0), &v).ok());
  // One Get over a 50-entry chain must scan all 50 MACs.
  EXPECT_GE(store_->stats().entries_scanned - scanned_before, 50u);
}

TEST_F(ShieldStoreTest, PutUpdatesRootGetDoesNot) {
  Build();
  ASSERT_TRUE(store_->Put("a", "1").ok());
  uint64_t roots = store_->stats().root_updates;
  std::string v;
  ASSERT_TRUE(store_->Get("a", &v).ok());
  EXPECT_EQ(store_->stats().root_updates, roots);
  ASSERT_TRUE(store_->Put("a", "2").ok());
  EXPECT_EQ(store_->stats().root_updates, roots + 1);
}

TEST_F(ShieldStoreTest, TrustedBytesMatchBucketCount) {
  Build(/*buckets=*/128);
  EXPECT_EQ(store_->trusted_bytes(), 128u * 16);
}

TEST_F(ShieldStoreTest, OutOfPlaceUpdateMode) {
  StoreOptions opts;
  opts.scheme = Scheme::kShieldStore;
  opts.keyspace = 2048;
  opts.shieldstore_buckets = 32;
  opts.out_of_place_updates = true;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  auto* store = bundle.store.get();
  std::string v;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(store->Put(MakeKey(i), MakeValue(i, 24, round)).ok());
    }
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Get(MakeKey(i), &v).ok()) << i;
    ASSERT_EQ(v, MakeValue(i, 24, 4));
  }
  EXPECT_EQ(store->size(), 100u);
}

TEST_F(ShieldStoreTest, RandomizedAgainstStdMap) {
  Build(/*buckets=*/16);
  Random rng(31337);
  std::map<std::string, std::string> model;
  std::string v;
  for (int step = 0; step < 6000; ++step) {
    std::string key = MakeKey(rng.Uniform(200));
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      std::string value = MakeValue(step, 1 + rng.Uniform(80));
      ASSERT_TRUE(store_->Put(key, value).ok()) << step;
      model[key] = value;
    } else if (dice < 0.8) {
      Status st = store_->Get(key, &v);
      auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_TRUE(st.ok()) << step << " " << st.ToString();
        ASSERT_EQ(v, it->second);
      } else {
        ASSERT_TRUE(st.IsNotFound()) << step;
      }
    } else {
      Status st = store_->Delete(key);
      ASSERT_EQ(model.erase(key) > 0, st.ok()) << step;
    }
  }
}

}  // namespace
}  // namespace aria
