// Tests for the SGX enclave simulator: EPC residency, CLOCK paging, MEE
// charges, edge-call accounting, and the disabled ("w/o SGX") mode.
#include <gtest/gtest.h>

#include <vector>

#include "sgxsim/cost_model.h"
#include "sgxsim/edge_calls.h"
#include "sgxsim/enclave_runtime.h"

namespace aria::sgx {
namespace {

constexpr uint64_t kPage = CostModel::kPageSize;

TEST(EnclaveRuntime, AllocationAccounting) {
  EnclaveRuntime rt(16 * kPage);
  void* a = rt.TrustedAlloc(1000);
  void* b = rt.TrustedAlloc(5000);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(rt.trusted_bytes_in_use(), 6000u);
  EXPECT_EQ(rt.stats().trusted_bytes_peak, 6000u);
  rt.TrustedFree(a);
  EXPECT_EQ(rt.trusted_bytes_in_use(), 5000u);
  EXPECT_EQ(rt.stats().trusted_bytes_peak, 6000u);
  rt.TrustedFree(b);
  EXPECT_EQ(rt.trusted_bytes_in_use(), 0u);
}

TEST(EnclaveRuntime, TrustedAllocZeroInitialized) {
  EnclaveRuntime rt(16 * kPage);
  auto* p = static_cast<uint8_t*>(rt.TrustedAlloc(256));
  for (int i = 0; i < 256; ++i) EXPECT_EQ(p[i], 0);
  rt.TrustedFree(p);
}

TEST(EnclaveRuntime, NoSwapsWithinBudget) {
  EnclaveRuntime rt(64 * kPage);
  auto* p = static_cast<uint8_t*>(rt.TrustedAlloc(32 * kPage));
  for (int round = 0; round < 3; ++round) {
    for (uint64_t off = 0; off < 32 * kPage; off += kPage) {
      rt.TouchRead(p + off, 8);
    }
  }
  EXPECT_EQ(rt.stats().page_swaps, 0u);
  EXPECT_GT(rt.stats().epc_page_hits, 0u);
  rt.TrustedFree(p);
}

TEST(EnclaveRuntime, SwapsWhenOverBudget) {
  EnclaveRuntime rt(8 * kPage);
  auto* p = static_cast<uint8_t*>(rt.TrustedAlloc(32 * kPage));
  // Two full sequential sweeps: the second must evict.
  for (int round = 0; round < 2; ++round) {
    for (uint64_t off = 0; off < 32 * kPage; off += kPage) {
      rt.TouchRead(p + off, 8);
    }
  }
  EXPECT_GT(rt.stats().page_swaps, 0u);
  EXPECT_GT(rt.stats().charged_cycles, 0u);
  rt.TrustedFree(p);
}

TEST(EnclaveRuntime, ClockKeepsHotPagesResident) {
  EnclaveRuntime rt(8 * kPage);
  auto* p = static_cast<uint8_t*>(rt.TrustedAlloc(64 * kPage));
  // Warm a single hot page, then stream over cold pages. The hot page's
  // reference bit should protect it: touching it repeatedly between cold
  // sweeps must incur (almost) no additional swaps for it.
  for (uint64_t off = 0; off < 64 * kPage; off += kPage) {
    rt.TouchRead(p + off, 8);  // cold stream fills and churns the EPC
  }
  uint64_t swaps_before = rt.stats().page_swaps;
  for (int i = 0; i < 1000; ++i) {
    rt.TouchRead(p, 8);  // hot page
  }
  // After the first (possible) fault the hot page stays resident.
  EXPECT_LE(rt.stats().page_swaps - swaps_before, 1u);
  rt.TrustedFree(p);
}

TEST(EnclaveRuntime, MeeChargesPerCacheLine) {
  CostModel model;
  EnclaveRuntime rt(64 * kPage, model);
  auto* p = static_cast<uint8_t*>(rt.TrustedAlloc(kPage));
  rt.TouchRead(p, 64);  // one line
  uint64_t one_line = rt.stats().charged_cycles;
  EXPECT_EQ(one_line, model.mee_read_cycles_per_line);
  rt.TouchRead(p, 64 * 10);  // ten lines
  EXPECT_EQ(rt.stats().charged_cycles, one_line + 10 * model.mee_read_cycles_per_line);
  EXPECT_EQ(rt.stats().mee_lines_read, 11u);
  rt.TrustedFree(p);
}

TEST(EnclaveRuntime, WriteChargesDifferFromReads) {
  CostModel model;
  EnclaveRuntime rt(64 * kPage, model);
  auto* p = static_cast<uint8_t*>(rt.TrustedAlloc(kPage));
  rt.TouchWrite(p, 64);
  EXPECT_EQ(rt.stats().charged_cycles, model.mee_write_cycles_per_line);
  EXPECT_EQ(rt.stats().mee_lines_written, 1u);
  rt.TrustedFree(p);
}

TEST(EnclaveRuntime, UnalignedTouchSpansLines) {
  CostModel model;
  EnclaveRuntime rt(64 * kPage, model);
  auto* p = static_cast<uint8_t*>(rt.TrustedAlloc(kPage));
  // 8 bytes straddling a line boundary = 2 lines.
  rt.TouchRead(p + 60, 8);
  EXPECT_EQ(rt.stats().mee_lines_read, 2u);
  rt.TrustedFree(p);
}

TEST(EnclaveRuntime, EdgeCallCosts) {
  CostModel model;
  EnclaveRuntime rt(64 * kPage, model);
  rt.Ecall();
  rt.Ocall();
  EXPECT_EQ(rt.stats().ecalls, 1u);
  EXPECT_EQ(rt.stats().ocalls, 1u);
  EXPECT_EQ(rt.stats().charged_cycles, model.ecall_cycles + model.ocall_cycles);
}

TEST(EnclaveRuntime, DisabledModelChargesNothing) {
  CostModel model;
  model.enabled = false;
  EnclaveRuntime rt(4 * kPage, model);
  auto* p = static_cast<uint8_t*>(rt.TrustedAlloc(32 * kPage));
  for (uint64_t off = 0; off < 32 * kPage; off += kPage) rt.TouchRead(p + off, 64);
  rt.Ecall();
  rt.Ocall();
  rt.Charge(1234);
  EXPECT_EQ(rt.stats().charged_cycles, 0u);
  EXPECT_EQ(rt.stats().page_swaps, 0u);
  // Events are still counted even though they cost nothing.
  EXPECT_EQ(rt.stats().ecalls, 1u);
  rt.TrustedFree(p);
}

TEST(EnclaveRuntime, SimulatedSecondsConversion) {
  CostModel model;
  model.cpu_freq_hz = 1'000'000'000;  // 1 GHz for easy math
  EnclaveRuntime rt(64 * kPage, model);
  rt.Charge(2'000'000'000);
  EXPECT_DOUBLE_EQ(rt.SimulatedSeconds(), 2.0);
}

TEST(EnclaveRuntime, FreeReleasesResidency) {
  EnclaveRuntime rt(8 * kPage);
  auto* a = static_cast<uint8_t*>(rt.TrustedAlloc(8 * kPage));
  for (uint64_t off = 0; off < 8 * kPage; off += kPage) rt.TouchRead(a + off, 8);
  rt.TrustedFree(a);
  // A fresh allocation should fill freed slots without swapping.
  auto* b = static_cast<uint8_t*>(rt.TrustedAlloc(8 * kPage));
  uint64_t swaps = rt.stats().page_swaps;
  for (uint64_t off = 0; off < 8 * kPage; off += kPage) rt.TouchRead(b + off, 8);
  EXPECT_EQ(rt.stats().page_swaps, swaps);
  rt.TrustedFree(b);
}

TEST(EdgeCalls, GuardsChargeAndCount) {
  CostModel model;
  EnclaveRuntime rt(64 * kPage, model);
  {
    OcallGuard g(&rt);
    g.CopyParams(100);
  }
  {
    EcallGuard g(&rt);
    g.CopyParams(50);
  }
  EXPECT_EQ(rt.stats().ocalls, 1u);
  EXPECT_EQ(rt.stats().ecalls, 1u);
  EXPECT_EQ(rt.stats().charged_cycles,
            model.ocall_cycles + model.ecall_cycles + 150);
}

TEST(SgxStats, DeltaSubtracts) {
  SgxStats a;
  a.charged_cycles = 100;
  a.page_swaps = 5;
  SgxStats b = a;
  b.charged_cycles = 300;
  b.page_swaps = 9;
  SgxStats d = b.Delta(a);
  EXPECT_EQ(d.charged_cycles, 200u);
  EXPECT_EQ(d.page_swaps, 4u);
}

}  // namespace
}  // namespace aria::sgx
