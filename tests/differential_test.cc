// Differential model checking: every scheme store_factory can build is
// driven against the std::map reference oracle under one shared seed —
// 10k randomized Put/Get/Delete/RangeScan ops per scheme, op-by-op status
// and data comparison, plus targeted RangeScan edge cases for the ordered
// stores. A forced divergence must produce a one-line ARIA_REPLAY_SEED
// recipe that replays the exact failing schedule.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/sharded_store.h"
#include "core/store_factory.h"
#include "obs/invariants.h"
#include "testing/fault_injector.h"
#include "testing/model_checker.h"
#include "testing/op_generator.h"
#include "testing/oracle.h"
#include "testing/replay.h"
#include "workload/ycsb.h"

namespace aria {
namespace {

using testing::CheckerConfig;
using testing::CheckerReport;
using testing::DifferentialChecker;
using testing::DiffOp;
using testing::OpGenerator;
using testing::OpGeneratorConfig;
using testing::ReferenceOracle;

struct SchemeCase {
  const char* label;
  StoreOptions opts;
  bool ordered;
};

std::vector<SchemeCase> AllSchemes() {
  std::vector<SchemeCase> cases;
  auto base = [] {
    StoreOptions o;
    o.keyspace = 4096;
    o.seed = 42;
    return o;
  };

  SchemeCase aria_h{"Aria-H", base(), false};
  aria_h.opts.scheme = Scheme::kAria;
  aria_h.opts.index = IndexKind::kHash;
  // Small Secure Cache so the schedule exercises eviction and re-verify.
  aria_h.opts.cache_bytes = 8192;
  aria_h.opts.pinned_levels = 0;
  aria_h.opts.stop_swap_enabled = false;
  cases.push_back(aria_h);

  SchemeCase aria_t{"Aria-T", base(), true};
  aria_t.opts.scheme = Scheme::kAria;
  aria_t.opts.index = IndexKind::kBTree;
  cases.push_back(aria_t);

  SchemeCase aria_bp{"Aria-B+", base(), true};
  aria_bp.opts.scheme = Scheme::kAria;
  aria_bp.opts.index = IndexKind::kBPlusTree;
  cases.push_back(aria_bp);

  SchemeCase aria_c{"Aria-C", base(), false};
  aria_c.opts.scheme = Scheme::kAria;
  aria_c.opts.index = IndexKind::kCuckoo;
  cases.push_back(aria_c);

  SchemeCase nocache{"AriaNoCache-H", base(), false};
  nocache.opts.scheme = Scheme::kAriaNoCache;
  nocache.opts.index = IndexKind::kHash;
  cases.push_back(nocache);

  SchemeCase shield{"ShieldStore", base(), false};
  shield.opts.scheme = Scheme::kShieldStore;
  cases.push_back(shield);

  SchemeCase base_h{"Baseline-H", base(), false};
  base_h.opts.scheme = Scheme::kBaseline;
  base_h.opts.index = IndexKind::kHash;
  cases.push_back(base_h);

  SchemeCase base_t{"Baseline-T", base(), true};
  base_t.opts.scheme = Scheme::kBaseline;
  base_t.opts.index = IndexKind::kBTree;
  cases.push_back(base_t);

  // Sharded front-end variants go through the same factory path and the
  // same oracle: partitioning plus per-shard locking must be invisible at
  // the KVStore interface.
  SchemeCase sh_h{"Sharded[4] Aria-H", base(), false};
  sh_h.opts.scheme = Scheme::kAria;
  sh_h.opts.index = IndexKind::kHash;
  sh_h.opts.num_shards = 4;
  sh_h.opts.cache_bytes = 32768;  // 8 KB per shard keeps evictions coming
  sh_h.opts.pinned_levels = 0;
  sh_h.opts.stop_swap_enabled = false;
  cases.push_back(sh_h);

  SchemeCase sh_t{"Sharded[4] Aria-T", base(), true};
  sh_t.opts.scheme = Scheme::kAria;
  sh_t.opts.index = IndexKind::kBTree;
  sh_t.opts.num_shards = 4;
  cases.push_back(sh_t);

  SchemeCase sh_b{"Sharded[2] Baseline-H shared-reads", base(), false};
  sh_b.opts.scheme = Scheme::kBaseline;
  sh_b.opts.index = IndexKind::kHash;
  sh_b.opts.num_shards = 2;
  sh_b.opts.cost_model.enabled = false;
  sh_b.opts.shard_shared_reads = true;
  cases.push_back(sh_b);

  // Optimistic (epoch-protected lock-free GET) variants: the checker runs
  // single-threaded, so every probe validates on its first try — what this
  // matrix pins down is that the lock-free layouts (byte-atomic overwrites,
  // CoW publication, retire-instead-of-free) return byte-identical results
  // and survive the oracle's delete/overwrite churn without leaking retired
  // blocks (ASan covers the latter in the sanitizer run).
  SchemeCase opt_b{"Sharded[2] Baseline-H optimistic", base(), false};
  opt_b.opts.scheme = Scheme::kBaseline;
  opt_b.opts.index = IndexKind::kHash;
  opt_b.opts.num_shards = 2;
  opt_b.opts.read_mode = ReadMode::kOptimistic;
  cases.push_back(opt_b);

  SchemeCase opt_nc{"Sharded[2] AriaNoCache-H optimistic", base(), false};
  opt_nc.opts.scheme = Scheme::kAriaNoCache;
  opt_nc.opts.index = IndexKind::kHash;
  opt_nc.opts.num_shards = 2;
  opt_nc.opts.read_mode = ReadMode::kOptimistic;
  cases.push_back(opt_nc);

  // Aria proper declines lock-free probes (Secure Cache reads mutate the
  // CLOCK state), so optimistic mode here exercises the fallback-only
  // corner: every GET must demote gracefully and still match the oracle.
  SchemeCase opt_a{"Sharded[4] Aria-H optimistic", base(), false};
  opt_a.opts.scheme = Scheme::kAria;
  opt_a.opts.index = IndexKind::kHash;
  opt_a.opts.num_shards = 4;
  opt_a.opts.cache_bytes = 32768;
  opt_a.opts.pinned_levels = 0;
  opt_a.opts.stop_swap_enabled = false;
  opt_a.opts.read_mode = ReadMode::kOptimistic;
  cases.push_back(opt_a);

  // num_shards == 1 builds no ShardedStore front-end: read_mode still
  // flips the underlying stores into their lock-free layouts, which the
  // locked Get path must serve identically.
  SchemeCase lf_b{"Baseline-H lockfree-layout", base(), false};
  lf_b.opts.scheme = Scheme::kBaseline;
  lf_b.opts.index = IndexKind::kHash;
  lf_b.opts.read_mode = ReadMode::kOptimistic;
  cases.push_back(lf_b);

  SchemeCase lf_nc{"AriaNoCache-H lockfree-layout", base(), false};
  lf_nc.opts.scheme = Scheme::kAriaNoCache;
  lf_nc.opts.index = IndexKind::kHash;
  lf_nc.opts.read_mode = ReadMode::kOptimistic;
  cases.push_back(lf_nc);

  return cases;
}

// --- 10k randomized ops per scheme vs the oracle ----------------------------

TEST(Differential, EverySchemeMatchesOracleOver10kOps) {
  for (const SchemeCase& sc : AllSchemes()) {
    StoreBundle bundle;
    ASSERT_TRUE(CreateStore(sc.opts, &bundle).ok()) << sc.label;

    CheckerConfig config;
    config.gen.seed = 20260805;
    config.gen.keyspace = 1024;
    config.gen.scans = sc.ordered;
    config.num_ops = 10000;
    config.prepopulate = 512;
    DifferentialChecker checker(config);
    CheckerReport report;
    Status st = checker.Run(bundle.store.get(), &report);
    EXPECT_TRUE(st.ok()) << sc.label << ": " << report.description << "\n  "
                         << report.replay;
    EXPECT_EQ(report.ops_executed, config.num_ops) << sc.label;
    // The mix must actually have exercised every op type.
    EXPECT_GT(report.puts, 0u) << sc.label;
    EXPECT_GT(report.gets, 0u) << sc.label;
    EXPECT_GT(report.deletes, 0u) << sc.label;
    if (sc.ordered) {
      EXPECT_GT(report.scans, 0u) << sc.label;
    }

    // The randomized schedule doubles as an invariant workload: after 10k
    // ops every cross-layer conservation law must still balance.
    obs::InvariantReport inv = bundle.CheckInvariants();
    EXPECT_TRUE(inv.ok()) << sc.label << ": " << inv.ToString();
  }
}

// --- multi-key atomic batches vs the oracle ---------------------------------

// Same harness with a quarter of the schedule replaced by MULTIGET /
// MULTIPUT / ATOMIC_RMW batches (1-8 keys, duplicates allowed). Sharded
// stores route them through ExecuteAtomicBatch — both read modes and the
// shared-read config take their distinct locking branches — while plain
// stores take the sequential degradation, which must be indistinguishable
// at this single-threaded interface.
TEST(Differential, MultiKeyBatchesMatchOracleAcrossShardedConfigs) {
  std::vector<SchemeCase> cases;
  for (const SchemeCase& sc : AllSchemes()) {
    // Every sharded config (locked / optimistic / shared-reads) plus one
    // unsharded store for the degradation path.
    if (sc.opts.num_shards > 1 ||
        std::string(sc.label) == "Baseline-H") {
      cases.push_back(sc);
    }
  }
  ASSERT_GE(cases.size(), 5u);

  for (const SchemeCase& sc : cases) {
    StoreBundle bundle;
    ASSERT_TRUE(CreateStore(sc.opts, &bundle).ok()) << sc.label;

    CheckerConfig config;
    config.gen.seed = 20260808;
    config.gen.keyspace = 1024;
    config.gen.scans = sc.ordered;
    config.gen.multi_fraction = 0.25;
    config.gen.max_batch_keys = 8;
    config.num_ops = 6000;
    config.prepopulate = 512;
    DifferentialChecker checker(config);
    CheckerReport report;
    Status st = checker.Run(bundle.store.get(), &report);
    EXPECT_TRUE(st.ok()) << sc.label << ": " << report.description << "\n  "
                         << report.replay;
    EXPECT_EQ(report.ops_executed, config.num_ops) << sc.label;
    EXPECT_GT(report.multis, 0u) << sc.label;
    EXPECT_GT(report.multi_ops, report.multis) << sc.label;

    // Sharded stores must have actually taken the atomic-batch path, and
    // its conservation law (admitted == applied + rolled_back, MT passes
    // <= shard touches) must balance along with every other law.
    obs::Snapshot snap = bundle.Metrics();
    if (sc.opts.num_shards > 1) {
      EXPECT_EQ(snap.Get("core.batch_ops_admitted"), report.multi_ops)
          << sc.label;
      EXPECT_EQ(snap.Get("core.batch_ops_applied"), report.multi_ops)
          << sc.label;
      EXPECT_EQ(snap.Get("core.batch_ops_rolled_back"), 0u) << sc.label;
      EXPECT_LE(snap.Get("core.batch_mt_update_passes"),
                snap.Get("core.batch_shard_touches"))
          << sc.label;
    }
    obs::InvariantReport inv = bundle.CheckInvariants();
    EXPECT_TRUE(inv.ok()) << sc.label << ": " << inv.ToString();
  }
}

// --- RangeScan edge cases for every ordered scheme --------------------------

void ExpectScansAgree(OrderedKVStore* store, const ReferenceOracle& oracle,
                      const std::string& start, size_t limit,
                      const char* label, const char* what) {
  std::vector<std::pair<std::string, std::string>> got, want;
  Status ss = store->RangeScan(start, limit, &got);
  Status os = oracle.RangeScan(start, limit, &want);
  ASSERT_EQ(ss.code(), os.code()) << label << ": " << what;
  EXPECT_EQ(got, want) << label << ": " << what;
}

TEST(Differential, RangeScanEdgeCasesMatchOracle) {
  for (const SchemeCase& sc : AllSchemes()) {
    if (!sc.ordered) continue;
    StoreBundle bundle;
    ASSERT_TRUE(CreateStore(sc.opts, &bundle).ok()) << sc.label;
    auto* store = dynamic_cast<OrderedKVStore*>(bundle.store.get());
    ASSERT_NE(store, nullptr) << sc.label;
    ReferenceOracle oracle;

    // Scan of a completely empty store.
    ExpectScansAgree(store, oracle, MakeKey(0), 10, sc.label, "empty store");

    for (uint64_t k : {10u, 20u, 30u}) {
      std::string key = MakeKey(k), value = MakeValue(k, 24);
      ASSERT_TRUE(store->Put(key, value).ok()) << sc.label;
      ASSERT_TRUE(oracle.Put(key, value).ok());
    }

    // Empty range: start beyond the largest key.
    ExpectScansAgree(store, oracle, MakeKey(100), 10, sc.label,
                     "start beyond max");
    // Single key: limit 1 starting exactly on a key.
    ExpectScansAgree(store, oracle, MakeKey(20), 1, sc.label, "single key");
    // Limit-truncated: more matching keys than the limit.
    ExpectScansAgree(store, oracle, MakeKey(0), 2, sc.label,
                     "limit truncation");
    // Zero limit.
    ExpectScansAgree(store, oracle, MakeKey(0), 0, sc.label, "zero limit");
    // Start between keys (no exact match).
    ExpectScansAgree(store, oracle, MakeKey(15), 10, sc.label,
                     "start between keys");

    // Post-delete: the deleted key must vanish from scans.
    ASSERT_TRUE(store->Delete(MakeKey(20)).ok()) << sc.label;
    ASSERT_TRUE(oracle.Delete(MakeKey(20)).ok());
    ExpectScansAgree(store, oracle, MakeKey(0), 10, sc.label, "post delete");
  }
}

// --- Fault injection: a failing shard must not poison its siblings ----------

TEST(Differential, AllocFailureInOneShardDoesNotPoisonSiblings) {
  StoreOptions opts;
  opts.scheme = Scheme::kAria;
  opts.index = IndexKind::kHash;
  opts.keyspace = 4096;
  opts.num_shards = 4;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  auto* sharded = dynamic_cast<ShardedStore*>(bundle.store.get());
  ASSERT_NE(sharded, nullptr);

  constexpr uint64_t kBaselineKeys = 256;
  for (uint64_t id = 0; id < kBaselineKeys; ++id) {
    ASSERT_TRUE(sharded->Put(MakeKey(id), MakeValue(id, 32)).ok());
  }

  // Fresh key ids, bucketed by the shard they hash to.
  std::vector<std::vector<uint64_t>> fresh(4);
  for (uint64_t id = 100000; id < 100400; ++id) {
    fresh[sharded->ShardOf(MakeKey(id))].push_back(id);
  }
  for (uint32_t s = 0; s < 4; ++s) ASSERT_GE(fresh[s].size(), 8u) << s;

  // While armed, every untrusted allocation fails — but only shard 0 is
  // driven, so only shard 0 experiences the outage.
  {
    aria::testing::ScheduledInjector injector(/*seed=*/7);
    aria::testing::InjectorScope scope(&injector);
    injector.Arm({.site = fault::Site::kUntrustedAlloc,
                  .kind = aria::testing::FaultKind::kFailAlloc,
                  .repeat = true});
    for (size_t i = 0; i < 8; ++i) {
      Status st = sharded->Put(MakeKey(fresh[0][i]), MakeValue(fresh[0][i], 32));
      EXPECT_TRUE(st.IsCapacityExceeded()) << st.ToString();
    }
    EXPECT_GE(injector.fired(), 8u);
  }

  // Siblings: pre-existing data is intact everywhere (including the shard
  // that failed), the failed keys never became visible, and every shard —
  // shard 0 included — accepts writes again once the outage clears.
  std::string value;
  for (uint64_t id = 0; id < kBaselineKeys; ++id) {
    Status st = sharded->Get(MakeKey(id), &value);
    ASSERT_TRUE(st.ok()) << "key " << id << ": " << st.ToString();
    ASSERT_EQ(value, MakeValue(id, 32)) << "key " << id;
  }
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(sharded->Get(MakeKey(fresh[0][i]), &value).IsNotFound());
  }
  for (uint32_t s = 0; s < 4; ++s) {
    uint64_t id = fresh[s].back();
    ASSERT_TRUE(sharded->Put(MakeKey(id), MakeValue(id, 32)).ok()) << s;
    ASSERT_TRUE(sharded->Get(MakeKey(id), &value).ok()) << s;
    EXPECT_EQ(value, MakeValue(id, 32)) << s;
  }

  // Even the shard that weathered the outage keeps balanced books: failed
  // inserts roll their fetched counter back, so every conservation law —
  // including record-counter — still holds across all four shards.
  obs::InvariantReport inv = bundle.CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

// --- Forced failure reproduces via ARIA_REPLAY_SEED -------------------------

// KVStore wrapper that corrupts the result of the Nth successful Get —
// a deterministic "bug" for the checker to find and for the replay seed to
// reproduce.
class LyingStore : public KVStore {
 public:
  LyingStore(KVStore* inner, uint64_t lie_on_get)
      : inner_(inner), lie_on_get_(lie_on_get) {}

  Status Put(Slice key, Slice value) override {
    return inner_->Put(key, value);
  }
  Status Get(Slice key, std::string* value) override {
    Status st = inner_->Get(key, value);
    if (st.ok() && ++ok_gets_ == lie_on_get_ && !value->empty()) {
      (*value)[0] ^= 0x01;
    }
    return st;
  }
  Status Delete(Slice key) override { return inner_->Delete(key); }
  const char* name() const override { return "LyingStore"; }
  uint64_t size() const override { return inner_->size(); }

 private:
  KVStore* inner_;
  uint64_t lie_on_get_;
  uint64_t ok_gets_ = 0;
};

TEST(Replay, ForcedFailureReproducesViaReplaySeed) {
  unsetenv(testing::kReplaySeedEnv);
  CheckerConfig config;
  config.gen.seed = 555;
  config.gen.keyspace = 256;
  config.num_ops = 2000;
  config.prepopulate = 128;

  auto run_once = [&config](uint64_t config_seed, CheckerReport* report) {
    CheckerConfig c = config;
    c.gen.seed = config_seed;
    StoreOptions opts;
    opts.scheme = Scheme::kBaseline;
    opts.keyspace = 4096;
    opts.seed = 42;
    StoreBundle bundle;
    Status st = CreateStore(opts, &bundle);
    if (!st.ok()) return st;
    LyingStore liar(bundle.store.get(), /*lie_on_get=*/137);
    DifferentialChecker checker(c);
    return checker.Run(&liar, report);
  };

  CheckerReport first;
  Status st = run_once(555, &first);
  ASSERT_FALSE(st.ok());
  ASSERT_NE(first.failing_op, UINT64_MAX);
  EXPECT_EQ(first.seed, 555u);
  // The report carries a one-line replay recipe naming the exact seed.
  EXPECT_NE(first.replay.find("ARIA_REPLAY_SEED=555"), std::string::npos)
      << first.replay;
  EXPECT_NE(st.ToString().find("ARIA_REPLAY_SEED=555"), std::string::npos)
      << st.ToString();

  // Rerun with a DIFFERENT configured seed but ARIA_REPLAY_SEED set: the
  // env override must reproduce the identical failing schedule.
  ASSERT_EQ(setenv(testing::kReplaySeedEnv, "555", 1), 0);
  CheckerReport replayed;
  Status st2 = run_once(/*config_seed=*/777, &replayed);
  unsetenv(testing::kReplaySeedEnv);
  ASSERT_FALSE(st2.ok());
  EXPECT_EQ(replayed.seed, 555u);
  EXPECT_EQ(replayed.failing_op, first.failing_op);
  EXPECT_EQ(replayed.description, first.description);

  // Without the override, seed 777 follows a different schedule (the lie
  // lands elsewhere, so the failing op differs or the values happen to
  // collide — either way the run is independent of the seed-555 one).
  CheckerReport other;
  Status st3 = run_once(/*config_seed=*/777, &other);
  ASSERT_FALSE(st3.ok());
  EXPECT_EQ(other.seed, 777u);
}

// --- Generator determinism --------------------------------------------------

TEST(Replay, SchedulesAreBitReproducible) {
  OpGeneratorConfig config;
  config.seed = 99;
  config.keyspace = 512;
  config.scans = true;
  OpGenerator a(config), b(config);
  for (int i = 0; i < 10000; ++i) {
    DiffOp oa = a.Next(), ob = b.Next();
    ASSERT_EQ(static_cast<int>(oa.type), static_cast<int>(ob.type)) << i;
    ASSERT_EQ(oa.key_id, ob.key_id) << i;
    ASSERT_EQ(oa.version, ob.version) << i;
    ASSERT_EQ(oa.value_size, ob.value_size) << i;
    ASSERT_EQ(oa.scan_limit, ob.scan_limit) << i;
  }

  OpGeneratorConfig other = config;
  other.seed = 100;
  OpGenerator c(config), d(other);
  bool diverged = false;
  for (int i = 0; i < 1000 && !diverged; ++i) {
    DiffOp oc = c.Next(), od = d.Next();
    diverged = oc.type != od.type || oc.key_id != od.key_id ||
               oc.value_size != od.value_size;
  }
  EXPECT_TRUE(diverged) << "seeds 99 and 100 produced identical schedules";
}

TEST(Replay, EnvSeedParsing) {
  unsetenv(testing::kReplaySeedEnv);
  uint64_t seed = 0;
  EXPECT_FALSE(testing::ReplaySeedFromEnv(&seed));
  EXPECT_EQ(testing::EffectiveSeed(41), 41u);

  ASSERT_EQ(setenv(testing::kReplaySeedEnv, "123456789", 1), 0);
  EXPECT_TRUE(testing::ReplaySeedFromEnv(&seed));
  EXPECT_EQ(seed, 123456789u);
  EXPECT_EQ(testing::EffectiveSeed(41), 123456789u);

  ASSERT_EQ(setenv(testing::kReplaySeedEnv, "not-a-number", 1), 0);
  EXPECT_FALSE(testing::ReplaySeedFromEnv(&seed));
  EXPECT_EQ(testing::EffectiveSeed(41), 41u);
  unsetenv(testing::kReplaySeedEnv);
}

}  // namespace
}  // namespace aria
