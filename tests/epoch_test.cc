// Epoch-manager unit battery (DESIGN.md §14): reclamation safety
// (a retired object is freed only after every reader pinned before the
// retire has exited), slot exhaustion (Enter degrades to an inactive guard
// instead of blocking), FIFO retire-list draining, shutdown leak-freedom,
// and a seeded 8-thread churn loop that ASan/TSan verify for use-after-free
// and data races.
#include "core/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"

namespace aria::epoch {
namespace {

TEST(EpochManager, EpochStartsAboveZeroAndAdvances) {
  EpochManager mgr;
  const uint64_t e0 = mgr.current_epoch();
  EXPECT_GE(e0, 1u);  // 0 is reserved for "slot free"
  EXPECT_EQ(mgr.AdvanceAfterRetire(), e0 + 1);
  EXPECT_EQ(mgr.current_epoch(), e0 + 1);
}

TEST(EpochManager, GuardPinsTheCurrentEpoch) {
  EpochManager mgr;
  EXPECT_EQ(mgr.MinActiveEpoch(), UINT64_MAX);  // no readers
  EXPECT_EQ(mgr.active_slots(), 0u);

  EpochManager::Guard g = mgr.Enter();
  ASSERT_TRUE(g.active());
  EXPECT_EQ(g.epoch(), mgr.current_epoch());
  EXPECT_EQ(mgr.MinActiveEpoch(), g.epoch());
  EXPECT_EQ(mgr.active_slots(), 1u);

  g.Release();
  EXPECT_FALSE(g.active());
  EXPECT_EQ(mgr.MinActiveEpoch(), UINT64_MAX);
  EXPECT_EQ(mgr.active_slots(), 0u);
  g.Release();  // idempotent
}

TEST(EpochManager, GuardMoveTransfersTheSlot) {
  EpochManager mgr;
  EpochManager::Guard a = mgr.Enter();
  ASSERT_TRUE(a.active());
  EpochManager::Guard b = std::move(a);
  EXPECT_FALSE(a.active());
  EXPECT_TRUE(b.active());
  EXPECT_EQ(mgr.active_slots(), 1u);
  b.Release();
  EXPECT_EQ(mgr.active_slots(), 0u);
}

TEST(EpochManager, ReclaimOnlyAfterAllPinnedReadersExit) {
  EpochManager mgr;
  // Two readers pin the pre-retire epoch.
  EpochManager::Guard r1 = mgr.Enter();
  EpochManager::Guard r2 = mgr.Enter();
  ASSERT_TRUE(r1.active());
  ASSERT_TRUE(r2.active());

  // Writer unlinks an object and retires it at the post-advance epoch.
  const uint64_t retire_epoch = mgr.AdvanceAfterRetire();
  EXPECT_FALSE(mgr.SafeToReclaim(retire_epoch));

  r1.Release();
  EXPECT_FALSE(mgr.SafeToReclaim(retire_epoch)) << "r2 still pinned";
  r2.Release();
  EXPECT_TRUE(mgr.SafeToReclaim(retire_epoch));
}

TEST(EpochManager, LateReaderDoesNotBlockEarlierRetire) {
  EpochManager mgr;
  const uint64_t retire_epoch = mgr.AdvanceAfterRetire();
  // A reader entering in the same epoch the retire was tagged with is
  // conservatively assumed to hold a reference (Enter pins the current
  // epoch, which AdvanceAfterRetire just set to retire_epoch) — but once
  // any later retire advances the clock, new readers pin a strictly
  // greater epoch and can no longer delay the earlier retire.
  {
    EpochManager::Guard same_epoch = mgr.Enter();
    ASSERT_TRUE(same_epoch.active());
    EXPECT_EQ(same_epoch.epoch(), retire_epoch);
    EXPECT_FALSE(mgr.SafeToReclaim(retire_epoch));
  }
  const uint64_t later = mgr.AdvanceAfterRetire();
  EpochManager::Guard late = mgr.Enter();
  ASSERT_TRUE(late.active());
  EXPECT_EQ(late.epoch(), later);
  EXPECT_GT(late.epoch(), retire_epoch);
  EXPECT_TRUE(mgr.SafeToReclaim(retire_epoch));
  EXPECT_FALSE(mgr.SafeToReclaim(later)) << "its own epoch is still pinned";
}

TEST(EpochManager, SlotExhaustionDegradesToInactiveGuard) {
  EpochManager mgr(/*num_slots=*/2);
  EpochManager::Guard a = mgr.Enter();
  EpochManager::Guard b = mgr.Enter();
  ASSERT_TRUE(a.active());
  ASSERT_TRUE(b.active());

  EpochManager::Guard c = mgr.Enter();
  EXPECT_FALSE(c.active()) << "third reader must not find a slot";
  EXPECT_EQ(c.epoch(), 0u);

  // An inactive guard must not block reclamation (it holds nothing).
  const uint64_t retire_epoch = mgr.AdvanceAfterRetire();
  a.Release();
  b.Release();
  EXPECT_TRUE(mgr.SafeToReclaim(retire_epoch));

  // A freed slot is reusable.
  EpochManager::Guard d = mgr.Enter();
  EXPECT_TRUE(d.active());
}

TEST(RetireList, DrainFreesOnlyWhatNoReaderCanSee) {
  EpochManager mgr;
  RetireList list;
  int freed[3] = {0, 0, 0};
  auto deleter_for = [&freed](int i) {
    return [&freed, i](void*) { freed[i]++; };
  };
  int dummy[3];

  // Object 0 retired at e0; the clock then advances (e1), so the reader
  // entering here pins e1 > e0 — it can see objects 1 and 2 (retired while
  // it is pinned) but never object 0.
  const uint64_t e0 = mgr.AdvanceAfterRetire();
  list.Retire(&dummy[0], deleter_for(0), e0);
  const uint64_t e1 = mgr.AdvanceAfterRetire();
  EpochManager::Guard reader = mgr.Enter();
  ASSERT_TRUE(reader.active());
  EXPECT_EQ(reader.epoch(), e1);
  list.Retire(&dummy[1], deleter_for(1), e1);
  const uint64_t e2 = mgr.AdvanceAfterRetire();
  list.Retire(&dummy[2], deleter_for(2), e2);
  EXPECT_EQ(list.pending(), 3u);

  // The reader pins e1, so only object 0 (epoch e0 < e1) drains.
  EXPECT_EQ(list.Drain(mgr), 1u);
  EXPECT_EQ(freed[0], 1);
  EXPECT_EQ(freed[1], 0);
  EXPECT_EQ(freed[2], 0);
  EXPECT_EQ(list.pending(), 2u);

  reader.Release();
  EXPECT_EQ(list.Drain(mgr), 2u);
  EXPECT_EQ(freed[1], 1);
  EXPECT_EQ(freed[2], 1);
  EXPECT_EQ(list.pending(), 0u);

  // Draining an empty list is a no-op.
  EXPECT_EQ(list.Drain(mgr), 0u);
}

TEST(RetireList, ShutdownDrainsEverythingExactlyOnce) {
  // Heap blocks freed through the deleter: if the destructor failed to
  // drain (or drained twice), ASan's leak / double-free checks on this
  // binary would fire.
  std::atomic<int> frees{0};
  {
    EpochManager mgr;
    RetireList list;
    EpochManager::Guard reader = mgr.Enter();  // pins everything below
    for (int i = 0; i < 100; ++i) {
      auto* p = new uint64_t(static_cast<uint64_t>(i));
      list.Retire(
          p,
          [&frees](void* q) {
            delete static_cast<uint64_t*>(q);
            frees.fetch_add(1, std::memory_order_relaxed);
          },
          mgr.AdvanceAfterRetire());
    }
    EXPECT_EQ(list.Drain(mgr), 0u) << "reader still pinned";
    EXPECT_EQ(list.pending(), 100u);
    reader.Release();
    // List destructor runs here: DrainAll must free all 100.
  }
  EXPECT_EQ(frees.load(), 100);
}

// Seeded 8-thread churn: 2 writers copy-on-write a shared cell and retire
// the displaced block; 6 readers pin an epoch, chase the pointer and read
// the payload. Every block carries a magic derived from its payload, so a
// premature free shows up as a magic mismatch even without sanitizers —
// and under ASan, as a use-after-free at the exact read.
TEST(EpochChurn, EightThreadsNoUseAfterFree) {
  struct Block {
    uint64_t value;
    uint64_t magic;
  };
  constexpr uint64_t kMagicSalt = 0xEC0C4B1D5EEDULL;

  EpochManager mgr;
  RetireList list;          // guarded by writer_mu (the "shard lock")
  std::mutex writer_mu;
  std::atomic<Block*> cell{new Block{0, kMagicSalt}};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads_ok{0};
  std::atomic<uint64_t> read_failures{0};
  std::atomic<uint64_t> writes_done{0};

  constexpr int kWriters = 2;
  constexpr int kReaders = 6;
  constexpr uint64_t kWritesPerWriter = 4000;

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w]() {
      Random rng(/*seed=*/0x8EED + static_cast<uint64_t>(w));
      for (uint64_t i = 0; i < kWritesPerWriter; ++i) {
        std::lock_guard<std::mutex> lock(writer_mu);
        uint64_t v = rng.Next();
        auto* fresh = new Block{v, v ^ kMagicSalt};
        Block* old = cell.exchange(fresh, std::memory_order_acq_rel);
        list.Retire(
            old, [](void* p) { delete static_cast<Block*>(p); },
            mgr.AdvanceAfterRetire());
        if (list.pending() >= 32) list.Drain(mgr);
        writes_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        EpochManager::Guard guard = mgr.Enter();
        if (!guard.active()) continue;  // slots full: locked path in prod
        Block* b = cell.load(std::memory_order_acquire);
        // The block cannot be freed while this epoch is pinned; its
        // payload is immutable after publication, so plain reads are
        // ordered by the acquire load above.
        if ((b->value ^ kMagicSalt) == b->magic) {
          reads_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          read_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(read_failures.load(), 0u);
  EXPECT_EQ(writes_done.load(), kWriters * kWritesPerWriter);
  EXPECT_GT(reads_ok.load(), 0u);

  // Shutdown: no reader remains, so everything pending drains, and the
  // final cell block is freed by hand. ASan verifies nothing leaked.
  list.DrainAll();
  delete cell.load();
}

}  // namespace
}  // namespace aria::epoch
