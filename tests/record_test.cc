// Tests for the sealed record codec: roundtrips, MAC binding of every
// field, AdField binding, and reseal semantics.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "alloc/heap_allocator.h"
#include "core/record.h"
#include "crypto/secure_random.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {
namespace {

class RecordTest : public ::testing::Test {
 protected:
  RecordTest()
      : enclave_(64ull * 1024 * 1024),
        rng_(42),
        aes_(EncKey()),
        mac_aes_(MacKey()),
        cmac_(mac_aes_),
        codec_(&enclave_, &aes_, &cmac_) {
    rng_.Fill(counter_, 16);
  }

  static const uint8_t* EncKey() {
    static uint8_t k[16] = {1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 0, 0, 0, 1};
    return k;
  }
  static const uint8_t* MacKey() {
    static uint8_t k[16] = {2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5};
    return k;
  }

  std::vector<uint8_t> SealToBuffer(uint64_t red_ptr, Slice key, Slice value,
                                    uint64_t ad) {
    std::vector<uint8_t> buf(RecordCodec::SealedSize(key.size(), value.size()));
    codec_.Seal(red_ptr, counter_, key, value, ad, buf.data());
    return buf;
  }

  sgx::EnclaveRuntime enclave_;
  crypto::SecureRandom rng_;
  crypto::Aes128 aes_;
  crypto::Aes128 mac_aes_;
  crypto::Cmac128 cmac_;
  RecordCodec codec_;
  uint8_t counter_[16];
};

TEST_F(RecordTest, SealOpenRoundTrip) {
  auto rec = SealToBuffer(7, "mykey", "myvalue", 0x1000);
  ASSERT_TRUE(codec_.Verify(rec.data(), counter_, 0x1000).ok());
  std::string k, v;
  codec_.Open(rec.data(), counter_, &k, &v);
  EXPECT_EQ(k, "mykey");
  EXPECT_EQ(v, "myvalue");
}

TEST_F(RecordTest, PeekHeader) {
  auto rec = SealToBuffer(0xABCD, "key16bytes_test_", "v", 1);
  RecordHeader h = RecordCodec::Peek(rec.data());
  EXPECT_EQ(h.red_ptr, 0xABCDu);
  EXPECT_EQ(h.k_len, 16u);
  EXPECT_EQ(h.v_len, 1u);
}

TEST_F(RecordTest, CiphertextHidesPlaintext) {
  std::string key = "plaintext-key-123";
  std::string value = "plaintext-value-456";
  auto rec = SealToBuffer(7, key, value, 0);
  std::string blob(reinterpret_cast<char*>(rec.data()), rec.size());
  EXPECT_EQ(blob.find(key), std::string::npos);
  EXPECT_EQ(blob.find(value), std::string::npos);
}

TEST_F(RecordTest, EmptyValueAndKeyEdgeCases) {
  auto rec = SealToBuffer(1, "k", "", 0);
  ASSERT_TRUE(codec_.Verify(rec.data(), counter_, 0).ok());
  std::string k, v;
  codec_.Open(rec.data(), counter_, &k, &v);
  EXPECT_EQ(k, "k");
  EXPECT_TRUE(v.empty());
}

TEST_F(RecordTest, LargeValues) {
  std::string value(4096, 'x');
  for (size_t i = 0; i < value.size(); ++i) value[i] = static_cast<char>(i);
  auto rec = SealToBuffer(9, "key", value, 5);
  ASSERT_TRUE(codec_.Verify(rec.data(), counter_, 5).ok());
  std::string k, v;
  codec_.Open(rec.data(), counter_, &k, &v);
  EXPECT_EQ(v, value);
}

TEST_F(RecordTest, TamperCiphertextDetected) {
  auto rec = SealToBuffer(7, "key", "value", 0);
  rec[RecordCodec::kHeaderSize] ^= 1;
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0).IsIntegrityViolation());
}

TEST_F(RecordTest, TamperMacDetected) {
  auto rec = SealToBuffer(7, "key", "value", 0);
  rec[rec.size() - 1] ^= 1;
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0).IsIntegrityViolation());
}

TEST_F(RecordTest, TamperLengthsDetected) {
  auto rec = SealToBuffer(7, "key", "value", 0);
  rec[8] ^= 1;  // k_len — would shift parsing; MAC covers the header
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0).IsIntegrityViolation());
}

TEST_F(RecordTest, TamperRedPtrDetected) {
  auto rec = SealToBuffer(7, "key", "value", 0);
  rec[0] ^= 1;
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0).IsIntegrityViolation());
}

TEST_F(RecordTest, WrongCounterDetected) {
  // A replayed (old) counter value must fail the MAC: this is the
  // freshness guarantee once counters themselves are replay-proof.
  auto rec = SealToBuffer(7, "key", "value", 0);
  uint8_t old_counter[16];
  std::memcpy(old_counter, counter_, 16);
  old_counter[0] ^= 1;
  EXPECT_TRUE(
      codec_.Verify(rec.data(), old_counter, 0).IsIntegrityViolation());
}

TEST_F(RecordTest, WrongAdFieldDetected) {
  // Pointer-exchange attack: the record was bound to cell 0x1000 but is
  // verified as if reached through cell 0x2000.
  auto rec = SealToBuffer(7, "key", "value", 0x1000);
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0x2000).IsIntegrityViolation());
}

TEST_F(RecordTest, ResealChangesOnlyBinding) {
  auto rec = SealToBuffer(7, "key", "value", 0x1000);
  std::vector<uint8_t> cipher_before(
      rec.begin() + RecordCodec::kHeaderSize,
      rec.end() - RecordCodec::kMacSize);
  codec_.Reseal(rec.data(), counter_, 0x2000);
  // Old binding now fails, new binding verifies, ciphertext unchanged.
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0x1000).IsIntegrityViolation());
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0x2000).ok());
  std::vector<uint8_t> cipher_after(
      rec.begin() + RecordCodec::kHeaderSize,
      rec.end() - RecordCodec::kMacSize);
  EXPECT_EQ(cipher_before, cipher_after);
}

TEST_F(RecordTest, DifferentRedPtrsDifferentKeystreams) {
  // Identical plaintext + counter but different RedPtr must yield different
  // ciphertext (keystream bound to the record identity).
  auto rec1 = SealToBuffer(1, "key", "value", 0);
  auto rec2 = SealToBuffer(2, "key", "value", 0);
  EXPECT_NE(0, std::memcmp(rec1.data() + RecordCodec::kHeaderSize,
                           rec2.data() + RecordCodec::kHeaderSize,
                           rec1.size() - RecordCodec::kHeaderSize -
                               RecordCodec::kMacSize));
}

TEST_F(RecordTest, OpenKeyMatchesOpen) {
  auto rec = SealToBuffer(3, "some-key", "some-value", 0);
  std::string k1, k2, v;
  codec_.OpenKey(rec.data(), counter_, &k1);
  codec_.Open(rec.data(), counter_, &k2, &v);
  EXPECT_EQ(k1, k2);
}

TEST_F(RecordTest, SealedSizeFormula) {
  EXPECT_EQ(RecordCodec::SealedSize(16, 16),
            RecordCodec::kHeaderSize + 32 + RecordCodec::kMacSize);
  EXPECT_EQ(RecordCodec::SealedSize(0, 0),
            RecordCodec::kHeaderSize + RecordCodec::kMacSize);
}

// --- Allocation-bounded Verify (tampered-header-length regression) ----------
//
// The stored-MAC offset is derived from the untrusted k_len/v_len, so
// before this fix an oversized tampered length made Verify read (and MAC)
// bytes far past the record's allocation — the out-of-bounds read the ASan
// sweep flagged. With the allocator wired into the codec, Verify bounds
// the claimed extent by the block the record lives in and rejects before
// touching a byte beyond the header. The sweep below runs under ASan in
// scripts/check_sanitizers.sh: a regression is a heap-buffer-overflow
// report, not just a failed expectation.

class RecordBoundsTest : public RecordTest {
 protected:
  RecordBoundsTest()
      : heap_(&enclave_),
        ocall_(&enclave_),
        heap_codec_(&enclave_, &aes_, &cmac_, &heap_),
        ocall_codec_(&enclave_, &aes_, &cmac_, &ocall_) {}

  // Seal into an exactly-sized block from `alloc` and return the pointer
  // (freed by the allocator's teardown; HeapAllocator reclaims its chunks).
  uint8_t* SealInto(UntrustedAllocator* alloc, const RecordCodec& codec,
                    Slice key, Slice value, uint64_t ad) {
    auto block = alloc->Alloc(RecordCodec::SealedSize(key.size(), value.size()));
    EXPECT_TRUE(block.ok());
    uint8_t* rec = static_cast<uint8_t*>(block.value());
    codec.Seal(7, counter_, key, value, ad, rec);
    return rec;
  }

  void SweepTamperedLengths(const RecordCodec& codec, uint8_t* rec,
                            uint64_t ad) {
    ASSERT_TRUE(codec.Verify(rec, counter_, ad).ok());
    uint16_t k_orig, v_orig;
    std::memcpy(&k_orig, rec + 8, 2);
    std::memcpy(&v_orig, rec + 10, 2);
    const uint16_t k_evil[] = {static_cast<uint16_t>(k_orig + 200), 4096,
                               65535};
    const uint16_t v_evil[] = {static_cast<uint16_t>(v_orig + 200), 4096,
                               65535};
    for (uint16_t k : k_evil) {
      std::memcpy(rec + 8, &k, 2);
      EXPECT_TRUE(codec.Verify(rec, counter_, ad).IsIntegrityViolation())
          << "k_len=" << k;
      std::memcpy(rec + 8, &k_orig, 2);
    }
    for (uint16_t v : v_evil) {
      std::memcpy(rec + 10, &v, 2);
      EXPECT_TRUE(codec.Verify(rec, counter_, ad).IsIntegrityViolation())
          << "v_len=" << v;
      std::memcpy(rec + 10, &v_orig, 2);
    }
    // Both at once (worst case: offset ~128 KB past the block).
    const uint16_t big = 65535;
    std::memcpy(rec + 8, &big, 2);
    std::memcpy(rec + 10, &big, 2);
    EXPECT_TRUE(codec.Verify(rec, counter_, ad).IsIntegrityViolation());
    std::memcpy(rec + 8, &k_orig, 2);
    std::memcpy(rec + 10, &v_orig, 2);
    // Restored header verifies again — the sweep itself left no damage.
    EXPECT_TRUE(codec.Verify(rec, counter_, ad).ok());
  }

  HeapAllocator heap_;
  OcallAllocator ocall_;
  RecordCodec heap_codec_;
  RecordCodec ocall_codec_;
};

TEST_F(RecordBoundsTest, OversizedHeaderLengthsRejectedOnHeapAllocator) {
  uint8_t* rec = SealInto(&heap_, heap_codec_, "key16bytes_test_",
                          std::string(24, 'v'), 0x1000);
  SweepTamperedLengths(heap_codec_, rec, 0x1000);
  ASSERT_TRUE(heap_.Free(rec).ok());
}

TEST_F(RecordBoundsTest, OversizedHeaderLengthsRejectedOnOcallAllocator) {
  uint8_t* rec = SealInto(&ocall_, ocall_codec_, "key16bytes_test_",
                          std::string(24, 'v'), 0x1000);
  SweepTamperedLengths(ocall_codec_, rec, 0x1000);
  ASSERT_TRUE(ocall_.Free(rec).ok());
}

TEST_F(RecordBoundsTest, InteriorRecordPointerUsesBlockRemainder) {
  // Aria-H records start kEntryHeader bytes into their block; the bound
  // must be the remainder from the record, not the whole block.
  constexpr size_t kEntryHeader = 16;
  std::string key = "key16bytes_test_", value(24, 'v');
  size_t sealed = RecordCodec::SealedSize(key.size(), value.size());
  auto block = heap_.Alloc(kEntryHeader + sealed);
  ASSERT_TRUE(block.ok());
  uint8_t* rec = static_cast<uint8_t*>(block.value()) + kEntryHeader;
  heap_codec_.Seal(7, counter_, key, value, 0, rec);
  SweepTamperedLengths(heap_codec_, rec, 0);
  ASSERT_TRUE(heap_.Free(block.value()).ok());
}

TEST_F(RecordBoundsTest, ExplicitBoundOverloadAndNullAllocator) {
  auto rec = SealToBuffer(7, "key", "value", 0);
  // Null-allocator codec (this buffer is not allocator-backed): the 3-arg
  // Verify applies no bound; the explicit-bound overload still does.
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0).ok());
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0, rec.size()).ok());
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0, rec.size() - 1)
                  .IsIntegrityViolation());
  // An allocator-wired codec refuses to verify a record it cannot bound
  // (UsableBytes of a foreign pointer is 0).
  EXPECT_TRUE(heap_codec_.Verify(rec.data(), counter_, 0)
                  .IsIntegrityViolation());
}

}  // namespace
}  // namespace aria
