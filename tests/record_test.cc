// Tests for the sealed record codec: roundtrips, MAC binding of every
// field, AdField binding, and reseal semantics.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/record.h"
#include "crypto/secure_random.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {
namespace {

class RecordTest : public ::testing::Test {
 protected:
  RecordTest()
      : enclave_(64ull * 1024 * 1024),
        rng_(42),
        aes_(EncKey()),
        mac_aes_(MacKey()),
        cmac_(mac_aes_),
        codec_(&enclave_, &aes_, &cmac_) {
    rng_.Fill(counter_, 16);
  }

  static const uint8_t* EncKey() {
    static uint8_t k[16] = {1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 0, 0, 0, 1};
    return k;
  }
  static const uint8_t* MacKey() {
    static uint8_t k[16] = {2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5};
    return k;
  }

  std::vector<uint8_t> SealToBuffer(uint64_t red_ptr, Slice key, Slice value,
                                    uint64_t ad) {
    std::vector<uint8_t> buf(RecordCodec::SealedSize(key.size(), value.size()));
    codec_.Seal(red_ptr, counter_, key, value, ad, buf.data());
    return buf;
  }

  sgx::EnclaveRuntime enclave_;
  crypto::SecureRandom rng_;
  crypto::Aes128 aes_;
  crypto::Aes128 mac_aes_;
  crypto::Cmac128 cmac_;
  RecordCodec codec_;
  uint8_t counter_[16];
};

TEST_F(RecordTest, SealOpenRoundTrip) {
  auto rec = SealToBuffer(7, "mykey", "myvalue", 0x1000);
  ASSERT_TRUE(codec_.Verify(rec.data(), counter_, 0x1000).ok());
  std::string k, v;
  codec_.Open(rec.data(), counter_, &k, &v);
  EXPECT_EQ(k, "mykey");
  EXPECT_EQ(v, "myvalue");
}

TEST_F(RecordTest, PeekHeader) {
  auto rec = SealToBuffer(0xABCD, "key16bytes_test_", "v", 1);
  RecordHeader h = RecordCodec::Peek(rec.data());
  EXPECT_EQ(h.red_ptr, 0xABCDu);
  EXPECT_EQ(h.k_len, 16u);
  EXPECT_EQ(h.v_len, 1u);
}

TEST_F(RecordTest, CiphertextHidesPlaintext) {
  std::string key = "plaintext-key-123";
  std::string value = "plaintext-value-456";
  auto rec = SealToBuffer(7, key, value, 0);
  std::string blob(reinterpret_cast<char*>(rec.data()), rec.size());
  EXPECT_EQ(blob.find(key), std::string::npos);
  EXPECT_EQ(blob.find(value), std::string::npos);
}

TEST_F(RecordTest, EmptyValueAndKeyEdgeCases) {
  auto rec = SealToBuffer(1, "k", "", 0);
  ASSERT_TRUE(codec_.Verify(rec.data(), counter_, 0).ok());
  std::string k, v;
  codec_.Open(rec.data(), counter_, &k, &v);
  EXPECT_EQ(k, "k");
  EXPECT_TRUE(v.empty());
}

TEST_F(RecordTest, LargeValues) {
  std::string value(4096, 'x');
  for (size_t i = 0; i < value.size(); ++i) value[i] = static_cast<char>(i);
  auto rec = SealToBuffer(9, "key", value, 5);
  ASSERT_TRUE(codec_.Verify(rec.data(), counter_, 5).ok());
  std::string k, v;
  codec_.Open(rec.data(), counter_, &k, &v);
  EXPECT_EQ(v, value);
}

TEST_F(RecordTest, TamperCiphertextDetected) {
  auto rec = SealToBuffer(7, "key", "value", 0);
  rec[RecordCodec::kHeaderSize] ^= 1;
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0).IsIntegrityViolation());
}

TEST_F(RecordTest, TamperMacDetected) {
  auto rec = SealToBuffer(7, "key", "value", 0);
  rec[rec.size() - 1] ^= 1;
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0).IsIntegrityViolation());
}

TEST_F(RecordTest, TamperLengthsDetected) {
  auto rec = SealToBuffer(7, "key", "value", 0);
  rec[8] ^= 1;  // k_len — would shift parsing; MAC covers the header
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0).IsIntegrityViolation());
}

TEST_F(RecordTest, TamperRedPtrDetected) {
  auto rec = SealToBuffer(7, "key", "value", 0);
  rec[0] ^= 1;
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0).IsIntegrityViolation());
}

TEST_F(RecordTest, WrongCounterDetected) {
  // A replayed (old) counter value must fail the MAC: this is the
  // freshness guarantee once counters themselves are replay-proof.
  auto rec = SealToBuffer(7, "key", "value", 0);
  uint8_t old_counter[16];
  std::memcpy(old_counter, counter_, 16);
  old_counter[0] ^= 1;
  EXPECT_TRUE(
      codec_.Verify(rec.data(), old_counter, 0).IsIntegrityViolation());
}

TEST_F(RecordTest, WrongAdFieldDetected) {
  // Pointer-exchange attack: the record was bound to cell 0x1000 but is
  // verified as if reached through cell 0x2000.
  auto rec = SealToBuffer(7, "key", "value", 0x1000);
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0x2000).IsIntegrityViolation());
}

TEST_F(RecordTest, ResealChangesOnlyBinding) {
  auto rec = SealToBuffer(7, "key", "value", 0x1000);
  std::vector<uint8_t> cipher_before(
      rec.begin() + RecordCodec::kHeaderSize,
      rec.end() - RecordCodec::kMacSize);
  codec_.Reseal(rec.data(), counter_, 0x2000);
  // Old binding now fails, new binding verifies, ciphertext unchanged.
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0x1000).IsIntegrityViolation());
  EXPECT_TRUE(codec_.Verify(rec.data(), counter_, 0x2000).ok());
  std::vector<uint8_t> cipher_after(
      rec.begin() + RecordCodec::kHeaderSize,
      rec.end() - RecordCodec::kMacSize);
  EXPECT_EQ(cipher_before, cipher_after);
}

TEST_F(RecordTest, DifferentRedPtrsDifferentKeystreams) {
  // Identical plaintext + counter but different RedPtr must yield different
  // ciphertext (keystream bound to the record identity).
  auto rec1 = SealToBuffer(1, "key", "value", 0);
  auto rec2 = SealToBuffer(2, "key", "value", 0);
  EXPECT_NE(0, std::memcmp(rec1.data() + RecordCodec::kHeaderSize,
                           rec2.data() + RecordCodec::kHeaderSize,
                           rec1.size() - RecordCodec::kHeaderSize -
                               RecordCodec::kMacSize));
}

TEST_F(RecordTest, OpenKeyMatchesOpen) {
  auto rec = SealToBuffer(3, "some-key", "some-value", 0);
  std::string k1, k2, v;
  codec_.OpenKey(rec.data(), counter_, &k1);
  codec_.Open(rec.data(), counter_, &k2, &v);
  EXPECT_EQ(k1, k2);
}

TEST_F(RecordTest, SealedSizeFormula) {
  EXPECT_EQ(RecordCodec::SealedSize(16, 16),
            RecordCodec::kHeaderSize + 32 + RecordCodec::kMacSize);
  EXPECT_EQ(RecordCodec::SealedSize(0, 0),
            RecordCodec::kHeaderSize + RecordCodec::kMacSize);
}

}  // namespace
}  // namespace aria
