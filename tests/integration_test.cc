// Cross-module integration tests: full workload replays over every scheme,
// behavioral invariants from the paper (hit ratios under skew vs uniform,
// stop-swap engagement, paging cliffs), and multi-tenant construction.
#include <gtest/gtest.h>

#include <thread>

#include "core/aria_btree.h"
#include "core/store_factory.h"
#include "workload/driver.h"

namespace aria {
namespace {

StoreOptions SmallOpts(Scheme scheme, IndexKind index = IndexKind::kHash) {
  StoreOptions opts;
  opts.scheme = scheme;
  opts.index = index;
  opts.keyspace = 4096;
  opts.num_buckets = 1024;
  opts.shieldstore_buckets = 1024;
  return opts;
}

TEST(Integration, AllSchemesSurviveMixedYcsb) {
  for (Scheme scheme : {Scheme::kAria, Scheme::kAriaNoCache,
                        Scheme::kShieldStore, Scheme::kBaseline}) {
    StoreBundle bundle;
    ASSERT_TRUE(CreateStore(SmallOpts(scheme), &bundle).ok());
    Driver driver(/*seed=*/7);
    ASSERT_TRUE(driver.Prepopulate(bundle.store.get(), 4096, 16).ok());
    YcsbSpec spec;
    spec.seed = 42;
    spec.keyspace = 4096;
    spec.read_ratio = 0.5;
    auto r = driver.RunYcsb(bundle.store.get(), bundle.enclave.get(), spec,
                            20000);
    ASSERT_TRUE(r.ok()) << bundle.label << ": " << r.status().ToString();
    EXPECT_EQ(r->not_found, 0u) << bundle.label;
  }
}

TEST(Integration, BothIndexesSurviveEtc) {
  for (IndexKind index : {IndexKind::kHash, IndexKind::kBTree}) {
    StoreBundle bundle;
    ASSERT_TRUE(CreateStore(SmallOpts(Scheme::kAria, index), &bundle).ok());
    EtcSpec spec;
    spec.seed = 42;
    spec.keyspace = 4096;
    spec.read_ratio = 0.5;
    EtcWorkload wl(spec);
    Driver driver(/*seed=*/7);
    ASSERT_TRUE(driver
                    .Prepopulate(bundle.store.get(), 4096,
                                 [&wl](uint64_t id) { return wl.ValueSizeFor(id); })
                    .ok());
    auto r = driver.RunEtc(bundle.store.get(), bundle.enclave.get(), spec,
                           10000);
    ASSERT_TRUE(r.ok()) << bundle.label;
    EXPECT_EQ(r->not_found, 0u) << bundle.label;
  }
}

TEST(Integration, SkewHitsCacheMoreThanUniform) {
  auto hit_ratio = [](KeyDistribution dist) {
    StoreOptions opts = SmallOpts(Scheme::kAria);
    opts.keyspace = 1 << 15;
    opts.cache_bytes = 64 * 1024;  // much smaller than the counter area
    opts.pinned_levels = 2;
    opts.stop_swap_enabled = false;
    StoreBundle bundle;
    EXPECT_TRUE(CreateStore(opts, &bundle).ok());
    Driver driver(/*seed=*/7);
    EXPECT_TRUE(driver.Prepopulate(bundle.store.get(), 1 << 15, 16).ok());
    YcsbSpec spec;
    spec.seed = 42;
    spec.keyspace = 1 << 15;
    spec.distribution = dist;
    spec.read_ratio = 0.95;
    auto r =
        driver.RunYcsb(bundle.store.get(), bundle.enclave.get(), spec, 30000);
    EXPECT_TRUE(r.ok());
    return bundle.counter_manager()->CacheStats().HitRatio();
  };
  double skew = hit_ratio(KeyDistribution::kZipfian);
  double uniform = hit_ratio(KeyDistribution::kUniform);
  EXPECT_GT(skew, uniform + 0.1)
      << "skew=" << skew << " uniform=" << uniform;
}

TEST(Integration, StopSwapEngagesUnderUniformOnly) {
  auto swap_stopped = [](KeyDistribution dist) {
    StoreOptions opts = SmallOpts(Scheme::kAria);
    opts.keyspace = 1 << 15;
    // Cache covers ~half of the leaf level: zipfian traffic concentrates
    // far above the 70% stop threshold, uniform traffic sits at ~50%.
    opts.cache_bytes = 256 * 1024;
    opts.pinned_levels = 0;
    opts.stop_swap_enabled = true;
    StoreBundle bundle;
    EXPECT_TRUE(CreateStore(opts, &bundle).ok());
    Driver driver(/*seed=*/7);
    EXPECT_TRUE(driver.Prepopulate(bundle.store.get(), 1 << 15, 16).ok());
    YcsbSpec spec;
    spec.seed = 42;
    spec.keyspace = 1 << 15;
    spec.distribution = dist;
    spec.skewness = 1.1;  // clearly above the stop-swap break-even point
    auto r =
        driver.RunYcsb(bundle.store.get(), bundle.enclave.get(), spec, 300000);
    EXPECT_TRUE(r.ok());
    return bundle.counter_manager()->CacheStats().swap_stopped;
  };
  EXPECT_TRUE(swap_stopped(KeyDistribution::kUniform));
  EXPECT_FALSE(swap_stopped(KeyDistribution::kZipfian));
}

TEST(Integration, BaselinePagesBeyondEpc) {
  // ~4K keys * 400 B values inside a 1 MB EPC: constant paging; the same
  // store inside a big EPC never pages. This is the Fig. 2 cliff.
  auto swaps = [](uint64_t epc) {
    StoreOptions opts = SmallOpts(Scheme::kBaseline);
    opts.epc_budget_bytes = epc;
    StoreBundle bundle;
    EXPECT_TRUE(CreateStore(opts, &bundle).ok());
    Driver driver(/*seed=*/7);
    EXPECT_TRUE(driver.Prepopulate(bundle.store.get(), 4096, 400).ok());
    YcsbSpec spec;
    spec.seed = 42;
    spec.keyspace = 4096;
    spec.distribution = KeyDistribution::kUniform;
    auto r =
        driver.RunYcsb(bundle.store.get(), bundle.enclave.get(), spec, 5000);
    EXPECT_TRUE(r.ok());
    return bundle.enclave->stats().page_swaps;
  };
  EXPECT_EQ(swaps(64ull << 20), 0u);
  EXPECT_GT(swaps(1ull << 20), 1000u);
}

TEST(Integration, AriaAvoidsHardwarePagingEntirely) {
  // The whole point of the design: even with a working set far beyond the
  // cache, Aria's trusted footprint stays under the EPC budget, so the
  // hardware paging counter never moves.
  StoreOptions opts = SmallOpts(Scheme::kAria);
  opts.keyspace = 1 << 15;
  opts.cache_bytes = 64 * 1024;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  Driver driver(/*seed=*/7);
  ASSERT_TRUE(driver.Prepopulate(bundle.store.get(), 1 << 15, 64).ok());
  YcsbSpec spec;
  spec.seed = 42;
  spec.keyspace = 1 << 15;
  auto r = driver.RunYcsb(bundle.store.get(), bundle.enclave.get(), spec,
                          20000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(bundle.enclave->stats().page_swaps, 0u);
  EXPECT_LT(bundle.enclave->trusted_bytes_in_use(),
            sgx::CostModel::kDefaultEpcBytes);
}

TEST(Integration, ShieldStoreReadAmplificationExceedsAria) {
  // Same chains, same ops: ShieldStore walks whole buckets for MAC
  // verification, Aria only touches candidates.
  StoreOptions a = SmallOpts(Scheme::kAria);
  a.num_buckets = 64;  // average chain length 64
  StoreOptions s = SmallOpts(Scheme::kShieldStore);
  s.shieldstore_buckets = 64;
  StoreBundle aria_b, shield_b;
  ASSERT_TRUE(CreateStore(a, &aria_b).ok());
  ASSERT_TRUE(CreateStore(s, &shield_b).ok());
  Driver driver(/*seed=*/7);
  ASSERT_TRUE(driver.Prepopulate(aria_b.store.get(), 4096, 16).ok());
  ASSERT_TRUE(driver.Prepopulate(shield_b.store.get(), 4096, 16).ok());
  YcsbSpec spec;
  spec.seed = 42;
  spec.keyspace = 4096;
  auto ra =
      driver.RunYcsb(aria_b.store.get(), aria_b.enclave.get(), spec, 5000);
  auto rs =
      driver.RunYcsb(shield_b.store.get(), shield_b.enclave.get(), spec, 5000);
  ASSERT_TRUE(ra.ok() && rs.ok());
  auto* aria_store = static_cast<AriaHash*>(aria_b.store.get());
  auto* shield_store = static_cast<ShieldStore*>(shield_b.store.get());
  EXPECT_GT(shield_store->stats().entries_scanned,
            aria_store->stats().hint_matches * 10);
}

TEST(Integration, MultiTenantInstancesAreIndependent) {
  // Fig. 16a setup: N instances, each with EPC/N. Run them on threads and
  // check full isolation of contents.
  constexpr int kTenants = 4;
  std::vector<std::unique_ptr<StoreBundle>> bundles;
  for (int t = 0; t < kTenants; ++t) {
    StoreOptions opts = SmallOpts(Scheme::kAria);
    opts.keyspace = 2048;
    opts.epc_budget_bytes = sgx::CostModel::kDefaultEpcBytes / kTenants;
    opts.seed = 1000 + t;
    auto bundle = std::make_unique<StoreBundle>();
    ASSERT_TRUE(CreateStore(opts, bundle.get()).ok());
    bundles.push_back(std::move(bundle));
  }
  std::vector<std::thread> threads;
  std::vector<Status> statuses(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t]() {
      KVStore* store = bundles[t]->store.get();
      for (int i = 0; i < 500; ++i) {
        Status st = store->Put(MakeKey(i), MakeValue(i, 16, t));
        if (!st.ok()) {
          statuses[t] = st;
          return;
        }
      }
      std::string v;
      for (int i = 0; i < 500; ++i) {
        Status st = store->Get(MakeKey(i), &v);
        if (!st.ok() || v != MakeValue(i, 16, t)) {
          statuses[t] = st.ok() ? Status::Internal("cross-tenant bleed") : st;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_TRUE(statuses[t].ok()) << "tenant " << t << ": "
                                  << statuses[t].ToString();
  }
}

TEST(Integration, AriaTreeRangeScanAfterWorkload) {
  StoreBundle bundle;
  ASSERT_TRUE(
      CreateStore(SmallOpts(Scheme::kAria, IndexKind::kBTree), &bundle).ok());
  Driver driver(/*seed=*/7);
  ASSERT_TRUE(driver.Prepopulate(bundle.store.get(), 1000, 16).ok());
  YcsbSpec spec;
  spec.seed = 42;
  spec.keyspace = 1000;
  spec.read_ratio = 0.5;
  auto r = driver.RunYcsb(bundle.store.get(), bundle.enclave.get(), spec, 5000);
  ASSERT_TRUE(r.ok());
  auto* tree = static_cast<AriaBTree*>(bundle.store.get());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree->RangeScan(MakeKey(0), 1000, &out).ok());
  EXPECT_EQ(out.size(), 1000u);
  ASSERT_TRUE(tree->VerifyFullIntegrity().ok());
}

}  // namespace
}  // namespace aria
