// Crypto primitive tests against official vectors: FIPS-197 (AES-128),
// NIST SP 800-38A (CTR mode), RFC 4493 (AES-CMAC); plus cross-checks
// between the AES-NI and portable implementations.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/aes.h"
#include "crypto/cmac.h"
#include "crypto/ctr.h"
#include "crypto/secure_random.h"

namespace aria::crypto {
namespace {

std::vector<uint8_t> FromHex(const std::string& hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(
        static_cast<uint8_t>(std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string ToHex(const uint8_t* p, size_t n) {
  static const char* d = "0123456789abcdef";
  std::string s;
  for (size_t i = 0; i < n; ++i) {
    s += d[p[i] >> 4];
    s += d[p[i] & 15];
  }
  return s;
}

// --- FIPS-197 Appendix C.1 ---
TEST(Aes128, Fips197VectorPortable) {
  auto key = FromHex("000102030405060708090a0b0c0d0e0f");
  auto pt = FromHex("00112233445566778899aabbccddeeff");
  Aes128 aes(key.data(), Aes128::Impl::kPortable);
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(ct, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// --- FIPS-197 Appendix B ---
TEST(Aes128, AppendixBVectorPortable) {
  auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  auto pt = FromHex("3243f6a8885a308d313198a2e0370734");
  Aes128 aes(key.data(), Aes128::Impl::kPortable);
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(ct, 16), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, AesNiMatchesPortable) {
  if (!Aes128::HasAesNi()) GTEST_SKIP() << "no AES-NI on this CPU";
  SecureRandom rng(11);
  for (int trial = 0; trial < 64; ++trial) {
    uint8_t key[16], pt[16], a[16], b[16];
    rng.Fill(key, 16);
    rng.Fill(pt, 16);
    Aes128 ni(key, Aes128::Impl::kAesNi);
    Aes128 port(key, Aes128::Impl::kPortable);
    ni.EncryptBlock(pt, a);
    port.EncryptBlock(pt, b);
    EXPECT_EQ(0, std::memcmp(a, b, 16)) << "trial " << trial;
  }
}

// --- NIST SP 800-38A F.1.1 (ECB-AES128.Encrypt): four more single-block
// vectors, checked against BOTH implementations.
TEST(Aes128, Sp800_38aEcbVectorsBothImpls) {
  auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const std::pair<std::string, std::string> vectors[] = {
      {"6bc1bee22e409f96e93d7e117393172a",
       "3ad77bb40d7a3660a89ecaf32466ef97"},
      {"ae2d8a571e03ac9c9eb76fac45af8e51",
       "f5d3d58503b9699de785895a96fdbaaf"},
      {"30c81c46a35ce411e5fbc1191a0a52ef",
       "43b1cd7f598ece23881b00e3ed030688"},
      {"f69f2445df4f9b17ad2b417be66c3710",
       "7b0c785e27e8ad3f8223207104725dd4"},
  };
  for (const auto& [pt_hex, ct_hex] : vectors) {
    auto pt = FromHex(pt_hex);
    uint8_t ct[16];
    Aes128 port(key.data(), Aes128::Impl::kPortable);
    port.EncryptBlock(pt.data(), ct);
    EXPECT_EQ(ToHex(ct, 16), ct_hex);
    if (Aes128::HasAesNi()) {
      Aes128 ni(key.data(), Aes128::Impl::kAesNi);
      ni.EncryptBlock(pt.data(), ct);
      EXPECT_EQ(ToHex(ct, 16), ct_hex);
    }
  }
}

TEST(Aes128, MultiBlockMatchesSingle) {
  SecureRandom rng(12);
  uint8_t key[16];
  rng.Fill(key, 16);
  Aes128 aes(key);
  std::vector<uint8_t> in(16 * 9), out_bulk(16 * 9), out_one(16 * 9);
  rng.Fill(in.data(), in.size());
  aes.EncryptBlocks(in.data(), out_bulk.data(), 9);
  for (int b = 0; b < 9; ++b) {
    aes.EncryptBlock(in.data() + b * 16, out_one.data() + b * 16);
  }
  EXPECT_EQ(out_bulk, out_one);
}

// --- NIST SP 800-38A F.5.1 (CTR-AES128.Encrypt) ---
TEST(AesCtr, Sp800_38aVector) {
  auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  auto ctr = FromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  auto pt = FromHex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  Aes128 aes(key.data());
  std::vector<uint8_t> ct(pt.size());
  AesCtrCrypt(aes, ctr.data(), pt.data(), ct.data(), pt.size());
  EXPECT_EQ(ToHex(ct.data(), ct.size()),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(AesCtr, RoundTripAllLengths) {
  SecureRandom rng(13);
  uint8_t key[16], iv[16];
  rng.Fill(key, 16);
  rng.Fill(iv, 16);
  Aes128 aes(key);
  for (size_t len = 0; len <= 130; ++len) {
    std::vector<uint8_t> pt(len), ct(len), rt(len);
    rng.Fill(pt.data(), len);
    AesCtrCrypt(aes, iv, pt.data(), ct.data(), len);
    AesCtrCrypt(aes, iv, ct.data(), rt.data(), len);
    EXPECT_EQ(pt, rt) << "len " << len;
    if (len >= 8) {
      EXPECT_NE(0, std::memcmp(pt.data(), ct.data(), len)) << "len " << len;
    }
  }
}

// Differential: the AES-NI and portable CTR pipelines must agree bit-for-bit
// over randomized keys, counter blocks and message lengths (including the
// partial-final-block and bulk-block paths, which diverge internally).
TEST(AesCtr, RandomizedNiVsPortableDifferential) {
  if (!Aes128::HasAesNi()) GTEST_SKIP() << "no AES-NI on this CPU";
  SecureRandom rng(31);
  for (int trial = 0; trial < 128; ++trial) {
    uint8_t key[16], iv[16];
    rng.Fill(key, 16);
    rng.Fill(iv, 16);
    uint8_t len_byte;
    rng.Fill(&len_byte, 1);
    size_t len = 1 + len_byte % 512;
    std::vector<uint8_t> pt(len), a(len), b(len);
    rng.Fill(pt.data(), len);
    Aes128 ni(key, Aes128::Impl::kAesNi);
    Aes128 port(key, Aes128::Impl::kPortable);
    AesCtrCrypt(ni, iv, pt.data(), a.data(), len);
    AesCtrCrypt(port, iv, pt.data(), b.data(), len);
    ASSERT_EQ(a, b) << "trial " << trial << " len " << len;
    // Windowed variant too: both impls must slice the keystream identically.
    size_t off = len / 3;
    std::vector<uint8_t> wa(len - off), wb(len - off);
    AesCtrCryptAt(ni, iv, off, pt.data() + off, wa.data(), len - off);
    AesCtrCryptAt(port, iv, off, pt.data() + off, wb.data(), len - off);
    ASSERT_EQ(wa, wb) << "trial " << trial << " off " << off;
  }
}

TEST(AesCtr, InPlaceOperation) {
  SecureRandom rng(14);
  uint8_t key[16], iv[16];
  rng.Fill(key, 16);
  rng.Fill(iv, 16);
  Aes128 aes(key);
  std::vector<uint8_t> data(100), expected(100);
  rng.Fill(data.data(), data.size());
  AesCtrCrypt(aes, iv, data.data(), expected.data(), data.size());
  AesCtrCrypt(aes, iv, data.data(), data.data(), data.size());
  EXPECT_EQ(data, expected);
}

TEST(AesCtr, OffsetWindowMatchesFullStream) {
  // Decrypting a suffix window with AesCtrCryptAt must agree byte-for-byte
  // with decrypting the whole message, for every offset.
  SecureRandom rng(21);
  uint8_t key[16], iv[16];
  rng.Fill(key, 16);
  rng.Fill(iv, 16);
  Aes128 aes(key);
  std::vector<uint8_t> pt(97), ct(97), full(97);
  rng.Fill(pt.data(), pt.size());
  AesCtrCrypt(aes, iv, pt.data(), ct.data(), ct.size());
  AesCtrCrypt(aes, iv, ct.data(), full.data(), ct.size());
  ASSERT_EQ(0, std::memcmp(full.data(), pt.data(), pt.size()));
  for (size_t off = 0; off < pt.size(); ++off) {
    std::vector<uint8_t> window(pt.size() - off);
    AesCtrCryptAt(aes, iv, off, ct.data() + off, window.data(),
                  window.size());
    ASSERT_EQ(0, std::memcmp(window.data(), pt.data() + off, window.size()))
        << "offset " << off;
  }
}

TEST(AesCtr, CtrAddMatchesRepeatedIncrement) {
  SecureRandom rng(22);
  for (int trial = 0; trial < 32; ++trial) {
    uint8_t a[16], b[16];
    rng.Fill(a, 16);
    std::memcpy(b, a, 16);
    uint64_t n = trial * trial * 31 + trial;
    CtrAdd(a, n);
    for (uint64_t i = 0; i < n; ++i) CtrIncrement(b);
    ASSERT_EQ(0, std::memcmp(a, b, 16)) << "n=" << n;
  }
}

TEST(AesCtr, CtrAddCarriesAcrossBytes) {
  uint8_t ctr[16] = {0};
  std::memset(ctr + 8, 0xFF, 8);  // low 64 bits all ones
  CtrAdd(ctr, 1);
  // Carry must ripple into byte 7.
  EXPECT_EQ(ctr[7], 1);
  for (int i = 8; i < 16; ++i) EXPECT_EQ(ctr[i], 0);
}

TEST(AesCtr, CounterIncrementCarries) {
  uint8_t ctr[16];
  std::memset(ctr, 0xff, 16);
  ctr[0] = 0x00;
  CtrIncrement(ctr);  // carries through bytes 15..1
  uint8_t expect[16] = {0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(0, std::memcmp(ctr, expect, 16));
}

// --- RFC 4493 test vectors ---
class CmacRfc4493 : public ::testing::TestWithParam<std::pair<size_t, std::string>> {};

TEST_P(CmacRfc4493, Vector) {
  auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  auto msg = FromHex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  Aes128 aes(key.data());
  Cmac128 cmac(aes);
  uint8_t tag[16];
  auto [len, expect] = GetParam();
  cmac.Mac(msg.data(), len, tag);
  EXPECT_EQ(ToHex(tag, 16), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc4493, CmacRfc4493,
    ::testing::Values(
        std::make_pair<size_t, std::string>(0, "bb1d6929e95937287fa37d129b756746"),
        std::make_pair<size_t, std::string>(16, "070a16b46b4d4144f79bdd9dd04a287c"),
        std::make_pair<size_t, std::string>(40, "dfa66747de9ae63030ca32611497c827"),
        std::make_pair<size_t, std::string>(64, "51f0bebf7e3b9d92fc49741779363cfe")));

TEST(Cmac, StreamingMatchesOneShot) {
  SecureRandom rng(15);
  uint8_t key[16];
  rng.Fill(key, 16);
  Aes128 aes(key);
  Cmac128 cmac(aes);
  std::vector<uint8_t> msg(200);
  rng.Fill(msg.data(), msg.size());
  for (size_t split1 = 0; split1 < msg.size(); split1 += 17) {
    for (size_t split2 = split1; split2 < msg.size(); split2 += 41) {
      uint8_t one[16], multi[16];
      cmac.Mac(msg.data(), msg.size(), one);
      Cmac128::Stream s(cmac);
      s.Update(msg.data(), split1);
      s.Update(msg.data() + split1, split2 - split1);
      s.Update(msg.data() + split2, msg.size() - split2);
      s.Final(multi);
      ASSERT_EQ(0, std::memcmp(one, multi, 16))
          << "splits " << split1 << "," << split2;
    }
  }
}

TEST(Cmac, PortableMatchesAesNi) {
  if (!Aes128::HasAesNi()) GTEST_SKIP() << "no AES-NI on this CPU";
  SecureRandom rng(23);
  uint8_t key[16];
  rng.Fill(key, 16);
  Aes128 ni(key, Aes128::Impl::kAesNi);
  Aes128 port(key, Aes128::Impl::kPortable);
  Cmac128 cmac_ni(ni);
  Cmac128 cmac_port(port);
  for (size_t len : {0u, 1u, 16u, 17u, 64u, 333u}) {
    std::vector<uint8_t> msg(len);
    rng.Fill(msg.data(), len);
    uint8_t a[16], b[16];
    cmac_ni.Mac(msg.data(), len, a);
    cmac_port.Mac(msg.data(), len, b);
    ASSERT_TRUE(MacEqual(a, b)) << "len " << len;
  }
}

// Differential: randomized keys AND lengths (the fixed-length cross-check
// above exercises one key only), one-shot and streaming both compared.
TEST(Cmac, RandomizedNiVsPortableDifferential) {
  if (!Aes128::HasAesNi()) GTEST_SKIP() << "no AES-NI on this CPU";
  SecureRandom rng(32);
  for (int trial = 0; trial < 128; ++trial) {
    uint8_t key[16];
    rng.Fill(key, 16);
    uint8_t len_byte;
    rng.Fill(&len_byte, 1);
    size_t len = len_byte % 400;  // covers empty, sub-block, multi-block
    std::vector<uint8_t> msg(len);
    rng.Fill(msg.data(), len);
    Aes128 ni(key, Aes128::Impl::kAesNi);
    Aes128 port(key, Aes128::Impl::kPortable);
    Cmac128 cmac_ni(ni);
    Cmac128 cmac_port(port);
    uint8_t a[16], b[16];
    cmac_ni.Mac(msg.data(), len, a);
    cmac_port.Mac(msg.data(), len, b);
    ASSERT_TRUE(MacEqual(a, b)) << "trial " << trial << " len " << len;
    Cmac128::Stream s(cmac_ni);
    size_t split = len / 2;
    s.Update(msg.data(), split);
    s.Update(msg.data() + split, len - split);
    uint8_t c[16];
    s.Final(c);
    ASSERT_TRUE(MacEqual(b, c)) << "trial " << trial << " len " << len;
  }
}

TEST(Cmac, CbcMacBlocksMatchesManualChain) {
  SecureRandom rng(24);
  uint8_t key[16];
  rng.Fill(key, 16);
  Aes128 aes(key);
  std::vector<uint8_t> data(16 * 7);
  rng.Fill(data.data(), data.size());
  uint8_t bulk[16] = {0};
  aes.CbcMacBlocks(bulk, data.data(), 7);
  uint8_t manual[16] = {0};
  for (int b = 0; b < 7; ++b) {
    for (int i = 0; i < 16; ++i) manual[i] ^= data[b * 16 + i];
    aes.EncryptBlock(manual, manual);
  }
  EXPECT_TRUE(MacEqual(bulk, manual));
}

TEST(Cmac, DifferentMessagesDifferentTags) {
  SecureRandom rng(16);
  uint8_t key[16];
  rng.Fill(key, 16);
  Aes128 aes(key);
  Cmac128 cmac(aes);
  uint8_t a[32], tag_a[16], tag_b[16];
  rng.Fill(a, 32);
  cmac.Mac(a, 32, tag_a);
  a[7] ^= 1;
  cmac.Mac(a, 32, tag_b);
  EXPECT_FALSE(MacEqual(tag_a, tag_b));
}

TEST(Cmac, MacEqualConstantTimeSemantics) {
  uint8_t a[16] = {0};
  uint8_t b[16] = {0};
  EXPECT_TRUE(MacEqual(a, b));
  b[15] = 1;
  EXPECT_FALSE(MacEqual(a, b));
  b[15] = 0;
  b[0] = 0x80;
  EXPECT_FALSE(MacEqual(a, b));
}

TEST(SecureRandom, DeterministicWithSeed) {
  SecureRandom a(99), b(99), c(100);
  uint8_t x[64], y[64], z[64];
  a.Fill(x, 64);
  b.Fill(y, 64);
  c.Fill(z, 64);
  EXPECT_EQ(0, std::memcmp(x, y, 64));
  EXPECT_NE(0, std::memcmp(x, z, 64));
}

TEST(SecureRandom, StreamAdvances) {
  SecureRandom rng(5);
  uint64_t a = rng.NextU64();
  uint64_t b = rng.NextU64();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace aria::crypto
