// Invariant regression battery (DESIGN.md §9): mini YCSB-A/C workloads over
// the full factory matrix, asserting that every applicable cross-layer
// conservation law holds — for FIFO and LRU caches, with and without level
// pinning, stop-swap, clean-write-back avoidance and the cost model.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/store_factory.h"
#include "obs/invariants.h"
#include "workload/driver.h"

namespace aria {
namespace {

size_t DistinctLaws(const obs::InvariantReport& report) {
  return std::set<std::string>(report.laws_checked.begin(),
                               report.laws_checked.end())
      .size();
}

StoreOptions MiniOpts(Scheme scheme, IndexKind index) {
  StoreOptions opts;
  opts.scheme = scheme;
  opts.index = index;
  opts.keyspace = 2048;
  opts.num_buckets = 512;
  opts.shieldstore_buckets = 512;
  return opts;
}

/// Prepopulate, replay a YCSB mix, delete a slice of the keyspace (so the
/// fetch/free/used books move in both directions), then audit.
obs::InvariantReport RunAndCheck(const StoreOptions& opts, double read_ratio,
                                 uint64_t ops, StoreBundle* bundle) {
  EXPECT_TRUE(CreateStore(opts, bundle).ok());
  Driver driver(/*seed=*/11);
  EXPECT_TRUE(
      driver.Prepopulate(bundle->store.get(), opts.keyspace / 2, 32).ok());
  YcsbSpec spec;
  spec.keyspace = opts.keyspace / 2;
  spec.read_ratio = read_ratio;
  spec.value_size = 32;
  spec.skewness = 0.99;
  spec.seed = opts.seed;
  auto r = driver.RunYcsb(bundle->store.get(), bundle->enclave.get(), spec,
                          ops);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  for (uint64_t id = 0; id < opts.keyspace / 8; ++id) {
    EXPECT_TRUE(bundle->store->Delete(MakeKey(id)).ok());
  }
  return bundle->CheckInvariants();
}

TEST(ObsInvariants, FullFactoryMatrixYcsbA) {
  struct Combo {
    Scheme scheme;
    IndexKind index;
  };
  const std::vector<Combo> matrix = {
      {Scheme::kAria, IndexKind::kHash},
      {Scheme::kAria, IndexKind::kBTree},
      {Scheme::kAria, IndexKind::kBPlusTree},
      {Scheme::kAria, IndexKind::kCuckoo},
      {Scheme::kAriaNoCache, IndexKind::kHash},
      {Scheme::kAriaNoCache, IndexKind::kBTree},
      {Scheme::kAriaNoCache, IndexKind::kBPlusTree},
      {Scheme::kAriaNoCache, IndexKind::kCuckoo},
      {Scheme::kShieldStore, IndexKind::kHash},
      {Scheme::kBaseline, IndexKind::kHash},
      {Scheme::kBaseline, IndexKind::kBTree},
  };
  for (const Combo& combo : matrix) {
    StoreBundle bundle;
    obs::InvariantReport report =
        RunAndCheck(MiniOpts(combo.scheme, combo.index), /*read_ratio=*/0.5,
                    /*ops=*/3000, &bundle);
    EXPECT_TRUE(report.ok())
        << bundle.label << ": " << report.ToString();
    if (combo.scheme == Scheme::kAria) {
      // The flagship configuration must evaluate the full law suite.
      EXPECT_GE(DistinctLaws(report), 6u) << bundle.label;
    }
  }
}

TEST(ObsInvariants, YcsbAandCUnderFifoAndLruWithEvictions) {
  for (CachePolicy policy : {CachePolicy::kFifo, CachePolicy::kLru}) {
    for (double read_ratio : {0.5, 1.0}) {  // YCSB-A / YCSB-C
      StoreOptions opts = MiniOpts(Scheme::kAria, IndexKind::kHash);
      // Tiny unpinned cache: every access contends for a handful of slots,
      // so the eviction and swap-byte laws are exercised, not vacuous.
      opts.cache_bytes = 4096;
      opts.pinned_levels = 0;
      opts.policy = policy;
      opts.stop_swap_enabled = false;
      StoreBundle bundle;
      obs::InvariantReport report =
          RunAndCheck(opts, read_ratio, /*ops=*/3000, &bundle);
      EXPECT_TRUE(report.ok())
          << bundle.label << " policy=" << static_cast<int>(policy)
          << " rr=" << read_ratio << ": " << report.ToString();
      obs::Snapshot snap = bundle.Metrics();
      EXPECT_GT(snap.Get("cm.tree0.cache.evictions"), 0u);
      EXPECT_GT(snap.Get("cm.tree0.cache.bytes_swapped_out"), 0u);
      EXPECT_EQ(snap.Get("cm.tree0.cache.hits") +
                    snap.Get("cm.tree0.cache.misses"),
                snap.Get("cm.tree0.cache.accesses"));
    }
  }
}

TEST(ObsInvariants, PinningAndStopSwapVariants) {
  struct Variant {
    int pinned_levels;
    bool stop_swap_enabled;
    bool start_stopped;
  };
  for (const Variant& v : std::vector<Variant>{{-1, true, false},
                                               {0, false, false},
                                               {1, true, false},
                                               {-1, true, true}}) {
    StoreOptions opts = MiniOpts(Scheme::kAria, IndexKind::kHash);
    opts.pinned_levels = v.pinned_levels;
    opts.stop_swap_enabled = v.stop_swap_enabled;
    opts.start_stopped = v.start_stopped;
    StoreBundle bundle;
    obs::InvariantReport report =
        RunAndCheck(opts, /*read_ratio=*/0.5, /*ops=*/2000, &bundle);
    EXPECT_TRUE(report.ok())
        << bundle.label << " pinned=" << v.pinned_levels
        << " stop_swap=" << v.stop_swap_enabled
        << " start_stopped=" << v.start_stopped << ": " << report.ToString();
    if (v.start_stopped) {
      EXPECT_EQ(bundle.Metrics().Get("cm.tree0.cache.swap_stopped"), 1u);
    }
  }
}

TEST(ObsInvariants, CleanWritebacksAllowedStillConserve) {
  StoreOptions opts = MiniOpts(Scheme::kAria, IndexKind::kHash);
  opts.avoid_clean_writeback = false;  // §IV-C optimization off
  opts.cache_bytes = 4096;
  opts.pinned_levels = 0;
  opts.stop_swap_enabled = false;
  StoreBundle bundle;
  obs::InvariantReport report =
      RunAndCheck(opts, /*read_ratio=*/0.9, /*ops=*/3000, &bundle);
  EXPECT_TRUE(report.ok()) << report.ToString();
  // With the optimization off, clean evictions must write back, and the
  // eviction/swap-byte laws account for those bytes too.
  EXPECT_GT(bundle.Metrics().Get("cm.tree0.cache.clean_writebacks"), 0u);
}

TEST(ObsInvariants, CostModelDisabledChargesNothing) {
  StoreOptions opts = MiniOpts(Scheme::kAria, IndexKind::kHash);
  opts.cost_model.enabled = false;
  StoreBundle bundle;
  obs::InvariantReport report =
      RunAndCheck(opts, /*read_ratio=*/0.5, /*ops=*/2000, &bundle);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(bundle.Metrics().Get("sgx.charged_cycles"), 0u);
}

TEST(ObsInvariants, OcallAllocatorAttribution) {
  StoreOptions opts = MiniOpts(Scheme::kAria, IndexKind::kHash);
  opts.use_heap_allocator = false;  // AriaBase: one OCALL per alloc/free
  StoreBundle bundle;
  obs::InvariantReport report =
      RunAndCheck(opts, /*read_ratio=*/0.5, /*ops=*/2000, &bundle);
  EXPECT_TRUE(report.ok()) << report.ToString();
  obs::Snapshot snap = bundle.Metrics();
  EXPECT_EQ(snap.Get("sgx.ocalls"), snap.Get("alloc.ocalls"));
  EXPECT_GT(snap.Get("sgx.ocalls"), 0u);
}

TEST(ObsInvariants, AllocatorFootprintsDecomposeBytesInUse) {
  StoreBundle bundle;
  obs::InvariantReport report =
      RunAndCheck(MiniOpts(Scheme::kAria, IndexKind::kHash),
                  /*read_ratio=*/0.3, /*ops=*/2000, &bundle);
  EXPECT_TRUE(report.ok()) << report.ToString();
  obs::Snapshot snap = bundle.Metrics();
  EXPECT_GT(snap.Get("alloc.bytes_in_use"), 0u);
  EXPECT_EQ(snap.Get("alloc.bytes_in_use"),
            snap.Get("index.mem.untrusted_bytes") +
                snap.Get("cm.mem.untrusted_bytes"));
  // Both components hold live untrusted memory in this configuration.
  EXPECT_GT(snap.Get("index.mem.untrusted_bytes"), 0u);
  EXPECT_GT(snap.Get("cm.mem.untrusted_bytes"), 0u);
}

TEST(ObsInvariants, DeltaIsolatesOneWorkloadPhase) {
  StoreOptions opts = MiniOpts(Scheme::kAria, IndexKind::kHash);
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  Driver driver(/*seed=*/13);
  ASSERT_TRUE(driver.Prepopulate(bundle.store.get(), 1024, 32).ok());
  obs::Snapshot before = bundle.Metrics();
  YcsbSpec spec;
  spec.keyspace = 1024;
  spec.read_ratio = 1.0;  // reads only: no new counters, no new allocations
  spec.value_size = 32;
  ASSERT_TRUE(
      driver.RunYcsb(bundle.store.get(), bundle.enclave.get(), spec, 1000)
          .ok());
  obs::Snapshot delta = bundle.Metrics().Delta(before);
  EXPECT_EQ(delta.Get("cm.reads"), 1000u);
  EXPECT_EQ(delta.Get("cm.bumps"), 0u);
  EXPECT_EQ(delta.Get("cm.fetches"), 0u);
  // Gauges carry the later absolute value, not a difference.
  EXPECT_EQ(delta.Get("index.live_entries"), 1024u);
}

// --- optimistic-read / epoch-reclamation laws (DESIGN.md §9, §14) -----------

obs::InvariantReport CheckOptimisticSnapshot(const obs::Snapshot& snap) {
  obs::InvariantReport report;
  obs::InvariantChecker::CheckOptimisticReads(snap, &report);
  return report;
}

obs::Snapshot ConservedOptimisticSnapshot() {
  obs::Snapshot snap;
  auto set = [&snap](const std::string& base) {
    snap.Set(base + ".optimistic_gets", 100, obs::MetricKind::kCounter);
    snap.Set(base + ".optimistic_hits", 90, obs::MetricKind::kCounter);
    snap.Set(base + ".optimistic_retries", 25, obs::MetricKind::kCounter);
    snap.Set(base + ".optimistic_fallbacks", 10, obs::MetricKind::kCounter);
    snap.Set(base + ".epoch_retired", 40, obs::MetricKind::kCounter);
    snap.Set(base + ".epoch_reclaimed", 32, obs::MetricKind::kCounter);
    snap.Set(base + ".epoch_pending", 8, obs::MetricKind::kGauge);
  };
  set("core.shard0");
  set("core");  // single shard: the aggregate equals the shard
  return snap;
}

TEST(ObsInvariants, OptimisticLawsHoldOnAConservedSnapshot) {
  obs::InvariantReport report =
      CheckOptimisticSnapshot(ConservedOptimisticSnapshot());
  EXPECT_TRUE(report.ok()) << report.ToString();
  std::set<std::string> laws(report.laws_checked.begin(),
                             report.laws_checked.end());
  EXPECT_TRUE(laws.count("optimistic-read-conservation"));
  EXPECT_TRUE(laws.count("epoch-reclamation-conservation"));
}

TEST(ObsInvariants, OptimisticLawsAreVacuousWithoutTheFrontEnd) {
  obs::Snapshot snap;
  snap.Set("cm.reads", 7, obs::MetricKind::kCounter);
  obs::InvariantReport report = CheckOptimisticSnapshot(snap);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.laws_checked.empty());
}

TEST(ObsInvariants, LostFallbackViolatesOptimisticReadConservation) {
  // NEGATIVE CONTROL: a GET that neither hit nor fell back (dropped
  // counter increment) must trip the law, in the shard namespace only.
  obs::Snapshot snap = ConservedOptimisticSnapshot();
  snap.Set("core.shard0.optimistic_fallbacks", 9, obs::MetricKind::kCounter);
  obs::InvariantReport report = CheckOptimisticSnapshot(snap);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].law, "optimistic-read-conservation");
  EXPECT_NE(report.violations[0].detail.find("core.shard0"),
            std::string::npos);
}

TEST(ObsInvariants, LeakedRetireViolatesEpochReclamationConservation) {
  // NEGATIVE CONTROL: a retired block that is neither reclaimed nor
  // pending is a leak (or a double count) — the law must see it.
  obs::Snapshot snap = ConservedOptimisticSnapshot();
  snap.Set("core.epoch_reclaimed", 31, obs::MetricKind::kCounter);
  obs::InvariantReport report = CheckOptimisticSnapshot(snap);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].law, "epoch-reclamation-conservation");
  EXPECT_NE(report.violations[0].detail.find("core:"), std::string::npos);
}

TEST(ObsInvariants, OptimisticModeEndToEndLawsHold) {
  // A real optimistic-mode bundle must pass the full audit with both new
  // laws evaluated and non-vacuous. Sharded bundles have no top-level
  // enclave (each shard owns one), so the mix is replayed directly instead
  // of through RunAndCheck.
  StoreOptions opts = MiniOpts(Scheme::kAriaNoCache, IndexKind::kHash);
  opts.num_shards = 2;
  opts.read_mode = ReadMode::kOptimistic;
  StoreBundle bundle;
  ASSERT_TRUE(CreateStore(opts, &bundle).ok());
  Driver driver(/*seed=*/11);
  ASSERT_TRUE(
      driver.Prepopulate(bundle.store.get(), opts.keyspace / 2, 32).ok());
  YcsbSpec spec;
  spec.keyspace = opts.keyspace / 2;
  spec.read_ratio = 0.5;
  spec.value_size = 32;
  spec.skewness = 0.99;
  YcsbWorkload wl(spec);
  std::string value;
  for (int i = 0; i < 3000; ++i) {
    Op op = wl.Next();
    if (op.type == OpType::kGet) {
      Status st = bundle.store->Get(MakeKey(op.key_id), &value);
      ASSERT_TRUE(st.ok() || st.IsNotFound()) << st.ToString();
    } else {
      ASSERT_TRUE(bundle.store
                      ->Put(MakeKey(op.key_id),
                            std::string(op.value_size, 'v'))
                      .ok());
    }
  }
  for (uint64_t id = 0; id < opts.keyspace / 8; ++id) {
    ASSERT_TRUE(bundle.store->Delete(MakeKey(id)).ok());
  }
  obs::InvariantReport report = bundle.CheckInvariants();
  EXPECT_TRUE(report.ok()) << bundle.label << ": " << report.ToString();
  std::set<std::string> laws(report.laws_checked.begin(),
                             report.laws_checked.end());
  EXPECT_TRUE(laws.count("optimistic-read-conservation")) << bundle.label;
  EXPECT_TRUE(laws.count("epoch-reclamation-conservation")) << bundle.label;
  obs::Snapshot snap = bundle.Metrics();
  EXPECT_GT(snap.Get("core.optimistic_gets"), 0u);
  EXPECT_GT(snap.Get("core.epoch_retired"), 0u) << "CoW churn must retire";
}

}  // namespace
}  // namespace aria
