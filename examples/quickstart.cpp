// Quickstart: build an Aria store, put/get/delete a few keys, and inspect
// the Secure Cache statistics.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/store_factory.h"
#include "metadata/counter_manager.h"

int main() {
  using namespace aria;

  // 1. Configure the store: Aria with a hash index, sized for ~1M keys,
  //    91 MB simulated EPC (the paper's testbed).
  StoreOptions options;
  options.scheme = Scheme::kAria;
  options.index = IndexKind::kHash;
  options.keyspace = 1 << 20;

  StoreBundle bundle;
  Status st = CreateStore(options, &bundle);
  if (!st.ok()) {
    std::fprintf(stderr, "CreateStore failed: %s\n", st.ToString().c_str());
    return 1;
  }
  KVStore* store = bundle.store.get();
  std::printf("created %s\n", bundle.label.c_str());

  // 2. Basic operations. Every value is AES-CTR encrypted with a fresh
  //    per-record counter and CMAC-authenticated before it reaches
  //    untrusted memory.
  st = store->Put("user:1001", "alice");
  if (!st.ok()) return 1;
  st = store->Put("user:1002", "bob");
  if (!st.ok()) return 1;

  std::string value;
  st = store->Get("user:1001", &value);
  std::printf("Get(user:1001) -> %s (%s)\n", value.c_str(),
              st.ToString().c_str());

  st = store->Put("user:1001", "alice-v2");  // overwrite bumps the counter
  st = store->Get("user:1001", &value);
  std::printf("Get(user:1001) -> %s after overwrite\n", value.c_str());

  st = store->Delete("user:1002");
  st = store->Get("user:1002", &value);
  std::printf("Get(user:1002) -> %s after delete\n", st.ToString().c_str());

  // 3. Peek at the machinery: Secure Cache and enclave statistics.
  CounterManager* cm = bundle.counter_manager();
  SecureCacheStats cache = cm->CacheStats();
  const sgx::SgxStats& sgx = bundle.enclave->stats();
  std::printf("\nSecure Cache: hits=%llu misses=%llu pinned=%.1f MB\n",
              (unsigned long long)cache.hits, (unsigned long long)cache.misses,
              cache.pinned_bytes / 1048576.0);
  std::printf("Enclave: trusted bytes in use=%.1f MB, page swaps=%llu\n",
              bundle.enclave->trusted_bytes_in_use() / 1048576.0,
              (unsigned long long)sgx.page_swaps);
  std::printf("\nquickstart OK\n");
  return 0;
}
