// Standalone Aria network server (DESIGN.md §11, §12): a sharded Aria hash
// store behind the multi-loop epoll server, serving the binary wire
// protocol until SIGINT/SIGTERM. On shutdown it drains every event loop
// and the store (flushing dirty Secure Cache state), runs the
// end-of-serving conservation-law audit (including net-loop-conservation),
// and prints the full metrics snapshot.
//
//   ./build/examples/aria_server [key=value ...]
//     port=7777 shards=4 keys=65536 value_size=128 max_connections=64
//     loops=1   (epoll event-loop threads; pair with shards >= loops so
//                concurrent per-loop batches hit disjoint shard locks)
//
// Talk to it with examples/aria_cli-style code via aria::net::Client, or
// drive it with ./build/bench/bench_net_throughput (which starts its own
// in-process server on an ephemeral port — this binary is for manual runs
// and cross-machine experiments on a trusted network).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "core/store_factory.h"
#include "net/server.h"
#include "obs/invariants.h"
#include "obs/json.h"
#include "workload/driver.h"

using namespace aria;

namespace {

// Signal flag + self-pipe so the main thread can sleep in poll() instead of
// spinning; the handler only touches async-signal-safe state.
volatile std::sig_atomic_t g_stop = 0;
int g_wake_pipe[2] = {-1, -1};

void OnSignal(int) {
  g_stop = 1;
  char byte = 1;
  [[maybe_unused]] ssize_t n = write(g_wake_pipe[1], &byte, 1);
}

struct Config {
  uint16_t port = 7777;
  uint32_t shards = 4;
  uint64_t keys = 65'536;
  size_t value_size = 128;
  int max_connections = 64;
  uint32_t loops = 1;
};

bool ParseArg(Config* cfg, const std::string& arg) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos) return false;
  const std::string key = arg.substr(0, eq);
  const std::string val = arg.substr(eq + 1);
  if (key == "port")
    cfg->port = static_cast<uint16_t>(std::strtoul(val.c_str(), nullptr, 10));
  else if (key == "shards")
    cfg->shards = static_cast<uint32_t>(std::strtoul(val.c_str(), nullptr, 10));
  else if (key == "keys") cfg->keys = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "value_size")
    cfg->value_size = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "max_connections")
    cfg->max_connections = static_cast<int>(std::strtol(val.c_str(), nullptr, 10));
  else if (key == "loops")
    cfg->loops = static_cast<uint32_t>(std::strtoul(val.c_str(), nullptr, 10));
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (!ParseArg(&cfg, argv[i])) {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  StoreOptions options;
  options.scheme = Scheme::kAria;
  options.index = IndexKind::kHash;
  options.keyspace = cfg.keys;
  options.num_shards = cfg.shards;
  StoreBundle bundle;
  Status st = CreateStore(options, &bundle);
  if (!st.ok()) {
    std::fprintf(stderr, "CreateStore: %s\n", st.ToString().c_str());
    return 1;
  }

  Driver driver;
  st = driver.Prepopulate(bundle.store.get(), cfg.keys, cfg.value_size);
  if (!st.ok()) {
    std::fprintf(stderr, "Prepopulate: %s\n", st.ToString().c_str());
    return 1;
  }

  net::ServerOptions server_options;
  server_options.port = cfg.port;
  server_options.max_connections = cfg.max_connections;
  server_options.num_loops = cfg.loops;
  net::Server server(bundle.store.get(), server_options);
  bundle.registry.Register("net", &server);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "Server::Start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s serving on 127.0.0.1:%u (%u shards, %u event loops, "
              "%llu keys)\n",
              bundle.label.c_str(), server.port(), cfg.shards, cfg.loops,
              static_cast<unsigned long long>(cfg.keys));
  std::printf("Ctrl-C for graceful shutdown + end-of-serving audit\n");

  if (pipe(g_wake_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    pollfd pfd{g_wake_pipe[0], POLLIN, 0};
    poll(&pfd, 1, -1);
  }

  std::printf("\nshutting down...\n");
  st = server.Stop();
  if (!st.ok()) {
    std::fprintf(stderr, "Server::Stop: %s\n", st.ToString().c_str());
    return 1;
  }

  obs::InvariantReport report = bundle.CheckInvariants();
  std::printf("%s\n", report.ToString().c_str());
  obs::Snapshot snap = bundle.Metrics();
  std::printf("%s\n", obs::ToJson(snap).c_str());
  return report.ok() ? 0 : 1;
}
