// Interactive shell over an Aria store — the quickest way to poke at the
// system by hand.
//
//   ./build/examples/aria_cli [scheme] [index] [keys]
//     scheme: aria | nocache | shieldstore | baseline
//     index:  hash | btree | bplus | cuckoo
//
// Commands:
//   put <key> <value>      get <key>        del <key>
//   scan <start> <n>       (ordered indexes only)
//   stats                  fill <n>         quit
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "core/store_factory.h"
#include "metadata/counter_manager.h"
#include "workload/ycsb.h"

using namespace aria;

namespace {

void PrintStats(StoreBundle& bundle) {
  const sgx::SgxStats& s = bundle.enclave->stats();
  std::printf("store: %s, %llu keys\n", bundle.label.c_str(),
              (unsigned long long)bundle.store->size());
  std::printf("enclave: %.1f MB trusted in use (budget %.1f MB), %llu page "
              "swaps, %llu ocalls\n",
              bundle.enclave->trusted_bytes_in_use() / 1048576.0,
              bundle.enclave->epc_budget_bytes() / 1048576.0,
              (unsigned long long)s.page_swaps, (unsigned long long)s.ocalls);
  if (CounterManager* cm = bundle.counter_manager()) {
    SecureCacheStats cs = cm->CacheStats();
    std::printf("secure cache: hit %.1f%%, %llu evictions, %llu MAC "
                "verifications, swap %s\n",
                cs.HitRatio() * 100, (unsigned long long)cs.evictions,
                (unsigned long long)cs.mac_verifications,
                cs.swap_stopped ? "STOPPED" : "active");
    std::printf("counter area: %llu trees, %llu counters in use\n",
                (unsigned long long)cm->num_trees(),
                (unsigned long long)cm->used_counters());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string scheme = argc > 1 ? argv[1] : "aria";
  std::string index = argc > 2 ? argv[2] : "hash";
  uint64_t keys = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1 << 20;

  StoreOptions options;
  options.keyspace = keys;
  if (scheme == "aria") options.scheme = Scheme::kAria;
  else if (scheme == "nocache") options.scheme = Scheme::kAriaNoCache;
  else if (scheme == "shieldstore") options.scheme = Scheme::kShieldStore;
  else if (scheme == "baseline") options.scheme = Scheme::kBaseline;
  else { std::fprintf(stderr, "unknown scheme %s\n", scheme.c_str()); return 2; }
  if (index == "hash") options.index = IndexKind::kHash;
  else if (index == "btree") options.index = IndexKind::kBTree;
  else if (index == "bplus") options.index = IndexKind::kBPlusTree;
  else if (index == "cuckoo") options.index = IndexKind::kCuckoo;
  else { std::fprintf(stderr, "unknown index %s\n", index.c_str()); return 2; }

  StoreBundle bundle;
  Status st = CreateStore(options, &bundle);
  if (!st.ok()) {
    std::fprintf(stderr, "CreateStore: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s ready (type 'help')\n", bundle.label.c_str());

  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "help") {
      std::printf("put <k> <v> | get <k> | del <k> | scan <start> <n> | "
                  "fill <n> | stats | quit\n");
    } else if (cmd == "put") {
      std::string k, v;
      in >> k >> v;
      st = bundle.store->Put(k, v);
      std::printf("%s\n", st.ToString().c_str());
    } else if (cmd == "get") {
      std::string k, v;
      in >> k;
      st = bundle.store->Get(k, &v);
      if (st.ok()) std::printf("%s\n", v.c_str());
      else std::printf("%s\n", st.ToString().c_str());
    } else if (cmd == "del") {
      std::string k;
      in >> k;
      st = bundle.store->Delete(k);
      std::printf("%s\n", st.ToString().c_str());
    } else if (cmd == "scan") {
      std::string start;
      size_t n = 10;
      in >> start >> n;
      auto* ordered = dynamic_cast<OrderedKVStore*>(bundle.store.get());
      if (ordered == nullptr) {
        std::printf("scan needs an ordered index (btree/bplus)\n");
        continue;
      }
      std::vector<std::pair<std::string, std::string>> out;
      st = ordered->RangeScan(start, n, &out);
      if (!st.ok()) {
        std::printf("%s\n", st.ToString().c_str());
        continue;
      }
      for (auto& [k, v] : out) std::printf("  %s -> %s\n", k.c_str(), v.c_str());
      std::printf("(%zu rows)\n", out.size());
    } else if (cmd == "fill") {
      uint64_t n = 1000;
      in >> n;
      for (uint64_t i = 0; i < n; ++i) {
        st = bundle.store->Put(MakeKey(i), MakeValue(i, 16));
        if (!st.ok()) {
          std::printf("fill stopped at %llu: %s\n", (unsigned long long)i,
                      st.ToString().c_str());
          break;
        }
      }
      std::printf("size=%llu\n", (unsigned long long)bundle.store->size());
    } else if (cmd == "stats") {
      PrintStats(bundle);
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  return 0;
}
