// Open-loop load generation tour: spin up an in-process Aria store behind
// the epoll server, then pace a Poisson request stream at it at a fixed
// goal QPS — the way a real client population arrives, not as fast as the
// server answers. Prints the per-window offered/completed/p99 trace, the
// final percentile table (latency stamped from the *scheduled* send time,
// so a server stall can't hide in coordinated omission), the goal-QPS
// controller's verdict, and the conservation-law audit.
//
//   ./build/examples/openloop_loadgen [goal_qps] [seconds] [connections]
//     goal_qps:    offered arrival rate, default 20000
//     seconds:     run length, default 2
//     connections: client connections (conn 0 gets 2x the others' share)
//
// Try a goal well above what your machine sustains to watch the controller
// latch `saturated` while the open-loop percentiles blow up honestly.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/store_factory.h"
#include "loadgen/loadgen.h"
#include "net/server.h"
#include "obs/invariants.h"
#include "workload/driver.h"

using namespace aria;

int main(int argc, char** argv) {
  const double goal_qps = argc > 1 ? std::strtod(argv[1], nullptr) : 20'000;
  const double seconds = argc > 2 ? std::strtod(argv[2], nullptr) : 2.0;
  const uint32_t connections =
      argc > 3 ? static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 10)) : 4;
  const uint64_t keys = 16'384;

  StoreOptions options;
  options.scheme = Scheme::kAria;
  options.index = IndexKind::kHash;
  options.keyspace = keys;
  options.num_shards = 2;
  StoreBundle bundle;
  Status st = CreateStore(options, &bundle);
  if (!st.ok()) {
    std::fprintf(stderr, "CreateStore: %s\n", st.ToString().c_str());
    return 1;
  }
  Driver driver;
  st = driver.Prepopulate(bundle.store.get(), keys, 128);
  if (!st.ok()) {
    std::fprintf(stderr, "Prepopulate: %s\n", st.ToString().c_str());
    return 1;
  }
  net::Server server(bundle.store.get(), net::ServerOptions{});
  bundle.registry.Register("net", &server);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "Server::Start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s behind 127.0.0.1:%u, %llu keys prepopulated\n",
              bundle.label.c_str(), server.port(),
              static_cast<unsigned long long>(keys));

  loadgen::OpenLoopOptions opt;
  opt.port = server.port();
  opt.connections = connections;
  opt.goal_qps = goal_qps;
  opt.duration_seconds = seconds;
  // Skewed per-connection shares: conn 0 offers twice the others' rate.
  opt.load_fractions.assign(connections, 1.0);
  opt.load_fractions[0] = 2.0;
  loadgen::OpenLoopLoadGen lg(opt);
  bundle.registry.Register("loadgen", &lg);

  loadgen::YcsbStreamOptions stream;
  stream.keyspace = keys;
  std::printf("offering %.0f qps (Poisson) for %.1fs over %u connections...\n",
              goal_qps, seconds, connections);
  st = lg.Run(loadgen::MakeYcsbRequestFn(connections, stream));
  if (!st.ok()) {
    std::fprintf(stderr, "Run: %s\n", st.ToString().c_str());
    return 1;
  }
  server.Stop().ok();

  const loadgen::OpenLoopReport& r = lg.report();
  std::printf("\n  window   offered  completed   p99\n");
  for (const loadgen::WindowSample& w : r.windows) {
    std::printf("  %5.2fs  %8llu  %9llu  %7.0fus\n", w.start_seconds,
                static_cast<unsigned long long>(w.offered),
                static_cast<unsigned long long>(w.completed),
                static_cast<double>(w.p99_nanos) / 1e3);
  }
  std::printf("\noffered %.0f qps, achieved %.0f qps (%llu/%llu completed, "
              "%llu timed out)\n",
              r.offered_qps, r.achieved_qps,
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.offered),
              static_cast<unsigned long long>(r.timed_out));
  std::printf("latency: p50 %.0fus  p99 %.0fus  p999 %.0fus  max %.0fus\n",
              static_cast<double>(r.latency.P50()) / 1e3,
              static_cast<double>(r.latency.P99()) / 1e3,
              static_cast<double>(r.latency.P999()) / 1e3,
              static_cast<double>(r.latency.max()) / 1e3);
  std::printf("controller: trim x%.3f, %s\n", lg.controller().trim(),
              r.saturated ? "SATURATED — goal is beyond this server"
                          : "goal sustained");

  obs::InvariantReport audit = bundle.CheckInvariants();
  std::printf("invariant audit: %s (%zu laws, incl. "
              "loadgen-request-conservation)\n",
              audit.ok() ? "clean" : "VIOLATIONS", audit.laws_checked.size());
  if (!audit.ok()) {
    std::printf("%s\n", audit.ToString().c_str());
    return 1;
  }
  return r.ok() ? 0 : 1;
}
