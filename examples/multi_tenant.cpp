// Multi-tenant demo (§VI-D5): N independent Aria instances share the
// platform; each gets EPC/N for its Secure Cache. Shows per-tenant
// throughput as the tenant count grows.
//
//   ./build/examples/multi_tenant [tenants] [keys-per-tenant] [ops]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/store_factory.h"
#include "workload/driver.h"

using namespace aria;

int main(int argc, char** argv) {
  int tenants = argc > 1 ? std::atoi(argv[1]) : 2;
  uint64_t keys = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50000;
  uint64_t ops = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 100000;

  std::vector<std::unique_ptr<StoreBundle>> bundles;
  for (int t = 0; t < tenants; ++t) {
    StoreOptions options;
    options.scheme = Scheme::kAria;
    options.keyspace = keys;
    options.epc_budget_bytes = sgx::CostModel::kDefaultEpcBytes / tenants;
    options.seed = 500 + t;
    auto bundle = std::make_unique<StoreBundle>();
    if (!CreateStore(options, bundle.get()).ok()) return 1;
    bundles.push_back(std::move(bundle));
  }
  std::printf("%d tenants, %.1f MB EPC each, %llu keys each\n", tenants,
              sgx::CostModel::kDefaultEpcBytes / tenants / 1048576.0,
              (unsigned long long)keys);

  std::vector<RunResult> results(tenants);
  std::vector<std::thread> threads;
  for (int t = 0; t < tenants; ++t) {
    threads.emplace_back([&, t]() {
      Driver driver(100 + t);
      if (!driver.Prepopulate(bundles[t]->store.get(), keys, 16).ok()) return;
      YcsbSpec spec;
      spec.keyspace = keys;
      spec.seed = 9000 + t;
      auto r = driver.RunYcsb(bundles[t]->store.get(),
                              bundles[t]->enclave.get(), spec, ops);
      if (r.ok()) results[t] = r.value();
    });
  }
  for (auto& th : threads) th.join();

  double total = 0;
  for (int t = 0; t < tenants; ++t) {
    std::printf("tenant %d: %.0f ops/s (hit ratio n/a per-tenant cache)\n", t,
                results[t].Throughput());
    total += results[t].Throughput();
  }
  std::printf("aggregate: %.0f ops/s, average per tenant: %.0f ops/s\n", total,
              total / tenants);
  return 0;
}
