// Attack demo: mounts the attacks from the paper's threat model against a
// live Aria store by writing directly into untrusted memory, and shows each
// one being detected as an IntegrityViolation.
//
//   ./build/examples/attack_demo
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/aria_hash.h"
#include "core/store_factory.h"
#include "metadata/counter_manager.h"
#include "workload/ycsb.h"

using namespace aria;

namespace {
void Report(const char* attack, const Status& st) {
  std::printf("  %-46s -> %s\n", attack,
              st.IsIntegrityViolation() ? "DETECTED" : st.ToString().c_str());
}
}  // namespace

int main() {
  StoreOptions options;
  options.scheme = Scheme::kAria;
  options.keyspace = 4096;
  options.num_buckets = 32;
  StoreBundle bundle;
  if (!CreateStore(options, &bundle).ok()) return 1;
  auto* store = static_cast<AriaHash*>(bundle.store.get());

  for (int i = 0; i < 256; ++i) {
    if (!store->Put(MakeKey(i), MakeValue(i, 64)).ok()) return 1;
  }
  std::printf("store populated with 256 encrypted records\n\n");
  std::string v;

  // Attack 1: flip a ciphertext bit of a record in untrusted memory.
  {
    uint8_t* entry = store->DebugEntry(MakeKey(10));
    entry[16 + RecordCodec::kHeaderSize] ^= 0x01;
    Report("tamper record ciphertext", store->Get(MakeKey(10), &v));
  }

  // Attack 2: replay — snapshot a sealed record, let the owner overwrite
  // it (bumping its counter), then restore the stale bytes.
  {
    uint8_t* entry = store->DebugEntry(MakeKey(11));
    RecordHeader h = RecordCodec::Peek(entry + 16);
    size_t size = RecordCodec::SealedSize(h.k_len, h.v_len);
    std::vector<uint8_t> stale(entry + 16, entry + 16 + size);
    store->Put(MakeKey(11), MakeValue(11, 64, 2)).ok();
    std::memcpy(entry + 16, stale.data(), size);
    Report("replay stale record (rollback)", store->Get(MakeKey(11), &v));
  }

  // Attack 3: pointer exchange — swap two bucket head pointers (Fig. 7).
  {
    uint8_t** c1 = store->DebugBucketCell(MakeKey(0));
    uint8_t** c2 = store->DebugBucketCell(MakeKey(1));
    if (c1 != c2) {
      std::swap(*c1, *c2);
      Report("exchange two index pointers", store->Get(MakeKey(0), &v));
      std::swap(*c1, *c2);  // restore
    }
  }

  // Attack 4: unauthorized deletion — clear a chain head.
  {
    uint8_t** cell = store->DebugBucketCell(MakeKey(20));
    uint8_t* saved = *cell;
    *cell = nullptr;
    Report("unauthorized deletion of a chain", store->Get(MakeKey(20), &v));
    *cell = saved;
  }

  // Attack 5: tamper the Merkle-tree-protected counter area.
  {
    FlatMerkleTree* tree = bundle.counter_manager()->tree();
    // Corrupt an inner MT node: every verification chain through it fails.
    uint8_t* node = tree->NodePtr(1, 0);
    node[0] ^= 0xFF;
    Status worst = Status::OK();
    for (int i = 0; i < 256 && !worst.IsIntegrityViolation(); ++i) {
      worst = store->Get(MakeKey(i), &v);
      if (worst.IsNotFound()) worst = Status::OK();
    }
    Report("corrupt a Merkle tree inner node", worst);
    node[0] ^= 0xFF;  // restore
  }

  std::printf("\nall attacks on untrusted memory were detected\n");
  return 0;
}
