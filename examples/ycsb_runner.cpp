// YCSB / ETC workload runner CLI: replays a workload against any scheme and
// prints throughput (including simulated SGX time) plus internals.
//
//   ./build/examples/ycsb_runner [scheme] [keys] [ops] [read%] [dist]
//     scheme: aria | nocache | shieldstore | baseline | aria-tree
//     dist:   zipf | uniform | etc
//
//   ./build/examples/ycsb_runner aria 100000 200000 95 zipf
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/store_factory.h"
#include "metadata/counter_manager.h"
#include "workload/driver.h"

using namespace aria;

int main(int argc, char** argv) {
  std::string scheme_name = argc > 1 ? argv[1] : "aria";
  uint64_t keys = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;
  uint64_t ops = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 200000;
  double read_ratio = (argc > 4 ? std::atof(argv[4]) : 95.0) / 100.0;
  std::string dist = argc > 5 ? argv[5] : "zipf";

  StoreOptions options;
  options.keyspace = keys;
  if (scheme_name == "aria") {
    options.scheme = Scheme::kAria;
  } else if (scheme_name == "aria-tree") {
    options.scheme = Scheme::kAria;
    options.index = IndexKind::kBTree;
  } else if (scheme_name == "nocache") {
    options.scheme = Scheme::kAriaNoCache;
  } else if (scheme_name == "shieldstore") {
    options.scheme = Scheme::kShieldStore;
  } else if (scheme_name == "baseline") {
    options.scheme = Scheme::kBaseline;
  } else {
    std::fprintf(stderr, "unknown scheme %s\n", scheme_name.c_str());
    return 2;
  }

  StoreBundle bundle;
  Status st = CreateStore(options, &bundle);
  if (!st.ok()) {
    std::fprintf(stderr, "CreateStore: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("scheme=%s keys=%llu ops=%llu read=%.0f%% dist=%s\n",
              bundle.label.c_str(), (unsigned long long)keys,
              (unsigned long long)ops, read_ratio * 100, dist.c_str());

  Driver driver;
  std::printf("prepopulating...\n");
  if (dist == "etc") {
    EtcSpec spec;
    spec.keyspace = keys;
    spec.read_ratio = read_ratio;
    EtcWorkload wl(spec);
    st = driver.Prepopulate(bundle.store.get(), keys,
                            [&wl](uint64_t id) { return wl.ValueSizeFor(id); });
    if (!st.ok()) {
      std::fprintf(stderr, "prepopulate: %s\n", st.ToString().c_str());
      return 1;
    }
    auto r = driver.RunEtc(bundle.store.get(), bundle.enclave.get(), spec, ops);
    if (!r.ok()) {
      std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("throughput: %.0f ops/s (wall %.2fs + simulated %.2fs)\n",
                r->Throughput(), r->wall_seconds, r->sim_seconds);
  } else {
    YcsbSpec spec;
    spec.keyspace = keys;
    spec.read_ratio = read_ratio;
    spec.distribution = dist == "uniform" ? KeyDistribution::kUniform
                                          : KeyDistribution::kZipfian;
    st = driver.Prepopulate(bundle.store.get(), keys, spec.value_size);
    if (!st.ok()) {
      std::fprintf(stderr, "prepopulate: %s\n", st.ToString().c_str());
      return 1;
    }
    auto r =
        driver.RunYcsb(bundle.store.get(), bundle.enclave.get(), spec, ops);
    if (!r.ok()) {
      std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("throughput: %.0f ops/s (wall %.2fs + simulated %.2fs)\n",
                r->Throughput(), r->wall_seconds, r->sim_seconds);
  }

  const sgx::SgxStats& s = bundle.enclave->stats();
  std::printf("enclave: trusted=%.1f MB peak=%.1f MB swaps=%llu ocalls=%llu\n",
              bundle.enclave->trusted_bytes_in_use() / 1048576.0,
              s.trusted_bytes_peak / 1048576.0,
              (unsigned long long)s.page_swaps, (unsigned long long)s.ocalls);
  if (CounterManager* cm = bundle.counter_manager()) {
    SecureCacheStats cs = cm->CacheStats();
    std::printf(
        "secure cache: hit=%.1f%% evictions=%llu clean-discards=%llu "
        "swap-stopped=%d pinned=%.1f MB\n",
        cs.HitRatio() * 100, (unsigned long long)cs.evictions,
        (unsigned long long)cs.clean_discards, cs.swap_stopped ? 1 : 0,
        cs.pinned_bytes / 1048576.0);
  }
  return 0;
}
