// Range-scan tour: the reason Aria supports tree indexes at all (§III).
// Builds an Aria-T store with an order-book-like keyspace and serves range
// queries over encrypted records.
//
//   ./build/examples/range_scan_tour
#include <cstdio>
#include <string>

#include "core/aria_btree.h"
#include "core/store_factory.h"

using namespace aria;

int main() {
  StoreOptions options;
  options.scheme = Scheme::kAria;
  options.index = IndexKind::kBTree;
  options.keyspace = 1 << 16;
  StoreBundle bundle;
  if (!CreateStore(options, &bundle).ok()) return 1;
  auto* tree = static_cast<AriaBTree*>(bundle.store.get());

  // A time-series-ish keyspace: orders keyed by zero-padded timestamps.
  char key[32], value[64];
  for (int t = 0; t < 5000; ++t) {
    std::snprintf(key, sizeof(key), "order:%08d", t * 7);
    std::snprintf(value, sizeof(value), "qty=%d;px=%.2f", t % 100,
                  100.0 + (t % 997) * 0.01);
    if (!tree->Put(key, value).ok()) return 1;
  }
  std::printf("inserted %llu encrypted orders, tree height %d\n",
              (unsigned long long)tree->size(), tree->height());

  // Range query: 10 orders starting at a timestamp that may not exist.
  std::vector<std::pair<std::string, std::string>> out;
  Status st = tree->RangeScan("order:00010000", 10, &out);
  if (!st.ok()) {
    std::fprintf(stderr, "scan: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nscan from order:00010000, limit 10:\n");
  for (auto& [k, v] : out) {
    std::printf("  %s -> %s\n", k.c_str(), v.c_str());
  }

  // Point lookups still work, and a full audit passes.
  std::string v;
  if (!tree->Get("order:00000007", &v).ok()) return 1;
  std::printf("\npoint Get(order:00000007) -> %s\n", v.c_str());
  Status audit = tree->VerifyFullIntegrity();
  std::printf("full integrity audit: %s\n", audit.ToString().c_str());
  return audit.ok() ? 0 : 1;
}
