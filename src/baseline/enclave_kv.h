// "Baseline" scheme (paper §III, Fig. 2): the entire KV store lives inside
// the enclave with no manual crypto — SGX hardware transparently protects
// everything, but every byte counts against the EPC, so working sets beyond
// ~91 MB page constantly. Chained hash table, plaintext entries, all
// allocations trusted and touched through the enclave runtime.
#pragma once

#include <cstdint>
#include <cstring>

#include "core/kv_store.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

struct EnclaveKVConfig {
  uint64_t num_buckets = 1 << 20;
};

class EnclaveKV : public KVStore {
 public:
  EnclaveKV(sgx::EnclaveRuntime* enclave, EnclaveKVConfig config);
  ~EnclaveKV() override;

  Status Init();

  Status Put(Slice key, Slice value) override;
  Status Get(Slice key, std::string* value) override;
  Status Delete(Slice key) override;
  const char* name() const override { return "Baseline"; }
  uint64_t size() const override { return size_; }

 private:
  struct Entry {
    Entry* next;
    uint64_t hash;
    uint16_t k_len;
    uint16_t v_len;
    uint16_t v_cap;
    uint16_t pad;
    // key bytes, then value bytes
    uint8_t* key() { return reinterpret_cast<uint8_t*>(this + 1); }
    uint8_t* value() { return key() + k_len; }
  };

  Entry* NewEntry(Slice key, Slice value, uint64_t h);

  sgx::EnclaveRuntime* enclave_;
  EnclaveKVConfig config_;
  Entry** buckets_ = nullptr;  // trusted
  uint64_t size_ = 0;
};

}  // namespace aria
