// "Baseline" scheme (paper §III, Fig. 2): the entire KV store lives inside
// the enclave with no manual crypto — SGX hardware transparently protects
// everything, but every byte counts against the EPC, so working sets beyond
// ~91 MB page constantly. Chained hash table, plaintext entries, all
// allocations trusted and touched through the enclave runtime.
//
// Lock-free read mode (`lock_free_reads`, DESIGN.md §14): chain pointers
// are accessed atomically, in-place value overwrites become byte-atomic,
// and displaced entries are routed through the RetireHook instead of being
// freed in place. Unlike Aria's record MACs, plaintext entries carry no
// per-record integrity check, so a lock-free reader can copy a value torn
// against an in-flight same-size overwrite — the ShardedStore seqlock
// (second shard-version read) is what rejects that copy, which makes this
// scheme the load-bearing negative control for the linearizability
// battery: break the revalidation and torn values become observable.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "core/kv_store.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

struct EnclaveKVConfig {
  uint64_t num_buckets = 1 << 20;

  /// Support TryLockFreeGet (see the file comment). Mutators still require
  /// external serialization (the shard writer lock).
  bool lock_free_reads = false;
};

class EnclaveKV : public KVStore {
 public:
  EnclaveKV(sgx::EnclaveRuntime* enclave, EnclaveKVConfig config);
  ~EnclaveKV() override;

  Status Init();

  Status Put(Slice key, Slice value) override;
  Status Get(Slice key, std::string* value) override;
  Status Delete(Slice key) override;
  LockFreeGetResult TryLockFreeGet(Slice key, std::string* value) override;
  void SetRetireHook(RetireHook hook) override {
    retire_hook_ = std::move(hook);
  }
  void FreeRetired(void* p) override { enclave_->TrustedFree(p); }
  const char* name() const override { return "Baseline"; }
  uint64_t size() const override { return size_; }

 private:
  struct Entry {
    Entry* next;
    uint64_t hash;
    uint16_t k_len;
    uint16_t v_len;  // atomically updated in lock-free mode (<= v_cap always)
    uint16_t v_cap;
    uint16_t pad;
    // key bytes, then value bytes
    uint8_t* key() { return reinterpret_cast<uint8_t*>(this + 1); }
    uint8_t* value() { return key() + k_len; }
    const uint8_t* key() const {
      return reinterpret_cast<const uint8_t*>(this + 1);
    }
    const uint8_t* value() const { return key() + k_len; }
  };

  // Chain cells are accessed through atomic_ref so lock-free readers never
  // race the (locked) writer. TrustedAlloc returns cache-line-aligned
  // blocks, so Entry fields are naturally aligned. (atomic_ref over a
  // const-qualified T is not portable until C++26, hence the const_casts on
  // the load-only helpers.)
  static Entry* LoadCell(Entry* const* loc) {
    return std::atomic_ref<Entry*>(*const_cast<Entry**>(loc))
        .load(std::memory_order_acquire);
  }
  static void StoreCell(Entry** loc, Entry* v) {
    std::atomic_ref<Entry*>(*loc).store(v, std::memory_order_release);
  }
  static uint16_t LoadVLen(const Entry* e) {
    return std::atomic_ref<uint16_t>(const_cast<Entry*>(e)->v_len)
        .load(std::memory_order_acquire);
  }

  Entry* NewEntry(Slice key, Slice value, uint64_t h);
  Status ReleaseEntry(Entry* e) {
    if (retire_hook_) {
      retire_hook_(e);
    } else {
      enclave_->TrustedFree(e);
    }
    return Status::OK();
  }

  sgx::EnclaveRuntime* enclave_;
  EnclaveKVConfig config_;
  Entry** buckets_ = nullptr;  // trusted
  uint64_t size_ = 0;
  RetireHook retire_hook_;
};

}  // namespace aria
