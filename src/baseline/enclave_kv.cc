#include "baseline/enclave_kv.h"

#include "common/fault_injection.h"
#include "common/hash.h"

namespace aria {

EnclaveKV::EnclaveKV(sgx::EnclaveRuntime* enclave, EnclaveKVConfig config)
    : enclave_(enclave), config_(config) {}

EnclaveKV::~EnclaveKV() {
  if (buckets_ == nullptr) return;
  for (uint64_t b = 0; b < config_.num_buckets; ++b) {
    Entry* e = buckets_[b];
    while (e != nullptr) {
      Entry* next = e->next;
      enclave_->TrustedFree(e);
      e = next;
    }
  }
  enclave_->TrustedFree(buckets_);
}

Status EnclaveKV::Init() {
  buckets_ = static_cast<Entry**>(
      enclave_->TrustedAlloc(config_.num_buckets * sizeof(Entry*)));
  if (buckets_ == nullptr) {
    return Status::CapacityExceeded("bucket array allocation");
  }
  return Status::OK();
}

EnclaveKV::Entry* EnclaveKV::NewEntry(Slice key, Slice value, uint64_t h) {
  Entry* e = static_cast<Entry*>(
      enclave_->TrustedAlloc(sizeof(Entry) + key.size() + value.size()));
  if (e == nullptr) return nullptr;
  e->next = nullptr;
  e->hash = h;
  e->k_len = static_cast<uint16_t>(key.size());
  e->v_len = static_cast<uint16_t>(value.size());
  e->v_cap = e->v_len;
  std::memcpy(e->key(), key.data(), key.size());
  std::memcpy(e->value(), value.data(), value.size());
  enclave_->TouchWrite(e, sizeof(Entry) + key.size() + value.size());
  return e;
}

Status EnclaveKV::Get(Slice key, std::string* value) {
  uint64_t h = Hash64(key);
  enclave_->TouchRead(&buckets_[h % config_.num_buckets], sizeof(Entry*));
  Entry* e = LoadCell(&buckets_[h % config_.num_buckets]);
  while (e != nullptr) {
    enclave_->TouchRead(e, sizeof(Entry) + e->k_len);
    if (e->hash == h && e->k_len == key.size() &&
        std::memcmp(e->key(), key.data(), key.size()) == 0) {
      uint16_t v_len = LoadVLen(e);
      enclave_->TouchRead(e->value(), v_len);
      value->assign(reinterpret_cast<const char*>(e->value()), v_len);
      return Status::OK();
    }
    e = LoadCell(&e->next);
  }
  return Status::NotFound();
}

LockFreeGetResult EnclaveKV::TryLockFreeGet(Slice key, std::string* value) {
  if (!config_.lock_free_reads || buckets_ == nullptr) {
    return LockFreeGetResult::kFallback;
  }
  const uint64_t h = Hash64(key);
  const uint64_t b = h % config_.num_buckets;
  enclave_->ChargeSharedRead(&buckets_[b], sizeof(Entry*));
  Entry* e = LoadCell(&buckets_[b]);
  while (e != nullptr) {
    // hash, k_len, v_cap and the key bytes are immutable once the entry is
    // published (an acquire load of the cell orders them), so plain reads
    // are race-free. Only v_len and the value bytes are overwritten in
    // place, and those go through atomics on both sides.
    enclave_->ChargeSharedRead(e, sizeof(Entry) + e->k_len);
    if (e->hash == h && e->k_len == key.size() &&
        std::memcmp(e->key(), key.data(), key.size()) == 0) {
      uint16_t v_len = LoadVLen(e);
      if (v_len > e->v_cap) v_len = e->v_cap;  // defensive; never torn above cap
      enclave_->ChargeSharedRead(e->value(), v_len);
      value->resize(v_len);
      // Byte-atomic copy: may interleave with an in-flight overwrite and
      // yield a torn mix of old and new bytes. That is *by design* — the
      // plaintext scheme has no per-record MAC, so rejecting this copy is
      // entirely the ShardedStore seqlock revalidation's job. The
      // linearizability battery's negative control (skip that second seq
      // read) exists to prove the revalidation is load-bearing here.
      uint8_t* src = const_cast<uint8_t*>(e->value());
      for (uint16_t i = 0; i < v_len; ++i) {
        (*value)[i] = static_cast<char>(
            std::atomic_ref<uint8_t>(src[i]).load(std::memory_order_relaxed));
      }
      return LockFreeGetResult::kHit;
    }
    e = LoadCell(&e->next);
  }
  return LockFreeGetResult::kNotFound;
}

Status EnclaveKV::Put(Slice key, Slice value) {
  uint64_t h = Hash64(key);
  uint64_t b = h % config_.num_buckets;
  enclave_->TouchRead(&buckets_[b], sizeof(Entry*));
  Entry** loc = &buckets_[b];
  Entry* e = LoadCell(loc);
  while (e != nullptr) {
    enclave_->TouchRead(e, sizeof(Entry) + e->k_len);
    if (e->hash == h && e->k_len == key.size() &&
        std::memcmp(e->key(), key.data(), key.size()) == 0) {
      if (value.size() <= e->v_cap) {
        // In-place overwrite. In lock-free mode the store is byte-atomic
        // with a stall point halfway through — the deterministic torn
        // window the regression battery pins open. (The shard seqlock is
        // already odd here, so a correct optimistic reader retries or
        // falls back; only a broken one can return the half-written mix.)
        std::atomic_ref<uint16_t>(e->v_len)
            .store(static_cast<uint16_t>(value.size()),
                   std::memory_order_release);
        if (config_.lock_free_reads) {
          uint8_t* dst = e->value();
          const uint8_t* src = reinterpret_cast<const uint8_t*>(value.data());
          const size_t half = value.size() / 2;
          for (size_t i = 0; i < value.size(); ++i) {
            if (i == half) {
              fault::InjectStall(fault::StallPoint::kBaselineValuePublish);
            }
            std::atomic_ref<uint8_t>(dst[i]).store(src[i],
                                                   std::memory_order_relaxed);
          }
        } else {
          std::memcpy(e->value(), value.data(), value.size());
        }
        enclave_->TouchWrite(e->value(), value.size());
        return Status::OK();
      }
      Entry* ne = NewEntry(key, value, h);
      if (ne == nullptr) return Status::CapacityExceeded("entry allocation");
      ne->next = LoadCell(&e->next);
      StoreCell(loc, ne);
      return ReleaseEntry(e);
    }
    loc = &e->next;
    e = LoadCell(loc);
  }
  Entry* ne = NewEntry(key, value, h);
  if (ne == nullptr) return Status::CapacityExceeded("entry allocation");
  ne->next = LoadCell(&buckets_[b]);
  StoreCell(&buckets_[b], ne);
  enclave_->TouchWrite(&buckets_[b], sizeof(Entry*));
  size_++;
  return Status::OK();
}

Status EnclaveKV::Delete(Slice key) {
  uint64_t h = Hash64(key);
  uint64_t b = h % config_.num_buckets;
  Entry** loc = &buckets_[b];
  Entry* e = LoadCell(loc);
  while (e != nullptr) {
    enclave_->TouchRead(e, sizeof(Entry) + e->k_len);
    if (e->hash == h && e->k_len == key.size() &&
        std::memcmp(e->key(), key.data(), key.size()) == 0) {
      StoreCell(loc, LoadCell(&e->next));
      size_--;
      return ReleaseEntry(e);
    }
    loc = &e->next;
    e = LoadCell(loc);
  }
  return Status::NotFound();
}

}  // namespace aria
