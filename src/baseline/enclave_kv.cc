#include "baseline/enclave_kv.h"

#include "common/hash.h"

namespace aria {

EnclaveKV::EnclaveKV(sgx::EnclaveRuntime* enclave, EnclaveKVConfig config)
    : enclave_(enclave), config_(config) {}

EnclaveKV::~EnclaveKV() {
  if (buckets_ == nullptr) return;
  for (uint64_t b = 0; b < config_.num_buckets; ++b) {
    Entry* e = buckets_[b];
    while (e != nullptr) {
      Entry* next = e->next;
      enclave_->TrustedFree(e);
      e = next;
    }
  }
  enclave_->TrustedFree(buckets_);
}

Status EnclaveKV::Init() {
  buckets_ = static_cast<Entry**>(
      enclave_->TrustedAlloc(config_.num_buckets * sizeof(Entry*)));
  if (buckets_ == nullptr) {
    return Status::CapacityExceeded("bucket array allocation");
  }
  return Status::OK();
}

EnclaveKV::Entry* EnclaveKV::NewEntry(Slice key, Slice value, uint64_t h) {
  Entry* e = static_cast<Entry*>(
      enclave_->TrustedAlloc(sizeof(Entry) + key.size() + value.size()));
  if (e == nullptr) return nullptr;
  e->next = nullptr;
  e->hash = h;
  e->k_len = static_cast<uint16_t>(key.size());
  e->v_len = static_cast<uint16_t>(value.size());
  e->v_cap = e->v_len;
  std::memcpy(e->key(), key.data(), key.size());
  std::memcpy(e->value(), value.data(), value.size());
  enclave_->TouchWrite(e, sizeof(Entry) + key.size() + value.size());
  return e;
}

Status EnclaveKV::Get(Slice key, std::string* value) {
  uint64_t h = Hash64(key);
  Entry* e = buckets_[h % config_.num_buckets];
  enclave_->TouchRead(&buckets_[h % config_.num_buckets], sizeof(Entry*));
  while (e != nullptr) {
    enclave_->TouchRead(e, sizeof(Entry) + e->k_len);
    if (e->hash == h && e->k_len == key.size() &&
        std::memcmp(e->key(), key.data(), key.size()) == 0) {
      enclave_->TouchRead(e->value(), e->v_len);
      value->assign(reinterpret_cast<char*>(e->value()), e->v_len);
      return Status::OK();
    }
    e = e->next;
  }
  return Status::NotFound();
}

Status EnclaveKV::Put(Slice key, Slice value) {
  uint64_t h = Hash64(key);
  uint64_t b = h % config_.num_buckets;
  enclave_->TouchRead(&buckets_[b], sizeof(Entry*));
  Entry** loc = &buckets_[b];
  Entry* e = *loc;
  while (e != nullptr) {
    enclave_->TouchRead(e, sizeof(Entry) + e->k_len);
    if (e->hash == h && e->k_len == key.size() &&
        std::memcmp(e->key(), key.data(), key.size()) == 0) {
      if (value.size() <= e->v_cap) {
        e->v_len = static_cast<uint16_t>(value.size());
        std::memcpy(e->value(), value.data(), value.size());
        enclave_->TouchWrite(e->value(), value.size());
        return Status::OK();
      }
      Entry* ne = NewEntry(key, value, h);
      if (ne == nullptr) return Status::CapacityExceeded("entry allocation");
      ne->next = e->next;
      *loc = ne;
      enclave_->TrustedFree(e);
      return Status::OK();
    }
    loc = &e->next;
    e = e->next;
  }
  Entry* ne = NewEntry(key, value, h);
  if (ne == nullptr) return Status::CapacityExceeded("entry allocation");
  ne->next = buckets_[b];
  buckets_[b] = ne;
  enclave_->TouchWrite(&buckets_[b], sizeof(Entry*));
  size_++;
  return Status::OK();
}

Status EnclaveKV::Delete(Slice key) {
  uint64_t h = Hash64(key);
  uint64_t b = h % config_.num_buckets;
  Entry** loc = &buckets_[b];
  Entry* e = *loc;
  while (e != nullptr) {
    enclave_->TouchRead(e, sizeof(Entry) + e->k_len);
    if (e->hash == h && e->k_len == key.size() &&
        std::memcmp(e->key(), key.data(), key.size()) == 0) {
      *loc = e->next;
      enclave_->TrustedFree(e);
      size_--;
      return Status::OK();
    }
    loc = &e->next;
    e = e->next;
  }
  return Status::NotFound();
}

}  // namespace aria
