// Reimplementation of ShieldStore (Kim et al., EuroSys'19), the state of
// the art the Aria paper compares against (§III, Fig. 1a).
//
// Chained hash table entirely in untrusted memory. Every entry carries its
// own encryption counter and MAC; one Merkle root per bucket lives in the
// EPC and covers the concatenation of all entry MACs in the chain. Every
// Get must read the whole bucket's MACs and recompute the root
// (bucket-granularity verification = read & verification amplification);
// every Put additionally recomputes and rewrites the root.
#pragma once

#include <cstdint>
#include <cstring>

#include "alloc/heap_allocator.h"
#include "core/kv_store.h"
#include "crypto/aes.h"
#include "crypto/cmac.h"
#include "crypto/secure_random.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

struct ShieldStoreConfig {
  /// Number of hash buckets == number of MT roots in the EPC (the paper's
  /// setup stores 4M roots = 64 MB; benchmarks scale this with keyspace).
  uint64_t num_buckets = 1 << 20;

  /// Allocate a fresh entry on every overwrite (original-system behavior;
  /// used by the Fig. 12 ablation for parity with the Aria variants).
  bool out_of_place_updates = false;
};

struct ShieldStoreStats {
  uint64_t entries_scanned = 0;
  uint64_t root_updates = 0;
  uint64_t bucket_verifications = 0;
};

class ShieldStore : public KVStore {
 public:
  ShieldStore(sgx::EnclaveRuntime* enclave, UntrustedAllocator* allocator,
              const crypto::Aes128* aes, const crypto::Cmac128* cmac,
              crypto::SecureRandom* rng, ShieldStoreConfig config);
  ~ShieldStore() override;

  Status Init();

  Status Put(Slice key, Slice value) override;
  Status Get(Slice key, std::string* value) override;
  Status Delete(Slice key) override;
  const char* name() const override { return "ShieldStore"; }
  uint64_t size() const override { return size_; }

  const ShieldStoreStats& stats() const { return stats_; }

  /// EPC bytes held by the root array.
  uint64_t trusted_bytes() const;

  void CollectMetrics(obs::MetricSink* sink) const override;

 private:
  // Entry layout in untrusted memory:
  // [next 8][hint 4][k_len 2][v_len 2][counter 16][ciphertext][mac 16]
  static constexpr size_t kHeader = 16;
  static constexpr size_t kCounter = 16;
  static constexpr size_t kMac = 16;

  static uint8_t* Next(uint8_t* e) {
    uint8_t* n;
    std::memcpy(&n, e, 8);
    return n;
  }
  static void SetNext(uint8_t* e, uint8_t* n) { std::memcpy(e, &n, 8); }
  static uint32_t Hint(const uint8_t* e) {
    uint32_t h;
    std::memcpy(&h, e + 8, 4);
    return h;
  }
  static uint16_t KLen(const uint8_t* e) {
    uint16_t v;
    std::memcpy(&v, e + 12, 2);
    return v;
  }
  static uint16_t VLen(const uint8_t* e) {
    uint16_t v;
    std::memcpy(&v, e + 14, 2);
    return v;
  }
  static uint8_t* Counter(uint8_t* e) { return e + kHeader; }
  static uint8_t* Cipher(uint8_t* e) { return e + kHeader + kCounter; }
  static uint8_t* Mac(uint8_t* e) {
    return Cipher(e) + KLen(e) + VLen(e);
  }
  static size_t EntrySize(size_t k, size_t v) {
    return kHeader + kCounter + k + v + kMac;
  }

  /// Recompute an entry's MAC over header+counter+ciphertext.
  void EntryMac(uint8_t* e, uint8_t out[16]) const;

  /// Walk the chain once: stream all entry MACs into a bucket-root CMAC and
  /// compare with the trusted root. Fills `*chain_len`.
  Status VerifyBucket(uint64_t b, uint64_t* chain_len);

  /// Recompute the root over the current chain and store it in the EPC.
  void UpdateRoot(uint64_t b);

  /// Encrypt key||value into the entry with a bumped counter, refresh MAC.
  void SealEntry(uint8_t* e, Slice key, Slice value);

  Status FindVerified(uint64_t b, Slice key, uint8_t*** loc_out,
                      uint8_t** entry_out, std::string* value_out);

  sgx::EnclaveRuntime* enclave_;
  UntrustedAllocator* allocator_;
  const crypto::Aes128* aes_;
  const crypto::Cmac128* cmac_;
  crypto::SecureRandom* rng_;
  ShieldStoreConfig config_;

  uint8_t** buckets_ = nullptr;  // untrusted chain heads
  uint8_t* roots_ = nullptr;     // trusted: 16 bytes per bucket
  uint64_t size_ = 0;
  ShieldStoreStats stats_;
  std::string key_scratch_;  // reused candidate-key buffer
};

}  // namespace aria
