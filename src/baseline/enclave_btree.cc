#include "baseline/enclave_btree.h"

namespace aria {

namespace {
constexpr int kMinDegree = 8;
constexpr int kMaxKeys = 2 * kMinDegree - 1;
}  // namespace

struct EnclaveBTree::Rec {
  uint16_t k_len;
  uint16_t v_len;
  uint16_t v_cap;
  uint8_t dead;
  uint8_t pad;
  uint8_t* key() { return reinterpret_cast<uint8_t*>(this + 1); }
  uint8_t* value() { return key() + k_len; }
};

struct EnclaveBTree::Node {
  uint16_t num_keys;
  uint8_t is_leaf;
  uint8_t pad[5];
  Rec* records[kMaxKeys];
  Node* children[kMaxKeys + 1];
};

EnclaveBTree::EnclaveBTree(sgx::EnclaveRuntime* enclave)
    : enclave_(enclave) {}

void EnclaveBTree::FreeSubtree(Node* node) {
  if (node == nullptr) return;
  for (int i = 0; i < node->num_keys; ++i) enclave_->TrustedFree(node->records[i]);
  if (!node->is_leaf) {
    for (int i = 0; i <= node->num_keys; ++i) FreeSubtree(node->children[i]);
  }
  enclave_->TrustedFree(node);
}

EnclaveBTree::~EnclaveBTree() { FreeSubtree(root_); }

Result<EnclaveBTree::Node*> EnclaveBTree::NewNode(bool is_leaf) {
  Node* n = static_cast<Node*>(enclave_->TrustedAlloc(sizeof(Node)));
  if (n == nullptr) return Status::CapacityExceeded("node allocation");
  n->is_leaf = is_leaf ? 1 : 0;
  return n;
}

EnclaveBTree::Rec* EnclaveBTree::NewRec(Slice key, Slice value) {
  Rec* r = static_cast<Rec*>(
      enclave_->TrustedAlloc(sizeof(Rec) + key.size() + value.size()));
  if (r == nullptr) return nullptr;
  r->k_len = static_cast<uint16_t>(key.size());
  r->v_len = static_cast<uint16_t>(value.size());
  r->v_cap = r->v_len;
  r->dead = 0;
  std::memcpy(r->key(), key.data(), key.size());
  std::memcpy(r->value(), value.data(), value.size());
  enclave_->TouchWrite(r, sizeof(Rec) + key.size() + value.size());
  return r;
}

int EnclaveBTree::LowerBound(Node* node, Slice key, bool* eq) {
  enclave_->TouchRead(node, sizeof(Node));
  int lo = 0, hi = node->num_keys;
  *eq = false;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    Rec* r = node->records[mid];
    enclave_->TouchRead(r, sizeof(Rec) + r->k_len);
    int cmp = key.compare(Slice(r->key(), r->k_len));
    if (cmp <= 0) {
      hi = mid;
      if (cmp == 0) *eq = true;
    } else {
      lo = mid + 1;
    }
  }
  if (!*eq && lo < node->num_keys) {
    Rec* r = node->records[lo];
    enclave_->TouchRead(r, sizeof(Rec) + r->k_len);
    *eq = key.compare(Slice(r->key(), r->k_len)) == 0;
  }
  return lo;
}

Status EnclaveBTree::SplitChild(Node* parent, int idx) {
  Node* child = parent->children[idx];
  auto right_res = NewNode(child->is_leaf != 0);
  if (!right_res.ok()) return right_res.status();
  Node* right = right_res.value();
  constexpr int mid = kMinDegree - 1;
  for (int j = mid + 1; j < kMaxKeys; ++j) {
    right->records[j - mid - 1] = child->records[j];
  }
  right->num_keys = static_cast<uint16_t>(kMaxKeys - mid - 1);
  if (!child->is_leaf) {
    for (int j = mid + 1; j <= kMaxKeys; ++j) {
      right->children[j - mid - 1] = child->children[j];
    }
  }
  for (int j = parent->num_keys - 1; j >= idx; --j) {
    parent->records[j + 1] = parent->records[j];
  }
  for (int j = parent->num_keys; j > idx; --j) {
    parent->children[j + 1] = parent->children[j];
  }
  parent->records[idx] = child->records[mid];
  parent->children[idx + 1] = right;
  parent->num_keys++;
  child->num_keys = mid;
  enclave_->TouchWrite(parent, sizeof(Node));
  enclave_->TouchWrite(child, sizeof(Node));
  enclave_->TouchWrite(right, sizeof(Node));
  return Status::OK();
}

Status EnclaveBTree::Get(Slice key, std::string* value) {
  Node* node = root_;
  while (node != nullptr) {
    bool eq;
    int i = LowerBound(node, key, &eq);
    if (eq) {
      Rec* r = node->records[i];
      if (r->dead) return Status::NotFound();
      enclave_->TouchRead(r->value(), r->v_len);
      value->assign(reinterpret_cast<char*>(r->value()), r->v_len);
      return Status::OK();
    }
    if (node->is_leaf) break;
    node = node->children[i];
  }
  return Status::NotFound();
}

Status EnclaveBTree::Put(Slice key, Slice value) {
  if (root_ == nullptr) {
    auto r = NewNode(true);
    if (!r.ok()) return r.status();
    root_ = r.value();
  }
  if (root_->num_keys == kMaxKeys) {
    auto r = NewNode(false);
    if (!r.ok()) return r.status();
    Node* nr = r.value();
    nr->children[0] = root_;
    root_ = nr;
    ARIA_RETURN_IF_ERROR(SplitChild(nr, 0));
  }
  Node* node = root_;
  for (;;) {
    bool eq;
    int i = LowerBound(node, key, &eq);
    if (eq) {
      Rec* r = node->records[i];
      bool was_dead = r->dead != 0;
      if (value.size() <= r->v_cap) {
        r->dead = 0;
        r->v_len = static_cast<uint16_t>(value.size());
        std::memcpy(r->value(), value.data(), value.size());
        enclave_->TouchWrite(r, sizeof(Rec) + r->k_len + value.size());
      } else {
        Rec* nr = NewRec(key, value);
        if (nr == nullptr) return Status::CapacityExceeded("record");
        node->records[i] = nr;
        enclave_->TrustedFree(r);
        enclave_->TouchWrite(node, sizeof(Node));
      }
      if (was_dead) size_++;
      return Status::OK();
    }
    if (node->is_leaf) {
      for (int j = node->num_keys - 1; j >= i; --j) {
        node->records[j + 1] = node->records[j];
      }
      Rec* nr = NewRec(key, value);
      if (nr == nullptr) return Status::CapacityExceeded("record");
      node->records[i] = nr;
      node->num_keys++;
      enclave_->TouchWrite(node, sizeof(Node));
      size_++;
      return Status::OK();
    }
    Node* child = node->children[i];
    if (child->num_keys == kMaxKeys) {
      ARIA_RETURN_IF_ERROR(SplitChild(node, i));
      Rec* sep = node->records[i];
      int cmp = key.compare(Slice(sep->key(), sep->k_len));
      if (cmp == 0) {
        continue;  // the raised separator IS the key: next iteration hits it
      }
      if (cmp > 0) ++i;
      child = node->children[i];
    }
    node = child;
  }
}

Status EnclaveBTree::Delete(Slice key) {
  // Tombstone deletion: mark the record dead; Get/scan skip it.
  Node* node = root_;
  while (node != nullptr) {
    bool eq;
    int i = LowerBound(node, key, &eq);
    if (eq) {
      Rec* r = node->records[i];
      if (r->dead) return Status::NotFound();
      r->dead = 1;
      enclave_->TouchWrite(&r->dead, 1);
      size_--;
      return Status::OK();
    }
    if (node->is_leaf) break;
    node = node->children[i];
  }
  return Status::NotFound();
}

Status EnclaveBTree::ScanNode(
    Node* node, Slice start, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  bool eq;
  int lo = LowerBound(node, start, &eq);
  for (int i = lo; i <= node->num_keys; ++i) {
    if (out->size() >= limit) return Status::OK();
    if (!node->is_leaf) {
      ARIA_RETURN_IF_ERROR(ScanNode(node->children[i], start, limit, out));
      if (out->size() >= limit) return Status::OK();
    }
    if (i < node->num_keys) {
      Rec* r = node->records[i];
      enclave_->TouchRead(r, sizeof(Rec) + r->k_len + r->v_len);
      if (!r->dead && Slice(r->key(), r->k_len).compare(start) >= 0) {
        out->emplace_back(
            std::string(reinterpret_cast<char*>(r->key()), r->k_len),
            std::string(reinterpret_cast<char*>(r->value()), r->v_len));
      }
    }
  }
  return Status::OK();
}

Status EnclaveBTree::RangeScan(
    Slice start, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  if (root_ == nullptr) return Status::OK();
  return ScanNode(root_, start, limit, out);
}

}  // namespace aria
