// B-tree counterpart of the EPC "Baseline": the whole tree (nodes and
// plaintext records) lives in trusted memory. Used in Fig. 10.
//
// Deletion uses tombstones (the entry is marked dead and reclaimed on a
// later overwrite); search/scan semantics are unaffected. The paper never
// benchmarks deletes on this baseline.
#pragma once

#include <cstdint>
#include <cstring>

#include "core/kv_store.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

class EnclaveBTree : public OrderedKVStore {
 public:
  explicit EnclaveBTree(sgx::EnclaveRuntime* enclave);
  ~EnclaveBTree() override;

  Status Put(Slice key, Slice value) override;
  Status Get(Slice key, std::string* value) override;
  Status Delete(Slice key) override;
  Status RangeScan(
      Slice start, size_t limit,
      std::vector<std::pair<std::string, std::string>>* out) override;
  const char* name() const override { return "Baseline-T"; }
  uint64_t size() const override { return size_; }

 private:
  struct Node;
  struct Rec;

  Result<Node*> NewNode(bool is_leaf);
  Rec* NewRec(Slice key, Slice value);
  int LowerBound(Node* node, Slice key, bool* eq);
  Status SplitChild(Node* parent, int idx);
  Status ScanNode(Node* node, Slice start, size_t limit,
                  std::vector<std::pair<std::string, std::string>>* out);
  void FreeSubtree(Node* node);

  sgx::EnclaveRuntime* enclave_;
  Node* root_ = nullptr;
  uint64_t size_ = 0;
};

}  // namespace aria
