#include "baseline/shieldstore.h"

#include "common/hash.h"
#include "crypto/ctr.h"

namespace aria {

namespace {
void Increment128(uint8_t ctr[16]) {
  for (int i = 0; i < 16; ++i) {
    if (++ctr[i] != 0) break;
  }
}
}  // namespace

ShieldStore::ShieldStore(sgx::EnclaveRuntime* enclave,
                         UntrustedAllocator* allocator,
                         const crypto::Aes128* aes,
                         const crypto::Cmac128* cmac,
                         crypto::SecureRandom* rng, ShieldStoreConfig config)
    : enclave_(enclave),
      allocator_(allocator),
      aes_(aes),
      cmac_(cmac),
      rng_(rng),
      config_(config) {}

ShieldStore::~ShieldStore() {
  if (buckets_ != nullptr) {
    for (uint64_t b = 0; b < config_.num_buckets; ++b) {
      uint8_t* e = buckets_[b];
      while (e != nullptr) {
        uint8_t* next = Next(e);
        allocator_->Free(e).ok();
        e = next;
      }
    }
    allocator_->Free(buckets_).ok();
  }
  if (roots_ != nullptr) enclave_->TrustedFree(roots_);
}

Status ShieldStore::Init() {
  auto table = allocator_->Alloc(config_.num_buckets * sizeof(uint8_t*));
  if (!table.ok()) return table.status();
  buckets_ = static_cast<uint8_t**>(table.value());
  std::memset(buckets_, 0, config_.num_buckets * sizeof(uint8_t*));

  roots_ = static_cast<uint8_t*>(
      enclave_->TrustedAlloc(config_.num_buckets * kMac));
  if (roots_ == nullptr) {
    return Status::CapacityExceeded("shieldstore root allocation");
  }
  // Root of an empty bucket = CMAC over the empty MAC sequence.
  uint8_t empty[16];
  cmac_->Mac(nullptr, 0, empty);
  for (uint64_t b = 0; b < config_.num_buckets; ++b) {
    std::memcpy(roots_ + b * kMac, empty, kMac);
  }
  return Status::OK();
}

uint64_t ShieldStore::trusted_bytes() const {
  return config_.num_buckets * kMac;
}

void ShieldStore::EntryMac(uint8_t* e, uint8_t out[16]) const {
  // Cover everything except the chain pointer (which mutates on inserts):
  // hint, lengths, counter, ciphertext — bound to the entry address.
  crypto::Cmac128::Stream mac(*cmac_);
  uint64_t self = reinterpret_cast<uint64_t>(e);
  mac.Update(&self, sizeof(self));
  mac.Update(e + 8, kHeader - 8 + kCounter);
  mac.Update(Cipher(e), static_cast<size_t>(KLen(e)) + VLen(e));
  mac.Final(out);
}

Status ShieldStore::VerifyBucket(uint64_t b, uint64_t* chain_len) {
  stats_.bucket_verifications++;
  crypto::Cmac128::Stream root(*cmac_);
  uint64_t len = 0;
  for (uint8_t* e = buckets_[b]; e != nullptr; e = Next(e)) {
    // Bucket-granularity verification reads every entry's MAC (read
    // amplification grows with the chain).
    root.Update(Mac(e), kMac);
    len++;
    stats_.entries_scanned++;
  }
  uint8_t computed[16];
  root.Final(computed);
  enclave_->TouchRead(roots_ + b * kMac, kMac);
  if (!crypto::MacEqual(computed, roots_ + b * kMac)) {
    return Status::IntegrityViolation("shieldstore bucket root mismatch");
  }
  if (chain_len != nullptr) *chain_len = len;
  return Status::OK();
}

void ShieldStore::UpdateRoot(uint64_t b) {
  crypto::Cmac128::Stream root(*cmac_);
  for (uint8_t* e = buckets_[b]; e != nullptr; e = Next(e)) {
    root.Update(Mac(e), kMac);
    stats_.entries_scanned++;
  }
  root.Final(roots_ + b * kMac);
  enclave_->TouchWrite(roots_ + b * kMac, kMac);
  stats_.root_updates++;
}

void ShieldStore::SealEntry(uint8_t* e, Slice key, Slice value) {
  Increment128(Counter(e));
  uint8_t ctr_block[16];
  std::memcpy(ctr_block, Counter(e), 16);
  uint64_t self = reinterpret_cast<uint64_t>(e);
  for (int i = 0; i < 8; ++i) {
    ctr_block[i] ^= static_cast<uint8_t>(self >> (8 * i));
  }
  uint8_t* ct = Cipher(e);
  std::memcpy(ct, key.data(), key.size());
  std::memcpy(ct + key.size(), value.data(), value.size());
  crypto::AesCtrCrypt(*aes_, ctr_block, ct, ct, key.size() + value.size());
  EntryMac(e, Mac(e));
}

Status ShieldStore::FindVerified(uint64_t b, Slice key, uint8_t*** loc_out,
                                 uint8_t** entry_out,
                                 std::string* value_out) {
  *entry_out = nullptr;
  ARIA_RETURN_IF_ERROR(VerifyBucket(b, nullptr));
  uint32_t hint = KeyHint(key);
  uint8_t** loc = &buckets_[b];
  uint8_t* e = *loc;
  while (e != nullptr) {
    if (Hint(e) == hint) {
      // Verify this entry's own MAC, then decrypt and compare keys.
      uint8_t mac[16];
      EntryMac(e, mac);
      if (!crypto::MacEqual(mac, Mac(e))) {
        return Status::IntegrityViolation("shieldstore entry MAC mismatch");
      }
      uint8_t ctr_block[16];
      std::memcpy(ctr_block, Counter(e), 16);
      uint64_t self = reinterpret_cast<uint64_t>(e);
      for (int i = 0; i < 8; ++i) {
        ctr_block[i] ^= static_cast<uint8_t>(self >> (8 * i));
      }
      // Decrypt the key first; the value only if the key matches.
      key_scratch_.resize(KLen(e));
      crypto::AesCtrCrypt(*aes_, ctr_block, Cipher(e),
                          reinterpret_cast<uint8_t*>(key_scratch_.data()),
                          key_scratch_.size());
      enclave_->TouchWrite(key_scratch_.data(), key_scratch_.size());
      if (Slice(key_scratch_) == key) {
        if (value_out != nullptr) {
          value_out->resize(VLen(e));
          crypto::AesCtrCryptAt(*aes_, ctr_block, KLen(e),
                                Cipher(e) + KLen(e),
                                reinterpret_cast<uint8_t*>(value_out->data()),
                                value_out->size());
          enclave_->TouchWrite(value_out->data(), value_out->size());
        }
        *loc_out = loc;
        *entry_out = e;
        return Status::OK();
      }
    }
    loc = reinterpret_cast<uint8_t**>(e);
    e = *loc;
  }
  return Status::OK();
}

Status ShieldStore::Get(Slice key, std::string* value) {
  uint64_t b = Hash64(key) % config_.num_buckets;
  uint8_t** loc;
  uint8_t* e;
  ARIA_RETURN_IF_ERROR(FindVerified(b, key, &loc, &e, value));
  return e != nullptr ? Status::OK() : Status::NotFound();
}

Status ShieldStore::Put(Slice key, Slice value) {
  uint64_t b = Hash64(key) % config_.num_buckets;
  uint8_t** loc;
  uint8_t* e;
  ARIA_RETURN_IF_ERROR(FindVerified(b, key, &loc, &e, nullptr));
  if (e != nullptr) {
    size_t new_size = EntrySize(key.size(), value.size());
    size_t old_size = EntrySize(KLen(e), VLen(e));
    if (new_size <= old_size && !config_.out_of_place_updates) {
      uint16_t v_len = static_cast<uint16_t>(value.size());
      std::memcpy(e + 14, &v_len, 2);
      SealEntry(e, key, value);
    } else {
      auto mem = allocator_->Alloc(new_size);
      if (!mem.ok()) return mem.status();
      uint8_t* ne = static_cast<uint8_t*>(mem.value());
      SetNext(ne, Next(e));
      std::memcpy(ne + 8, e + 8, 4);  // hint
      uint16_t k_len = static_cast<uint16_t>(key.size());
      uint16_t v_len = static_cast<uint16_t>(value.size());
      std::memcpy(ne + 12, &k_len, 2);
      std::memcpy(ne + 14, &v_len, 2);
      std::memcpy(Counter(ne), Counter(e), kCounter);
      SealEntry(ne, key, value);
      *loc = ne;
      ARIA_RETURN_IF_ERROR(allocator_->Free(e));
    }
    UpdateRoot(b);
    return Status::OK();
  }

  auto mem = allocator_->Alloc(EntrySize(key.size(), value.size()));
  if (!mem.ok()) return mem.status();
  uint8_t* ne = static_cast<uint8_t*>(mem.value());
  SetNext(ne, buckets_[b]);
  uint32_t hint = KeyHint(key);
  std::memcpy(ne + 8, &hint, 4);
  uint16_t k_len = static_cast<uint16_t>(key.size());
  uint16_t v_len = static_cast<uint16_t>(value.size());
  std::memcpy(ne + 12, &k_len, 2);
  std::memcpy(ne + 14, &v_len, 2);
  rng_->Fill(Counter(ne), kCounter);
  SealEntry(ne, key, value);
  buckets_[b] = ne;
  UpdateRoot(b);
  size_++;
  return Status::OK();
}

Status ShieldStore::Delete(Slice key) {
  uint64_t b = Hash64(key) % config_.num_buckets;
  uint8_t** loc;
  uint8_t* e;
  ARIA_RETURN_IF_ERROR(FindVerified(b, key, &loc, &e, nullptr));
  if (e == nullptr) return Status::NotFound();
  *loc = Next(e);
  ARIA_RETURN_IF_ERROR(allocator_->Free(e));
  UpdateRoot(b);
  size_--;
  return Status::OK();
}

void ShieldStore::CollectMetrics(obs::MetricSink* sink) const {
  sink->Counter("entries_scanned", stats_.entries_scanned);
  sink->Counter("root_updates", stats_.root_updates);
  sink->Counter("bucket_verifications", stats_.bucket_verifications);
  sink->Gauge("buckets", config_.num_buckets);
  sink->Gauge("trusted_bytes", trusted_bytes());
  sink->Gauge("live_entries", size_);
}

}  // namespace aria
