#include "sgxsim/edge_calls.h"

namespace aria::sgx {

namespace {
// Rough cost of the checked parameter copy at the boundary: ~1 cycle/byte
// (copy + bounds/security checks), on top of the fixed transition cost.
constexpr uint64_t kCopyCyclesPerByte = 1;
}  // namespace

OcallGuard::OcallGuard(EnclaveRuntime* runtime) : runtime_(runtime) {
  runtime_->Ocall();
}

void OcallGuard::CopyParams(size_t bytes) {
  runtime_->Charge(bytes * kCopyCyclesPerByte);
}

EcallGuard::EcallGuard(EnclaveRuntime* runtime) : runtime_(runtime) {
  runtime_->Ecall();
}

void EcallGuard::CopyParams(size_t bytes) {
  runtime_->Charge(bytes * kCopyCyclesPerByte);
}

}  // namespace aria::sgx
