#include "sgxsim/enclave_runtime.h"

#include <cstdlib>
#include <cstring>

#include "common/fault_injection.h"

namespace aria::sgx {

namespace {
constexpr uint64_t kPageShift = 12;
static_assert((1ull << kPageShift) == CostModel::kPageSize);
}  // namespace

EnclaveRuntime::EnclaveRuntime(uint64_t epc_budget_bytes, CostModel model)
    : model_(model),
      epc_budget_bytes_(epc_budget_bytes),
      epc_budget_pages_(epc_budget_bytes / CostModel::kPageSize) {
  if (epc_budget_pages_ == 0) epc_budget_pages_ = 1;
  clock_.reserve(epc_budget_pages_);
}

EnclaveRuntime::~EnclaveRuntime() {
  for (auto& [p, size] : allocations_) {
    (void)size;
    std::free(p);
  }
}

void* EnclaveRuntime::TrustedAlloc(size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (fault::InjectAllocFailure(fault::Site::kTrustedAlloc, bytes)) {
    return nullptr;
  }
  // Cache-line aligned, zeroed — like fresh EPC pages.
  size_t rounded = (bytes + CostModel::kCacheLineSize - 1) /
                   CostModel::kCacheLineSize * CostModel::kCacheLineSize;
  void* p = std::aligned_alloc(CostModel::kCacheLineSize, rounded);
  if (p == nullptr) return nullptr;
  std::memset(p, 0, rounded);
  allocations_.emplace(p, bytes);
  trusted_in_use_ += bytes;
  if (trusted_in_use_ > epc_budget_bytes_) ever_exceeded_budget_ = true;
  stats_.trusted_bytes_allocated += bytes;
  if (trusted_in_use_ > stats_.trusted_bytes_peak) {
    stats_.trusted_bytes_peak = trusted_in_use_;
  }
  return p;
}

void EnclaveRuntime::TrustedFree(void* p) {
  if (p == nullptr) return;
  auto it = allocations_.find(p);
  if (it == allocations_.end()) return;
  // Drop the range's pages from the residency set so the slots are reusable.
  uint64_t base = reinterpret_cast<uintptr_t>(p) >> kPageShift;
  uint64_t last =
      (reinterpret_cast<uintptr_t>(p) + it->second - 1) >> kPageShift;
  for (uint64_t page = base; page <= last; ++page) {
    auto rit = resident_.find(page);
    if (rit == resident_.end()) continue;
    // Mark the clock slot empty; it will be recycled by the hand.
    clock_[rit->second].page_id = ~0ull;
    clock_[rit->second].referenced = false;
    resident_.erase(rit);
  }
  trusted_in_use_ -= it->second;
  std::free(p);
  allocations_.erase(it);
}

void EnclaveRuntime::Touch(const void* p, size_t len, bool is_write) {
  if (!model_.enabled || len == 0) return;
  uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  // MEE charge: every cache line moved between LLC and EPC.
  uint64_t first_line = addr / CostModel::kCacheLineSize;
  uint64_t last_line = (addr + len - 1) / CostModel::kCacheLineSize;
  uint64_t lines = last_line - first_line + 1;
  if (is_write) {
    stats_.mee_lines_written += lines;
    stats_.charged_cycles += lines * model_.mee_write_cycles_per_line;
  } else {
    stats_.mee_lines_read += lines;
    stats_.charged_cycles += lines * model_.mee_read_cycles_per_line;
  }
  // Residency check per page (hardware secure paging). As long as the
  // enclave's live trusted footprint has never exceeded the EPC, every page
  // trivially fits and no tracking is needed — the common case for Aria and
  // ShieldStore, whose designs guarantee exactly that.
  uint64_t first_page = addr >> kPageShift;
  uint64_t last_page = (addr + len - 1) >> kPageShift;
  if (!ever_exceeded_budget_) {
    stats_.epc_page_hits += last_page - first_page + 1;
    return;
  }
  for (uint64_t page = first_page; page <= last_page; ++page) {
    TouchPage(page);
  }
}

void EnclaveRuntime::TouchPage(uint64_t page_id) {
  auto it = resident_.find(page_id);
  if (it != resident_.end()) {
    clock_[it->second].referenced = true;
    stats_.epc_page_hits++;
    return;
  }
  // Page fault. If the EPC has free slots, this is a cheap demand-fill;
  // otherwise it is a full secure page swap (evict victim + decrypt/verify
  // the incoming page).
  if (clock_.size() < epc_budget_pages_) {
    resident_.emplace(page_id, clock_.size());
    clock_.push_back(ClockEntry{page_id, true});
    return;
  }
  // CLOCK second-chance victim selection; reuses freed (~0) slots first.
  for (;;) {
    ClockEntry& e = clock_[clock_hand_];
    if (e.page_id == ~0ull) break;  // slot freed by TrustedFree
    if (!e.referenced) break;
    e.referenced = false;
    clock_hand_ = (clock_hand_ + 1) % clock_.size();
  }
  ClockEntry& victim = clock_[clock_hand_];
  bool was_free = victim.page_id == ~0ull;
  if (!was_free) resident_.erase(victim.page_id);
  victim.page_id = page_id;
  victim.referenced = true;
  resident_.emplace(page_id, clock_hand_);
  clock_hand_ = (clock_hand_ + 1) % clock_.size();
  if (!was_free) {
    stats_.page_swaps++;
    stats_.charged_cycles += model_.page_swap_cycles;
  }
}

void EnclaveRuntime::TouchRead(const void* p, size_t len) {
  Touch(p, len, /*is_write=*/false);
}

void EnclaveRuntime::TouchWrite(const void* p, size_t len) {
  Touch(p, len, /*is_write=*/true);
}

void EnclaveRuntime::Ecall() {
  stats_.ecalls++;
  if (model_.enabled) stats_.charged_cycles += model_.ecall_cycles;
}

void EnclaveRuntime::Ocall() {
  stats_.ocalls++;
  if (model_.enabled) stats_.charged_cycles += model_.ocall_cycles;
}

void EnclaveRuntime::Charge(uint64_t cycles) {
  if (model_.enabled) stats_.charged_cycles += cycles;
}

void EnclaveRuntime::ChargeSharedRead(const void* p, size_t len) {
  if (!model_.enabled || len == 0) return;
  uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  uint64_t lines = (addr + len - 1) / CostModel::kCacheLineSize -
                   addr / CostModel::kCacheLineSize + 1;
  uint64_t pages = ((addr + len - 1) >> kPageShift) - (addr >> kPageShift) + 1;
  shared_lines_read_.fetch_add(lines, std::memory_order_relaxed);
  shared_page_hits_.fetch_add(pages, std::memory_order_relaxed);
  shared_cycles_.fetch_add(lines * model_.mee_read_cycles_per_line,
                           std::memory_order_relaxed);
}

void EnclaveRuntime::ChargeSharedWrite(const void* p, size_t len) {
  if (!model_.enabled || len == 0) return;
  uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  uint64_t lines = (addr + len - 1) / CostModel::kCacheLineSize -
                   addr / CostModel::kCacheLineSize + 1;
  uint64_t pages = ((addr + len - 1) >> kPageShift) - (addr >> kPageShift) + 1;
  shared_lines_written_.fetch_add(lines, std::memory_order_relaxed);
  shared_page_hits_.fetch_add(pages, std::memory_order_relaxed);
  shared_cycles_.fetch_add(lines * model_.mee_write_cycles_per_line,
                           std::memory_order_relaxed);
}

void EnclaveRuntime::CollectMetrics(obs::MetricSink* sink) const {
  // Emitted totals fold the lock-free (ChargeShared*) accumulators into the
  // serial stats so cross-layer laws keep reading one set of names; the
  // lock-free share is additionally broken out for the makespan model.
  sink->Counter("charged_cycles", total_charged_cycles());
  sink->Counter("lockfree_charged_cycles", shared_charged_cycles());
  sink->Counter("page_swaps", stats_.page_swaps);
  sink->Counter("epc_page_hits",
                stats_.epc_page_hits +
                    shared_page_hits_.load(std::memory_order_relaxed));
  sink->Counter("ecalls", stats_.ecalls);
  sink->Counter("ocalls", stats_.ocalls);
  sink->Counter("mee_lines_read",
                stats_.mee_lines_read +
                    shared_lines_read_.load(std::memory_order_relaxed));
  sink->Counter("mee_lines_written",
                stats_.mee_lines_written +
                    shared_lines_written_.load(std::memory_order_relaxed));
  sink->Counter("trusted_bytes_allocated", stats_.trusted_bytes_allocated);
  sink->Gauge("trusted_bytes_peak", stats_.trusted_bytes_peak);
  sink->Gauge("trusted_bytes_in_use", trusted_in_use_);
  sink->Gauge("epc_budget_bytes", epc_budget_bytes_);
}

}  // namespace aria::sgx
