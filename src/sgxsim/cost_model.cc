#include "sgxsim/cost_model.h"

// CostModel is header-only today; this TU anchors the module so the build
// fails loudly if the header rots.
namespace aria::sgx {
static_assert(CostModel::kPageSize == 4096);
static_assert(CostModel::kPageSize % CostModel::kCacheLineSize == 0);
}  // namespace aria::sgx
