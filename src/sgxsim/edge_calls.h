// ECALL/OCALL helpers: RAII guards that charge boundary-crossing cost and
// model the parameter-marshalling copy across the security boundary.
#pragma once

#include <cstddef>

#include "sgxsim/enclave_runtime.h"

namespace aria::sgx {

/// Scope guard for code that leaves the enclave (e.g. a malloc OCALL in the
/// no-heap-allocator ablation). Charges one OCALL on entry; parameter bytes
/// may be added with CopyParams().
class OcallGuard {
 public:
  explicit OcallGuard(EnclaveRuntime* runtime);

  /// Model copying `bytes` of call parameters across the boundary.
  void CopyParams(size_t bytes);

 private:
  EnclaveRuntime* runtime_;
};

/// Scope guard for a request entering the enclave.
class EcallGuard {
 public:
  explicit EcallGuard(EnclaveRuntime* runtime);

  void CopyParams(size_t bytes);

 private:
  EnclaveRuntime* runtime_;
};

}  // namespace aria::sgx
