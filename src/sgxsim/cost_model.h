// Cycle cost model for the simulated SGX enclave. Constants come from the
// Aria paper (§II-A) and the literature it cites: an EPC hit costs ~200
// cycles, a secure page swap ~40K cycles (SCONE), an ECALL/OCALL
// 8000-14000 cycles (HotCalls), and the MEE adds per-cacheline overhead on
// every trusted-memory access.
#pragma once

#include <cstdint>

namespace aria::sgx {

/// Tunable cost constants. All costs are in CPU cycles; `cpu_freq_hz`
/// converts the accumulated simulated cycles into seconds for throughput
/// reporting. Setting `enabled = false` models running the same code outside
/// an enclave ("Aria w/o SGX" in Fig. 12): no charge is ever recorded.
struct CostModel {
  bool enabled = true;

  /// Nominal frequency used to convert cycles to seconds (i7-7700 base).
  uint64_t cpu_freq_hz = 3'600'000'000ull;

  /// Hardware secure paging: evict one EPC page + load/decrypt/verify the
  /// requested one (OS context switch, copy, crypto, SGX integrity tree).
  uint64_t page_swap_cycles = 40'000;

  /// Crossing the enclave boundary (either direction).
  uint64_t ecall_cycles = 10'000;
  uint64_t ocall_cycles = 10'000;

  /// Memory Encryption Engine: extra cycles per 64-byte cache line moved
  /// between the LLC and the EPC (encrypt/decrypt + integrity-tree check).
  uint64_t mee_read_cycles_per_line = 14;
  uint64_t mee_write_cycles_per_line = 20;

  /// Size of one EPC page (fixed by the SGX architecture).
  static constexpr uint64_t kPageSize = 4096;
  static constexpr uint64_t kCacheLineSize = 64;

  /// Usable EPC on the paper's testbed ("the machine we use only supports
  /// 91 MB EPC").
  static constexpr uint64_t kDefaultEpcBytes = 91ull * 1024 * 1024;

  double CyclesToSeconds(uint64_t cycles) const {
    return static_cast<double>(cycles) / static_cast<double>(cpu_freq_hz);
  }
};

/// Event counters accumulated by the enclave runtime. Plain struct so tests
/// and benchmarks can snapshot/diff it.
struct SgxStats {
  uint64_t charged_cycles = 0;
  uint64_t page_swaps = 0;
  uint64_t epc_page_hits = 0;
  uint64_t ecalls = 0;
  uint64_t ocalls = 0;
  uint64_t trusted_bytes_allocated = 0;
  uint64_t trusted_bytes_peak = 0;
  uint64_t mee_lines_read = 0;
  uint64_t mee_lines_written = 0;

  SgxStats Delta(const SgxStats& earlier) const {
    SgxStats d;
    d.charged_cycles = charged_cycles - earlier.charged_cycles;
    d.page_swaps = page_swaps - earlier.page_swaps;
    d.epc_page_hits = epc_page_hits - earlier.epc_page_hits;
    d.ecalls = ecalls - earlier.ecalls;
    d.ocalls = ocalls - earlier.ocalls;
    d.trusted_bytes_allocated = trusted_bytes_allocated;
    d.trusted_bytes_peak = trusted_bytes_peak;
    d.mee_lines_read = mee_lines_read - earlier.mee_lines_read;
    d.mee_lines_written = mee_lines_written - earlier.mee_lines_written;
    return d;
  }
};

}  // namespace aria::sgx
