// Software model of one SGX enclave: a trusted heap with a bounded EPC,
// hardware-like secure paging (CLOCK second-chance, 4 KB granularity), MEE
// per-cacheline charges, and edge-call accounting.
//
// The runtime does not slow anything down while running; it *accounts*
// simulated cycles for every SGX-specific event. Benchmarks report
// throughput as ops / (measured wall time + SimulatedSeconds delta), which
// reproduces the paper's performance shapes without SGX hardware.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "sgxsim/cost_model.h"

namespace aria::sgx {

/// One simulated enclave. Not thread-safe, with one carve-out: the
/// ChargeShared* entry points accumulate into relaxed atomics and may be
/// called from ShardedStore's lock-free readers concurrently with the
/// owning shard's (locked) mutators. Everything else still requires
/// external serialization — each tenant owns its own runtime, matching the
/// paper's multi-process multi-tenant setup.
class EnclaveRuntime : public obs::Observable {
 public:
  explicit EnclaveRuntime(uint64_t epc_budget_bytes = CostModel::kDefaultEpcBytes,
                          CostModel model = CostModel{});
  ~EnclaveRuntime() override;

  EnclaveRuntime(const EnclaveRuntime&) = delete;
  EnclaveRuntime& operator=(const EnclaveRuntime&) = delete;

  /// Allocate zero-initialized trusted (enclave) memory. The range is
  /// registered so subsequent Touch* calls can model EPC residency.
  void* TrustedAlloc(size_t bytes);

  /// Release trusted memory previously returned by TrustedAlloc.
  void TrustedFree(void* p);

  /// Model a read / write of [p, p+len) inside the enclave: charges MEE
  /// per-cacheline cost and, for every 4 KB page that is not EPC-resident,
  /// a secure page swap. `p` need not come from TrustedAlloc (the model
  /// only needs addresses to be stable), but normally does.
  void TouchRead(const void* p, size_t len);
  void TouchWrite(const void* p, size_t len);

  /// Cross the enclave boundary.
  void Ecall();
  void Ocall();

  /// Charge raw cycles (used for modeled operations with no address, e.g.
  /// the copy performed by edge-call parameter marshalling).
  void Charge(uint64_t cycles);

  /// Thread-safe charging for the lock-free GET path: same per-cacheline
  /// MEE rates as Touch*, accumulated into atomics instead of stats_, and
  /// every touched page is assumed EPC-resident (lock-free reads target
  /// the hot set; probing the CLOCK/residency maps from readers would
  /// race). No residency state is mutated.
  void ChargeSharedRead(const void* p, size_t len);
  void ChargeSharedWrite(const void* p, size_t len);

  /// Cycles charged through the ChargeShared* path.
  uint64_t shared_charged_cycles() const {
    return shared_cycles_.load(std::memory_order_relaxed);
  }

  /// Serial + shared charged cycles.
  uint64_t total_charged_cycles() const {
    return stats_.charged_cycles + shared_charged_cycles();
  }

  /// Currently allocated trusted bytes (live, not cumulative).
  uint64_t trusted_bytes_in_use() const { return trusted_in_use_; }

  /// Remaining trusted allocation headroom before the nominal EPC budget is
  /// exceeded (allocations beyond it succeed but start paging).
  uint64_t epc_budget_bytes() const { return epc_budget_bytes_; }

  const SgxStats& stats() const { return stats_; }
  const CostModel& cost_model() const { return model_; }

  /// Wall-clock-equivalent of all cycles charged so far (serial + shared).
  double SimulatedSeconds() const {
    return model_.CyclesToSeconds(total_charged_cycles());
  }

  /// Observability ("sgx." namespace when registered by the factory).
  void CollectMetrics(obs::MetricSink* sink) const override;

 private:
  void Touch(const void* p, size_t len, bool is_write);
  void TouchPage(uint64_t page_id);

  struct ClockEntry {
    uint64_t page_id;
    bool referenced;
  };

  CostModel model_;
  uint64_t epc_budget_bytes_;
  uint64_t epc_budget_pages_;

  // EPC residency: page_id -> index into clock_ ring.
  std::unordered_map<uint64_t, size_t> resident_;
  std::vector<ClockEntry> clock_;
  size_t clock_hand_ = 0;

  // Live trusted allocations (base -> size) for TrustedFree bookkeeping.
  std::unordered_map<void*, size_t> allocations_;
  uint64_t trusted_in_use_ = 0;
  // Once the live footprint has exceeded the budget, per-page residency is
  // tracked forever (sticky); below it, every touch is trivially a hit.
  bool ever_exceeded_budget_ = false;

  SgxStats stats_;

  // Lock-free-read charge accumulators (ChargeShared*). Relaxed atomics:
  // only totals matter, never ordering.
  std::atomic<uint64_t> shared_cycles_{0};
  std::atomic<uint64_t> shared_lines_read_{0};
  std::atomic<uint64_t> shared_lines_written_{0};
  std::atomic<uint64_t> shared_page_hits_{0};
};

}  // namespace aria::sgx
