// Counter area management (paper §V-C): the redirection layer's backing
// store. Counters live in untrusted memory as the leaf level of a flat
// Merkle tree and are served through Secure Cache. Free slots are recycled
// through a circular buffer in untrusted memory whose head/tail pointers
// stay in the EPC; a trusted occupation bitmap detects malicious recycling
// ("if it is used, we assert that an attack happens"). When a tree fills
// up, a new Merkle tree is carved out (MT expansion, §V-A).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "alloc/heap_allocator.h"
#include "cache/secure_cache.h"
#include "common/status.h"
#include "core/counter_store.h"
#include "crypto/cmac.h"
#include "crypto/secure_random.h"
#include "mt/flat_merkle_tree.h"
#include "obs/metrics.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

struct CounterManagerConfig {
  /// Counter capacity of each Merkle tree (slots).
  uint64_t counters_per_tree = 1 << 20;

  /// Merkle tree arity (counters per leaf node / MACs per inner node).
  size_t arity = 8;

  /// Secure Cache configuration for the first tree.
  SecureCacheConfig cache;

  /// Secure Cache configuration for expansion trees (usually smaller).
  SecureCacheConfig growth_cache;

  /// Reserve the next Merkle tree on a background thread once the youngest
  /// tree's bump allocation passes this fraction (§V-A: "Aria reserves a
  /// new MT using a background thread when the number of used counters
  /// reaches the threshold"). 0 disables background reservation (the tree
  /// is then built synchronously on exhaustion).
  double reserve_threshold = 0.9;
};

struct CounterManagerStats {
  uint64_t trees = 0;
  uint64_t used = 0;
  uint64_t fetches = 0;
  uint64_t frees = 0;
  uint64_t reads = 0;  ///< ReadCounter calls forwarded to a Secure Cache
  uint64_t bumps = 0;  ///< BumpCounter calls forwarded to a Secure Cache
  uint64_t recycled = 0;
  uint64_t untrusted_mt_bytes = 0;
  uint64_t trusted_bitmap_bytes = 0;
  uint64_t background_reservations = 0;  ///< trees initialized off-thread
  uint64_t synchronous_expansions = 0;   ///< trees built on the hot path
};

/// Aria's counter store: Merkle-tree-protected counters behind Secure Cache.
class CounterManager : public CounterStore, public obs::Observable {
 public:
  CounterManager(sgx::EnclaveRuntime* enclave, UntrustedAllocator* allocator,
                 const crypto::Cmac128* cmac, crypto::SecureRandom* rng,
                 CounterManagerConfig config);
  ~CounterManager() override;

  /// Build and initialize the first Merkle tree + cache.
  Status Init();

  Result<RedPtr> FetchCounter() override;
  Status FreeCounter(RedPtr id) override;
  Status ReadCounter(RedPtr id, uint8_t out[kCounterSize]) override;
  Status BumpCounter(RedPtr id, uint8_t out[kCounterSize]) override;
  uint64_t used_counters() const override { return stats_.used; }

  const CounterManagerStats& stats() const { return stats_; }

  /// Aggregated Secure Cache statistics across all trees.
  SecureCacheStats CacheStats() const;

  /// Flush every tree's Secure Cache (graceful shutdown): all dirty MACs
  /// propagate to their Merkle roots so the untrusted MT image is
  /// consistent with the trusted roots.
  Status Flush();

  /// Emits its own counters plus each tree's cache and MT metrics under
  /// "treeN.cache." / "treeN.mt." sub-prefixes.
  void CollectMetrics(obs::MetricSink* sink) const override;

  /// Direct access for tests and benchmarks (tree 0 always exists after
  /// Init).
  SecureCache* cache(size_t tree = 0) { return units_[tree]->cache.get(); }
  FlatMerkleTree* tree(size_t tree = 0) { return units_[tree]->tree.get(); }
  size_t num_trees() const { return units_.size(); }

 private:
  struct TreeUnit {
    std::unique_ptr<FlatMerkleTree> tree;
    std::unique_ptr<SecureCache> cache;
    uint64_t next_unused = 0;
    // Occupation bitmap (trusted).
    uint64_t* bitmap = nullptr;
    uint64_t bitmap_words = 0;
    // Circular free buffer (untrusted) + trusted head/tail.
    uint64_t* ring = nullptr;
    uint64_t ring_capacity = 0;
    uint64_t ring_head = 0;  // pop side
    uint64_t ring_tail = 0;  // push side
    // Keeps a background-built tree's private runtime alive (the tree holds
    // a pointer to it, although it is only used during Init).
    std::unique_ptr<sgx::EnclaveRuntime> build_runtime_holder;
  };

  static constexpr int kTreeShift = 48;
  static uint64_t TreeOf(RedPtr id) { return id >> kTreeShift; }
  static uint64_t SlotOf(RedPtr id) { return id & ((1ull << kTreeShift) - 1); }
  static RedPtr MakeId(uint64_t tree, uint64_t slot) {
    return (tree << kTreeShift) | slot;
  }

  Status AddTree(const SecureCacheConfig& cache_config);
  Status FinishTree(std::unique_ptr<FlatMerkleTree> tree,
                    std::unique_ptr<sgx::EnclaveRuntime> build_runtime,
                    const SecureCacheConfig& cache_config);
  Status CheckAndSetBit(TreeUnit* unit, uint64_t slot, bool expect_used);
  Result<TreeUnit*> UnitFor(RedPtr id, uint64_t* slot);

  /// Background reservation (§V-A): the tree buffer is allocated on the
  /// calling thread (the allocator is not thread-safe), then the expensive
  /// Init — random counters plus the full bottom-up MAC build — runs on a
  /// worker thread against a private enclave runtime whose charges are
  /// folded into the main enclave at adoption time.
  struct PendingTree {
    std::unique_ptr<sgx::EnclaveRuntime> build_runtime;
    std::unique_ptr<crypto::SecureRandom> build_rng;
    std::unique_ptr<FlatMerkleTree> tree;
    std::thread worker;
    std::atomic<bool> done{false};
    Status status;
  };

  void MaybeStartReservation();
  Status AdoptOrBuildTree();

  sgx::EnclaveRuntime* enclave_;
  UntrustedAllocator* allocator_;
  const crypto::Cmac128* cmac_;
  crypto::SecureRandom* rng_;
  CounterManagerConfig config_;
  std::vector<std::unique_ptr<TreeUnit>> units_;
  std::unique_ptr<PendingTree> pending_;
  CounterManagerStats stats_;
};

}  // namespace aria
