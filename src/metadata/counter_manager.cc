#include "metadata/counter_manager.h"

#include <cstring>
#include <string>

#include "common/fault_injection.h"

namespace aria {

CounterManager::CounterManager(sgx::EnclaveRuntime* enclave,
                               UntrustedAllocator* allocator,
                               const crypto::Cmac128* cmac,
                               crypto::SecureRandom* rng,
                               CounterManagerConfig config)
    : enclave_(enclave),
      allocator_(allocator),
      cmac_(cmac),
      rng_(rng),
      config_(config) {}

CounterManager::~CounterManager() {
  if (pending_ != nullptr && pending_->worker.joinable()) {
    pending_->worker.join();
  }
  pending_.reset();
  for (auto& unit : units_) {
    if (unit->bitmap != nullptr) enclave_->TrustedFree(unit->bitmap);
    if (unit->ring != nullptr) allocator_->Free(unit->ring).ok();
    // Cache must be destroyed before its tree.
    unit->cache.reset();
    unit->tree.reset();
  }
}

Status CounterManager::Init() {
  if (!units_.empty()) return Status::Internal("CounterManager::Init twice");
  return AddTree(config_.cache);
}

Status CounterManager::AddTree(const SecureCacheConfig& cache_config) {
  auto tree = std::make_unique<FlatMerkleTree>(
      enclave_, allocator_, cmac_, config_.counters_per_tree, config_.arity);
  ARIA_RETURN_IF_ERROR(tree->Init(rng_));
  return FinishTree(std::move(tree), nullptr, cache_config);
}

Status CounterManager::FinishTree(
    std::unique_ptr<FlatMerkleTree> tree,
    std::unique_ptr<sgx::EnclaveRuntime> build_runtime,
    const SecureCacheConfig& cache_config) {
  auto unit = std::make_unique<TreeUnit>();
  unit->tree = std::move(tree);
  unit->build_runtime_holder = std::move(build_runtime);

  unit->cache = std::make_unique<SecureCache>(enclave_, unit->tree.get(),
                                              cmac_, cache_config);
  ARIA_RETURN_IF_ERROR(unit->cache->Attach());

  unit->bitmap_words = (config_.counters_per_tree + 63) / 64;
  unit->bitmap = static_cast<uint64_t*>(
      enclave_->TrustedAlloc(unit->bitmap_words * sizeof(uint64_t)));
  if (unit->bitmap == nullptr) {
    return Status::CapacityExceeded("counter bitmap allocation");
  }

  unit->ring_capacity = config_.counters_per_tree + 1;
  auto ring = allocator_->Alloc(unit->ring_capacity * sizeof(uint64_t));
  if (!ring.ok()) return ring.status();
  unit->ring = static_cast<uint64_t*>(ring.value());

  stats_.trees++;
  stats_.untrusted_mt_bytes += unit->tree->total_bytes();
  stats_.trusted_bitmap_bytes += unit->bitmap_words * sizeof(uint64_t);
  units_.push_back(std::move(unit));
  return Status::OK();
}

Status CounterManager::CheckAndSetBit(TreeUnit* unit, uint64_t slot,
                                      bool expect_used) {
  uint64_t word = slot / 64;
  uint64_t bit = 1ull << (slot % 64);
  enclave_->TouchRead(&unit->bitmap[word], sizeof(uint64_t));
  bool used = (unit->bitmap[word] & bit) != 0;
  if (used != expect_used) {
    return Status::IntegrityViolation(
        expect_used ? "freeing a counter that is not in use"
                    : "free ring returned an in-use counter (replay attack)");
  }
  unit->bitmap[word] ^= bit;
  enclave_->TouchWrite(&unit->bitmap[word], sizeof(uint64_t));
  return Status::OK();
}

Result<RedPtr> CounterManager::FetchCounter() {
  stats_.fetches++;
  // Try trees in order: recycled slots first, then the bump cursor.
  for (size_t t = 0; t < units_.size(); ++t) {
    TreeUnit* unit = units_[t].get();
    if (unit->ring_head != unit->ring_tail) {
      // The ring lives in untrusted memory: a corrupted recycled slot must
      // be rejected by the range check or the trusted occupation bitmap.
      fault::InjectUntrustedRead(
          fault::Site::kFreeRingPop,
          &unit->ring[unit->ring_head % unit->ring_capacity],
          sizeof(uint64_t));
      uint64_t slot = unit->ring[unit->ring_head % unit->ring_capacity];
      if (slot >= config_.counters_per_tree) {
        return Status::IntegrityViolation("free ring slot out of range");
      }
      ARIA_RETURN_IF_ERROR(CheckAndSetBit(unit, slot, /*expect_used=*/false));
      unit->ring_head++;
      stats_.recycled++;
      stats_.used++;
      return MakeId(t, slot);
    }
    if (unit->next_unused < config_.counters_per_tree) {
      uint64_t slot = unit->next_unused++;
      ARIA_RETURN_IF_ERROR(CheckAndSetBit(unit, slot, /*expect_used=*/false));
      stats_.used++;
      if (t == units_.size() - 1) MaybeStartReservation();
      return MakeId(t, slot);
    }
  }
  // All trees exhausted: MT expansion (§V-A), ideally adopting the tree
  // the background thread prepared.
  ARIA_RETURN_IF_ERROR(AdoptOrBuildTree());
  TreeUnit* unit = units_.back().get();
  uint64_t slot = unit->next_unused++;
  ARIA_RETURN_IF_ERROR(CheckAndSetBit(unit, slot, /*expect_used=*/false));
  stats_.used++;
  return MakeId(units_.size() - 1, slot);
}

void CounterManager::MaybeStartReservation() {
  if (pending_ != nullptr || config_.reserve_threshold <= 0) return;
  TreeUnit* last = units_.back().get();
  if (static_cast<double>(last->next_unused) <
      config_.reserve_threshold *
          static_cast<double>(config_.counters_per_tree)) {
    return;
  }
  auto pending = std::make_unique<PendingTree>();
  // Private runtime: the worker must not race on the main enclave's stats;
  // its charges are folded in at adoption time.
  pending->build_runtime = std::make_unique<sgx::EnclaveRuntime>(
      enclave_->epc_budget_bytes(), enclave_->cost_model());
  pending->build_rng =
      std::make_unique<crypto::SecureRandom>(rng_->NextU64());
  // Allocation happens here, on the calling thread (allocator is not
  // thread-safe); only the expensive Init runs on the worker.
  pending->tree = std::make_unique<FlatMerkleTree>(
      pending->build_runtime.get(), allocator_, cmac_,
      config_.counters_per_tree, config_.arity);
  PendingTree* raw = pending.get();
  pending->worker = std::thread([raw]() {
    raw->status = raw->tree->Init(raw->build_rng.get());
    raw->done.store(true, std::memory_order_release);
  });
  pending_ = std::move(pending);
}

Status CounterManager::AdoptOrBuildTree() {
  if (pending_ != nullptr) {
    pending_->worker.join();
    auto pending = std::move(pending_);
    if (pending->status.ok()) {
      // Fold the background build's simulated cost into this enclave.
      enclave_->Charge(pending->build_runtime->stats().charged_cycles);
      ARIA_RETURN_IF_ERROR(FinishTree(std::move(pending->tree),
                                      std::move(pending->build_runtime),
                                      config_.growth_cache));
      stats_.background_reservations++;
      return Status::OK();
    }
    // Fall through to a synchronous build on background failure.
  }
  stats_.synchronous_expansions++;
  return AddTree(config_.growth_cache);
}

Result<CounterManager::TreeUnit*> CounterManager::UnitFor(RedPtr id,
                                                          uint64_t* slot) {
  uint64_t t = TreeOf(id);
  if (t >= units_.size()) {
    return Status::IntegrityViolation("RedPtr names a nonexistent tree");
  }
  *slot = SlotOf(id);
  if (*slot >= config_.counters_per_tree) {
    return Status::IntegrityViolation("RedPtr slot out of range");
  }
  return units_[t].get();
}

Status CounterManager::FreeCounter(RedPtr id) {
  uint64_t slot;
  auto unit = UnitFor(id, &slot);
  if (!unit.ok()) return unit.status();
  ARIA_RETURN_IF_ERROR(CheckAndSetBit(unit.value(), slot, /*expect_used=*/true));
  TreeUnit* u = unit.value();
  if (u->ring_tail - u->ring_head >= u->ring_capacity) {
    return Status::Internal("counter free ring overflow");
  }
  u->ring[u->ring_tail % u->ring_capacity] = slot;
  u->ring_tail++;
  stats_.frees++;
  stats_.used--;
  return Status::OK();
}

Status CounterManager::ReadCounter(RedPtr id, uint8_t out[kCounterSize]) {
  uint64_t slot;
  auto unit = UnitFor(id, &slot);
  if (!unit.ok()) return unit.status();
  stats_.reads++;
  return unit.value()->cache->ReadCounter(slot, out);
}

Status CounterManager::BumpCounter(RedPtr id, uint8_t out[kCounterSize]) {
  uint64_t slot;
  auto unit = UnitFor(id, &slot);
  if (!unit.ok()) return unit.status();
  stats_.bumps++;
  return unit.value()->cache->BumpCounter(slot, out);
}

Status CounterManager::Flush() {
  for (const auto& unit : units_) {
    ARIA_RETURN_IF_ERROR(unit->cache->Flush());
  }
  return Status::OK();
}

SecureCacheStats CounterManager::CacheStats() const {
  SecureCacheStats agg;
  for (const auto& unit : units_) {
    const SecureCacheStats& s = unit->cache->stats();
    agg.accesses += s.accesses;
    agg.hits += s.hits;
    agg.pinned_hits += s.pinned_hits;
    agg.misses += s.misses;
    agg.evictions += s.evictions;
    agg.clean_discards += s.clean_discards;
    agg.clean_writebacks += s.clean_writebacks;
    agg.dirty_writebacks += s.dirty_writebacks;
    agg.mac_verifications += s.mac_verifications;
    agg.bytes_swapped_in += s.bytes_swapped_in;
    agg.bytes_swapped_out += s.bytes_swapped_out;
    agg.encryption_bytes_avoided += s.encryption_bytes_avoided;
    agg.writebacks_avoided += s.writebacks_avoided;
    agg.pinned_bytes += s.pinned_bytes;
    agg.slot_bytes += s.slot_bytes;
    agg.metadata_bytes += s.metadata_bytes;
    agg.swap_stopped = agg.swap_stopped || s.swap_stopped;
  }
  return agg;
}

void CounterManager::CollectMetrics(obs::MetricSink* sink) const {
  sink->Counter("fetches", stats_.fetches);
  sink->Counter("frees", stats_.frees);
  sink->Counter("reads", stats_.reads);
  sink->Counter("bumps", stats_.bumps);
  sink->Counter("recycled", stats_.recycled);
  sink->Counter("background_reservations", stats_.background_reservations);
  sink->Counter("synchronous_expansions", stats_.synchronous_expansions);
  sink->Gauge("trees", stats_.trees);
  sink->Gauge("used", stats_.used);
  sink->Gauge("untrusted_mt_bytes", stats_.untrusted_mt_bytes);
  sink->Gauge("trusted_bitmap_bytes", stats_.trusted_bitmap_bytes);
  for (size_t t = 0; t < units_.size(); ++t) {
    std::string prefix = "tree" + std::to_string(t);
    obs::PrefixedSink cache_sink(sink, prefix + ".cache");
    units_[t]->cache->CollectMetrics(&cache_sink);
    obs::PrefixedSink mt_sink(sink, prefix + ".mt");
    units_[t]->tree->CollectMetrics(&mt_sink);
  }
}

}  // namespace aria
