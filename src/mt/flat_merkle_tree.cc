#include "mt/flat_merkle_tree.h"

#include <cstring>

namespace aria {

FlatMerkleTree::FlatMerkleTree(sgx::EnclaveRuntime* enclave,
                               UntrustedAllocator* allocator,
                               const crypto::Cmac128* cmac,
                               uint64_t num_counters, size_t arity)
    : enclave_(enclave),
      allocator_(allocator),
      cmac_(cmac),
      num_counters_(num_counters),
      arity_(arity),
      node_size_(arity * kMacSize) {
  // Compute the level geometry: level 0 packs the counters, each level above
  // packs the child MACs, until one node remains.
  uint64_t nodes = (num_counters_ + arity_ - 1) / arity_;
  if (nodes == 0) nodes = 1;
  level_nodes_.push_back(nodes);
  while (nodes > 1) {
    nodes = (nodes + arity_ - 1) / arity_;
    level_nodes_.push_back(nodes);
  }
  uint64_t offset = 0;
  for (uint64_t n : level_nodes_) {
    level_offsets_.push_back(offset);
    offset += n * node_size_;
  }
  total_bytes_ = offset;

  auto mem = allocator_->Alloc(total_bytes_);
  if (mem.ok()) {
    buffer_ = static_cast<uint8_t*>(mem.value());
    // Zero so padding in partial tail nodes is deterministic.
    std::memset(buffer_, 0, total_bytes_);
  }
}

FlatMerkleTree::~FlatMerkleTree() {
  if (buffer_ != nullptr) {
    allocator_->Free(buffer_).ok();
  }
}

uint8_t* FlatMerkleTree::NodePtr(int level, uint64_t index) const {
  return buffer_ + level_offsets_[level] + index * node_size_;
}

uint8_t* FlatMerkleTree::CounterPtr(uint64_t c) const {
  return buffer_ + c * kCounterSize;
}

uint8_t* FlatMerkleTree::StoredMacPtr(MtNodeId id) {
  if (IsTop(id)) return root_;
  MtNodeId parent = ParentOf(id);
  return NodePtr(parent.level, parent.index) + SlotInParent(id) * kMacSize;
}

void FlatMerkleTree::ComputeNodeMac(MtNodeId id, uint8_t out[kMacSize]) const {
  cmac_->Mac(NodePtr(id.level, id.index), node_size_, out);
}

Status FlatMerkleTree::Init(crypto::SecureRandom* rng) {
  if (buffer_ == nullptr) {
    return Status::CapacityExceeded("merkle tree buffer allocation failed");
  }
  // Random initial counter values (paper §IV-B: "we assign a random value to
  // each counter first"), so an attacker cannot predict fresh counters.
  rng->Fill(buffer_, num_counters_ * kCounterSize);

  // Build every MAC level bottom-up. The MAC computation happens inside the
  // enclave: nodes stream through a trusted scratch buffer, which the
  // enclave runtime charges for.
  std::vector<uint8_t> scratch(node_size_);
  for (int level = 0; level + 1 <= num_levels() - 1; ++level) {
    for (uint64_t i = 0; i < level_nodes_[level]; ++i) {
      std::memcpy(scratch.data(), NodePtr(level, i), node_size_);
      enclave_->TouchWrite(scratch.data(), node_size_);
      MtNodeId id{level, i};
      MtNodeId parent = ParentOf(id);
      cmac_->Mac(scratch.data(), node_size_,
                 NodePtr(parent.level, parent.index) +
                     SlotInParent(id) * kMacSize);
    }
  }
  // Root over the single top node.
  MtNodeId top{num_levels() - 1, 0};
  std::memcpy(scratch.data(), NodePtr(top.level, 0), node_size_);
  enclave_->TouchWrite(scratch.data(), node_size_);
  cmac_->Mac(scratch.data(), node_size_, root_);
  enclave_->TouchWrite(root_, kMacSize);
  return Status::OK();
}

void FlatMerkleTree::CollectMetrics(obs::MetricSink* sink) const {
  sink->Gauge("levels", static_cast<uint64_t>(num_levels()));
  sink->Gauge("num_counters", num_counters_);
  sink->Gauge("arity", arity_);
  sink->Gauge("node_size", node_size_);
  sink->Gauge("total_bytes", total_bytes_);
}

}  // namespace aria
