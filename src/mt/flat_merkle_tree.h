// Flat N-ary Merkle tree over encryption counters (paper §IV-D, §V-A).
//
// All tree nodes live in ONE continuous untrusted buffer, level by level
// (Fig. 5), so a node's parent is found by pure address arithmetic and
// sequential verification benefits from hardware prefetching. Only the
// 16-byte root MAC is kept inside the enclave.
//
// Layout for arity T (node size = 16*T bytes):
//   level 0: counter blocks — each node packs T 16-byte counters
//   level i: MAC nodes — each node packs the T child MACs
//   root:    CMAC of the single top-level node, stored in trusted memory
//
// The tree itself is policy-free: verification with caching semantics lives
// in cache/secure_cache.h, which drives these primitives.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/heap_allocator.h"
#include "common/status.h"
#include "crypto/cmac.h"
#include "crypto/secure_random.h"
#include "obs/metrics.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

/// Identifies one Merkle-tree node.
struct MtNodeId {
  int level;
  uint64_t index;

  bool operator==(const MtNodeId& o) const {
    return level == o.level && index == o.index;
  }
};

class FlatMerkleTree : public obs::Observable {
 public:
  static constexpr size_t kMacSize = 16;
  static constexpr size_t kCounterSize = 16;

  /// Create a tree protecting `num_counters` 16-byte counters with the given
  /// arity (children per node). Memory is obtained from `allocator`
  /// (untrusted); the root stays in a trusted member.
  FlatMerkleTree(sgx::EnclaveRuntime* enclave, UntrustedAllocator* allocator,
                 const crypto::Cmac128* cmac, uint64_t num_counters,
                 size_t arity);
  ~FlatMerkleTree() override;

  FlatMerkleTree(const FlatMerkleTree&) = delete;
  FlatMerkleTree& operator=(const FlatMerkleTree&) = delete;

  /// Initialize counters with cryptographically random values and build all
  /// MAC levels bottom-up (executed "inside the enclave": the per-node MACs
  /// are computed through a trusted scratch buffer).
  Status Init(crypto::SecureRandom* rng);

  size_t arity() const { return arity_; }
  size_t node_size() const { return node_size_; }
  uint64_t num_counters() const { return num_counters_; }

  /// Number of node levels (level 0 .. num_levels()-1). The root MAC sits
  /// conceptually above level num_levels()-1.
  int num_levels() const { return static_cast<int>(level_nodes_.size()); }

  uint64_t NodesAt(int level) const { return level_nodes_[level]; }

  /// Untrusted address of a node.
  uint8_t* NodePtr(int level, uint64_t index) const;

  /// Untrusted address of counter `c` (inside its level-0 node).
  uint8_t* CounterPtr(uint64_t c) const;

  /// Leaf node that holds counter `c`.
  MtNodeId LeafOf(uint64_t c) const {
    return MtNodeId{0, c / arity_};
  }
  size_t CounterOffsetInLeaf(uint64_t c) const {
    return (c % arity_) * kCounterSize;
  }

  MtNodeId ParentOf(MtNodeId id) const {
    return MtNodeId{id.level + 1, id.index / arity_};
  }
  size_t SlotInParent(MtNodeId id) const { return id.index % arity_; }

  /// True iff this node's stored MAC is the trusted root (i.e. it is the
  /// single top-level node).
  bool IsTop(MtNodeId id) const { return id.level == num_levels() - 1; }

  /// Where the MAC of `id` is stored: a 16-byte slot inside its parent node
  /// (untrusted) or the trusted root for the top node.
  uint8_t* StoredMacPtr(MtNodeId id);

  /// Trusted root MAC.
  const uint8_t* root() const { return root_; }
  uint8_t* mutable_root() { return root_; }

  /// CMAC over the raw node bytes as they currently sit in untrusted memory.
  void ComputeNodeMac(MtNodeId id, uint8_t out[kMacSize]) const;

  /// Total untrusted bytes used by all levels.
  uint64_t total_bytes() const { return total_bytes_; }

  /// Shape gauges (levels, counters, arity, node/total bytes).
  void CollectMetrics(obs::MetricSink* sink) const override;

 private:
  sgx::EnclaveRuntime* enclave_;
  UntrustedAllocator* allocator_;
  const crypto::Cmac128* cmac_;
  uint64_t num_counters_;
  size_t arity_;
  size_t node_size_;

  uint8_t* buffer_ = nullptr;
  uint64_t total_bytes_ = 0;
  std::vector<uint64_t> level_nodes_;    // node count per level
  std::vector<uint64_t> level_offsets_;  // byte offset of each level
  uint8_t root_[kMacSize] = {0};         // trusted
};

}  // namespace aria
