#include "cache/secure_cache.h"

#include <cstring>

#include "common/fault_injection.h"

namespace aria {

namespace {
constexpr uint32_t kNoSlot = UINT32_MAX;
constexpr uint64_t kMinSlots = 4;
// EPC bytes of metadata charged per cache slot: node tag + dirty bit +
// replacement-policy links, rounded to a realistic struct size.
constexpr uint64_t kSlotMetaBytes = 24;

// 128-bit little-endian increment of a counter value.
void Increment128(uint8_t ctr[16]) {
  for (int i = 0; i < 16; ++i) {
    if (++ctr[i] != 0) break;
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// Replacement policies.
// ---------------------------------------------------------------------------

class SecureCache::Policy {
 public:
  virtual ~Policy() = default;
  virtual void OnInsert(uint32_t slot) = 0;
  virtual void OnHit(uint32_t slot) = 0;
  virtual bool PopVictim(uint32_t* slot) = 0;
};

/// FIFO: a plain ring of slot ids. The hit path is free — exactly the
/// property §IV-E wants ("avoid the tax of hits").
class SecureCache::FifoPolicy : public SecureCache::Policy {
 public:
  explicit FifoPolicy(uint64_t capacity) { ring_.reserve(capacity + 1); }

  void OnInsert(uint32_t slot) override { ring_.push_back(slot); }
  void OnHit(uint32_t) override {}
  bool PopVictim(uint32_t* slot) override {
    if (head_ >= ring_.size()) return false;
    *slot = ring_[head_++];
    // Compact occasionally so the vector does not grow without bound.
    if (head_ > 4096 && head_ * 2 > ring_.size()) {
      ring_.erase(ring_.begin(), ring_.begin() + static_cast<long>(head_));
      head_ = 0;
    }
    return true;
  }

 private:
  std::vector<uint32_t> ring_;
  size_t head_ = 0;
};

/// LRU: intrusive doubly-linked list over slot ids. Every hit rewrites list
/// links that live in the EPC; the enclave runtime charges those writes,
/// which is what makes LRU lose to FIFO at large cache sizes (Fig. 12).
class SecureCache::LruPolicy : public SecureCache::Policy {
 public:
  LruPolicy(sgx::EnclaveRuntime* enclave, uint64_t capacity)
      : enclave_(enclave),
        prev_(capacity, kNoSlot),
        next_(capacity, kNoSlot),
        in_list_(capacity, 0) {}

  void OnInsert(uint32_t slot) override { PushFront(slot); }

  void OnHit(uint32_t slot) override {
    if (!in_list_[slot] || head_ == slot) return;
    Unlink(slot);
    PushFront(slot);
  }

  bool PopVictim(uint32_t* slot) override {
    if (tail_ == kNoSlot) return false;
    *slot = tail_;
    Unlink(tail_);
    return true;
  }

 private:
  void ChargeLink(uint32_t slot) {
    // Model the EPC metadata write for this list node.
    enclave_->TouchWrite(&prev_[slot], sizeof(uint32_t) * 2);
  }

  void PushFront(uint32_t slot) {
    prev_[slot] = kNoSlot;
    next_[slot] = head_;
    if (head_ != kNoSlot) {
      prev_[head_] = slot;
      ChargeLink(head_);
    }
    head_ = slot;
    if (tail_ == kNoSlot) tail_ = slot;
    in_list_[slot] = 1;
    ChargeLink(slot);
  }

  void Unlink(uint32_t slot) {
    uint32_t p = prev_[slot];
    uint32_t n = next_[slot];
    if (p != kNoSlot) {
      next_[p] = n;
      ChargeLink(p);
    } else {
      head_ = n;
    }
    if (n != kNoSlot) {
      prev_[n] = p;
      ChargeLink(n);
    } else {
      tail_ = p;
    }
    in_list_[slot] = 0;
    ChargeLink(slot);
  }

  sgx::EnclaveRuntime* enclave_;
  std::vector<uint32_t> prev_;
  std::vector<uint32_t> next_;
  std::vector<uint8_t> in_list_;
  uint32_t head_ = kNoSlot;
  uint32_t tail_ = kNoSlot;
};

// ---------------------------------------------------------------------------
// SecureCache.
// ---------------------------------------------------------------------------

uint32_t SecureCache::LookupSlot(MtNodeId id) const {
  if (id.level == 0) {
    if (leaf_slot_.empty()) return kNoSlot;
    enclave_->TouchRead(&leaf_slot_[id.index], sizeof(uint32_t));
    return leaf_slot_[id.index];
  }
  auto it = cached_.find(Key(id));
  return it == cached_.end() ? kNoSlot : it->second;
}

void SecureCache::SetSlot(MtNodeId id, uint32_t slot) {
  if (id.level == 0) {
    leaf_slot_[id.index] = slot;
    enclave_->TouchWrite(&leaf_slot_[id.index], sizeof(uint32_t));
  } else {
    cached_[Key(id)] = slot;
  }
  num_cached_++;
}

void SecureCache::ClearSlot(MtNodeId id) {
  if (id.level == 0) {
    leaf_slot_[id.index] = kNoSlot;
    enclave_->TouchWrite(&leaf_slot_[id.index], sizeof(uint32_t));
  } else {
    cached_.erase(Key(id));
  }
  num_cached_--;
}

SecureCache::SecureCache(sgx::EnclaveRuntime* enclave, FlatMerkleTree* tree,
                         const crypto::Cmac128* cmac, SecureCacheConfig config)
    : enclave_(enclave),
      tree_(tree),
      cmac_(cmac),
      config_(config),
      node_size_(tree->node_size()) {}

SecureCache::~SecureCache() {
  if (slots_ != nullptr) enclave_->TrustedFree(slots_);
  if (scratch_a_ != nullptr) enclave_->TrustedFree(scratch_a_);
  if (scratch_b_ != nullptr) enclave_->TrustedFree(scratch_b_);
  for (uint8_t* p : pinned_) {
    if (p != nullptr) enclave_->TrustedFree(p);
  }
}

Status SecureCache::Attach() {
  scratch_a_ = static_cast<uint8_t*>(enclave_->TrustedAlloc(node_size_));
  scratch_b_ = static_cast<uint8_t*>(enclave_->TrustedAlloc(node_size_));
  if (scratch_a_ == nullptr || scratch_b_ == nullptr) {
    return Status::CapacityExceeded("secure cache scratch allocation");
  }
  pinned_.assign(tree_->num_levels(), nullptr);

  // Initial pinning: config.pinned_levels counted from the top (root side),
  // shedding the lowest pinned level while the pins do not fit the budget.
  int pinned_levels = config_.pinned_levels;
  if (pinned_levels < 0) {
    pinned_levels = tree_->num_levels() - 1;  // auto: all levels except L0
    if (pinned_levels < 1) pinned_levels = 1;
  }
  int first = tree_->num_levels() - pinned_levels;
  if (first < 0) first = 0;
  auto pin_bytes = [&](int from) {
    uint64_t total = 0;
    for (int lvl = from; lvl < tree_->num_levels(); ++lvl) {
      total += tree_->NodesAt(lvl) * node_size_;
    }
    return total;
  };
  // Leave at least half the budget for swappable slots.
  while (first < tree_->num_levels() &&
         pin_bytes(first) > config_.capacity_bytes / 2) {
    ++first;
  }
  if (pinned_levels > 0 && first < tree_->num_levels()) {
    ARIA_RETURN_IF_ERROR(PinLevels(first));
  }

  // The leaf-level direct-mapped index lives in the EPC alongside the
  // slots; per-slot metadata (tag, dirty bit, policy links) is charged per
  // slot. This is the "cache metadata" whose relative footprint shrinks as
  // nodes get bigger (§VI-D3 / Fig. 15).
  leaf_slot_.assign(tree_->NodesAt(0), kNoSlot);
  stats_.metadata_bytes = leaf_slot_.size() * sizeof(uint32_t);

  uint64_t remaining = config_.capacity_bytes > stats_.pinned_bytes
                           ? config_.capacity_bytes - stats_.pinned_bytes
                           : 0;
  num_slots_ = remaining / (node_size_ + kSlotMetaBytes);
  if (config_.start_stopped || num_slots_ < kMinSlots) {
    num_slots_ = 0;
    return StopSwap();
  }

  slots_ = static_cast<uint8_t*>(enclave_->TrustedAlloc(num_slots_ * node_size_));
  if (slots_ == nullptr) {
    return Status::CapacityExceeded("secure cache slot allocation");
  }
  stats_.slot_bytes = num_slots_ * node_size_;
  stats_.metadata_bytes += num_slots_ * kSlotMetaBytes;
  meta_.assign(num_slots_, SlotMeta{});
  free_slots_.clear();
  free_slots_.reserve(num_slots_);
  for (uint64_t s = num_slots_; s-- > 0;) {
    free_slots_.push_back(static_cast<uint32_t>(s));
  }
  if (config_.policy == CachePolicy::kFifo) {
    policy_ = std::make_unique<FifoPolicy>(num_slots_);
  } else {
    policy_ = std::make_unique<LruPolicy>(enclave_, num_slots_);
  }
  return Status::OK();
}

uint8_t* SecureCache::PinnedNodePtr(MtNodeId id) const {
  uint8_t* base = pinned_[id.level];
  return base == nullptr ? nullptr : base + id.index * node_size_;
}

uint8_t* SecureCache::TrustedNodePtr(MtNodeId id, uint32_t* slot_out) const {
  *slot_out = kNoSlot;
  if (IsPinned(id.level)) {
    uint8_t* p = PinnedNodePtr(id);
    if (p != nullptr) return p;
  }
  uint32_t slot = LookupSlot(id);
  if (slot == kNoSlot) return nullptr;
  *slot_out = slot;
  return SlotPtr(slot);
}

uint8_t* SecureCache::TrustedStoredMacPtr(MtNodeId id,
                                          uint32_t* parent_slot_out) {
  *parent_slot_out = kNoSlot;
  if (tree_->IsTop(id)) return tree_->mutable_root();
  MtNodeId parent = tree_->ParentOf(id);
  uint8_t* pcontent = TrustedNodePtr(parent, parent_slot_out);
  if (pcontent == nullptr) return nullptr;
  return pcontent + tree_->SlotInParent(id) * FlatMerkleTree::kMacSize;
}

Status SecureCache::VerifyNodeChain(MtNodeId target, uint8_t* out) {
  // Collect the untrusted chain: target upward until the parent is trusted
  // or we hit the top node (whose MAC is the trusted root).
  MtNodeId chain[64];
  size_t chain_len = 0;
  MtNodeId id = target;
  for (;;) {
    chain[chain_len++] = id;
    if (tree_->IsTop(id)) break;
    MtNodeId parent = tree_->ParentOf(id);
    uint32_t slot;
    if (TrustedNodePtr(parent, &slot) != nullptr) break;
    id = parent;
  }

  // Verify downward; `prev` holds the verified content of the parent once
  // we are below the first link.
  uint8_t* cur = scratch_a_;
  uint8_t* prev = scratch_b_;
  for (size_t i = chain_len; i-- > 0;) {
    MtNodeId x = chain[i];
    // Copy the node into the enclave before computing its MAC (§IV-D: the
    // copy grows with node size and is part of the arity trade-off).
    fault::InjectUntrustedRead(fault::Site::kMerkleNodeLoad,
                               tree_->NodePtr(x.level, x.index), node_size_);
    std::memcpy(cur, tree_->NodePtr(x.level, x.index), node_size_);
    enclave_->TouchWrite(cur, node_size_);
    stats_.bytes_swapped_in += node_size_;

    uint8_t mac[FlatMerkleTree::kMacSize];
    cmac_->Mac(cur, node_size_, mac);
    stats_.mac_verifications++;

    const uint8_t* expected;
    if (i == chain_len - 1) {
      if (tree_->IsTop(x)) {
        expected = tree_->root();
      } else {
        uint32_t pslot;
        uint8_t* pcontent = TrustedNodePtr(tree_->ParentOf(x), &pslot);
        if (pcontent == nullptr) {
          return Status::Internal("verify chain lost its trusted anchor");
        }
        expected = pcontent + tree_->SlotInParent(x) * FlatMerkleTree::kMacSize;
      }
      enclave_->TouchRead(expected, FlatMerkleTree::kMacSize);
    } else {
      expected = prev + tree_->SlotInParent(x) * FlatMerkleTree::kMacSize;
    }
    if (!crypto::MacEqual(mac, expected)) {
      return Status::IntegrityViolation("merkle tree node MAC mismatch");
    }
    std::swap(cur, prev);
  }
  // The verified target content ended up in `prev`.
  if (out != prev) std::memcpy(out, prev, node_size_);
  return Status::OK();
}

Status SecureCache::Insert(MtNodeId id, const uint8_t* content,
                           uint32_t* slot_out) {
  // A recursive parent swap-in during one of our own evictions may already
  // have inserted this node; its cached copy can be fresher than `content`
  // (child MACs propagated into it), so keep it.
  uint32_t existing = LookupSlot(id);
  if (existing != kNoSlot) {
    *slot_out = existing;
    return Status::OK();
  }
  if (free_slots_.empty()) {
    ARIA_RETURN_IF_ERROR(EvictOne());
  }
  uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  std::memcpy(SlotPtr(slot), content, node_size_);
  enclave_->TouchWrite(SlotPtr(slot), node_size_);
  meta_[slot] = SlotMeta{id, false};
  SetSlot(id, slot);
  policy_->OnInsert(slot);
  *slot_out = slot;
  return Status::OK();
}

Status SecureCache::EvictOne() {
  uint32_t victim;
  if (policy_ == nullptr || !policy_->PopVictim(&victim)) {
    return Status::Internal("secure cache eviction with no victims");
  }
  MtNodeId id = meta_[victim].id;
  stats_.evictions++;

  if (meta_[victim].dirty) {
    // Push the victim's MAC into its parent (Fig. 4, step 3). If the parent
    // is not trusted, PropagateMacUp verifies it through an enclave scratch
    // buffer and patches it in place — no cache slot is consumed, so
    // evictions never cascade. The victim stays cached until the update is
    // fully propagated so no stale copy can be re-read meanwhile.
    uint8_t mac[FlatMerkleTree::kMacSize];
    enclave_->TouchRead(SlotPtr(victim), node_size_);
    cmac_->Mac(SlotPtr(victim), node_size_, mac);
    ARIA_RETURN_IF_ERROR(PropagateMacUp(id, mac));
    // Plaintext write-back: security metadata needs integrity only (§IV-C).
    // An adversary dropping (or duplicating) this untrusted write must be
    // caught by the freshly propagated MAC on the next load. bytes_swapped_out
    // counts bytes actually written, so a dropped write-back also breaks the
    // swap-byte conservation law (obs/invariants.h).
    if (!fault::InjectWritebackDrop(tree_->NodePtr(id.level, id.index),
                                    SlotPtr(victim), node_size_)) {
      std::memcpy(tree_->NodePtr(id.level, id.index), SlotPtr(victim),
                  node_size_);
      stats_.bytes_swapped_out += node_size_;
    }
    stats_.dirty_writebacks++;
    stats_.encryption_bytes_avoided += node_size_;
  } else if (config_.avoid_clean_writeback) {
    stats_.clean_discards++;
    stats_.writebacks_avoided++;
  } else {
    enclave_->TouchRead(SlotPtr(victim), node_size_);
    std::memcpy(tree_->NodePtr(id.level, id.index), SlotPtr(victim),
                node_size_);
    stats_.clean_writebacks++;
    stats_.bytes_swapped_out += node_size_;
  }
  ClearSlot(id);
  meta_[victim] = SlotMeta{};
  free_slots_.push_back(victim);
  return Status::OK();
}

Status SecureCache::EnsureCached(MtNodeId id, uint32_t* slot_out) {
  uint32_t slot = LookupSlot(id);
  if (slot != kNoSlot) {
    *slot_out = slot;
    return Status::OK();
  }
  std::vector<uint8_t> buf(node_size_);
  ARIA_RETURN_IF_ERROR(VerifyNodeChain(id, buf.data()));
  return Insert(id, buf.data(), slot_out);
}

Status SecureCache::PropagateMacUp(MtNodeId id, const uint8_t mac[16]) {
  uint8_t cur_mac[FlatMerkleTree::kMacSize];
  std::memcpy(cur_mac, mac, FlatMerkleTree::kMacSize);

  auto write_trusted = [&](MtNodeId node, uint8_t* loc, uint32_t pslot) {
    std::memcpy(loc, cur_mac, FlatMerkleTree::kMacSize);
    enclave_->TouchWrite(loc, FlatMerkleTree::kMacSize);
    if (pslot != kNoSlot) {
      meta_[pslot].dirty = true;
    } else if (!tree_->IsTop(node) && IsPinned(node.level + 1)) {
      // Keep the untrusted copy of a pinned parent in sync so future
      // (un)pinning transitions see a consistent tree.
      std::memcpy(tree_->StoredMacPtr(node), cur_mac,
                  FlatMerkleTree::kMacSize);
    }
  };
  // Fast path: the stored-MAC location is already trusted.
  {
    uint32_t pslot;
    uint8_t* loc = TrustedStoredMacPtr(id, &pslot);
    if (loc != nullptr) {
      write_trusted(id, loc, pslot);
      return Status::OK();
    }
  }

  // Slow path: collect the untrusted ancestor chain (parent upward until
  // the first trusted anchor or the top node), verify it ONCE top-down
  // into local buffers, then patch and write back bottom-up — O(h) MAC
  // computations total and no cache slots consumed, so evictions never
  // cascade.
  MtNodeId chain[64];
  size_t chain_len = 0;
  {
    MtNodeId cur = tree_->ParentOf(id);
    for (;;) {
      chain[chain_len++] = cur;
      if (tree_->IsTop(cur)) break;
      uint32_t slot;
      if (TrustedNodePtr(tree_->ParentOf(cur), &slot) != nullptr) break;
      cur = tree_->ParentOf(cur);
    }
  }

  // Verify downward (highest first), keeping every ancestor's content.
  std::vector<std::vector<uint8_t>> bufs(chain_len,
                                         std::vector<uint8_t>(node_size_));
  for (size_t i = chain_len; i-- > 0;) {
    MtNodeId x = chain[i];
    uint8_t* buf = bufs[i].data();
    fault::InjectUntrustedRead(fault::Site::kMerkleNodeLoad,
                               tree_->NodePtr(x.level, x.index), node_size_);
    std::memcpy(buf, tree_->NodePtr(x.level, x.index), node_size_);
    enclave_->TouchWrite(buf, node_size_);
    stats_.bytes_swapped_in += node_size_;
    uint8_t computed[FlatMerkleTree::kMacSize];
    cmac_->Mac(buf, node_size_, computed);
    stats_.mac_verifications++;
    const uint8_t* expected;
    if (i == chain_len - 1) {
      if (tree_->IsTop(x)) {
        expected = tree_->root();
      } else {
        uint32_t pslot;
        uint8_t* pcontent = TrustedNodePtr(tree_->ParentOf(x), &pslot);
        if (pcontent == nullptr) {
          return Status::Internal("propagate lost its trusted anchor");
        }
        expected =
            pcontent + tree_->SlotInParent(x) * FlatMerkleTree::kMacSize;
      }
      enclave_->TouchRead(expected, FlatMerkleTree::kMacSize);
    } else {
      expected = bufs[i + 1].data() +
                 tree_->SlotInParent(x) * FlatMerkleTree::kMacSize;
    }
    if (!crypto::MacEqual(computed, expected)) {
      return Status::IntegrityViolation("merkle tree node MAC mismatch");
    }
  }

  // Patch upward: child MAC into each verified ancestor, write the ancestor
  // back in plaintext, recompute its MAC, ascend.
  MtNodeId child = id;
  for (size_t i = 0; i < chain_len; ++i) {
    uint8_t* buf = bufs[i].data();
    std::memcpy(buf + tree_->SlotInParent(child) * FlatMerkleTree::kMacSize,
                cur_mac, FlatMerkleTree::kMacSize);
    MtNodeId x = chain[i];
    std::memcpy(tree_->NodePtr(x.level, x.index), buf, node_size_);
    cmac_->Mac(buf, node_size_, cur_mac);
    stats_.mac_verifications++;
    child = x;
  }
  MtNodeId anchor = chain[chain_len - 1];
  uint32_t pslot;
  uint8_t* loc = TrustedStoredMacPtr(anchor, &pslot);
  if (loc == nullptr) {
    return Status::Internal("propagate anchor vanished");
  }
  write_trusted(anchor, loc, pslot);
  return Status::OK();
}

Status SecureCache::PinLevels(int first_level) {
  for (int lvl = tree_->num_levels() - 1; lvl >= first_level; --lvl) {
    if (pinned_[lvl] != nullptr) continue;
    uint64_t nodes = tree_->NodesAt(lvl);
    uint8_t* buf =
        static_cast<uint8_t*>(enclave_->TrustedAlloc(nodes * node_size_));
    if (buf == nullptr) return Status::CapacityExceeded("pin allocation");
    for (uint64_t i = 0; i < nodes; ++i) {
      MtNodeId id{lvl, i};
      fault::InjectUntrustedRead(fault::Site::kMerkleNodeLoad,
                                 tree_->NodePtr(lvl, i), node_size_);
      std::memcpy(scratch_a_, tree_->NodePtr(lvl, i), node_size_);
      enclave_->TouchWrite(scratch_a_, node_size_);
      uint8_t mac[FlatMerkleTree::kMacSize];
      cmac_->Mac(scratch_a_, node_size_, mac);
      stats_.mac_verifications++;
      const uint8_t* expected;
      if (tree_->IsTop(id)) {
        expected = tree_->root();
      } else {
        MtNodeId parent = tree_->ParentOf(id);
        // Parents are already pinned (we pin top-down).
        expected = PinnedNodePtr(parent) +
                   tree_->SlotInParent(id) * FlatMerkleTree::kMacSize;
      }
      if (!crypto::MacEqual(mac, expected)) {
        enclave_->TrustedFree(buf);
        return Status::IntegrityViolation("pinning found a tampered MT node");
      }
      std::memcpy(buf + i * node_size_, scratch_a_, node_size_);
    }
    pinned_[lvl] = buf;
    stats_.pinned_bytes += nodes * node_size_;
    if (first_pinned_level_ < 0 || lvl < first_pinned_level_) {
      first_pinned_level_ = lvl;
    }
  }
  return Status::OK();
}

Status SecureCache::Flush() {
  while (num_cached_ > 0) {
    ARIA_RETURN_IF_ERROR(EvictOne());
  }
  return Status::OK();
}

Status SecureCache::StopSwap() {
  if (stats_.swap_stopped) return Status::OK();
  // Flush: evicting every node propagates all dirty MACs toward the root.
  while (num_cached_ > 0) {
    ARIA_RETURN_IF_ERROR(EvictOne());
  }
  if (slots_ != nullptr) {
    enclave_->TrustedFree(slots_);
    slots_ = nullptr;
  }
  num_slots_ = 0;
  stats_.slot_bytes = 0;
  meta_.clear();
  free_slots_.clear();
  policy_.reset();

  // Re-pin as many whole levels as fit in the full budget (top-down).
  uint64_t acc = stats_.pinned_bytes;
  int first = tree_->num_levels();
  for (int lvl = tree_->num_levels() - 1; lvl >= 0; --lvl) {
    uint64_t bytes =
        pinned_[lvl] != nullptr ? 0 : tree_->NodesAt(lvl) * node_size_;
    if (acc + bytes > config_.capacity_bytes) break;
    acc += bytes;
    first = lvl;
  }
  if (first < tree_->num_levels()) {
    ARIA_RETURN_IF_ERROR(PinLevels(first));
  }
  stats_.swap_stopped = true;
  return Status::OK();
}

void SecureCache::NoteAccess(bool hit) {
  if (hit) {
    stats_.hits++;
    window_hits_++;
  } else {
    stats_.misses++;
  }
  window_accesses_++;
  if (window_accesses_ >= config_.stop_swap_window) {
    windows_seen_++;
    double ratio =
        static_cast<double>(window_hits_) / static_cast<double>(window_accesses_);
    window_hits_ = 0;
    window_accesses_ = 0;
    // Judge only after warm-up, and require three consecutive bad windows:
    // a single cold window (e.g. right after bulk loading churned the FIFO)
    // must not permanently give up on caching. Only request the transition
    // here: StopSwap() tears down the slot storage, which the current
    // operation may still be using.
    if (ratio < config_.stop_swap_threshold) {
      bad_windows_++;
    } else {
      bad_windows_ = 0;
    }
    if (config_.stop_swap_enabled && !stats_.swap_stopped &&
        windows_seen_ >= 2 && bad_windows_ >= 3) {
      pending_stop_swap_ = true;
    }
  }
}

Status SecureCache::ReadCounter(uint64_t c, uint8_t out[16]) {
  // Counted at the entry point, while hits/misses are counted deep in the
  // branch logic — the access-conservation law cross-checks the two.
  stats_.accesses++;
  if (pending_stop_swap_) {
    pending_stop_swap_ = false;
    ARIA_RETURN_IF_ERROR(StopSwap());
  }
  if (stats_.swap_stopped) return StopSwapAccess(c, /*increment=*/false, out);
  MtNodeId leaf = tree_->LeafOf(c);
  size_t off = tree_->CounterOffsetInLeaf(c);
  uint32_t slot;
  uint8_t* p = TrustedNodePtr(leaf, &slot);
  if (p != nullptr) {
    NoteAccess(true);
    if (slot != kNoSlot) {
      policy_->OnHit(slot);
    } else {
      stats_.pinned_hits++;
    }
    enclave_->TouchRead(p + off, FlatMerkleTree::kCounterSize);
    std::memcpy(out, p + off, FlatMerkleTree::kCounterSize);
    return Status::OK();
  }
  NoteAccess(false);
  ARIA_RETURN_IF_ERROR(EnsureCached(leaf, &slot));
  enclave_->TouchRead(SlotPtr(slot) + off, FlatMerkleTree::kCounterSize);
  std::memcpy(out, SlotPtr(slot) + off, FlatMerkleTree::kCounterSize);
  return Status::OK();
}

Status SecureCache::BumpCounter(uint64_t c, uint8_t out[16]) {
  stats_.accesses++;
  if (pending_stop_swap_) {
    pending_stop_swap_ = false;
    ARIA_RETURN_IF_ERROR(StopSwap());
  }
  if (stats_.swap_stopped) return StopSwapAccess(c, /*increment=*/true, out);
  MtNodeId leaf = tree_->LeafOf(c);
  size_t off = tree_->CounterOffsetInLeaf(c);
  uint32_t slot;
  uint8_t* p = TrustedNodePtr(leaf, &slot);
  if (p == nullptr) {
    NoteAccess(false);
    ARIA_RETURN_IF_ERROR(EnsureCached(leaf, &slot));
    p = SlotPtr(slot);
  } else {
    NoteAccess(true);
    if (slot != kNoSlot) {
      policy_->OnHit(slot);
    } else {
      stats_.pinned_hits++;
    }
  }
  Increment128(p + off);
  enclave_->TouchWrite(p + off, FlatMerkleTree::kCounterSize);
  std::memcpy(out, p + off, FlatMerkleTree::kCounterSize);
  if (slot != kNoSlot) {
    // Update stops at the first cached node (§IV-B proof sketch).
    meta_[slot].dirty = true;
  } else {
    // Leaf level is pinned: the pinned copy is authoritative; keep the
    // untrusted image in sync for later unpinning.
    std::memcpy(tree_->CounterPtr(c), p + off, FlatMerkleTree::kCounterSize);
  }
  return Status::OK();
}

Status SecureCache::StopSwapAccess(uint64_t c, bool increment,
                                   uint8_t out[16]) {
  MtNodeId leaf = tree_->LeafOf(c);
  size_t off = tree_->CounterOffsetInLeaf(c);
  uint32_t slot;
  uint8_t* p = TrustedNodePtr(leaf, &slot);
  if (p != nullptr) {
    // The whole leaf level is pinned — no verification needed at all.
    stats_.hits++;
    stats_.pinned_hits++;
    if (increment) {
      Increment128(p + off);
      enclave_->TouchWrite(p + off, FlatMerkleTree::kCounterSize);
      std::memcpy(tree_->CounterPtr(c), p + off,
                  FlatMerkleTree::kCounterSize);
    } else {
      enclave_->TouchRead(p + off, FlatMerkleTree::kCounterSize);
    }
    std::memcpy(out, p + off, FlatMerkleTree::kCounterSize);
    return Status::OK();
  }

  stats_.misses++;
  std::vector<uint8_t> buf(node_size_);
  ARIA_RETURN_IF_ERROR(VerifyNodeChain(leaf, buf.data()));
  if (!increment) {
    std::memcpy(out, buf.data() + off, FlatMerkleTree::kCounterSize);
    return Status::OK();
  }

  // Write path without caching: update the leaf in place and propagate the
  // fresh MAC up to the first trusted ancestor.
  Increment128(buf.data() + off);
  std::memcpy(out, buf.data() + off, FlatMerkleTree::kCounterSize);
  std::memcpy(tree_->NodePtr(leaf.level, leaf.index), buf.data(), node_size_);
  uint8_t mac[FlatMerkleTree::kMacSize];
  cmac_->Mac(buf.data(), node_size_, mac);
  stats_.mac_verifications++;
  return PropagateMacUp(leaf, mac);
}

void SecureCache::CollectMetrics(obs::MetricSink* sink) const {
  sink->Counter("accesses", stats_.accesses);
  sink->Counter("hits", stats_.hits);
  sink->Counter("pinned_hits", stats_.pinned_hits);
  sink->Counter("misses", stats_.misses);
  sink->Counter("evictions", stats_.evictions);
  sink->Counter("clean_discards", stats_.clean_discards);
  sink->Counter("clean_writebacks", stats_.clean_writebacks);
  sink->Counter("dirty_writebacks", stats_.dirty_writebacks);
  sink->Counter("writebacks_avoided", stats_.writebacks_avoided);
  sink->Counter("mac_verifications", stats_.mac_verifications);
  sink->Counter("bytes_swapped_in", stats_.bytes_swapped_in);
  sink->Counter("bytes_swapped_out", stats_.bytes_swapped_out);
  sink->Counter("encryption_bytes_avoided", stats_.encryption_bytes_avoided);
  sink->Gauge("pinned_bytes", stats_.pinned_bytes);
  sink->Gauge("slot_bytes", stats_.slot_bytes);
  sink->Gauge("metadata_bytes", stats_.metadata_bytes);
  sink->Gauge("node_size", node_size_);
  sink->Gauge("swap_stopped", stats_.swap_stopped ? 1 : 0);
}

}  // namespace aria
