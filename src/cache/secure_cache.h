// Secure Cache (paper §IV): a software-managed cache of Merkle-tree nodes
// inside the enclave.
//
// Design points implemented here, each mapping to a paper section:
//  * fine-granularity (per-MT-node) swap between EPC and untrusted memory,
//    replacing 4 KB hardware secure paging                          (§IV-B)
//  * verification stops at the first cached/pinned ancestor; an update to a
//    cached leaf stops propagating immediately                      (§IV-B)
//  * eviction of a dirty node swaps the parent in, pushes the child MAC
//    into it, then writes the node back *in plaintext* — security metadata
//    needs integrity, not confidentiality                     (§IV-B, §IV-C)
//  * clean nodes are discarded without write-back (impossible with the SGX
//    EWB instruction)                                               (§IV-C)
//  * level pinning: the top-k MT levels are held permanently in the EPC,
//    bounding worst-case verification to O(h-k-1)                   (§IV-E)
//  * FIFO replacement avoids LRU's hit-path metadata writes         (§IV-E)
//  * stop-swap: when the hit ratio falls below a threshold (uniform-like
//    traffic), the cache flushes, pins every level that fits (typically all
//    but L0) and serves requests with exactly one MAC verification  (§IV-E)
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "crypto/cmac.h"
#include "mt/flat_merkle_tree.h"
#include "obs/metrics.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

/// Cache replacement policy selector.
enum class CachePolicy { kFifo, kLru };

struct SecureCacheConfig {
  /// Total EPC budget for this cache: pinned levels + node slots.
  uint64_t capacity_bytes = 64ull * 1024 * 1024;

  CachePolicy policy = CachePolicy::kFifo;

  /// Number of top MT levels (below the root) pinned at attach time.
  /// -1 = auto: pin every level above the leaves (worst-case verification
  /// is then a single MAC), budget permitting — the configuration the
  /// paper's 10M-key setup converges to.
  int pinned_levels = -1;

  /// Enable the adaptive stop-swap heuristic (§IV-E).
  bool stop_swap_enabled = true;
  double stop_swap_threshold = 0.70;
  uint64_t stop_swap_window = 65536;

  /// Semantic optimization: discard clean nodes instead of writing back.
  bool avoid_clean_writeback = true;

  /// Start with swapping disabled (used to emulate uniform-workload mode
  /// directly in benchmarks).
  bool start_stopped = false;
};

struct SecureCacheStats {
  uint64_t accesses = 0;  ///< every ReadCounter/BumpCounter entry; must equal
                          ///< hits + misses (conservation law, DESIGN.md §9)
  uint64_t hits = 0;
  uint64_t pinned_hits = 0;  ///< subset of hits served from pinned levels
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t clean_discards = 0;
  uint64_t clean_writebacks = 0;  ///< only with avoid_clean_writeback off
  uint64_t dirty_writebacks = 0;
  uint64_t mac_verifications = 0;
  uint64_t bytes_swapped_in = 0;
  uint64_t bytes_swapped_out = 0;
  uint64_t encryption_bytes_avoided = 0;  ///< vs. SGX paging, which encrypts
  uint64_t writebacks_avoided = 0;
  uint64_t pinned_bytes = 0;
  uint64_t slot_bytes = 0;
  uint64_t metadata_bytes = 0;  ///< leaf index + per-slot tags (EPC)
  bool swap_stopped = false;

  double HitRatio() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Software cache of MT nodes for one FlatMerkleTree. Not thread-safe (one
/// store instance = one enclave = one cache, as in the paper).
class SecureCache : public obs::Observable {
 public:
  SecureCache(sgx::EnclaveRuntime* enclave, FlatMerkleTree* tree,
              const crypto::Cmac128* cmac, SecureCacheConfig config);
  ~SecureCache() override;

  SecureCache(const SecureCache&) = delete;
  SecureCache& operator=(const SecureCache&) = delete;

  /// Allocate slot storage, verify-and-pin the configured top levels.
  /// Must be called after FlatMerkleTree::Init.
  Status Attach();

  /// Read counter `c` into `out` after integrity verification.
  Status ReadCounter(uint64_t c, uint8_t out[FlatMerkleTree::kCounterSize]);

  /// Increment counter `c` (128-bit little-endian) and return the NEW value;
  /// used on the Put path so every encryption uses a fresh counter.
  Status BumpCounter(uint64_t c, uint8_t out[FlatMerkleTree::kCounterSize]);

  /// Force the stop-swap transition now (flush + max pinning). Also invoked
  /// automatically by the hit-ratio heuristic.
  Status StopSwap();

  /// Evict every cached node, propagating all dirty MACs toward the root,
  /// without tearing down the slot storage (unlike StopSwap the cache keeps
  /// serving normally afterwards). Used by graceful shutdown so no update
  /// is left stranded in EPC-only state; a no-op on an already-clean or
  /// stop-swapped cache.
  Status Flush();

  bool swap_stopped() const { return stats_.swap_stopped; }
  const SecureCacheStats& stats() const { return stats_; }
  const SecureCacheConfig& config() const { return config_; }

  void CollectMetrics(obs::MetricSink* sink) const override;

  /// Number of node slots available after pinning (exposed for tests).
  uint64_t num_slots() const { return num_slots_; }

  /// True iff the node is currently cached (tests only).
  bool IsCached(MtNodeId id) const { return LookupSlot(id) != UINT32_MAX; }
  bool IsPinned(int level) const {
    return level >= first_pinned_level_ && first_pinned_level_ >= 0;
  }

 private:
  struct SlotMeta {
    MtNodeId id{-1, 0};
    bool dirty = false;
  };

  class Policy;
  class FifoPolicy;
  class LruPolicy;

  static uint64_t Key(MtNodeId id) {
    return (static_cast<uint64_t>(id.level) << 56) | id.index;
  }

  /// Slot holding `id`, or kNoSlot. Leaf nodes (the overwhelmingly common
  /// lookup) use a dense direct-mapped table — one predictable memory
  /// access; inner nodes use the hash map.
  uint32_t LookupSlot(MtNodeId id) const;
  void SetSlot(MtNodeId id, uint32_t slot);
  void ClearSlot(MtNodeId id);

  uint8_t* SlotPtr(uint32_t slot) const {
    return slots_ + static_cast<uint64_t>(slot) * node_size_;
  }

  /// Trusted bytes of a pinned node.
  uint8_t* PinnedNodePtr(MtNodeId id) const;

  /// Trusted content of `id` if cached or pinned, else nullptr.
  uint8_t* TrustedNodePtr(MtNodeId id, uint32_t* slot_out) const;

  /// Trusted location holding the stored MAC of `id`, or nullptr if the
  /// parent is not trusted. Root counts as trusted.
  uint8_t* TrustedStoredMacPtr(MtNodeId id, uint32_t* parent_slot_out);

  /// Verify the chain from `target` up to the first trusted ancestor and
  /// leave target's verified content in `out` (node_size bytes, trusted).
  Status VerifyNodeChain(MtNodeId target, uint8_t* out);

  /// Insert verified content as a cached node (evicting if necessary).
  Status Insert(MtNodeId id, const uint8_t* content, uint32_t* slot_out);

  /// Evict one victim according to the policy.
  Status EvictOne();

  /// Ensure `id` is cached; uses VerifyNodeChain + Insert.
  Status EnsureCached(MtNodeId id, uint32_t* slot_out);

  /// Write `mac` as the stored MAC of `id`. If the parent is cached or
  /// pinned (or `id` is the top node), the trusted location is updated in
  /// place (cached parents are marked dirty). Otherwise each untrusted
  /// ancestor is verified through an enclave scratch buffer, patched and
  /// written back, ascending until the first trusted location — without
  /// consuming any cache slots, so evictions never cascade.
  Status PropagateMacUp(MtNodeId id, const uint8_t mac[16]);

  /// Full-verification counter access used when swapping is stopped.
  Status StopSwapAccess(uint64_t c, bool increment, uint8_t out[16]);

  /// Pin levels [first_level .. top] after verifying them against the root.
  Status PinLevels(int first_level);

  void NoteAccess(bool hit);

  sgx::EnclaveRuntime* enclave_;
  FlatMerkleTree* tree_;
  const crypto::Cmac128* cmac_;
  SecureCacheConfig config_;
  size_t node_size_;

  // Slot storage (trusted).
  uint8_t* slots_ = nullptr;
  uint64_t num_slots_ = 0;
  std::vector<SlotMeta> meta_;
  std::vector<uint32_t> free_slots_;
  // Leaf-level cache index: direct-mapped, one uint32 per MT leaf. Its
  // size counts against the cache budget — exactly the "cache metadata"
  // whose footprint shrinks with larger node arity (Fig. 15 trade-off).
  std::vector<uint32_t> leaf_slot_;
  std::unordered_map<uint64_t, uint32_t> cached_;  // inner nodes -> slot
  uint64_t num_cached_ = 0;
  std::unique_ptr<Policy> policy_;

  // Pinned levels: level -> trusted buffer with all nodes of that level.
  // first_pinned_level_ == -1 means nothing pinned.
  int first_pinned_level_ = -1;
  std::vector<uint8_t*> pinned_;  // indexed by level, nullptr if not pinned

  // Scratch buffers for verification (trusted).
  uint8_t* scratch_a_ = nullptr;
  uint8_t* scratch_b_ = nullptr;

  // Stop-swap bookkeeping. The heuristic only *requests* the transition;
  // it is applied at the start of the next access, never in the middle of
  // an operation that still holds pointers into the slot storage.
  uint64_t window_hits_ = 0;
  uint64_t window_accesses_ = 0;
  uint64_t windows_seen_ = 0;
  uint64_t bad_windows_ = 0;
  bool pending_stop_swap_ = false;

  SecureCacheStats stats_;
};

}  // namespace aria
