// Deterministic, fast PRNG used by workload generators and tests.
// (Cryptographic randomness lives in crypto/secure_random.h.)
#pragma once

#include <cstdint>

namespace aria {

/// xoshiro256** — fast non-cryptographic PRNG with 2^256-1 period.
/// Deterministic for a given seed, so workloads and tests are reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

 private:
  uint64_t s_[4];
};

}  // namespace aria
