// Non-cryptographic hashing for index bucket selection and key hints.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace aria {

/// 64-bit xxHash-style mix over arbitrary bytes; used to pick hash buckets.
uint64_t Hash64(const void* data, size_t len, uint64_t seed = 0);

inline uint64_t Hash64(const Slice& s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

/// 32-bit "key hint" stored next to each encrypted entry so lookups can skip
/// non-matching candidates without decrypting (ShieldStore's key-hint trick,
/// reused by Aria-H). A different seed from the bucket hash so that colliding
/// keys in one bucket usually still have distinct hints.
inline uint32_t KeyHint(const Slice& key) {
  return static_cast<uint32_t>(Hash64(key, 0x5bd1e995u));
}

}  // namespace aria
