// A non-owning byte view, compatible with std::string storage. Used for keys
// and values throughout Aria's public API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace aria {

/// Non-owning view over a contiguous byte range. The bytes must outlive the
/// Slice; stores never retain a Slice past the call that received it.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const uint8_t* data, size_t size)
      : data_(reinterpret_cast<const char*>(data)), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* cstr) : data_(cstr), size_(std::strlen(cstr)) {}  // NOLINT
  Slice(std::string_view sv) : data_(sv.data()), size_(sv.size()) {}  // NOLINT

  const char* data() const { return data_; }
  const uint8_t* bytes() const {
    return reinterpret_cast<const uint8_t*>(data_);
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  /// Three-way comparison by unsigned byte order (shorter prefix is smaller).
  int compare(const Slice& other) const {
    size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
    if (r != 0) return r;
    if (size_ < other.size_) return -1;
    if (size_ > other.size_) return 1;
    return 0;
  }

  bool operator==(const Slice& other) const { return compare(other) == 0; }
  bool operator!=(const Slice& other) const { return compare(other) != 0; }
  bool operator<(const Slice& other) const { return compare(other) < 0; }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace aria
