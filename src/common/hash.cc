#include "common/hash.h"

#include <cstring>

namespace aria {

namespace {
constexpr uint64_t kMul = 0x9ddfea08eb382d69ull;

inline uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline uint64_t Mix(uint64_t v) {
  v ^= v >> 47;
  v *= kMul;
  v ^= v >> 47;
  return v;
}
}  // namespace

uint64_t Hash64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed ^ (len * kMul);
  while (len >= 8) {
    h = Mix(h ^ Load64(p)) * kMul;
    p += 8;
    len -= 8;
  }
  uint64_t tail = 0;
  if (len > 0) {
    std::memcpy(&tail, p, len);
    h = Mix(h ^ tail) * kMul;
  }
  return Mix(h);
}

}  // namespace aria
