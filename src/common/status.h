// Status and Result types used across Aria, modeled on the RocksDB/Arrow
// convention: cheap to return, explicit error codes, never thrown.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace aria {

/// Error taxonomy for Aria operations. `kIntegrityViolation` is the
/// security-critical code: it means an attack on untrusted memory was
/// detected (tampered MAC, replayed counter, corrupted index link, ...).
enum class Code : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCapacityExceeded = 3,
  kIntegrityViolation = 4,
  kInternal = 5,
};

/// Lightweight status object. Ok status carries no allocation.
class Status {
 public:
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg = "") {
    return Status(Code::kCapacityExceeded, std::move(msg));
  }
  static Status IntegrityViolation(std::string msg = "") {
    return Status(Code::kIntegrityViolation, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCapacityExceeded() const { return code_ == Code::kCapacityExceeded; }
  bool IsIntegrityViolation() const {
    return code_ == Code::kIntegrityViolation;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "IntegrityViolation: MAC mismatch".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// A value-or-status pair; `value()` must only be used when `ok()`.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                 // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T& operator*() { return value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

#define ARIA_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::aria::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace aria
