// Fault-injection hook latch. Production code calls the Inject* helpers at
// the points where untrusted state crosses into the enclave (or where an
// allocation can fail); with no injector installed each hook is a single
// predictable null-check. Tests install an aria::testing::ScheduledInjector
// (src/testing/fault_injector.h) to corrupt untrusted bytes, fail
// allocations, and drop or duplicate eviction write-backs under a
// deterministic seeded schedule.
#pragma once

#include <cstddef>
#include <cstdint>

namespace aria::fault {

/// Where a hook fires.
enum class Site : uint8_t {
  kTrustedAlloc = 0,    ///< sgx::EnclaveRuntime::TrustedAlloc
  kUntrustedAlloc,      ///< HeapAllocator::Alloc / OcallAllocator::Alloc
  kMerkleNodeLoad,      ///< SecureCache: untrusted MT node about to be read
  kEvictionWriteback,   ///< SecureCache: dirty victim about to be written back
  kFreeRingPop,         ///< CounterManager: recycled slot about to be popped
  kFreeListPop,         ///< HeapAllocator: untrusted next-pointer about to load
  kNumSites,
};

/// Interface implemented by the test-side injector.
class Injector {
 public:
  virtual ~Injector() = default;

  /// Called just before the enclave consumes `len` untrusted bytes at `p`;
  /// the injector may corrupt them in place (the adversary controls
  /// untrusted memory, so any mutation here models a legal attack).
  virtual void OnUntrustedRead(Site site, uint8_t* p, size_t len) = 0;

  /// Return true to make the allocation of `bytes` at `site` fail.
  virtual bool FailAlloc(Site site, size_t bytes) = 0;

  /// One dirty eviction write-back of `len` bytes from trusted `src` to
  /// untrusted `dst` is about to happen. Return true to suppress it (the
  /// adversary drops the write); the injector may also duplicate `src`
  /// elsewhere before returning false.
  virtual bool OnEvictionWriteback(uint8_t* dst, const uint8_t* src,
                                   size_t len) = 0;
};

/// Network fault points (torn frames, connection drops), implemented by the
/// serving layer's tests. Separate from Injector because the adversary
/// model differs: these model a hostile or failing *network peer*, not
/// tampered untrusted memory.
class NetInjector {
 public:
  virtual ~NetInjector() = default;

  /// Event loop `loop` is about to write `len` bytes of encoded responses
  /// on connection `conn`. Return a value < `len` to tear the stream: only
  /// that many bytes are written and the connection is then hard-closed
  /// mid-frame. Return `len` (or more) to write normally.
  virtual size_t OnServerWrite(uint64_t loop, uint64_t conn, size_t len) = 0;

  /// Return true to drop connection `conn` (owned by event loop `loop`)
  /// just before the server executes its next decoded request (the
  /// in-flight pipeline dies with it).
  virtual bool DropBeforeExecute(uint64_t loop, uint64_t conn) = 0;
};

/// Writer stall points for the torn-read battery (DESIGN.md §14). Each
/// marks the instant a writer has made a record's version/counter state
/// inconsistent with its payload — the window a broken optimistic reader
/// would return a half-written value from. Tests install a StallHook that
/// parks the writer inside the window while a reader probes it.
enum class StallPoint : uint8_t {
  kBaselineValuePublish = 0,  ///< EnclaveKV: mid in-place value overwrite
  kAriaCounterPublish,        ///< AriaHash: counter bumped, new record not yet published
  kOptimisticReadBody,        ///< ShardedStore: between the first seq read and the probe
  kAtomicBatchApply,          ///< ShardedStore: between two ops of an atomic batch apply
  kNumStallPoints,
};

/// Test-side stall latch: OnStall blocks (or not) at the writer's
/// discretion-free stall points above.
class StallHook {
 public:
  virtual ~StallHook() = default;
  virtual void OnStall(StallPoint point) = 0;
};

/// Currently installed injector, or nullptr (production).
Injector* Get();

/// Install (or clear, with nullptr) the process-wide injector. Test-only.
void Set(Injector* injector);

/// Currently installed network injector, or nullptr (production).
NetInjector* GetNet();

/// Install (or clear, with nullptr) the network injector. Test-only.
void SetNet(NetInjector* injector);

/// Currently installed stall hook, or nullptr (production).
StallHook* GetStall();

/// Install (or clear, with nullptr) the stall hook. Test-only.
void SetStall(StallHook* hook);

inline void InjectStall(StallPoint point) {
  if (StallHook* h = GetStall()) h->OnStall(point);
}

inline void InjectUntrustedRead(Site site, void* p, size_t len) {
  if (Injector* i = Get()) i->OnUntrustedRead(site, static_cast<uint8_t*>(p), len);
}

inline bool InjectAllocFailure(Site site, size_t bytes) {
  Injector* i = Get();
  return i != nullptr && i->FailAlloc(site, bytes);
}

inline bool InjectWritebackDrop(uint8_t* dst, const uint8_t* src, size_t len) {
  Injector* i = Get();
  return i != nullptr && i->OnEvictionWriteback(dst, src, len);
}

/// Bytes event loop `loop` may write of a `len`-byte response flush
/// (< len tears the stream mid-frame).
inline size_t InjectServerWrite(uint64_t loop, uint64_t conn, size_t len) {
  NetInjector* i = GetNet();
  if (i == nullptr) return len;
  size_t allowed = i->OnServerWrite(loop, conn, len);
  return allowed < len ? allowed : len;
}

/// True if the connection (owned by event loop `loop`) should be dropped
/// before executing its next decoded request.
inline bool InjectConnDrop(uint64_t loop, uint64_t conn) {
  NetInjector* i = GetNet();
  return i != nullptr && i->DropBeforeExecute(loop, conn);
}

}  // namespace aria::fault
