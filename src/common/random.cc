#include "common/random.h"

namespace aria {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  // Lemire's multiply-shift rejection-free mapping is fine here: slight bias
  // of < 2^-64 is irrelevant for workload generation.
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(Next()) * n) >> 64);
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace aria
