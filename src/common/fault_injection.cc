#include "common/fault_injection.h"

namespace aria::fault {

namespace {
Injector* g_injector = nullptr;
}  // namespace

Injector* Get() { return g_injector; }

void Set(Injector* injector) { g_injector = injector; }

}  // namespace aria::fault
