#include "common/fault_injection.h"

#include <atomic>

namespace aria::fault {

namespace {
// Atomic so installing/clearing the injector on one thread while workers
// pass through hooks on others is well-defined (the concurrency tests
// always install before spawning, but TSan verifies the latch itself).
std::atomic<Injector*> g_injector{nullptr};
std::atomic<NetInjector*> g_net_injector{nullptr};
std::atomic<StallHook*> g_stall_hook{nullptr};
}  // namespace

Injector* Get() { return g_injector.load(std::memory_order_acquire); }

void Set(Injector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

NetInjector* GetNet() {
  return g_net_injector.load(std::memory_order_acquire);
}

void SetNet(NetInjector* injector) {
  g_net_injector.store(injector, std::memory_order_release);
}

StallHook* GetStall() {
  return g_stall_hook.load(std::memory_order_acquire);
}

void SetStall(StallHook* hook) {
  g_stall_hook.store(hook, std::memory_order_release);
}

}  // namespace aria::fault
