#include "common/status.h"

namespace aria {

namespace {
const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      return "NotFound";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kCapacityExceeded:
      return "CapacityExceeded";
    case Code::kIntegrityViolation:
      return "IntegrityViolation";
    case Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace aria
