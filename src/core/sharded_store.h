// Sharded concurrent front-end (towards the multi-tenant setting of §VI,
// Fig. 16): the keyspace is hash-partitioned across N fully independent
// store instances from the factory. Each shard owns its own simulated
// enclave, untrusted heap, record codec, counter area and (for Aria)
// Secure Cache + Merkle trees — mirroring the paper's per-tenant MT
// carve-out, where tenants never share integrity metadata.
//
// Read paths — three, selected by StoreOptions (DESIGN.md §8, §14):
//
//  * Locked (default): one std::shared_mutex per shard; Put/Delete take it
//    exclusive, and Get/RangeScan *also* take it exclusive, because in this
//    reproduction most SGX-simulated read paths write shared state (the
//    Secure Cache swaps counters in and out, the enclave runtime advances
//    its CLOCK paging hand and statistics, the indexes keep scratch
//    buffers) — a shared-mode read would be a data race, and TSan agrees.
//
//  * shard_shared_reads: shared-mode locks on Get/RangeScan, for the one
//    configuration whose read path is genuinely const (Baseline hash with
//    the cost model disabled).
//
//  * Optimistic (ReadMode::kOptimistic): Get first runs lock-free. The
//    reader pins itself into the global epoch (core/epoch.h), reads the
//    shard's seqlock version, probes the index through TryLockFreeGet, and
//    re-reads the version; a changed (or odd) version means a writer raced
//    the probe and the value cannot be trusted — retry, and after
//    optimistic_max_retries failures fall back to an exclusive-lock Get.
//    The probe itself also falls back whenever the read path would mutate
//    shared state (Secure Cache swap-ins / CLOCK advance report
//    SupportsLockFreeRead() == false) — the fallback is the *rule* for
//    mutating read paths, not an error path. The epoch guard is always
//    released before blocking on the lock, so a parked fallback reader
//    never stalls reclamation. Writers still serialize on the exclusive
//    lock but additionally bump the shard seqlock around every mutation
//    (odd while in progress) and retire displaced records through the
//    epoch manager instead of freeing them in place; retired records are
//    reclaimed on later writes once every reader pinned before the retire
//    has exited. Conservation: optimistic_gets == optimistic_hits +
//    optimistic_fallbacks and epoch_retired == epoch_reclaimed +
//    epoch_pending, per shard (obs/invariants.h).
//
// Cross-shard RangeScan (ordered schemes): each shard is scanned for the
// full limit under its own lock, then the per-shard sorted runs are k-way
// merged and truncated. Shards hold disjoint keys, so no deduplication is
// needed. The scan is not atomic across shards: locks are taken one shard
// at a time (which also makes deadlock impossible).
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/epoch.h"
#include "core/kv_store.h"
#include "core/store_factory.h"

namespace aria {

/// One point operation of a shard-grouped batch (see ExecuteBatch). The
/// slices must stay valid for the duration of the call; `status` and
/// `result` are outputs.
struct BatchOp {
  enum class Kind : uint8_t { kGet, kPut, kDelete };
  Kind kind = Kind::kGet;
  Slice key;
  Slice value;  ///< kPut only
  Status status;
  std::string result;  ///< kGet only
};

/// One operation of a client-visible *atomic* multi-key batch (see
/// ExecuteAtomicBatch). Unlike BatchOp, the whole list commits or none of
/// it does. The slices must stay valid for the duration of the call;
/// `status` and `result` are outputs. For kRmw, `result` receives the old
/// value (empty + kNotFound status if the key was absent) and `value` is
/// the new value written.
struct AtomicOp {
  enum class Kind : uint8_t { kGet, kPut, kDelete, kRmw };
  Kind kind = Kind::kGet;
  Slice key;
  Slice value;  ///< kPut / kRmw only
  Status status;
  std::string result;  ///< kGet / kRmw only
};

class ShardedStore : public OrderedKVStore {
 public:
  /// Build `base.num_shards` shards. Each shard gets the base options with
  /// keyspace / EPC budget / cache / bucket sizing divided by the shard
  /// count, num_shards reset to 1, and a per-shard seed, then goes through
  /// the normal factory. Fails if any shard fails (InvalidArgument for
  /// shard_shared_reads on a config whose reads are not const, or for
  /// combining shard_shared_reads with ReadMode::kOptimistic).
  static Status Create(const StoreOptions& base,
                       std::unique_ptr<ShardedStore>* out);

  Status Put(Slice key, Slice value) override;
  Status Get(Slice key, std::string* value) override;
  Status Delete(Slice key) override;
  Status RangeScan(
      Slice start, size_t limit,
      std::vector<std::pair<std::string, std::string>>* out) override;

  /// Get that additionally reports whether the value was served by the
  /// lock-free optimistic path (false on the fallback / locked paths).
  /// The workload driver uses this to keep lock-free service time out of
  /// the per-shard serial floor of its makespan model.
  Status Get(Slice key, std::string* value, bool* served_lock_free);

  const char* name() const override { return name_.c_str(); }
  uint64_t size() const override;

  /// Execute `n` point operations, grouped by shard so each shard's lock is
  /// taken once per group instead of once per op — the network analog of
  /// the paper's boundary-crossing amortization (§V-B): the serving layer
  /// batches all requests decoded in one event-loop tick through here.
  /// Relative order of ops that hash to the same shard is preserved, so
  /// pipelined PUT-then-GET on one key stays sequential; ops on different
  /// shards may reorder (they are independent). In optimistic mode the
  /// leading run of GETs in a shard's group is served lock-free (no writer
  /// in this group has executed yet, and outside writers are exactly what
  /// the seqlock validates against); from the first write on, the group
  /// holds the exclusive lock. Per-op results land in each op's `status` /
  /// `result`. Safe to call concurrently from many threads — the
  /// multi-loop server (DESIGN.md §12) drives one batch per event loop
  /// through here, and concurrent batches serialize only where they touch
  /// the same shard's lock.
  void ExecuteBatch(BatchOp* ops, size_t n);

  /// Execute `n` operations as ONE atomic unit: either every op applies or
  /// none does, and no concurrent reader (locked, shared or optimistic) can
  /// observe a partially-applied batch. Locking discipline (DESIGN.md §15):
  /// the involved shards' writer locks are all acquired in canonical
  /// ascending shard-index order and held together for the whole batch —
  /// the only place in the tree where two shard locks are held at once, and
  /// the total order is what makes deadlock impossible. Read-only batches
  /// (all kGet) take shared locks instead when shard_shared_reads is on.
  ///
  /// Apply protocol: capture pre-state for every mutating op (undo log),
  /// then apply in op order; on any failure, roll back the already-applied
  /// prefix in reverse (displaced records flow through the epoch retire
  /// list in optimistic mode, exactly like normal overwrites) and return
  /// the failure; ops that did not cause it carry Internal("batch aborted").
  /// Per-op kNotFound on kGet / kDelete / kRmw is NOT a batch
  /// failure — it is a valid outcome recorded in that op's status.
  ///
  /// §V-B amortization: each touched shard gets ONE counter/MT update pass
  /// per batch (one seqlock bracket + one deferred-flush window), not one
  /// per op — core.batch_mt_update_passes counts these and is the headline
  /// of bench_atomic_batch.
  Status ExecuteAtomicBatch(AtomicOp* ops, size_t n);

  /// Graceful shutdown: under each shard's exclusive lock, flush that
  /// shard's dirty Secure Cache state so every pending MAC update reaches
  /// its Merkle root, and reclaim every retired record no reader can still
  /// see. Safe to call repeatedly; the store keeps serving afterwards.
  /// Callers pair this with CheckInvariants() for the end-of-serving audit.
  Status Drain();

  /// Which shard `key` lives in. Stable across the store's lifetime; uses
  /// a hash seed distinct from the bucket / key-hint hashes so the shard
  /// modulus does not correlate with in-shard bucket selection.
  uint32_t ShardOf(Slice key) const;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  bool ordered() const { return ordered_; }
  bool shared_reads() const { return shared_reads_; }
  ReadMode read_mode() const { return read_mode_; }

  /// The underlying bundle of shard `i` (tests reach through this for the
  /// per-shard enclave, allocator and counter manager).
  StoreBundle& shard_bundle(uint32_t i) { return shards_[i]->bundle; }

  /// Simulated cycles charged by shard `i`'s enclave under its lock.
  /// Only meaningful while no worker threads are running (callers snapshot
  /// before spawning and after joining).
  uint64_t shard_charged_cycles(uint32_t i) const {
    return shards_[i]->bundle.enclave->stats().charged_cycles;
  }

  /// Simulated cycles shard `i`'s enclave charged to *lock-free* reads.
  /// These do not serialize on the shard lock, so the driver's makespan
  /// model spreads them across threads instead of stacking them on the
  /// shard's serial floor.
  uint64_t shard_shared_charged_cycles(uint32_t i) const {
    return shards_[i]->bundle.enclave->shared_charged_cycles();
  }

  /// Cost model shared by every shard (copies of the base options' model).
  const sgx::CostModel& cost_model() const {
    return shards_[0]->bundle.enclave->cost_model();
  }

  /// The epoch manager every optimistic reader pins into (test access).
  epoch::EpochManager& epoch_manager() { return epoch_mgr_; }

  /// TEST ONLY — negative control for the linearizability battery: skip
  /// the second seqlock read, i.e. trust whatever the lock-free probe
  /// returned without validating that no writer raced it. With this on,
  /// torn / stale values become observable, which is how the battery
  /// proves the revalidation is load-bearing.
  void TEST_SetBrokenValidation(bool broken) {
    broken_validation_.store(broken, std::memory_order_relaxed);
  }

  /// TEST ONLY — negative control for the atomicity battery: when a batch
  /// apply fails mid-way, skip the rollback and commit the torn prefix.
  /// With this on, concurrent MULTIGETs can observe half a batch and the
  /// batch-atomicity oracle must flag it — proving the checker (and the
  /// rollback it guards) is load-bearing.
  void TEST_SetBrokenAtomicity(bool broken) {
    broken_atomicity_.store(broken, std::memory_order_relaxed);
  }

  /// TEST ONLY — shard `i`'s fallback count, readable without the shard
  /// lock (ShardSnapshot would block behind a parked writer). The torn-read
  /// choreography polls this to learn the reader has exhausted its retries
  /// and is headed for the locked path.
  uint64_t TEST_OptimisticFallbacks(uint32_t i) const {
    return shards_[i]->opt_fallbacks.load(std::memory_order_relaxed);
  }

  /// Metrics of shard `i` alone (under the shard's own lock), including
  /// this front-end's own per-shard counters under "core.".
  obs::Snapshot ShardSnapshot(uint32_t i) const;

  /// This front-end's own counters: per shard under "shardN." (optimistic
  /// path and epoch-reclamation counts) plus their shard-sum aggregates
  /// under bare names. Registered under "core" in each snapshot, so the
  /// full names are core.shardN.optimistic_gets, core.optimistic_gets, ...
  void CollectMetrics(obs::MetricSink* sink) const override;

  /// Per-shard conservation laws plus shard-sum reconciliation, the
  /// optimistic-read and epoch-reclamation conservation laws among them.
  obs::InvariantReport CheckInvariants() const;

 private:
  struct Shard {
    StoreBundle bundle;
    OrderedKVStore* ordered = nullptr;  // non-null iff the scheme is ordered

    // Seqlock version: even = stable, odd = writer mutating. Bumped (under
    // mu, so writers never race each other) only in optimistic mode.
    std::atomic<uint64_t> seq{0};

    // Optimistic-path counters. Conservation: gets == hits + fallbacks.
    std::atomic<uint64_t> opt_gets{0};
    std::atomic<uint64_t> opt_hits{0};
    std::atomic<uint64_t> opt_retries{0};
    std::atomic<uint64_t> opt_fallbacks{0};

    // Epoch-reclamation counters (mutated under mu, like `retired`).
    // Conservation: retired == reclaimed + retired.pending().
    std::atomic<uint64_t> retired_count{0};
    std::atomic<uint64_t> reclaimed_count{0};

    // Atomic-batch counters (mutated while holding mu). Conservation:
    // admitted == applied + rolled_back, and mt_update_passes <=
    // shard_touches (a pass only happens for shards with >= 1 write op).
    std::atomic<uint64_t> batch_ops_admitted{0};
    std::atomic<uint64_t> batch_ops_applied{0};
    std::atomic<uint64_t> batch_ops_rolled_back{0};
    std::atomic<uint64_t> batch_shard_touches{0};
    std::atomic<uint64_t> batch_mt_update_passes{0};

    mutable std::shared_mutex mu;

    // Declared after `bundle` so it is destroyed FIRST: its destructor
    // frees pending blocks through deleters that call back into
    // bundle.store / bundle.enclave.
    epoch::RetireList retired;  // guarded by mu (exclusive)
  };

  ShardedStore() = default;

  /// Epoch-pinned seqlock-validated lock-free Get with locked fallback.
  Status OptimisticGet(Shard& s, Slice key, std::string* value,
                       bool* served_lock_free);

  /// One lock-free probe + validation (no fallback, no gets/fallback
  /// accounting). kValidated fills `*st` with the result; kRaced means a
  /// writer invalidated the probe (retryable); kDeclined means the index
  /// refused the lock-free path (go straight to the lock).
  enum class ProbeOutcome : uint8_t { kValidated, kRaced, kDeclined };
  ProbeOutcome TryOptimisticOnce(Shard& s, Slice key, std::string* value,
                                 Status* st);

  // Writer-side seqlock brackets; both no-ops in locked mode. Call with
  // s.mu held exclusive. EndShardWrite additionally drains the shard's
  // retire list when it has grown past a small threshold.
  void BeginShardWrite(Shard& s);
  void EndShardWrite(Shard& s);

  std::vector<std::unique_ptr<Shard>> shards_;
  epoch::EpochManager epoch_mgr_;
  bool ordered_ = false;
  bool shared_reads_ = false;
  ReadMode read_mode_ = ReadMode::kLocked;
  uint32_t max_retries_ = 3;
  std::atomic<bool> broken_validation_{false};
  std::atomic<bool> broken_atomicity_{false};
  std::string name_;
};

}  // namespace aria
