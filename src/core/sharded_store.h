// Sharded concurrent front-end (towards the multi-tenant setting of §VI,
// Fig. 16): the keyspace is hash-partitioned across N fully independent
// store instances from the factory. Each shard owns its own simulated
// enclave, untrusted heap, record codec, counter area and (for Aria)
// Secure Cache + Merkle trees — mirroring the paper's per-tenant MT
// carve-out, where tenants never share integrity metadata.
//
// Locking discipline: one std::shared_mutex per shard. Put/Delete take it
// exclusive. Get/RangeScan *also* take it exclusive by default, because in
// this reproduction every SGX-simulated read path writes shared state (the
// Secure Cache swaps counters in and out, the enclave runtime advances its
// CLOCK paging hand and statistics, the indexes keep scratch buffers) — a
// shared-mode read would be a data race, and TSan agrees. The
// shard_shared_reads option enables true reader parallelism for the one
// configuration whose Get is genuinely const: the Baseline hash scheme
// with the cost model disabled. See DESIGN.md §8.
//
// Cross-shard RangeScan (ordered schemes): each shard is scanned for the
// full limit under its own lock, then the per-shard sorted runs are k-way
// merged and truncated. Shards hold disjoint keys, so no deduplication is
// needed. The scan is not atomic across shards: locks are taken one shard
// at a time (which also makes deadlock impossible).
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/kv_store.h"
#include "core/store_factory.h"

namespace aria {

/// One point operation of a shard-grouped batch (see ExecuteBatch). The
/// slices must stay valid for the duration of the call; `status` and
/// `result` are outputs.
struct BatchOp {
  enum class Kind : uint8_t { kGet, kPut, kDelete };
  Kind kind = Kind::kGet;
  Slice key;
  Slice value;  ///< kPut only
  Status status;
  std::string result;  ///< kGet only
};

class ShardedStore : public OrderedKVStore {
 public:
  /// Build `base.num_shards` shards. Each shard gets the base options with
  /// keyspace / EPC budget / cache / bucket sizing divided by the shard
  /// count, num_shards reset to 1, and a per-shard seed, then goes through
  /// the normal factory. Fails if any shard fails (InvalidArgument for
  /// shard_shared_reads on a config whose reads are not const).
  static Status Create(const StoreOptions& base,
                       std::unique_ptr<ShardedStore>* out);

  Status Put(Slice key, Slice value) override;
  Status Get(Slice key, std::string* value) override;
  Status Delete(Slice key) override;
  Status RangeScan(
      Slice start, size_t limit,
      std::vector<std::pair<std::string, std::string>>* out) override;

  const char* name() const override { return name_.c_str(); }
  uint64_t size() const override;

  /// Execute `n` point operations, grouped by shard so each shard's lock is
  /// taken once per group instead of once per op — the network analog of
  /// the paper's boundary-crossing amortization (§V-B): the serving layer
  /// batches all requests decoded in one event-loop tick through here.
  /// Relative order of ops that hash to the same shard is preserved, so
  /// pipelined PUT-then-GET on one key stays sequential; ops on different
  /// shards may reorder (they are independent). Per-op results land in
  /// each op's `status` / `result`. Safe to call concurrently from many
  /// threads — the multi-loop server (DESIGN.md §12) drives one batch per
  /// event loop through here, and concurrent batches serialize only where
  /// they touch the same shard's lock.
  void ExecuteBatch(BatchOp* ops, size_t n);

  /// Graceful shutdown: under each shard's exclusive lock, flush that
  /// shard's dirty Secure Cache state so every pending MAC update reaches
  /// its Merkle root. Safe to call repeatedly; the store keeps serving
  /// afterwards. Callers pair this with CheckInvariants() for the
  /// end-of-serving audit.
  Status Drain();

  /// Which shard `key` lives in. Stable across the store's lifetime; uses
  /// a hash seed distinct from the bucket / key-hint hashes so the shard
  /// modulus does not correlate with in-shard bucket selection.
  uint32_t ShardOf(Slice key) const;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  bool ordered() const { return ordered_; }
  bool shared_reads() const { return shared_reads_; }

  /// The underlying bundle of shard `i` (tests reach through this for the
  /// per-shard enclave, allocator and counter manager).
  StoreBundle& shard_bundle(uint32_t i) { return shards_[i]->bundle; }

  /// Simulated cycles charged by shard `i`'s enclave so far. Only
  /// meaningful while no worker threads are running (callers snapshot
  /// before spawning and after joining).
  uint64_t shard_charged_cycles(uint32_t i) const {
    return shards_[i]->bundle.enclave->stats().charged_cycles;
  }

  /// Cost model shared by every shard (copies of the base options' model).
  const sgx::CostModel& cost_model() const {
    return shards_[0]->bundle.enclave->cost_model();
  }

  /// Metrics of shard `i` alone (under the shard's own lock).
  obs::Snapshot ShardSnapshot(uint32_t i) const;

  /// Sum of all shards' snapshots: counters add, and gauges add too —
  /// aggregate live_entries / bytes_in_use across disjoint shards are the
  /// meaningful totals. The shard-conservation law re-derives this sum.
  void CollectMetrics(obs::MetricSink* sink) const override;

  /// Per-shard conservation laws plus shard-sum reconciliation.
  obs::InvariantReport CheckInvariants() const;

 private:
  struct Shard {
    StoreBundle bundle;
    OrderedKVStore* ordered = nullptr;  // non-null iff the scheme is ordered
    mutable std::shared_mutex mu;
  };

  ShardedStore() = default;

  std::vector<std::unique_ptr<Shard>> shards_;
  bool ordered_ = false;
  bool shared_reads_ = false;
  std::string name_;
};

}  // namespace aria
