#include "core/aria_btree.h"

#include <cstring>

namespace aria {

// CLRS-style B-tree with minimum degree t: nodes hold t-1..2t-1 records.
namespace {
constexpr int kMinDegree = 8;                  // t
constexpr int kMaxKeys = 2 * kMinDegree - 1;   // 15
}  // namespace

struct AriaBTree::Node {
  uint16_t num_keys;
  uint8_t is_leaf;
  uint8_t pad[5];
  uint8_t* records[kMaxKeys];
  Node* children[kMaxKeys + 1];
};

AriaBTree::AriaBTree(sgx::EnclaveRuntime* enclave,
                     UntrustedAllocator* allocator, const RecordCodec* codec,
                     CounterStore* counters)
    : enclave_(enclave),
      allocator_(allocator),
      codec_(codec),
      counters_(counters) {}

void AriaBTree::FreeSubtree(Node* node) {
  if (node == nullptr) return;
  for (int i = 0; i < node->num_keys; ++i) {
    if (node->records[i] != nullptr) allocator_->Free(node->records[i]).ok();
  }
  if (!node->is_leaf) {
    for (int i = 0; i <= node->num_keys; ++i) FreeSubtree(node->children[i]);
  }
  allocator_->Free(node).ok();
}

AriaBTree::~AriaBTree() { FreeSubtree(root_); }

Result<AriaBTree::Node*> AriaBTree::NewNode(bool is_leaf) {
  auto mem = allocator_->Alloc(sizeof(Node));
  if (!mem.ok()) return mem.status();
  Node* n = static_cast<Node*>(mem.value());
  std::memset(n, 0, sizeof(Node));
  n->is_leaf = is_leaf ? 1 : 0;
  stats_.nodes++;
  return n;
}

Status AriaBTree::CompareKeyAt(Node* node, int i, Slice key, int* cmp,
                               std::string* value_out) {
  uint8_t* rec = node->records[i];
  RecordHeader h = RecordCodec::Peek(rec);
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
  ARIA_RETURN_IF_ERROR(codec_->Verify(
      rec, ctr, reinterpret_cast<uint64_t>(&node->records[i])));
  stats_.descent_decrypts++;
  std::string k;
  codec_->OpenKey(rec, ctr, &k);
  *cmp = key.compare(Slice(k));
  if (*cmp == 0 && value_out != nullptr) {
    codec_->Open(rec, ctr, nullptr, value_out);
  }
  return Status::OK();
}

Status AriaBTree::MoveRecord(Node* from_node, int from_slot, Node* to_node,
                             int to_slot) {
  uint8_t* rec = from_node->records[from_slot];
  RecordHeader h = RecordCodec::Peek(rec);
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
  ARIA_RETURN_IF_ERROR(codec_->Verify(
      rec, ctr, reinterpret_cast<uint64_t>(&from_node->records[from_slot])));
  to_node->records[to_slot] = rec;
  codec_->Reseal(rec, ctr,
                 reinterpret_cast<uint64_t>(&to_node->records[to_slot]));
  stats_.record_moves++;
  return Status::OK();
}

Status AriaBTree::ShiftRight(Node* node, int from, int /*count*/) {
  for (int j = node->num_keys - 1; j >= from; --j) {
    ARIA_RETURN_IF_ERROR(MoveRecord(node, j, node, j + 1));
  }
  return Status::OK();
}

Status AriaBTree::ShiftLeft(Node* node, int from) {
  for (int j = from; j + 1 < node->num_keys; ++j) {
    ARIA_RETURN_IF_ERROR(MoveRecord(node, j + 1, node, j));
  }
  return Status::OK();
}

Status AriaBTree::SplitChild(Node* parent, int idx) {
  Node* child = parent->children[idx];
  auto right_res = NewNode(child->is_leaf != 0);
  if (!right_res.ok()) return right_res.status();
  Node* right = right_res.value();

  constexpr int mid = kMinDegree - 1;  // median index (7)
  // Move the upper records into the new right sibling.
  for (int j = mid + 1; j < kMaxKeys; ++j) {
    ARIA_RETURN_IF_ERROR(MoveRecord(child, j, right, j - mid - 1));
  }
  right->num_keys = static_cast<uint16_t>(kMaxKeys - mid - 1);
  if (!child->is_leaf) {
    for (int j = mid + 1; j <= kMaxKeys; ++j) {
      right->children[j - mid - 1] = child->children[j];
    }
  }

  // Make room in the parent, then raise the median.
  ARIA_RETURN_IF_ERROR(ShiftRight(parent, idx, 1));
  for (int j = parent->num_keys; j > idx; --j) {
    parent->children[j + 1] = parent->children[j];
  }
  ARIA_RETURN_IF_ERROR(MoveRecord(child, mid, parent, idx));
  parent->children[idx + 1] = right;
  parent->num_keys++;
  child->num_keys = mid;
  stats_.splits++;
  return Status::OK();
}

Status AriaBTree::MergeChildren(Node* parent, int idx) {
  Node* left = parent->children[idx];
  Node* right = parent->children[idx + 1];
  // Pull the separator down into the left child, append the right child.
  ARIA_RETURN_IF_ERROR(MoveRecord(parent, idx, left, kMinDegree - 1));
  for (int j = 0; j < right->num_keys; ++j) {
    ARIA_RETURN_IF_ERROR(MoveRecord(right, j, left, kMinDegree + j));
  }
  if (!left->is_leaf) {
    for (int j = 0; j <= right->num_keys; ++j) {
      left->children[kMinDegree + j] = right->children[j];
    }
  }
  left->num_keys = static_cast<uint16_t>(kMaxKeys);
  // Close the gap in the parent.
  ARIA_RETURN_IF_ERROR(ShiftLeft(parent, idx));
  for (int j = idx + 1; j < parent->num_keys; ++j) {
    parent->children[j] = parent->children[j + 1];
  }
  parent->num_keys--;
  parent->records[parent->num_keys] = nullptr;
  parent->children[parent->num_keys + 1] = nullptr;
  ARIA_RETURN_IF_ERROR(allocator_->Free(right));
  stats_.nodes--;
  return Status::OK();
}

Status AriaBTree::BorrowFromLeft(Node* parent, int idx) {
  Node* child = parent->children[idx];
  Node* lsib = parent->children[idx - 1];
  ARIA_RETURN_IF_ERROR(ShiftRight(child, 0, 1));
  if (!child->is_leaf) {
    for (int j = child->num_keys; j >= 0; --j) {
      child->children[j + 1] = child->children[j];
    }
    child->children[0] = lsib->children[lsib->num_keys];
  }
  // Rotate: parent separator moves down, sibling's last key moves up.
  ARIA_RETURN_IF_ERROR(MoveRecord(parent, idx - 1, child, 0));
  ARIA_RETURN_IF_ERROR(MoveRecord(lsib, lsib->num_keys - 1, parent, idx - 1));
  child->num_keys++;
  lsib->num_keys--;
  lsib->records[lsib->num_keys] = nullptr;
  return Status::OK();
}

Status AriaBTree::BorrowFromRight(Node* parent, int idx) {
  Node* child = parent->children[idx];
  Node* rsib = parent->children[idx + 1];
  ARIA_RETURN_IF_ERROR(MoveRecord(parent, idx, child, child->num_keys));
  ARIA_RETURN_IF_ERROR(MoveRecord(rsib, 0, parent, idx));
  if (!child->is_leaf) {
    child->children[child->num_keys + 1] = rsib->children[0];
    for (int j = 0; j < rsib->num_keys; ++j) {
      rsib->children[j] = rsib->children[j + 1];
    }
  }
  ARIA_RETURN_IF_ERROR(ShiftLeft(rsib, 0));
  child->num_keys++;
  rsib->num_keys--;
  rsib->records[rsib->num_keys] = nullptr;
  return Status::OK();
}

Status AriaBTree::SealNewRecord(Node* node, int slot, Slice key,
                                Slice value) {
  auto red = counters_->FetchCounter();
  if (!red.ok()) return red.status();
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->BumpCounter(red.value(), ctr));
  auto mem =
      allocator_->Alloc(RecordCodec::SealedSize(key.size(), value.size()));
  if (!mem.ok()) {
    // Roll the fetched counter back so record-counter conservation holds
    // even when the allocation fails (DESIGN.md §9).
    counters_->FreeCounter(red.value()).ok();
    return mem.status();
  }
  uint8_t* rec = static_cast<uint8_t*>(mem.value());
  node->records[slot] = rec;
  codec_->Seal(red.value(), ctr, key, value,
               reinterpret_cast<uint64_t>(&node->records[slot]), rec);
  return Status::OK();
}

Status AriaBTree::OverwriteRecord(Node* node, int slot, Slice key,
                                  Slice value) {
  uint8_t* rec = node->records[slot];
  RecordHeader h = RecordCodec::Peek(rec);
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->BumpCounter(h.red_ptr, ctr));
  size_t sealed = RecordCodec::SealedSize(key.size(), value.size());
  size_t old_sealed = RecordCodec::SealedSize(h.k_len, h.v_len);
  uint64_t ad = reinterpret_cast<uint64_t>(&node->records[slot]);
  if (sealed <= old_sealed) {
    codec_->Seal(h.red_ptr, ctr, key, value, ad, rec);
    return Status::OK();
  }
  auto mem = allocator_->Alloc(sealed);
  if (!mem.ok()) return mem.status();
  uint8_t* nrec = static_cast<uint8_t*>(mem.value());
  codec_->Seal(h.red_ptr, ctr, key, value, ad, nrec);
  node->records[slot] = nrec;
  return allocator_->Free(rec);
}

Status AriaBTree::RemoveRecordAt(Node* node, int slot) {
  uint8_t* rec = node->records[slot];
  RecordHeader h = RecordCodec::Peek(rec);
  ARIA_RETURN_IF_ERROR(counters_->FreeCounter(h.red_ptr));
  ARIA_RETURN_IF_ERROR(allocator_->Free(rec));
  ARIA_RETURN_IF_ERROR(ShiftLeft(node, slot));
  node->num_keys--;
  node->records[node->num_keys] = nullptr;
  return Status::OK();
}

Status AriaBTree::Get(Slice key, std::string* value) {
  Node* node = root_;
  int depth = 0;
  while (node != nullptr) {
    if (++depth > height_) {
      return Status::IntegrityViolation("B-tree descent exceeds height");
    }
    // Binary search over encrypted separators.
    int lo = 0, hi = node->num_keys;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      int cmp;
      ARIA_RETURN_IF_ERROR(CompareKeyAt(node, mid, key, &cmp, nullptr));
      if (cmp <= 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo < node->num_keys) {
      int cmp;
      ARIA_RETURN_IF_ERROR(CompareKeyAt(node, lo, key, &cmp, value));
      if (cmp == 0) return Status::OK();
    }
    if (node->is_leaf) break;
    node = node->children[lo];
  }
  return Status::NotFound();
}

Status AriaBTree::Put(Slice key, Slice value) {
  if (key.size() > RecordCodec::kMaxKeyLen ||
      value.size() > RecordCodec::kMaxValueLen) {
    return Status::InvalidArgument("key or value too large");
  }
  if (root_ == nullptr) {
    auto r = NewNode(true);
    if (!r.ok()) return r.status();
    root_ = r.value();
    height_ = 1;
  }
  if (root_->num_keys == kMaxKeys) {
    auto r = NewNode(false);
    if (!r.ok()) return r.status();
    Node* new_root = r.value();
    new_root->children[0] = root_;
    root_ = new_root;
    height_++;
    ARIA_RETURN_IF_ERROR(SplitChild(new_root, 0));
  }

  Node* node = root_;
  int depth = 1;
  for (;;) {
    int lo = 0, hi = node->num_keys;
    int cmp = -1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      ARIA_RETURN_IF_ERROR(CompareKeyAt(node, mid, key, &cmp, nullptr));
      if (cmp <= 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    bool eq = false;
    if (lo < node->num_keys) {
      ARIA_RETURN_IF_ERROR(CompareKeyAt(node, lo, key, &cmp, nullptr));
      eq = cmp == 0;
    }
    if (eq) return OverwriteRecord(node, lo, key, value);
    if (node->is_leaf) {
      ARIA_RETURN_IF_ERROR(ShiftRight(node, lo, 1));
      ARIA_RETURN_IF_ERROR(SealNewRecord(node, lo, key, value));
      node->num_keys++;
      total_keys_++;
      return Status::OK();
    }
    Node* child = node->children[lo];
    if (child->num_keys == kMaxKeys) {
      ARIA_RETURN_IF_ERROR(SplitChild(node, lo));
      ARIA_RETURN_IF_ERROR(CompareKeyAt(node, lo, key, &cmp, nullptr));
      if (cmp == 0) return OverwriteRecord(node, lo, key, value);
      if (cmp > 0) ++lo;
      child = node->children[lo];
    }
    node = child;
    if (++depth > height_) {
      return Status::IntegrityViolation("B-tree descent exceeds height");
    }
  }
}

Status AriaBTree::Delete(Slice key) {
  if (root_ == nullptr) return Status::NotFound();

  // Recursive CLRS delete with pre-strengthening, expressed iteratively.
  // Every node we descend into has >= kMinDegree keys (except the root), so
  // removal never underflows.
  Node* node = root_;
  std::string target = key.ToString();
  int depth = 0;
  for (;;) {
    if (++depth > height_ + 1) {
      return Status::IntegrityViolation("B-tree delete exceeds height");
    }
    int lo = 0, hi = node->num_keys;
    int cmp = -1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      ARIA_RETURN_IF_ERROR(CompareKeyAt(node, mid, Slice(target), &cmp, nullptr));
      if (cmp <= 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    bool eq = false;
    if (lo < node->num_keys) {
      ARIA_RETURN_IF_ERROR(CompareKeyAt(node, lo, Slice(target), &cmp, nullptr));
      eq = cmp == 0;
    }

    if (eq && node->is_leaf) {
      ARIA_RETURN_IF_ERROR(RemoveRecordAt(node, lo));
      total_keys_--;
      return Status::OK();
    }

    if (eq) {
      Node* left = node->children[lo];
      Node* right = node->children[lo + 1];
      if (left->num_keys >= kMinDegree) {
        // Replace with the predecessor: decrypt it, reseal it in place of
        // the deleted record, then delete the predecessor key instead.
        Node* p = left;
        while (!p->is_leaf) p = p->children[p->num_keys];
        int pi = p->num_keys - 1;
        uint8_t* prec = p->records[pi];
        RecordHeader ph = RecordCodec::Peek(prec);
        uint8_t pctr[CounterStore::kCounterSize];
        ARIA_RETURN_IF_ERROR(counters_->ReadCounter(ph.red_ptr, pctr));
        ARIA_RETURN_IF_ERROR(codec_->Verify(
            prec, pctr, reinterpret_cast<uint64_t>(&p->records[pi])));
        std::string pkey, pvalue;
        codec_->Open(prec, pctr, &pkey, &pvalue);
        // Overwrite the target's record with the predecessor's contents.
        ARIA_RETURN_IF_ERROR(OverwriteRecord(node, lo, pkey, pvalue));
        // Now delete the predecessor key from the left subtree.
        target = pkey;
        node = left;
        continue;
      }
      if (right->num_keys >= kMinDegree) {
        // Symmetric: successor from the right subtree.
        Node* p = right;
        while (!p->is_leaf) p = p->children[0];
        uint8_t* srec = p->records[0];
        RecordHeader sh = RecordCodec::Peek(srec);
        uint8_t sctr[CounterStore::kCounterSize];
        ARIA_RETURN_IF_ERROR(counters_->ReadCounter(sh.red_ptr, sctr));
        ARIA_RETURN_IF_ERROR(codec_->Verify(
            srec, sctr, reinterpret_cast<uint64_t>(&p->records[0])));
        std::string skey, svalue;
        codec_->Open(srec, sctr, &skey, &svalue);
        ARIA_RETURN_IF_ERROR(OverwriteRecord(node, lo, skey, svalue));
        target = skey;
        node = right;
        continue;
      }
      // Both children minimal: merge them around the target key, then
      // continue the delete inside the merged child.
      ARIA_RETURN_IF_ERROR(MergeChildren(node, lo));
      if (node == root_ && root_->num_keys == 0 && !root_->is_leaf) {
        Node* old = root_;
        root_ = root_->children[0];
        allocator_->Free(old).ok();
        stats_.nodes--;
        height_--;
        depth--;
      }
      node = left;
      continue;
    }

    if (node->is_leaf) return Status::NotFound();

    // Strengthen the child before descending.
    Node* child = node->children[lo];
    if (child->num_keys == kMinDegree - 1) {
      Node* lsib = lo > 0 ? node->children[lo - 1] : nullptr;
      Node* rsib = lo < node->num_keys ? node->children[lo + 1] : nullptr;
      if (lsib != nullptr && lsib->num_keys >= kMinDegree) {
        ARIA_RETURN_IF_ERROR(BorrowFromLeft(node, lo));
      } else if (rsib != nullptr && rsib->num_keys >= kMinDegree) {
        ARIA_RETURN_IF_ERROR(BorrowFromRight(node, lo));
      } else if (lsib != nullptr) {
        ARIA_RETURN_IF_ERROR(MergeChildren(node, lo - 1));
        child = node->children[lo - 1];
      } else {
        ARIA_RETURN_IF_ERROR(MergeChildren(node, lo));
        child = node->children[lo];
      }
    }
    // Root may have emptied after a merge.
    if (node == root_ && root_->num_keys == 0 && !root_->is_leaf) {
      Node* old = root_;
      root_ = root_->children[0];
      allocator_->Free(old).ok();
      stats_.nodes--;
      height_--;
      node = root_;
      depth--;
      continue;
    }
    node = child;
  }
}

Status AriaBTree::RangeScan(
    Slice start, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  if (root_ == nullptr) return Status::OK();
  return ScanNode(root_, start, limit, out, 1);
}

Status AriaBTree::ScanNode(
    Node* node, Slice start, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out, int depth) {
  if (depth > height_) {
    return Status::IntegrityViolation("range scan exceeds height");
  }
  // Find the first separator >= start, pruning subtrees entirely below it.
  int lo = 0, hi = node->num_keys;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    int cmp;
    ARIA_RETURN_IF_ERROR(CompareKeyAt(node, mid, start, &cmp, nullptr));
    if (cmp <= 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  for (int i = lo; i <= node->num_keys; ++i) {
    if (out->size() >= limit) return Status::OK();
    if (!node->is_leaf) {
      ARIA_RETURN_IF_ERROR(
          ScanNode(node->children[i], start, limit, out, depth + 1));
      if (out->size() >= limit) return Status::OK();
    }
    if (i < node->num_keys) {
      uint8_t* rec = node->records[i];
      RecordHeader h = RecordCodec::Peek(rec);
      uint8_t ctr[CounterStore::kCounterSize];
      ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
      ARIA_RETURN_IF_ERROR(codec_->Verify(
          rec, ctr, reinterpret_cast<uint64_t>(&node->records[i])));
      std::string k, v;
      codec_->Open(rec, ctr, &k, &v);
      if (Slice(k).compare(start) >= 0) {
        out->emplace_back(std::move(k), std::move(v));
      }
    }
  }
  return Status::OK();
}

uint8_t** AriaBTree::DebugRecordSlot(Slice key) {
  Node* node = root_;
  while (node != nullptr) {
    int lo = 0, hi = node->num_keys;
    int cmp = -1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (!CompareKeyAt(node, mid, key, &cmp, nullptr).ok()) return nullptr;
      if (cmp <= 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo < node->num_keys) {
      if (!CompareKeyAt(node, lo, key, &cmp, nullptr).ok()) return nullptr;
      if (cmp == 0) return &node->records[lo];
    }
    if (node->is_leaf) break;
    node = node->children[lo];
  }
  return nullptr;
}

Status AriaBTree::VerifyNode(Node* node, int depth, uint64_t* keys) {
  if (depth > height_) {
    return Status::IntegrityViolation("tree deeper than trusted height");
  }
  if (node->is_leaf && depth != height_) {
    return Status::IntegrityViolation("leaf at wrong depth (node deletion)");
  }
  for (int i = 0; i < node->num_keys; ++i) {
    uint8_t* rec = node->records[i];
    RecordHeader h = RecordCodec::Peek(rec);
    uint8_t ctr[CounterStore::kCounterSize];
    ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
    ARIA_RETURN_IF_ERROR(codec_->Verify(
        rec, ctr, reinterpret_cast<uint64_t>(&node->records[i])));
    (*keys)++;
  }
  if (!node->is_leaf) {
    for (int i = 0; i <= node->num_keys; ++i) {
      ARIA_RETURN_IF_ERROR(VerifyNode(node->children[i], depth + 1, keys));
    }
  }
  return Status::OK();
}

Status AriaBTree::VerifyFullIntegrity() {
  uint64_t keys = 0;
  if (root_ != nullptr) {
    ARIA_RETURN_IF_ERROR(VerifyNode(root_, 1, &keys));
  }
  if (keys != total_keys_) {
    return Status::IntegrityViolation(
        "total key count mismatch (unauthorized deletion)");
  }
  return Status::OK();
}

void AriaBTree::CollectMetrics(obs::MetricSink* sink) const {
  sink->Counter("splits", stats_.splits);
  sink->Counter("record_moves", stats_.record_moves);
  sink->Counter("descent_decrypts", stats_.descent_decrypts);
  sink->Gauge("nodes", stats_.nodes);
  sink->Gauge("height", static_cast<uint64_t>(height_));
  sink->Gauge("live_entries", total_keys_);
}

}  // namespace aria
