// Aria-T: the B-tree variant of Aria (paper §V-C).
//
// Classic B-tree with preemptive splitting; nodes and sealed records live in
// untrusted memory, only the root pointer, tree height and total key count
// are trusted. Every key comparison during descent verifies and decrypts the
// candidate record (the paper's reason Aria-T is ~10x slower than Aria-H).
//
// Index protection: a record's AdField is the address of the record-pointer
// slot currently holding it, so moving/exchanging records (within or across
// nodes) without the enclave's cooperation breaks the MAC. Structural
// attacks that only rewire child pointers can misroute lookups; like the
// paper, we detect them via the trusted height during descent plus an
// explicit VerifyFullIntegrity() sweep (trusted total key count).
//
// Simplification vs. a textbook B-tree: Delete does not rebalance underfull
// nodes (search correctness is unaffected; occupancy may degrade under
// delete-heavy workloads, which the paper never evaluates).
#pragma once

#include <cstdint>
#include <string>

#include "alloc/heap_allocator.h"
#include "core/counter_store.h"
#include "core/kv_store.h"
#include "core/record.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

struct AriaBTreeStats {
  uint64_t nodes = 0;
  uint64_t splits = 0;
  uint64_t record_moves = 0;   ///< AdField reseals from shifts/splits
  uint64_t descent_decrypts = 0;
};

class AriaBTree : public OrderedKVStore {
 public:
  AriaBTree(sgx::EnclaveRuntime* enclave, UntrustedAllocator* allocator,
            const RecordCodec* codec, CounterStore* counters);
  ~AriaBTree() override;

  Status Put(Slice key, Slice value) override;
  Status Get(Slice key, std::string* value) override;
  Status Delete(Slice key) override;
  Status RangeScan(
      Slice start, size_t limit,
      std::vector<std::pair<std::string, std::string>>* out) override;
  const char* name() const override { return "Aria-T"; }
  uint64_t size() const override { return total_keys_; }

  /// Verify every record MAC, the uniform leaf depth and the total key
  /// count against trusted metadata. O(n) — used by tests and on-demand
  /// audits after suspicious misses.
  Status VerifyFullIntegrity();

  int height() const { return height_; }
  const AriaBTreeStats& stats() const { return stats_; }

  void CollectMetrics(obs::MetricSink* sink) const override;

  /// Test-only attacker hook: address of the record-pointer slot currently
  /// holding `key`'s record (nullptr if absent). Found by decrypting like a
  /// normal descent, but the returned cell lives in untrusted memory.
  uint8_t** DebugRecordSlot(Slice key);

 private:
  struct Node;  // defined in aria_btree.cc

  Status CompareKeyAt(Node* node, int i, Slice key, int* cmp,
                      std::string* value_out);
  Status MoveRecord(Node* from_node, int from_slot, Node* to_node,
                    int to_slot);
  Status ShiftRight(Node* node, int from, int count);
  Status ShiftLeft(Node* node, int from);
  Status SplitChild(Node* parent, int idx);
  Status MergeChildren(Node* parent, int idx);
  Status BorrowFromLeft(Node* parent, int idx);
  Status BorrowFromRight(Node* parent, int idx);
  Result<Node*> NewNode(bool is_leaf);
  Status SealNewRecord(Node* node, int slot, Slice key, Slice value);
  Status OverwriteRecord(Node* node, int slot, Slice key, Slice value);
  Status RemoveRecordAt(Node* node, int slot);
  Status ScanNode(Node* node, Slice start, size_t limit,
                  std::vector<std::pair<std::string, std::string>>* out,
                  int depth);
  Status VerifyNode(Node* node, int depth, uint64_t* keys);
  void FreeSubtree(Node* node);

  sgx::EnclaveRuntime* enclave_;
  UntrustedAllocator* allocator_;
  const RecordCodec* codec_;
  CounterStore* counters_;

  // Trusted index entrance + structural metadata (§V-C).
  Node* root_ = nullptr;
  int height_ = 0;
  uint64_t total_keys_ = 0;
  AriaBTreeStats stats_;
};

}  // namespace aria
