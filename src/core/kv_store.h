// Public key-value store interface implemented by Aria-H, Aria-T and all
// baselines, so benchmarks and examples drive every scheme uniformly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace aria {

/// Outcome of a lock-free read attempt (ShardedStore optimistic mode,
/// DESIGN.md §8/§14). kFallback means the store could not serve this key
/// without mutating shared state (Secure Cache swap-in, CLOCK advance) or
/// could not prove the snapshot consistent — the caller must retry under
/// the shard's exclusive lock. A lock-free probe NEVER reports
/// IntegrityViolation: a torn snapshot is indistinguishable from an
/// in-flight writer, so the locked path is the only place that verdict may
/// be rendered.
enum class LockFreeGetResult : uint8_t { kHit, kNotFound, kFallback };

class KVStore : public obs::Observable {
 public:
  ~KVStore() override = default;

  /// Insert or overwrite a KV pair.
  virtual Status Put(Slice key, Slice value) = 0;

  /// Look up `key`; fills `value` on success. Returns NotFound if absent and
  /// IntegrityViolation if tampering is detected on the lookup path.
  virtual Status Get(Slice key, std::string* value) = 0;

  /// Remove a KV pair. NotFound if absent.
  virtual Status Delete(Slice key) = 0;

  /// Attempt to serve a GET without any lock, relying only on atomic loads
  /// plus the caller's epoch pin. Default: unsupported — fall back. Stores
  /// that support it (AriaHash, EnclaveKV with lock_free_reads configured)
  /// must leave `*value` meaningful only on kHit and must never mutate
  /// index or cache state on this path.
  virtual LockFreeGetResult TryLockFreeGet(Slice key, std::string* value) {
    (void)key;
    (void)value;
    return LockFreeGetResult::kFallback;
  }

  /// Hook invoked (under the owner's writer lock) instead of freeing a
  /// displaced block in place, so the owner can defer the free through an
  /// epoch RetireList. Stores without a lock-free read path ignore it.
  using RetireHook = std::function<void(void*)>;
  virtual void SetRetireHook(RetireHook hook) { (void)hook; }

  /// Free a block previously handed to the RetireHook (called by the
  /// RetireList deleter once no reader can still see it). Must release
  /// through the same allocator the store used for the block.
  virtual void FreeRetired(void* p) { (void)p; }

  /// Scheme name for reporting ("Aria-H", "ShieldStore", ...).
  virtual const char* name() const = 0;

  /// Number of live KV pairs.
  virtual uint64_t size() const = 0;

  /// Every store reports at least the live_entries gauge; concrete indexes
  /// override to add their own stats and must keep emitting live_entries
  /// (the record-counter conservation law reads it, DESIGN.md §9).
  void CollectMetrics(obs::MetricSink* sink) const override {
    sink->Gauge("live_entries", size());
  }
};

/// Stores with an ordered index additionally support range scans — the
/// capability that motivates tree indexes in the paper (§III).
class OrderedKVStore : public KVStore {
 public:
  /// Collect up to `limit` pairs with key >= `start` in key order.
  virtual Status RangeScan(
      Slice start, size_t limit,
      std::vector<std::pair<std::string, std::string>>* out) = 0;
};

}  // namespace aria
