// Public key-value store interface implemented by Aria-H, Aria-T and all
// baselines, so benchmarks and examples drive every scheme uniformly.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace aria {

class KVStore : public obs::Observable {
 public:
  ~KVStore() override = default;

  /// Insert or overwrite a KV pair.
  virtual Status Put(Slice key, Slice value) = 0;

  /// Look up `key`; fills `value` on success. Returns NotFound if absent and
  /// IntegrityViolation if tampering is detected on the lookup path.
  virtual Status Get(Slice key, std::string* value) = 0;

  /// Remove a KV pair. NotFound if absent.
  virtual Status Delete(Slice key) = 0;

  /// Scheme name for reporting ("Aria-H", "ShieldStore", ...).
  virtual const char* name() const = 0;

  /// Number of live KV pairs.
  virtual uint64_t size() const = 0;

  /// Every store reports at least the live_entries gauge; concrete indexes
  /// override to add their own stats and must keep emitting live_entries
  /// (the record-counter conservation law reads it, DESIGN.md §9).
  void CollectMetrics(obs::MetricSink* sink) const override {
    sink->Gauge("live_entries", size());
  }
};

/// Stores with an ordered index additionally support range scans — the
/// capability that motivates tree indexes in the paper (§III).
class OrderedKVStore : public KVStore {
 public:
  /// Collect up to `limit` pairs with key >= `start` in key order.
  virtual Status RangeScan(
      Slice start, size_t limit,
      std::vector<std::pair<std::string, std::string>>* out) = 0;
};

}  // namespace aria
