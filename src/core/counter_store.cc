#include "core/counter_store.h"

// Interface-only header; this TU anchors the module in the build.
namespace aria {
static_assert(CounterStore::kCounterSize == 16);
}  // namespace aria
