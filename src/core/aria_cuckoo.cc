#include "core/aria_cuckoo.h"

#include <cstring>

#include "common/hash.h"

namespace aria {

AriaCuckoo::AriaCuckoo(sgx::EnclaveRuntime* enclave,
                       UntrustedAllocator* allocator, const RecordCodec* codec,
                       CounterStore* counters, AriaCuckooConfig config)
    : enclave_(enclave),
      allocator_(allocator),
      codec_(codec),
      counters_(counters),
      config_(config) {}

AriaCuckoo::~AriaCuckoo() {
  if (table_ != nullptr) {
    for (uint64_t b = 0; b < config_.num_buckets; ++b) {
      for (auto& slot : table_[b].slots) {
        if (slot.rec != nullptr) allocator_->Free(slot.rec).ok();
      }
    }
    allocator_->Free(table_).ok();
  }
  if (bucket_counts_ != nullptr) enclave_->TrustedFree(bucket_counts_);
}

Status AriaCuckoo::Init() {
  auto mem = allocator_->Alloc(config_.num_buckets * sizeof(Bucket));
  if (!mem.ok()) return mem.status();
  table_ = static_cast<Bucket*>(mem.value());
  std::memset(table_, 0, config_.num_buckets * sizeof(Bucket));
  bucket_counts_ =
      static_cast<uint8_t*>(enclave_->TrustedAlloc(config_.num_buckets));
  if (bucket_counts_ == nullptr) {
    return Status::CapacityExceeded("cuckoo bucket counts");
  }
  return Status::OK();
}

uint64_t AriaCuckoo::trusted_index_bytes() const {
  return config_.num_buckets;  // one occupancy byte per bucket
}

uint64_t AriaCuckoo::Hash1(Slice key) const {
  return Hash64(key, 0xAAAA) % config_.num_buckets;
}

uint64_t AriaCuckoo::Hash2(Slice key) const {
  uint64_t h = Hash64(key, 0xBBBB) % config_.num_buckets;
  if (h == Hash1(key)) h = (h + 1) % config_.num_buckets;
  return h;
}

uint64_t AriaCuckoo::AltBucket(Slice key, uint64_t bucket) const {
  uint64_t h1 = Hash1(key);
  return bucket == h1 ? Hash2(key) : h1;
}

Status AriaCuckoo::ResealRecord(uint8_t* rec, uint64_t old_ad,
                                uint64_t new_ad) {
  RecordHeader h = RecordCodec::Peek(rec);
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
  ARIA_RETURN_IF_ERROR(codec_->Verify(rec, ctr, old_ad));
  codec_->Reseal(rec, ctr, new_ad);
  stats_.reseals++;
  return Status::OK();
}

Status AriaCuckoo::FindInBucket(uint64_t b, Slice key, int* slot_idx,
                                std::string* value_out) {
  *slot_idx = -1;
  uint32_t hint = KeyHint(key);
  for (int i = 0; i < kSlotsPerBucket; ++i) {
    Slot& slot = table_[b].slots[i];
    stats_.probes++;
    if (slot.rec == nullptr || slot.hint != hint) continue;
    RecordHeader h = RecordCodec::Peek(slot.rec);
    uint8_t ctr[CounterStore::kCounterSize];
    ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
    ARIA_RETURN_IF_ERROR(codec_->Verify(
        slot.rec, ctr, reinterpret_cast<uint64_t>(&slot.rec)));
    codec_->OpenKey(slot.rec, ctr, &key_scratch_);
    if (Slice(key_scratch_) == key) {
      if (value_out != nullptr) codec_->OpenValue(slot.rec, ctr, value_out);
      *slot_idx = i;
      return Status::OK();
    }
  }
  return Status::OK();
}

Status AriaCuckoo::CheckOccupancy(uint64_t b) {
  int live = 0;
  for (const auto& slot : table_[b].slots) live += slot.rec != nullptr;
  enclave_->TouchRead(&bucket_counts_[b], 1);
  if (live != bucket_counts_[b]) {
    return Status::IntegrityViolation(
        "cuckoo bucket occupancy mismatch (deletion attack)");
  }
  return Status::OK();
}

Status AriaCuckoo::Get(Slice key, std::string* value) {
  uint64_t b1 = Hash1(key);
  int idx;
  ARIA_RETURN_IF_ERROR(FindInBucket(b1, key, &idx, value));
  if (idx >= 0) return Status::OK();
  uint64_t b2 = Hash2(key);
  ARIA_RETURN_IF_ERROR(FindInBucket(b2, key, &idx, value));
  if (idx >= 0) return Status::OK();
  ARIA_RETURN_IF_ERROR(CheckOccupancy(b1));
  ARIA_RETURN_IF_ERROR(CheckOccupancy(b2));
  return Status::NotFound();
}

Status AriaCuckoo::Put(Slice key, Slice value) {
  if (key.size() > RecordCodec::kMaxKeyLen ||
      value.size() > RecordCodec::kMaxValueLen) {
    return Status::InvalidArgument("key or value too large");
  }
  uint64_t b1 = Hash1(key);
  uint64_t b2 = Hash2(key);

  // Overwrite path: find the existing record in either candidate bucket.
  for (uint64_t b : {b1, b2}) {
    int idx;
    ARIA_RETURN_IF_ERROR(FindInBucket(b, key, &idx, nullptr));
    if (idx < 0) continue;
    Slot& slot = table_[b].slots[idx];
    RecordHeader h = RecordCodec::Peek(slot.rec);
    uint8_t ctr[CounterStore::kCounterSize];
    ARIA_RETURN_IF_ERROR(counters_->BumpCounter(h.red_ptr, ctr));
    uint64_t ad = reinterpret_cast<uint64_t>(&slot.rec);
    size_t sealed = RecordCodec::SealedSize(key.size(), value.size());
    size_t old_sealed = RecordCodec::SealedSize(h.k_len, h.v_len);
    if (sealed <= old_sealed) {
      codec_->Seal(h.red_ptr, ctr, key, value, ad, slot.rec);
      return Status::OK();
    }
    auto mem = allocator_->Alloc(sealed);
    if (!mem.ok()) return mem.status();
    uint8_t* nrec = static_cast<uint8_t*>(mem.value());
    codec_->Seal(h.red_ptr, ctr, key, value, ad, nrec);
    uint8_t* old = slot.rec;
    slot.rec = nrec;
    return allocator_->Free(old);
  }

  // Fresh insert: seal the record, then find it a home (growing the table
  // if the kick walk cannot).
  auto red = counters_->FetchCounter();
  if (!red.ok()) return red.status();
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->BumpCounter(red.value(), ctr));
  auto mem =
      allocator_->Alloc(RecordCodec::SealedSize(key.size(), value.size()));
  if (!mem.ok()) {
    // Roll the fetched counter back so record-counter conservation holds
    // even when the allocation fails (DESIGN.md §9).
    counters_->FreeCounter(red.value()).ok();
    return mem.status();
  }
  uint8_t* rec = static_cast<uint8_t*>(mem.value());
  // Seal with a provisional AdField; it is fixed up when the record lands.
  codec_->Seal(red.value(), ctr, key, value, /*ad_field=*/0, rec);

  Status st = TryPlace(rec, KeyHint(key), key.ToString());
  for (int grow = 0; st.IsCapacityExceeded() && config_.grow_on_full &&
                     grow < 8;
       ++grow) {
    st = Grow();
    if (st.ok()) st = TryPlace(rec, KeyHint(key), key.ToString());
  }
  if (!st.ok()) {
    stats_.failed_inserts++;
    counters_->FreeCounter(red.value()).ok();
    allocator_->Free(rec).ok();
  }
  return st;
}

Status AriaCuckoo::TryPlace(uint8_t* pending, uint32_t pending_hint,
                            const std::string& original_key) {
  uint64_t b = Hash1(Slice(original_key));
  std::string pending_key = original_key;
  // Kick trail for clean unwinding if the walk fails: each entry is the
  // cell written at that step plus the hint of the record that was pending
  // BEFORE the step (needed to restore slot hints while walking back).
  struct Step {
    Slot* cell;
    uint32_t pending_hint_before;
  };
  std::vector<Step> trail;
  for (int kick = 0; kick <= kMaxKicks; ++kick) {
    // Empty slot in the current bucket?
    for (auto& slot : table_[b].slots) {
      if (slot.rec != nullptr) continue;
      slot.rec = pending;
      slot.hint = pending_hint;
      ARIA_RETURN_IF_ERROR(ResealRecord(
          pending, 0, reinterpret_cast<uint64_t>(&slot.rec)));
      enclave_->TouchWrite(&bucket_counts_[b], 1);
      bucket_counts_[b]++;
      size_++;
      return Status::OK();
    }
    // Also try the pending key's alternate bucket before kicking.
    uint64_t alt = AltBucket(Slice(pending_key), b);
    bool placed = false;
    for (auto& slot : table_[alt].slots) {
      if (slot.rec != nullptr) continue;
      slot.rec = pending;
      slot.hint = pending_hint;
      ARIA_RETURN_IF_ERROR(ResealRecord(
          pending, 0, reinterpret_cast<uint64_t>(&slot.rec)));
      enclave_->TouchWrite(&bucket_counts_[alt], 1);
      bucket_counts_[alt]++;
      size_++;
      placed = true;
      break;
    }
    if (placed) return Status::OK();

    // Kick a random victim from `b`: the pending record takes its slot, the
    // victim becomes pending and moves toward its alternate bucket.
    int vi = static_cast<int>(kick_rng_.Uniform(kSlotsPerBucket));
    Slot& vslot = table_[b].slots[vi];
    trail.push_back(Step{&vslot, pending_hint});
    uint8_t* victim = vslot.rec;
    uint32_t victim_hint = vslot.hint;
    uint64_t cell_ad = reinterpret_cast<uint64_t>(&vslot.rec);
    // Decrypt the victim's key (verifying it in its current slot) to learn
    // where it can go.
    RecordHeader vh = RecordCodec::Peek(victim);
    uint8_t vctr[CounterStore::kCounterSize];
    ARIA_RETURN_IF_ERROR(counters_->ReadCounter(vh.red_ptr, vctr));
    ARIA_RETURN_IF_ERROR(codec_->Verify(victim, vctr, cell_ad));
    std::string victim_key;
    codec_->OpenKey(victim, vctr, &victim_key);

    vslot.rec = pending;
    vslot.hint = pending_hint;
    ARIA_RETURN_IF_ERROR(ResealRecord(pending, 0, cell_ad));
    stats_.kicks++;

    // The victim is now homeless: mark it provisional (ad 0) and continue.
    codec_->Reseal(victim, vctr, 0);
    stats_.reseals++;
    pending = victim;
    pending_hint = victim_hint;
    pending_key = victim_key;
    b = AltBucket(Slice(pending_key), b);
  }

  // Kick budget exhausted: walk the trail backwards, putting every
  // displaced record back where it was, until the original new record is
  // back in hand — then fail without having modified the table.
  while (!trail.empty()) {
    Step step = trail.back();
    trail.pop_back();
    uint64_t cell_ad = reinterpret_cast<uint64_t>(&step.cell->rec);
    uint8_t* in_cell = step.cell->rec;          // placed at this step
    uint32_t in_cell_hint = step.cell->hint;
    ARIA_RETURN_IF_ERROR(ResealRecord(in_cell, cell_ad, 0));
    ARIA_RETURN_IF_ERROR(ResealRecord(pending, 0, cell_ad));
    step.cell->rec = pending;                   // the displaced one returns
    step.cell->hint = pending_hint;
    pending = in_cell;
    pending_hint = step.pending_hint_before;
    (void)in_cell_hint;
  }
  return Status::CapacityExceeded(
      "cuckoo insert exceeded kick budget (table too full)");
}

Status AriaCuckoo::Grow() {
  stats_.grows++;
  Bucket* old_table = table_;
  uint8_t* old_counts = bucket_counts_;
  uint64_t old_buckets = config_.num_buckets;

  config_.num_buckets = old_buckets * 2;
  auto mem = allocator_->Alloc(config_.num_buckets * sizeof(Bucket));
  if (!mem.ok()) {
    config_.num_buckets = old_buckets;
    return mem.status();
  }
  table_ = static_cast<Bucket*>(mem.value());
  std::memset(table_, 0, config_.num_buckets * sizeof(Bucket));
  bucket_counts_ =
      static_cast<uint8_t*>(enclave_->TrustedAlloc(config_.num_buckets));
  if (bucket_counts_ == nullptr) {
    allocator_->Free(table_).ok();
    table_ = old_table;
    bucket_counts_ = old_counts;
    config_.num_buckets = old_buckets;
    return Status::CapacityExceeded("cuckoo grow: bucket counts");
  }

  // Reinsert every record: verify in its old cell, unbind, place anew.
  size_ = 0;
  for (uint64_t b = 0; b < old_buckets; ++b) {
    for (auto& slot : old_table[b].slots) {
      if (slot.rec == nullptr) continue;
      RecordHeader h = RecordCodec::Peek(slot.rec);
      uint8_t ctr[CounterStore::kCounterSize];
      ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
      ARIA_RETURN_IF_ERROR(codec_->Verify(
          slot.rec, ctr, reinterpret_cast<uint64_t>(&slot.rec)));
      std::string k;
      codec_->OpenKey(slot.rec, ctr, &k);
      codec_->Reseal(slot.rec, ctr, 0);
      stats_.reseals++;
      Status st = TryPlace(slot.rec, slot.hint, k);
      if (!st.ok()) return st;  // ~impossible at half load
    }
  }
  allocator_->Free(old_table).ok();
  enclave_->TrustedFree(old_counts);
  return Status::OK();
}

Status AriaCuckoo::Delete(Slice key) {
  for (uint64_t b : {Hash1(key), Hash2(key)}) {
    int idx;
    ARIA_RETURN_IF_ERROR(FindInBucket(b, key, &idx, nullptr));
    if (idx < 0) continue;
    Slot& slot = table_[b].slots[idx];
    RecordHeader h = RecordCodec::Peek(slot.rec);
    ARIA_RETURN_IF_ERROR(counters_->FreeCounter(h.red_ptr));
    ARIA_RETURN_IF_ERROR(allocator_->Free(slot.rec));
    slot.rec = nullptr;
    slot.hint = 0;
    enclave_->TouchWrite(&bucket_counts_[b], 1);
    bucket_counts_[b]--;
    size_--;
    return Status::OK();
  }
  ARIA_RETURN_IF_ERROR(CheckOccupancy(Hash1(key)));
  ARIA_RETURN_IF_ERROR(CheckOccupancy(Hash2(key)));
  return Status::NotFound();
}

uint8_t** AriaCuckoo::DebugSlotCell(Slice key) {
  uint32_t hint = KeyHint(key);
  for (uint64_t b : {Hash1(key), Hash2(key)}) {
    for (auto& slot : table_[b].slots) {
      if (slot.rec != nullptr && slot.hint == hint) return &slot.rec;
    }
  }
  return nullptr;
}

void AriaCuckoo::CollectMetrics(obs::MetricSink* sink) const {
  sink->Counter("kicks", stats_.kicks);
  sink->Counter("probes", stats_.probes);
  sink->Counter("reseals", stats_.reseals);
  sink->Counter("failed_inserts", stats_.failed_inserts);
  sink->Counter("grows", stats_.grows);
  sink->Gauge("buckets", config_.num_buckets);
  sink->Gauge("trusted_index_bytes", trusted_index_bytes());
  sink->Gauge("live_entries", size_);
}

}  // namespace aria
