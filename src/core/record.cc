#include "core/record.h"

#include <cstdint>
#include <cstring>

#include "alloc/heap_allocator.h"
#include "crypto/ctr.h"

namespace aria {

RecordHeader RecordCodec::Peek(const uint8_t* rec) {
  RecordHeader h;
  std::memcpy(&h.red_ptr, rec, 8);
  std::memcpy(&h.k_len, rec + 8, 2);
  std::memcpy(&h.v_len, rec + 10, 2);
  return h;
}

void RecordCodec::DeriveCtrBlock(uint64_t red_ptr, const uint8_t counter[16],
                                 uint8_t out[16]) const {
  std::memcpy(out, counter, 16);
  // Bind the keystream to the record identity so random initial counter
  // collisions across slots cannot cause keystream reuse.
  for (int i = 0; i < 8; ++i) {
    out[i] ^= static_cast<uint8_t>(red_ptr >> (8 * i));
  }
}

void RecordCodec::ComputeMac(const uint8_t* rec, const uint8_t counter[16],
                             uint64_t ad_field, uint8_t out[16]) const {
  RecordHeader h = Peek(rec);
  crypto::Cmac128::Stream mac(*cmac_);
  mac.Update(rec, kHeaderSize);  // RedPtr, k_len, v_len
  mac.Update(counter, kCounterSize);
  mac.Update(rec + kHeaderSize, static_cast<size_t>(h.k_len) + h.v_len);
  mac.Update(&ad_field, sizeof(ad_field));
  mac.Final(out);
}

void RecordCodec::Seal(uint64_t red_ptr, const uint8_t counter[16], Slice key,
                       Slice value, uint64_t ad_field, uint8_t* out) const {
  uint16_t k_len = static_cast<uint16_t>(key.size());
  uint16_t v_len = static_cast<uint16_t>(value.size());
  std::memcpy(out, &red_ptr, 8);
  std::memcpy(out + 8, &k_len, 2);
  std::memcpy(out + 10, &v_len, 2);

  // Encrypt key||value in one CTR pass.
  uint8_t ctr_block[16];
  DeriveCtrBlock(red_ptr, counter, ctr_block);
  uint8_t* ct = out + kHeaderSize;
  // An empty key/value has a null data() — skip the memcpy (null src is UB).
  if (k_len != 0) std::memcpy(ct, key.data(), k_len);
  if (v_len != 0) std::memcpy(ct + k_len, value.data(), v_len);
  crypto::AesCtrCrypt(*aes_, ctr_block, ct, ct, static_cast<size_t>(k_len) + v_len);

  ComputeMac(out, counter, ad_field, out + kHeaderSize + k_len + v_len);
}

Status RecordCodec::Verify(const uint8_t* rec, const uint8_t counter[16],
                           uint64_t ad_field) const {
  size_t bound = allocator_ != nullptr ? allocator_->UsableBytes(rec)
                                       : SIZE_MAX;
  return Verify(rec, counter, ad_field, bound);
}

Status RecordCodec::Verify(const uint8_t* rec, const uint8_t counter[16],
                           uint64_t ad_field, size_t bound) const {
  RecordHeader h = Peek(rec);
  // k_len/v_len are untrusted until the MAC is checked, but the MAC itself
  // sits at an offset derived from them: reject any claimed extent that
  // leaves the record's allocation before reading a single byte past the
  // header (a tampered length would otherwise steer the ciphertext and
  // stored-MAC reads out of bounds).
  if (SealedSize(h.k_len, h.v_len) > bound) {
    return Status::IntegrityViolation("record header lengths exceed allocation");
  }
  uint8_t mac[16];
  ComputeMac(rec, counter, ad_field, mac);
  const uint8_t* stored = rec + kHeaderSize + h.k_len + h.v_len;
  if (!crypto::MacEqual(mac, stored)) {
    return Status::IntegrityViolation("record MAC mismatch");
  }
  return Status::OK();
}

void RecordCodec::Open(const uint8_t* rec, const uint8_t counter[16],
                       std::string* key, std::string* value) const {
  if (key != nullptr) OpenKey(rec, counter, key);
  if (value != nullptr) OpenValue(rec, counter, value);
}

void RecordCodec::OpenKey(const uint8_t* rec, const uint8_t counter[16],
                          std::string* key) const {
  RecordHeader h = Peek(rec);
  uint8_t ctr_block[16];
  DeriveCtrBlock(h.red_ptr, counter, ctr_block);
  key->resize(h.k_len);
  crypto::AesCtrCrypt(*aes_, ctr_block, rec + kHeaderSize,
                      reinterpret_cast<uint8_t*>(key->data()), h.k_len);
  enclave_->TouchWrite(key->data(), key->size());
}

void RecordCodec::OpenValue(const uint8_t* rec, const uint8_t counter[16],
                            std::string* value) const {
  RecordHeader h = Peek(rec);
  uint8_t ctr_block[16];
  DeriveCtrBlock(h.red_ptr, counter, ctr_block);
  value->resize(h.v_len);
  crypto::AesCtrCryptAt(*aes_, ctr_block, h.k_len,
                        rec + kHeaderSize + h.k_len,
                        reinterpret_cast<uint8_t*>(value->data()), h.v_len);
  enclave_->TouchWrite(value->data(), value->size());
}

void RecordCodec::OpenKeyLockFree(const uint8_t* rec,
                                  const uint8_t counter[16],
                                  std::string* key) const {
  RecordHeader h = Peek(rec);
  uint8_t ctr_block[16];
  DeriveCtrBlock(h.red_ptr, counter, ctr_block);
  key->resize(h.k_len);
  crypto::AesCtrCrypt(*aes_, ctr_block, rec + kHeaderSize,
                      reinterpret_cast<uint8_t*>(key->data()), h.k_len);
  enclave_->ChargeSharedWrite(key->data(), key->size());
}

void RecordCodec::OpenValueLockFree(const uint8_t* rec,
                                    const uint8_t counter[16],
                                    std::string* value) const {
  RecordHeader h = Peek(rec);
  uint8_t ctr_block[16];
  DeriveCtrBlock(h.red_ptr, counter, ctr_block);
  value->resize(h.v_len);
  crypto::AesCtrCryptAt(*aes_, ctr_block, h.k_len,
                        rec + kHeaderSize + h.k_len,
                        reinterpret_cast<uint8_t*>(value->data()), h.v_len);
  enclave_->ChargeSharedWrite(value->data(), value->size());
}

void RecordCodec::Reseal(uint8_t* rec, const uint8_t counter[16],
                         uint64_t ad_field) const {
  RecordHeader h = Peek(rec);
  ComputeMac(rec, counter, ad_field, rec + kHeaderSize + h.k_len + h.v_len);
}

}  // namespace aria
