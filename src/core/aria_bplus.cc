#include "core/aria_bplus.h"

#include <cstring>

namespace aria {

namespace {
constexpr int kMaxKeys = 15;
constexpr int kSplitPoint = kMaxKeys / 2;  // 7
}  // namespace

struct AriaBPlusTree::Node {
  uint16_t num_keys;
  uint8_t is_leaf;
  uint8_t pad[5];
  uint8_t* records[kMaxKeys];
  Node* children[kMaxKeys + 1];  // inner nodes only
  Node* next_leaf;               // leaves only (untrusted chain)
};

AriaBPlusTree::AriaBPlusTree(sgx::EnclaveRuntime* enclave,
                             UntrustedAllocator* allocator,
                             const RecordCodec* codec, CounterStore* counters)
    : enclave_(enclave),
      allocator_(allocator),
      codec_(codec),
      counters_(counters) {}

void AriaBPlusTree::FreeSubtree(Node* node) {
  if (node == nullptr) return;
  for (int i = 0; i < node->num_keys; ++i) {
    if (node->records[i] != nullptr) {
      uint8_t* rec = node->records[i];
      RecordHeader h = RecordCodec::Peek(rec);
      counters_->FreeCounter(h.red_ptr).ok();
      allocator_->Free(rec).ok();
    }
  }
  if (!node->is_leaf) {
    for (int i = 0; i <= node->num_keys; ++i) FreeSubtree(node->children[i]);
  }
  allocator_->Free(node).ok();
}

AriaBPlusTree::~AriaBPlusTree() { FreeSubtree(root_); }

Result<AriaBPlusTree::Node*> AriaBPlusTree::NewNode(bool is_leaf) {
  auto mem = allocator_->Alloc(sizeof(Node));
  if (!mem.ok()) return mem.status();
  Node* n = static_cast<Node*>(mem.value());
  std::memset(n, 0, sizeof(Node));
  n->is_leaf = is_leaf ? 1 : 0;
  if (is_leaf) {
    stats_.leaf_nodes++;
  } else {
    stats_.inner_nodes++;
  }
  return n;
}

Status AriaBPlusTree::CompareAt(Node* node, int i, Slice key, int* cmp,
                                std::string* value_out) {
  uint8_t* rec = node->records[i];
  RecordHeader h = RecordCodec::Peek(rec);
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
  ARIA_RETURN_IF_ERROR(codec_->Verify(
      rec, ctr, reinterpret_cast<uint64_t>(&node->records[i])));
  stats_.descent_decrypts++;
  codec_->OpenKey(rec, ctr, &key_scratch_);
  *cmp = key.compare(Slice(key_scratch_));
  if (*cmp == 0 && value_out != nullptr) {
    codec_->OpenValue(rec, ctr, value_out);
  }
  return Status::OK();
}

Status AriaBPlusTree::LowerBound(Node* node, Slice key, int* pos, bool* eq,
                                 std::string* value_out) {
  int lo = 0, hi = node->num_keys;
  int cmp = -1;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    ARIA_RETURN_IF_ERROR(CompareAt(node, mid, key, &cmp, nullptr));
    if (cmp <= 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  *pos = lo;
  *eq = false;
  if (lo < node->num_keys) {
    ARIA_RETURN_IF_ERROR(CompareAt(node, lo, key, &cmp, value_out));
    *eq = cmp == 0;
  }
  return Status::OK();
}

Status AriaBPlusTree::MoveRecord(Node* from, int from_slot, Node* to,
                                 int to_slot) {
  uint8_t* rec = from->records[from_slot];
  RecordHeader h = RecordCodec::Peek(rec);
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
  ARIA_RETURN_IF_ERROR(codec_->Verify(
      rec, ctr, reinterpret_cast<uint64_t>(&from->records[from_slot])));
  to->records[to_slot] = rec;
  codec_->Reseal(rec, ctr, reinterpret_cast<uint64_t>(&to->records[to_slot]));
  return Status::OK();
}

Status AriaBPlusTree::SealKeyValue(Node* node, int slot, Slice key,
                                   Slice value) {
  auto red = counters_->FetchCounter();
  if (!red.ok()) return red.status();
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->BumpCounter(red.value(), ctr));
  auto mem =
      allocator_->Alloc(RecordCodec::SealedSize(key.size(), value.size()));
  if (!mem.ok()) {
    // Roll the fetched counter back so record-counter conservation holds
    // even when the allocation fails (DESIGN.md §9).
    counters_->FreeCounter(red.value()).ok();
    return mem.status();
  }
  uint8_t* rec = static_cast<uint8_t*>(mem.value());
  node->records[slot] = rec;
  codec_->Seal(red.value(), ctr, key, value,
               reinterpret_cast<uint64_t>(&node->records[slot]), rec);
  return Status::OK();
}

Status AriaBPlusTree::OverwriteValue(Node* node, int slot, Slice key,
                                     Slice value) {
  uint8_t* rec = node->records[slot];
  RecordHeader h = RecordCodec::Peek(rec);
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->BumpCounter(h.red_ptr, ctr));
  size_t sealed = RecordCodec::SealedSize(key.size(), value.size());
  size_t old_sealed = RecordCodec::SealedSize(h.k_len, h.v_len);
  uint64_t ad = reinterpret_cast<uint64_t>(&node->records[slot]);
  if (sealed <= old_sealed) {
    codec_->Seal(h.red_ptr, ctr, key, value, ad, rec);
    return Status::OK();
  }
  auto mem = allocator_->Alloc(sealed);
  if (!mem.ok()) return mem.status();
  uint8_t* nrec = static_cast<uint8_t*>(mem.value());
  codec_->Seal(h.red_ptr, ctr, key, value, ad, nrec);
  node->records[slot] = nrec;
  return allocator_->Free(rec);
}

Status AriaBPlusTree::FreeRecordAt(Node* node, int slot) {
  uint8_t* rec = node->records[slot];
  RecordHeader h = RecordCodec::Peek(rec);
  ARIA_RETURN_IF_ERROR(counters_->FreeCounter(h.red_ptr));
  ARIA_RETURN_IF_ERROR(allocator_->Free(rec));
  for (int j = slot; j + 1 < node->num_keys; ++j) {
    ARIA_RETURN_IF_ERROR(MoveRecord(node, j + 1, node, j));
  }
  node->num_keys--;
  node->records[node->num_keys] = nullptr;
  return Status::OK();
}

Status AriaBPlusTree::SplitChild(Node* parent, int idx) {
  Node* child = parent->children[idx];
  auto right_res = NewNode(child->is_leaf != 0);
  if (!right_res.ok()) return right_res.status();
  Node* right = right_res.value();
  stats_.splits++;

  // Make room for one separator + child in the parent.
  for (int j = parent->num_keys - 1; j >= idx; --j) {
    ARIA_RETURN_IF_ERROR(MoveRecord(parent, j, parent, j + 1));
  }
  for (int j = parent->num_keys; j > idx; --j) {
    parent->children[j + 1] = parent->children[j];
  }

  if (child->is_leaf) {
    // Leaf split: upper half moves right; the separator is a fresh sealed
    // COPY of the right node's first key (key-only record).
    int move_from = kSplitPoint;  // keep 7 left, move 8 right
    for (int j = move_from; j < kMaxKeys; ++j) {
      ARIA_RETURN_IF_ERROR(MoveRecord(child, j, right, j - move_from));
    }
    right->num_keys = static_cast<uint16_t>(kMaxKeys - move_from);
    child->num_keys = static_cast<uint16_t>(move_from);
    for (int j = child->num_keys; j < kMaxKeys; ++j) child->records[j] = nullptr;
    right->next_leaf = child->next_leaf;
    child->next_leaf = right;

    // Decrypt the right node's first key and seal it as the separator.
    uint8_t* rec = right->records[0];
    RecordHeader h = RecordCodec::Peek(rec);
    uint8_t ctr[CounterStore::kCounterSize];
    ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
    ARIA_RETURN_IF_ERROR(codec_->Verify(
        rec, ctr, reinterpret_cast<uint64_t>(&right->records[0])));
    codec_->OpenKey(rec, ctr, &key_scratch_);
    ARIA_RETURN_IF_ERROR(SealKeyValue(parent, idx, key_scratch_, Slice()));
  } else {
    // Inner split: median separator moves up, upper separators move right.
    for (int j = kSplitPoint + 1; j < kMaxKeys; ++j) {
      ARIA_RETURN_IF_ERROR(MoveRecord(child, j, right, j - kSplitPoint - 1));
    }
    for (int j = kSplitPoint + 1; j <= kMaxKeys; ++j) {
      right->children[j - kSplitPoint - 1] = child->children[j];
    }
    right->num_keys = static_cast<uint16_t>(kMaxKeys - kSplitPoint - 1);
    ARIA_RETURN_IF_ERROR(MoveRecord(child, kSplitPoint, parent, idx));
    child->num_keys = static_cast<uint16_t>(kSplitPoint);
    for (int j = child->num_keys; j < kMaxKeys; ++j) child->records[j] = nullptr;
  }
  parent->children[idx + 1] = right;
  parent->num_keys++;
  return Status::OK();
}

Status AriaBPlusTree::Get(Slice key, std::string* value) {
  Node* node = root_;
  int depth = 0;
  while (node != nullptr) {
    if (++depth > height_) {
      return Status::IntegrityViolation("B+ descent exceeds trusted height");
    }
    int pos;
    bool eq;
    if (node->is_leaf) {
      ARIA_RETURN_IF_ERROR(LowerBound(node, key, &pos, &eq, value));
      return eq ? Status::OK() : Status::NotFound();
    }
    ARIA_RETURN_IF_ERROR(LowerBound(node, key, &pos, &eq, nullptr));
    node = node->children[eq ? pos + 1 : pos];
  }
  return Status::NotFound();
}

Status AriaBPlusTree::Put(Slice key, Slice value) {
  if (key.size() > RecordCodec::kMaxKeyLen ||
      value.size() > RecordCodec::kMaxValueLen) {
    return Status::InvalidArgument("key or value too large");
  }
  if (root_ == nullptr) {
    auto r = NewNode(true);
    if (!r.ok()) return r.status();
    root_ = r.value();
    height_ = 1;
  }
  if (root_->num_keys == kMaxKeys) {
    auto r = NewNode(false);
    if (!r.ok()) return r.status();
    Node* nr = r.value();
    nr->children[0] = root_;
    root_ = nr;
    height_++;
    ARIA_RETURN_IF_ERROR(SplitChild(nr, 0));
  }

  Node* node = root_;
  int depth = 1;
  for (;;) {
    int pos;
    bool eq;
    if (node->is_leaf) {
      ARIA_RETURN_IF_ERROR(LowerBound(node, key, &pos, &eq, nullptr));
      if (eq) return OverwriteValue(node, pos, key, value);
      for (int j = node->num_keys - 1; j >= pos; --j) {
        ARIA_RETURN_IF_ERROR(MoveRecord(node, j, node, j + 1));
      }
      ARIA_RETURN_IF_ERROR(SealKeyValue(node, pos, key, value));
      node->num_keys++;
      total_keys_++;
      return Status::OK();
    }
    ARIA_RETURN_IF_ERROR(LowerBound(node, key, &pos, &eq, nullptr));
    int child_idx = eq ? pos + 1 : pos;
    Node* child = node->children[child_idx];
    if (child->num_keys == kMaxKeys) {
      ARIA_RETURN_IF_ERROR(SplitChild(node, child_idx));
      int cmp;
      ARIA_RETURN_IF_ERROR(CompareAt(node, child_idx, key, &cmp, nullptr));
      if (cmp >= 0) ++child_idx;  // separator <= key: go right
      child = node->children[child_idx];
    }
    node = child;
    if (++depth > height_) {
      return Status::IntegrityViolation("B+ descent exceeds trusted height");
    }
  }
}

Status AriaBPlusTree::Delete(Slice key) {
  Node* node = root_;
  int depth = 0;
  while (node != nullptr) {
    if (++depth > height_) {
      return Status::IntegrityViolation("B+ descent exceeds trusted height");
    }
    int pos;
    bool eq;
    if (node->is_leaf) {
      ARIA_RETURN_IF_ERROR(LowerBound(node, key, &pos, &eq, nullptr));
      if (!eq) return Status::NotFound();
      ARIA_RETURN_IF_ERROR(FreeRecordAt(node, pos));
      total_keys_--;
      return Status::OK();
    }
    ARIA_RETURN_IF_ERROR(LowerBound(node, key, &pos, &eq, nullptr));
    node = node->children[eq ? pos + 1 : pos];
  }
  return Status::NotFound();
}

Status AriaBPlusTree::RangeScan(
    Slice start, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  Node* node = root_;
  int depth = 0;
  while (node != nullptr && !node->is_leaf) {
    if (++depth > height_) {
      return Status::IntegrityViolation("B+ descent exceeds trusted height");
    }
    int pos;
    bool eq;
    ARIA_RETURN_IF_ERROR(LowerBound(node, start, &pos, &eq, nullptr));
    node = node->children[eq ? pos + 1 : pos];
  }
  if (node == nullptr) return Status::OK();

  // Walk the leaf chain. The chain pointers live in untrusted memory, so a
  // forged cycle must not hang us: bound the walk by the trusted key count.
  uint64_t visited_leaves = 0;
  uint64_t max_leaves = stats_.leaf_nodes + 1;
  int pos;
  bool eq;
  ARIA_RETURN_IF_ERROR(LowerBound(node, start, &pos, &eq, nullptr));
  while (node != nullptr && out->size() < limit) {
    if (++visited_leaves > max_leaves) {
      return Status::IntegrityViolation("B+ leaf chain longer than the tree");
    }
    for (int i = pos; i < node->num_keys && out->size() < limit; ++i) {
      uint8_t* rec = node->records[i];
      RecordHeader h = RecordCodec::Peek(rec);
      uint8_t ctr[CounterStore::kCounterSize];
      ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
      ARIA_RETURN_IF_ERROR(codec_->Verify(
          rec, ctr, reinterpret_cast<uint64_t>(&node->records[i])));
      stats_.scan_decrypts++;
      std::string k, v;
      codec_->Open(rec, ctr, &k, &v);
      if (Slice(k).compare(start) >= 0) {
        out->emplace_back(std::move(k), std::move(v));
      }
    }
    node = node->next_leaf;
    pos = 0;
  }
  return Status::OK();
}

uint8_t** AriaBPlusTree::DebugRecordSlot(Slice key) {
  Node* node = root_;
  while (node != nullptr && !node->is_leaf) {
    int pos;
    bool eq;
    if (!LowerBound(node, key, &pos, &eq, nullptr).ok()) return nullptr;
    node = node->children[eq ? pos + 1 : pos];
  }
  if (node == nullptr) return nullptr;
  int pos;
  bool eq;
  if (!LowerBound(node, key, &pos, &eq, nullptr).ok()) return nullptr;
  return eq ? &node->records[pos] : nullptr;
}

Status AriaBPlusTree::VerifyFullIntegrity() {
  if (root_ == nullptr) {
    return total_keys_ == 0
               ? Status::OK()
               : Status::IntegrityViolation("empty tree but nonzero count");
  }
  // Descend to the leftmost leaf, verifying inner separators on the way.
  Node* node = root_;
  int depth = 1;
  while (!node->is_leaf) {
    for (int i = 0; i < node->num_keys; ++i) {
      uint8_t* rec = node->records[i];
      RecordHeader h = RecordCodec::Peek(rec);
      uint8_t ctr[CounterStore::kCounterSize];
      ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
      ARIA_RETURN_IF_ERROR(codec_->Verify(
          rec, ctr, reinterpret_cast<uint64_t>(&node->records[i])));
    }
    node = node->children[0];
    if (++depth > height_) {
      return Status::IntegrityViolation("tree deeper than trusted height");
    }
  }
  if (depth != height_) {
    return Status::IntegrityViolation("leftmost leaf at wrong depth");
  }
  // Walk the whole chain: verify every record and strict key ordering.
  uint64_t keys = 0;
  uint64_t visited = 0;
  std::string prev;
  bool have_prev = false;
  for (Node* leaf = node; leaf != nullptr; leaf = leaf->next_leaf) {
    if (++visited > stats_.leaf_nodes + 1) {
      return Status::IntegrityViolation("leaf chain cycle");
    }
    for (int i = 0; i < leaf->num_keys; ++i) {
      uint8_t* rec = leaf->records[i];
      RecordHeader h = RecordCodec::Peek(rec);
      uint8_t ctr[CounterStore::kCounterSize];
      ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
      ARIA_RETURN_IF_ERROR(codec_->Verify(
          rec, ctr, reinterpret_cast<uint64_t>(&leaf->records[i])));
      std::string k;
      codec_->OpenKey(rec, ctr, &k);
      if (have_prev && Slice(prev).compare(Slice(k)) >= 0) {
        return Status::IntegrityViolation("leaf chain keys out of order");
      }
      prev = std::move(k);
      have_prev = true;
      keys++;
    }
  }
  if (keys != total_keys_) {
    return Status::IntegrityViolation(
        "leaf key count mismatch (unauthorized deletion)");
  }
  return Status::OK();
}

void AriaBPlusTree::CollectMetrics(obs::MetricSink* sink) const {
  sink->Counter("splits", stats_.splits);
  sink->Counter("descent_decrypts", stats_.descent_decrypts);
  sink->Counter("scan_decrypts", stats_.scan_decrypts);
  sink->Gauge("leaf_nodes", stats_.leaf_nodes);
  sink->Gauge("inner_nodes", stats_.inner_nodes);
  sink->Gauge("height", static_cast<uint64_t>(height_));
  sink->Gauge("live_entries", total_keys_);
}

}  // namespace aria
