// Aria-B+: the B+-tree index the paper names as future work (§VII,
// "Supporting for B+-tree-based Index ... by encrypting key and value
// respectively").
//
// Differences from Aria-T (core/aria_btree.h):
//  * inner nodes hold only ROUTING separators — sealed key-only records —
//    so descents never touch values;
//  * all KV records live in leaves, which are chained left-to-right: a
//    range scan descends once and then walks the leaf chain, decrypting
//    only the records in range (Aria-T walks the whole subtree recursion);
//  * key and value are decryptable independently (the record format already
//    supports OpenKey/OpenValue windows into the CTR keystream).
//
// Protection: identical record sealing (counter + CMAC + AdField bound to
// the record-pointer slot); separators are sealed key-records with their
// own counters. Trusted metadata: root pointer, height, total key count.
//
// Simplification (prototype extension, documented in DESIGN.md): Delete
// removes from leaves without rebalancing; separators are routing-only
// copies and may outlive the leaf key, which is standard for B+-trees.
#pragma once

#include <cstdint>
#include <string>

#include "alloc/heap_allocator.h"
#include "core/counter_store.h"
#include "core/kv_store.h"
#include "core/record.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

struct AriaBPlusStats {
  uint64_t leaf_nodes = 0;
  uint64_t inner_nodes = 0;
  uint64_t splits = 0;
  uint64_t descent_decrypts = 0;
  uint64_t scan_decrypts = 0;
};

class AriaBPlusTree : public OrderedKVStore {
 public:
  AriaBPlusTree(sgx::EnclaveRuntime* enclave, UntrustedAllocator* allocator,
                const RecordCodec* codec, CounterStore* counters);
  ~AriaBPlusTree() override;

  Status Put(Slice key, Slice value) override;
  Status Get(Slice key, std::string* value) override;
  Status Delete(Slice key) override;
  Status RangeScan(
      Slice start, size_t limit,
      std::vector<std::pair<std::string, std::string>>* out) override;
  const char* name() const override { return "Aria-B+"; }
  uint64_t size() const override { return total_keys_; }

  /// O(n) audit: verify every record and separator MAC, leaf-depth
  /// uniformity, leaf-chain key ordering, and the trusted total count.
  Status VerifyFullIntegrity();

  int height() const { return height_; }
  const AriaBPlusStats& stats() const { return stats_; }

  /// live_entries counts leaf KV pairs only; separators own extra counters,
  /// so for this index the record-counter law checks live <= cm.used.
  void CollectMetrics(obs::MetricSink* sink) const override;

  /// Test-only attacker hook: untrusted record-pointer slot for `key`.
  uint8_t** DebugRecordSlot(Slice key);

 private:
  struct Node;  // inner and leaf share the layout; leaves use next_leaf

  Result<Node*> NewNode(bool is_leaf);
  Status CompareAt(Node* node, int i, Slice key, int* cmp,
                   std::string* value_out);
  Status LowerBound(Node* node, Slice key, int* pos, bool* eq,
                    std::string* value_out);
  Status MoveRecord(Node* from, int from_slot, Node* to, int to_slot);
  Status SealKeyValue(Node* node, int slot, Slice key, Slice value);
  Status OverwriteValue(Node* node, int slot, Slice key, Slice value);
  Status SplitChild(Node* parent, int idx);
  Status FreeRecordAt(Node* node, int slot);
  void FreeSubtree(Node* node);

  sgx::EnclaveRuntime* enclave_;
  UntrustedAllocator* allocator_;
  const RecordCodec* codec_;
  CounterStore* counters_;

  Node* root_ = nullptr;     // trusted index entrance
  int height_ = 0;           // trusted
  uint64_t total_keys_ = 0;  // trusted
  AriaBPlusStats stats_;
  std::string key_scratch_;
};

}  // namespace aria
