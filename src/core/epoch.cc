#include "core/epoch.h"

#include <thread>

namespace aria::epoch {

EpochManager::EpochManager(uint32_t num_slots)
    : num_slots_(num_slots == 0 ? 1 : num_slots),
      slots_(new Slot[num_slots == 0 ? 1 : num_slots]) {}

uint64_t EpochManager::Guard::epoch() const {
  if (mgr_ == nullptr) return 0;
  return mgr_->slots_[slot_].state.load(std::memory_order_relaxed);
}

void EpochManager::Guard::Release() {
  if (mgr_ == nullptr) return;
  mgr_->slots_[slot_].state.store(0, std::memory_order_release);
  mgr_ = nullptr;
}

EpochManager::Guard EpochManager::Enter() {
  // Start probing at a per-thread offset so concurrent readers spread over
  // the slot array instead of all contending on slot 0.
  static thread_local uint32_t probe_base =
      static_cast<uint32_t>(std::hash<std::thread::id>{}(
          std::this_thread::get_id()));
  for (uint32_t i = 0; i < num_slots_; ++i) {
    const uint32_t s = (probe_base + i) % num_slots_;
    uint64_t expected = 0;
    uint64_t e = epoch_.load(std::memory_order_seq_cst);
    if (!slots_[s].state.compare_exchange_strong(expected, e,
                                                 std::memory_order_seq_cst)) {
      continue;  // slot busy; try the next one
    }
    // Store-then-recheck handshake. The CAS published a possibly stale
    // epoch; re-read the global and re-publish until they agree. This
    // closes the race with a concurrent retiring writer: the writer's
    // AdvanceAfterRetire (seq_cst RMW) either precedes our final epoch
    // load — in which case we pin an epoch >= the retire tag and, via the
    // release sequence through the epoch counter, are guaranteed to see
    // the unlink — or it follows our slot publication in the seq_cst
    // order, in which case the writer's MinActiveEpoch scan (sequenced
    // after its RMW) observes our pinned slot and blocks reclamation.
    for (;;) {
      const uint64_t now = epoch_.load(std::memory_order_seq_cst);
      if (now == e) break;
      slots_[s].state.store(now, std::memory_order_seq_cst);
      e = now;
    }
    return Guard(this, s);
  }
  return Guard();  // all slots busy: caller falls back to the locked path
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min = UINT64_MAX;
  for (uint32_t s = 0; s < num_slots_; ++s) {
    const uint64_t e = slots_[s].state.load(std::memory_order_seq_cst);
    if (e != 0 && e < min) min = e;
  }
  return min;
}

uint32_t EpochManager::active_slots() const {
  uint32_t n = 0;
  for (uint32_t s = 0; s < num_slots_; ++s) {
    if (slots_[s].state.load(std::memory_order_relaxed) != 0) ++n;
  }
  return n;
}

void RetireList::Retire(void* p, std::function<void(void*)> deleter,
                        uint64_t retire_epoch) {
  items_.push_back(Item{p, std::move(deleter), retire_epoch});
}

size_t RetireList::Drain(const EpochManager& mgr) {
  if (items_.empty()) return 0;
  const uint64_t min_active = mgr.MinActiveEpoch();
  size_t freed = 0;
  while (!items_.empty() && items_.front().epoch < min_active) {
    Item item = std::move(items_.front());
    items_.pop_front();
    item.deleter(item.p);
    ++freed;
  }
  return freed;
}

size_t RetireList::DrainAll() {
  size_t freed = 0;
  while (!items_.empty()) {
    Item item = std::move(items_.front());
    items_.pop_front();
    item.deleter(item.p);
    ++freed;
  }
  return freed;
}

}  // namespace aria::epoch
