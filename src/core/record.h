// Sealed KV record format (paper §V-D, Fig. 8).
//
// A record as it sits in untrusted memory:
//
//   [RedPtr 8][k_len 2][v_len 2][ciphertext k_len+v_len][MAC 16]
//
// Encryption: AES-CTR with the per-record counter value; the counter block
// is additionally bound to the RedPtr (address-independent-seed style, cf.
// Rogers et al. cited by the paper) so two records never share a keystream
// even if their random initial counters collide.
//
// MAC: AES-CMAC over RedPtr || counter || k_len || v_len || ciphertext ||
// AdField. The AdField is the index-binding field of §V-C: for Aria-H the
// address of the pointer cell that points at this entry; for Aria-T the
// address of the record-pointer slot. It defeats pointer-exchange attacks
// on the unprotected index.
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "crypto/aes.h"
#include "crypto/cmac.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

class UntrustedAllocator;

/// Plain header fields, readable without verification.
struct RecordHeader {
  uint64_t red_ptr;
  uint16_t k_len;
  uint16_t v_len;
};

/// Seals, verifies and opens KV records. Stateless apart from the keys; one
/// codec is shared by a whole store instance.
class RecordCodec {
 public:
  static constexpr size_t kHeaderSize = 12;
  static constexpr size_t kMacSize = 16;
  static constexpr size_t kCounterSize = 16;
  static constexpr size_t kMaxKeyLen = UINT16_MAX;
  static constexpr size_t kMaxValueLen = UINT16_MAX;

  /// `allocator` (optional) is the untrusted allocator records live in;
  /// when set, Verify bounds the untrusted header lengths by the record's
  /// allocation before deriving the MAC offset from them. The factory
  /// always wires it; only unit tests sealing into stack/vector buffers
  /// pass nullptr.
  RecordCodec(sgx::EnclaveRuntime* enclave, const crypto::Aes128* aes,
              const crypto::Cmac128* cmac,
              const UntrustedAllocator* allocator = nullptr)
      : enclave_(enclave), aes_(aes), cmac_(cmac), allocator_(allocator) {}

  /// Bytes a sealed record occupies.
  static size_t SealedSize(size_t k_len, size_t v_len) {
    return kHeaderSize + k_len + v_len + kMacSize;
  }

  /// Parse the unprotected header (lengths are re-checked by the MAC).
  static RecordHeader Peek(const uint8_t* rec);

  /// Encrypt and MAC (key, value) into `out` (pre-allocated untrusted
  /// memory of SealedSize bytes). `counter` must be the freshly bumped
  /// value.
  void Seal(uint64_t red_ptr, const uint8_t counter[16], Slice key,
            Slice value, uint64_t ad_field, uint8_t* out) const;

  /// Verify the record MAC against the trusted counter and the expected
  /// AdField. Returns IntegrityViolation on any mismatch. The stored-MAC
  /// offset depends on the (untrusted) header lengths, so when the codec
  /// knows the allocator it first rejects any record whose claimed
  /// SealedSize exceeds the allocation the record sits in.
  Status Verify(const uint8_t* rec, const uint8_t counter[16],
                uint64_t ad_field) const;

  /// Verify with an explicit allocation bound: the record may claim at
  /// most `bound` bytes from `rec` to the end of its MAC.
  Status Verify(const uint8_t* rec, const uint8_t counter[16],
                uint64_t ad_field, size_t bound) const;

  /// Decrypt the record into (key, value). Call only after Verify.
  void Open(const uint8_t* rec, const uint8_t counter[16], std::string* key,
            std::string* value) const;

  /// Decrypt only the key (used during lookups to confirm a candidate).
  void OpenKey(const uint8_t* rec, const uint8_t counter[16],
               std::string* key) const;

  /// Decrypt only the value — the lookup hot path confirms the key first
  /// with OpenKey, then fetches just the value's keystream window.
  void OpenValue(const uint8_t* rec, const uint8_t counter[16],
                 std::string* value) const;

  /// Lock-free-read variants of OpenKey/OpenValue: identical decryption,
  /// but the plaintext's enclave-memory cost is charged through the
  /// thread-safe ChargeSharedWrite accumulator instead of TouchWrite
  /// (which mutates EPC residency state and is writer-only). Verify and
  /// ComputeMac are already safe from lock-free readers — they keep all
  /// state in locals.
  void OpenKeyLockFree(const uint8_t* rec, const uint8_t counter[16],
                       std::string* key) const;
  void OpenValueLockFree(const uint8_t* rec, const uint8_t counter[16],
                         std::string* value) const;

  /// Recompute and store the MAC after the AdField changed (the ciphertext
  /// and counter stay as they are — no re-encryption, §V-C).
  void Reseal(uint8_t* rec, const uint8_t counter[16],
              uint64_t ad_field) const;

 private:
  void DeriveCtrBlock(uint64_t red_ptr, const uint8_t counter[16],
                      uint8_t out[16]) const;
  void ComputeMac(const uint8_t* rec, const uint8_t counter[16],
                  uint64_t ad_field, uint8_t out[16]) const;

  sgx::EnclaveRuntime* enclave_;
  const crypto::Aes128* aes_;
  const crypto::Cmac128* cmac_;
  const UntrustedAllocator* allocator_;
};

}  // namespace aria
