// Aria-H: the hash-table variant of Aria (paper §V-C).
//
// Chained hashing with the whole table in untrusted memory. Each entry block
// is [next 8][hint 4][pad 4][sealed record]; the key hint (hash of the
// plaintext key) lets lookups skip non-matching candidates without
// decryption. Index protection (§V-C):
//  * each record's MAC binds the AdField — by default the address of the
//    pointer cell that points at the entry — so exchanging two entries is
//    detected;
//  * a trusted per-bucket entry count detects unauthorized deletion when a
//    lookup misses.
//
// Lock-free read mode (`lock_free_reads`, DESIGN.md §14): published entry
// blocks become immutable — every overwrite copy-on-writes into a fresh
// block and the displaced block is handed to the owner's RetireHook instead
// of being freed in place — and all pointer cells are accessed atomically.
// The AdField binding switches from the pointer-cell address to the bucket
// index: cell addresses change on every CoW relocation, which would force a
// re-MAC cascade over successors exactly where readers are traversing.
// Binding the bucket index keeps the §V-C guarantees — cross-bucket
// splicing breaks the MAC, replaying an old block for the same key breaks
// against the bumped trusted counter, and deletion is still caught by the
// trusted per-bucket count; the only power given up is detecting a
// *reordering* of intact entries within one bucket's chain, which has no
// semantic effect on a set of distinct keys.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>

#include "alloc/heap_allocator.h"
#include "core/counter_store.h"
#include "core/kv_store.h"
#include "core/record.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

struct AriaHashConfig {
  uint64_t num_buckets = 1 << 20;

  /// Allocate a fresh block on every overwrite instead of re-sealing in
  /// place (the behavior of the original implementations, where each write
  /// request allocates untrusted memory — the traffic the user-space heap
  /// allocator exists to absorb, Fig. 12).
  bool out_of_place_updates = false;

  /// Support TryLockFreeGet: immutable published blocks (every overwrite
  /// goes out of place), atomic pointer-cell accesses, bucket-index AdField
  /// binding, and displaced blocks routed through the RetireHook. Mutators
  /// still require external serialization (the shard writer lock).
  bool lock_free_reads = false;
};

struct AriaHashStats {
  uint64_t entries_walked = 0;
  uint64_t hint_matches = 0;
  uint64_t reseals = 0;  ///< AdField-driven MAC recomputations
};

class AriaHash : public KVStore {
 public:
  AriaHash(sgx::EnclaveRuntime* enclave, UntrustedAllocator* allocator,
           const RecordCodec* codec, CounterStore* counters,
           AriaHashConfig config);
  ~AriaHash() override;

  Status Init();

  Status Put(Slice key, Slice value) override;
  Status Get(Slice key, std::string* value) override;
  Status Delete(Slice key) override;
  LockFreeGetResult TryLockFreeGet(Slice key, std::string* value) override;
  void SetRetireHook(RetireHook hook) override {
    retire_hook_ = std::move(hook);
  }
  void FreeRetired(void* p) override { allocator_->Free(p).ok(); }
  const char* name() const override { return "Aria-H"; }
  uint64_t size() const override { return size_; }

  const AriaHashStats& stats() const { return stats_; }

  /// EPC bytes used by index metadata (trusted bucket counts).
  uint64_t trusted_index_bytes() const;

  void CollectMetrics(obs::MetricSink* sink) const override;

  // --- test-only hooks emulating an attacker with full access to untrusted
  // memory (the bucket array, chain pointers and sealed entries) ---

  /// Address of the head-pointer cell of the bucket that `key` maps to.
  uint8_t** DebugBucketCell(Slice key) { return &buckets_[BucketOf(key)]; }

  /// First chain entry whose key hint matches `key` (nullptr if none).
  uint8_t* DebugEntry(Slice key);

 private:
  static constexpr size_t kEntryHeader = 16;

  // Pointer cells (bucket heads and entry next-cells) and key hints are
  // accessed through atomic_ref so a lock-free reader never races the
  // (locked) writer at the byte level. Entry blocks are 8-byte aligned:
  // HeapAllocator blocks sit at multiples of a >=16-byte size class inside
  // a chunk-aligned chunk, and OcallAllocator returns malloc alignment.
  static uint8_t* LoadCell(uint8_t** loc) {
    return std::atomic_ref<uint8_t*>(*loc).load(std::memory_order_acquire);
  }
  static void StoreCell(uint8_t** loc, uint8_t* v) {
    std::atomic_ref<uint8_t*>(*loc).store(v, std::memory_order_release);
  }
  static uint8_t* EntryNext(uint8_t* e) {
    return LoadCell(reinterpret_cast<uint8_t**>(e));
  }
  static void SetEntryNext(uint8_t* e, uint8_t* next) {
    StoreCell(reinterpret_cast<uint8_t**>(e), next);
  }
  static uint32_t EntryHint(const uint8_t* e) {
    // atomic_ref over const T is not portable until C++26; load-only.
    return std::atomic_ref<uint32_t>(
               *reinterpret_cast<uint32_t*>(const_cast<uint8_t*>(e) + 8))
        .load(std::memory_order_relaxed);
  }
  static void SetEntryHint(uint8_t* e, uint32_t h) {
    std::atomic_ref<uint32_t>(*reinterpret_cast<uint32_t*>(e + 8))
        .store(h, std::memory_order_relaxed);
  }
  static uint8_t* EntryRecord(uint8_t* e) { return e + kEntryHeader; }

  uint64_t BucketOf(Slice key) const;

  /// AdField for the entry published in cell `loc` of bucket `b` (see the
  /// file comment for why lock-free mode binds the bucket index).
  uint64_t AdOf(uint64_t b, uint8_t** loc) const {
    return config_.lock_free_reads ? b : reinterpret_cast<uint64_t>(loc);
  }

  /// Free a displaced block — through the RetireHook when installed (the
  /// sharded front-end defers it past the current epoch), directly
  /// otherwise.
  Status ReleaseBlock(uint8_t* e) {
    if (retire_hook_) {
      retire_hook_(e);
      return Status::OK();
    }
    return allocator_->Free(e);
  }

  uint32_t LoadBucketCount(uint64_t b) const {
    return std::atomic_ref<uint32_t>(bucket_counts_[b])
        .load(std::memory_order_acquire);
  }
  void StoreBucketCount(uint64_t b, uint32_t v) {
    std::atomic_ref<uint32_t>(bucket_counts_[b])
        .store(v, std::memory_order_release);
  }

  /// Verify an entry against its current AdField and re-MAC it for a new
  /// pointer-cell address (entry relocation during insert/delete).
  Status ResealEntry(uint8_t* entry, uint64_t old_ad, uint64_t new_ad);

  /// Walk the chain of bucket `b` looking for `key`. On match fills
  /// `*found_loc` (the cell pointing at the entry) and `*found_entry`, and
  /// leaves the decrypted value in `*value_out` if non-null. `*walked`
  /// counts every entry in the chain up to and including the match.
  Status FindEntry(uint64_t b, Slice key, uint8_t*** found_loc,
                   uint8_t** found_entry, std::string* value_out,
                   uint64_t* walked);

  sgx::EnclaveRuntime* enclave_;
  UntrustedAllocator* allocator_;
  const RecordCodec* codec_;
  CounterStore* counters_;
  AriaHashConfig config_;

  uint8_t** buckets_ = nullptr;     // untrusted array of chain heads
  uint32_t* bucket_counts_ = nullptr;  // trusted per-bucket entry counts
  uint64_t size_ = 0;
  AriaHashStats stats_;
  std::string key_scratch_;  // reused candidate-key buffer (enclave memory)

  RetireHook retire_hook_;
  // Lock-free-read stats, bumped by concurrent readers and folded into the
  // same metric names as the locked-path stats_ fields.
  mutable std::atomic<uint64_t> lf_entries_walked_{0};
  mutable std::atomic<uint64_t> lf_hint_matches_{0};
};

}  // namespace aria
