// Aria-H: the hash-table variant of Aria (paper §V-C).
//
// Chained hashing with the whole table in untrusted memory. Each entry block
// is [next 8][hint 4][pad 4][sealed record]; the key hint (hash of the
// plaintext key) lets lookups skip non-matching candidates without
// decryption. Index protection (§V-C):
//  * each record's MAC binds the AdField — the address of the pointer cell
//    that points at the entry — so exchanging two entries is detected;
//  * a trusted per-bucket entry count detects unauthorized deletion when a
//    lookup misses.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>

#include "alloc/heap_allocator.h"
#include "core/counter_store.h"
#include "core/kv_store.h"
#include "core/record.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

struct AriaHashConfig {
  uint64_t num_buckets = 1 << 20;

  /// Allocate a fresh block on every overwrite instead of re-sealing in
  /// place (the behavior of the original implementations, where each write
  /// request allocates untrusted memory — the traffic the user-space heap
  /// allocator exists to absorb, Fig. 12).
  bool out_of_place_updates = false;
};

struct AriaHashStats {
  uint64_t entries_walked = 0;
  uint64_t hint_matches = 0;
  uint64_t reseals = 0;  ///< AdField-driven MAC recomputations
};

class AriaHash : public KVStore {
 public:
  AriaHash(sgx::EnclaveRuntime* enclave, UntrustedAllocator* allocator,
           const RecordCodec* codec, CounterStore* counters,
           AriaHashConfig config);
  ~AriaHash() override;

  Status Init();

  Status Put(Slice key, Slice value) override;
  Status Get(Slice key, std::string* value) override;
  Status Delete(Slice key) override;
  const char* name() const override { return "Aria-H"; }
  uint64_t size() const override { return size_; }

  const AriaHashStats& stats() const { return stats_; }

  /// EPC bytes used by index metadata (trusted bucket counts).
  uint64_t trusted_index_bytes() const;

  void CollectMetrics(obs::MetricSink* sink) const override;

  // --- test-only hooks emulating an attacker with full access to untrusted
  // memory (the bucket array, chain pointers and sealed entries) ---

  /// Address of the head-pointer cell of the bucket that `key` maps to.
  uint8_t** DebugBucketCell(Slice key) { return &buckets_[BucketOf(key)]; }

  /// First chain entry whose key hint matches `key` (nullptr if none).
  uint8_t* DebugEntry(Slice key);

 private:
  static constexpr size_t kEntryHeader = 16;

  static uint8_t* EntryNext(uint8_t* e) {
    uint8_t* next;
    std::memcpy(&next, e, sizeof(next));
    return next;
  }
  static void SetEntryNext(uint8_t* e, uint8_t* next) {
    std::memcpy(e, &next, sizeof(next));
  }
  static uint32_t EntryHint(const uint8_t* e) {
    uint32_t h;
    std::memcpy(&h, e + 8, sizeof(h));
    return h;
  }
  static void SetEntryHint(uint8_t* e, uint32_t h) {
    std::memcpy(e + 8, &h, sizeof(h));
  }
  static uint8_t* EntryRecord(uint8_t* e) { return e + kEntryHeader; }

  uint64_t BucketOf(Slice key) const;

  /// Pointer cell at `loc` holds the entry address (untrusted memory).
  static uint8_t* LoadCell(uint8_t** loc) { return *loc; }

  /// Verify an entry against its current AdField and re-MAC it for a new
  /// pointer-cell address (entry relocation during insert/delete).
  Status ResealEntry(uint8_t* entry, uint64_t old_ad, uint64_t new_ad);

  /// Walk the chain of bucket `b` looking for `key`. On match fills
  /// `*found_loc` (the cell pointing at the entry) and `*found_entry`, and
  /// leaves the decrypted value in `*value_out` if non-null. `*walked`
  /// counts every entry in the chain up to and including the match.
  Status FindEntry(uint64_t b, Slice key, uint8_t*** found_loc,
                   uint8_t** found_entry, std::string* value_out,
                   uint64_t* walked);

  sgx::EnclaveRuntime* enclave_;
  UntrustedAllocator* allocator_;
  const RecordCodec* codec_;
  CounterStore* counters_;
  AriaHashConfig config_;

  uint8_t** buckets_ = nullptr;     // untrusted array of chain heads
  uint32_t* bucket_counts_ = nullptr;  // trusted per-bucket entry counts
  uint64_t size_ = 0;
  AriaHashStats stats_;
  std::string key_scratch_;  // reused candidate-key buffer (enclave memory)
};

}  // namespace aria
