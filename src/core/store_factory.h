// One-stop construction of every evaluated scheme (§VI "Compared Schemes"):
//   kAria        — Aria proper (Secure Cache over a flat MT)
//   kAriaNoCache — counters in EPC, hardware paging (Fig. 1b)
//   kShieldStore — per-bucket MT roots in EPC (Fig. 1a)
//   kBaseline    — whole store in EPC
// each with a hash or B-tree index where the paper evaluates it.
#pragma once

#include <memory>
#include <string>

#include "alloc/heap_allocator.h"
#include "baseline/enclave_btree.h"
#include "baseline/enclave_kv.h"
#include "baseline/shieldstore.h"
#include "cache/secure_cache.h"
#include "core/aria_bplus.h"
#include "core/aria_cuckoo.h"
#include "core/aria_btree.h"
#include "core/aria_hash.h"
#include "core/counter_store.h"
#include "core/kv_store.h"
#include "core/record.h"
#include "core/trusted_counter_store.h"
#include "crypto/aes.h"
#include "crypto/cmac.h"
#include "crypto/secure_random.h"
#include "metadata/counter_manager.h"
#include "obs/invariants.h"
#include "obs/metrics.h"
#include "obs/tracked_allocator.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

enum class Scheme { kAria, kAriaNoCache, kShieldStore, kBaseline };
enum class IndexKind { kHash, kBTree, kBPlusTree, kCuckoo };

/// How a sharded front-end serves Get (DESIGN.md §8, §14).
///  kLocked     — every Get takes the shard lock (exclusive, or shared with
///                shard_shared_reads). The pre-§14 behavior.
///  kOptimistic — Gets first try an epoch-protected, seqlock-validated
///                lock-free probe of the shard's index and fall back to the
///                exclusive lock after optimistic_max_retries failed
///                validations, when the index declines the probe (its read
///                path genuinely mutates shared state — Secure Cache
///                swap-ins, CLOCK paging), or when every epoch reader slot
///                is taken. Writers are unchanged (exclusive lock) but
///                publish seqlock version bumps and retire displaced
///                records through the epoch manager.
enum class ReadMode : uint8_t { kLocked, kOptimistic };

struct StoreOptions {
  Scheme scheme = Scheme::kAria;
  IndexKind index = IndexKind::kHash;

  /// Expected number of distinct keys; sizes the counter area, hash buckets
  /// and ShieldStore roots.
  uint64_t keyspace = 1 << 20;

  /// EPC available to this instance (divided between tenants in Fig. 16a).
  uint64_t epc_budget_bytes = sgx::CostModel::kDefaultEpcBytes;
  sgx::CostModel cost_model{};  ///< set enabled=false for "Aria w/o SGX"

  // --- Aria knobs ---
  uint64_t cache_bytes = 0;  ///< Secure Cache budget; 0 = auto (max)
  size_t arity = 8;          ///< Merkle tree branch factor (Fig. 15)
  CachePolicy policy = CachePolicy::kFifo;
  int pinned_levels = -1;    ///< top-k level pinning (§IV-E); -1 = auto
  bool stop_swap_enabled = true;
  bool start_stopped = false;       ///< force uniform-mode from the start
  bool use_heap_allocator = true;   ///< false = OCALL per alloc (AriaBase)
  bool out_of_place_updates = false;  ///< allocate on every overwrite
                                      ///< (Aria-H and ShieldStore)
  bool avoid_clean_writeback = true;  ///< §IV-C clean-discard optimization

  // --- index sizing (0 = auto) ---
  uint64_t num_buckets = 0;          ///< Aria-H / Baseline hash buckets
  uint64_t shieldstore_buckets = 0;  ///< == MT roots in EPC

  // --- sharded front-end ---
  /// >1 hash-partitions the keyspace across that many independent shards
  /// (each with its own enclave, allocator, Secure Cache and Merkle trees)
  /// behind a ShardedStore with per-shard locking; keyspace/EPC/cache/bucket
  /// budgets are divided between the shards.
  uint32_t num_shards = 1;
  /// Take shared (reader-parallel) shard locks for Get/RangeScan. Only
  /// valid for configs whose read path is const: Baseline hash with
  /// cost_model.enabled == false. Everything SGX-simulated mutates cache /
  /// paging state on reads and must keep the exclusive default.
  bool shard_shared_reads = false;
  /// Sharded Get path (see ReadMode). kOptimistic additionally flips the
  /// hash indexes into their lock-free-read layout (atomic pointer cells,
  /// copy-on-write overwrites, epoch-deferred frees); mutually exclusive
  /// with shard_shared_reads.
  ReadMode read_mode = ReadMode::kLocked;
  /// Failed seqlock validations tolerated before an optimistic Get falls
  /// back to the exclusive shard lock.
  uint32_t optimistic_max_retries = 3;

  uint64_t seed = 42;
};

/// Owns every component of one store instance in destruction-safe order.
struct StoreBundle {
  std::unique_ptr<sgx::EnclaveRuntime> enclave;
  std::unique_ptr<crypto::SecureRandom> rng;
  std::unique_ptr<crypto::Aes128> aes;
  std::unique_ptr<crypto::Aes128> aes_mac_holder;  ///< cipher behind cmac
  std::unique_ptr<crypto::Cmac128> cmac;
  std::unique_ptr<UntrustedAllocator> allocator;
  std::unique_ptr<RecordCodec> codec;
  std::unique_ptr<CounterStore> counters;
  std::unique_ptr<KVStore> store;
  std::string label;

  /// The options this bundle was built with (CheckInvariants derives the
  /// applicable conservation laws from them).
  StoreOptions options;

  /// Per-component views of `allocator` (index, counter manager) whose
  /// footprints the allocator-conservation law sums. Components hold raw
  /// pointers into this vector, so it is destroyed after them but before
  /// the base allocator.
  std::vector<std::unique_ptr<obs::TrackedAllocator>> tracked_allocators;

  /// Every layer of this instance, registered under its namespace ("sgx",
  /// "alloc", "cm", "index", ...) by CreateStore.
  obs::MetricsRegistry registry;

  ~StoreBundle() {
    // The store references the counter store / allocator / enclave; destroy
    // top-down.
    store.reset();
    counters.reset();
    codec.reset();
    tracked_allocators.clear();
    allocator.reset();
    cmac.reset();
    aes_mac_holder.reset();
    aes.reset();
    rng.reset();
    enclave.reset();
  }

  /// CounterManager view when scheme == kAria (for cache stats).
  CounterManager* counter_manager() {
    return dynamic_cast<CounterManager*>(counters.get());
  }

  /// Flat metrics snapshot across every registered layer. For a sharded
  /// bundle (num_shards > 1) this is the sum over all shards' snapshots.
  obs::Snapshot Metrics() const;

  /// Run every applicable cross-layer conservation law (DESIGN.md §9)
  /// against the current metrics. For a sharded bundle, each shard is
  /// checked individually and the per-shard sums are reconciled against
  /// the aggregate. Must not race with in-flight operations.
  obs::InvariantReport CheckInvariants() const;
};

Status CreateStore(const StoreOptions& options, StoreBundle* out);

}  // namespace aria
