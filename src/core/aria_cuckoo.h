// Aria-C: bucketized cuckoo hashing over sealed records — the "other" hash
// index the paper's §III motivation names (chained hashing, cuckoo hashing,
// ...). It exists to demonstrate the decoupled design concretely: the
// security metadata layer (counters + Merkle tree + Secure Cache) is reused
// unchanged; only the index differs.
//
// Layout: untrusted table of buckets, 4 slots each; a slot holds the record
// pointer and the key hint (one cache line per bucket). Every record's
// AdField binds the slot-cell address, so cuckoo relocations re-MAC the
// moved record (verify under the old slot first) — displacing k records
// costs k verified re-MACs, never re-encryption.
//
// Deletion detection: trusted per-bucket occupancy counts; a lookup that
// misses compares both candidate buckets' live slots against them.
//
// Insertion uses a bounded random-walk kick sequence; if it exceeds
// kMaxKicks the table is effectively full and CapacityExceeded is returned
// (size the table with >= 1.6x headroom; cuckoo load factors above ~95%
// need rehashing, which is out of scope here).
#pragma once

#include <cstdint>
#include <string>

#include "alloc/heap_allocator.h"
#include "common/random.h"
#include "core/counter_store.h"
#include "core/kv_store.h"
#include "core/record.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

struct AriaCuckooConfig {
  /// Number of 4-slot buckets. Size for keyspace / (4 * 0.6) or larger.
  uint64_t num_buckets = 1 << 18;

  /// Double the table and rehash when an insert exhausts its kick budget.
  /// Rehashing decrypts every key (to recompute its buckets) and re-MACs
  /// every record (slot cells move) — O(n) crypto, so it is pre-sized away
  /// in benchmarks but lets the index grow unbounded when enabled.
  bool grow_on_full = true;
};

struct AriaCuckooStats {
  uint64_t kicks = 0;          ///< records displaced during inserts
  uint64_t probes = 0;         ///< slots inspected
  uint64_t reseals = 0;        ///< AdField re-MACs from relocations
  uint64_t failed_inserts = 0; ///< kick limit exceeded (table full)
  uint64_t grows = 0;          ///< rehashes triggered by full tables
};

class AriaCuckoo : public KVStore {
 public:
  static constexpr int kSlotsPerBucket = 4;
  static constexpr int kMaxKicks = 500;

  AriaCuckoo(sgx::EnclaveRuntime* enclave, UntrustedAllocator* allocator,
             const RecordCodec* codec, CounterStore* counters,
             AriaCuckooConfig config);
  ~AriaCuckoo() override;

  Status Init();

  Status Put(Slice key, Slice value) override;
  Status Get(Slice key, std::string* value) override;
  Status Delete(Slice key) override;
  const char* name() const override { return "Aria-C"; }
  uint64_t size() const override { return size_; }

  const AriaCuckooStats& stats() const { return stats_; }
  uint64_t trusted_index_bytes() const;

  void CollectMetrics(obs::MetricSink* sink) const override;

  // Test-only attacker hooks.
  uint8_t** DebugSlotCell(Slice key);

 private:
  struct Slot {
    uint8_t* rec;
    uint32_t hint;
    uint32_t pad;
  };
  struct Bucket {
    Slot slots[kSlotsPerBucket];
  };

  uint64_t Hash1(Slice key) const;
  uint64_t Hash2(Slice key) const;
  uint64_t AltBucket(Slice key, uint64_t bucket) const;

  /// Find `key` in bucket `b`; fills slot index or -1.
  Status FindInBucket(uint64_t b, Slice key, int* slot_idx,
                      std::string* value_out);

  /// Verified occupancy check for deletion detection on a miss.
  Status CheckOccupancy(uint64_t b);

  /// Re-MAC `rec` for a new slot cell after verifying it under the old one.
  Status ResealRecord(uint8_t* rec, uint64_t old_ad, uint64_t new_ad);

  /// One bounded random-walk insertion attempt of an already-sealed record
  /// (AdField 0). On success the record lands in a slot; kCapacityExceeded
  /// means the kick budget ran out and the table is untouched.
  Status TryPlace(uint8_t* pending, uint32_t pending_hint,
                  const std::string& pending_key);

  /// Double the table and reinsert every record (verifies, decrypts keys,
  /// re-MACs for the new slot cells).
  Status Grow();

  sgx::EnclaveRuntime* enclave_;
  UntrustedAllocator* allocator_;
  const RecordCodec* codec_;
  CounterStore* counters_;
  AriaCuckooConfig config_;

  Bucket* table_ = nullptr;       // untrusted
  uint8_t* bucket_counts_ = nullptr;  // trusted occupancy per bucket
  uint64_t size_ = 0;
  Random kick_rng_{0xC0C0};
  AriaCuckooStats stats_;
  std::string key_scratch_;
};

}  // namespace aria
