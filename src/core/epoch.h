// Epoch-based reclamation for the lock-free GET path (DESIGN.md §14).
//
// Readers pin themselves into the current global epoch before touching
// shared records; writers never free a displaced record in place — they
// unlink it, advance the global epoch, and push the block onto a deferred
// RetireList tagged with the post-advance epoch. A retired block is freed
// only once every pinned reader's epoch is at least as new as the retire
// epoch, which (via the release sequence through the epoch counter's RMW
// chain) proves the reader entered after the unlink was published and so
// cannot still hold a pointer into the block.
//
// The manager is deliberately small: a single global epoch counter and a
// fixed array of cache-line-padded reader slots. Entry claims a free slot
// with a CAS and then re-checks the global epoch, re-publishing until the
// published value matches (the store-then-recheck handshake that makes the
// drain-side scan race-free; see epoch.cc). If every slot is busy, Enter()
// returns an inactive Guard and the caller must fall back to the locked
// read path — pinning never blocks and never spins on other readers.
//
// Thread-safety: EpochManager is fully thread-safe. RetireList is NOT —
// each ShardedStore shard owns one and mutates it only while holding that
// shard's writer lock.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

namespace aria::epoch {

class EpochManager {
 public:
  static constexpr uint32_t kDefaultSlots = 64;

  explicit EpochManager(uint32_t num_slots = kDefaultSlots);

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII pin on the current epoch. Move-only; inactive guards (all slots
  /// busy) are valid objects whose destructor is a no-op.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& o) noexcept : mgr_(o.mgr_), slot_(o.slot_) {
      o.mgr_ = nullptr;
    }
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        Release();
        mgr_ = o.mgr_;
        slot_ = o.slot_;
        o.mgr_ = nullptr;
      }
      return *this;
    }
    ~Guard() { Release(); }

    /// True when the calling thread holds a reader slot.
    bool active() const { return mgr_ != nullptr; }

    /// Epoch this guard is pinned at (0 when inactive).
    uint64_t epoch() const;

    /// Unpin early (idempotent).
    void Release();

   private:
    friend class EpochManager;
    Guard(EpochManager* mgr, uint32_t slot) : mgr_(mgr), slot_(slot) {}

    EpochManager* mgr_ = nullptr;
    uint32_t slot_ = 0;
  };

  /// Pin the calling thread into the current epoch. Returns an inactive
  /// Guard when all reader slots are occupied; the caller must then take
  /// the locked path instead.
  Guard Enter();

  /// Current global epoch (starts at 2 so epoch 0 can mean "slot free").
  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Advance the global epoch after unlinking an object; returns the new
  /// epoch, which is the retire tag for the object. Must be called by the
  /// retiring writer *after* the unlink store — the seq_cst RMW here is
  /// what orders the unlink before any later reader's pin.
  uint64_t AdvanceAfterRetire() {
    return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// Minimum epoch any pinned reader holds, or UINT64_MAX when no reader
  /// is pinned. Monotone per-call lower bound: a reader that pins after
  /// the scan starts observes the latest epoch, so it can only raise the
  /// true minimum.
  uint64_t MinActiveEpoch() const;

  /// True when an object retired at `retire_epoch` can be freed.
  bool SafeToReclaim(uint64_t retire_epoch) const {
    return MinActiveEpoch() > retire_epoch;
  }

  uint32_t num_slots() const { return num_slots_; }

  /// Number of currently pinned readers (diagnostic; racy by nature).
  uint32_t active_slots() const;

 private:
  // One reader slot per cache line so pin/unpin traffic from different
  // threads never false-shares. state == 0 means free; otherwise it holds
  // the pinned epoch.
  struct alignas(64) Slot {
    std::atomic<uint64_t> state{0};
  };

  std::atomic<uint64_t> epoch_{2};
  uint32_t num_slots_;
  std::unique_ptr<Slot[]> slots_;
};

/// Deferred-free list for records displaced by writers. FIFO by retire
/// epoch (epochs are tagged from a monotone counter, so the front is
/// always the oldest). NOT thread-safe: owned by one shard and mutated
/// only under that shard's writer lock.
class RetireList {
 public:
  RetireList() = default;
  RetireList(const RetireList&) = delete;
  RetireList& operator=(const RetireList&) = delete;

  /// Frees anything still pending — shutdown path, when no readers can
  /// remain by contract.
  ~RetireList() { DrainAll(); }

  /// Defer freeing `p` until no reader pinned before `retire_epoch`
  /// remains. `deleter` runs on the draining thread (under the shard's
  /// writer lock).
  void Retire(void* p, std::function<void(void*)> deleter,
              uint64_t retire_epoch);

  /// Free every entry no pinned reader can still see. Returns the number
  /// of entries freed.
  size_t Drain(const EpochManager& mgr);

  /// Free everything unconditionally. Returns the number freed.
  size_t DrainAll();

  size_t pending() const { return items_.size(); }

 private:
  struct Item {
    void* p;
    std::function<void(void*)> deleter;
    uint64_t epoch;
  };

  std::deque<Item> items_;
};

}  // namespace aria::epoch
