// Abstract access to per-KV encryption counters. The redirection layer
// (paper §V-C) maps each KV pair to a counter slot via its RedPtr; the
// stores below differ in *where* counters live and how they are protected:
//
//  * CounterManager (metadata/counter_manager.h): counters in untrusted
//    memory under a Merkle tree, served through Secure Cache — Aria proper.
//  * TrustedCounterStore (core/trusted_counter_store.h): counters in EPC
//    relying on hardware secure paging — the "Aria w/o Cache" baseline.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace aria {

/// Opaque counter handle stored inside each KV record (the RedPtr).
using RedPtr = uint64_t;

class CounterStore {
 public:
  static constexpr size_t kCounterSize = 16;

  virtual ~CounterStore() = default;

  /// Reserve a free counter slot for a new KV pair.
  virtual Result<RedPtr> FetchCounter() = 0;

  /// Return a slot to the free pool (KV pair deleted).
  virtual Status FreeCounter(RedPtr id) = 0;

  /// Read the current (verified) counter value.
  virtual Status ReadCounter(RedPtr id, uint8_t out[kCounterSize]) = 0;

  /// Increment the counter and return the NEW value; called before every
  /// encryption so ciphertexts never reuse a (key, counter) pair.
  virtual Status BumpCounter(RedPtr id, uint8_t out[kCounterSize]) = 0;

  /// Counters currently handed out (diagnostics).
  virtual uint64_t used_counters() const = 0;

  /// True when TryReadCounterLockFree can serve concurrent readers while a
  /// writer (under the shard lock) bumps counters. CounterManager says
  /// false — its read path swaps Secure Cache lines and advances the CLOCK
  /// hand, which is exactly the "read path mutates shared state" case that
  /// forces ShardedStore's optimistic GETs onto the locked fallback.
  virtual bool SupportsLockFreeRead() const { return false; }

  /// Read a counter using only atomic loads (no verification structures
  /// touched, no cache state mutated). The value may be torn against a
  /// concurrent bump at the 8-byte-word level; callers detect that through
  /// the record MAC and retry or fall back. Returns false when unsupported
  /// or `id` is out of range.
  virtual bool TryReadCounterLockFree(RedPtr id,
                                      uint8_t out[kCounterSize]) const {
    (void)id;
    (void)out;
    return false;
  }
};

}  // namespace aria
