#include "core/aria_hash.h"

#include <cstring>

#include "common/fault_injection.h"
#include "common/hash.h"

namespace aria {

AriaHash::AriaHash(sgx::EnclaveRuntime* enclave,
                   UntrustedAllocator* allocator, const RecordCodec* codec,
                   CounterStore* counters, AriaHashConfig config)
    : enclave_(enclave),
      allocator_(allocator),
      codec_(codec),
      counters_(counters),
      config_(config) {}

AriaHash::~AriaHash() {
  if (buckets_ != nullptr) {
    for (uint64_t b = 0; b < config_.num_buckets; ++b) {
      uint8_t* e = buckets_[b];
      while (e != nullptr) {
        uint8_t* next = EntryNext(e);
        allocator_->Free(e).ok();
        e = next;
      }
    }
    allocator_->Free(buckets_).ok();
  }
  if (bucket_counts_ != nullptr) enclave_->TrustedFree(bucket_counts_);
}

Status AriaHash::Init() {
  auto table = allocator_->Alloc(config_.num_buckets * sizeof(uint8_t*));
  if (!table.ok()) return table.status();
  buckets_ = static_cast<uint8_t**>(table.value());
  std::memset(buckets_, 0, config_.num_buckets * sizeof(uint8_t*));

  bucket_counts_ = static_cast<uint32_t*>(
      enclave_->TrustedAlloc(config_.num_buckets * sizeof(uint32_t)));
  if (bucket_counts_ == nullptr) {
    return Status::CapacityExceeded("bucket count allocation");
  }
  return Status::OK();
}

uint64_t AriaHash::trusted_index_bytes() const {
  return config_.num_buckets * sizeof(uint32_t);
}

uint8_t* AriaHash::DebugEntry(Slice key) {
  uint32_t hint = KeyHint(key);
  for (uint8_t* e = LoadCell(&buckets_[BucketOf(key)]); e != nullptr;
       e = EntryNext(e)) {
    if (EntryHint(e) == hint) return e;
  }
  return nullptr;
}

uint64_t AriaHash::BucketOf(Slice key) const {
  return Hash64(key) % config_.num_buckets;
}

Status AriaHash::ResealEntry(uint8_t* entry, uint64_t old_ad,
                             uint64_t new_ad) {
  uint8_t* rec = EntryRecord(entry);
  RecordHeader h = RecordCodec::Peek(rec);
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
  // Verify under the old binding first, so a tampered entry is never blessed
  // with a fresh MAC.
  ARIA_RETURN_IF_ERROR(codec_->Verify(rec, ctr, old_ad));
  codec_->Reseal(rec, ctr, new_ad);
  stats_.reseals++;
  return Status::OK();
}

Status AriaHash::FindEntry(uint64_t b, Slice key, uint8_t*** found_loc,
                           uint8_t** found_entry, std::string* value_out,
                           uint64_t* walked) {
  // On a miss, *found_loc is left pointing at the chain's tail cell so the
  // caller can append there (tail insertion keeps every existing entry's
  // AdField stable — no re-MACs on insert).
  *found_entry = nullptr;
  uint32_t hint = KeyHint(key);
  uint8_t** loc = &buckets_[b];
  uint8_t* e = LoadCell(loc);
  *walked = 0;
  while (e != nullptr) {
    (*walked)++;
    stats_.entries_walked++;
    if (EntryHint(e) == hint) {
      stats_.hint_matches++;
      uint8_t* rec = EntryRecord(e);
      RecordHeader h = RecordCodec::Peek(rec);
      uint8_t ctr[CounterStore::kCounterSize];
      ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
      ARIA_RETURN_IF_ERROR(codec_->Verify(rec, ctr, AdOf(b, loc)));
      codec_->OpenKey(rec, ctr, &key_scratch_);
      if (Slice(key_scratch_) == key) {
        if (value_out != nullptr) codec_->OpenValue(rec, ctr, value_out);
        *found_loc = loc;
        *found_entry = e;
        return Status::OK();
      }
    }
    loc = reinterpret_cast<uint8_t**>(e);  // next cell is at offset 0
    e = LoadCell(loc);
  }
  *found_loc = loc;  // tail cell
  return Status::OK();
}

Status AriaHash::Get(Slice key, std::string* value) {
  uint64_t b = BucketOf(key);
  uint8_t** loc;
  uint8_t* e;
  uint64_t walked;
  ARIA_RETURN_IF_ERROR(FindEntry(b, key, &loc, &e, value, &walked));
  if (e != nullptr) return Status::OK();

  // Miss: use the trusted entry count to detect unauthorized deletion.
  enclave_->TouchRead(&bucket_counts_[b], sizeof(uint32_t));
  if (walked != LoadBucketCount(b)) {
    return Status::IntegrityViolation(
        "bucket entry count mismatch (deletion attack)");
  }
  return Status::NotFound();
}

LockFreeGetResult AriaHash::TryLockFreeGet(Slice key, std::string* value) {
  // Only meaningful when published blocks are immutable and the counter
  // store can serve atomic reads; otherwise the caller must lock. The
  // Secure Cache counter path (Aria proper) reports no lock-free support —
  // its reads swap cache lines and advance the CLOCK hand — which is the
  // "read path genuinely mutates shared state" fallback rule.
  if (!config_.lock_free_reads || buckets_ == nullptr ||
      !counters_->SupportsLockFreeRead()) {
    return LockFreeGetResult::kFallback;
  }
  const uint64_t b = BucketOf(key);
  const uint32_t hint = KeyHint(key);
  // Chains are acyclic at every instant, but a reader racing many writers
  // could observe an abnormally long mixed-epoch walk; a generous cap
  // converts that corner into a locked retry instead of an unbounded loop.
  constexpr uint64_t kMaxWalk = 1 << 16;
  uint64_t walked = 0;
  uint64_t hints_matched = 0;
  std::string candidate;  // stack-local: key_scratch_ belongs to the writer
  LockFreeGetResult result = LockFreeGetResult::kFallback;
  uint8_t** loc = &buckets_[b];
  uint8_t* e = LoadCell(loc);
  while (true) {
    if (e == nullptr) {
      // Miss: the deletion check against the trusted per-bucket count. A
      // mismatch here is *not* a verdict — a concurrent writer may have
      // published an entry before (or after) bumping the count — so it
      // demotes to the locked path, which alone may report violations.
      enclave_->ChargeSharedRead(&bucket_counts_[b], sizeof(uint32_t));
      result = walked == LoadBucketCount(b) ? LockFreeGetResult::kNotFound
                                            : LockFreeGetResult::kFallback;
      break;
    }
    if (++walked > kMaxWalk) break;  // kFallback
    const size_t block_bytes = allocator_->UsableBytesLockFree(e);
    if (block_bytes <= kEntryHeader) break;  // unresolvable without the lock
    if (EntryHint(e) == hint) {
      ++hints_matched;
      const uint8_t* rec = e + kEntryHeader;
      const RecordHeader h = RecordCodec::Peek(rec);
      uint8_t ctr[CounterStore::kCounterSize];
      if (!counters_->TryReadCounterLockFree(h.red_ptr, ctr)) break;
      // A failed MAC check is indistinguishable from racing an in-flight
      // overwrite of this very key (counter bumped, new block not yet
      // published), so it demotes to the locked path rather than walking on.
      if (!codec_->Verify(rec, ctr, b, block_bytes - kEntryHeader).ok()) break;
      codec_->OpenKeyLockFree(rec, ctr, &candidate);
      if (Slice(candidate) == key) {
        codec_->OpenValueLockFree(rec, ctr, value);
        result = LockFreeGetResult::kHit;
        break;
      }
    }
    loc = reinterpret_cast<uint8_t**>(e);
    e = LoadCell(loc);
  }
  lf_entries_walked_.fetch_add(walked, std::memory_order_relaxed);
  lf_hint_matches_.fetch_add(hints_matched, std::memory_order_relaxed);
  return result;
}

Status AriaHash::Put(Slice key, Slice value) {
  if (key.size() > RecordCodec::kMaxKeyLen ||
      value.size() > RecordCodec::kMaxValueLen) {
    return Status::InvalidArgument("key or value too large");
  }
  uint64_t b = BucketOf(key);
  uint8_t** loc;
  uint8_t* e;
  uint64_t walked;
  ARIA_RETURN_IF_ERROR(FindEntry(b, key, &loc, &e, nullptr, &walked));

  size_t sealed = RecordCodec::SealedSize(key.size(), value.size());
  if (e != nullptr) {
    // Overwrite: reuse the existing counter (paper §V-D step 2), bump it so
    // the new ciphertext uses a fresh counter value.
    uint8_t* rec = EntryRecord(e);
    RecordHeader h = RecordCodec::Peek(rec);
    uint8_t ctr[CounterStore::kCounterSize];
    ARIA_RETURN_IF_ERROR(counters_->BumpCounter(h.red_ptr, ctr));

    size_t old_sealed = RecordCodec::SealedSize(h.k_len, h.v_len);
    if (sealed <= old_sealed && !config_.out_of_place_updates &&
        !config_.lock_free_reads) {
      // In-place re-seal: the entry block is large enough. Never taken in
      // lock-free mode — published blocks are immutable there.
      codec_->Seal(h.red_ptr, ctr, key, value, AdOf(b, loc), rec);
      return Status::OK();
    }
    // Relocate to a fresh block (copy-on-write). The counter is already
    // bumped but the old block is still published: a concurrent lock-free
    // reader probing now sees a MAC mismatch and retries or falls back —
    // the window the torn-read battery pins open via this stall point.
    fault::InjectStall(fault::StallPoint::kAriaCounterPublish);
    auto mem = allocator_->Alloc(kEntryHeader + sealed);
    if (!mem.ok()) return mem.status();
    uint8_t* ne = static_cast<uint8_t*>(mem.value());
    uint8_t* next = EntryNext(e);
    SetEntryNext(ne, next);
    SetEntryHint(ne, EntryHint(e));
    codec_->Seal(h.red_ptr, ctr, key, value, AdOf(b, loc), EntryRecord(ne));
    StoreCell(loc, ne);
    if (next != nullptr && !config_.lock_free_reads) {
      // The successor is now pointed at from the new block's next cell.
      // (Lock-free mode binds the bucket index, so relocation never
      // invalidates a successor's MAC.)
      ARIA_RETURN_IF_ERROR(ResealEntry(next, reinterpret_cast<uint64_t>(e),
                                       reinterpret_cast<uint64_t>(ne)));
    }
    ARIA_RETURN_IF_ERROR(ReleaseBlock(e));
    return Status::OK();
  }

  // Fresh insert at the chain tail: `loc` already points at the tail cell
  // after the existence walk, and appending there leaves every existing
  // entry's pointer-cell (and hence AdField binding) untouched.
  auto red = counters_->FetchCounter();
  if (!red.ok()) return red.status();
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->BumpCounter(red.value(), ctr));

  auto mem = allocator_->Alloc(kEntryHeader + sealed);
  if (!mem.ok()) {
    // Return the fetched counter so the fetch/free/used books still balance
    // after a failed insert (record-counter conservation, DESIGN.md §9).
    counters_->FreeCounter(red.value()).ok();
    return mem.status();
  }
  uint8_t* ne = static_cast<uint8_t*>(mem.value());
  SetEntryNext(ne, nullptr);
  SetEntryHint(ne, KeyHint(key));
  codec_->Seal(red.value(), ctr, key, value, AdOf(b, loc), EntryRecord(ne));
  StoreCell(loc, ne);
  enclave_->TouchWrite(&bucket_counts_[b], sizeof(uint32_t));
  StoreBucketCount(b, LoadBucketCount(b) + 1);
  size_++;
  return Status::OK();
}

Status AriaHash::Delete(Slice key) {
  uint64_t b = BucketOf(key);
  uint8_t** loc;
  uint8_t* e;
  uint64_t walked;
  ARIA_RETURN_IF_ERROR(FindEntry(b, key, &loc, &e, nullptr, &walked));
  if (e == nullptr) {
    enclave_->TouchRead(&bucket_counts_[b], sizeof(uint32_t));
    if (walked != LoadBucketCount(b)) {
      return Status::IntegrityViolation(
          "bucket entry count mismatch (deletion attack)");
    }
    return Status::NotFound();
  }
  uint8_t* rec = EntryRecord(e);
  RecordHeader h = RecordCodec::Peek(rec);
  uint8_t* next = EntryNext(e);
  StoreCell(loc, next);
  if (next != nullptr && !config_.lock_free_reads) {
    ARIA_RETURN_IF_ERROR(ResealEntry(next, reinterpret_cast<uint64_t>(e),
                                     reinterpret_cast<uint64_t>(loc)));
  }
  ARIA_RETURN_IF_ERROR(counters_->FreeCounter(h.red_ptr));
  ARIA_RETURN_IF_ERROR(ReleaseBlock(e));
  enclave_->TouchWrite(&bucket_counts_[b], sizeof(uint32_t));
  StoreBucketCount(b, LoadBucketCount(b) - 1);
  size_--;
  return Status::OK();
}

void AriaHash::CollectMetrics(obs::MetricSink* sink) const {
  sink->Counter("entries_walked",
                stats_.entries_walked +
                    lf_entries_walked_.load(std::memory_order_relaxed));
  sink->Counter("hint_matches",
                stats_.hint_matches +
                    lf_hint_matches_.load(std::memory_order_relaxed));
  sink->Counter("reseals", stats_.reseals);
  sink->Gauge("buckets", config_.num_buckets);
  sink->Gauge("trusted_index_bytes", trusted_index_bytes());
  sink->Gauge("live_entries", size_);
}

}  // namespace aria
