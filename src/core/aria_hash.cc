#include "core/aria_hash.h"

#include <cstring>

#include "common/hash.h"

namespace aria {

AriaHash::AriaHash(sgx::EnclaveRuntime* enclave,
                   UntrustedAllocator* allocator, const RecordCodec* codec,
                   CounterStore* counters, AriaHashConfig config)
    : enclave_(enclave),
      allocator_(allocator),
      codec_(codec),
      counters_(counters),
      config_(config) {}

AriaHash::~AriaHash() {
  if (buckets_ != nullptr) {
    for (uint64_t b = 0; b < config_.num_buckets; ++b) {
      uint8_t* e = buckets_[b];
      while (e != nullptr) {
        uint8_t* next = EntryNext(e);
        allocator_->Free(e).ok();
        e = next;
      }
    }
    allocator_->Free(buckets_).ok();
  }
  if (bucket_counts_ != nullptr) enclave_->TrustedFree(bucket_counts_);
}

Status AriaHash::Init() {
  auto table = allocator_->Alloc(config_.num_buckets * sizeof(uint8_t*));
  if (!table.ok()) return table.status();
  buckets_ = static_cast<uint8_t**>(table.value());
  std::memset(buckets_, 0, config_.num_buckets * sizeof(uint8_t*));

  bucket_counts_ = static_cast<uint32_t*>(
      enclave_->TrustedAlloc(config_.num_buckets * sizeof(uint32_t)));
  if (bucket_counts_ == nullptr) {
    return Status::CapacityExceeded("bucket count allocation");
  }
  return Status::OK();
}

uint64_t AriaHash::trusted_index_bytes() const {
  return config_.num_buckets * sizeof(uint32_t);
}

uint8_t* AriaHash::DebugEntry(Slice key) {
  uint32_t hint = KeyHint(key);
  for (uint8_t* e = buckets_[BucketOf(key)]; e != nullptr; e = EntryNext(e)) {
    if (EntryHint(e) == hint) return e;
  }
  return nullptr;
}

uint64_t AriaHash::BucketOf(Slice key) const {
  return Hash64(key) % config_.num_buckets;
}

Status AriaHash::ResealEntry(uint8_t* entry, uint64_t old_ad,
                             uint64_t new_ad) {
  uint8_t* rec = EntryRecord(entry);
  RecordHeader h = RecordCodec::Peek(rec);
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
  // Verify under the old binding first, so a tampered entry is never blessed
  // with a fresh MAC.
  ARIA_RETURN_IF_ERROR(codec_->Verify(rec, ctr, old_ad));
  codec_->Reseal(rec, ctr, new_ad);
  stats_.reseals++;
  return Status::OK();
}

Status AriaHash::FindEntry(uint64_t b, Slice key, uint8_t*** found_loc,
                           uint8_t** found_entry, std::string* value_out,
                           uint64_t* walked) {
  // On a miss, *found_loc is left pointing at the chain's tail cell so the
  // caller can append there (tail insertion keeps every existing entry's
  // AdField stable — no re-MACs on insert).
  *found_entry = nullptr;
  uint32_t hint = KeyHint(key);
  uint8_t** loc = &buckets_[b];
  uint8_t* e = *loc;
  *walked = 0;
  while (e != nullptr) {
    (*walked)++;
    stats_.entries_walked++;
    if (EntryHint(e) == hint) {
      stats_.hint_matches++;
      uint8_t* rec = EntryRecord(e);
      RecordHeader h = RecordCodec::Peek(rec);
      uint8_t ctr[CounterStore::kCounterSize];
      ARIA_RETURN_IF_ERROR(counters_->ReadCounter(h.red_ptr, ctr));
      ARIA_RETURN_IF_ERROR(
          codec_->Verify(rec, ctr, reinterpret_cast<uint64_t>(loc)));
      codec_->OpenKey(rec, ctr, &key_scratch_);
      if (Slice(key_scratch_) == key) {
        if (value_out != nullptr) codec_->OpenValue(rec, ctr, value_out);
        *found_loc = loc;
        *found_entry = e;
        return Status::OK();
      }
    }
    loc = reinterpret_cast<uint8_t**>(e);  // next cell is at offset 0
    e = *loc;
  }
  *found_loc = loc;  // tail cell
  return Status::OK();
}

Status AriaHash::Get(Slice key, std::string* value) {
  uint64_t b = BucketOf(key);
  uint8_t** loc;
  uint8_t* e;
  uint64_t walked;
  ARIA_RETURN_IF_ERROR(FindEntry(b, key, &loc, &e, value, &walked));
  if (e != nullptr) return Status::OK();

  // Miss: use the trusted entry count to detect unauthorized deletion.
  enclave_->TouchRead(&bucket_counts_[b], sizeof(uint32_t));
  if (walked != bucket_counts_[b]) {
    return Status::IntegrityViolation(
        "bucket entry count mismatch (deletion attack)");
  }
  return Status::NotFound();
}

Status AriaHash::Put(Slice key, Slice value) {
  if (key.size() > RecordCodec::kMaxKeyLen ||
      value.size() > RecordCodec::kMaxValueLen) {
    return Status::InvalidArgument("key or value too large");
  }
  uint64_t b = BucketOf(key);
  uint8_t** loc;
  uint8_t* e;
  uint64_t walked;
  ARIA_RETURN_IF_ERROR(FindEntry(b, key, &loc, &e, nullptr, &walked));

  size_t sealed = RecordCodec::SealedSize(key.size(), value.size());
  if (e != nullptr) {
    // Overwrite: reuse the existing counter (paper §V-D step 2), bump it so
    // the new ciphertext uses a fresh counter value.
    uint8_t* rec = EntryRecord(e);
    RecordHeader h = RecordCodec::Peek(rec);
    uint8_t ctr[CounterStore::kCounterSize];
    ARIA_RETURN_IF_ERROR(counters_->BumpCounter(h.red_ptr, ctr));

    size_t old_sealed = RecordCodec::SealedSize(h.k_len, h.v_len);
    if (sealed <= old_sealed && !config_.out_of_place_updates) {
      // In-place re-seal: the entry block is large enough.
      codec_->Seal(h.red_ptr, ctr, key, value,
                   reinterpret_cast<uint64_t>(loc), rec);
      return Status::OK();
    }
    // Relocate to a bigger block.
    auto mem = allocator_->Alloc(kEntryHeader + sealed);
    if (!mem.ok()) return mem.status();
    uint8_t* ne = static_cast<uint8_t*>(mem.value());
    uint8_t* next = EntryNext(e);
    SetEntryNext(ne, next);
    SetEntryHint(ne, EntryHint(e));
    codec_->Seal(h.red_ptr, ctr, key, value, reinterpret_cast<uint64_t>(loc),
                 EntryRecord(ne));
    *loc = ne;
    if (next != nullptr) {
      // The successor is now pointed at from the new block's next cell.
      ARIA_RETURN_IF_ERROR(ResealEntry(next, reinterpret_cast<uint64_t>(e),
                                       reinterpret_cast<uint64_t>(ne)));
    }
    ARIA_RETURN_IF_ERROR(allocator_->Free(e));
    return Status::OK();
  }

  // Fresh insert at the chain tail: `loc` already points at the tail cell
  // after the existence walk, and appending there leaves every existing
  // entry's pointer-cell (and hence AdField binding) untouched.
  auto red = counters_->FetchCounter();
  if (!red.ok()) return red.status();
  uint8_t ctr[CounterStore::kCounterSize];
  ARIA_RETURN_IF_ERROR(counters_->BumpCounter(red.value(), ctr));

  auto mem = allocator_->Alloc(kEntryHeader + sealed);
  if (!mem.ok()) {
    // Return the fetched counter so the fetch/free/used books still balance
    // after a failed insert (record-counter conservation, DESIGN.md §9).
    counters_->FreeCounter(red.value()).ok();
    return mem.status();
  }
  uint8_t* ne = static_cast<uint8_t*>(mem.value());
  SetEntryNext(ne, nullptr);
  SetEntryHint(ne, KeyHint(key));
  codec_->Seal(red.value(), ctr, key, value, reinterpret_cast<uint64_t>(loc),
               EntryRecord(ne));
  *loc = ne;
  enclave_->TouchWrite(&bucket_counts_[b], sizeof(uint32_t));
  bucket_counts_[b]++;
  size_++;
  return Status::OK();
}

Status AriaHash::Delete(Slice key) {
  uint64_t b = BucketOf(key);
  uint8_t** loc;
  uint8_t* e;
  uint64_t walked;
  ARIA_RETURN_IF_ERROR(FindEntry(b, key, &loc, &e, nullptr, &walked));
  if (e == nullptr) {
    enclave_->TouchRead(&bucket_counts_[b], sizeof(uint32_t));
    if (walked != bucket_counts_[b]) {
      return Status::IntegrityViolation(
          "bucket entry count mismatch (deletion attack)");
    }
    return Status::NotFound();
  }
  uint8_t* rec = EntryRecord(e);
  RecordHeader h = RecordCodec::Peek(rec);
  uint8_t* next = EntryNext(e);
  *loc = next;
  if (next != nullptr) {
    ARIA_RETURN_IF_ERROR(ResealEntry(next, reinterpret_cast<uint64_t>(e),
                                     reinterpret_cast<uint64_t>(loc)));
  }
  ARIA_RETURN_IF_ERROR(counters_->FreeCounter(h.red_ptr));
  ARIA_RETURN_IF_ERROR(allocator_->Free(e));
  enclave_->TouchWrite(&bucket_counts_[b], sizeof(uint32_t));
  bucket_counts_[b]--;
  size_--;
  return Status::OK();
}

void AriaHash::CollectMetrics(obs::MetricSink* sink) const {
  sink->Counter("entries_walked", stats_.entries_walked);
  sink->Counter("hint_matches", stats_.hint_matches);
  sink->Counter("reseals", stats_.reseals);
  sink->Gauge("buckets", config_.num_buckets);
  sink->Gauge("trusted_index_bytes", trusted_index_bytes());
  sink->Gauge("live_entries", size_);
}

}  // namespace aria
