// "Aria w/o Cache" counter store (paper §III, Fig. 1b): ALL encryption
// counters live inside the enclave as one flat array. There is no Merkle
// tree — the counters are trusted because SGX protects them — but once the
// array outgrows the EPC, every cold access triggers hardware secure paging
// at 4 KB granularity, which the enclave runtime models.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/counter_store.h"
#include "crypto/secure_random.h"
#include "obs/metrics.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

class TrustedCounterStore : public CounterStore, public obs::Observable {
 public:
  TrustedCounterStore(sgx::EnclaveRuntime* enclave,
                      crypto::SecureRandom* rng, uint64_t capacity);
  ~TrustedCounterStore() override;

  Status Init();

  Result<RedPtr> FetchCounter() override;
  Status FreeCounter(RedPtr id) override;
  Status ReadCounter(RedPtr id, uint8_t out[kCounterSize]) override;
  Status BumpCounter(RedPtr id, uint8_t out[kCounterSize]) override;
  uint64_t used_counters() const override { return used_; }

  /// Counters are a flat trusted array with no cache or tree to maintain,
  /// so a read is just two 8-byte atomic loads — the property that lets
  /// "Aria w/o Cache" serve ShardedStore's lock-free GET path (Aria proper
  /// cannot: its counter reads go through Secure Cache). A read racing a
  /// bump may tear at the word boundary; the record MAC catches that and
  /// the reader retries or falls back.
  bool SupportsLockFreeRead() const override { return true; }
  bool TryReadCounterLockFree(RedPtr id,
                              uint8_t out[kCounterSize]) const override;

  uint64_t trusted_bytes() const;

  /// Same fetch/free/used vocabulary as CounterManager so the record-counter
  /// conservation law reads one "cm." namespace for every scheme.
  void CollectMetrics(obs::MetricSink* sink) const override;

 private:
  sgx::EnclaveRuntime* enclave_;
  crypto::SecureRandom* rng_;
  uint64_t capacity_;
  uint8_t* counters_ = nullptr;   // trusted, capacity * 16 bytes
  uint64_t* bitmap_ = nullptr;    // trusted occupation bitmap
  uint64_t bitmap_words_ = 0;
  std::vector<uint64_t> free_list_;  // trusted free slots
  uint64_t next_unused_ = 0;
  uint64_t used_ = 0;
  uint64_t fetches_ = 0;
  uint64_t frees_ = 0;
  uint64_t reads_ = 0;
  uint64_t bumps_ = 0;
  // Bumped by concurrent lock-free readers; folded into "reads" when
  // reporting so the counter metrics stay one vocabulary.
  mutable std::atomic<uint64_t> lockfree_reads_{0};
};

}  // namespace aria
