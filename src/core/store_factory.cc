#include "core/store_factory.h"

#include "core/sharded_store.h"

namespace aria {

namespace {

uint64_t RoundUp(uint64_t v, uint64_t to) { return (v + to - 1) / to * to; }

// Default bucket count, mirroring the paper's setup: 0.4 buckets per key
// (ShieldStore's 4M roots = 64 MB EPC at 10M keyspace), capped at 4M so
// the per-bucket trusted metadata (Aria's entry counts / ShieldStore's
// roots) never outgrows the EPC — beyond the cap, chains simply lengthen,
// exactly the amplification Fig. 13 measures.
uint64_t DefaultBuckets(uint64_t keyspace) {
  uint64_t b = keyspace * 2 / 5;
  if (b < 1024) b = 1024;
  if (b > (4ull << 20)) b = 4ull << 20;
  return b;
}

uint64_t DefaultShieldBuckets(uint64_t keyspace) {
  return DefaultBuckets(keyspace);
}

}  // namespace

Status CreateStore(const StoreOptions& options, StoreBundle* out) {
  if (options.num_shards > 1) {
    // The sharded front-end recursively builds one single-shard bundle per
    // shard; the outer bundle only carries the combined store and label.
    std::unique_ptr<ShardedStore> sharded;
    ARIA_RETURN_IF_ERROR(ShardedStore::Create(options, &sharded));
    out->label = sharded->name();
    out->store = std::move(sharded);
    return Status::OK();
  }

  out->enclave = std::make_unique<sgx::EnclaveRuntime>(
      options.epc_budget_bytes, options.cost_model);
  out->rng = std::make_unique<crypto::SecureRandom>(options.seed);

  uint8_t enc_key[16];
  uint8_t mac_key[16];
  out->rng->Fill(enc_key, sizeof(enc_key));
  out->rng->Fill(mac_key, sizeof(mac_key));
  out->aes = std::make_unique<crypto::Aes128>(enc_key);
  auto mac_aes = std::make_unique<crypto::Aes128>(mac_key);
  out->cmac = std::make_unique<crypto::Cmac128>(*mac_aes);
  out->aes_mac_holder = std::move(mac_aes);  // Cmac128 holds a reference

  if (options.use_heap_allocator) {
    out->allocator = std::make_unique<HeapAllocator>(out->enclave.get());
  } else {
    out->allocator = std::make_unique<OcallAllocator>(out->enclave.get());
  }
  out->codec = std::make_unique<RecordCodec>(out->enclave.get(),
                                             out->aes.get(), out->cmac.get(),
                                             out->allocator.get());

  const uint64_t keyspace = options.keyspace;
  switch (options.scheme) {
    case Scheme::kBaseline: {
      if (options.index == IndexKind::kHash) {
        EnclaveKVConfig cfg;
        cfg.num_buckets = options.num_buckets != 0 ? options.num_buckets
                                                   : DefaultBuckets(keyspace);
        auto store = std::make_unique<EnclaveKV>(out->enclave.get(), cfg);
        ARIA_RETURN_IF_ERROR(store->Init());
        out->store = std::move(store);
        out->label = "Baseline";
      } else {
        out->store = std::make_unique<EnclaveBTree>(out->enclave.get());
        out->label = "Baseline-T";
      }
      return Status::OK();
    }

    case Scheme::kShieldStore: {
      if (options.index != IndexKind::kHash) {
        return Status::InvalidArgument(
            "ShieldStore only supports a hash index");
      }
      ShieldStoreConfig cfg;
      cfg.out_of_place_updates = options.out_of_place_updates;
      cfg.num_buckets = options.shieldstore_buckets != 0
                            ? options.shieldstore_buckets
                            : DefaultShieldBuckets(keyspace);
      auto store = std::make_unique<ShieldStore>(
          out->enclave.get(), out->allocator.get(), out->aes.get(),
          out->cmac.get(), out->rng.get(), cfg);
      ARIA_RETURN_IF_ERROR(store->Init());
      out->store = std::move(store);
      out->label = "ShieldStore";
      return Status::OK();
    }

    case Scheme::kAriaNoCache: {
      auto counters = std::make_unique<TrustedCounterStore>(
          out->enclave.get(), out->rng.get(), keyspace + 1024);
      ARIA_RETURN_IF_ERROR(counters->Init());
      out->counters = std::move(counters);
      out->label = options.index == IndexKind::kHash ? "Aria-H w/o Cache"
                                                     : "Aria-T w/o Cache";
      if (options.index == IndexKind::kBPlusTree) {
        out->label = "Aria-B+ w/o Cache";
      } else if (options.index == IndexKind::kCuckoo) {
        out->label = "Aria-C w/o Cache";
      }
      break;
    }

    case Scheme::kAria: {
      CounterManagerConfig cfg;
      // 12.5% headroom over the expected keyspace, so filling it exactly
      // stays below the background-reservation threshold (90%) and a spare
      // Merkle tree is only prepared when growth genuinely continues.
      cfg.counters_per_tree =
          RoundUp(keyspace < 1024 ? 1024 : keyspace * 9 / 8, options.arity);
      cfg.arity = options.arity;
      cfg.cache.policy = options.policy;
      cfg.cache.pinned_levels = options.pinned_levels;
      cfg.cache.stop_swap_enabled = options.stop_swap_enabled;
      cfg.cache.start_stopped = options.start_stopped;
      cfg.cache.avoid_clean_writeback = options.avoid_clean_writeback;
      if (options.cache_bytes != 0) {
        cfg.cache.capacity_bytes = options.cache_bytes;
      } else {
        // Auto: everything the EPC budget leaves after the trusted index
        // metadata (bucket counts), the counter bitmap and working slack.
        uint64_t buckets = options.num_buckets != 0
                               ? options.num_buckets
                               : DefaultBuckets(keyspace);
        uint64_t slack = options.epc_budget_bytes / 50;  // 2% working slack
        if (slack < 256 * 1024) slack = 256 * 1024;
        uint64_t reserved = buckets * sizeof(uint32_t) +  // bucket counts
                            cfg.counters_per_tree / 8 +    // counter bitmap
                            slack;
        cfg.cache.capacity_bytes = options.epc_budget_bytes > reserved + (64 << 10)
                                       ? options.epc_budget_bytes - reserved
                                       : 64ull * 1024;
      }
      cfg.growth_cache = cfg.cache;
      cfg.growth_cache.capacity_bytes = 4ull * 1024 * 1024;
      auto counters = std::make_unique<CounterManager>(
          out->enclave.get(), out->allocator.get(), out->cmac.get(),
          out->rng.get(), cfg);
      ARIA_RETURN_IF_ERROR(counters->Init());
      out->counters = std::move(counters);
      out->label = options.index == IndexKind::kHash ? "Aria-H" : "Aria-T";
      if (options.index == IndexKind::kBPlusTree) out->label = "Aria-B+";
      if (options.index == IndexKind::kCuckoo) out->label = "Aria-C";
      break;
    }
  }

  // Aria / Aria w/o Cache share the index implementations.
  if (options.index == IndexKind::kBPlusTree) {
    out->store = std::make_unique<AriaBPlusTree>(
        out->enclave.get(), out->allocator.get(), out->codec.get(),
        out->counters.get());
  } else if (options.index == IndexKind::kCuckoo) {
    AriaCuckooConfig cfg;
    // 4 slots/bucket at ~60% load factor.
    cfg.num_buckets = options.num_buckets != 0
                          ? options.num_buckets
                          : (keyspace * 10 / 24 < 1024 ? 1024
                                                       : keyspace * 10 / 24);
    auto store = std::make_unique<AriaCuckoo>(
        out->enclave.get(), out->allocator.get(), out->codec.get(),
        out->counters.get(), cfg);
    ARIA_RETURN_IF_ERROR(store->Init());
    out->store = std::move(store);
  } else if (options.index == IndexKind::kHash) {
    AriaHashConfig cfg;
    cfg.out_of_place_updates = options.out_of_place_updates;
    cfg.num_buckets = options.num_buckets != 0 ? options.num_buckets
                                               : DefaultBuckets(keyspace);
    auto store = std::make_unique<AriaHash>(
        out->enclave.get(), out->allocator.get(), out->codec.get(),
        out->counters.get(), cfg);
    ARIA_RETURN_IF_ERROR(store->Init());
    out->store = std::move(store);
  } else {
    out->store = std::make_unique<AriaBTree>(
        out->enclave.get(), out->allocator.get(), out->codec.get(),
        out->counters.get());
  }
  return Status::OK();
}

}  // namespace aria
