#include "core/store_factory.h"

#include "core/sharded_store.h"

namespace aria {

namespace {

uint64_t RoundUp(uint64_t v, uint64_t to) { return (v + to - 1) / to * to; }

// Default bucket count, mirroring the paper's setup: 0.4 buckets per key
// (ShieldStore's 4M roots = 64 MB EPC at 10M keyspace), capped at 4M so
// the per-bucket trusted metadata (Aria's entry counts / ShieldStore's
// roots) never outgrows the EPC — beyond the cap, chains simply lengthen,
// exactly the amplification Fig. 13 measures.
uint64_t DefaultBuckets(uint64_t keyspace) {
  uint64_t b = keyspace * 2 / 5;
  if (b < 1024) b = 1024;
  if (b > (4ull << 20)) b = 4ull << 20;
  return b;
}

uint64_t DefaultShieldBuckets(uint64_t keyspace) {
  return DefaultBuckets(keyspace);
}

}  // namespace

Status CreateStore(const StoreOptions& options, StoreBundle* out) {
  out->options = options;
  if (options.num_shards > 1) {
    // The sharded front-end recursively builds one single-shard bundle per
    // shard; the outer bundle only carries the combined store and label.
    std::unique_ptr<ShardedStore> sharded;
    ARIA_RETURN_IF_ERROR(ShardedStore::Create(options, &sharded));
    out->label = sharded->name();
    out->store = std::move(sharded);
    return Status::OK();
  }

  out->enclave = std::make_unique<sgx::EnclaveRuntime>(
      options.epc_budget_bytes, options.cost_model);
  out->rng = std::make_unique<crypto::SecureRandom>(options.seed);

  uint8_t enc_key[16];
  uint8_t mac_key[16];
  out->rng->Fill(enc_key, sizeof(enc_key));
  out->rng->Fill(mac_key, sizeof(mac_key));
  out->aes = std::make_unique<crypto::Aes128>(enc_key);
  auto mac_aes = std::make_unique<crypto::Aes128>(mac_key);
  out->cmac = std::make_unique<crypto::Cmac128>(*mac_aes);
  out->aes_mac_holder = std::move(mac_aes);  // Cmac128 holds a reference

  if (options.use_heap_allocator) {
    out->allocator = std::make_unique<HeapAllocator>(out->enclave.get());
  } else {
    out->allocator = std::make_unique<OcallAllocator>(out->enclave.get());
  }
  out->codec = std::make_unique<RecordCodec>(out->enclave.get(),
                                             out->aes.get(), out->cmac.get(),
                                             out->allocator.get());

  // Per-component allocator views: everything untrusted the index or the
  // counter layer allocates flows through its view, so the allocator-
  // conservation law can decompose the global bytes_in_use (the codec only
  // reads allocation bounds, it never allocates).
  auto index_mem_owner =
      std::make_unique<obs::TrackedAllocator>(out->allocator.get());
  auto cm_mem_owner =
      std::make_unique<obs::TrackedAllocator>(out->allocator.get());
  obs::TrackedAllocator* index_mem = index_mem_owner.get();
  obs::TrackedAllocator* cm_mem = cm_mem_owner.get();
  out->tracked_allocators.push_back(std::move(index_mem_owner));
  out->tracked_allocators.push_back(std::move(cm_mem_owner));

  const uint64_t keyspace = options.keyspace;
  switch (options.scheme) {
    case Scheme::kBaseline: {
      if (options.index == IndexKind::kHash) {
        EnclaveKVConfig cfg;
        cfg.lock_free_reads = options.read_mode == ReadMode::kOptimistic;
        cfg.num_buckets = options.num_buckets != 0 ? options.num_buckets
                                                   : DefaultBuckets(keyspace);
        auto store = std::make_unique<EnclaveKV>(out->enclave.get(), cfg);
        ARIA_RETURN_IF_ERROR(store->Init());
        out->store = std::move(store);
        out->label = "Baseline";
      } else {
        out->store = std::make_unique<EnclaveBTree>(out->enclave.get());
        out->label = "Baseline-T";
      }
      break;
    }

    case Scheme::kShieldStore: {
      if (options.index != IndexKind::kHash) {
        return Status::InvalidArgument(
            "ShieldStore only supports a hash index");
      }
      ShieldStoreConfig cfg;
      cfg.out_of_place_updates = options.out_of_place_updates;
      cfg.num_buckets = options.shieldstore_buckets != 0
                            ? options.shieldstore_buckets
                            : DefaultShieldBuckets(keyspace);
      auto store = std::make_unique<ShieldStore>(
          out->enclave.get(), index_mem, out->aes.get(),
          out->cmac.get(), out->rng.get(), cfg);
      ARIA_RETURN_IF_ERROR(store->Init());
      out->store = std::move(store);
      out->label = "ShieldStore";
      break;
    }

    case Scheme::kAriaNoCache: {
      auto counters = std::make_unique<TrustedCounterStore>(
          out->enclave.get(), out->rng.get(), keyspace + 1024);
      ARIA_RETURN_IF_ERROR(counters->Init());
      out->counters = std::move(counters);
      out->label = options.index == IndexKind::kHash ? "Aria-H w/o Cache"
                                                     : "Aria-T w/o Cache";
      if (options.index == IndexKind::kBPlusTree) {
        out->label = "Aria-B+ w/o Cache";
      } else if (options.index == IndexKind::kCuckoo) {
        out->label = "Aria-C w/o Cache";
      }
      break;
    }

    case Scheme::kAria: {
      CounterManagerConfig cfg;
      // 12.5% headroom over the expected keyspace, so filling it exactly
      // stays below the background-reservation threshold (90%) and a spare
      // Merkle tree is only prepared when growth genuinely continues.
      cfg.counters_per_tree =
          RoundUp(keyspace < 1024 ? 1024 : keyspace * 9 / 8, options.arity);
      cfg.arity = options.arity;
      cfg.cache.policy = options.policy;
      cfg.cache.pinned_levels = options.pinned_levels;
      cfg.cache.stop_swap_enabled = options.stop_swap_enabled;
      cfg.cache.start_stopped = options.start_stopped;
      cfg.cache.avoid_clean_writeback = options.avoid_clean_writeback;
      if (options.cache_bytes != 0) {
        cfg.cache.capacity_bytes = options.cache_bytes;
      } else {
        // Auto: everything the EPC budget leaves after the trusted index
        // metadata (bucket counts), the counter bitmap and working slack.
        uint64_t buckets = options.num_buckets != 0
                               ? options.num_buckets
                               : DefaultBuckets(keyspace);
        uint64_t slack = options.epc_budget_bytes / 50;  // 2% working slack
        if (slack < 256 * 1024) slack = 256 * 1024;
        uint64_t reserved = buckets * sizeof(uint32_t) +  // bucket counts
                            cfg.counters_per_tree / 8 +    // counter bitmap
                            slack;
        cfg.cache.capacity_bytes = options.epc_budget_bytes > reserved + (64 << 10)
                                       ? options.epc_budget_bytes - reserved
                                       : 64ull * 1024;
      }
      cfg.growth_cache = cfg.cache;
      cfg.growth_cache.capacity_bytes = 4ull * 1024 * 1024;
      auto counters = std::make_unique<CounterManager>(
          out->enclave.get(), cm_mem, out->cmac.get(),
          out->rng.get(), cfg);
      ARIA_RETURN_IF_ERROR(counters->Init());
      out->counters = std::move(counters);
      out->label = options.index == IndexKind::kHash ? "Aria-H" : "Aria-T";
      if (options.index == IndexKind::kBPlusTree) out->label = "Aria-B+";
      if (options.index == IndexKind::kCuckoo) out->label = "Aria-C";
      break;
    }
  }

  // Aria / Aria w/o Cache share the index implementations (the Baseline /
  // ShieldStore branches built their store inside the switch).
  if (out->store == nullptr) {
    if (options.index == IndexKind::kBPlusTree) {
      out->store = std::make_unique<AriaBPlusTree>(
          out->enclave.get(), index_mem, out->codec.get(),
          out->counters.get());
    } else if (options.index == IndexKind::kCuckoo) {
      AriaCuckooConfig cfg;
      // 4 slots/bucket at ~60% load factor.
      cfg.num_buckets = options.num_buckets != 0
                            ? options.num_buckets
                            : (keyspace * 10 / 24 < 1024 ? 1024
                                                         : keyspace * 10 / 24);
      auto store = std::make_unique<AriaCuckoo>(
          out->enclave.get(), index_mem, out->codec.get(),
          out->counters.get(), cfg);
      ARIA_RETURN_IF_ERROR(store->Init());
      out->store = std::move(store);
    } else if (options.index == IndexKind::kHash) {
      AriaHashConfig cfg;
      // Optimistic mode needs the lock-free layout even when the counter
      // store ends up declining lock-free reads (Aria proper with the
      // Secure Cache): the writer-side discipline (CoW overwrites, retire
      // hooks) must match what a fallback-only reader assumes.
      cfg.lock_free_reads = options.read_mode == ReadMode::kOptimistic;
      cfg.out_of_place_updates = options.out_of_place_updates;
      cfg.num_buckets = options.num_buckets != 0 ? options.num_buckets
                                                 : DefaultBuckets(keyspace);
      auto store = std::make_unique<AriaHash>(
          out->enclave.get(), index_mem, out->codec.get(),
          out->counters.get(), cfg);
      ARIA_RETURN_IF_ERROR(store->Init());
      out->store = std::move(store);
    } else {
      out->store = std::make_unique<AriaBTree>(
          out->enclave.get(), index_mem, out->codec.get(),
          out->counters.get());
    }
  }

  // Observability: one registry entry per layer. The counter store (either
  // implementation) appears under "cm" so the record-counter law reads a
  // single namespace for every scheme.
  out->registry.Register("sgx", out->enclave.get());
  out->registry.Register("alloc", out->allocator.get());
  if (out->counters != nullptr) {
    out->registry.Register(
        "cm", dynamic_cast<const obs::Observable*>(out->counters.get()));
  }
  out->registry.Register("index", out->store.get());
  out->registry.Register("index.mem", index_mem);
  out->registry.Register("cm.mem", cm_mem);
  return Status::OK();
}

obs::Snapshot StoreBundle::Metrics() const {
  if (auto* sharded = dynamic_cast<ShardedStore*>(store.get())) {
    obs::Snapshot total;
    for (uint32_t i = 0; i < sharded->num_shards(); ++i) {
      total.Accumulate(sharded->ShardSnapshot(i));
    }
    // A sharded bundle's own registry holds only store-external layers
    // (e.g. the network server registered under "net"); fold them in.
    if (!registry.empty()) total.Accumulate(registry.Collect());
    return total;
  }
  return registry.Collect();
}

obs::InvariantReport StoreBundle::CheckInvariants() const {
  if (auto* sharded = dynamic_cast<ShardedStore*>(store.get())) {
    obs::InvariantReport report = sharded->CheckInvariants();
    // Store-external layers (the network server registers under "net",
    // the load generator under "loadgen") live in the bundle-level
    // registry; reconcile their per-instance counters against the
    // aggregates they emit.
    if (!registry.empty()) {
      obs::Snapshot external = registry.Collect();
      obs::InvariantChecker::CheckLoopSums(external, &report);
      obs::InvariantChecker::CheckLoadgen(external, &report);
    }
    return report;
  }
  obs::InvariantContext ctx;
  ctx.has_secure_cache = options.scheme == Scheme::kAria;
  ctx.has_counter_store = options.scheme == Scheme::kAria ||
                          options.scheme == Scheme::kAriaNoCache;
  ctx.counters_match_entries = options.index != IndexKind::kBPlusTree;
  ctx.avoid_clean_writeback = options.avoid_clean_writeback;
  ctx.cost_model_enabled = options.cost_model.enabled;
  obs::Snapshot snap = registry.Collect();
  obs::InvariantReport report = obs::InvariantChecker(ctx).Check(snap);
  obs::InvariantChecker::CheckLoopSums(snap, &report);
  obs::InvariantChecker::CheckLoadgen(snap, &report);
  return report;
}

}  // namespace aria
