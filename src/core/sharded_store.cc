#include "core/sharded_store.h"

#include <mutex>
#include <utility>

#include "common/fault_injection.h"
#include "common/hash.h"

namespace aria {

namespace {

// Distinct from the bucket hash (seed 0) and the key-hint hash: a shard
// modulus correlated with the in-shard bucket modulus would leave every
// shard populating only 1/N of its buckets.
constexpr uint64_t kShardHashSeed = 0x5A17ED0DULL;

// Retired records tolerated on a shard before EndShardWrite drains the
// list. Small enough to bound deferred memory, large enough that a burst
// of overwrites amortizes the epoch scan.
constexpr size_t kDrainBatch = 16;

uint64_t Divided(uint64_t total, uint32_t n, uint64_t floor) {
  uint64_t per = total / n;
  return per < floor ? floor : per;
}

}  // namespace

Status ShardedStore::Create(const StoreOptions& base,
                            std::unique_ptr<ShardedStore>* out) {
  if (base.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (base.shard_shared_reads &&
      !(base.scheme == Scheme::kBaseline && base.index == IndexKind::kHash &&
        !base.cost_model.enabled)) {
    // Every SGX-simulated read path mutates shared state (Secure Cache
    // swap-ins, CLOCK paging, stats); shared-mode reads are only sound
    // where Get is genuinely const.
    return Status::InvalidArgument(
        "shard_shared_reads requires a const read path "
        "(Baseline hash with the cost model disabled)");
  }
  if (base.shard_shared_reads && base.read_mode == ReadMode::kOptimistic) {
    // Both options answer "how do reads avoid the exclusive lock"; the
    // optimistic path's fallback assumes the exclusive-lock discipline.
    return Status::InvalidArgument(
        "shard_shared_reads and ReadMode::kOptimistic are mutually "
        "exclusive");
  }

  const uint32_t n = base.num_shards;
  auto sharded = std::unique_ptr<ShardedStore>(new ShardedStore());
  sharded->shared_reads_ = base.shard_shared_reads;
  sharded->read_mode_ = base.read_mode;
  sharded->max_retries_ = base.optimistic_max_retries;
  for (uint32_t i = 0; i < n; ++i) {
    StoreOptions opts = base;
    opts.num_shards = 1;
    opts.shard_shared_reads = false;
    // Split the sizing budgets across shards, with floors so tiny test
    // configurations still construct.
    opts.keyspace = Divided(base.keyspace + n - 1, n, 1024);
    opts.epc_budget_bytes = Divided(base.epc_budget_bytes, n, 1ull << 20);
    if (base.cache_bytes != 0) {
      opts.cache_bytes = Divided(base.cache_bytes, n, 4096);
    }
    if (base.num_buckets != 0) {
      opts.num_buckets = Divided(base.num_buckets, n, 64);
    }
    if (base.shieldstore_buckets != 0) {
      opts.shieldstore_buckets = Divided(base.shieldstore_buckets, n, 64);
    }
    // Decorrelate per-shard key material and RNG streams.
    opts.seed = base.seed + 0x9E3779B97F4A7C15ull * (i + 1);

    auto shard = std::make_unique<Shard>();
    ARIA_RETURN_IF_ERROR(CreateStore(opts, &shard->bundle));
    shard->ordered = dynamic_cast<OrderedKVStore*>(shard->bundle.store.get());
    if (base.read_mode == ReadMode::kOptimistic) {
      // Writers hand displaced records here instead of freeing them in
      // place. The hook runs on the writer, under this shard's exclusive
      // lock (RetireList is not thread-safe), after the record was
      // unlinked from the index — so AdvanceAfterRetire() tags it with an
      // epoch no reader that can still reach it will ever be pinned past.
      KVStore* raw = shard->bundle.store.get();
      Shard* sp = shard.get();
      epoch::EpochManager* mgr = &sharded->epoch_mgr_;
      raw->SetRetireHook([sp, raw, mgr](void* p) {
        uint64_t e = mgr->AdvanceAfterRetire();
        sp->retired.Retire(p, [raw](void* q) { raw->FreeRetired(q); }, e);
        sp->retired_count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    sharded->shards_.push_back(std::move(shard));
  }
  sharded->ordered_ = sharded->shards_[0]->ordered != nullptr;
  sharded->name_ = "Sharded[" + std::to_string(n) + "] " +
                   sharded->shards_[0]->bundle.label;
  if (base.read_mode == ReadMode::kOptimistic) {
    sharded->name_ += " optimistic";
  }
  *out = std::move(sharded);
  return Status::OK();
}

uint32_t ShardedStore::ShardOf(Slice key) const {
  return static_cast<uint32_t>(Hash64(key.data(), key.size(), kShardHashSeed) %
                               shards_.size());
}

void ShardedStore::BeginShardWrite(Shard& s) {
  if (read_mode_ != ReadMode::kOptimistic) return;
  // Single writer (s.mu held exclusive), so a plain increment is enough.
  // The release fence orders the odd store before every data store of the
  // mutation — including the relaxed byte-atomic ones — so a reader whose
  // probe observed any of them also observes an odd (or newer) version.
  s.seq.store(s.seq.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
}

void ShardedStore::EndShardWrite(Shard& s) {
  if (read_mode_ != ReadMode::kOptimistic) return;
  // The release store orders every data store of the mutation before the
  // even version: a reader whose first version read sees it is guaranteed
  // to read fully-published data (or fail validation on a newer writer).
  s.seq.store(s.seq.load(std::memory_order_relaxed) + 1,
              std::memory_order_release);
  if (s.retired.pending() >= kDrainBatch) {
    s.reclaimed_count.fetch_add(s.retired.Drain(epoch_mgr_),
                                std::memory_order_relaxed);
  }
}

ShardedStore::ProbeOutcome ShardedStore::TryOptimisticOnce(Shard& s,
                                                           Slice key,
                                                           std::string* value,
                                                           Status* st) {
  const uint64_t v1 = s.seq.load(std::memory_order_acquire);
  if ((v1 & 1) != 0) return ProbeOutcome::kRaced;  // writer mid-mutation
  // Deterministic torn-read choreography: tests park the reader here,
  // release a writer into its own mid-publish stall, then resume us so the
  // probe reads exactly the half-written state the validation below must
  // reject.
  fault::InjectStall(fault::StallPoint::kOptimisticReadBody);
  LockFreeGetResult r = s.bundle.store->TryLockFreeGet(key, value);
  if (r == LockFreeGetResult::kFallback) return ProbeOutcome::kDeclined;
  // Order every data read of the probe before the validating re-read.
  std::atomic_thread_fence(std::memory_order_acquire);
  const uint64_t v2 = broken_validation_.load(std::memory_order_relaxed)
                          ? v1  // negative control: trust the probe blindly
                          : s.seq.load(std::memory_order_relaxed);
  if (v2 != v1) return ProbeOutcome::kRaced;
  *st = r == LockFreeGetResult::kHit ? Status::OK() : Status::NotFound();
  return ProbeOutcome::kValidated;
}

Status ShardedStore::OptimisticGet(Shard& s, Slice key, std::string* value,
                                   bool* served_lock_free) {
  s.opt_gets.fetch_add(1, std::memory_order_relaxed);
  {
    // An inactive guard (every reader slot taken) means we cannot prove
    // reclamation safety — take the locked path.
    epoch::EpochManager::Guard guard = epoch_mgr_.Enter();
    if (guard.active()) {
      Status st;
      for (uint32_t attempt = 0; attempt <= max_retries_; ++attempt) {
        ProbeOutcome o = TryOptimisticOnce(s, key, value, &st);
        if (o == ProbeOutcome::kValidated) {
          s.opt_hits.fetch_add(1, std::memory_order_relaxed);
          if (served_lock_free != nullptr) *served_lock_free = true;
          return st;
        }
        if (o == ProbeOutcome::kDeclined) break;
        s.opt_retries.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Guard scope ends here, BEFORE the fallback below can block on the
    // shard lock: a reader parked behind a writer must not stay pinned in
    // an old epoch and stall reclamation store-wide.
  }
  s.opt_fallbacks.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::shared_mutex> lock(s.mu);
  return s.bundle.store->Get(key, value);
}

Status ShardedStore::Put(Slice key, Slice value) {
  Shard& s = *shards_[ShardOf(key)];
  std::unique_lock<std::shared_mutex> lock(s.mu);
  BeginShardWrite(s);
  Status st = s.bundle.store->Put(key, value);
  EndShardWrite(s);
  return st;
}

Status ShardedStore::Get(Slice key, std::string* value) {
  return Get(key, value, nullptr);
}

Status ShardedStore::Get(Slice key, std::string* value,
                         bool* served_lock_free) {
  if (served_lock_free != nullptr) *served_lock_free = false;
  Shard& s = *shards_[ShardOf(key)];
  if (read_mode_ == ReadMode::kOptimistic) {
    return OptimisticGet(s, key, value, served_lock_free);
  }
  if (shared_reads_) {
    std::shared_lock<std::shared_mutex> lock(s.mu);
    return s.bundle.store->Get(key, value);
  }
  std::unique_lock<std::shared_mutex> lock(s.mu);
  return s.bundle.store->Get(key, value);
}

Status ShardedStore::Delete(Slice key) {
  Shard& s = *shards_[ShardOf(key)];
  std::unique_lock<std::shared_mutex> lock(s.mu);
  BeginShardWrite(s);
  Status st = s.bundle.store->Delete(key);
  EndShardWrite(s);
  return st;
}

void ShardedStore::ExecuteBatch(BatchOp* ops, size_t n) {
  // Bucket op indices by shard in arrival order, then drain shard by shard
  // under a single lock acquisition each.
  std::vector<std::vector<uint32_t>> by_shard(shards_.size());
  for (size_t i = 0; i < n; ++i) {
    by_shard[ShardOf(ops[i].key)].push_back(static_cast<uint32_t>(i));
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    const std::vector<uint32_t>& idx = by_shard[s];
    size_t start = 0;
    if (read_mode_ == ReadMode::kOptimistic) {
      // The leading run of GETs has no earlier write in this group to
      // order against, so it can be served lock-free; concurrent batches'
      // writers are exactly what the seqlock validation covers. From the
      // first write on, stay under the lock so pipelined PUT-then-GET on
      // one key stays sequential.
      while (start < idx.size() &&
             ops[idx[start]].kind == BatchOp::Kind::kGet) {
        BatchOp& op = ops[idx[start]];
        op.result.clear();
        op.status = OptimisticGet(shard, op.key, &op.result, nullptr);
        ++start;
      }
      if (start == idx.size()) continue;
    }
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    for (size_t j = start; j < idx.size(); ++j) {
      BatchOp& op = ops[idx[j]];
      switch (op.kind) {
        case BatchOp::Kind::kGet:
          op.result.clear();
          op.status = shard.bundle.store->Get(op.key, &op.result);
          break;
        case BatchOp::Kind::kPut:
          BeginShardWrite(shard);
          op.status = shard.bundle.store->Put(op.key, op.value);
          EndShardWrite(shard);
          break;
        case BatchOp::Kind::kDelete:
          BeginShardWrite(shard);
          op.status = shard.bundle.store->Delete(op.key);
          EndShardWrite(shard);
          break;
      }
    }
  }
}

Status ShardedStore::ExecuteAtomicBatch(AtomicOp* ops, size_t n) {
  if (n == 0) return Status::OK();

  // Plan: shard of every op, which shards are touched, which get writes.
  std::vector<uint32_t> shard_of(n);
  std::vector<uint32_t> ops_per_shard(shards_.size(), 0);
  std::vector<uint8_t> writes_on_shard(shards_.size(), 0);
  bool has_write = false;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t s = ShardOf(ops[i].key);
    shard_of[i] = s;
    ops_per_shard[s]++;
    if (ops[i].kind != AtomicOp::Kind::kGet) {
      writes_on_shard[s] = 1;
      has_write = true;
    }
  }
  std::vector<uint32_t> order;  // touched shards, ascending
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (ops_per_shard[s] != 0) order.push_back(s);
  }

  // Canonical ascending shard-index acquisition, all locks held together
  // for the whole batch. Every batch agrees on this total order (and no
  // other code path ever holds two shard locks), so deadlock is impossible
  // regardless of the key order clients submit. Read-only batches ride the
  // shared-read mode where it exists; everywhere else the read path may
  // mutate shard state, so even MULTIGET holds the exclusive locks (which
  // is also what makes it an atomic snapshot).
  const bool shared = shared_reads_ && !has_write;
  std::vector<std::shared_lock<std::shared_mutex>> shared_locks;
  std::vector<std::unique_lock<std::shared_mutex>> excl_locks;
  for (uint32_t s : order) {
    if (shared) {
      shared_locks.emplace_back(shards_[s]->mu);
    } else {
      excl_locks.emplace_back(shards_[s]->mu);
    }
  }

  for (uint32_t s : order) {
    shards_[s]->batch_ops_admitted.fetch_add(ops_per_shard[s],
                                             std::memory_order_relaxed);
    shards_[s]->batch_shard_touches.fetch_add(1, std::memory_order_relaxed);
  }

  // ONE seqlock bracket per mutated shard for the whole batch: optimistic
  // readers see the entire apply (and any rollback) as a single mutation
  // window — the §V-B amortization extended to atomicity, since the
  // bracket is also the unit the deferred counter/MT flush below pairs
  // with.
  if (!shared) {
    for (uint32_t s : order) {
      if (writes_on_shard[s]) BeginShardWrite(*shards_[s]);
    }
  }

  // Apply in op order, capturing each mutation's pre-image just before it
  // applies. Rollback replays the undo log in reverse, so interleaved
  // writes to one key still restore the pre-batch state.
  struct Undo {
    uint32_t shard;
    size_t op;  // index into ops, whose key is the undo key
    bool existed;
    std::string old_value;
  };
  std::vector<Undo> undo;
  Status failure;
  size_t failed_op = n;
  for (size_t i = 0; i < n && failure.ok(); ++i) {
    AtomicOp& op = ops[i];
    Shard& s = *shards_[shard_of[i]];
    // Mid-batch latch for the atomicity torture battery: a writer parked
    // here has applied a strict prefix of the batch — the exact window a
    // torn MULTIGET would observe if the locks or rollback were broken.
    if (i != 0) fault::InjectStall(fault::StallPoint::kAtomicBatchApply);
    switch (op.kind) {
      case AtomicOp::Kind::kGet: {
        op.result.clear();
        op.status = s.bundle.store->Get(op.key, &op.result);
        if (!op.status.ok() && !op.status.IsNotFound()) {
          failure = op.status;
          failed_op = i;
        }
        break;
      }
      case AtomicOp::Kind::kPut:
      case AtomicOp::Kind::kRmw: {
        std::string old;
        Status pre = s.bundle.store->Get(op.key, &old);
        if (!pre.ok() && !pre.IsNotFound()) {
          op.status = pre;
          failure = pre;
          failed_op = i;
          break;
        }
        Status st = s.bundle.store->Put(op.key, op.value);
        if (!st.ok()) {
          op.status = st;
          failure = st;
          failed_op = i;
          break;
        }
        undo.push_back(Undo{shard_of[i], i, pre.ok(), std::move(old)});
        if (op.kind == AtomicOp::Kind::kRmw) {
          // The RMW result is the pre-image; absent reads back as
          // kNotFound with the write still applied (upsert semantics).
          op.result = undo.back().old_value;
          op.status = pre.ok() ? Status::OK() : Status::NotFound();
        } else {
          op.status = Status::OK();
        }
        break;
      }
      case AtomicOp::Kind::kDelete: {
        std::string old;
        Status pre = s.bundle.store->Get(op.key, &old);
        if (!pre.ok() && !pre.IsNotFound()) {
          op.status = pre;
          failure = pre;
          failed_op = i;
          break;
        }
        Status st = s.bundle.store->Delete(op.key);
        if (!st.ok() && !st.IsNotFound()) {
          op.status = st;
          failure = st;
          failed_op = i;
          break;
        }
        undo.push_back(Undo{shard_of[i], i, pre.ok(), std::move(old)});
        op.status = st;  // per-op kNotFound is a valid outcome
        break;
      }
    }
  }

  if (!failure.ok() &&
      !broken_atomicity_.load(std::memory_order_relaxed)) {
    // All-or-nothing: unwind the applied prefix in reverse. Displaced
    // records flow through the normal retire hook, so in optimistic mode
    // rollback is epoch-safe against in-flight lock-free readers exactly
    // like any overwrite. Rollback statuses are deliberately ignored: the
    // pre-image Put/Delete of a record that was just resident cannot fail
    // for capacity, and a second injected fault here would only leave the
    // batch as torn as not rolling back at all.
    for (size_t j = undo.size(); j-- > 0;) {
      const Undo& u = undo[j];
      Shard& s = *shards_[u.shard];
      if (u.existed) {
        (void)s.bundle.store->Put(ops[u.op].key, Slice(u.old_value));
      } else {
        (void)s.bundle.store->Delete(ops[u.op].key);
      }
    }
  }

  // The batch's single counter/MT update pass per mutated shard: flush the
  // deferred counter state once, not once per op — the amortization
  // headline (core.batch_mt_update_passes / ops) of bench_atomic_batch.
  Status flush_failure;
  if (!shared) {
    for (uint32_t s : order) {
      if (!writes_on_shard[s]) continue;
      shards_[s]->batch_mt_update_passes.fetch_add(1,
                                                   std::memory_order_relaxed);
      if (CounterManager* cm = shards_[s]->bundle.counter_manager()) {
        Status st = cm->Flush();
        if (!st.ok() && flush_failure.ok()) flush_failure = st;
      }
      EndShardWrite(*shards_[s]);
    }
  }

  const bool applied = failure.ok();
  for (uint32_t s : order) {
    (applied ? shards_[s]->batch_ops_applied
             : shards_[s]->batch_ops_rolled_back)
        .fetch_add(ops_per_shard[s], std::memory_order_relaxed);
  }
  if (!failure.ok()) {
    for (size_t i = 0; i < n; ++i) {
      if (i != failed_op) ops[i].status = Status::Internal("batch aborted");
    }
    return failure;
  }
  return flush_failure;
}

Status ShardedStore::Drain() {
  for (auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mu);
    if (CounterManager* cm = shard->bundle.counter_manager()) {
      ARIA_RETURN_IF_ERROR(cm->Flush());
    }
    // Reclaim everything no pinned reader can still see; records pinned by
    // still-active readers stay pending (and are accounted as such).
    shard->reclaimed_count.fetch_add(shard->retired.Drain(epoch_mgr_),
                                     std::memory_order_relaxed);
  }
  return Status::OK();
}

Status ShardedStore::RangeScan(
    Slice start, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  if (!ordered_) {
    return Status::InvalidArgument("RangeScan on an unordered sharded store");
  }
  // Scan every shard for the full limit (any shard might hold all of the
  // first `limit` keys), one lock at a time — never two shard locks at
  // once, so lock ordering is a non-issue.
  std::vector<std::vector<std::pair<std::string, std::string>>> runs(
      shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    if (shared_reads_) {
      std::shared_lock<std::shared_mutex> lock(s.mu);
      ARIA_RETURN_IF_ERROR(s.ordered->RangeScan(start, limit, &runs[i]));
    } else {
      std::unique_lock<std::shared_mutex> lock(s.mu);
      ARIA_RETURN_IF_ERROR(s.ordered->RangeScan(start, limit, &runs[i]));
    }
  }
  // K-way merge of the per-shard sorted runs; shards hold disjoint keys, so
  // there are no ties to break.
  std::vector<size_t> pos(runs.size(), 0);
  while (out->size() < limit) {
    int best = -1;
    for (size_t i = 0; i < runs.size(); ++i) {
      if (pos[i] >= runs[i].size()) continue;
      if (best < 0 || runs[i][pos[i]].first < runs[best][pos[best]].first) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    out->push_back(std::move(runs[best][pos[best]]));
    pos[best]++;
  }
  return Status::OK();
}

uint64_t ShardedStore::size() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    total += shard->bundle.store->size();
  }
  return total;
}

obs::Snapshot ShardedStore::ShardSnapshot(uint32_t i) const {
  const Shard& s = *shards_[i];
  std::shared_lock<std::shared_mutex> lock(s.mu);
  obs::Snapshot snap = s.bundle.registry.Collect();
  // This front-end's own per-shard counters, plus this shard's
  // contribution to the bare aggregates (Accumulate over all shards then
  // yields the shard-summed core.* totals, the same convention the
  // network server uses for net.loopN.* / net.*).
  const std::string prefix = "core.shard" + std::to_string(i) + ".";
  auto counter = [&](const char* name, uint64_t v) {
    snap.Set(prefix + name, v, obs::MetricKind::kCounter);
    snap.Set(std::string("core.") + name, v, obs::MetricKind::kCounter);
  };
  auto gauge = [&](const char* name, uint64_t v) {
    snap.Set(prefix + name, v, obs::MetricKind::kGauge);
    snap.Set(std::string("core.") + name, v, obs::MetricKind::kGauge);
  };
  counter("optimistic_gets", s.opt_gets.load(std::memory_order_relaxed));
  counter("optimistic_hits", s.opt_hits.load(std::memory_order_relaxed));
  counter("optimistic_retries", s.opt_retries.load(std::memory_order_relaxed));
  counter("optimistic_fallbacks",
          s.opt_fallbacks.load(std::memory_order_relaxed));
  counter("epoch_retired", s.retired_count.load(std::memory_order_relaxed));
  counter("epoch_reclaimed",
          s.reclaimed_count.load(std::memory_order_relaxed));
  counter("batch_ops_admitted",
          s.batch_ops_admitted.load(std::memory_order_relaxed));
  counter("batch_ops_applied",
          s.batch_ops_applied.load(std::memory_order_relaxed));
  counter("batch_ops_rolled_back",
          s.batch_ops_rolled_back.load(std::memory_order_relaxed));
  counter("batch_shard_touches",
          s.batch_shard_touches.load(std::memory_order_relaxed));
  counter("batch_mt_update_passes",
          s.batch_mt_update_passes.load(std::memory_order_relaxed));
  gauge("epoch_pending", s.retired.pending());
  return snap;
}

void ShardedStore::CollectMetrics(obs::MetricSink* sink) const {
  // Only this front-end's own counters (the per-shard layer metrics are
  // published through ShardSnapshot / StoreBundle::Metrics); names follow
  // the register-under-"core" convention of ShardSnapshot.
  uint64_t gets = 0, hits = 0, retries = 0, fallbacks = 0;
  uint64_t retired = 0, reclaimed = 0, pending = 0;
  uint64_t adm = 0, app = 0, rb = 0, touches = 0, passes = 0;
  for (uint32_t i = 0; i < num_shards(); ++i) {
    const Shard& s = *shards_[i];
    std::shared_lock<std::shared_mutex> lock(s.mu);
    const std::string p = "shard" + std::to_string(i) + ".";
    uint64_t g = s.opt_gets.load(std::memory_order_relaxed);
    uint64_t h = s.opt_hits.load(std::memory_order_relaxed);
    uint64_t r = s.opt_retries.load(std::memory_order_relaxed);
    uint64_t f = s.opt_fallbacks.load(std::memory_order_relaxed);
    uint64_t rt = s.retired_count.load(std::memory_order_relaxed);
    uint64_t rc = s.reclaimed_count.load(std::memory_order_relaxed);
    uint64_t pd = s.retired.pending();
    uint64_t ba = s.batch_ops_admitted.load(std::memory_order_relaxed);
    uint64_t bp = s.batch_ops_applied.load(std::memory_order_relaxed);
    uint64_t br = s.batch_ops_rolled_back.load(std::memory_order_relaxed);
    uint64_t bt = s.batch_shard_touches.load(std::memory_order_relaxed);
    uint64_t bm = s.batch_mt_update_passes.load(std::memory_order_relaxed);
    sink->Counter(p + "optimistic_gets", g);
    sink->Counter(p + "optimistic_hits", h);
    sink->Counter(p + "optimistic_retries", r);
    sink->Counter(p + "optimistic_fallbacks", f);
    sink->Counter(p + "epoch_retired", rt);
    sink->Counter(p + "epoch_reclaimed", rc);
    sink->Counter(p + "batch_ops_admitted", ba);
    sink->Counter(p + "batch_ops_applied", bp);
    sink->Counter(p + "batch_ops_rolled_back", br);
    sink->Counter(p + "batch_shard_touches", bt);
    sink->Counter(p + "batch_mt_update_passes", bm);
    sink->Gauge(p + "epoch_pending", pd);
    gets += g;
    hits += h;
    retries += r;
    fallbacks += f;
    retired += rt;
    reclaimed += rc;
    pending += pd;
    adm += ba;
    app += bp;
    rb += br;
    touches += bt;
    passes += bm;
  }
  sink->Counter("optimistic_gets", gets);
  sink->Counter("optimistic_hits", hits);
  sink->Counter("optimistic_retries", retries);
  sink->Counter("optimistic_fallbacks", fallbacks);
  sink->Counter("epoch_retired", retired);
  sink->Counter("epoch_reclaimed", reclaimed);
  sink->Counter("batch_ops_admitted", adm);
  sink->Counter("batch_ops_applied", app);
  sink->Counter("batch_ops_rolled_back", rb);
  sink->Counter("batch_shard_touches", touches);
  sink->Counter("batch_mt_update_passes", passes);
  sink->Gauge("epoch_pending", pending);
}

obs::InvariantReport ShardedStore::CheckInvariants() const {
  obs::InvariantReport report;
  std::vector<obs::Snapshot> snapshots;
  for (uint32_t i = 0; i < num_shards(); ++i) {
    const Shard& s = *shards_[i];
    obs::InvariantReport shard_report = s.bundle.CheckInvariants();
    for (auto& v : shard_report.violations) {
      v.detail = "shard " + std::to_string(i) + ": " + v.detail;
      report.violations.push_back(std::move(v));
    }
    for (auto& law : shard_report.laws_checked) {
      report.laws_checked.push_back(std::move(law));
    }
    snapshots.push_back(ShardSnapshot(i));
  }
  obs::Snapshot aggregate;
  for (const auto& snap : snapshots) aggregate.Accumulate(snap);
  obs::InvariantChecker::CheckShardSums(snapshots, aggregate, &report);
  obs::InvariantChecker::CheckOptimisticReads(aggregate, &report);
  obs::InvariantChecker::CheckAtomicBatches(aggregate, &report);
  return report;
}

}  // namespace aria
