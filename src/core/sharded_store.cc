#include "core/sharded_store.h"

#include <mutex>
#include <utility>

#include "common/hash.h"

namespace aria {

namespace {

// Distinct from the bucket hash (seed 0) and the key-hint hash: a shard
// modulus correlated with the in-shard bucket modulus would leave every
// shard populating only 1/N of its buckets.
constexpr uint64_t kShardHashSeed = 0x5A17ED0DULL;

uint64_t Divided(uint64_t total, uint32_t n, uint64_t floor) {
  uint64_t per = total / n;
  return per < floor ? floor : per;
}

}  // namespace

Status ShardedStore::Create(const StoreOptions& base,
                            std::unique_ptr<ShardedStore>* out) {
  if (base.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (base.shard_shared_reads &&
      !(base.scheme == Scheme::kBaseline && base.index == IndexKind::kHash &&
        !base.cost_model.enabled)) {
    // Every SGX-simulated read path mutates shared state (Secure Cache
    // swap-ins, CLOCK paging, stats); shared-mode reads are only sound
    // where Get is genuinely const.
    return Status::InvalidArgument(
        "shard_shared_reads requires a const read path "
        "(Baseline hash with the cost model disabled)");
  }

  const uint32_t n = base.num_shards;
  auto sharded = std::unique_ptr<ShardedStore>(new ShardedStore());
  sharded->shared_reads_ = base.shard_shared_reads;
  for (uint32_t i = 0; i < n; ++i) {
    StoreOptions opts = base;
    opts.num_shards = 1;
    opts.shard_shared_reads = false;
    // Split the sizing budgets across shards, with floors so tiny test
    // configurations still construct.
    opts.keyspace = Divided(base.keyspace + n - 1, n, 1024);
    opts.epc_budget_bytes = Divided(base.epc_budget_bytes, n, 1ull << 20);
    if (base.cache_bytes != 0) {
      opts.cache_bytes = Divided(base.cache_bytes, n, 4096);
    }
    if (base.num_buckets != 0) {
      opts.num_buckets = Divided(base.num_buckets, n, 64);
    }
    if (base.shieldstore_buckets != 0) {
      opts.shieldstore_buckets = Divided(base.shieldstore_buckets, n, 64);
    }
    // Decorrelate per-shard key material and RNG streams.
    opts.seed = base.seed + 0x9E3779B97F4A7C15ull * (i + 1);

    auto shard = std::make_unique<Shard>();
    ARIA_RETURN_IF_ERROR(CreateStore(opts, &shard->bundle));
    shard->ordered = dynamic_cast<OrderedKVStore*>(shard->bundle.store.get());
    sharded->shards_.push_back(std::move(shard));
  }
  sharded->ordered_ = sharded->shards_[0]->ordered != nullptr;
  sharded->name_ = "Sharded[" + std::to_string(n) + "] " +
                   sharded->shards_[0]->bundle.label;
  *out = std::move(sharded);
  return Status::OK();
}

uint32_t ShardedStore::ShardOf(Slice key) const {
  return static_cast<uint32_t>(Hash64(key.data(), key.size(), kShardHashSeed) %
                               shards_.size());
}

Status ShardedStore::Put(Slice key, Slice value) {
  Shard& s = *shards_[ShardOf(key)];
  std::unique_lock<std::shared_mutex> lock(s.mu);
  return s.bundle.store->Put(key, value);
}

Status ShardedStore::Get(Slice key, std::string* value) {
  Shard& s = *shards_[ShardOf(key)];
  if (shared_reads_) {
    std::shared_lock<std::shared_mutex> lock(s.mu);
    return s.bundle.store->Get(key, value);
  }
  std::unique_lock<std::shared_mutex> lock(s.mu);
  return s.bundle.store->Get(key, value);
}

Status ShardedStore::Delete(Slice key) {
  Shard& s = *shards_[ShardOf(key)];
  std::unique_lock<std::shared_mutex> lock(s.mu);
  return s.bundle.store->Delete(key);
}

void ShardedStore::ExecuteBatch(BatchOp* ops, size_t n) {
  // Bucket op indices by shard in arrival order, then drain shard by shard
  // under a single lock acquisition each.
  std::vector<std::vector<uint32_t>> by_shard(shards_.size());
  for (size_t i = 0; i < n; ++i) {
    by_shard[ShardOf(ops[i].key)].push_back(static_cast<uint32_t>(i));
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    for (uint32_t i : by_shard[s]) {
      BatchOp& op = ops[i];
      switch (op.kind) {
        case BatchOp::Kind::kGet:
          op.result.clear();
          op.status = shard.bundle.store->Get(op.key, &op.result);
          break;
        case BatchOp::Kind::kPut:
          op.status = shard.bundle.store->Put(op.key, op.value);
          break;
        case BatchOp::Kind::kDelete:
          op.status = shard.bundle.store->Delete(op.key);
          break;
      }
    }
  }
}

Status ShardedStore::Drain() {
  for (auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mu);
    if (CounterManager* cm = shard->bundle.counter_manager()) {
      ARIA_RETURN_IF_ERROR(cm->Flush());
    }
  }
  return Status::OK();
}

Status ShardedStore::RangeScan(
    Slice start, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  if (!ordered_) {
    return Status::InvalidArgument("RangeScan on an unordered sharded store");
  }
  // Scan every shard for the full limit (any shard might hold all of the
  // first `limit` keys), one lock at a time — never two shard locks at
  // once, so lock ordering is a non-issue.
  std::vector<std::vector<std::pair<std::string, std::string>>> runs(
      shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    if (shared_reads_) {
      std::shared_lock<std::shared_mutex> lock(s.mu);
      ARIA_RETURN_IF_ERROR(s.ordered->RangeScan(start, limit, &runs[i]));
    } else {
      std::unique_lock<std::shared_mutex> lock(s.mu);
      ARIA_RETURN_IF_ERROR(s.ordered->RangeScan(start, limit, &runs[i]));
    }
  }
  // K-way merge of the per-shard sorted runs; shards hold disjoint keys, so
  // there are no ties to break.
  std::vector<size_t> pos(runs.size(), 0);
  while (out->size() < limit) {
    int best = -1;
    for (size_t i = 0; i < runs.size(); ++i) {
      if (pos[i] >= runs[i].size()) continue;
      if (best < 0 || runs[i][pos[i]].first < runs[best][pos[best]].first) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    out->push_back(std::move(runs[best][pos[best]]));
    pos[best]++;
  }
  return Status::OK();
}

uint64_t ShardedStore::size() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    total += shard->bundle.store->size();
  }
  return total;
}

obs::Snapshot ShardedStore::ShardSnapshot(uint32_t i) const {
  const Shard& s = *shards_[i];
  std::shared_lock<std::shared_mutex> lock(s.mu);
  return s.bundle.registry.Collect();
}

void ShardedStore::CollectMetrics(obs::MetricSink* sink) const {
  obs::Snapshot total;
  for (uint32_t i = 0; i < num_shards(); ++i) {
    total.Accumulate(ShardSnapshot(i));
  }
  for (const auto& [name, metric] : total.values()) {
    if (metric.kind == obs::MetricKind::kCounter) {
      sink->Counter(name, metric.value);
    } else {
      sink->Gauge(name, metric.value);
    }
  }
}

obs::InvariantReport ShardedStore::CheckInvariants() const {
  obs::InvariantReport report;
  std::vector<obs::Snapshot> snapshots;
  for (uint32_t i = 0; i < num_shards(); ++i) {
    const Shard& s = *shards_[i];
    obs::InvariantReport shard_report = s.bundle.CheckInvariants();
    for (auto& v : shard_report.violations) {
      v.detail = "shard " + std::to_string(i) + ": " + v.detail;
      report.violations.push_back(std::move(v));
    }
    for (auto& law : shard_report.laws_checked) {
      report.laws_checked.push_back(std::move(law));
    }
    snapshots.push_back(ShardSnapshot(i));
  }
  obs::Snapshot aggregate;
  for (const auto& snap : snapshots) aggregate.Accumulate(snap);
  obs::InvariantChecker::CheckShardSums(snapshots, aggregate, &report);
  return report;
}

}  // namespace aria
