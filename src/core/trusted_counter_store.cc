#include "core/trusted_counter_store.h"

#include <cstring>

namespace aria {

namespace {
void Increment128(uint8_t ctr[16]) {
  for (int i = 0; i < 16; ++i) {
    if (++ctr[i] != 0) break;
  }
}
}  // namespace

TrustedCounterStore::TrustedCounterStore(sgx::EnclaveRuntime* enclave,
                                         crypto::SecureRandom* rng,
                                         uint64_t capacity)
    : enclave_(enclave), rng_(rng), capacity_(capacity) {}

TrustedCounterStore::~TrustedCounterStore() {
  if (counters_ != nullptr) enclave_->TrustedFree(counters_);
  if (bitmap_ != nullptr) enclave_->TrustedFree(bitmap_);
}

Status TrustedCounterStore::Init() {
  counters_ =
      static_cast<uint8_t*>(enclave_->TrustedAlloc(capacity_ * kCounterSize));
  bitmap_words_ = (capacity_ + 63) / 64;
  bitmap_ = static_cast<uint64_t*>(
      enclave_->TrustedAlloc(bitmap_words_ * sizeof(uint64_t)));
  if (counters_ == nullptr || bitmap_ == nullptr) {
    return Status::CapacityExceeded("trusted counter allocation");
  }
  rng_->Fill(counters_, capacity_ * kCounterSize);
  return Status::OK();
}

uint64_t TrustedCounterStore::trusted_bytes() const {
  return capacity_ * kCounterSize + bitmap_words_ * sizeof(uint64_t);
}

Result<RedPtr> TrustedCounterStore::FetchCounter() {
  fetches_++;
  uint64_t slot;
  if (!free_list_.empty()) {
    slot = free_list_.back();
    free_list_.pop_back();
  } else if (next_unused_ < capacity_) {
    slot = next_unused_++;
  } else {
    return Status::CapacityExceeded("trusted counter store full");
  }
  uint64_t word = slot / 64, bit = 1ull << (slot % 64);
  enclave_->TouchWrite(&bitmap_[word], sizeof(uint64_t));
  if ((bitmap_[word] & bit) != 0) {
    return Status::Internal("trusted counter double allocation");
  }
  bitmap_[word] |= bit;
  used_++;
  return slot;
}

Status TrustedCounterStore::FreeCounter(RedPtr id) {
  if (id >= capacity_) return Status::InvalidArgument("counter id range");
  uint64_t word = id / 64, bit = 1ull << (id % 64);
  enclave_->TouchWrite(&bitmap_[word], sizeof(uint64_t));
  if ((bitmap_[word] & bit) == 0) {
    return Status::IntegrityViolation("freeing unused trusted counter");
  }
  bitmap_[word] &= ~bit;
  free_list_.push_back(id);
  frees_++;
  used_--;
  return Status::OK();
}

Status TrustedCounterStore::ReadCounter(RedPtr id, uint8_t out[kCounterSize]) {
  if (id >= capacity_) return Status::InvalidArgument("counter id range");
  reads_++;
  uint8_t* p = counters_ + id * kCounterSize;
  enclave_->TouchRead(p, kCounterSize);
  std::memcpy(out, p, kCounterSize);
  return Status::OK();
}

Status TrustedCounterStore::BumpCounter(RedPtr id, uint8_t out[kCounterSize]) {
  if (id >= capacity_) return Status::InvalidArgument("counter id range");
  bumps_++;
  uint8_t* p = counters_ + id * kCounterSize;
  enclave_->TouchWrite(p, kCounterSize);
  Increment128(p);
  std::memcpy(out, p, kCounterSize);
  return Status::OK();
}

void TrustedCounterStore::CollectMetrics(obs::MetricSink* sink) const {
  sink->Counter("fetches", fetches_);
  sink->Counter("frees", frees_);
  sink->Counter("reads", reads_);
  sink->Counter("bumps", bumps_);
  sink->Gauge("used", used_);
  sink->Gauge("capacity", capacity_);
  sink->Gauge("trusted_bytes", trusted_bytes());
}

}  // namespace aria
