#include "core/trusted_counter_store.h"

#include <atomic>
#include <bit>
#include <cstring>

namespace aria {

namespace {
// Counter slots are mutated as two 8-byte words with atomic release stores
// so lock-free readers never race them at the byte level. The word-wise
// increment below is equivalent to a byte-wise little-endian 128-bit
// increment only on a little-endian host, which the CTR keystream
// derivation already assumes.
static_assert(std::endian::native == std::endian::little,
              "word-atomic counter bump assumes little-endian layout");
}  // namespace

TrustedCounterStore::TrustedCounterStore(sgx::EnclaveRuntime* enclave,
                                         crypto::SecureRandom* rng,
                                         uint64_t capacity)
    : enclave_(enclave), rng_(rng), capacity_(capacity) {}

TrustedCounterStore::~TrustedCounterStore() {
  if (counters_ != nullptr) enclave_->TrustedFree(counters_);
  if (bitmap_ != nullptr) enclave_->TrustedFree(bitmap_);
}

Status TrustedCounterStore::Init() {
  counters_ =
      static_cast<uint8_t*>(enclave_->TrustedAlloc(capacity_ * kCounterSize));
  bitmap_words_ = (capacity_ + 63) / 64;
  bitmap_ = static_cast<uint64_t*>(
      enclave_->TrustedAlloc(bitmap_words_ * sizeof(uint64_t)));
  if (counters_ == nullptr || bitmap_ == nullptr) {
    return Status::CapacityExceeded("trusted counter allocation");
  }
  rng_->Fill(counters_, capacity_ * kCounterSize);
  return Status::OK();
}

uint64_t TrustedCounterStore::trusted_bytes() const {
  return capacity_ * kCounterSize + bitmap_words_ * sizeof(uint64_t);
}

Result<RedPtr> TrustedCounterStore::FetchCounter() {
  fetches_++;
  uint64_t slot;
  if (!free_list_.empty()) {
    slot = free_list_.back();
    free_list_.pop_back();
  } else if (next_unused_ < capacity_) {
    slot = next_unused_++;
  } else {
    return Status::CapacityExceeded("trusted counter store full");
  }
  uint64_t word = slot / 64, bit = 1ull << (slot % 64);
  enclave_->TouchWrite(&bitmap_[word], sizeof(uint64_t));
  if ((bitmap_[word] & bit) != 0) {
    return Status::Internal("trusted counter double allocation");
  }
  bitmap_[word] |= bit;
  used_++;
  return slot;
}

Status TrustedCounterStore::FreeCounter(RedPtr id) {
  if (id >= capacity_) return Status::InvalidArgument("counter id range");
  uint64_t word = id / 64, bit = 1ull << (id % 64);
  enclave_->TouchWrite(&bitmap_[word], sizeof(uint64_t));
  if ((bitmap_[word] & bit) == 0) {
    return Status::IntegrityViolation("freeing unused trusted counter");
  }
  bitmap_[word] &= ~bit;
  free_list_.push_back(id);
  frees_++;
  used_--;
  return Status::OK();
}

Status TrustedCounterStore::ReadCounter(RedPtr id, uint8_t out[kCounterSize]) {
  if (id >= capacity_) return Status::InvalidArgument("counter id range");
  reads_++;
  uint8_t* p = counters_ + id * kCounterSize;
  enclave_->TouchRead(p, kCounterSize);
  std::memcpy(out, p, kCounterSize);
  return Status::OK();
}

Status TrustedCounterStore::BumpCounter(RedPtr id, uint8_t out[kCounterSize]) {
  if (id >= capacity_) return Status::InvalidArgument("counter id range");
  bumps_++;
  uint8_t* p = counters_ + id * kCounterSize;
  enclave_->TouchWrite(p, kCounterSize);
  // Word-atomic 128-bit increment (slots are 8-byte aligned: the array base
  // is cache-line aligned and kCounterSize is 16). Only the single writer
  // holding the shard lock mutates the slot; the atomics exist for the
  // benefit of concurrent TryReadCounterLockFree readers, who may observe
  // the two words torn across a wrap and then fail MAC verification.
  auto* words = reinterpret_cast<uint64_t*>(p);
  const uint64_t lo = std::atomic_ref<uint64_t>(words[0]).load(
                          std::memory_order_relaxed) +
                      1;
  std::atomic_ref<uint64_t>(words[0]).store(lo, std::memory_order_release);
  if (lo == 0) {
    const uint64_t hi = std::atomic_ref<uint64_t>(words[1]).load(
                            std::memory_order_relaxed) +
                        1;
    std::atomic_ref<uint64_t>(words[1]).store(hi, std::memory_order_release);
  }
  std::memcpy(out, p, kCounterSize);
  return Status::OK();
}

bool TrustedCounterStore::TryReadCounterLockFree(
    RedPtr id, uint8_t out[kCounterSize]) const {
  if (counters_ == nullptr || id >= capacity_) return false;
  lockfree_reads_.fetch_add(1, std::memory_order_relaxed);
  uint8_t* p = counters_ + id * kCounterSize;
  enclave_->ChargeSharedRead(p, kCounterSize);
  auto* words = reinterpret_cast<uint64_t*>(p);
  uint64_t w[2];
  w[0] = std::atomic_ref<uint64_t>(words[0]).load(std::memory_order_acquire);
  w[1] = std::atomic_ref<uint64_t>(words[1]).load(std::memory_order_acquire);
  std::memcpy(out, w, kCounterSize);
  return true;
}

void TrustedCounterStore::CollectMetrics(obs::MetricSink* sink) const {
  sink->Counter("fetches", fetches_);
  sink->Counter("frees", frees_);
  sink->Counter("reads",
                reads_ + lockfree_reads_.load(std::memory_order_relaxed));
  sink->Counter("bumps", bumps_);
  sink->Gauge("used", used_);
  sink->Gauge("capacity", capacity_);
  sink->Gauge("trusted_bytes", trusted_bytes());
}

}  // namespace aria
