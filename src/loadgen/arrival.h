// Open-loop arrival machinery: inter-arrival time generation (Poisson or
// deterministic-uniform) and the goal-QPS feedback controller.
//
// The schedule is an absolute timeline: the sender adds each gap to the
// *previous scheduled* send time, never to "now", so pacing errors (sleep
// overshoot, a blocking send) are repaid by catch-up bursts instead of
// silently lowering the offered rate — the property that makes the
// generator open-loop. The controller closes the remaining gap: it trims
// the schedule rate against the throughput actually achieved and, when the
// system under test cannot keep up, reports saturation explicitly instead
// of letting the run quietly lag its goal.
#pragma once

#include <cstdint>

#include "common/random.h"

namespace aria::loadgen {

enum class ArrivalProcess : uint8_t {
  kPoisson,  ///< exponential inter-arrival gaps (memoryless, bursty)
  kUniform,  ///< deterministic fixed gaps (smoothest possible offering)
};

/// Deterministic (per seed) stream of inter-arrival gaps at `rate_qps`.
class ArrivalSchedule {
 public:
  ArrivalSchedule(ArrivalProcess process, double rate_qps, uint64_t seed);

  /// Next gap in nanoseconds at the base rate. Poisson draws an exponential
  /// via inverse CDF; uniform returns 1/rate with sub-nanosecond remainder
  /// carried so the cumulative schedule never drifts.
  uint64_t NextGapNanos();

  double rate_qps() const { return rate_qps_; }
  ArrivalProcess process() const { return process_; }

 private:
  ArrivalProcess process_;
  double rate_qps_;
  double gap_nanos_;   ///< mean gap
  double carry_ = 0;   ///< uniform-mode fractional remainder
  Random rng_;
};

struct GoalQpsControllerOptions {
  /// A window whose completion rate is below this fraction of the goal
  /// counts as lagging.
  double saturation_fraction = 0.90;
  /// Consecutive lagging windows before `saturated()` latches (sticky).
  int saturation_windows = 3;
  /// Pacing trim is clamped to [1, max_trim] overall and to +/-15% per
  /// window, so the controller can repay scheduling losses but can never
  /// turn an open-loop run into a runaway send loop.
  double max_trim = 1.5;
  /// EWMA weight of the newest window in `achieved_qps()`.
  double ewma_alpha = 0.4;
};

/// Pure feedback logic (no clocks, no threads): feed it one control window
/// at a time and read back the schedule trim, the achieved-throughput
/// estimate and the saturation verdict. Being clock-free makes it unit
/// testable with synthetic windows.
class GoalQpsController {
 public:
  explicit GoalQpsController(double goal_qps,
                             GoalQpsControllerOptions options = {});

  /// Account one control window of `window_seconds` during which `offered`
  /// requests were put on the wire and `completed` responses came back.
  /// Returns the updated schedule trim (multiply the arrival rate by it).
  double OnWindow(double window_seconds, uint64_t offered, uint64_t completed);

  double goal_qps() const { return goal_qps_; }
  /// EWMA of the per-window completion rate.
  double achieved_qps() const { return achieved_qps_; }
  double trim() const { return trim_; }
  uint64_t windows() const { return windows_; }
  /// True once `saturation_windows` consecutive windows lagged the goal;
  /// sticky for the rest of the run.
  bool saturated() const { return saturated_; }

 private:
  double goal_qps_;
  GoalQpsControllerOptions options_;
  double trim_ = 1.0;
  double achieved_qps_ = 0;
  uint64_t windows_ = 0;
  int lagging_windows_ = 0;
  bool saturated_ = false;
};

}  // namespace aria::loadgen
