// Log-scaled latency histogram (HdrHistogram-style) for the open-loop load
// generator. Values are nanoseconds. Each power-of-two range splits into 32
// linear sub-buckets, so any recorded value is reproducible from its bucket
// to within 1/32 (~3.2%) relative error while the whole uint64 range fits
// in a fixed 1920-slot array — no allocation on the record path, trivially
// mergeable across connections.
#pragma once

#include <cstdint>

namespace aria::loadgen {

class LatencyHistogram {
 public:
  /// 32 linear sub-buckets per power-of-two range.
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Identity region [0, 32) (range 0) + 59 split ranges (msb 5..63)
  /// covers every uint64 value: 60 ranges x 32 sub-buckets.
  static constexpr int kNumBuckets = (64 - kSubBits + 1) << kSubBits;

  void Record(uint64_t nanos);

  /// Merge-add `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  void Reset();

  uint64_t count() const { return count_; }
  /// Largest recorded value, exact (not bucket-rounded). 0 when empty.
  uint64_t max() const { return max_; }

  /// Smallest recorded-bucket upper bound v such that at least p% of the
  /// recorded values are <= v. p in [0, 100]; returns 0 when empty. The
  /// result is within one sub-bucket (~3.2%) above the true quantile.
  uint64_t ValueAtPercentile(double p) const;

  uint64_t P50() const { return ValueAtPercentile(50.0); }
  uint64_t P99() const { return ValueAtPercentile(99.0); }
  uint64_t P999() const { return ValueAtPercentile(99.9); }

  /// Bucket mapping, exposed for tests: BucketIndex is monotone in v and
  /// BucketUpperBound(BucketIndex(v)) >= v with bounded relative error.
  static int BucketIndex(uint64_t v);
  static uint64_t BucketUpperBound(int index);

 private:
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t max_ = 0;
};

}  // namespace aria::loadgen
