#include "loadgen/histogram.h"

#include <cmath>

namespace aria::loadgen {

int LatencyHistogram::BucketIndex(uint64_t v) {
  if (v < kSubBuckets) return static_cast<int>(v);
  // msb >= kSubBits here. Range r = msb - kSubBits + 1 >= 1; within the
  // range [2^msb, 2^(msb+1)) the top kSubBits bits below the msb select the
  // linear sub-bucket.
  const int msb = 63 - __builtin_clzll(v);
  const int shift = msb - kSubBits;
  return ((msb - kSubBits + 1) << kSubBits) |
         static_cast<int>((v >> shift) & (kSubBuckets - 1));
}

uint64_t LatencyHistogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  const int range = index >> kSubBits;  // >= 1
  const uint64_t sub = static_cast<uint64_t>(index & (kSubBuckets - 1));
  const int shift = range - 1;
  return ((kSubBuckets + sub + 1) << shift) - 1;
}

void LatencyHistogram::Record(uint64_t nanos) {
  buckets_[BucketIndex(nanos)]++;
  count_++;
  if (nanos > max_) max_ = nanos;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  if (other.max_ > max_) max_ = other.max_;
}

void LatencyHistogram::Reset() {
  for (uint64_t& b : buckets_) b = 0;
  count_ = 0;
  max_ = 0;
}

uint64_t LatencyHistogram::ValueAtPercentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target && cumulative > 0) {
      const uint64_t bound = BucketUpperBound(i);
      // Never report beyond the recorded maximum (the last bucket's upper
      // bound can overshoot it by the sub-bucket width).
      return bound < max_ ? bound : max_;
    }
  }
  return max_;
}

}  // namespace aria::loadgen
