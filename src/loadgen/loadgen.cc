#include "loadgen/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <mutex>
#include <thread>

#include "net/client.h"
#include "workload/ycsb.h"
#include "workload/zipf.h"

namespace aria::loadgen {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SleepNanos(uint64_t nanos) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
}

/// Longest uninterruptible sleep: bounds how stale a sender's view of
/// stop_/trim_/epoch_ can get during a low-rate schedule's long gaps.
constexpr uint64_t kMaxSleepChunkNanos = 10'000'000;  // 10ms

/// Receiver read timeout: how often a blocked receiver re-checks
/// sender_done / the drain deadline.
constexpr int kReadTimeoutMs = 50;

}  // namespace

/// Per-connection state. The sender thread owns the schedule and
/// offered_by_window; the receiver thread owns latency and windows; the
/// pending queue and the counters are the shared edge between them.
struct OpenLoopLoadGen::Conn {
  struct Pending {
    uint64_t index;
    uint64_t scheduled_ns;  ///< latency is measured from here, not from
                            ///< the actual (possibly blocked) send
  };
  struct WindowAccum {
    LatencyHistogram hist;
    uint64_t completed = 0;
    uint64_t timed_out = 0;
  };

  uint32_t index = 0;
  double rate_qps = 0;
  net::Client client;

  std::mutex mu;
  std::deque<Pending> pending;  // push precedes Send, pop follows a frame:
                                // FIFO responses always find their entry
  std::atomic<bool> sender_done{false};

  std::atomic<uint64_t> offered{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> timed_out{0};
  std::atomic<uint64_t> in_flight{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> not_found{0};
  std::atomic<bool> failed{false};

  LatencyHistogram latency;                  // receiver-thread local
  std::vector<WindowAccum> windows;          // receiver-thread local
  std::vector<uint64_t> offered_by_window;   // sender-thread local
};

OpenLoopLoadGen::OpenLoopLoadGen(OpenLoopOptions options)
    : options_(std::move(options)),
      controller_(options_.goal_qps, options_.controller) {}

OpenLoopLoadGen::~OpenLoopLoadGen() = default;

void OpenLoopLoadGen::SenderLoop(Conn* c, const RequestFn& request_fn) {
  ArrivalSchedule schedule(options_.arrival, c->rate_qps,
                           options_.seed + 0x9E37ull * (c->index + 1));
  const uint64_t window_ns =
      static_cast<uint64_t>(options_.control_window_seconds * 1e9);
  uint64_t next_ns = start_ns_ + schedule.NextGapNanos();
  uint64_t index = 0;
  bool stopped = false;
  while (!stopped) {
    if (options_.max_requests_per_connection != 0 &&
        index >= options_.max_requests_per_connection) {
      break;
    }
    // Sleep toward the scheduled instant in bounded chunks. If we are
    // already past it (sleep overshoot, a send that blocked) we fall
    // straight through: the absolute timeline turns lateness into a
    // catch-up burst instead of a lower offered rate.
    for (;;) {
      if (stop_.load(std::memory_order_relaxed)) {
        stopped = true;
        break;
      }
      const uint64_t now = NowNanos();
      if (now >= next_ns) break;
      SleepNanos(std::min(next_ns - now, kMaxSleepChunkNanos));
    }
    if (stopped) break;

    const uint64_t epoch = epoch_.load(std::memory_order_acquire);
    net::Request req = request_fn(c->index, index, epoch);
    {
      std::lock_guard<std::mutex> lock(c->mu);
      c->pending.push_back({index, next_ns});
    }
    c->offered.fetch_add(1, std::memory_order_relaxed);
    c->in_flight.fetch_add(1, std::memory_order_relaxed);
    const uint64_t w = (next_ns - start_ns_) / window_ns;
    if (w >= c->offered_by_window.size()) {
      c->offered_by_window.resize(w + 1, 0);
    }
    c->offered_by_window[w]++;
    if (!c->client.Send(req).ok()) {
      // The request was offered but will never get a response; its pending
      // entry survives as in-flight-at-stop, keeping conservation exact.
      c->failed.store(true, std::memory_order_relaxed);
      break;
    }

    const double trim = trim_.load(std::memory_order_relaxed);
    const uint64_t gap = schedule.NextGapNanos();
    next_ns += std::max<uint64_t>(
        static_cast<uint64_t>(static_cast<double>(gap) / trim), 1);
    index++;
  }
  c->sender_done.store(true, std::memory_order_release);
}

void OpenLoopLoadGen::ReceiverLoop(Conn* c, const ResponseFn& response_fn) {
  const uint64_t window_ns =
      static_cast<uint64_t>(options_.control_window_seconds * 1e9);
  const uint64_t drain_ns =
      static_cast<uint64_t>(options_.drain_seconds * 1e9);
  uint64_t drain_deadline = 0;
  for (;;) {
    if (c->sender_done.load(std::memory_order_acquire)) {
      bool empty;
      {
        std::lock_guard<std::mutex> lock(c->mu);
        empty = c->pending.empty();
      }
      if (empty) break;
      const uint64_t now = NowNanos();
      if (drain_deadline == 0) drain_deadline = now + drain_ns;
      if (now >= drain_deadline) break;  // leftovers = in flight at stop
    }
    net::Response resp;
    bool read_timed_out = false;
    Status st = c->client.ReadResponseTimeout(&resp, kReadTimeoutMs,
                                              &read_timed_out);
    if (!st.ok()) {
      if (read_timed_out) continue;  // idle socket; re-check sender_done
      c->failed.store(true, std::memory_order_relaxed);
      break;  // connection dead; pending entries stay in flight
    }
    const uint64_t now = NowNanos();
    Conn::Pending p;
    {
      std::lock_guard<std::mutex> lock(c->mu);
      p = c->pending.front();
      c->pending.pop_front();
    }
    const uint64_t latency = now > p.scheduled_ns ? now - p.scheduled_ns : 0;
    c->in_flight.fetch_sub(1, std::memory_order_relaxed);
    const bool late = latency > options_.timeout_nanos;
    if (late) {
      c->timed_out.fetch_add(1, std::memory_order_relaxed);
    } else {
      c->completed.fetch_add(1, std::memory_order_relaxed);
    }
    c->latency.Record(latency);
    const uint64_t w = (now - start_ns_) / window_ns;
    if (w >= c->windows.size()) c->windows.resize(w + 1);
    Conn::WindowAccum& wa = c->windows[w];
    wa.hist.Record(latency);
    if (late) {
      wa.timed_out++;
    } else {
      wa.completed++;
    }
    if (resp.status == net::WireStatus::kNotFound) {
      c->not_found.fetch_add(1, std::memory_order_relaxed);
    } else if (resp.status != net::WireStatus::kOk) {
      c->errors.fetch_add(1, std::memory_order_relaxed);
    }
    if (response_fn) response_fn(c->index, p.index, resp, latency, late);
  }
}

Status OpenLoopLoadGen::Run(const RequestFn& request_fn,
                            const ResponseFn& response_fn) {
  if (ran_) return Status::InvalidArgument("OpenLoopLoadGen is single-use");
  ran_ = true;
  if (!request_fn) return Status::InvalidArgument("request_fn is required");
  if (options_.connections == 0) {
    return Status::InvalidArgument("connections must be > 0");
  }
  if (options_.goal_qps <= 0) {
    return Status::InvalidArgument("goal_qps must be > 0");
  }
  if (options_.control_window_seconds <= 0) {
    return Status::InvalidArgument("control_window_seconds must be > 0");
  }
  if (options_.duration_seconds <= 0 &&
      options_.max_requests_per_connection == 0) {
    return Status::InvalidArgument(
        "either duration_seconds or max_requests_per_connection must bound "
        "the run");
  }
  std::vector<double> fractions(options_.connections,
                                1.0 / options_.connections);
  if (!options_.load_fractions.empty()) {
    if (options_.load_fractions.size() != options_.connections) {
      return Status::InvalidArgument(
          "load_fractions must be empty or one entry per connection");
    }
    double sum = 0;
    for (double f : options_.load_fractions) {
      if (f < 0) return Status::InvalidArgument("negative load fraction");
      sum += f;
    }
    if (sum <= 0) {
      return Status::InvalidArgument("load fractions sum to zero");
    }
    for (uint32_t i = 0; i < options_.connections; ++i) {
      fractions[i] = options_.load_fractions[i] / sum;
    }
  }

  conns_.reserve(options_.connections);
  uint32_t connect_failed = 0;
  for (uint32_t i = 0; i < options_.connections; ++i) {
    auto conn = std::make_unique<Conn>();
    conn->index = i;
    conn->rate_qps = options_.goal_qps * fractions[i];
    if (conn->client.Connect(options_.host, options_.port).ok()) {
      conn->client.EnableDuplex();
    } else {
      conn->failed.store(true, std::memory_order_relaxed);
      conn->sender_done.store(true, std::memory_order_relaxed);
      connect_failed++;
    }
    conns_.push_back(std::move(conn));
  }
  if (connect_failed == options_.connections) {
    return Status::Internal("no connection could be established");
  }

  start_ns_ = NowNanos();
  std::vector<std::thread> senders, receivers;
  for (auto& conn : conns_) {
    if (conn->failed.load(std::memory_order_relaxed)) continue;
    if (conn->rate_qps <= 0) {
      // Zero-share connection: connected but idle.
      conn->sender_done.store(true, std::memory_order_relaxed);
      continue;
    }
    Conn* c = conn.get();
    senders.emplace_back([this, c, &request_fn] { SenderLoop(c, request_fn); });
    receivers.emplace_back(
        [this, c, &response_fn] { ReceiverLoop(c, response_fn); });
  }

  // Control loop: advance the hotspot epoch on its timer and feed the
  // goal-QPS controller one window at a time.
  const uint64_t window_ns =
      static_cast<uint64_t>(options_.control_window_seconds * 1e9);
  const uint64_t stop_ns =
      options_.duration_seconds > 0
          ? start_ns_ +
                static_cast<uint64_t>(options_.duration_seconds * 1e9)
          : UINT64_MAX;
  const uint64_t shift_ns =
      options_.hotspot_shift_seconds > 0
          ? static_cast<uint64_t>(options_.hotspot_shift_seconds * 1e9)
          : 0;
  auto all_senders_done = [this] {
    for (const auto& c : conns_) {
      if (!c->sender_done.load(std::memory_order_acquire)) return false;
    }
    return true;
  };
  uint64_t next_window_ns = start_ns_ + window_ns;
  uint64_t last_offered = 0, last_completed = 0, last_t_ns = start_ns_;
  while (NowNanos() < stop_ns && !all_senders_done()) {
    SleepNanos(std::min<uint64_t>(5'000'000, window_ns));
    const uint64_t now = NowNanos();
    if (shift_ns != 0) {
      const uint64_t want = (now - start_ns_) / shift_ns;
      const uint64_t cur = epoch_.load(std::memory_order_relaxed);
      if (want != cur) {
        epoch_.store(want, std::memory_order_release);
        hotset_shifts_.fetch_add(want - cur, std::memory_order_relaxed);
      }
    }
    if (now >= next_window_ns) {
      uint64_t offered = 0, completed = 0;
      for (const auto& c : conns_) {
        offered += c->offered.load(std::memory_order_relaxed);
        completed += c->completed.load(std::memory_order_relaxed);
      }
      const double trim = controller_.OnWindow(
          static_cast<double>(now - last_t_ns) * 1e-9, offered - last_offered,
          completed - last_completed);
      trim_.store(trim, std::memory_order_relaxed);
      last_offered = offered;
      last_completed = completed;
      last_t_ns = now;
      next_window_ns += window_ns;
      if (next_window_ns <= now) next_window_ns = now + window_ns;
    }
  }
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : senders) t.join();
  const uint64_t end_ns = NowNanos();
  for (std::thread& t : receivers) t.join();
  for (auto& conn : conns_) conn->client.Close();

  report_.wall_seconds = static_cast<double>(end_ns - start_ns_) * 1e-9;
  size_t num_windows = 0;
  for (const auto& c : conns_) {
    report_.offered += c->offered.load(std::memory_order_relaxed);
    report_.completed += c->completed.load(std::memory_order_relaxed);
    report_.timed_out += c->timed_out.load(std::memory_order_relaxed);
    report_.in_flight_at_stop += c->in_flight.load(std::memory_order_relaxed);
    report_.errors += c->errors.load(std::memory_order_relaxed);
    report_.not_found += c->not_found.load(std::memory_order_relaxed);
    if (c->failed.load(std::memory_order_relaxed)) {
      report_.failed_connections++;
    }
    report_.latency.Merge(c->latency);
    num_windows = std::max(
        num_windows, std::max(c->windows.size(), c->offered_by_window.size()));
  }
  report_.hotset_shifts = hotset_shifts_.load(std::memory_order_relaxed);
  if (report_.wall_seconds > 0) {
    report_.offered_qps =
        static_cast<double>(report_.offered) / report_.wall_seconds;
    report_.achieved_qps =
        static_cast<double>(report_.completed) / report_.wall_seconds;
  }
  report_.saturated = controller_.saturated();
  report_.windows.reserve(num_windows);
  for (size_t w = 0; w < num_windows; ++w) {
    WindowSample sample;
    sample.start_seconds =
        static_cast<double>(w) * options_.control_window_seconds;
    LatencyHistogram hist;
    for (const auto& c : conns_) {
      if (w < c->offered_by_window.size()) {
        sample.offered += c->offered_by_window[w];
      }
      if (w < c->windows.size()) {
        sample.completed += c->windows[w].completed;
        sample.timed_out += c->windows[w].timed_out;
        hist.Merge(c->windows[w].hist);
      }
    }
    sample.p50_nanos = hist.P50();
    sample.p99_nanos = hist.P99();
    report_.windows.push_back(sample);
  }
  return Status::OK();
}

void OpenLoopLoadGen::CollectMetrics(obs::MetricSink* sink) const {
  uint64_t offered = 0, completed = 0, timed_out = 0, in_flight = 0;
  uint64_t errors = 0, not_found = 0;
  uint64_t failed = 0;
  for (const auto& c : conns_) {
    const uint64_t c_offered = c->offered.load(std::memory_order_relaxed);
    const uint64_t c_completed = c->completed.load(std::memory_order_relaxed);
    const uint64_t c_timed_out = c->timed_out.load(std::memory_order_relaxed);
    const uint64_t c_in_flight = c->in_flight.load(std::memory_order_relaxed);
    offered += c_offered;
    completed += c_completed;
    timed_out += c_timed_out;
    in_flight += c_in_flight;
    errors += c->errors.load(std::memory_order_relaxed);
    not_found += c->not_found.load(std::memory_order_relaxed);
    if (c->failed.load(std::memory_order_relaxed)) failed++;
    const std::string prefix = "conn" + std::to_string(c->index) + ".";
    sink->Counter(prefix + "requests_offered", c_offered);
    sink->Counter(prefix + "requests_completed", c_completed);
    sink->Counter(prefix + "requests_timed_out", c_timed_out);
    sink->Gauge(prefix + "requests_in_flight", c_in_flight);
  }
  sink->Counter("requests_offered", offered);
  sink->Counter("requests_completed", completed);
  sink->Counter("requests_timed_out", timed_out);
  sink->Gauge("requests_in_flight", in_flight);
  sink->Counter("response_errors", errors);
  sink->Counter("response_not_found", not_found);
  sink->Counter("hotset_shifts",
                hotset_shifts_.load(std::memory_order_relaxed));
  sink->Counter("control_windows", controller_.windows());
  sink->Gauge("connections", conns_.size());
  sink->Gauge("failed_connections", failed);
  sink->Gauge("goal_qps",
              static_cast<uint64_t>(std::llround(options_.goal_qps)));
  sink->Gauge("achieved_qps",
              static_cast<uint64_t>(std::llround(report_.achieved_qps)));
  sink->Gauge("saturated", controller_.saturated() ? 1 : 0);
  sink->Gauge("trim_permille",
              static_cast<uint64_t>(std::llround(controller_.trim() * 1000)));
  sink->Gauge("latency_p50_nanos", report_.latency.P50());
  sink->Gauge("latency_p99_nanos", report_.latency.P99());
  sink->Gauge("latency_p999_nanos", report_.latency.P999());
  sink->Gauge("latency_max_nanos", report_.latency.max());
}

RequestFn MakeYcsbRequestFn(uint32_t connections, const YcsbStreamOptions& o) {
  struct PerConn {
    std::unique_ptr<ShiftableZipfGenerator> zipf;
    std::unique_ptr<UniformGenerator> uniform;
    Random op_rng{1};
  };
  auto state = std::make_shared<std::vector<PerConn>>(connections);
  for (uint32_t c = 0; c < connections; ++c) {
    PerConn& pc = (*state)[c];
    const uint64_t seed = o.seed + 0x51AB5EEDull * (c + 1);
    if (o.zipfian) {
      pc.zipf = std::make_unique<ShiftableZipfGenerator>(o.keyspace, o.theta,
                                                         seed, o.scrambled);
    } else {
      pc.uniform = std::make_unique<UniformGenerator>(o.keyspace, seed);
    }
    pc.op_rng = Random(seed ^ 0xA5A5A5A5ull);
  }
  const double read_ratio = o.read_ratio;
  const size_t value_size = o.value_size;
  return [state, read_ratio, value_size](uint64_t conn, uint64_t index,
                                         uint64_t epoch) {
    PerConn& pc = (*state)[conn];
    if (pc.zipf && pc.zipf->epoch() != epoch) pc.zipf->Shift(epoch);
    const uint64_t key_id =
        pc.zipf ? pc.zipf->NextKey() : pc.uniform->NextKey();
    net::Request req;
    req.key = MakeKey(key_id);
    if (pc.op_rng.Bernoulli(read_ratio)) {
      req.op = net::OpCode::kGet;
    } else {
      req.op = net::OpCode::kPut;
      req.value = MakeValue(key_id, value_size,
                            static_cast<uint32_t>(index & 0xFFFFFFFFu));
    }
    return req;
  };
}

}  // namespace aria::loadgen
