// Open-loop load generator for the Aria wire protocol (the measurement
// harness ROADMAP.md's perf items are judged with).
//
// Closed-loop drivers (net::RunLoad, the bench drivers) keep a fixed number
// of requests in flight: when the server slows down, the *offered load*
// drops with it, which hides queueing collapse and under-reports tail
// latency (coordinated omission). This generator is the opposite regime:
//
//  * every connection sends on an absolute arrival schedule (Poisson or
//    deterministic-uniform inter-arrival gaps, loadgen/arrival.h) that
//    never waits for responses — a sender that falls behind catches up in
//    a burst rather than quietly lowering the rate;
//  * latency is stamped from the *scheduled* send time, so time a request
//    spent waiting behind a stalled socket is part of its latency — the
//    coordinated-omission fix the regression test in loadgen_test.cc
//    documents;
//  * a goal-QPS controller trims the schedule against achieved throughput
//    and reports saturation explicitly instead of lagging silently;
//  * the Zipf hot key-set can migrate mid-run (hotspot epochs, advanced on
//    a timer and applied through workload/zipf.h's ShiftableZipfGenerator),
//    the workload Aria §IV-E's stop-swap and FIFO-eviction choices exist
//    for.
//
// Accounting is a conservation law checked by the InvariantChecker
// (obs/invariants.h, loadgen-request-conservation): every offered request
// is exactly one of completed (response within the timeout), timed out
// (response after the timeout), or still in flight when the run stopped —
// per connection and in aggregate.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "loadgen/arrival.h"
#include "loadgen/histogram.h"
#include "net/protocol.h"
#include "obs/metrics.h"

namespace aria::loadgen {

struct OpenLoopOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  uint32_t connections = 4;
  /// Aggregate offered rate across all connections.
  double goal_qps = 10'000;
  /// Per-connection share of goal_qps (normalized; empty = equal split).
  /// This is memtier_skewsyn's "skewed load": one connection can carry an
  /// outsized fraction of the offered rate.
  std::vector<double> load_fractions;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;

  /// Run length. With max_requests_per_connection == 0 the run is purely
  /// time-bound; otherwise each sender also stops after that many sends.
  double duration_seconds = 1.0;
  uint64_t max_requests_per_connection = 0;

  /// A response slower than this counts as timed out (still recorded in
  /// the latency histogram at its true latency).
  uint64_t timeout_nanos = 1'000'000'000;
  /// After the senders stop, receivers keep draining responses for at most
  /// this long; whatever is still unanswered is "in flight at stop".
  double drain_seconds = 1.0;

  /// Goal-QPS controller sampling period.
  double control_window_seconds = 0.25;
  GoalQpsControllerOptions controller;

  /// > 0: advance the hotspot epoch every this many seconds — the request
  /// callback sees the new epoch and must re-map its hot set (see
  /// MakeYcsbRequestFn). 0 = static hot set.
  double hotspot_shift_seconds = 0;

  uint64_t seed = 42;
};

/// One control window of the run, for time-series analysis (p99 recovery
/// after a hotspot shift). Windows are aligned to the run start.
struct WindowSample {
  double start_seconds = 0;
  uint64_t offered = 0;    ///< requests scheduled in this window
  uint64_t completed = 0;  ///< responses (within timeout) received in it
  uint64_t timed_out = 0;  ///< late responses received in it
  uint64_t p50_nanos = 0;  ///< latency percentiles of responses in it
  uint64_t p99_nanos = 0;
};

struct OpenLoopReport {
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t timed_out = 0;
  uint64_t in_flight_at_stop = 0;
  uint64_t errors = 0;     ///< responses with a wire status other than
                           ///< Ok/NotFound (subset of completed+timed_out)
  uint64_t not_found = 0;  ///< the NotFound subset
  uint32_t failed_connections = 0;
  uint64_t hotset_shifts = 0;

  double wall_seconds = 0;   ///< start -> senders stopped (drain excluded)
  double offered_qps = 0;
  double achieved_qps = 0;   ///< completed / wall_seconds
  bool saturated = false;    ///< controller verdict (sticky)

  /// All responses, completed and timed out, stamped from scheduled send
  /// time.
  LatencyHistogram latency;
  std::vector<WindowSample> windows;

  bool ok() const { return errors == 0 && failed_connections == 0; }
};

/// Builds connection `conn`'s request number `index` under hotspot epoch
/// `epoch`. Called on that connection's sender thread only (one thread per
/// conn value), so per-connection generator state needs no locking.
using RequestFn =
    std::function<net::Request(uint64_t conn, uint64_t index, uint64_t epoch)>;

/// Observes connection `conn`'s response to request `index` on that
/// connection's receiver thread. `latency_nanos` is scheduled-send to
/// receive; `timed_out` marks a late response.
using ResponseFn =
    std::function<void(uint64_t conn, uint64_t index, const net::Response&,
                       uint64_t latency_nanos, bool timed_out)>;

class OpenLoopLoadGen : public obs::Observable {
 public:
  explicit OpenLoopLoadGen(OpenLoopOptions options);
  ~OpenLoopLoadGen() override;

  OpenLoopLoadGen(const OpenLoopLoadGen&) = delete;
  OpenLoopLoadGen& operator=(const OpenLoopLoadGen&) = delete;

  /// Drive the run to completion (blocking; spawns 2 threads per
  /// connection plus a controller thread). Single-use: a second call
  /// returns InvalidArgument.
  Status Run(const RequestFn& request_fn, const ResponseFn& response_fn = {});

  const OpenLoopReport& report() const { return report_; }
  const GoalQpsController& controller() const { return controller_; }

  /// Emits loadgen.* aggregates plus loadgen.connN.* per-connection
  /// request accounting. The loadgen-request-conservation law holds on any
  /// post-Run snapshot (mid-run scrapes race with serving by design).
  void CollectMetrics(obs::MetricSink* sink) const override;

 private:
  struct Conn;

  void SenderLoop(Conn* conn, const RequestFn& request_fn);
  void ReceiverLoop(Conn* conn, const ResponseFn& response_fn);

  OpenLoopOptions options_;
  GoalQpsController controller_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> hotset_shifts_{0};
  std::atomic<double> trim_{1.0};
  std::atomic<bool> stop_{false};
  uint64_t start_ns_ = 0;
  bool ran_ = false;

  OpenLoopReport report_;
};

/// Per-connection YCSB-style request stream whose Zipf hot set follows the
/// run's hotspot epoch. The returned callback owns one generator per
/// connection (safe under OpenLoopLoadGen's one-sender-per-conn contract).
struct YcsbStreamOptions {
  uint64_t keyspace = 65'536;
  bool zipfian = true;
  double theta = 0.99;
  /// ShiftableZipfGenerator mapping mode: scrambled scatter vs clustered
  /// (adjacent hot keys, the paper's default locality — DESIGN.md §5).
  bool scrambled = true;
  double read_ratio = 0.95;
  size_t value_size = 128;
  uint64_t seed = 42;
};

RequestFn MakeYcsbRequestFn(uint32_t connections, const YcsbStreamOptions& o);

}  // namespace aria::loadgen
