#include "loadgen/arrival.h"

#include <algorithm>
#include <cmath>

namespace aria::loadgen {

ArrivalSchedule::ArrivalSchedule(ArrivalProcess process, double rate_qps,
                                 uint64_t seed)
    : process_(process),
      rate_qps_(rate_qps > 0 ? rate_qps : 1.0),
      gap_nanos_(1e9 / (rate_qps > 0 ? rate_qps : 1.0)),
      rng_(seed) {}

uint64_t ArrivalSchedule::NextGapNanos() {
  if (process_ == ArrivalProcess::kPoisson) {
    // Inverse-CDF exponential. NextDouble() < 1, so the log argument is
    // strictly positive.
    const double u = rng_.NextDouble();
    return static_cast<uint64_t>(-std::log(1.0 - u) * gap_nanos_);
  }
  // Deterministic uniform: integer gap with the fractional nanosecond
  // carried forward, so sum(gaps over N) == N * gap to within 1 ns.
  carry_ += gap_nanos_;
  const uint64_t gap = static_cast<uint64_t>(carry_);
  carry_ -= static_cast<double>(gap);
  return gap;
}

GoalQpsController::GoalQpsController(double goal_qps,
                                     GoalQpsControllerOptions options)
    : goal_qps_(goal_qps), options_(options) {}

double GoalQpsController::OnWindow(double window_seconds, uint64_t offered,
                                   uint64_t completed) {
  if (window_seconds <= 0) return trim_;
  windows_++;
  const double offered_rate = static_cast<double>(offered) / window_seconds;
  const double completed_rate =
      static_cast<double>(completed) / window_seconds;

  achieved_qps_ = windows_ == 1
                      ? completed_rate
                      : options_.ewma_alpha * completed_rate +
                            (1.0 - options_.ewma_alpha) * achieved_qps_;

  // Pacing feedback: if the offered rate runs under the goal (sleep
  // overshoot, brief stalls), speed the schedule up proportionally — but at
  // most 15% per window and max_trim overall. A saturated server drags the
  // offered rate down through TCP backpressure; the trim clamp keeps the
  // controller from fighting that (saturation detection below owns it).
  const double floor_rate = goal_qps_ * 0.05;
  const double correction =
      goal_qps_ / std::max(offered_rate, floor_rate);
  trim_ *= std::clamp(correction, 0.85, 1.15);
  trim_ = std::clamp(trim_, 1.0, options_.max_trim);

  if (completed_rate < options_.saturation_fraction * goal_qps_) {
    lagging_windows_++;
    if (lagging_windows_ >= options_.saturation_windows) saturated_ = true;
  } else {
    lagging_windows_ = 0;
  }
  return trim_;
}

}  // namespace aria::loadgen
