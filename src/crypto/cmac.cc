#include "crypto/cmac.h"

#include <cstring>

namespace aria::crypto {

namespace {
// Left-shift a 128-bit value by one and conditionally xor the GF(2^128)
// reduction constant, per RFC 4493 subkey generation.
void ShiftLeftAndReduce(const uint8_t in[16], uint8_t out[16]) {
  uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    uint8_t next_carry = static_cast<uint8_t>(in[i] >> 7);
    out[i] = static_cast<uint8_t>((in[i] << 1) | carry);
    carry = next_carry;
  }
  if (carry) out[15] ^= 0x87;
}

inline void Xor16(uint8_t* dst, const uint8_t* src) {
  for (int i = 0; i < 16; ++i) dst[i] ^= src[i];
}
}  // namespace

Cmac128::Cmac128(const Aes128& aes) : aes_(aes) {
  uint8_t zero[16] = {0};
  uint8_t l[16];
  aes_.EncryptBlock(zero, l);
  ShiftLeftAndReduce(l, k1_);
  ShiftLeftAndReduce(k1_, k2_);
}

void Cmac128::Mac(const void* data, size_t len, uint8_t out[16]) const {
  Stream s(*this);
  s.Update(data, len);
  s.Final(out);
}

Cmac128::Stream::Stream(const Cmac128& cmac) : cmac_(cmac) {
  std::memset(state_, 0, 16);
}

void Cmac128::Stream::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  if (len == 0) return;
  any_input_ = true;
  // The final block needs special subkey treatment in Final(), so always
  // keep at least one byte..one block buffered; everything before it is
  // absorbed through the bulk CBC-MAC path.
  if (buf_len_ > 0) {
    size_t take = 16 - buf_len_;
    if (take > len) take = len;
    std::memcpy(buf_ + buf_len_, p, take);
    buf_len_ += take;
    p += take;
    len -= take;
    if (len == 0) return;  // buffered block may still be the final one
    cmac_.aes_.CbcMacBlocks(state_, buf_, 1);
    buf_len_ = 0;
  }
  // Absorb all full blocks except a possible final one.
  size_t bulk = (len - 1) / 16;
  if (bulk > 0) {
    cmac_.aes_.CbcMacBlocks(state_, p, bulk);
    p += bulk * 16;
    len -= bulk * 16;
  }
  std::memcpy(buf_, p, len);
  buf_len_ = len;
}

void Cmac128::Stream::Final(uint8_t out[16]) {
  uint8_t last[16];
  if (any_input_ && buf_len_ == 16) {
    std::memcpy(last, buf_, 16);
    Xor16(last, cmac_.k1_);
  } else {
    std::memset(last, 0, 16);
    std::memcpy(last, buf_, buf_len_);
    last[buf_len_] = 0x80;
    Xor16(last, cmac_.k2_);
  }
  Xor16(state_, last);
  cmac_.aes_.EncryptBlock(state_, out);
}

bool MacEqual(const uint8_t a[16], const uint8_t b[16]) {
  uint8_t diff = 0;
  for (int i = 0; i < 16; ++i) diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace aria::crypto
