// Cryptographic random bytes for counter initialization and key generation.
// Implemented as an AES-CTR DRBG: seeded from std::random_device by default,
// or from a fixed seed for reproducible tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "crypto/aes.h"

namespace aria::crypto {

/// AES-CTR based deterministic random bit generator.
class SecureRandom {
 public:
  /// Seeded from std::random_device (non-deterministic).
  SecureRandom();

  /// Deterministic stream for the given seed (tests, reproducible runs).
  explicit SecureRandom(uint64_t seed);

  void Fill(void* out, size_t len);
  uint64_t NextU64();

 private:
  std::unique_ptr<Aes128> aes_;
  uint8_t counter_[16];
};

}  // namespace aria::crypto
