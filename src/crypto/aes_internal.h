// Internal AES helpers shared by the portable and AES-NI translation units.
#pragma once

#include <cstddef>
#include <cstdint>

namespace aria::crypto::internal {

/// FIPS-197 S-box.
extern const uint8_t kSbox[256];

/// Expand a 16-byte key into 11 round keys (176 bytes, FIPS byte order).
void ExpandKey128(const uint8_t key[16], uint8_t round_keys[176]);

/// Portable single-block encryption over an expanded schedule.
void PortableEncryptBlock(const uint8_t round_keys[176], const uint8_t in[16],
                          uint8_t out[16]);

/// AES-NI block encryption (defined in aes_ni.cc, compiled with -maes).
void AesNiEncryptBlocks(const uint8_t round_keys[176], const uint8_t* in,
                        uint8_t* out, size_t n);

/// AES-NI CBC-MAC absorb: state = AES(state ^ block) over `n` consecutive
/// blocks, with the round keys kept in registers across blocks.
void AesNiCbcMac(const uint8_t round_keys[176], uint8_t state[16],
                 const uint8_t* data, size_t n);

/// Runtime CPU support check for AES-NI.
bool CpuHasAesNi();

}  // namespace aria::crypto::internal
