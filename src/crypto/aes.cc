#include "crypto/aes.h"

#include "crypto/aes_internal.h"

namespace aria::crypto {

Aes128::Aes128(const uint8_t key[16], Impl impl) {
  internal::ExpandKey128(key, round_keys_);
  switch (impl) {
    case Impl::kAuto:
      use_ni_ = internal::CpuHasAesNi();
      break;
    case Impl::kPortable:
      use_ni_ = false;
      break;
    case Impl::kAesNi:
      use_ni_ = true;
      break;
  }
}

bool Aes128::HasAesNi() { return internal::CpuHasAesNi(); }

void Aes128::EncryptBlock(const uint8_t in[16], uint8_t out[16]) const {
  if (use_ni_) {
    internal::AesNiEncryptBlocks(round_keys_, in, out, 1);
  } else {
    internal::PortableEncryptBlock(round_keys_, in, out);
  }
}

void Aes128::CbcMacBlocks(uint8_t state[16], const uint8_t* data,
                          size_t n) const {
  if (use_ni_) {
    internal::AesNiCbcMac(round_keys_, state, data, n);
    return;
  }
  for (size_t b = 0; b < n; ++b) {
    for (int i = 0; i < 16; ++i) state[i] ^= data[b * 16 + i];
    internal::PortableEncryptBlock(round_keys_, state, state);
  }
}

void Aes128::EncryptBlocks(const uint8_t* in, uint8_t* out, size_t n) const {
  if (use_ni_) {
    internal::AesNiEncryptBlocks(round_keys_, in, out, n);
    return;
  }
  for (size_t b = 0; b < n; ++b) {
    internal::PortableEncryptBlock(round_keys_, in + b * 16, out + b * 16);
  }
}

}  // namespace aria::crypto
