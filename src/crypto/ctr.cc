#include "crypto/ctr.h"

#include <cstring>

namespace aria::crypto {

void CtrIncrement(uint8_t ctr_block[16]) {
  for (int i = 15; i >= 0; --i) {
    if (++ctr_block[i] != 0) break;
  }
}

void CtrAdd(uint8_t ctr_block[16], uint64_t n) {
  for (int i = 15; i >= 0 && n > 0; --i) {
    uint64_t v = ctr_block[i] + (n & 0xFF);
    ctr_block[i] = static_cast<uint8_t>(v);
    n = (n >> 8) + (v >> 8);
  }
}

void AesCtrCryptAt(const Aes128& aes, const uint8_t ctr_block[16],
                   size_t offset, const uint8_t* in, uint8_t* out,
                   size_t len) {
  if (len == 0) return;
  uint8_t ctr[16];
  std::memcpy(ctr, ctr_block, 16);
  CtrAdd(ctr, offset / 16);
  size_t skip = offset % 16;
  if (skip != 0) {
    // Partial first block.
    uint8_t stream[16];
    aes.EncryptBlock(ctr, stream);
    size_t chunk = 16 - skip;
    if (chunk > len) chunk = len;
    for (size_t i = 0; i < chunk; ++i) out[i] = in[i] ^ stream[skip + i];
    CtrIncrement(ctr);
    in += chunk;
    out += chunk;
    len -= chunk;
    if (len == 0) return;
  }
  AesCtrCrypt(aes, ctr, in, out, len);
}

void AesCtrCrypt(const Aes128& aes, const uint8_t ctr_block[16],
                 const uint8_t* in, uint8_t* out, size_t len) {
  uint8_t ctr[16];
  std::memcpy(ctr, ctr_block, 16);

  // Generate the keystream in batches so the AES-NI path amortizes the
  // round-key loads across blocks.
  constexpr size_t kBatchBlocks = 8;
  uint8_t counters[kBatchBlocks * 16];
  uint8_t stream[kBatchBlocks * 16];

  size_t off = 0;
  while (off < len) {
    size_t remaining_blocks = (len - off + 15) / 16;
    size_t blocks =
        remaining_blocks < kBatchBlocks ? remaining_blocks : kBatchBlocks;
    for (size_t b = 0; b < blocks; ++b) {
      std::memcpy(counters + b * 16, ctr, 16);
      CtrIncrement(ctr);
    }
    aes.EncryptBlocks(counters, stream, blocks);
    size_t chunk = blocks * 16;
    if (chunk > len - off) chunk = len - off;
    for (size_t i = 0; i < chunk; ++i) out[off + i] = in[off + i] ^ stream[i];
    off += chunk;
  }
}

}  // namespace aria::crypto
