// AES-NI block encryption. This TU is compiled with -maes; callers reach it
// only after a runtime CPU check (Aes128::HasAesNi).
#include <wmmintrin.h>

#include "crypto/aes_internal.h"

namespace aria::crypto::internal {

void AesNiEncryptBlocks(const uint8_t round_keys[176], const uint8_t* in,
                        uint8_t* out, size_t n) {
  __m128i rk[11];
  for (int i = 0; i < 11; ++i) {
    rk[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_keys + i * 16));
  }
  for (size_t b = 0; b < n; ++b) {
    __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + b * 16));
    s = _mm_xor_si128(s, rk[0]);
    s = _mm_aesenc_si128(s, rk[1]);
    s = _mm_aesenc_si128(s, rk[2]);
    s = _mm_aesenc_si128(s, rk[3]);
    s = _mm_aesenc_si128(s, rk[4]);
    s = _mm_aesenc_si128(s, rk[5]);
    s = _mm_aesenc_si128(s, rk[6]);
    s = _mm_aesenc_si128(s, rk[7]);
    s = _mm_aesenc_si128(s, rk[8]);
    s = _mm_aesenc_si128(s, rk[9]);
    s = _mm_aesenclast_si128(s, rk[10]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + b * 16), s);
  }
}

void AesNiCbcMac(const uint8_t round_keys[176], uint8_t state[16],
                 const uint8_t* data, size_t n) {
  __m128i rk[11];
  for (int i = 0; i < 11; ++i) {
    rk[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_keys + i * 16));
  }
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  for (size_t b = 0; b < n; ++b) {
    s = _mm_xor_si128(
        s, _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + b * 16)));
    s = _mm_xor_si128(s, rk[0]);
    s = _mm_aesenc_si128(s, rk[1]);
    s = _mm_aesenc_si128(s, rk[2]);
    s = _mm_aesenc_si128(s, rk[3]);
    s = _mm_aesenc_si128(s, rk[4]);
    s = _mm_aesenc_si128(s, rk[5]);
    s = _mm_aesenc_si128(s, rk[6]);
    s = _mm_aesenc_si128(s, rk[7]);
    s = _mm_aesenc_si128(s, rk[8]);
    s = _mm_aesenc_si128(s, rk[9]);
    s = _mm_aesenclast_si128(s, rk[10]);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), s);
}

}  // namespace aria::crypto::internal
