#include "crypto/secure_random.h"

#include <cstring>
#include <random>

#include "crypto/ctr.h"

namespace aria::crypto {

SecureRandom::SecureRandom() {
  std::random_device rd;
  uint8_t key[16];
  for (int i = 0; i < 16; i += 4) {
    uint32_t v = rd();
    std::memcpy(key + i, &v, 4);
  }
  aes_ = std::make_unique<Aes128>(key);
  std::memset(counter_, 0, 16);
}

SecureRandom::SecureRandom(uint64_t seed) {
  uint8_t key[16] = {0};
  std::memcpy(key, &seed, 8);
  std::memcpy(key + 8, &seed, 8);
  key[15] ^= 0xA5;
  aes_ = std::make_unique<Aes128>(key);
  std::memset(counter_, 0, 16);
}

void SecureRandom::Fill(void* out, size_t len) {
  if (len == 0) return;  // an empty buffer may come with a null pointer
  uint8_t* p = static_cast<uint8_t*>(out);
  std::memset(p, 0, len);
  AesCtrCrypt(*aes_, counter_, p, p, len);
  // Advance the counter past the blocks just consumed.
  size_t blocks = (len + 15) / 16;
  for (size_t i = 0; i < blocks; ++i) CtrIncrement(counter_);
}

uint64_t SecureRandom::NextU64() {
  uint64_t v;
  Fill(&v, sizeof(v));
  return v;
}

}  // namespace aria::crypto
