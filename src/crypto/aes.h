// AES-128 block cipher with an AES-NI fast path and a portable fallback.
// This stands in for the Intel SGX SDK crypto primitives the paper uses
// (sgx_aes_ctr_encrypt / sgx_rijndael128_cmac are AES-128 based).
#pragma once

#include <cstddef>
#include <cstdint>

namespace aria::crypto {

/// AES-128 with a precomputed key schedule. Encryption only — CTR mode and
/// CMAC never need the inverse cipher.
class Aes128 {
 public:
  enum class Impl {
    kAuto,      ///< AES-NI when the CPU supports it, else portable.
    kPortable,  ///< Force the table-free portable implementation.
    kAesNi,     ///< Force AES-NI (caller must have checked HasAesNi()).
  };

  explicit Aes128(const uint8_t key[16], Impl impl = Impl::kAuto);

  /// Encrypt exactly one 16-byte block. `in` and `out` may alias.
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  /// Encrypt `n` consecutive 16-byte blocks.
  void EncryptBlocks(const uint8_t* in, uint8_t* out, size_t n) const;

  /// CBC-MAC absorb: state = AES(state ^ block) for `n` consecutive blocks.
  /// The CMAC hot loop — keeps round keys in registers on the AES-NI path.
  void CbcMacBlocks(uint8_t state[16], const uint8_t* data, size_t n) const;

  /// True iff this build can use the AES-NI instruction set at runtime.
  static bool HasAesNi();

  bool using_aesni() const { return use_ni_; }

  /// Expanded key schedule: 11 round keys, FIPS-197 byte order.
  const uint8_t* round_keys() const { return round_keys_; }

 private:
  alignas(16) uint8_t round_keys_[176];
  bool use_ni_;
};

}  // namespace aria::crypto
