// AES-CMAC (RFC 4493), the integrity primitive Aria uses everywhere —
// mirrors sgx_rijndael128_cmac_msg. Produces 16-byte tags.
#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/aes.h"

namespace aria::crypto {

/// CMAC engine bound to one AES-128 key. Derives subkeys once; each Mac()
/// call is then one AES pass over the message.
class Cmac128 {
 public:
  explicit Cmac128(const Aes128& aes);

  /// One-shot MAC over a contiguous buffer.
  void Mac(const void* data, size_t len, uint8_t out[16]) const;

  /// Streaming interface for multi-part messages (e.g. the record MAC over
  /// RedPtr || counter || ciphertext || AdField without concatenation).
  class Stream {
   public:
    explicit Stream(const Cmac128& cmac);
    void Update(const void* data, size_t len);
    void Final(uint8_t out[16]);

   private:
    const Cmac128& cmac_;
    uint8_t state_[16];
    uint8_t buf_[16];
    size_t buf_len_ = 0;
    bool any_input_ = false;
  };

 private:
  friend class Stream;
  const Aes128& aes_;
  uint8_t k1_[16];
  uint8_t k2_[16];
};

/// Constant-time 16-byte tag comparison (avoids early-exit timing leak).
bool MacEqual(const uint8_t a[16], const uint8_t b[16]);

}  // namespace aria::crypto
