// AES-128 counter-mode encryption, mirroring sgx_aes_ctr_encrypt with
// 128 counter bits: the 16-byte counter block is incremented as a big-endian
// integer for every keystream block.
#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/aes.h"

namespace aria::crypto {

/// Encrypt or decrypt (identical operation) `len` bytes of `in` into `out`
/// using the keystream AES(ctr), AES(ctr+1), ... `in == out` is allowed.
/// `ctr_block` is not modified.
void AesCtrCrypt(const Aes128& aes, const uint8_t ctr_block[16],
                 const uint8_t* in, uint8_t* out, size_t len);

/// Like AesCtrCrypt, but processes the keystream window starting at byte
/// `offset` of the stream defined by `ctr_block` — so a suffix of a message
/// (e.g. just the value of an encrypted key||value record) can be decrypted
/// without generating keystream for the prefix.
void AesCtrCryptAt(const Aes128& aes, const uint8_t ctr_block[16],
                   size_t offset, const uint8_t* in, uint8_t* out,
                   size_t len);

/// Big-endian increment of a 16-byte counter block (exposed for tests).
void CtrIncrement(uint8_t ctr_block[16]);

/// Big-endian addition of `n` to a 16-byte counter block.
void CtrAdd(uint8_t ctr_block[16], uint64_t n);

}  // namespace aria::crypto
