#include "workload/driver.h"

#include <chrono>

#include "common/random.h"

namespace aria {

namespace {
constexpr size_t kBlobSize = 64 * 1024;
constexpr size_t kMaxValue = 4096;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Driver::Driver(uint64_t seed) {
  blob_.resize(kBlobSize + kMaxValue);
  Random rng(seed);
  for (auto& c : blob_) c = static_cast<char>('a' + rng.Uniform(26));
}

Slice Driver::ValueFor(uint64_t key_id, size_t size) const {
  size_t off = (key_id * 131) % kBlobSize;
  return Slice(blob_.data() + off, size);
}

Status Driver::Prepopulate(
    KVStore* store, uint64_t keyspace,
    const std::function<size_t(uint64_t)>& value_size_for) {
  for (uint64_t id = 0; id < keyspace; ++id) {
    std::string key = MakeKey(id);
    ARIA_RETURN_IF_ERROR(store->Put(key, ValueFor(id, value_size_for(id))));
  }
  return Status::OK();
}

Status Driver::Prepopulate(KVStore* store, uint64_t keyspace,
                           size_t value_size) {
  return Prepopulate(store, keyspace,
                     [value_size](uint64_t) { return value_size; });
}

Result<RunResult> Driver::Run(KVStore* store, sgx::EnclaveRuntime* enclave,
                              const std::function<Op()>& next_op,
                              uint64_t num_ops) {
  RunResult r;
  r.ops = num_ops;
  uint64_t start_cycles = enclave->stats().charged_cycles;
  std::string value;
  double t0 = Now();
  for (uint64_t i = 0; i < num_ops; ++i) {
    Op op = next_op();
    std::string key = MakeKey(op.key_id);
    switch (op.type) {
      case OpType::kGet: {
        Status st = store->Get(key, &value);
        if (st.IsNotFound()) {
          r.not_found++;
        } else if (!st.ok()) {
          return st;
        }
        r.gets++;
        break;
      }
      case OpType::kPut: {
        ARIA_RETURN_IF_ERROR(
            store->Put(key, ValueFor(op.key_id, op.value_size)));
        r.puts++;
        break;
      }
      case OpType::kDelete: {
        Status st = store->Delete(key);
        if (!st.ok() && !st.IsNotFound()) return st;
        break;
      }
    }
  }
  r.wall_seconds = Now() - t0;
  uint64_t cycles = enclave->stats().charged_cycles - start_cycles;
  r.sim_seconds = enclave->cost_model().CyclesToSeconds(cycles);
  return r;
}

Result<RunResult> Driver::RunYcsb(KVStore* store,
                                  sgx::EnclaveRuntime* enclave,
                                  const YcsbSpec& spec, uint64_t num_ops) {
  YcsbWorkload wl(spec);
  return Run(store, enclave, [&wl]() { return wl.Next(); }, num_ops);
}

Result<RunResult> Driver::RunEtc(KVStore* store, sgx::EnclaveRuntime* enclave,
                                 const EtcSpec& spec, uint64_t num_ops) {
  EtcWorkload wl(spec);
  return Run(store, enclave, [&wl]() { return wl.Next(); }, num_ops);
}

}  // namespace aria
