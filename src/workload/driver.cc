#include "workload/driver.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <ctime>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/sharded_store.h"

namespace aria {

namespace {
constexpr size_t kBlobSize = 64 * 1024;
constexpr size_t kMaxValue = 4096;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread CPU clock: counts only the cycles this thread actually burned,
// excluding preemption and futex waits. RunThreads attributes per-op cost
// with this clock so the makespan model stays meaningful when the host has
// fewer cores than worker threads (wall time would charge scheduler noise
// to whichever shard the op happened to touch).
uint64_t ThreadCpuNanos() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}
}  // namespace

double ThreadCpuSeconds() {
  return static_cast<double>(ThreadCpuNanos()) * 1e-9;
}

void LatencyHistogram::Record(uint64_t nanos) {
  int b = nanos == 0 ? 0 : std::bit_width(nanos);
  if (b >= kBuckets) b = kBuckets - 1;
  counts_[b]++;
  total_++;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

uint64_t LatencyHistogram::PercentileNanos(double p) const {
  if (total_ == 0) return 0;
  uint64_t target = static_cast<uint64_t>(p * static_cast<double>(total_));
  if (target < 1) target = 1;
  if (target > total_) target = total_;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= target) return (1ull << i) - 1;
  }
  return (1ull << (kBuckets - 1)) - 1;
}

Driver::Driver(uint64_t seed) {
  blob_.resize(kBlobSize + kMaxValue);
  Random rng(seed);
  for (auto& c : blob_) c = static_cast<char>('a' + rng.Uniform(26));
}

Slice Driver::ValueFor(uint64_t key_id, size_t size) const {
  size_t off = (key_id * 131) % kBlobSize;
  return Slice(blob_.data() + off, size);
}

Status Driver::Prepopulate(
    KVStore* store, uint64_t keyspace,
    const std::function<size_t(uint64_t)>& value_size_for) {
  for (uint64_t id = 0; id < keyspace; ++id) {
    std::string key = MakeKey(id);
    ARIA_RETURN_IF_ERROR(store->Put(key, ValueFor(id, value_size_for(id))));
  }
  return Status::OK();
}

Status Driver::Prepopulate(KVStore* store, uint64_t keyspace,
                           size_t value_size) {
  return Prepopulate(store, keyspace,
                     [value_size](uint64_t) { return value_size; });
}

Result<RunResult> Driver::Run(KVStore* store, sgx::EnclaveRuntime* enclave,
                              const std::function<Op()>& next_op,
                              uint64_t num_ops) {
  RunResult r;
  r.ops = num_ops;
  uint64_t start_cycles = enclave->stats().charged_cycles;
  std::string value;
  double t0 = Now();
  for (uint64_t i = 0; i < num_ops; ++i) {
    Op op = next_op();
    std::string key = MakeKey(op.key_id);
    switch (op.type) {
      case OpType::kGet: {
        Status st = store->Get(key, &value);
        if (st.IsNotFound()) {
          r.not_found++;
        } else if (!st.ok()) {
          return st;
        }
        r.gets++;
        break;
      }
      case OpType::kPut: {
        ARIA_RETURN_IF_ERROR(
            store->Put(key, ValueFor(op.key_id, op.value_size)));
        r.puts++;
        break;
      }
      case OpType::kDelete: {
        Status st = store->Delete(key);
        if (!st.ok() && !st.IsNotFound()) return st;
        break;
      }
      case OpType::kRmw: {
        // Read-modify-write (YCSB-F): read the current value, write a new
        // one for the same key. An absent key is a normal upsert.
        Status st = store->Get(key, &value);
        if (st.IsNotFound()) {
          r.not_found++;
        } else if (!st.ok()) {
          return st;
        }
        ARIA_RETURN_IF_ERROR(
            store->Put(key, ValueFor(op.key_id, op.value_size)));
        r.rmws++;
        break;
      }
    }
  }
  r.wall_seconds = Now() - t0;
  uint64_t cycles = enclave->stats().charged_cycles - start_cycles;
  r.sim_seconds = enclave->cost_model().CyclesToSeconds(cycles);
  return r;
}

Result<RunResult> Driver::RunYcsb(KVStore* store,
                                  sgx::EnclaveRuntime* enclave,
                                  const YcsbSpec& spec, uint64_t num_ops) {
  YcsbWorkload wl(spec);
  return Run(store, enclave, [&wl]() { return wl.Next(); }, num_ops);
}

Result<RunResult> Driver::RunEtc(KVStore* store, sgx::EnclaveRuntime* enclave,
                                 const EtcSpec& spec, uint64_t num_ops) {
  EtcWorkload wl(spec);
  return Run(store, enclave, [&wl]() { return wl.Next(); }, num_ops);
}

Result<ThreadRunResult> Driver::RunThreads(
    ShardedStore* store,
    const std::function<std::function<Op()>(uint64_t thread)>& gen_for_thread,
    uint64_t threads, uint64_t ops_per_thread) {
  if (threads == 0) return Status::InvalidArgument("threads must be >= 1");
  const uint32_t shards = store->num_shards();

  struct Worker {
    RunResult r;
    LatencyHistogram hist;
    std::vector<double> shard_cpu;
    double lockfree_cpu = 0.0;  // GETs served lock-free: no serial floor
    Status status = Status::OK();
  };
  std::vector<Worker> workers(threads);
  // Build every generator on this thread before spawning, so per-thread
  // RNG construction cannot race.
  std::vector<std::function<Op()>> gens;
  gens.reserve(threads);
  for (uint64_t t = 0; t < threads; ++t) gens.push_back(gen_for_thread(t));

  std::vector<uint64_t> cycles_before(shards);
  std::vector<uint64_t> shared_before(shards);
  for (uint32_t i = 0; i < shards; ++i) {
    cycles_before[i] = store->shard_charged_cycles(i);
    shared_before[i] = store->shard_shared_charged_cycles(i);
  }

  double t0 = Now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (uint64_t t = 0; t < threads; ++t) {
    Worker* w = &workers[t];
    std::function<Op()> next = std::move(gens[t]);
    pool.emplace_back([this, store, w, next = std::move(next), ops_per_thread,
                       shards]() {
      w->shard_cpu.assign(shards, 0.0);
      std::string value;
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        Op op = next();
        std::string key = MakeKey(op.key_id);
        uint32_t shard = store->ShardOf(key);
        uint64_t start = ThreadCpuNanos();
        Status st = Status::OK();
        bool lock_free = false;
        switch (op.type) {
          case OpType::kGet: {
            st = store->Get(key, &value, &lock_free);
            if (st.IsNotFound()) {
              w->r.not_found++;
              st = Status::OK();
            }
            w->r.gets++;
            break;
          }
          case OpType::kPut:
            st = store->Put(key, ValueFor(op.key_id, op.value_size));
            w->r.puts++;
            break;
          case OpType::kDelete: {
            st = store->Delete(key);
            if (st.IsNotFound()) st = Status::OK();
            break;
          }
          case OpType::kRmw: {
            st = store->Get(key, &value, &lock_free);
            if (st.IsNotFound()) {
              w->r.not_found++;
              st = Status::OK();
            }
            // The write half always holds the shard lock, so an RMW never
            // counts as lock-free even if its read half was served so.
            lock_free = false;
            if (st.ok()) {
              st = store->Put(key, ValueFor(op.key_id, op.value_size));
            }
            w->r.rmws++;
            break;
          }
        }
        uint64_t ns = ThreadCpuNanos() - start;
        w->hist.Record(ns);
        // A lock-free-served GET never held the shard lock, so its service
        // time parallelizes freely: count it toward total busy time but
        // keep it off the shard's serial floor.
        if (lock_free) {
          w->lockfree_cpu += static_cast<double>(ns) * 1e-9;
        } else {
          w->shard_cpu[shard] += static_cast<double>(ns) * 1e-9;
        }
        w->r.ops++;
        if (!st.ok()) {
          w->status = st;
          break;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  double wall = Now() - t0;

  ThreadRunResult out;
  out.num_threads = threads;
  out.totals.wall_seconds = wall;
  std::vector<double> shard_busy(shards, 0.0);
  double lockfree_busy = 0.0;
  for (const Worker& w : workers) {
    if (!w.status.ok()) return w.status;
    out.totals.ops += w.r.ops;
    out.totals.gets += w.r.gets;
    out.totals.puts += w.r.puts;
    out.totals.rmws += w.r.rmws;
    out.totals.not_found += w.r.not_found;
    out.latency.Merge(w.hist);
    for (uint32_t i = 0; i < shards; ++i) shard_busy[i] += w.shard_cpu[i];
    lockfree_busy += w.lockfree_cpu;
  }
  // Per-shard simulated time. The serialized share (charged under the
  // shard lock) joins that shard's serial floor; the shared share (charged
  // by lock-free readers through ChargeShared*) parallelizes like the
  // lock-free CPU time it accompanies, so it only joins the totals.
  const sgx::CostModel& model = store->cost_model();
  for (uint32_t i = 0; i < shards; ++i) {
    uint64_t delta = store->shard_charged_cycles(i) - cycles_before[i];
    double sim = model.CyclesToSeconds(delta);
    out.totals.sim_seconds += sim;
    shard_busy[i] += sim;
    uint64_t shared_delta =
        store->shard_shared_charged_cycles(i) - shared_before[i];
    double shared_sim = model.CyclesToSeconds(shared_delta);
    out.totals.sim_seconds += shared_sim;
    lockfree_busy += shared_sim;
  }
  double total_busy = lockfree_busy;
  double max_busy = 0.0;
  for (double b : shard_busy) {
    total_busy += b;
    max_busy = std::max(max_busy, b);
  }
  out.total_busy_seconds = total_busy;
  out.lockfree_busy_seconds = lockfree_busy;
  out.max_shard_busy_seconds = max_busy;
  out.effective_seconds =
      std::max(total_busy / static_cast<double>(threads), max_busy);
  out.invariants = store->CheckInvariants();
  return out;
}

}  // namespace aria
