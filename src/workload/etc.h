// Facebook ETC workload emulation (paper §VI-B, after Atikoglu et al.,
// SIGMETRICS'12): 16-byte keys; 40% of the keyspace holds tiny values
// (1-13 B), 55% small (14-300 B), 5% large (>300 B). Requests to the
// tiny+small population are zipfian (0.99); large items are chosen
// uniformly at random.
#pragma once

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "workload/ycsb.h"
#include "workload/zipf.h"

namespace aria {

struct EtcSpec {
  uint64_t keyspace = 10'000'000;
  double read_ratio = 0.95;
  double skewness = 0.99;
  uint64_t seed = 42;
  /// Fraction of requests aimed at the large-item population. The paper
  /// gives sizes (5% of keys are large) but not the request split; we send
  /// requests to large items in proportion to their keyspace share.
  double large_request_fraction = 0.05;
  /// See YcsbSpec::scrambled.
  bool scrambled = false;
  size_t max_large_value = 1024;
};

class EtcWorkload {
 public:
  explicit EtcWorkload(const EtcSpec& spec);

  Op Next();

  /// Value size for key `id` — deterministic, so prepopulation and
  /// overwrites agree. Tiny for the first 40% of ids, small for the next
  /// 55%, large for the rest.
  size_t ValueSizeFor(uint64_t id) const;

  const EtcSpec& spec() const { return spec_; }
  uint64_t tiny_small_keys() const { return tiny_small_keys_; }

 private:
  EtcSpec spec_;
  uint64_t tiny_keys_;
  uint64_t tiny_small_keys_;  // tiny + small population size
  Random op_rng_;
  ZipfGenerator zipf_;        // over the tiny+small population
  Random large_rng_;
};

}  // namespace aria
