// Workload driver: prepopulates a store and replays an operation stream,
// reporting throughput as ops / (measured wall time + simulated SGX time).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/kv_store.h"
#include "obs/invariants.h"
#include "sgxsim/enclave_runtime.h"
#include "workload/etc.h"
#include "workload/ycsb.h"

namespace aria {

class ShardedStore;

/// Per-thread CPU clock (CLOCK_THREAD_CPUTIME_ID) in seconds: only the
/// cycles the calling thread actually burned, excluding preemption and
/// blocking waits. RunThreads uses it for per-shard makespan accounting;
/// the network load generator uses the same clock so in-process and
/// over-network runs report comparable service-time numbers.
double ThreadCpuSeconds();

struct RunResult {
  uint64_t ops = 0;
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t rmws = 0;  ///< read-modify-writes (YCSB-F); not double-counted
  uint64_t not_found = 0;
  double wall_seconds = 0.0;
  double sim_seconds = 0.0;

  double TotalSeconds() const { return wall_seconds + sim_seconds; }
  double Throughput() const {
    double t = TotalSeconds();
    return t > 0 ? static_cast<double>(ops) / t : 0.0;
  }
};

/// Log2-bucketed latency histogram (nanoseconds). Cheap enough for the
/// per-op path; each worker thread keeps its own and they are merged after
/// the run.
class LatencyHistogram {
 public:
  void Record(uint64_t nanos);
  void Merge(const LatencyHistogram& other);
  uint64_t total() const { return total_; }

  /// Upper bound (ns) of the bucket holding quantile `p` in (0, 1]; 0 when
  /// the histogram is empty.
  uint64_t PercentileNanos(double p) const;

 private:
  static constexpr int kBuckets = 40;  // up to ~9 minutes per op
  uint64_t counts_[kBuckets] = {};
  uint64_t total_ = 0;
};

/// Result of a multi-threaded run against a ShardedStore.
struct ThreadRunResult {
  /// ops/gets/puts/not_found summed over workers; wall_seconds is the
  /// spawn-to-join wall time, sim_seconds the summed per-shard enclave
  /// charge deltas.
  RunResult totals;
  uint64_t num_threads = 1;
  /// Per-op cost is measured with the per-thread CPU clock (work actually
  /// done, excluding preemption and lock waits) and attributed to the shard
  /// the key hashed to; per-shard simulated enclave time is added on top.
  /// GETs served by the lock-free optimistic path (and the simulated cycles
  /// their shared reads charge) do not serialize on any shard lock, so
  /// they count toward total_busy_seconds only — never toward a shard's
  /// serial floor.
  double total_busy_seconds = 0.0;      ///< all cpu + sim, incl. lock-free
  double max_shard_busy_seconds = 0.0;  ///< busiest shard's serialized cpu + sim
  double lockfree_busy_seconds = 0.0;   ///< lock-free-served share of total
  /// Makespan lower bound: max(total_busy/num_threads, max_shard_busy) —
  /// perfect balance vs the serial floor of the busiest shard. The host
  /// may have fewer cores than worker threads (CI runs on one), so raw
  /// wall time cannot exhibit scaling; this is what an M-core host could
  /// achieve with this shard assignment. See DESIGN.md §8.
  double effective_seconds = 0.0;
  LatencyHistogram latency;
  /// Cross-layer conservation-law audit (DESIGN.md §9), run after the
  /// workers joined: every threaded run doubles as an invariant check.
  obs::InvariantReport invariants;

  double Throughput() const {
    return effective_seconds > 0
               ? static_cast<double>(totals.ops) / effective_seconds
               : 0.0;
  }
};

/// Replays operations against a store. Not a class with state machines on
/// purpose: benchmarks compose it with any generator lambda.
class Driver {
 public:
  explicit Driver(uint64_t seed = 7);

  /// Insert keys [0, keyspace) with per-key value sizes.
  Status Prepopulate(KVStore* store, uint64_t keyspace,
                     const std::function<size_t(uint64_t)>& value_size_for);

  /// Fixed-size convenience overload.
  Status Prepopulate(KVStore* store, uint64_t keyspace, size_t value_size);

  /// Run `num_ops` operations drawn from `next_op`; wall time covers only
  /// the replay loop, simulated time is the enclave's charge delta.
  Result<RunResult> Run(KVStore* store, sgx::EnclaveRuntime* enclave,
                        const std::function<Op()>& next_op, uint64_t num_ops);

  Result<RunResult> RunYcsb(KVStore* store, sgx::EnclaveRuntime* enclave,
                            const YcsbSpec& spec, uint64_t num_ops);

  Result<RunResult> RunEtc(KVStore* store, sgx::EnclaveRuntime* enclave,
                           const EtcSpec& spec, uint64_t num_ops);

  /// Run `threads` workers against a sharded store, each replaying
  /// `ops_per_thread` ops from its own generator. `gen_for_thread(t)` is
  /// invoked on the calling thread before any worker spawns, so it can
  /// hand each worker a private RNG stream with no shared state. Per-op
  /// thread-CPU time (service time, not queueing) is attributed to the
  /// shard the key hashes to; per-shard simulated time is each enclave's
  /// cycle delta, read after the join.
  Result<ThreadRunResult> RunThreads(
      ShardedStore* store,
      const std::function<std::function<Op()>(uint64_t thread)>&
          gen_for_thread,
      uint64_t threads, uint64_t ops_per_thread);

 private:
  /// Value payload for a Put: a view into a pre-generated random blob so
  /// value construction does not pollute the measurement.
  Slice ValueFor(uint64_t key_id, size_t size) const;

  std::string blob_;
};

}  // namespace aria
