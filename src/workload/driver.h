// Workload driver: prepopulates a store and replays an operation stream,
// reporting throughput as ops / (measured wall time + simulated SGX time).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/kv_store.h"
#include "sgxsim/enclave_runtime.h"
#include "workload/etc.h"
#include "workload/ycsb.h"

namespace aria {

struct RunResult {
  uint64_t ops = 0;
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t not_found = 0;
  double wall_seconds = 0.0;
  double sim_seconds = 0.0;

  double TotalSeconds() const { return wall_seconds + sim_seconds; }
  double Throughput() const {
    double t = TotalSeconds();
    return t > 0 ? static_cast<double>(ops) / t : 0.0;
  }
};

/// Replays operations against a store. Not a class with state machines on
/// purpose: benchmarks compose it with any generator lambda.
class Driver {
 public:
  explicit Driver(uint64_t seed = 7);

  /// Insert keys [0, keyspace) with per-key value sizes.
  Status Prepopulate(KVStore* store, uint64_t keyspace,
                     const std::function<size_t(uint64_t)>& value_size_for);

  /// Fixed-size convenience overload.
  Status Prepopulate(KVStore* store, uint64_t keyspace, size_t value_size);

  /// Run `num_ops` operations drawn from `next_op`; wall time covers only
  /// the replay loop, simulated time is the enclave's charge delta.
  Result<RunResult> Run(KVStore* store, sgx::EnclaveRuntime* enclave,
                        const std::function<Op()>& next_op, uint64_t num_ops);

  Result<RunResult> RunYcsb(KVStore* store, sgx::EnclaveRuntime* enclave,
                            const YcsbSpec& spec, uint64_t num_ops);

  Result<RunResult> RunEtc(KVStore* store, sgx::EnclaveRuntime* enclave,
                           const EtcSpec& spec, uint64_t num_ops);

 private:
  /// Value payload for a Put: a view into a pre-generated random blob so
  /// value construction does not pollute the measurement.
  Slice ValueFor(uint64_t key_id, size_t size) const;

  std::string blob_;
};

}  // namespace aria
