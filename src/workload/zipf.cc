#include "workload/zipf.h"

#include <cmath>
#include <map>
#include <mutex>

#include "common/hash.h"

namespace aria {

namespace {
// zeta(n, theta) is O(n) to compute and identical across generator
// instances; benchmarks construct many generators over the same keyspace.
std::mutex g_zeta_mu;
std::map<std::pair<uint64_t, double>, double>& ZetaCache() {
  static auto* cache = new std::map<std::pair<uint64_t, double>, double>();
  return *cache;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  // The Gray et al. sampling formula divides by (1 - theta); at theta == 1
  // exactly it degenerates (alpha = inf collapses every draw to rank 0).
  // Nudge to the nearest well-behaved value; the distribution difference is
  // far below sampling noise.
  if (theta_ > 0.9999 && theta_ < 1.0001) theta_ = 0.9999;
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  {
    std::lock_guard<std::mutex> lock(g_zeta_mu);
    auto it = ZetaCache().find({n, theta});
    if (it != ZetaCache().end()) return it->second;
  }
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  std::lock_guard<std::mutex> lock(g_zeta_mu);
  ZetaCache().emplace(std::make_pair(n, theta), sum);
  return sum;
}

uint64_t ZipfGenerator::NextRank() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

ShiftableZipfGenerator::ShiftableZipfGenerator(uint64_t n, double theta,
                                               uint64_t seed, bool scrambled)
    : zipf_(n, theta, seed), scrambled_(scrambled) {
  // Golden-ratio stride: successive epochs place the clustered hot set at
  // low-discrepancy positions around the keyspace, so no two nearby epochs
  // overlap until the epoch count approaches n / hot-set-size.
  stride_ = static_cast<uint64_t>(
      (static_cast<__uint128_t>(n) * 0x9E3779B97F4A7C15ull) >> 64);
  if (stride_ == 0) stride_ = 1;
}

uint64_t ShiftableZipfGenerator::KeyForRank(uint64_t rank) const {
  if (!scrambled_) return (rank + epoch_ * stride_) % zipf_.n();
  // Epoch 0 must reproduce ZipfGenerator::NextKey (same hash, same salt);
  // later epochs perturb the salt, which rescatters every rank.
  const uint64_t salt = 0xDEADBEEF + epoch_ * 0x9E3779B97F4A7C15ull;
  return Hash64(&rank, sizeof(rank), salt) % zipf_.n();
}

uint64_t ZipfGenerator::NextKey() {
  // Scramble the rank so popular keys are spread across the keyspace
  // (YCSB's ScrambledZipfian).
  uint64_t rank = NextRank();
  return Hash64(&rank, sizeof(rank), 0xDEADBEEF) % n_;
}

}  // namespace aria
