#include "workload/ycsb.h"

#include <cstdio>

#include "common/hash.h"

namespace aria {

std::string MakeKey(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "K%015llu",
                static_cast<unsigned long long>(id));
  return std::string(buf, 16);
}

std::string MakeValue(uint64_t key_id, size_t size, uint32_t version) {
  std::string v(size, '\0');
  uint64_t state = Hash64(&key_id, sizeof(key_id), version);
  for (size_t i = 0; i < size; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    v[i] = static_cast<char>('A' + ((state >> 33) % 26));
  }
  return v;
}

YcsbWorkload::YcsbWorkload(const YcsbSpec& spec)
    : spec_(spec), op_rng_(spec.seed ^ 0x9E3779B9) {
  if (spec_.distribution == KeyDistribution::kZipfian) {
    zipf_ = std::make_unique<ZipfGenerator>(spec_.keyspace, spec_.skewness,
                                            spec_.seed);
  } else {
    uniform_ = std::make_unique<UniformGenerator>(spec_.keyspace, spec_.seed);
  }
}

Op YcsbWorkload::Next() {
  Op op;
  // One uniform draw splits three ways; with rmw_ratio == 0 this consumes
  // the RNG stream exactly like the original Bernoulli(read_ratio) split.
  double u = op_rng_.NextDouble();
  if (u < spec_.read_ratio) {
    op.type = OpType::kGet;
  } else if (u < spec_.read_ratio + spec_.rmw_ratio) {
    op.type = OpType::kRmw;
  } else {
    op.type = OpType::kPut;
  }
  if (zipf_) {
    op.key_id = spec_.scrambled ? zipf_->NextKey() : zipf_->NextRank();
  } else {
    op.key_id = uniform_->NextKey();
  }
  op.value_size = spec_.value_size;
  return op;
}

}  // namespace aria
