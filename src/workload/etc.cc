#include "workload/etc.h"

#include "common/hash.h"

namespace aria {

EtcWorkload::EtcWorkload(const EtcSpec& spec)
    : spec_(spec),
      tiny_keys_(static_cast<uint64_t>(spec.keyspace * 0.40)),
      tiny_small_keys_(static_cast<uint64_t>(spec.keyspace * 0.95)),
      op_rng_(spec.seed ^ 0x5bd1e995),
      zipf_(tiny_small_keys_, spec.skewness, spec.seed),
      large_rng_(spec.seed ^ 0xE7C0ull) {}

size_t EtcWorkload::ValueSizeFor(uint64_t id) const {
  uint64_t h = Hash64(&id, sizeof(id), 0xE7C);
  if (id < tiny_keys_) return 1 + h % 13;            // 1-13 B
  if (id < tiny_small_keys_) return 14 + h % 287;    // 14-300 B
  size_t span = spec_.max_large_value - 300;
  return 301 + h % span;                             // 301..max B
}

Op EtcWorkload::Next() {
  Op op;
  op.type = op_rng_.Bernoulli(spec_.read_ratio) ? OpType::kGet : OpType::kPut;
  if (op_rng_.Bernoulli(spec_.large_request_fraction) &&
      tiny_small_keys_ < spec_.keyspace) {
    op.key_id =
        tiny_small_keys_ + large_rng_.Uniform(spec_.keyspace - tiny_small_keys_);
  } else {
    op.key_id = spec_.scrambled ? zipf_.NextKey() : zipf_.NextRank();
  }
  op.value_size = ValueSizeFor(op.key_id);
  return op;
}

}  // namespace aria
