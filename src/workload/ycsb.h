// YCSB-style microbenchmark workload (paper §VI-A): fixed 16-byte keys,
// configurable value size, read ratio and key distribution.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"
#include "workload/zipf.h"

namespace aria {

enum class KeyDistribution { kUniform, kZipfian };

enum class OpType { kGet, kPut, kDelete, kRmw };

struct YcsbSpec {
  uint64_t keyspace = 10'000'000;
  double read_ratio = 0.95;        ///< fraction of Gets
  /// Fraction of read-modify-writes (YCSB workload F). Drawn after the
  /// read fraction: P(Get) = read_ratio, P(Rmw) = rmw_ratio, the rest are
  /// Puts. Default 0 reproduces the original two-way mix exactly (same RNG
  /// stream, same ops).
  double rmw_ratio = 0.0;
  size_t value_size = 16;          ///< 16 / 128 / 512 in the paper
  KeyDistribution distribution = KeyDistribution::kZipfian;
  double skewness = 0.99;          ///< zipf theta
  /// Scramble zipf ranks over the keyspace (YCSB's ScrambledZipfian).
  /// Default off: hot keys are the low ids, so their counters cluster into
  /// few Merkle-tree leaves — the locality the paper's numbers imply.
  bool scrambled = false;
  uint64_t seed = 42;
};

struct Op {
  OpType type;
  uint64_t key_id;
  size_t value_size;
};

/// Formats key id `id` as the canonical fixed 16-byte key.
std::string MakeKey(uint64_t id);

/// Deterministic value bytes for (key, version); tests use it to check that
/// reads return the last written version.
std::string MakeValue(uint64_t key_id, size_t size, uint32_t version = 0);

/// Generates the operation stream for a YCSB spec.
class YcsbWorkload {
 public:
  explicit YcsbWorkload(const YcsbSpec& spec);

  Op Next();

  const YcsbSpec& spec() const { return spec_; }

 private:
  YcsbSpec spec_;
  Random op_rng_;
  std::unique_ptr<ZipfGenerator> zipf_;
  std::unique_ptr<UniformGenerator> uniform_;
};

}  // namespace aria
