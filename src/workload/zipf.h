// Zipfian key-popularity generator, following the YCSB implementation of
// the Gray et al. "Quickly generating billion-record synthetic databases"
// algorithm, plus hash-scrambling so hot keys are spread over the keyspace.
#pragma once

#include <cstdint>

#include "common/random.h"

namespace aria {

class ZipfGenerator {
 public:
  /// Ranks 0..n-1 with P(rank) ∝ 1/(rank+1)^theta. theta == skewness
  /// (0.99 is the YCSB default).
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 1);

  /// Next rank (0 = most popular).
  uint64_t NextRank();

  /// Next key id: the rank scrambled over [0, n) so popularity is not
  /// correlated with key order.
  uint64_t NextKey();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Random rng_;
};

/// Zipf generator whose hot key-set can be relocated mid-run ("dynamic
/// hotspot migration"). The rank distribution is the plain ZipfGenerator;
/// what `Shift(epoch)` changes is the rank -> key mapping, so after a shift
/// the same popularity mass lands on a (nearly) disjoint set of keys and
/// every residency structure downstream (Secure Cache, EPC paging) must
/// re-learn the hot set from scratch.
///
/// Two mapping modes, matching YcsbSpec::scrambled:
///  * scrambled  — key = Hash64(rank, salt(epoch)) % n. Epoch 0 reproduces
///    ZipfGenerator::NextKey exactly; different epochs give independent
///    scatters, so the expected top-k overlap between epochs is k^2/n.
///  * clustered  — key = (rank + epoch * stride) % n with a golden-ratio
///    stride, keeping the paper's hot-keys-are-adjacent locality (DESIGN.md
///    §5) while moving the whole cluster far away on every shift.
class ShiftableZipfGenerator {
 public:
  ShiftableZipfGenerator(uint64_t n, double theta, uint64_t seed,
                         bool scrambled = true);

  /// Relocate the hot set. Instantaneous and O(1); any epoch value is
  /// valid (re-entering an earlier epoch restores its exact mapping).
  void Shift(uint64_t epoch) { epoch_ = epoch; }
  uint64_t epoch() const { return epoch_; }

  uint64_t NextRank() { return zipf_.NextRank(); }
  uint64_t NextKey() { return KeyForRank(zipf_.NextRank()); }

  /// The key `rank` maps to under the current epoch (deterministic, does
  /// not advance the generator) — tests use it to measure hot-set overlap
  /// across epochs.
  uint64_t KeyForRank(uint64_t rank) const;

  uint64_t n() const { return zipf_.n(); }
  double theta() const { return zipf_.theta(); }

 private:
  ZipfGenerator zipf_;
  bool scrambled_;
  uint64_t epoch_ = 0;
  uint64_t stride_;  ///< clustered-mode per-epoch displacement
};

/// Uniform key generator with the same interface.
class UniformGenerator {
 public:
  UniformGenerator(uint64_t n, uint64_t seed = 1) : n_(n), rng_(seed) {}
  uint64_t NextKey() { return rng_.Uniform(n_); }
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  Random rng_;
};

}  // namespace aria
