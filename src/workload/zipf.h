// Zipfian key-popularity generator, following the YCSB implementation of
// the Gray et al. "Quickly generating billion-record synthetic databases"
// algorithm, plus hash-scrambling so hot keys are spread over the keyspace.
#pragma once

#include <cstdint>

#include "common/random.h"

namespace aria {

class ZipfGenerator {
 public:
  /// Ranks 0..n-1 with P(rank) ∝ 1/(rank+1)^theta. theta == skewness
  /// (0.99 is the YCSB default).
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 1);

  /// Next rank (0 = most popular).
  uint64_t NextRank();

  /// Next key id: the rank scrambled over [0, n) so popularity is not
  /// correlated with key order.
  uint64_t NextKey();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Random rng_;
};

/// Uniform key generator with the same interface.
class UniformGenerator {
 public:
  UniformGenerator(uint64_t n, uint64_t seed = 1) : n_(n), rng_(seed) {}
  uint64_t NextKey() { return rng_.Uniform(n_); }
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  Random rng_;
};

}  // namespace aria
