#include "alloc/heap_allocator.h"

#include <cstdlib>
#include <cstring>

#include "common/fault_injection.h"
#include "sgxsim/edge_calls.h"

namespace aria {

namespace {
// Size classes: powers of two plus midpoints (16, 24, 32, 48, 64, 96, ...).
// Matches the paper's "different sizes of data blocks" with low internal
// fragmentation for typical KV record sizes.
constexpr size_t kMinClass = 16;
}  // namespace

size_t HeapAllocator::RoundUpToClass(size_t size) {
  if (size <= kMinClass) return kMinClass;
  // Round up to p or p + p/2 where p is a power of two.
  size_t p = kMinClass;
  while (p < size) {
    size_t mid = p + p / 2;
    if (size <= mid && mid > p) return mid;
    p *= 2;
  }
  return p;
}

HeapAllocator::HeapAllocator(sgx::EnclaveRuntime* enclave)
    : enclave_(enclave) {}

HeapAllocator::~HeapAllocator() {
  for (auto& [base, chunk] : chunks_) {
    (void)base;
    std::free(chunk->base);
    if (chunk->bitmap != nullptr) enclave_->TrustedFree(chunk->bitmap);
  }
}

HeapAllocator::Chunk* HeapAllocator::NewChunk(size_t block_size,
                                              size_t num_chunks) {
  // Acquiring raw memory from the host is the one operation that still
  // crosses the boundary; it is amortized over kChunkSize/block_size
  // allocations.
  enclave_->Ocall();
  stats_.ocalls++;
  size_t total = kChunkSize * num_chunks;
  void* base = std::aligned_alloc(kChunkSize, total);
  if (base == nullptr) return nullptr;

  auto chunk = std::make_unique<Chunk>();
  chunk->base = static_cast<uint8_t*>(base);
  chunk->block_size = block_size;
  chunk->num_blocks = num_chunks > 1 ? 1 : kChunkSize / block_size;
  chunk->huge_chunks = num_chunks;
  chunk->bitmap_words = (chunk->num_blocks + 63) / 64;
  chunk->bitmap = static_cast<uint64_t*>(
      enclave_->TrustedAlloc(chunk->bitmap_words * sizeof(uint64_t)));
  if (chunk->bitmap == nullptr) {
    std::free(base);
    return nullptr;
  }
  stats_.chunks += num_chunks;
  stats_.bytes_reserved += total;
  stats_.trusted_metadata_bytes +=
      chunk->bitmap_words * sizeof(uint64_t) + sizeof(Chunk);

  Chunk* raw = chunk.get();
  chunks_.emplace(reinterpret_cast<uintptr_t>(base), std::move(chunk));

  // Publish small-class chunk geometry for lock-free readers. Huge chunks
  // stay unregistered: they are the only chunks Free() ever unmaps, and a
  // registry entry must outlive every reader. An unregistered (or
  // overflowed) address simply resolves to 0 → locked fallback.
  if (num_chunks == 1) {
    if (registry_ == nullptr) {
      registry_.reset(new RegisteredChunk[kMaxRegisteredChunks]);
    }
    size_t n = registered_chunks_.load(std::memory_order_relaxed);
    if (n < kMaxRegisteredChunks) {
      registry_[n].base = reinterpret_cast<uintptr_t>(base);
      registry_[n].block_size = raw->block_size;
      registry_[n].num_blocks = raw->num_blocks;
      registered_chunks_.store(n + 1, std::memory_order_release);
    }
  }
  return raw;
}

Status HeapAllocator::ValidateAndMark(Chunk* chunk, size_t block_index,
                                      bool expect_used) {
  size_t word = block_index / 64;
  uint64_t bit = 1ull << (block_index % 64);
  enclave_->TouchRead(&chunk->bitmap[word], sizeof(uint64_t));
  bool used = (chunk->bitmap[word] & bit) != 0;
  if (used != expect_used) {
    return Status::IntegrityViolation(
        expect_used ? "allocator: freeing a block marked free"
                    : "allocator: free list yielded a block marked in-use");
  }
  chunk->bitmap[word] ^= bit;
  enclave_->TouchWrite(&chunk->bitmap[word], sizeof(uint64_t));
  return Status::OK();
}

Result<void*> HeapAllocator::Alloc(size_t size) {
  if (size == 0) return Status::InvalidArgument("alloc of size 0");
  if (fault::InjectAllocFailure(fault::Site::kUntrustedAlloc, size)) {
    return Status::CapacityExceeded("injected allocation failure");
  }
  stats_.allocs++;

  if (size > kChunkSize) {
    size_t num_chunks = (size + kChunkSize - 1) / kChunkSize;
    Chunk* chunk = NewChunk(size, num_chunks);
    if (chunk == nullptr) return Status::CapacityExceeded("host OOM");
    chunk->next_unused = 1;
    ARIA_RETURN_IF_ERROR(ValidateAndMark(chunk, 0, /*expect_used=*/false));
    stats_.bytes_in_use += size;
    return static_cast<void*>(chunk->base);
  }

  size_t klass = RoundUpToClass(size);
  auto& candidates = class_chunks_[klass];

  // 1. Pop the class free list of any chunk that has one.
  for (Chunk* chunk : candidates) {
    if (chunk->free_head == nullptr) continue;
    uint8_t* block = static_cast<uint8_t*>(chunk->free_head);
    // The free list lives in untrusted memory: validate before trusting it.
    size_t offset = static_cast<size_t>(block - chunk->base);
    if (block < chunk->base || offset >= kChunkSize ||
        offset % chunk->block_size != 0) {
      return Status::IntegrityViolation("allocator: corrupted free list");
    }
    size_t index = offset / chunk->block_size;
    ARIA_RETURN_IF_ERROR(ValidateAndMark(chunk, index, /*expect_used=*/false));
    // The successor pointer lives in untrusted memory and is validated on
    // the next pop; an injected corruption here must surface there.
    fault::InjectUntrustedRead(fault::Site::kFreeListPop, block, sizeof(void*));
    std::memcpy(&chunk->free_head, block, sizeof(void*));
    stats_.freelist_hits++;
    stats_.bytes_in_use += chunk->block_size;
    return static_cast<void*>(block);
  }

  // 2. Bump-allocate from a chunk with unused blocks.
  for (Chunk* chunk : candidates) {
    if (chunk->next_unused >= chunk->num_blocks) continue;
    size_t index = chunk->next_unused++;
    ARIA_RETURN_IF_ERROR(ValidateAndMark(chunk, index, /*expect_used=*/false));
    stats_.bytes_in_use += chunk->block_size;
    return static_cast<void*>(chunk->base + index * chunk->block_size);
  }

  // 3. Carve a fresh chunk for this class.
  Chunk* chunk = NewChunk(klass, 1);
  if (chunk == nullptr) return Status::CapacityExceeded("host OOM");
  candidates.push_back(chunk);
  size_t index = chunk->next_unused++;
  ARIA_RETURN_IF_ERROR(ValidateAndMark(chunk, index, /*expect_used=*/false));
  stats_.bytes_in_use += chunk->block_size;
  return static_cast<void*>(chunk->base + index * chunk->block_size);
}

Status HeapAllocator::Free(void* p) {
  if (p == nullptr) return Status::InvalidArgument("free of nullptr");
  stats_.frees++;
  uintptr_t base = reinterpret_cast<uintptr_t>(p) & ~(kChunkSize - 1);
  auto it = chunks_.find(base);
  if (it == chunks_.end()) {
    return Status::IntegrityViolation("allocator: pointer outside any chunk");
  }
  Chunk* chunk = it->second.get();
  size_t offset = reinterpret_cast<uintptr_t>(p) - base;
  if (offset % chunk->block_size != 0) {
    return Status::IntegrityViolation("allocator: misaligned block pointer");
  }
  size_t index = offset / chunk->block_size;
  if (index >= chunk->num_blocks) {
    return Status::IntegrityViolation("allocator: block index out of range");
  }
  ARIA_RETURN_IF_ERROR(ValidateAndMark(chunk, index, /*expect_used=*/true));
  stats_.bytes_in_use -= chunk->block_size;

  if (chunk->huge_chunks > 1) {
    // Huge allocations are returned to the host directly.
    enclave_->Ocall();
    stats_.ocalls++;
    stats_.chunks -= chunk->huge_chunks;
    stats_.bytes_reserved -= chunk->huge_chunks * kChunkSize;
    enclave_->TrustedFree(chunk->bitmap);
    std::free(chunk->base);
    chunks_.erase(it);
    return Status::OK();
  }

  // Push onto the chunk's untrusted free list.
  std::memcpy(p, &chunk->free_head, sizeof(void*));
  chunk->free_head = p;
  return Status::OK();
}

size_t HeapAllocator::UsableBytes(const void* p) const {
  uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  uintptr_t base = addr & ~(kChunkSize - 1);
  auto it = chunks_.find(base);
  if (it == chunks_.end()) return 0;
  const Chunk* chunk = it->second.get();
  size_t offset = addr - base;
  if (chunk->huge_chunks > 1) {
    // A huge allocation is one block of block_size == requested bytes.
    // Pointers landing in its trailing chunks resolve to an unknown base
    // and report 0; records are far smaller than a chunk, so any record
    // pointer falls in the first chunk.
    return offset < chunk->block_size ? chunk->block_size - offset : 0;
  }
  if (offset >= chunk->num_blocks * chunk->block_size) return 0;
  return chunk->block_size - offset % chunk->block_size;
}

size_t HeapAllocator::UsableBytesLockFree(const void* p) const {
  const uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  const uintptr_t base = addr & ~(kChunkSize - 1);
  const size_t n = registered_chunks_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    const RegisteredChunk& rc = registry_[i];
    if (rc.base != base) continue;
    const size_t offset = addr - base;
    if (offset >= rc.num_blocks * rc.block_size) return 0;
    return rc.block_size - offset % rc.block_size;
  }
  return 0;
}

Result<void*> OcallAllocator::Alloc(size_t size) {
  if (fault::InjectAllocFailure(fault::Site::kUntrustedAlloc, size)) {
    return Status::CapacityExceeded("injected allocation failure");
  }
  sgx::OcallGuard guard(enclave_);
  ocalls_++;
  guard.CopyParams(sizeof(size_t) + sizeof(void*));
  void* p = std::malloc(size);
  if (p == nullptr) return Status::CapacityExceeded("host OOM");
  live_[reinterpret_cast<uintptr_t>(p)] = size;
  allocs_++;
  bytes_in_use_ += size;
  return p;
}

Status OcallAllocator::Free(void* p) {
  sgx::OcallGuard guard(enclave_);
  ocalls_++;
  guard.CopyParams(sizeof(void*));
  auto it = live_.find(reinterpret_cast<uintptr_t>(p));
  if (it != live_.end()) {
    bytes_in_use_ -= it->second;
    live_.erase(it);
  }
  frees_++;
  std::free(p);
  return Status::OK();
}

void HeapAllocator::CollectMetrics(obs::MetricSink* sink) const {
  sink->Counter("allocs", stats_.allocs);
  sink->Counter("frees", stats_.frees);
  sink->Counter("freelist_hits", stats_.freelist_hits);
  sink->Counter("ocalls", stats_.ocalls);
  sink->Gauge("chunks", stats_.chunks);
  sink->Gauge("bytes_reserved", stats_.bytes_reserved);
  sink->Gauge("bytes_in_use", stats_.bytes_in_use);
  sink->Gauge("trusted_metadata_bytes", stats_.trusted_metadata_bytes);
}

void OcallAllocator::CollectMetrics(obs::MetricSink* sink) const {
  sink->Counter("allocs", allocs_);
  sink->Counter("frees", frees_);
  sink->Counter("ocalls", ocalls_);
  sink->Gauge("bytes_in_use", bytes_in_use_);
}

size_t OcallAllocator::UsableBytes(const void* p) const {
  uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  auto it = live_.upper_bound(addr);
  if (it == live_.begin()) return 0;
  --it;
  uintptr_t end = it->first + it->second;
  return addr < end ? end - addr : 0;
}

}  // namespace aria
