// User-space heap allocator for untrusted memory (paper §V-B).
//
// The enclave cannot call the host allocator without an OCALL, so Aria
// manages untrusted memory itself: the pool is carved into 4 MB chunks,
// each chunk is cut into equal-size data blocks of one size class, a
// per-chunk occupation bitmap lives in the EPC (so the allocator's own
// metadata cannot be corrupted from outside), and per-class free lists are
// threaded through the free blocks themselves in untrusted memory.
// Every pop from a free list is validated against the trusted bitmap; a
// corrupted free-list pointer is detected as an integrity violation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "sgxsim/enclave_runtime.h"

namespace aria {

/// Abstract untrusted-memory allocator, so the OCALL-per-allocation
/// ablation (AriaBase in Fig. 12) can swap in a different implementation.
/// Observable so the invariant checker can attribute every enclave OCALL to
/// allocator boundary crossings ("alloc." namespace).
class UntrustedAllocator : public obs::Observable {
 public:
  virtual ~UntrustedAllocator() = default;

  /// Allocate at least `size` bytes of untrusted memory.
  virtual Result<void*> Alloc(size_t size) = 0;

  /// Release a pointer previously returned by Alloc. Returns
  /// IntegrityViolation if the pointer fails validation (double free,
  /// pointer not block-aligned, unknown chunk).
  virtual Status Free(void* p) = 0;

  /// Bytes usable from `p` — which may point *inside* an allocated block —
  /// to the end of that block, or 0 if `p` lies in no allocation this
  /// allocator manages. This is the trusted allocation bound that
  /// RecordCodec::Verify uses to reject untrusted header lengths before
  /// they can steer a read past the record's block.
  virtual size_t UsableBytes(const void* p) const = 0;

  /// Same bound as UsableBytes but callable from lock-free readers running
  /// concurrently with the (locked) allocating/freeing writer. 0 means
  /// "cannot resolve without the lock" and forces the reader to fall back;
  /// that is the default for allocators with no concurrent-safe lookup
  /// structure.
  virtual size_t UsableBytesLockFree(const void* p) const {
    (void)p;
    return 0;
  }
};

/// Statistics exposed by HeapAllocator for tests and the memory analysis
/// bench.
struct HeapAllocatorStats {
  uint64_t chunks = 0;
  uint64_t bytes_reserved = 0;       ///< total untrusted pool size
  uint64_t bytes_in_use = 0;         ///< block bytes currently allocated
  uint64_t trusted_metadata_bytes = 0;  ///< EPC spent on bitmaps/descriptors
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t freelist_hits = 0;
  uint64_t ocalls = 0;  ///< boundary crossings: chunk acquire + huge release
};

/// The Aria user-space allocator.
class HeapAllocator : public UntrustedAllocator {
 public:
  static constexpr size_t kChunkSize = 4 * 1024 * 1024;

  explicit HeapAllocator(sgx::EnclaveRuntime* enclave);
  ~HeapAllocator() override;

  HeapAllocator(const HeapAllocator&) = delete;
  HeapAllocator& operator=(const HeapAllocator&) = delete;

  Result<void*> Alloc(size_t size) override;
  Status Free(void* p) override;
  size_t UsableBytes(const void* p) const override;
  size_t UsableBytesLockFree(const void* p) const override;

  /// Size class that would service `size` (exposed for tests).
  static size_t RoundUpToClass(size_t size);

  const HeapAllocatorStats& stats() const { return stats_; }

  void CollectMetrics(obs::MetricSink* sink) const override;

 private:
  struct Chunk {
    uint8_t* base = nullptr;
    size_t block_size = 0;
    size_t num_blocks = 0;
    size_t next_unused = 0;        // bump cursor within the chunk
    uint64_t* bitmap = nullptr;    // trusted (EPC) occupation bitmap
    size_t bitmap_words = 0;
    void* free_head = nullptr;     // untrusted intrusive free list
    size_t huge_chunks = 1;        // >1 for multi-chunk (huge) allocations
  };

  Chunk* NewChunk(size_t block_size, size_t num_chunks);
  Status ValidateAndMark(Chunk* chunk, size_t block_index, bool expect_used);

  // Append-only registry of small-class chunk geometries, readable by
  // lock-free GETs while the (locked) writer allocates. Entries are
  // published by a release store of registered_chunks_ and never mutated
  // or removed afterwards — which is sound because only HUGE (>1-chunk)
  // allocations are ever unmapped by Free(), and huge chunks are
  // deliberately not registered (records always live in small classes).
  struct RegisteredChunk {
    uintptr_t base = 0;
    size_t block_size = 0;
    size_t num_blocks = 0;
  };
  static constexpr size_t kMaxRegisteredChunks = 4096;

  sgx::EnclaveRuntime* enclave_;
  // chunk base address -> descriptor (trusted metadata).
  std::unordered_map<uintptr_t, std::unique_ptr<Chunk>> chunks_;
  // size class -> chunks of that class that still have space.
  std::unordered_map<size_t, std::vector<Chunk*>> class_chunks_;
  std::unique_ptr<RegisteredChunk[]> registry_;
  std::atomic<size_t> registered_chunks_{0};
  HeapAllocatorStats stats_;
};

/// Ablation allocator: every Alloc/Free crosses the enclave boundary (one
/// OCALL), as a naive SGX port would. Used by AriaBase in Fig. 12.
class OcallAllocator : public UntrustedAllocator {
 public:
  explicit OcallAllocator(sgx::EnclaveRuntime* enclave) : enclave_(enclave) {}
  Result<void*> Alloc(size_t size) override;
  Status Free(void* p) override;
  size_t UsableBytes(const void* p) const override;

  void CollectMetrics(obs::MetricSink* sink) const override;

 private:
  sgx::EnclaveRuntime* enclave_;
  // Live allocations (base -> size), ordered so interior pointers can be
  // resolved with upper_bound. Trusted metadata, mirrors what a real
  // enclave would have to track to bound untrusted lengths.
  std::map<uintptr_t, size_t> live_;
  uint64_t allocs_ = 0;
  uint64_t frees_ = 0;
  uint64_t ocalls_ = 0;
  uint64_t bytes_in_use_ = 0;
};

}  // namespace aria
