#include "obs/metrics.h"

namespace aria::obs {

namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Sink writing straight into a Snapshot.
class SnapshotSink : public MetricSink {
 public:
  explicit SnapshotSink(Snapshot* out) : out_(out) {}
  void Counter(std::string_view name, uint64_t value) override {
    out_->Set(std::string(name), value, MetricKind::kCounter);
  }
  void Gauge(std::string_view name, uint64_t value) override {
    out_->Set(std::string(name), value, MetricKind::kGauge);
  }

 private:
  Snapshot* out_;
};

}  // namespace

void Snapshot::Set(std::string name, uint64_t value, MetricKind kind) {
  values_[std::move(name)] = Metric{value, kind};
}

uint64_t Snapshot::Get(std::string_view name) const {
  auto it = values_.find(std::string(name));
  return it == values_.end() ? 0 : it->second.value;
}

bool Snapshot::Has(std::string_view name) const {
  return values_.find(std::string(name)) != values_.end();
}

uint64_t Snapshot::SumSuffix(std::string_view suffix) const {
  uint64_t total = 0;
  for (const auto& [name, metric] : values_) {
    if (EndsWith(name, suffix)) total += metric.value;
  }
  return total;
}

std::vector<std::string> Snapshot::PrefixesOf(std::string_view suffix) const {
  std::vector<std::string> out;
  for (const auto& [name, metric] : values_) {
    (void)metric;
    if (EndsWith(name, suffix)) {
      out.push_back(name.substr(0, name.size() - suffix.size()));
    }
  }
  return out;
}

Snapshot Snapshot::Delta(const Snapshot& earlier) const {
  Snapshot d;
  for (const auto& [name, metric] : values_) {
    if (metric.kind == MetricKind::kCounter) {
      uint64_t before = earlier.Get(name);
      d.Set(name, metric.value >= before ? metric.value - before : 0,
            MetricKind::kCounter);
    } else {
      d.Set(name, metric.value, MetricKind::kGauge);
    }
  }
  return d;
}

void Snapshot::Accumulate(const Snapshot& other) {
  for (const auto& [name, metric] : other.values_) {
    auto it = values_.find(name);
    if (it == values_.end()) {
      values_[name] = metric;
    } else {
      it->second.value += metric.value;
    }
  }
}

void MetricsRegistry::Register(std::string prefix, const Observable* obs) {
  entries_.emplace_back(std::move(prefix), obs);
}

Snapshot MetricsRegistry::Collect() const {
  Snapshot snap;
  SnapshotSink sink(&snap);
  CollectMetrics(&sink);
  return snap;
}

void MetricsRegistry::CollectMetrics(MetricSink* sink) const {
  for (const auto& [prefix, obs] : entries_) {
    if (prefix.empty()) {
      obs->CollectMetrics(sink);
    } else {
      PrefixedSink prefixed(sink, prefix);
      obs->CollectMetrics(&prefixed);
    }
  }
}

}  // namespace aria::obs
