#include "obs/invariants.h"

#include <cinttypes>
#include <cstdio>

namespace aria::obs {

namespace {

std::string U64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

class LawScope {
 public:
  LawScope(InvariantReport* report, const char* law)
      : report_(report), law_(law) {
    report_->laws_checked.push_back(law);
  }

  void Expect(bool condition, const std::string& detail) {
    if (!condition) report_->violations.push_back({law_, detail});
  }

  void ExpectEq(uint64_t lhs, uint64_t rhs, const std::string& what) {
    if (lhs != rhs) {
      report_->violations.push_back(
          {law_, what + ": " + U64(lhs) + " != " + U64(rhs)});
    }
  }

  void ExpectLe(uint64_t lhs, uint64_t rhs, const std::string& what) {
    if (lhs > rhs) {
      report_->violations.push_back(
          {law_, what + ": " + U64(lhs) + " > " + U64(rhs)});
    }
  }

 private:
  InvariantReport* report_;
  const char* law_;
};

}  // namespace

std::string InvariantReport::ToString() const {
  if (violations.empty()) {
    return "all " + U64(laws_checked.size()) + " invariant laws hold";
  }
  std::string out =
      U64(violations.size()) + " invariant violation(s):";
  for (const auto& v : violations) {
    out.append("\n  [").append(v.law).append("] ").append(v.detail);
  }
  return out;
}

InvariantReport InvariantChecker::Check(const Snapshot& snap) const {
  InvariantReport report;

  // Per-cache laws. Every Secure Cache instance appears under a
  // "<prefix>.cache." namespace (one per Merkle tree).
  std::vector<std::string> caches = snap.PrefixesOf(".cache.accesses");
  if (ctx_.has_secure_cache) {
    LawScope access(&report, "cache-access-conservation");
    uint64_t total_accesses = 0;
    for (const std::string& base : caches) {
      auto get = [&](const char* name) {
        return snap.Get(base + ".cache." + name);
      };
      uint64_t hits = get("hits");
      uint64_t misses = get("misses");
      uint64_t accesses = get("accesses");
      total_accesses += accesses;
      access.ExpectEq(hits + misses, accesses, base + ": hits + misses");
      access.ExpectLe(get("pinned_hits"), hits, base + ": pinned_hits");
    }
    // Cross-layer: the counter manager forwards every read/bump to exactly
    // one cache, and nothing else drives the caches.
    access.ExpectEq(total_accesses, snap.Get("cm.reads") + snap.Get("cm.bumps"),
                    "sum(cache accesses) vs cm reads + bumps");

    LawScope evict(&report, "eviction-conservation");
    LawScope swap(&report, "swap-byte-conservation");
    for (const std::string& base : caches) {
      auto get = [&](const char* name) {
        return snap.Get(base + ".cache." + name);
      };
      uint64_t dirty = get("dirty_writebacks");
      uint64_t clean_wb = get("clean_writebacks");
      uint64_t discards = get("clean_discards");
      evict.ExpectEq(dirty + clean_wb + discards, get("evictions"),
                     base + ": eviction kinds vs evictions");
      if (ctx_.avoid_clean_writeback) {
        evict.ExpectEq(clean_wb, 0, base + ": clean write-backs with §IV-C on");
        evict.ExpectEq(get("writebacks_avoided"), discards,
                       base + ": writebacks_avoided vs clean discards");
      }
      uint64_t node_size = get("node_size");
      if (node_size != 0) {
        swap.ExpectEq(get("bytes_swapped_out"), node_size * (dirty + clean_wb),
                      base + ": swap-out bytes vs write-backs");
        swap.Expect(get("bytes_swapped_in") % node_size == 0,
                    base + ": swap-in bytes not node-granular");
      }
    }
  }

  if (ctx_.has_counter_store) {
    LawScope law(&report, "record-counter-conservation");
    uint64_t used = snap.Get("cm.used");
    law.ExpectEq(snap.Get("cm.fetches") - snap.Get("cm.frees"), used,
                 "fetches - frees vs used");
    uint64_t live = snap.Get("index.live_entries");
    if (ctx_.counters_match_entries) {
      law.ExpectEq(live, used, "index live entries vs used counters");
    } else {
      // B+ separators own counters too, so live entries only bound it.
      law.ExpectLe(live, used, "index live entries vs used counters");
    }
  }

  {
    LawScope law(&report, "allocator-conservation");
    law.ExpectEq(snap.Get("alloc.bytes_in_use"),
                 snap.SumSuffix(".mem.untrusted_bytes"),
                 "allocator bytes_in_use vs component footprints");
  }

  {
    LawScope law(&report, "ocall-attribution");
    law.ExpectEq(snap.Get("sgx.ocalls"), snap.Get("alloc.ocalls"),
                 "enclave ocalls vs allocator boundary crossings");
  }

  {
    LawScope law(&report, "cost-model-attribution");
    if (!ctx_.cost_model_enabled) {
      law.ExpectEq(snap.Get("sgx.charged_cycles"), 0,
                   "cycles charged with cost model off");
      law.ExpectEq(snap.Get("sgx.page_swaps"), 0,
                   "page swaps recorded with cost model off");
    } else {
      // Paging and MEE traffic imply charges: any recorded event must have
      // left a nonzero cycle trail.
      uint64_t events = snap.Get("sgx.page_swaps") +
                        snap.Get("sgx.mee_lines_read") +
                        snap.Get("sgx.mee_lines_written") +
                        snap.Get("sgx.ocalls") + snap.Get("sgx.ecalls");
      if (events > 0) {
        law.Expect(snap.Get("sgx.charged_cycles") > 0,
                   "SGX events recorded but zero cycles charged");
      }
    }
  }

  return report;
}

void InvariantChecker::CheckLoopSums(const Snapshot& snap,
                                     InvariantReport* report) {
  // Per-loop server metrics live at "net.loop<k>.<rest>"; their aggregates
  // at "net.<rest>". Sum the loops per <rest> and compare. The server emits
  // both sides from one read pass (net/server.cc), so this must hold on any
  // snapshot, including one scraped mid-serving.
  constexpr std::string_view kPrefix = "net.loop";
  std::map<std::string, uint64_t> sums;
  for (const auto& [name, metric] : snap.values()) {
    if (name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    size_t digits = kPrefix.size();
    while (digits < name.size() && name[digits] >= '0' && name[digits] <= '9') {
      ++digits;
    }
    if (digits == kPrefix.size() || digits >= name.size() ||
        name[digits] != '.') {
      continue;  // "net.loops_..." or similar, not a per-loop namespace
    }
    sums[name.substr(digits + 1)] += metric.value;
  }
  if (sums.empty()) return;  // no multi-loop server in this snapshot
  LawScope law(report, "net-loop-conservation");
  for (const auto& [rest, sum] : sums) {
    law.Expect(snap.Has("net." + rest), "aggregate missing for net." + rest);
    law.ExpectEq(sum, snap.Get("net." + rest), "loop sum of net." + rest);
  }
}

void InvariantChecker::CheckOptimisticReads(const Snapshot& snap,
                                            InvariantReport* report) {
  // The sharded front-end emits one namespace per shard
  // ("core.shard<k>.optimistic_gets", ...) plus the shard-summed aggregate
  // ("core.optimistic_gets", ...); the laws must hold in each namespace
  // independently (they are additive, so per-shard conservation implies
  // the aggregate — checking both catches a miscounted emission).
  std::vector<std::string> bases = snap.PrefixesOf(".optimistic_gets");
  if (bases.empty()) return;  // no optimistic-capable front-end
  {
    LawScope law(report, "optimistic-read-conservation");
    for (const std::string& base : bases) {
      law.ExpectEq(snap.Get(base + ".optimistic_hits") +
                       snap.Get(base + ".optimistic_fallbacks"),
                   snap.Get(base + ".optimistic_gets"),
                   base + ": hits + fallbacks vs gets");
    }
  }
  {
    LawScope law(report, "epoch-reclamation-conservation");
    for (const std::string& base : bases) {
      law.ExpectEq(snap.Get(base + ".epoch_reclaimed") +
                       snap.Get(base + ".epoch_pending"),
                   snap.Get(base + ".epoch_retired"),
                   base + ": reclaimed + pending vs retired");
    }
  }
}

void InvariantChecker::CheckAtomicBatches(const Snapshot& snap,
                                          InvariantReport* report) {
  // Same namespace discipline as the optimistic-read laws: one namespace
  // per shard ("core.shard<k>.batch_ops_admitted", ...) plus the
  // shard-summed aggregate ("core.batch_ops_admitted", ...); both are
  // checked so a miscounted emission on either side is caught.
  std::vector<std::string> bases = snap.PrefixesOf(".batch_ops_admitted");
  if (bases.empty()) return;  // no atomic-batch-capable front-end
  LawScope law(report, "batch-atomicity-conservation");
  for (const std::string& base : bases) {
    law.ExpectEq(snap.Get(base + ".batch_ops_applied") +
                     snap.Get(base + ".batch_ops_rolled_back"),
                 snap.Get(base + ".batch_ops_admitted"),
                 base + ": applied + rolled_back vs admitted");
    law.ExpectLe(snap.Get(base + ".batch_mt_update_passes"),
                 snap.Get(base + ".batch_shard_touches"),
                 base + ": MT update passes vs shard touches");
  }
}

void InvariantChecker::CheckLoadgen(const Snapshot& snap,
                                    InvariantReport* report) {
  if (!snap.Has("loadgen.requests_offered")) return;  // no load generator
  LawScope law(report, "loadgen-request-conservation");
  const uint64_t offered = snap.Get("loadgen.requests_offered");
  const uint64_t completed = snap.Get("loadgen.requests_completed");
  const uint64_t timed_out = snap.Get("loadgen.requests_timed_out");
  const uint64_t in_flight = snap.Get("loadgen.requests_in_flight");
  law.ExpectEq(completed + timed_out + in_flight, offered,
               "completed + timed_out + in_flight vs offered");
  // Responses carry exactly one wire status, so the error and not-found
  // sub-counts are bounded by the responses that actually came back.
  law.ExpectLe(snap.Get("loadgen.response_errors") +
                   snap.Get("loadgen.response_not_found"),
               completed + timed_out, "response sub-counts vs responses");

  // Per-connection accounting, and its reconciliation with the aggregate.
  constexpr std::string_view kPrefix = "loadgen.conn";
  std::map<std::string, uint64_t> per_conn;  // conn namespace -> offered
  std::map<std::string, uint64_t> sums;      // <rest> -> sum over conns
  for (const auto& [name, metric] : snap.values()) {
    if (name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    size_t digits = kPrefix.size();
    while (digits < name.size() && name[digits] >= '0' && name[digits] <= '9') {
      ++digits;
    }
    if (digits == kPrefix.size() || digits >= name.size() ||
        name[digits] != '.') {
      continue;  // "loadgen.connections", not a per-conn namespace
    }
    const std::string base = name.substr(0, digits);
    const std::string rest = name.substr(digits + 1);
    sums[rest] += metric.value;
    if (rest == "requests_offered") per_conn[base] = metric.value;
  }
  for (const auto& [base, conn_offered] : per_conn) {
    law.ExpectEq(snap.Get(base + ".requests_completed") +
                     snap.Get(base + ".requests_timed_out") +
                     snap.Get(base + ".requests_in_flight"),
                 conn_offered, base + ": completed + timed_out + in_flight");
  }
  for (const auto& [rest, sum] : sums) {
    law.ExpectEq(sum, snap.Get("loadgen." + rest),
                 "conn sum of loadgen." + rest);
  }
}

void InvariantChecker::CheckShardSums(const std::vector<Snapshot>& shards,
                                      const Snapshot& aggregate,
                                      InvariantReport* report) {
  LawScope law(report, "shard-conservation");
  Snapshot summed;
  for (const Snapshot& s : shards) summed.Accumulate(s);
  for (const auto& [name, metric] : aggregate.values()) {
    law.ExpectEq(summed.Get(name), metric.value, "shard sum of " + name);
  }
  for (const auto& [name, metric] : summed.values()) {
    (void)metric;
    law.Expect(aggregate.Has(name), "aggregate missing metric " + name);
  }
}

}  // namespace aria::obs
