// Cross-layer conservation laws over metric snapshots (DESIGN.md §9).
//
// Each law relates counters maintained by *different* layers (or different
// code paths of one layer), so a miscounted or dropped event anywhere —
// including one injected through the fault latch — shows up as a violation.
// Laws are gated by an InvariantContext describing the store configuration;
// a law that does not apply to a configuration is skipped, never silently
// weakened.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace aria::obs {

/// What the checked store is made of; derived from StoreOptions by the
/// factory (see StoreBundle::CheckInvariants) so the checker itself stays
/// independent of core headers.
struct InvariantContext {
  bool has_secure_cache = false;   ///< scheme kAria
  bool has_counter_store = false;  ///< kAria or kAriaNoCache
  /// False for the B+ index, whose routing separators hold counters of
  /// their own and may outlive deleted leaf keys, making live_entries a
  /// lower bound on used counters rather than an exact match.
  bool counters_match_entries = true;
  bool avoid_clean_writeback = true;
  bool cost_model_enabled = true;
};

struct InvariantViolation {
  std::string law;
  std::string detail;
};

struct InvariantReport {
  std::vector<InvariantViolation> violations;
  /// Laws that were actually evaluated (non-vacuously) on this snapshot.
  std::vector<std::string> laws_checked;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

/// Evaluates every applicable conservation law against a snapshot. The laws
/// (names as they appear in reports):
///   cache-access-conservation  hits + misses == accesses per cache, the
///                              pinned-hit subset bounded by hits, and the
///                              sum of cache accesses equal to the counter
///                              manager's read + bump calls          (§IV-B)
///   eviction-conservation      every eviction is exactly one of dirty
///                              write-back, clean discard, clean
///                              write-back; clean discards never write
///                              untrusted memory                     (§IV-C)
///   swap-byte-conservation     bytes swapped out == node_size x write-backs
///                              (catches dropped eviction write-backs)
///   record-counter-conservation  used == fetched - freed, and live index
///                              entries match used counters          (§V-C)
///   allocator-conservation     allocator bytes_in_use == Σ per-component
///                              untrusted footprints                 (§V-B)
///   ocall-attribution          every OCALL comes from the allocator's
///                              chunk-granularity boundary crossings (§V-B)
///   cost-model-attribution     a disabled cost model charges nothing
class InvariantChecker {
 public:
  explicit InvariantChecker(InvariantContext ctx) : ctx_(ctx) {}

  InvariantReport Check(const Snapshot& snap) const;

  /// shard-conservation: for every counter metric, the per-shard sum must
  /// equal the aggregate snapshot's value. Appends to `report`.
  static void CheckShardSums(const std::vector<Snapshot>& shards,
                             const Snapshot& aggregate,
                             InvariantReport* report);

  /// net-loop-conservation: for every per-loop server metric
  /// "net.loop<k>.<rest>" in `snap`, the sum over loops k must equal the
  /// aggregate "net.<rest>" the server emits alongside them (gauges
  /// included — connections_active partitions exactly across loops).
  /// Vacuous (not recorded in laws_checked) when the snapshot holds no
  /// per-loop net metrics. Appends to `report`.
  static void CheckLoopSums(const Snapshot& snap, InvariantReport* report);

  /// optimistic-read-conservation: every optimistic Get is served exactly
  /// once — lock-free (hit) or through the locked fallback — so
  /// optimistic_hits + optimistic_fallbacks == optimistic_gets for every
  /// "core.*" namespace emitting them (per shard and in aggregate).
  /// epoch-reclamation-conservation: every record a writer retired is
  /// either reclaimed or still pending, epoch_retired == epoch_reclaimed +
  /// epoch_pending. Both vacuous (not recorded in laws_checked) when the
  /// snapshot holds no optimistic-read metrics. Appends to `report`.
  static void CheckOptimisticReads(const Snapshot& snap,
                                   InvariantReport* report);

  /// batch-atomicity-conservation: every op admitted into an atomic
  /// multi-key batch is exactly one of applied or rolled back
  /// (batch_ops_admitted == batch_ops_applied + batch_ops_rolled_back),
  /// and the §V-B amortization holds — at most one counter/MT update pass
  /// per shard touch (batch_mt_update_passes <= batch_shard_touches) — for
  /// every "core.*" namespace emitting them (per shard and in aggregate).
  /// Vacuous (not recorded in laws_checked) when the snapshot holds no
  /// atomic-batch metrics. Appends to `report`.
  static void CheckAtomicBatches(const Snapshot& snap,
                                 InvariantReport* report);

  /// loadgen-request-conservation: every request the open-loop load
  /// generator offered is exactly one of completed, timed out, or still in
  /// flight — per connection ("loadgen.conn<k>.*"), in aggregate
  /// ("loadgen.*"), and with the per-connection sums reconciling against
  /// the aggregates. Response sub-counts (errors, not_found) are bounded by
  /// the responses received. Holds on quiescent (post-run) snapshots;
  /// vacuous when the snapshot holds no loadgen metrics. Appends to
  /// `report`.
  static void CheckLoadgen(const Snapshot& snap, InvariantReport* report);

 private:
  InvariantContext ctx_;
};

}  // namespace aria::obs
