// Minimal JSON emission for metric snapshots, so benches can drop
// BENCH_<name>.json artifacts (flat, sorted, diff-friendly) without a JSON
// dependency. Only what the artifacts need: objects of string -> (uint64 |
// double | string | nested metrics object).
#pragma once

#include <map>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace aria::obs {

/// `{"a.b": 1, "a.c": 2, ...}` — one line per metric, sorted by name.
std::string ToJson(const Snapshot& snapshot, int indent = 2);

/// Bench artifact envelope:
/// `{"bench": ..., "label": ..., <fields...>, "metrics": {<snapshot>}}`.
/// `fields` carries run-level scalars (throughput, ops, scale).
std::string BenchArtifactJson(const std::string& bench,
                              const std::string& label,
                              const std::map<std::string, double>& fields,
                              const Snapshot& metrics);

/// Write `content` to `path` atomically enough for bench artifacts
/// (truncate + write + close).
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace aria::obs
