// Per-component view of the shared untrusted allocator that tracks the live
// footprint of everything allocated through it. The factory hands each
// component (index, counter manager) its own view; the invariant checker
// then asserts that the allocator's global bytes_in_use equals the sum of
// the per-component footprints — the "allocator live_bytes == Σ record
// footprints + MT/counter areas" conservation law, with no bookkeeping
// inside the components themselves.
//
// Footprints use UsableBytes(p) at the block base, which is exactly what
// HeapAllocator adds to bytes_in_use (the rounded size class, or the exact
// size for huge allocations) and what OcallAllocator records per malloc.
#pragma once

#include <cstdint>

#include "alloc/heap_allocator.h"
#include "obs/metrics.h"

namespace aria::obs {

class TrackedAllocator : public UntrustedAllocator {
 public:
  explicit TrackedAllocator(UntrustedAllocator* base) : base_(base) {}

  Result<void*> Alloc(size_t size) override {
    auto r = base_->Alloc(size);
    if (r.ok()) {
      allocs_++;
      untrusted_bytes_ += base_->UsableBytes(r.value());
    }
    return r;
  }

  Status Free(void* p) override {
    // Capture the footprint before the free invalidates the block.
    size_t footprint = base_->UsableBytes(p);
    Status st = base_->Free(p);
    if (st.ok()) {
      frees_++;
      untrusted_bytes_ -= footprint;
    }
    return st;
  }

  size_t UsableBytes(const void* p) const override {
    return base_->UsableBytes(p);
  }

  // Must forward, not inherit: the base-class default returns 0 ("no
  // lock-free support"), which would silently demote every optimistic GET
  // behind this view to the locked path.
  size_t UsableBytesLockFree(const void* p) const override {
    return base_->UsableBytesLockFree(p);
  }

  /// Live untrusted bytes allocated through this view (block-granular).
  uint64_t untrusted_bytes() const { return untrusted_bytes_; }

  void CollectMetrics(MetricSink* sink) const override {
    sink->Counter("allocs", allocs_);
    sink->Counter("frees", frees_);
    sink->Gauge("untrusted_bytes", untrusted_bytes_);
  }

 private:
  UntrustedAllocator* base_;
  uint64_t allocs_ = 0;
  uint64_t frees_ = 0;
  uint64_t untrusted_bytes_ = 0;
};

}  // namespace aria::obs
