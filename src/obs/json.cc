#include "obs/json.h"

#include <cinttypes>
#include <cstdio>

namespace aria::obs {

namespace {

void AppendIndent(std::string* out, int depth) {
  out->append(static_cast<size_t>(depth), ' ');
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out->append(buf);
}

void AppendSnapshot(std::string* out, const Snapshot& snapshot, int indent) {
  out->append("{");
  bool first = true;
  for (const auto& [name, metric] : snapshot.values()) {
    if (!first) out->push_back(',');
    first = false;
    out->push_back('\n');
    AppendIndent(out, indent);
    AppendQuoted(out, name);
    out->append(": ");
    AppendU64(out, metric.value);
  }
  if (!first) {
    out->push_back('\n');
    AppendIndent(out, indent > 2 ? indent - 2 : 0);
  }
  out->push_back('}');
}

}  // namespace

std::string ToJson(const Snapshot& snapshot, int indent) {
  std::string out;
  AppendSnapshot(&out, snapshot, indent);
  out.push_back('\n');
  return out;
}

std::string BenchArtifactJson(const std::string& bench,
                              const std::string& label,
                              const std::map<std::string, double>& fields,
                              const Snapshot& metrics) {
  std::string out = "{\n  \"bench\": ";
  AppendQuoted(&out, bench);
  out.append(",\n  \"label\": ");
  AppendQuoted(&out, label);
  for (const auto& [name, value] : fields) {
    out.append(",\n  ");
    AppendQuoted(&out, name);
    out.append(": ");
    AppendDouble(&out, value);
  }
  out.append(",\n  \"metrics\": ");
  AppendSnapshot(&out, metrics, 4);
  out.append("\n}\n");
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int rc = std::fclose(f);
  if (written != content.size() || rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace aria::obs
