// Unified observability layer: every storage layer (enclave runtime, Secure
// Cache, allocator, counter manager, Merkle tree, index, sharded front-end)
// exposes its counters through the small Observable interface, and a
// MetricsRegistry assembles them into one flat, dot-prefixed Snapshot.
//
// Two metric kinds:
//  * counter — monotonically increasing event count; Delta subtracts
//  * gauge   — point-in-time level (bytes in use, live entries); Delta keeps
//    the later value
//
// Snapshots are plain sorted maps so tests can assert relationships between
// layers (see obs/invariants.h) and benches can serialize them (obs/json.h)
// without any registry machinery at read time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aria::obs {

enum class MetricKind : uint8_t { kCounter, kGauge };

struct Metric {
  uint64_t value = 0;
  MetricKind kind = MetricKind::kCounter;
};

/// Receives one layer's metrics during collection. Implementations prepend
/// the registration prefix; layers only use local names ("hits", not
/// "cm.tree0.cache.hits").
class MetricSink {
 public:
  virtual ~MetricSink() = default;
  virtual void Counter(std::string_view name, uint64_t value) = 0;
  virtual void Gauge(std::string_view name, uint64_t value) = 0;
};

/// Implemented by every layer that contributes metrics. Collection must be
/// cheap and side-effect free: it reads existing stats structs, it does not
/// compute anything new.
class Observable {
 public:
  virtual ~Observable() = default;
  virtual void CollectMetrics(MetricSink* sink) const = 0;
};

/// Sink adapter that prepends "<prefix>." to every metric name. Layers with
/// internal sub-components (CounterManager's per-tree caches) use this to
/// namespace them without knowing their own registration prefix.
class PrefixedSink : public MetricSink {
 public:
  PrefixedSink(MetricSink* base, std::string_view prefix) : base_(base) {
    prefix_.assign(prefix);
    if (!prefix_.empty() && prefix_.back() != '.') prefix_.push_back('.');
  }

  void Counter(std::string_view name, uint64_t value) override {
    scratch_.assign(prefix_).append(name);
    base_->Counter(scratch_, value);
  }
  void Gauge(std::string_view name, uint64_t value) override {
    scratch_.assign(prefix_).append(name);
    base_->Gauge(scratch_, value);
  }

 private:
  MetricSink* base_;
  std::string prefix_;
  std::string scratch_;
};

/// A flat, sorted name -> Metric map: the unit the invariant checker and the
/// JSON emitter consume.
class Snapshot {
 public:
  void Set(std::string name, uint64_t value, MetricKind kind);

  /// Value of `name`, or 0 when absent (absent metrics read as zero so
  /// conservation laws stay total across schemes that lack a layer).
  uint64_t Get(std::string_view name) const;
  bool Has(std::string_view name) const;

  /// Sum of every metric whose name ends with `suffix`.
  uint64_t SumSuffix(std::string_view suffix) const;

  /// For every metric name ending with `suffix`, the leading part before the
  /// suffix (e.g. suffix ".cache.accesses" yields "cm.tree0" for
  /// "cm.tree0.cache.accesses"). Used to enumerate per-instance sub-trees.
  std::vector<std::string> PrefixesOf(std::string_view suffix) const;

  /// Counters subtract; gauges keep this (the later) snapshot's value.
  Snapshot Delta(const Snapshot& earlier) const;

  /// Merge-add `other` into this snapshot (counters and gauges both add;
  /// used by the sharded front-end to aggregate per-shard snapshots).
  void Accumulate(const Snapshot& other);

  const std::map<std::string, Metric>& values() const { return values_; }
  size_t size() const { return values_.size(); }

 private:
  std::map<std::string, Metric> values_;
};

/// Collects registered Observables into Snapshots, prefixing each one's
/// metrics with its registration name.
class MetricsRegistry : public Observable {
 public:
  /// Register `obs` under `prefix` ("sgx", "alloc", "cm", "index", ...).
  /// The pointer must outlive the registry; registration order is
  /// collection order.
  void Register(std::string prefix, const Observable* obs);

  Snapshot Collect() const;

  /// A registry is itself observable, so registries can nest.
  void CollectMetrics(MetricSink* sink) const override;

  bool empty() const { return entries_.empty(); }

 private:
  std::vector<std::pair<std::string, const Observable*>> entries_;
};

}  // namespace aria::obs
