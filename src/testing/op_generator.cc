#include "testing/op_generator.h"

namespace aria::testing {

OpGenerator::OpGenerator(const OpGeneratorConfig& config)
    : config_(config),
      rng_(config.seed * 0x9E3779B97F4A7C15ull + 1),
      zipf_(config.keyspace, config.zipf_theta, config.seed + 1),
      uniform_(config.keyspace, config.seed + 2),
      versions_(config.keyspace, 0) {}

uint64_t OpGenerator::NextKeyId() {
  return rng_.Bernoulli(config_.zipf_fraction) ? zipf_.NextKey()
                                               : uniform_.NextKey();
}

DiffOp OpGenerator::Next() {
  DiffOp op;
  // Drawn only when enabled, so multi_fraction == 0 leaves the RNG stream —
  // and with it every existing schedule — bit-identical.
  if (config_.multi_fraction > 0 && rng_.Bernoulli(config_.multi_fraction)) {
    switch (rng_.Uniform(3)) {
      case 0:
        op.type = DiffOpType::kMultiGet;
        break;
      case 1:
        op.type = DiffOpType::kMultiPut;
        break;
      default:
        op.type = DiffOpType::kAtomicRmw;
        break;
    }
    size_t n = 1 + rng_.Uniform(config_.max_batch_keys);
    op.multi_keys.reserve(n);
    for (size_t i = 0; i < n; ++i) op.multi_keys.push_back(NextKeyId());
    op.key_id = op.multi_keys[0];
    if (op.type != DiffOpType::kMultiGet) {
      op.value_size =
          config_.min_value_size +
          rng_.Uniform(config_.max_value_size - config_.min_value_size + 1);
      op.multi_versions.reserve(n);
      for (uint64_t k : op.multi_keys) {
        op.multi_versions.push_back(++versions_[k]);
      }
    }
    return op;
  }
  op.key_id = NextKeyId();
  double roll = rng_.NextDouble();
  if (roll < config_.put_fraction) {
    op.type = DiffOpType::kPut;
    op.version = ++versions_[op.key_id];
    op.value_size = config_.min_value_size +
                    rng_.Uniform(config_.max_value_size -
                                 config_.min_value_size + 1);
  } else if (roll < config_.put_fraction + config_.get_fraction) {
    op.type = DiffOpType::kGet;
  } else if (roll <
             config_.put_fraction + config_.get_fraction +
                 config_.delete_fraction) {
    op.type = DiffOpType::kDelete;
  } else if (config_.scans) {
    op.type = DiffOpType::kRangeScan;
    op.scan_limit = 1 + rng_.Uniform(config_.max_scan_limit);
  } else {
    op.type = DiffOpType::kGet;
  }
  return op;
}

}  // namespace aria::testing
