#include "testing/op_generator.h"

namespace aria::testing {

OpGenerator::OpGenerator(const OpGeneratorConfig& config)
    : config_(config),
      rng_(config.seed * 0x9E3779B97F4A7C15ull + 1),
      zipf_(config.keyspace, config.zipf_theta, config.seed + 1),
      uniform_(config.keyspace, config.seed + 2),
      versions_(config.keyspace, 0) {}

uint64_t OpGenerator::NextKeyId() {
  return rng_.Bernoulli(config_.zipf_fraction) ? zipf_.NextKey()
                                               : uniform_.NextKey();
}

DiffOp OpGenerator::Next() {
  DiffOp op;
  op.key_id = NextKeyId();
  double roll = rng_.NextDouble();
  if (roll < config_.put_fraction) {
    op.type = DiffOpType::kPut;
    op.version = ++versions_[op.key_id];
    op.value_size = config_.min_value_size +
                    rng_.Uniform(config_.max_value_size -
                                 config_.min_value_size + 1);
  } else if (roll < config_.put_fraction + config_.get_fraction) {
    op.type = DiffOpType::kGet;
  } else if (roll <
             config_.put_fraction + config_.get_fraction +
                 config_.delete_fraction) {
    op.type = DiffOpType::kDelete;
  } else if (config_.scans) {
    op.type = DiffOpType::kRangeScan;
    op.scan_limit = 1 + rng_.Uniform(config_.max_scan_limit);
  } else {
    op.type = DiffOpType::kGet;
  }
  return op;
}

}  // namespace aria::testing
