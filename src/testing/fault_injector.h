// Test-side fault injector implementing the aria::fault::Injector hooks.
//
// Faults are armed as FaultSpecs against a hook site and fire after a
// configurable number of matching events, so a schedule is fully
// deterministic for a given (arming, workload seed) pair. Random-bit mode
// draws the flipped bit from a seeded PRNG, which makes fuzz-style sweeps
// replayable through ARIA_REPLAY_SEED (testing/replay.h).
//
// Direct-attack helpers (node snapshot/rollback, targeted bit flips) cover
// the faults that are not read-path events: MAC corruption, counter
// rollback and record-pointer swaps are mounted straight on untrusted
// memory, exactly like a malicious host would.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "mt/flat_merkle_tree.h"

namespace aria::testing {

enum class FaultKind : uint8_t {
  kFlipBit,             ///< XOR one bit of the hooked untrusted buffer
  kFlipRandomBit,       ///< like kFlipBit, bit drawn from the injector seed
  kSetValue,            ///< overwrite the buffer prefix with fixed bytes
  kFailAlloc,           ///< make the hooked allocation fail
  kDropWriteback,       ///< suppress the dirty eviction write-back
  kDuplicateWriteback,  ///< also copy the written node over `target`
};

struct FaultSpec {
  fault::Site site = fault::Site::kNumSites;
  FaultKind kind = FaultKind::kFlipBit;

  /// Skip this many matching events before firing (0 = fire on the first).
  uint64_t trigger_after = 0;

  /// Keep firing on every later matching event instead of once.
  bool repeat = false;

  uint64_t bit = 0;            ///< kFlipBit: bit index within the buffer
  std::vector<uint8_t> bytes;  ///< kSetValue: payload (clipped to buffer)
  uint8_t* target = nullptr;   ///< kDuplicateWriteback: duplicate dst
};

/// Thread-safe: hooks may fire concurrently from several store shards and
/// the concurrency tests poll fired() from other threads; one internal
/// mutex serializes the schedule (the hooks are rare and cheap, so the
/// lock is not a bottleneck in tests).
class ScheduledInjector : public fault::Injector {
 public:
  explicit ScheduledInjector(uint64_t seed = 1);

  /// Arm a fault. Multiple specs may be armed at once; each keeps its own
  /// trigger count.
  void Arm(FaultSpec spec);

  /// Clear all armed faults (event counters keep running).
  void DisarmAll();

  /// Total faults actually injected so far.
  uint64_t fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_;
  }

  /// Events observed at `site` (fired or not).
  uint64_t events(fault::Site site) const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_[static_cast<size_t>(site)];
  }

  // fault::Injector:
  void OnUntrustedRead(fault::Site site, uint8_t* p, size_t len) override;
  bool FailAlloc(fault::Site site, size_t bytes) override;
  bool OnEvictionWriteback(uint8_t* dst, const uint8_t* src,
                           size_t len) override;

 private:
  struct Armed {
    FaultSpec spec;
    uint64_t seen = 0;
    bool spent = false;
  };

  /// True iff `armed` fires for this event (advances its trigger count).
  bool Due(Armed* armed);
  void Mutate(const FaultSpec& spec, uint8_t* p, size_t len);

  mutable std::mutex mu_;
  Random rng_;
  std::vector<Armed> armed_;
  uint64_t events_[static_cast<size_t>(fault::Site::kNumSites)] = {0};
  uint64_t fired_ = 0;
};

/// Installs `injector` as the process-wide fault hook for the scope of a
/// test; clears it on destruction even if the test aborts early.
class InjectorScope {
 public:
  explicit InjectorScope(ScheduledInjector* injector) {
    fault::Set(injector);
  }
  ~InjectorScope() { fault::Set(nullptr); }

  InjectorScope(const InjectorScope&) = delete;
  InjectorScope& operator=(const InjectorScope&) = delete;
};

// --- Direct attacks on untrusted Merkle-tree state -------------------------

/// Snapshot one node's raw untrusted bytes (for rollback/replay attacks).
std::vector<uint8_t> SnapshotNode(const FlatMerkleTree* tree, MtNodeId id);

/// Overwrite a node with previously snapshotted bytes — a replay.
void RestoreNode(FlatMerkleTree* tree, MtNodeId id,
                 const std::vector<uint8_t>& snapshot);

/// Flip one bit of counter `c` in untrusted memory.
void FlipCounterBit(FlatMerkleTree* tree, uint64_t c, uint64_t bit);

/// Flip one bit of the stored MAC of `id` (inside its untrusted parent).
/// `id` must not be the top node (its MAC is the trusted root).
void FlipStoredMacBit(FlatMerkleTree* tree, MtNodeId id, uint64_t bit);

}  // namespace aria::testing
