#include "testing/model_checker.h"

#include "core/sharded_store.h"
#include "testing/replay.h"
#include "workload/ycsb.h"

namespace aria::testing {

namespace {

const char* OpName(DiffOpType type) {
  switch (type) {
    case DiffOpType::kPut:
      return "Put";
    case DiffOpType::kGet:
      return "Get";
    case DiffOpType::kDelete:
      return "Delete";
    case DiffOpType::kRangeScan:
      return "RangeScan";
    case DiffOpType::kMultiGet:
      return "MultiGet";
    case DiffOpType::kMultiPut:
      return "MultiPut";
    case DiffOpType::kAtomicRmw:
      return "AtomicRmw";
  }
  return "?";
}

std::string DescribeOp(uint64_t index, const DiffOp& op) {
  std::string s = "op #" + std::to_string(index) + " " + OpName(op.type) +
                  "(key " + std::to_string(op.key_id);
  if (op.type == DiffOpType::kRangeScan) {
    s += ", limit " + std::to_string(op.scan_limit);
  }
  return s + ")";
}

}  // namespace

DifferentialChecker::DifferentialChecker(const CheckerConfig& config)
    : config_(config), seed_(EffectiveSeed(config.gen.seed)) {}

Status DifferentialChecker::Fail(CheckerReport* report, uint64_t op_index,
                                 const std::string& what) {
  report->failing_op = op_index;
  report->description = what;
  report->replay = ReplayRecipe(seed_, config_.harness);
  return Status::Internal(what + "; " + report->replay);
}

Status DifferentialChecker::Run(KVStore* store, CheckerReport* report) {
  *report = CheckerReport{};
  report->seed = seed_;

  OpGeneratorConfig gen_config = config_.gen;
  gen_config.seed = seed_;
  OpGenerator gen(gen_config);
  ReferenceOracle oracle;
  auto* ordered = dynamic_cast<OrderedKVStore*>(store);
  // Multi-key batches go through the atomic-batch entry point where it
  // exists; on a plain store they degrade to sequential point ops, which is
  // semantically identical in this single-threaded harness.
  auto* sharded = dynamic_cast<ShardedStore*>(store);

  for (uint64_t k = 0; k < config_.prepopulate; ++k) {
    std::string key = MakeKey(k);
    std::string value = MakeValue(k, config_.prepopulate_value_size, 0);
    Status st = store->Put(key, value);
    if (!st.ok()) {
      return Fail(report, 0,
                  std::string(store->name()) + " prepopulate Put(" +
                      std::to_string(k) + ") failed: " + st.ToString());
    }
    (void)oracle.Put(key, value);
  }

  for (uint64_t i = 0; i < config_.num_ops; ++i) {
    DiffOp op = gen.Next();
    std::string key = MakeKey(op.key_id);
    Status store_status;
    Status oracle_status;

    switch (op.type) {
      case DiffOpType::kPut: {
        report->puts++;
        std::string value = MakeValue(op.key_id, op.value_size, op.version);
        store_status = store->Put(key, value);
        oracle_status = oracle.Put(key, value);
        break;
      }
      case DiffOpType::kGet: {
        report->gets++;
        std::string got, want;
        store_status = store->Get(key, &got);
        oracle_status = oracle.Get(key, &want);
        if (store_status.ok() && oracle_status.ok() && got != want) {
          return Fail(report, i,
                      DescribeOp(i, op) + " on " + store->name() +
                          ": value mismatch (store returned " +
                          std::to_string(got.size()) + "B, oracle expected " +
                          std::to_string(want.size()) + "B)");
        }
        if (oracle_status.IsNotFound()) report->not_found++;
        break;
      }
      case DiffOpType::kDelete: {
        report->deletes++;
        store_status = store->Delete(key);
        oracle_status = oracle.Delete(key);
        break;
      }
      case DiffOpType::kRangeScan: {
        if (ordered == nullptr) {
          report->gets++;  // degrade to a Get on unordered stores
          std::string got, want;
          store_status = store->Get(key, &got);
          oracle_status = oracle.Get(key, &want);
          if (store_status.ok() && oracle_status.ok() && got != want) {
            return Fail(report, i,
                        DescribeOp(i, op) + " (as Get) on " + store->name() +
                            ": value mismatch");
          }
          break;
        }
        report->scans++;
        std::vector<std::pair<std::string, std::string>> got, want;
        store_status = ordered->RangeScan(key, op.scan_limit, &got);
        oracle_status = oracle.RangeScan(key, op.scan_limit, &want);
        if (store_status.ok() && oracle_status.ok() && got != want) {
          std::string what = DescribeOp(i, op) + " on " + store->name() +
                             ": scan mismatch (store " +
                             std::to_string(got.size()) + " pairs, oracle " +
                             std::to_string(want.size()) + ")";
          for (size_t j = 0; j < got.size() && j < want.size(); ++j) {
            if (got[j] != want[j]) {
              what += "; first divergent pair at position " +
                      std::to_string(j);
              break;
            }
          }
          return Fail(report, i, what);
        }
        break;
      }
      case DiffOpType::kMultiGet:
      case DiffOpType::kMultiPut:
      case DiffOpType::kAtomicRmw: {
        report->multis++;
        report->multi_ops += op.multi_keys.size();
        const size_t n = op.multi_keys.size();
        const bool writes = op.type != DiffOpType::kMultiGet;
        std::vector<std::string> keys(n), values(n);
        for (size_t j = 0; j < n; ++j) {
          keys[j] = MakeKey(op.multi_keys[j]);
          if (writes) {
            values[j] = MakeValue(op.multi_keys[j], op.value_size,
                                  op.multi_versions[j]);
          }
        }

        // Store side: one atomic batch (or its sequential equivalent).
        std::vector<Status> got_status(n);
        std::vector<std::string> got_value(n);
        if (sharded != nullptr) {
          std::vector<AtomicOp> aops(n);
          for (size_t j = 0; j < n; ++j) {
            aops[j].kind = op.type == DiffOpType::kMultiGet
                               ? AtomicOp::Kind::kGet
                               : op.type == DiffOpType::kMultiPut
                                     ? AtomicOp::Kind::kPut
                                     : AtomicOp::Kind::kRmw;
            aops[j].key = Slice(keys[j]);
            if (writes) aops[j].value = Slice(values[j]);
          }
          Status batch_st = sharded->ExecuteAtomicBatch(aops.data(), n);
          if (!batch_st.ok()) {
            return Fail(report, i,
                        DescribeOp(i, op) + " on " + store->name() +
                            ": atomic batch failed: " + batch_st.ToString());
          }
          for (size_t j = 0; j < n; ++j) {
            got_status[j] = aops[j].status;
            got_value[j] = std::move(aops[j].result);
          }
        } else {
          for (size_t j = 0; j < n; ++j) {
            switch (op.type) {
              case DiffOpType::kMultiGet:
                got_status[j] = store->Get(keys[j], &got_value[j]);
                break;
              case DiffOpType::kMultiPut:
                got_status[j] = store->Put(keys[j], values[j]);
                break;
              default: {  // kAtomicRmw: pre-image read, then upsert
                got_status[j] = store->Get(keys[j], &got_value[j]);
                Status put = store->Put(keys[j], values[j]);
                if (!put.ok()) got_status[j] = put;
                break;
              }
            }
          }
        }

        // Oracle side: the same batch applied in op order, then the
        // per-entry cross-check (status codes and, for reads, bytes).
        for (size_t j = 0; j < n; ++j) {
          Status want_status;
          std::string want_value;
          switch (op.type) {
            case DiffOpType::kMultiGet:
              want_status = oracle.Get(keys[j], &want_value);
              break;
            case DiffOpType::kMultiPut:
              want_status = oracle.Put(keys[j], values[j]);
              break;
            default:
              want_status = oracle.Get(keys[j], &want_value);
              (void)oracle.Put(keys[j], values[j]);
              break;
          }
          if (got_status[j].IsIntegrityViolation() &&
              config_.allow_integrity_violation) {
            report->integrity_violation_op = i;
            report->ops_executed = i + 1;
            return Status::OK();
          }
          if (got_status[j].code() != want_status.code()) {
            return Fail(report, i,
                        DescribeOp(i, op) + " entry " + std::to_string(j) +
                            " on " + store->name() + ": status mismatch "
                            "(store " + got_status[j].ToString() +
                            ", oracle " + want_status.ToString() + ")");
          }
          if (got_status[j].ok() && want_status.ok() &&
              op.type != DiffOpType::kMultiPut &&
              got_value[j] != want_value) {
            return Fail(report, i,
                        DescribeOp(i, op) + " entry " + std::to_string(j) +
                            " on " + store->name() + ": value mismatch "
                            "(store returned " +
                            std::to_string(got_value[j].size()) +
                            "B, oracle expected " +
                            std::to_string(want_value.size()) + "B)");
          }
          if (want_status.IsNotFound()) report->not_found++;
        }
        break;
      }
    }

    if (store_status.IsIntegrityViolation()) {
      if (config_.allow_integrity_violation) {
        // The scheme detected the injected attack — that is the success
        // condition of a fault-injection run.
        report->integrity_violation_op = i;
        report->ops_executed = i + 1;
        return Status::OK();
      }
      return Fail(report, i,
                  DescribeOp(i, op) + " on " + store->name() +
                      ": unexpected IntegrityViolation: " +
                      store_status.ToString());
    }
    if (store_status.code() != oracle_status.code()) {
      return Fail(report, i,
                  DescribeOp(i, op) + " on " + store->name() +
                      ": status mismatch (store " + store_status.ToString() +
                      ", oracle " + oracle_status.ToString() + ")");
    }
    report->ops_executed = i + 1;
  }

  if (store->size() != oracle.size()) {
    return Fail(report, config_.num_ops,
                std::string(store->name()) + ": final size mismatch (store " +
                    std::to_string(store->size()) + ", oracle " +
                    std::to_string(oracle.size()) + ")");
  }
  return Status::OK();
}

}  // namespace aria::testing
