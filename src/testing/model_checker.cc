#include "testing/model_checker.h"

#include "testing/replay.h"
#include "workload/ycsb.h"

namespace aria::testing {

namespace {

const char* OpName(DiffOpType type) {
  switch (type) {
    case DiffOpType::kPut:
      return "Put";
    case DiffOpType::kGet:
      return "Get";
    case DiffOpType::kDelete:
      return "Delete";
    case DiffOpType::kRangeScan:
      return "RangeScan";
  }
  return "?";
}

std::string DescribeOp(uint64_t index, const DiffOp& op) {
  std::string s = "op #" + std::to_string(index) + " " + OpName(op.type) +
                  "(key " + std::to_string(op.key_id);
  if (op.type == DiffOpType::kRangeScan) {
    s += ", limit " + std::to_string(op.scan_limit);
  }
  return s + ")";
}

}  // namespace

DifferentialChecker::DifferentialChecker(const CheckerConfig& config)
    : config_(config), seed_(EffectiveSeed(config.gen.seed)) {}

Status DifferentialChecker::Fail(CheckerReport* report, uint64_t op_index,
                                 const std::string& what) {
  report->failing_op = op_index;
  report->description = what;
  report->replay = ReplayRecipe(seed_, config_.harness);
  return Status::Internal(what + "; " + report->replay);
}

Status DifferentialChecker::Run(KVStore* store, CheckerReport* report) {
  *report = CheckerReport{};
  report->seed = seed_;

  OpGeneratorConfig gen_config = config_.gen;
  gen_config.seed = seed_;
  OpGenerator gen(gen_config);
  ReferenceOracle oracle;
  auto* ordered = dynamic_cast<OrderedKVStore*>(store);

  for (uint64_t k = 0; k < config_.prepopulate; ++k) {
    std::string key = MakeKey(k);
    std::string value = MakeValue(k, config_.prepopulate_value_size, 0);
    Status st = store->Put(key, value);
    if (!st.ok()) {
      return Fail(report, 0,
                  std::string(store->name()) + " prepopulate Put(" +
                      std::to_string(k) + ") failed: " + st.ToString());
    }
    (void)oracle.Put(key, value);
  }

  for (uint64_t i = 0; i < config_.num_ops; ++i) {
    DiffOp op = gen.Next();
    std::string key = MakeKey(op.key_id);
    Status store_status;
    Status oracle_status;

    switch (op.type) {
      case DiffOpType::kPut: {
        report->puts++;
        std::string value = MakeValue(op.key_id, op.value_size, op.version);
        store_status = store->Put(key, value);
        oracle_status = oracle.Put(key, value);
        break;
      }
      case DiffOpType::kGet: {
        report->gets++;
        std::string got, want;
        store_status = store->Get(key, &got);
        oracle_status = oracle.Get(key, &want);
        if (store_status.ok() && oracle_status.ok() && got != want) {
          return Fail(report, i,
                      DescribeOp(i, op) + " on " + store->name() +
                          ": value mismatch (store returned " +
                          std::to_string(got.size()) + "B, oracle expected " +
                          std::to_string(want.size()) + "B)");
        }
        if (oracle_status.IsNotFound()) report->not_found++;
        break;
      }
      case DiffOpType::kDelete: {
        report->deletes++;
        store_status = store->Delete(key);
        oracle_status = oracle.Delete(key);
        break;
      }
      case DiffOpType::kRangeScan: {
        if (ordered == nullptr) {
          report->gets++;  // degrade to a Get on unordered stores
          std::string got, want;
          store_status = store->Get(key, &got);
          oracle_status = oracle.Get(key, &want);
          if (store_status.ok() && oracle_status.ok() && got != want) {
            return Fail(report, i,
                        DescribeOp(i, op) + " (as Get) on " + store->name() +
                            ": value mismatch");
          }
          break;
        }
        report->scans++;
        std::vector<std::pair<std::string, std::string>> got, want;
        store_status = ordered->RangeScan(key, op.scan_limit, &got);
        oracle_status = oracle.RangeScan(key, op.scan_limit, &want);
        if (store_status.ok() && oracle_status.ok() && got != want) {
          std::string what = DescribeOp(i, op) + " on " + store->name() +
                             ": scan mismatch (store " +
                             std::to_string(got.size()) + " pairs, oracle " +
                             std::to_string(want.size()) + ")";
          for (size_t j = 0; j < got.size() && j < want.size(); ++j) {
            if (got[j] != want[j]) {
              what += "; first divergent pair at position " +
                      std::to_string(j);
              break;
            }
          }
          return Fail(report, i, what);
        }
        break;
      }
    }

    if (store_status.IsIntegrityViolation()) {
      if (config_.allow_integrity_violation) {
        // The scheme detected the injected attack — that is the success
        // condition of a fault-injection run.
        report->integrity_violation_op = i;
        report->ops_executed = i + 1;
        return Status::OK();
      }
      return Fail(report, i,
                  DescribeOp(i, op) + " on " + store->name() +
                      ": unexpected IntegrityViolation: " +
                      store_status.ToString());
    }
    if (store_status.code() != oracle_status.code()) {
      return Fail(report, i,
                  DescribeOp(i, op) + " on " + store->name() +
                      ": status mismatch (store " + store_status.ToString() +
                      ", oracle " + oracle_status.ToString() + ")");
    }
    report->ops_executed = i + 1;
  }

  if (store->size() != oracle.size()) {
    return Fail(report, config_.num_ops,
                std::string(store->name()) + ": final size mismatch (store " +
                    std::to_string(store->size()) + ", oracle " +
                    std::to_string(oracle.size()) + ")");
  }
  return Status::OK();
}

}  // namespace aria::testing
