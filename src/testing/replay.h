// Seed-replay plumbing: any randomized test failure prints a one-line
// ARIA_REPLAY_SEED=<n> recipe, and setting that environment variable reruns
// exactly the failing schedule. This turns fuzz findings into deterministic
// bug reports.
#pragma once

#include <cstdint>
#include <string>

namespace aria::testing {

/// Name of the environment variable carrying a replay seed.
inline constexpr const char* kReplaySeedEnv = "ARIA_REPLAY_SEED";

/// True (and fills *seed) iff ARIA_REPLAY_SEED is set to a parseable value.
bool ReplaySeedFromEnv(uint64_t* seed);

/// The seed a randomized test should use: the ARIA_REPLAY_SEED override if
/// present, else `default_seed`.
uint64_t EffectiveSeed(uint64_t default_seed);

/// One-line reproduction recipe for a failure observed under `seed`, e.g.
///   "to reproduce: ARIA_REPLAY_SEED=42 ctest -R differential_test"
/// `what` names the failing harness (test binary or suite).
std::string ReplayRecipe(uint64_t seed, const std::string& what);

}  // namespace aria::testing
