#include "testing/fault_injector.h"

#include <cstring>

namespace aria::testing {

ScheduledInjector::ScheduledInjector(uint64_t seed)
    : rng_(seed * 0xD1B54A32D192ED03ull + 7) {}

void ScheduledInjector::Arm(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.push_back(Armed{std::move(spec), 0, false});
}

void ScheduledInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
}

bool ScheduledInjector::Due(Armed* armed) {
  if (armed->spent) return false;
  uint64_t seen = armed->seen++;
  if (seen < armed->spec.trigger_after) return false;
  if (!armed->spec.repeat) armed->spent = true;
  return true;
}

void ScheduledInjector::Mutate(const FaultSpec& spec, uint8_t* p, size_t len) {
  if (len == 0) return;
  switch (spec.kind) {
    case FaultKind::kFlipBit:
      p[(spec.bit / 8) % len] ^= static_cast<uint8_t>(1u << (spec.bit % 8));
      break;
    case FaultKind::kFlipRandomBit: {
      uint64_t bit = rng_.Uniform(len * 8);
      p[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      break;
    }
    case FaultKind::kSetValue: {
      size_t n = spec.bytes.size() < len ? spec.bytes.size() : len;
      std::memcpy(p, spec.bytes.data(), n);
      break;
    }
    default:
      break;
  }
  fired_++;
}

void ScheduledInjector::OnUntrustedRead(fault::Site site, uint8_t* p,
                                        size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  events_[static_cast<size_t>(site)]++;
  for (Armed& a : armed_) {
    if (a.spec.site != site) continue;
    if (a.spec.kind != FaultKind::kFlipBit &&
        a.spec.kind != FaultKind::kFlipRandomBit &&
        a.spec.kind != FaultKind::kSetValue) {
      continue;
    }
    if (Due(&a)) Mutate(a.spec, p, len);
  }
}

bool ScheduledInjector::FailAlloc(fault::Site site, size_t bytes) {
  (void)bytes;
  std::lock_guard<std::mutex> lock(mu_);
  events_[static_cast<size_t>(site)]++;
  for (Armed& a : armed_) {
    if (a.spec.site != site || a.spec.kind != FaultKind::kFailAlloc) continue;
    if (Due(&a)) {
      fired_++;
      return true;
    }
  }
  return false;
}

bool ScheduledInjector::OnEvictionWriteback(uint8_t* dst, const uint8_t* src,
                                            size_t len) {
  (void)dst;
  std::lock_guard<std::mutex> lock(mu_);
  events_[static_cast<size_t>(fault::Site::kEvictionWriteback)]++;
  bool drop = false;
  for (Armed& a : armed_) {
    if (a.spec.site != fault::Site::kEvictionWriteback) continue;
    if (a.spec.kind == FaultKind::kDropWriteback) {
      if (Due(&a)) {
        fired_++;
        drop = true;
      }
    } else if (a.spec.kind == FaultKind::kDuplicateWriteback &&
               a.spec.target != nullptr) {
      if (Due(&a)) {
        // Misdirected duplicate: the adversary also lands the bytes on a
        // sibling node, corrupting it.
        std::memcpy(a.spec.target, src, len);
        fired_++;
      }
    }
  }
  return drop;
}

std::vector<uint8_t> SnapshotNode(const FlatMerkleTree* tree, MtNodeId id) {
  const uint8_t* p = tree->NodePtr(id.level, id.index);
  return std::vector<uint8_t>(p, p + tree->node_size());
}

void RestoreNode(FlatMerkleTree* tree, MtNodeId id,
                 const std::vector<uint8_t>& snapshot) {
  std::memcpy(tree->NodePtr(id.level, id.index), snapshot.data(),
              tree->node_size());
}

void FlipCounterBit(FlatMerkleTree* tree, uint64_t c, uint64_t bit) {
  uint8_t* p = tree->CounterPtr(c);
  p[(bit / 8) % FlatMerkleTree::kCounterSize] ^=
      static_cast<uint8_t>(1u << (bit % 8));
}

void FlipStoredMacBit(FlatMerkleTree* tree, MtNodeId id, uint64_t bit) {
  uint8_t* p = tree->StoredMacPtr(id);
  p[(bit / 8) % FlatMerkleTree::kMacSize] ^=
      static_cast<uint8_t>(1u << (bit % 8));
}

}  // namespace aria::testing
