// Differential model checker: drives any KVStore scheme from store_factory
// against the std::map reference oracle under one shared seed, cross-checking
// every operation's status and data. Ordered stores are additionally checked
// on RangeScan. A divergence produces a report carrying the failing op index
// and a one-line ARIA_REPLAY_SEED reproduction recipe; with the env var set,
// the exact schedule reruns (testing/replay.h).
//
// Under fault injection (allow_integrity_violation), a store that answers an
// op with IntegrityViolation has *detected* the attack: the run stops and
// counts as a success. A store that silently returns data the oracle
// disagrees with has been fooled — that is always a failure.
#pragma once

#include <cstdint>
#include <string>

#include "core/kv_store.h"
#include "testing/op_generator.h"
#include "testing/oracle.h"

namespace aria::testing {

struct CheckerConfig {
  OpGeneratorConfig gen;

  uint64_t num_ops = 10000;

  /// Keys [0, prepopulate) inserted into both store and oracle before the
  /// randomized schedule starts (version 0 values).
  uint64_t prepopulate = 0;
  size_t prepopulate_value_size = 16;

  /// Fault-injection mode: an IntegrityViolation from the store ends the
  /// run successfully (the attack was detected). Silent divergence still
  /// fails.
  bool allow_integrity_violation = false;

  /// Name used in the replay recipe (usually the ctest target).
  std::string harness = "differential_test";
};

struct CheckerReport {
  uint64_t seed = 0;          ///< seed actually used (after env override)
  uint64_t ops_executed = 0;  ///< ops completed before stop/divergence
  uint64_t failing_op = UINT64_MAX;  ///< first divergent op, if any
  /// Op at which the store reported IntegrityViolation (fault mode only).
  uint64_t integrity_violation_op = UINT64_MAX;
  std::string description;  ///< human-readable divergence summary
  std::string replay;       ///< one-line ARIA_REPLAY_SEED recipe

  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t scans = 0;
  uint64_t multis = 0;      ///< multi-key atomic batches executed
  uint64_t multi_ops = 0;   ///< point ops carried inside those batches
  uint64_t not_found = 0;
};

class DifferentialChecker {
 public:
  explicit DifferentialChecker(const CheckerConfig& config);

  /// Seed the schedule will use: ARIA_REPLAY_SEED if set, else the
  /// configured one.
  uint64_t seed() const { return seed_; }

  /// Run the full schedule against `store`. ok() iff store and oracle
  /// agreed on every op (or, in fault mode, the store detected the attack).
  Status Run(KVStore* store, CheckerReport* report);

 private:
  Status Fail(CheckerReport* report, uint64_t op_index,
              const std::string& what);

  CheckerConfig config_;
  uint64_t seed_;
};

}  // namespace aria::testing
