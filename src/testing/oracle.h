// Trusted reference oracle for differential testing: a plain std::map that
// mirrors the KVStore/OrderedKVStore contract exactly. Every scheme from
// store_factory is driven against it op-by-op; any divergence in status or
// data is a bug (or, under fault injection, a missed attack).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace aria::testing {

class ReferenceOracle {
 public:
  /// Insert or overwrite; always succeeds.
  Status Put(Slice key, Slice value);

  /// NotFound if absent, like KVStore::Get.
  Status Get(Slice key, std::string* value) const;

  /// NotFound if absent, like KVStore::Delete.
  Status Delete(Slice key);

  /// Up to `limit` pairs with key >= `start` in key order, like
  /// OrderedKVStore::RangeScan.
  Status RangeScan(Slice start, size_t limit,
                   std::vector<std::pair<std::string, std::string>>* out) const;

  uint64_t size() const { return map_.size(); }

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace aria::testing
