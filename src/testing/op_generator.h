// Deterministic randomized op-sequence generator for differential testing.
// Given one seed it produces a bit-reproducible stream of Put/Get/Delete/
// RangeScan operations, drawing keys from an interleaved mix of uniform and
// Zipfian (workload/zipf) distributions so both the thrashing and the
// hot-set regimes of Secure Cache are exercised by the same schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "workload/zipf.h"

namespace aria::testing {

enum class DiffOpType : uint8_t {
  kPut,
  kGet,
  kDelete,
  kRangeScan,
  // Multi-key atomic batches (DESIGN.md §15). The whole key list is one
  // operation: all-or-nothing on the store side, applied sequentially on
  // the oracle side (the checker runs single-threaded, where the two are
  // equivalent).
  kMultiGet,
  kMultiPut,
  kAtomicRmw,
};

/// One operation of a differential schedule. Keys/values are materialized
/// by the checker via MakeKey / MakeValue so the schedule stays tiny.
struct DiffOp {
  DiffOpType type;
  uint64_t key_id;
  uint32_t version = 0;   ///< Put: value version for this key
  size_t value_size = 0;  ///< Put / multi-write: payload size
  size_t scan_limit = 0;  ///< RangeScan: max results
  /// Multi-key ops: the batch's key ids (may repeat — same-key batches are
  /// a deliberate edge case) and, for kMultiPut / kAtomicRmw, the per-entry
  /// value version, index-aligned with `multi_keys`.
  std::vector<uint64_t> multi_keys;
  std::vector<uint32_t> multi_versions;
};

struct OpGeneratorConfig {
  uint64_t keyspace = 2048;
  uint64_t seed = 1;

  /// Fraction of key draws taken from the Zipfian generator (the rest are
  /// uniform).
  double zipf_fraction = 0.5;
  double zipf_theta = 0.99;

  /// Op mix; the remainder after put+get+del goes to RangeScan when
  /// `scans` is true, else it is folded into Gets.
  double put_fraction = 0.40;
  double get_fraction = 0.40;
  double delete_fraction = 0.15;
  bool scans = false;

  /// Fraction of ops replaced by a multi-key atomic batch (MULTIGET /
  /// MULTIPUT / ATOMIC_RMW, drawn uniformly). 0 reproduces the original
  /// point-op schedules bit-exactly.
  double multi_fraction = 0.0;
  size_t max_batch_keys = 8;  ///< keys per multi-key batch (>= 1)

  size_t min_value_size = 8;
  size_t max_value_size = 64;
  size_t max_scan_limit = 32;
};

class OpGenerator {
 public:
  explicit OpGenerator(const OpGeneratorConfig& config);

  DiffOp Next();

  const OpGeneratorConfig& config() const { return config_; }

 private:
  uint64_t NextKeyId();

  OpGeneratorConfig config_;
  Random rng_;
  ZipfGenerator zipf_;
  UniformGenerator uniform_;
  /// Per-key Put count, so successive overwrites carry distinct values and
  /// a replayed (stale) value is distinguishable from the fresh one.
  std::vector<uint32_t> versions_;
};

}  // namespace aria::testing
