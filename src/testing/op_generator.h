// Deterministic randomized op-sequence generator for differential testing.
// Given one seed it produces a bit-reproducible stream of Put/Get/Delete/
// RangeScan operations, drawing keys from an interleaved mix of uniform and
// Zipfian (workload/zipf) distributions so both the thrashing and the
// hot-set regimes of Secure Cache are exercised by the same schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "workload/zipf.h"

namespace aria::testing {

enum class DiffOpType : uint8_t { kPut, kGet, kDelete, kRangeScan };

/// One operation of a differential schedule. Keys/values are materialized
/// by the checker via MakeKey / MakeValue so the schedule stays tiny.
struct DiffOp {
  DiffOpType type;
  uint64_t key_id;
  uint32_t version = 0;   ///< Put: value version for this key
  size_t value_size = 0;  ///< Put: payload size
  size_t scan_limit = 0;  ///< RangeScan: max results
};

struct OpGeneratorConfig {
  uint64_t keyspace = 2048;
  uint64_t seed = 1;

  /// Fraction of key draws taken from the Zipfian generator (the rest are
  /// uniform).
  double zipf_fraction = 0.5;
  double zipf_theta = 0.99;

  /// Op mix; the remainder after put+get+del goes to RangeScan when
  /// `scans` is true, else it is folded into Gets.
  double put_fraction = 0.40;
  double get_fraction = 0.40;
  double delete_fraction = 0.15;
  bool scans = false;

  size_t min_value_size = 8;
  size_t max_value_size = 64;
  size_t max_scan_limit = 32;
};

class OpGenerator {
 public:
  explicit OpGenerator(const OpGeneratorConfig& config);

  DiffOp Next();

  const OpGeneratorConfig& config() const { return config_; }

 private:
  uint64_t NextKeyId();

  OpGeneratorConfig config_;
  Random rng_;
  ZipfGenerator zipf_;
  UniformGenerator uniform_;
  /// Per-key Put count, so successive overwrites carry distinct values and
  /// a replayed (stale) value is distinguishable from the fresh one.
  std::vector<uint32_t> versions_;
};

}  // namespace aria::testing
