#include "testing/oracle.h"

namespace aria::testing {

Status ReferenceOracle::Put(Slice key, Slice value) {
  map_[std::string(key.data(), key.size())] =
      std::string(value.data(), value.size());
  return Status::OK();
}

Status ReferenceOracle::Get(Slice key, std::string* value) const {
  auto it = map_.find(std::string(key.data(), key.size()));
  if (it == map_.end()) return Status::NotFound();
  *value = it->second;
  return Status::OK();
}

Status ReferenceOracle::Delete(Slice key) {
  return map_.erase(std::string(key.data(), key.size())) == 0
             ? Status::NotFound()
             : Status::OK();
}

Status ReferenceOracle::RangeScan(
    Slice start, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) const {
  out->clear();
  for (auto it = map_.lower_bound(std::string(start.data(), start.size()));
       it != map_.end() && out->size() < limit; ++it) {
    out->emplace_back(it->first, it->second);
  }
  return Status::OK();
}

}  // namespace aria::testing
