#include "testing/replay.h"

#include <cerrno>
#include <cstdlib>

namespace aria::testing {

bool ReplaySeedFromEnv(uint64_t* seed) {
  const char* env = std::getenv(kReplaySeedEnv);
  if (env == nullptr || *env == '\0') return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(env, &end, 0);
  if (errno != 0 || end == env || *end != '\0') return false;
  *seed = static_cast<uint64_t>(v);
  return true;
}

uint64_t EffectiveSeed(uint64_t default_seed) {
  uint64_t seed;
  return ReplaySeedFromEnv(&seed) ? seed : default_seed;
}

std::string ReplayRecipe(uint64_t seed, const std::string& what) {
  return "to reproduce: " + std::string(kReplaySeedEnv) + "=" +
         std::to_string(seed) + " ctest -R " + what + " --output-on-failure";
}

}  // namespace aria::testing
