#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/fault_injection.h"
#include "core/sharded_store.h"
#include "net/protocol.h"

namespace aria::net {

namespace {

constexpr int kMaxEpollEvents = 64;
// Budget for the best-effort final flush during graceful shutdown.
constexpr int kStopFlushMillis = 200;

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

/// All connection state is owned by the event-loop thread; nothing here is
/// shared. `in_off`/`out_off` track consumed prefixes so steady-state
/// traffic does not re-copy the buffers on every tick.
struct Server::Connection {
  int fd = -1;
  uint64_t id = 0;
  std::string in;
  size_t in_off = 0;
  std::string out;
  size_t out_off = 0;
  bool want_write = false;  ///< EPOLLOUT armed
  bool close_after_flush = false;  ///< protocol error: answer, then close
  bool dead = false;

  size_t pending_out() const { return out.size() - out_off; }
};

Server::Server(KVStore* store, ServerOptions options)
    : store_(store),
      sharded_(dynamic_cast<ShardedStore*>(store)),
      ordered_(dynamic_cast<OrderedKVStore*>(store)),
      options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("bind");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (listen(listen_fd_, 128) < 0) {
    Status st = Errno("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status st = Errno("getsockname");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status st = Errno(epoll_fd_ < 0 ? "epoll_create1" : "eventfd");
    Stop();
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr = listen fd
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    Status st = Errno("epoll_ctl(listen)");
    Stop();
    return st;
  }
  ev.data.ptr = this;  // this = wake fd
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    Status st = Errno("epoll_ctl(wake)");
    Stop();
    return st;
  }

  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { Loop(); });
  return Status::OK();
}

Status Server::Stop() {
  if (running_.load(std::memory_order_acquire)) {
    stop_requested_.store(true, std::memory_order_release);
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
    loop_.join();
    running_.store(false, std::memory_order_release);
  } else if (loop_.joinable()) {
    loop_.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
    epoll_fd_ = -1;
  }
  // Drain AFTER the loop has joined: no batch can be in flight, so the
  // flush sees quiescent shards and the end-of-serving invariant audit
  // (net_test) runs against a consistent image.
  if (sharded_ != nullptr) return sharded_->Drain();
  return Status::OK();
}

void Server::Accept() {
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      // Count before close: the peer observes the rejection as EOF, and a
      // metrics scrape triggered by that EOF must already see the counter.
      stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      close(fd);
      continue;
    }
    conns_.push_back(std::move(conn));
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.store(conns_.size(), std::memory_order_relaxed);
  }
}

bool Server::ReadInput(Connection* conn) {
  // Reclaim the consumed prefix before appending (amortized O(1)).
  if (conn->in_off > 0 && conn->in_off * 2 >= conn->in.size()) {
    conn->in.erase(0, conn->in_off);
    conn->in_off = 0;
  }
  size_t budget = options_.read_chunk_bytes;
  while (budget > 0) {
    const size_t chunk = budget < 16384 ? budget : 16384;
    const size_t old = conn->in.size();
    conn->in.resize(old + chunk);
    ssize_t n = read(conn->fd, conn->in.data() + old, chunk);
    if (n > 0) {
      conn->in.resize(old + static_cast<size_t>(n));
      stats_.bytes_in.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
      budget -= static_cast<size_t>(n);
      if (static_cast<size_t>(n) < chunk) return true;  // drained the socket
      continue;
    }
    conn->in.resize(old);
    if (n == 0) {
      stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
    return false;
  }
  return true;
}

void Server::RecordBatchSize(size_t n) {
  int b = n == 0 ? 0 : std::bit_width(n) - 1;
  if (b >= ServerStats::kBatchBuckets) b = ServerStats::kBatchBuckets - 1;
  stats_.batch_size_hist[b].fetch_add(1, std::memory_order_relaxed);
}

void Server::ProcessTick(std::vector<Connection*>* ready) {
  // Decode every complete frame from every ready connection. Entries for
  // one connection are contiguous and in arrival order, so writing the
  // responses back in list order preserves per-connection FIFO no matter
  // how execution is grouped below.
  struct Pending {
    Connection* conn = nullptr;
    Request req;
    WireStatus status = WireStatus::kOk;
    std::string payload;
  };
  std::vector<Pending> pending;

  for (Connection* conn : *ready) {
    if (conn->dead || conn->close_after_flush) continue;
    const size_t first_of_conn = pending.size();
    for (;;) {
      Request req;
      std::string error;
      size_t consumed = 0;
      DecodeResult r =
          DecodeRequest(conn->in.data() + conn->in_off,
                        conn->in.size() - conn->in_off, &consumed, &req,
                        &error);
      if (r == DecodeResult::kNeedMore) break;
      if (r == DecodeResult::kError) {
        // One verdict, then the stream is unrecoverable. The verdict goes
        // through the pending list like any response, so the answers to
        // the valid frames before it keep their order.
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        Pending verdict;
        verdict.conn = conn;
        verdict.status = WireStatus::kProtocolError;
        verdict.payload = std::move(error);
        verdict.req.op = OpCode::kPing;  // executes as a no-op
        pending.push_back(std::move(verdict));
        conn->close_after_flush = true;
        conn->in.clear();
        conn->in_off = 0;
        break;
      }
      conn->in_off += consumed;
      stats_.requests_decoded.fetch_add(1, std::memory_order_relaxed);
      Pending p;
      p.conn = conn;
      p.req = std::move(req);
      pending.push_back(std::move(p));
    }
    // Fault point: the connection dies after its requests were read but
    // before any of them executes — the peer's whole in-flight pipeline is
    // lost mid-exchange.
    if (pending.size() > first_of_conn &&
        fault::InjectConnDrop(conn->id)) {
      pending.resize(first_of_conn);
      stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
    }
  }
  if (pending.empty()) return;

  // Execute. Point ops accumulate into one shard-grouped batch; a scan is
  // a barrier (it crosses shards), flushing the batch first so a pipelined
  // PUT-then-SCAN on one connection observes the PUT.
  std::vector<BatchOp> batch;
  std::vector<size_t> batch_owner;  // batch index -> pending index
  batch.reserve(pending.size());

  auto flush_batch = [&]() {
    if (batch.empty()) return;
    if (sharded_ != nullptr) {
      sharded_->ExecuteBatch(batch.data(), batch.size());
    } else {
      for (BatchOp& op : batch) {
        switch (op.kind) {
          case BatchOp::Kind::kGet:
            op.status = store_->Get(op.key, &op.result);
            break;
          case BatchOp::Kind::kPut:
            op.status = store_->Put(op.key, op.value);
            break;
          case BatchOp::Kind::kDelete:
            op.status = store_->Delete(op.key);
            break;
        }
      }
    }
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    stats_.batched_requests.fetch_add(batch.size(),
                                      std::memory_order_relaxed);
    RecordBatchSize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      Pending& p = pending[batch_owner[i]];
      p.status = ToWire(batch[i].status);
      if (batch[i].kind == BatchOp::Kind::kGet && batch[i].status.ok()) {
        p.payload = std::move(batch[i].result);
      } else if (!batch[i].status.ok()) {
        p.payload = batch[i].status.message();
      }
    }
    batch.clear();
    batch_owner.clear();
  };

  for (size_t i = 0; i < pending.size(); ++i) {
    Pending& p = pending[i];
    if (p.conn->dead) continue;
    BatchOp op;
    switch (p.req.op) {
      case OpCode::kGet:
        op.kind = BatchOp::Kind::kGet;
        break;
      case OpCode::kPut:
        op.kind = BatchOp::Kind::kPut;
        op.value = Slice(p.req.value);
        break;
      case OpCode::kDelete:
        op.kind = BatchOp::Kind::kDelete;
        break;
      case OpCode::kPing:
        continue;  // already kOk with an empty payload
      case OpCode::kScan: {
        flush_batch();
        stats_.scans.fetch_add(1, std::memory_order_relaxed);
        if (ordered_ == nullptr) {
          p.status = WireStatus::kInvalidArgument;
          p.payload = "store has no ordered index";
          continue;
        }
        std::vector<std::pair<std::string, std::string>> rows;
        Status st = ordered_->RangeScan(p.req.key, p.req.scan_limit, &rows);
        p.status = ToWire(st);
        if (st.ok()) {
          EncodeScanPayload(rows,
                            kMaxResponseBodyBytes - kResponseFixedBytes,
                            &p.payload);
        } else {
          p.payload = st.message();
        }
        continue;
      }
    }
    op.key = Slice(p.req.key);
    batch.push_back(op);
    batch_owner.push_back(i);
  }
  flush_batch();

  // Responses, in per-connection arrival order; then one flush attempt per
  // touched connection.
  for (Pending& p : pending) {
    if (p.conn->dead) continue;
    EncodeResponse(p.status, p.payload, &p.conn->out);
    stats_.responses_sent.fetch_add(1, std::memory_order_relaxed);
  }
  for (Connection* conn : *ready) {
    if (conn->dead || conn->pending_out() == 0) continue;
    if (!FlushOutput(conn)) continue;
    if (conn->pending_out() > options_.max_output_buffer_bytes) {
      // Backpressure: the peer pipelines faster than it reads. Cut it
      // loose instead of buffering without bound.
      stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
    } else if (conn->close_after_flush && conn->pending_out() == 0) {
      CloseConnection(conn);
    }
  }
}

bool Server::FlushOutput(Connection* conn) {
  if (conn->out_off > 0 && conn->out_off * 2 >= conn->out.size()) {
    conn->out.erase(0, conn->out_off);
    conn->out_off = 0;
  }
  while (conn->pending_out() > 0) {
    const size_t want = conn->pending_out();
    // Fault point: tear the stream after a prefix of the encoded bytes —
    // the peer sees a syntactically broken frame followed by EOF.
    const size_t allowed = fault::InjectServerWrite(conn->id, want);
    if (allowed > 0) {
      ssize_t n = send(conn->fd, conn->out.data() + conn->out_off,
                       allowed, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!conn->want_write) {
            epoll_event ev{};
            ev.events = EPOLLIN | EPOLLOUT;
            ev.data.ptr = conn;
            epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
            conn->want_write = true;
          }
          return true;
        }
        stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
        CloseConnection(conn);
        return false;
      }
      conn->out_off += static_cast<size_t>(n);
      stats_.bytes_out.fetch_add(static_cast<uint64_t>(n),
                                 std::memory_order_relaxed);
      if (static_cast<size_t>(n) < allowed) continue;  // partial; retry
    }
    if (allowed < want) {
      stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
      return false;
    }
  }
  if (conn->want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->want_write = false;
  }
  return true;
}

void Server::CloseConnection(Connection* conn) {
  if (conn->dead) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  conn->fd = -1;
  conn->dead = true;
}

void Server::Loop() {
  epoll_event events[kMaxEpollEvents];
  std::vector<Connection*> ready;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epoll_fd_, events, kMaxEpollEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    ready.clear();
    for (int i = 0; i < n; ++i) {
      void* ptr = events[i].data.ptr;
      if (ptr == nullptr) {
        Accept();
        continue;
      }
      if (ptr == this) {
        uint64_t drain;
        [[maybe_unused]] ssize_t r = read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      auto* conn = static_cast<Connection*>(ptr);
      if (conn->dead) continue;  // closed earlier in this event batch
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
        CloseConnection(conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        if (!FlushOutput(conn)) continue;
        if (conn->close_after_flush && conn->pending_out() == 0) {
          CloseConnection(conn);
          continue;
        }
      }
      if (events[i].events & EPOLLIN) {
        if (ReadInput(conn)) ready.push_back(conn);
      }
    }
    if (!ready.empty()) ProcessTick(&ready);
    // Garbage-collect dead connections only at the tick boundary: earlier
    // events in this batch may still reference them by pointer.
    std::erase_if(conns_, [](const std::unique_ptr<Connection>& c) {
      return c->dead;
    });
    stats_.connections_active.store(conns_.size(), std::memory_order_relaxed);
  }

  // Graceful exit: give peers one bounded chance to take their pending
  // responses, then close everything. No new frames are executed.
  for (auto& conn_ptr : conns_) {
    Connection* conn = conn_ptr.get();
    if (conn->dead) continue;
    int budget = kStopFlushMillis;
    while (conn->pending_out() > 0 && budget > 0) {
      ssize_t n = send(conn->fd, conn->out.data() + conn->out_off,
                       conn->pending_out(), MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
        stats_.bytes_out.fetch_add(static_cast<uint64_t>(n),
                                   std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{conn->fd, POLLOUT, 0};
        poll(&pfd, 1, 10);
        budget -= 10;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    CloseConnection(conn);
  }
  conns_.clear();
  stats_.connections_active.store(0, std::memory_order_relaxed);
}

void Server::CollectMetrics(obs::MetricSink* sink) const {
  auto get = [](const std::atomic<uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  sink->Counter("connections_accepted", get(stats_.connections_accepted));
  sink->Counter("connections_rejected", get(stats_.connections_rejected));
  sink->Counter("connections_dropped", get(stats_.connections_dropped));
  sink->Counter("connections_closed", get(stats_.connections_closed));
  sink->Gauge("connections_active", get(stats_.connections_active));
  sink->Counter("requests_decoded", get(stats_.requests_decoded));
  sink->Counter("responses_sent", get(stats_.responses_sent));
  sink->Counter("protocol_errors", get(stats_.protocol_errors));
  sink->Counter("batches", get(stats_.batches));
  sink->Counter("batched_requests", get(stats_.batched_requests));
  sink->Counter("scans", get(stats_.scans));
  sink->Counter("bytes_in", get(stats_.bytes_in));
  sink->Counter("bytes_out", get(stats_.bytes_out));
  for (int i = 0; i < ServerStats::kBatchBuckets; ++i) {
    sink->Counter("batch_size_p2_" + std::to_string(i),
                  get(stats_.batch_size_hist[i]));
  }
}

}  // namespace aria::net
